package admission

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func demandSamples(t *testing.T, seed int64, frames int) []int {
	t.Helper()
	cfg := trace.DefaultGenConfig()
	cfg.Frames = frames
	cfg.Seed = seed
	clip, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, len(clip.Frames))
	for i, f := range clip.Frames {
		out[i] = f.Size
	}
	return out
}

func TestLogMGFBasics(t *testing.T) {
	// Constant demand c: Λ(s) = s*c exactly.
	samples := []int{10, 10, 10}
	for _, s := range []float64{0, 0.1, 1, 5} {
		l, err := LogMGF(samples, s)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(l-10*s) > 1e-9 {
			t.Errorf("Λ(%v) = %v, want %v", s, l, 10*s)
		}
	}
	if _, err := LogMGF(nil, 1); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := LogMGF(samples, -1); err == nil {
		t.Error("negative tilt accepted")
	}
}

func TestLogMGFNoOverflow(t *testing.T) {
	// Large tilt times large demand must not overflow to +Inf.
	l, err := LogMGF([]int{120, 2}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(l, 0) || math.IsNaN(l) {
		t.Errorf("Λ overflowed: %v", l)
	}
	if math.Abs(l-(50*120+math.Log(0.5))) > 1e-6 {
		t.Errorf("Λ = %v, want ≈ %v", l, 50*120+math.Log(0.5))
	}
}

func TestEffectiveBandwidthBetweenMeanAndPeak(t *testing.T) {
	samples := demandSamples(t, 1, 1000)
	mean := 0.0
	peak := 0
	for _, x := range samples {
		mean += float64(x)
		if x > peak {
			peak = x
		}
	}
	mean /= float64(len(samples))
	prev := mean - 1e-9
	for _, s := range []float64{0.001, 0.01, 0.1, 1} {
		eb, err := EffectiveBandwidth(samples, s)
		if err != nil {
			t.Fatal(err)
		}
		if eb < mean-1e-6 || eb > float64(peak)+1e-6 {
			t.Errorf("eb(%v) = %v outside [mean %v, peak %d]", s, eb, mean, peak)
		}
		if eb < prev-1e-9 {
			t.Errorf("effective bandwidth not non-decreasing at s=%v", s)
		}
		prev = eb
	}
	if _, err := EffectiveBandwidth(samples, 0); err == nil {
		t.Error("tilt 0 accepted")
	}
}

func TestChernoffExponentLimits(t *testing.T) {
	samples := demandSamples(t, 1, 1000)
	var mean float64
	peak := 0
	for _, x := range samples {
		mean += float64(x)
		if x > peak {
			peak = x
		}
	}
	mean /= float64(len(samples))

	// Capacity below K*mean: bound is vacuous (exponent 0).
	e, err := ChernoffExponent(samples, 4, 4*mean*0.9)
	if err != nil {
		t.Fatal(err)
	}
	if e < -1e-6 {
		t.Errorf("capacity below mean demand gave exponent %v, want ~0", e)
	}
	// Capacity above K*peak: the bound dives steeply negative.
	e, err = ChernoffExponent(samples, 4, float64(4*peak)+1)
	if err != nil {
		t.Fatal(err)
	}
	if e > -20 {
		t.Errorf("capacity above peak gave weak exponent %v", e)
	}
	// Monotone in capacity.
	e1, _ := ChernoffExponent(samples, 4, 4*mean*1.2)
	e2, _ := ChernoffExponent(samples, 4, 4*mean*1.5)
	if e2 > e1+1e-9 {
		t.Errorf("exponent not decreasing in capacity: %v then %v", e1, e2)
	}
}

func TestChernoffBoundsMeasuredOverflow(t *testing.T) {
	// The Chernoff bound must upper-bound the measured per-step overflow
	// frequency of independent streams drawn from the same generator.
	const K = 6
	train := demandSamples(t, 1, 2000)
	var streams [][]int
	for i := 0; i < K; i++ {
		streams = append(streams, demandSamples(t, 100+int64(i), 2000))
	}
	var mean float64
	for _, x := range train {
		mean += float64(x)
	}
	mean /= float64(len(train))

	for _, factor := range []float64{1.1, 1.2, 1.35} {
		C := float64(K) * mean * factor
		exp, err := ChernoffExponent(train, K, C)
		if err != nil {
			t.Fatal(err)
		}
		bound := math.Exp(exp)
		measured, err := MeasuredOverflow(streams, C)
		if err != nil {
			t.Fatal(err)
		}
		// Allow slack for finite samples and train/test mismatch: the
		// bound must not be exceeded by more than a small margin.
		if measured > bound*1.5+0.01 {
			t.Errorf("factor %v: measured overflow %.4f far above Chernoff bound %.4f",
				factor, measured, bound)
		}
	}
}

func TestAdmissibleAndMaxStreams(t *testing.T) {
	samples := demandSamples(t, 1, 1500)
	var mean float64
	for _, x := range samples {
		mean += float64(x)
	}
	mean /= float64(len(samples))
	C := 10 * mean * 1.15 // capacity for ~10 average streams + 15% headroom

	k, err := MaxStreams(samples, C, 1e-3, 64)
	if err != nil {
		t.Fatal(err)
	}
	if k < 1 || k > 11 {
		t.Errorf("MaxStreams = %d, expected a moderate count", k)
	}
	ok, err := Admissible(samples, k, C, 1e-3)
	if err != nil || !ok {
		t.Errorf("K=%d not admissible: %v %v", k, ok, err)
	}
	ok, err = Admissible(samples, k+1, C, 1e-3)
	if err != nil || ok {
		t.Errorf("K=%d admissible beyond the maximum", k+1)
	}
	// Looser target admits at least as many.
	k2, err := MaxStreams(samples, C, 1e-1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if k2 < k {
		t.Errorf("looser eps admitted fewer streams: %d < %d", k2, k)
	}
}

func TestValidationErrors(t *testing.T) {
	samples := []int{1, 2}
	if _, err := Admissible(samples, 1, 10, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Admissible(samples, 1, 10, 1); err == nil {
		t.Error("eps=1 accepted")
	}
	if _, err := ChernoffExponent(samples, 0, 10); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := MaxStreams(samples, 10, 0.1, 0); err == nil {
		t.Error("kMax=0 accepted")
	}
	if _, err := MeasuredOverflow(nil, 10); err == nil {
		t.Error("no streams accepted")
	}
	if _, err := MeasuredOverflow([][]int{{}}, 10); err == nil {
		t.Error("empty streams accepted")
	}
}

func TestMeasuredOverflow(t *testing.T) {
	streams := [][]int{
		{1, 5, 1, 5},
		{1, 5, 1, 1},
	}
	got, err := MeasuredOverflow(streams, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.25 { // only step 1 sums to 10 > 6... step 3 sums to 6, not over
		t.Errorf("overflow = %v, want 0.25", got)
	}
}
