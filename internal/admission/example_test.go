package admission_test

import (
	"fmt"
	"math/rand"

	"repro/internal/admission"
)

// Example sizes a link for bursty ON/OFF sources: each stream demands 10
// units with probability 0.3 per step. Effective-bandwidth admission sits
// between mean-based (too optimistic) and peak-based (too pessimistic)
// dimensioning.
func Example() {
	rng := rand.New(rand.NewSource(1))
	samples := make([]int, 20000)
	for i := range samples {
		if rng.Float64() < 0.3 {
			samples[i] = 10
		}
	}
	// Mean demand 3, peak 10. Capacity 100 fits 33 mean-sized or 10
	// peak-sized streams.
	const C = 100
	k, _ := admission.MaxStreams(samples, C, 1e-2, 64)
	fmt.Printf("mean-based:     33 streams (no loss guarantee)\n")
	fmt.Printf("effective-bw:   %d streams at overflow <= 1%%\n", k)
	fmt.Printf("peak-based:     10 streams (zero overflow)\n")

	eb, _ := admission.EffectiveBandwidth(samples, 0.5)
	fmt.Printf("per-stream effective bandwidth between mean 3 and peak 10: %v\n", eb > 3 && eb < 10)
	// Output:
	// mean-based:     33 streams (no loss guarantee)
	// effective-bw:   14 streams at overflow <= 1%
	// peak-based:     10 streams (zero overflow)
	// per-stream effective bandwidth between mean 3 and peak 10: true
}
