// Package admission implements classical measurement-based admission
// control for multiplexed VBR streams — the machinery a network operator
// would combine with smoothing to decide HOW MANY streams fit a link. It
// follows the Chernoff-bound/effective-bandwidth approach (Hui; Kelly;
// standard in the era of the paper): estimate the log moment generating
// function of the per-step demand from a trace, and admit K streams on
// capacity C with target overflow probability ε iff
//
//	inf_s [ K·Λ(s) − s·C ]  ≤  log ε,
//
// where Λ(s) = log E[exp(s·X)] for the per-step demand X of one stream.
// The per-stream "effective bandwidth" at tilt s is Λ(s)/s, a number
// between the mean and the peak demand.
//
// Everything here is estimated empirically from traces (log-sum-exp for
// numerical stability) and validated in the tests and the "admission"
// experiment against the measured overflow frequency of independently
// generated streams.
package admission

import (
	"fmt"
	"math"
	"sync/atomic"
)

// LogMGF estimates Λ(s) = log((1/n)·Σ exp(s·x_i)) from per-step demand
// samples, using log-sum-exp to avoid overflow. s must be >= 0; samples
// must be non-empty.
func LogMGF(samples []int, s float64) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("admission: no samples")
	}
	if s < 0 || math.IsNaN(s) {
		return 0, fmt.Errorf("admission: negative tilt %v", s)
	}
	maxE := math.Inf(-1)
	for _, x := range samples {
		if e := s * float64(x); e > maxE {
			maxE = e
		}
	}
	var sum float64
	for _, x := range samples {
		sum += math.Exp(s*float64(x) - maxE)
	}
	return maxE + math.Log(sum/float64(len(samples))), nil
}

// EffectiveBandwidth returns Λ(s)/s, the effective bandwidth of one stream
// at tilt s (> 0). As s→0 it approaches the mean demand; as s→∞ the peak.
func EffectiveBandwidth(samples []int, s float64) (float64, error) {
	if s <= 0 {
		return 0, fmt.Errorf("admission: non-positive tilt %v", s)
	}
	l, err := LogMGF(samples, s)
	if err != nil {
		return 0, err
	}
	return l / s, nil
}

// ChernoffExponent returns inf_{s>0} [K·Λ(s) − s·C]: the log of the
// Chernoff bound on the probability that K independent streams jointly
// demand more than C in one step. It is 0 (vacuous bound) when C is at or
// below K times the mean demand, and -Inf when C is at or above K times
// the peak.
func ChernoffExponent(samples []int, K int, C float64) (float64, error) {
	if K <= 0 {
		return 0, fmt.Errorf("admission: non-positive stream count %d", K)
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("admission: no samples")
	}
	objective := func(s float64) float64 {
		l, _ := LogMGF(samples, s)
		return float64(K)*l - s*C
	}
	// The objective is convex in s with objective(0) = 0; minimize by
	// ternary search over an exponentially located bracket.
	hi := 1e-6
	for objective(2*hi) < objective(hi) && hi < 1e6 {
		hi *= 2
	}
	lo := 0.0
	for i := 0; i < 200; i++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if objective(m1) < objective(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	v := objective((lo + hi) / 2)
	if v > 0 {
		v = 0 // the bound is a probability: never above 1
	}
	return v, nil
}

// Decision counters: every Admissible verdict increments one of these,
// so a daemon evaluating admission control online can expose accept/deny
// totals as scrape-time metrics (see Counters). Package-level because the
// admission math is stateless — there is no controller object to hang
// them on.
var (
	admitCount  atomic.Uint64
	rejectCount atomic.Uint64
)

// Counters returns how many Admissible evaluations answered yes and no
// since process start. Errors count in neither.
func Counters() (admitted, rejected uint64) {
	return admitCount.Load(), rejectCount.Load()
}

// Admissible reports whether K streams fit capacity C with per-step
// overflow probability at most eps, by the Chernoff criterion.
func Admissible(samples []int, K int, C, eps float64) (bool, error) {
	if eps <= 0 || eps >= 1 {
		return false, fmt.Errorf("admission: eps %v outside (0, 1)", eps)
	}
	exp, err := ChernoffExponent(samples, K, C)
	if err != nil {
		return false, err
	}
	ok := exp <= math.Log(eps)
	if ok {
		admitCount.Add(1)
	} else {
		rejectCount.Add(1)
	}
	return ok, nil
}

// MaxStreams returns the largest K in [0, kMax] admissible on capacity C
// with target eps. Admissibility is monotone decreasing in K, so a binary
// search suffices.
func MaxStreams(samples []int, C, eps float64, kMax int) (int, error) {
	if kMax < 1 {
		return 0, fmt.Errorf("admission: non-positive kMax %d", kMax)
	}
	lo, hi := 0, kMax
	for lo < hi {
		mid := (lo + hi + 1) / 2
		ok, err := Admissible(samples, mid, C, eps)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// MeasuredOverflow returns the empirical per-step overflow frequency of
// summing the demand rows: fraction of steps where the combined demand of
// the K sample vectors exceeds C. All vectors are truncated to the
// shortest length.
func MeasuredOverflow(streams [][]int, C float64) (float64, error) {
	if len(streams) == 0 {
		return 0, fmt.Errorf("admission: no streams")
	}
	n := len(streams[0])
	for _, s := range streams {
		if len(s) < n {
			n = len(s)
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("admission: empty streams")
	}
	over := 0
	for t := 0; t < n; t++ {
		sum := 0
		for _, s := range streams {
			sum += s[t]
		}
		if float64(sum) > C {
			over++
		}
	}
	return float64(over) / float64(n), nil
}
