package admission

import (
	"sync"
	"testing"
)

// constSamples is a deterministic demand trace with mean 4 and peak 8.
func constSamples() []int {
	s := make([]int, 64)
	for i := range s {
		s[i] = 4
		if i%4 == 0 {
			s[i] = 8
		}
	}
	return s
}

func TestGateCeilingMatchesMaxStreams(t *testing.T) {
	samples := constSamples()
	want, err := MaxStreams(samples, 1000, 1e-6, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGate(samples, 1000, 1e-6, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxStreams() != want {
		t.Fatalf("gate ceiling %d, MaxStreams %d", g.MaxStreams(), want)
	}
	if want <= 0 {
		t.Fatalf("degenerate ceiling %d", want)
	}
}

func TestGateAdmitsExactlyCeiling(t *testing.T) {
	g, err := NewGate(constSamples(), 100, 1e-3, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	k := g.MaxStreams()
	admitted0, rejected0 := Counters()
	for i := 0; i < k; i++ {
		if !g.TryAdmit() {
			t.Fatalf("admit %d/%d refused below the ceiling", i, k)
		}
	}
	if g.TryAdmit() {
		t.Fatalf("admit above ceiling %d succeeded", k)
	}
	if g.Active() != k {
		t.Fatalf("active %d, want %d", g.Active(), k)
	}
	admitted1, rejected1 := Counters()
	if admitted1-admitted0 != uint64(k) || rejected1-rejected0 != 1 {
		t.Fatalf("counter deltas admit=%d reject=%d, want %d and 1",
			admitted1-admitted0, rejected1-rejected0, k)
	}
	g.Release()
	if !g.TryAdmit() {
		t.Fatal("admit after release refused")
	}
}

func TestGateConcurrentNeverOverAdmits(t *testing.T) {
	g, err := NewGate(constSamples(), 60, 1e-2, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	k := g.MaxStreams()
	const workers = 8
	var wg sync.WaitGroup
	admits := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < k; i++ {
				if g.TryAdmit() {
					admits[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range admits {
		total += n
	}
	if total != k {
		t.Fatalf("concurrent admits %d, want exactly ceiling %d", total, k)
	}
}

func TestGateRejectsEmptySamples(t *testing.T) {
	if _, err := NewGate(nil, 1000, 1e-6, 1024); err == nil {
		t.Fatal("NewGate with no samples succeeded")
	}
}
