package admission

import (
	"fmt"
	"sync/atomic"
)

// Gate is the online form of the Chernoff admission test for a front
// door that must answer per-connection, not per-trace: the expensive
// inf_s optimization runs once at construction (via MaxStreams) to fix
// the largest admissible stream count K* for the configured capacity and
// overflow target, and each arriving session then pays a single atomic
// compare against the live count. This is how an access point would
// deploy the criterion — the per-stream demand statistics and the link
// capacity are fixed at provisioning time, only the occupancy moves.
type Gate struct {
	maxStreams int
	active     atomic.Int64
}

// NewGate precomputes the admissible-stream ceiling for per-step demand
// samples on capacity C with target per-step overflow probability eps,
// searching K in [0, kMax]. The returned gate admits a session iff the
// live count is below that ceiling.
func NewGate(samples []int, C, eps float64, kMax int) (*Gate, error) {
	k, err := MaxStreams(samples, C, eps, kMax)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("admission: capacity %v admits no streams at eps %v", C, eps)
	}
	return &Gate{maxStreams: k}, nil
}

// MaxStreams returns the precomputed admissible-stream ceiling K*.
func (g *Gate) MaxStreams() int { return g.maxStreams }

// Active returns the number of admitted, unreleased sessions.
func (g *Gate) Active() int { return int(g.active.Load()) }

// TryAdmit admits one session if the live count is below the ceiling,
// incrementing the count and the package admit counter; a refusal
// increments the reject counter. Safe from any goroutine.
func (g *Gate) TryAdmit() bool {
	for {
		cur := g.active.Load()
		if cur >= int64(g.maxStreams) {
			rejectCount.Add(1)
			return false
		}
		if g.active.CompareAndSwap(cur, cur+1) {
			admitCount.Add(1)
			return true
		}
	}
}

// Release returns one admitted session's slot. Callers pair every
// successful TryAdmit with exactly one Release when the session ends.
func (g *Gate) Release() {
	if g.active.Add(-1) < 0 {
		panic("admission: Gate.Release without TryAdmit")
	}
}
