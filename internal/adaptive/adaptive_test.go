package adaptive

import (
	"testing"

	"repro/internal/drop"
	"repro/internal/stream"
	"repro/internal/trace"
)

func clipStream(t *testing.T, frames int) *stream.Stream {
	t.Helper()
	cfg := trace.DefaultGenConfig()
	cfg.Frames = frames
	clip, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.WholeFrameStream(clip, trace.PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Window: 0},
		{Window: 4, Headroom: 0.5},
		{Window: 4, HighWater: 1.5},
		{Window: 4, Deadband: -1},
	}
	for i, cfg := range bad {
		if _, err := NewController(cfg, 1); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewController(Config{Window: 4}, 0); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func TestControllerRaisesUnderLoad(t *testing.T) {
	ctl, err := NewController(Config{Window: 4, Headroom: 1.0, Deadband: 0.05}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 40 bytes/step arriving: after one window the reservation must jump.
	var rate int
	for i := 0; i < 4; i++ {
		rate = ctl.Tick(40, 0, 100)
	}
	if rate < 40 {
		t.Errorf("rate = %d after sustained 40/step, want >= 40", rate)
	}
	if ctl.Changes() != 1 {
		t.Errorf("changes = %d, want 1", ctl.Changes())
	}
}

func TestControllerDeadbandSuppressesJitter(t *testing.T) {
	ctl, err := NewController(Config{Window: 2, Headroom: 1.0, Deadband: 0.5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals wobble between 9 and 11 per step: inside the 50% dead band.
	for i := 0; i < 20; i++ {
		ctl.Tick(9+2*(i%2), 0, 100)
	}
	if ctl.Changes() != 0 {
		t.Errorf("dead band leaked: %d changes", ctl.Changes())
	}
}

func TestControllerHighWaterBoost(t *testing.T) {
	ctl, err := NewController(Config{Window: 2, Headroom: 1.0, HighWater: 0.5, Deadband: 0.01}, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Tick(5, 90, 100)
	rate := ctl.Tick(5, 90, 100) // window boundary, occupancy far above half
	if rate <= 5 {
		t.Errorf("high-water boost missing: rate %d", rate)
	}
}

func TestRunLosslessWithHeadroom(t *testing.T) {
	st := clipStream(t, 600)
	res, err := Run(st, 8*120, Config{Window: 12, Headroom: 1.3}, drop.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	if res.WeightedLoss > 0.02 {
		t.Errorf("adaptive run lost %.2f%% despite headroom", 100*res.WeightedLoss)
	}
	if res.Renegotiations == 0 {
		t.Error("no renegotiations on a bursty clip")
	}
	if res.MeanReserved <= 0 || res.PeakRate <= 0 {
		t.Errorf("degenerate reservation stats: %+v", res)
	}
	if res.Utilization <= 0 || res.Utilization > 1+1e-9 {
		t.Errorf("utilization = %v", res.Utilization)
	}
	// The controller should track the stream: mean reservation within a
	// factor ~2 of the average rate.
	avg := float64(st.TotalBytes()) / float64(st.Horizon()+1)
	if res.MeanReserved > 2*avg {
		t.Errorf("mean reserved %v far above average %v", res.MeanReserved, avg)
	}
}

func TestRunFewerRenegotiationsWithLargerWindow(t *testing.T) {
	st := clipStream(t, 800)
	small, err := Run(st, 6*120, Config{Window: 4, Headroom: 1.2}, drop.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(st, 6*120, Config{Window: 64, Headroom: 1.2}, drop.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	if big.Renegotiations >= small.Renegotiations {
		t.Errorf("window 64 renegotiated %d times, window 4 %d times",
			big.Renegotiations, small.Renegotiations)
	}
}

func TestRunErrors(t *testing.T) {
	st := stream.NewBuilder().Add(0, 1, 1).MustBuild()
	if _, err := Run(st, 0, Config{Window: 4}, drop.Greedy); err == nil {
		t.Error("buffer 0 accepted")
	}
	if _, err := Run(st, 4, Config{Window: 0}, drop.Greedy); err == nil {
		t.Error("window 0 accepted")
	}
	// Nil policy defaults to greedy.
	if _, err := Run(st, 4, Config{Window: 4}, nil); err != nil {
		t.Errorf("nil policy rejected: %v", err)
	}
}

func TestRunEmptyStream(t *testing.T) {
	st := stream.NewBuilder().MustBuild()
	res, err := Run(st, 4, Config{Window: 4}, drop.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benefit != 0 || res.WeightedLoss != 0 {
		t.Errorf("empty run = %+v", res)
	}
}
