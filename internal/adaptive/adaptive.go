// Package adaptive implements an online renegotiated-CBR controller in the
// spirit of RCBR (Grossglauser, Keshav and Tse; cited by the paper's
// introduction as the "renegotiation protocols" alternative to smoothing).
//
// The sender still smooths through a buffer, but instead of one fixed link
// rate it may request a new reservation at window boundaries, based purely
// on causal measurements: the arrival rate over the last window and the
// current buffer occupancy. Each change costs signalling, so the
// controller applies a dead band. The interesting tradeoff — reproduced by
// the "adaptive" experiment — is renegotiation frequency versus reserved
// bandwidth versus loss.
package adaptive

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/stream"
)

// Config tunes the controller.
type Config struct {
	// Window is the number of steps between renegotiation opportunities.
	Window int
	// Headroom is the multiplicative slack on the measured arrival rate
	// (>= 1). Default 1.1.
	Headroom float64
	// HighWater is the buffer-occupancy fraction above which the
	// controller additionally reserves enough to drain the excess within
	// one window. Default 0.7.
	HighWater float64
	// Deadband is the minimum relative change that triggers an actual
	// renegotiation. Default 0.1.
	Deadband float64
	// MinRate floors the reservation. Default 1.
	MinRate int
}

func (c Config) withDefaults() (Config, error) {
	if c.Window <= 0 {
		return c, fmt.Errorf("adaptive: non-positive window %d", c.Window)
	}
	if c.Headroom == 0 {
		c.Headroom = 1.1
	}
	if c.Headroom < 1 {
		return c, fmt.Errorf("adaptive: headroom %v < 1", c.Headroom)
	}
	if c.HighWater == 0 {
		c.HighWater = 0.7
	}
	if c.HighWater <= 0 || c.HighWater > 1 {
		return c, fmt.Errorf("adaptive: high water %v outside (0, 1]", c.HighWater)
	}
	if c.Deadband == 0 {
		c.Deadband = 0.1
	}
	if c.Deadband < 0 {
		return c, fmt.Errorf("adaptive: negative dead band %v", c.Deadband)
	}
	if c.MinRate <= 0 {
		c.MinRate = 1
	}
	return c, nil
}

// Controller decides reservations from causal measurements.
type Controller struct {
	cfg        Config
	rate       int
	windowArr  int
	sinceRenew int
	changes    int
}

// NewController returns a controller starting at the given initial rate.
func NewController(cfg Config, initialRate int) (*Controller, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if initialRate < cfg.MinRate {
		initialRate = cfg.MinRate
	}
	return &Controller{cfg: cfg, rate: initialRate}, nil
}

// Rate returns the current reservation.
func (c *Controller) Rate() int { return c.rate }

// Changes returns the number of renegotiations so far.
func (c *Controller) Changes() int { return c.changes }

// Tick observes one step (bytes that arrived, buffer occupancy and
// capacity) and returns the reservation to use for the NEXT step, which
// changes only at window boundaries and only outside the dead band.
func (c *Controller) Tick(arrived, occupancy, capacity int) int {
	c.windowArr += arrived
	c.sinceRenew++
	if c.sinceRenew < c.cfg.Window {
		return c.rate
	}
	measured := float64(c.windowArr) / float64(c.cfg.Window)
	target := measured * c.cfg.Headroom
	if capacity > 0 && float64(occupancy) > c.cfg.HighWater*float64(capacity) {
		// Drain the excess above the high-water mark within one window.
		excess := float64(occupancy) - c.cfg.HighWater*float64(capacity)
		target += excess / float64(c.cfg.Window)
	}
	want := int(target + 0.999999)
	if want < c.cfg.MinRate {
		want = c.cfg.MinRate
	}
	if rel(want, c.rate) > c.cfg.Deadband {
		c.rate = want
		c.changes++
	}
	c.windowArr = 0
	c.sinceRenew = 0
	return c.rate
}

func rel(a, b int) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b <= 0 {
		return 1
	}
	return float64(d) / float64(b)
}

// Result summarizes an adaptive run (server side, per the Section 4 model).
type Result struct {
	// Renegotiations is the number of rate changes.
	Renegotiations int
	// PeakRate and MeanReserved describe the reservation process.
	PeakRate     int
	MeanReserved float64
	// Benefit is the weight of transmitted slices; WeightedLoss its
	// complement as a fraction of the offered weight.
	Benefit      float64
	WeightedLoss float64
	// Utilization is bytes sent / bytes reserved.
	Utilization float64
	// Steps is the run length.
	Steps int
}

// Run drives the generic server with the controller over the whole stream:
// the buffer and drop policy work exactly as in the paper; only the drain
// rate renegotiates. The initial reservation is the first window's
// arrivals divided by the window (bootstrapped optimistically at MinRate).
func Run(st *stream.Stream, buffer int, cfg Config, policy drop.Factory) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if buffer <= 0 {
		return nil, fmt.Errorf("adaptive: non-positive buffer %d", buffer)
	}
	if policy == nil {
		policy = drop.Greedy
	}
	ctl, err := NewController(cfg, cfg.MinRate)
	if err != nil {
		return nil, err
	}
	server := core.NewServer(buffer, ctl.Rate(), policy(), core.ServerOptions{})

	res := &Result{}
	var reserved, sent int64
	weights := make(map[int]float64, 64)
	for _, sl := range st.Slices() {
		weights[sl.ID] = sl.Weight
	}
	var benefit float64
	for t := 0; t <= st.Horizon() || !server.Empty(); t++ {
		arrived := 0
		for _, sl := range st.ArrivalsAt(t) {
			arrived += sl.Size
		}
		stepRes := server.Step(t, st.ArrivalsAt(t))
		for _, id := range stepRes.Finished {
			benefit += weights[id]
		}
		reserved += int64(server.Rate())
		sent += int64(stepRes.SentBytes)
		if server.Rate() > res.PeakRate {
			res.PeakRate = server.Rate()
		}
		server.SetRate(ctl.Tick(arrived, stepRes.Occupancy, buffer))
		res.Steps++
		if res.Steps > st.Horizon()+st.TotalBytes()+16 {
			return nil, fmt.Errorf("adaptive: run failed to terminate by step %d", res.Steps)
		}
	}
	res.Renegotiations = ctl.Changes()
	res.Benefit = benefit
	if tw := st.TotalWeight(); tw > 0 {
		res.WeightedLoss = (tw - benefit) / tw
	}
	if res.Steps > 0 {
		res.MeanReserved = float64(reserved) / float64(res.Steps)
	}
	if reserved > 0 {
		res.Utilization = float64(sent) / float64(reserved)
	}
	return res, nil
}
