package adaptive_test

import (
	"fmt"

	"repro/internal/adaptive"
	"repro/internal/drop"
	"repro/internal/stream"
)

// Example drives the RCBR controller over a stream whose rate doubles
// halfway: the reservation tracks the change with a handful of
// renegotiations instead of a peak-rate reservation.
func Example() {
	b := stream.NewBuilder()
	for t := 0; t < 64; t++ {
		size := 4
		if t >= 32 {
			size = 8 // the scene gets busy
		}
		b.Add(t, size, float64(size))
	}
	st := b.MustBuild()

	res, err := adaptive.Run(st, 32, adaptive.Config{Window: 8, Headroom: 1.25}, drop.Greedy)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("renegotiations: %d\n", res.Renegotiations)
	fmt.Printf("peak reservation: %d\n", res.PeakRate)
	fmt.Printf("lossless: %v\n", res.WeightedLoss == 0)
	// Output:
	// renegotiations: 3
	// peak reservation: 11
	// lossless: true
}
