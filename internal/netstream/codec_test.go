package netstream

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// decodeBoth decodes the same input with ReadMsg and Decoder.Next and
// checks the two paths fail (or succeed) identically.
func decodeBoth(t *testing.T, input []byte) (Msg, error) {
	t.Helper()
	m1, err1 := ReadMsg(bytes.NewReader(input))
	m2, err2 := NewDecoder(bytes.NewReader(input)).Next()
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("ReadMsg err %v but Decoder err %v", err1, err2)
	}
	if err1 == nil && !msgEqual(m1, m2) {
		t.Fatalf("ReadMsg %+v != Decoder %+v", m1, m2)
	}
	return m1, err1
}

// TestCodecErrorPaths — every malformed input yields a descriptive error,
// never a panic, on both decode paths.
func TestCodecErrorPaths(t *testing.T) {
	valid := func(fill func(e *Encoder)) []byte {
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		fill(e)
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	hello := valid(func(e *Encoder) { e.PutHello(Hello{ClientBuffer: 7, DesiredDelay: 3}) })
	data := valid(func(e *Encoder) {
		if err := e.PutData(&Data{SliceID: 1, Size: 4, Payload: []byte{1, 2, 3, 4}}); err != nil {
			t.Fatal(err)
		}
	})

	cases := []struct {
		name    string
		input   []byte
		wantSub string // substring the error message must contain
		wantErr error  // exact sentinel, when applicable
	}{
		{"empty input", nil, "", io.EOF},
		{"truncated hello header", hello[:3], "truncated hello", io.ErrUnexpectedEOF},
		{"truncated accept header", []byte{msgAccept, 1, 2}, "truncated accept", io.ErrUnexpectedEOF},
		{"truncated data header", data[:10], "truncated data header", io.ErrUnexpectedEOF},
		{"truncated data payload", data[:len(data)-2], "truncated data payload", io.ErrUnexpectedEOF},
		{"bad magic", corrupt(hello, 1), "", ErrBadMagic},
		{"bad version", corrupt(hello, 8), "", ErrBadMagic},
		{"oversized length field", oversizedData(), "exceeds limit", nil},
		{"unknown message type", []byte{0x7f, 1, 2, 3}, "unknown message tag 127", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeBoth(t, tc.input)
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Errorf("err = %v, want %v in the chain", err, tc.wantErr)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("err = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

// corrupt flips one byte of a copy of b.
func corrupt(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0xff
	return c
}

// oversizedData builds a data message whose length field exceeds
// MaxPayload: the decoder must reject it before allocating.
func oversizedData() []byte {
	var buf bytes.Buffer
	if err := WriteData(&buf, Data{SliceID: 1, Size: 1, Payload: []byte{1}}); err != nil {
		panic(err)
	}
	b := buf.Bytes()
	for i := 1 + dataHeadLen; i < 1+dataHeadLen+4; i++ {
		b[i] = 0xff
	}
	return b
}

// TestWriteDataRejectsOversizedPayload — the encode side enforces the same
// bound, on both the pooled helper and the batch encoder.
func TestWriteDataRejectsOversizedPayload(t *testing.T) {
	big := Data{SliceID: 1, Size: MaxPayload + 1, Payload: make([]byte, MaxPayload+1)}
	if err := WriteData(io.Discard, big); err == nil {
		t.Error("WriteData accepted an oversized payload")
	}
	e := NewEncoder(io.Discard)
	if err := e.PutData(&big); err == nil {
		t.Error("Encoder accepted an oversized payload")
	}
	if e.Buffered() != 0 {
		t.Errorf("rejected message left %d bytes in the batch", e.Buffered())
	}
}

// TestEncoderBatchesIntoOneWrite — N messages flushed together reach the
// writer as a single Write call with byte-identical content to the
// message-at-a-time helpers.
func TestEncoderBatchesIntoOneWrite(t *testing.T) {
	var want bytes.Buffer
	if err := WriteAccept(&want, Accept{Rate: 3, Delay: 7, ServerBuffer: 21, StepMicros: 40000}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		d := Data{SliceID: uint32(i), Size: 3, SendStep: uint32(i), Payload: []byte{byte(i), 1, 2}}
		if err := WriteData(&want, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteEnd(&want); err != nil {
		t.Fatal(err)
	}

	cw := &countingWriter{}
	e := NewEncoder(cw)
	e.PutAccept(Accept{Rate: 3, Delay: 7, ServerBuffer: 21, StepMicros: 40000})
	for i := 0; i < 5; i++ {
		d := Data{SliceID: uint32(i), Size: 3, SendStep: uint32(i), Payload: []byte{byte(i), 1, 2}}
		if err := e.PutData(&d); err != nil {
			t.Fatal(err)
		}
	}
	e.PutEnd()
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 1 {
		t.Errorf("batch took %d Write calls, want 1", cw.writes)
	}
	if !bytes.Equal(cw.buf.Bytes(), want.Bytes()) {
		t.Error("batched bytes differ from per-message writes")
	}
	// Idempotent empty flush.
	if err := e.Flush(); err != nil || cw.writes != 1 {
		t.Errorf("empty flush wrote again (writes=%d, err=%v)", cw.writes, err)
	}
}

type countingWriter struct {
	buf    bytes.Buffer
	writes int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

// TestDecoderReusesScratch — the decoder's aliasing contract: the payload
// of message k is overwritten by message k+1, and copying (as
// Receiver.Ingest does) is required to retain it.
func TestDecoderReusesScratch(t *testing.T) {
	var wire bytes.Buffer
	e := NewEncoder(&wire)
	if err := e.PutData(&Data{SliceID: 1, Size: 2, Payload: []byte{0xaa, 0xbb}}); err != nil {
		t.Fatal(err)
	}
	if err := e.PutData(&Data{SliceID: 2, Size: 2, Payload: []byte{0xcc, 0xdd}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&wire)
	m1, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	first := m1.Data.Payload
	m2, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if &first[0] != &m2.Data.Payload[0] {
		t.Error("decoder allocated a fresh payload buffer per message")
	}
	if !bytes.Equal(first, []byte{0xcc, 0xdd}) {
		t.Error("scratch not overwritten — aliasing contract documentation is wrong")
	}
	// ReadMsg, by contrast, hands out caller-owned memory.
	wire.Reset()
	if err := WriteData(&wire, Data{SliceID: 1, Size: 1, Payload: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := WriteData(&wire, Data{SliceID: 2, Size: 1, Payload: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	r1, err := ReadMsg(&wire)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMsg(&wire); err != nil {
		t.Fatal(err)
	}
	if r1.Data.Payload[0] != 1 {
		t.Error("ReadMsg payload mutated by the next read")
	}
}

// TestDecoderStreamRoundTrip — a whole session transcript decodes to the
// same message sequence via Decoder as via ReadMsg.
func TestDecoderStreamRoundTrip(t *testing.T) {
	var wire bytes.Buffer
	if err := WriteHello(&wire, Hello{ClientBuffer: 9, DesiredDelay: 4}); err != nil {
		t.Fatal(err)
	}
	if err := WriteAccept(&wire, Accept{Rate: 2, Delay: 4, ServerBuffer: 8, StepMicros: 1000}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d := Data{SliceID: uint32(i), Arrival: uint32(i / 2), Size: 5, Weight: float64(i),
			SendStep: uint32(i), Payload: []byte{byte(i), 1, 2, 3, 4}}
		if err := WriteData(&wire, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteEnd(&wire); err != nil {
		t.Fatal(err)
	}
	transcript := wire.Bytes()

	dec := NewDecoder(bytes.NewReader(transcript))
	rd := bytes.NewReader(transcript)
	for i := 0; ; i++ {
		a, errA := dec.Next()
		b, errB := ReadMsg(rd)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("message %d: Decoder err %v, ReadMsg err %v", i, errA, errB)
		}
		if errA != nil {
			if errA != io.EOF || errB != io.EOF {
				t.Fatalf("message %d: non-EOF termination: %v / %v", i, errA, errB)
			}
			break
		}
		if !msgEqual(a, b) {
			t.Fatalf("message %d: Decoder %+v != ReadMsg %+v", i, a, b)
		}
	}
}

// TestMsgWriteToRoundTrip pins the proxy-forwarding contract: re-encoding
// a decoded message produces the exact bytes that were read, for every
// message type, so a front tier can relay a handshake verbatim.
func TestMsgWriteToRoundTrip(t *testing.T) {
	var wire bytes.Buffer
	if err := WriteHello(&wire, Hello{ClientBuffer: 4096, DesiredDelay: 7}); err != nil {
		t.Fatal(err)
	}
	if err := WriteAccept(&wire, Accept{Rate: 300, Delay: 7, ServerBuffer: 2100, StepMicros: 40000}); err != nil {
		t.Fatal(err)
	}
	if err := WriteData(&wire, Data{StreamID: 2, SliceID: 9, Arrival: 3, Size: 10,
		Weight: 1.5, SendStep: 4, Offset: 5, Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	if err := WriteEnd(&wire); err != nil {
		t.Fatal(err)
	}
	transcript := wire.Bytes()

	rd := bytes.NewReader(transcript)
	var rewritten bytes.Buffer
	for i := 0; ; i++ {
		m, err := ReadMsg(rd)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		n, err := m.WriteTo(&rewritten)
		if err != nil {
			t.Fatalf("message %d: WriteTo: %v", i, err)
		}
		if n <= 0 {
			t.Fatalf("message %d: WriteTo wrote %d bytes", i, n)
		}
		if m.End {
			break
		}
	}
	if !bytes.Equal(rewritten.Bytes(), transcript) {
		t.Fatalf("re-encoded transcript differs:\n got %x\nwant %x", rewritten.Bytes(), transcript)
	}
}

func TestMsgWriteToEmpty(t *testing.T) {
	var m Msg
	if _, err := m.WriteTo(io.Discard); err == nil {
		t.Fatal("WriteTo on empty Msg succeeded")
	}
}
