package netstream

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/stream"
	"repro/internal/trace"
)

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf, Hello{ClientBuffer: 100, DesiredDelay: 7}); err != nil {
		t.Fatal(err)
	}
	if err := WriteAccept(&buf, Accept{Rate: 3, Delay: 7, ServerBuffer: 21, StepMicros: 40000}); err != nil {
		t.Fatal(err)
	}
	d := Data{SliceID: 5, Arrival: 2, Size: 4, Weight: 2.5, SendStep: 3, Offset: 1, Payload: []byte{9, 8}}
	if err := WriteData(&buf, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteEnd(&buf); err != nil {
		t.Fatal(err)
	}

	m1, err := ReadMsg(&buf)
	if err != nil || m1.Hello == nil || m1.Hello.ClientBuffer != 100 || m1.Hello.DesiredDelay != 7 {
		t.Fatalf("hello round trip: %+v, %v", m1, err)
	}
	m2, err := ReadMsg(&buf)
	if err != nil || m2.Accept == nil || *m2.Accept != (Accept{3, 7, 21, 40000}) {
		t.Fatalf("accept round trip: %+v, %v", m2, err)
	}
	m3, err := ReadMsg(&buf)
	if err != nil || m3.Data == nil {
		t.Fatalf("data round trip: %+v, %v", m3, err)
	}
	if m3.Data.SliceID != 5 || m3.Data.Weight != 2.5 || !bytes.Equal(m3.Data.Payload, []byte{9, 8}) {
		t.Fatalf("data fields: %+v", m3.Data)
	}
	m4, err := ReadMsg(&buf)
	if err != nil || !m4.End {
		t.Fatalf("end round trip: %+v, %v", m4, err)
	}
	if _, err := ReadMsg(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestCodecErrors(t *testing.T) {
	// Unknown tag.
	if _, err := ReadMsg(bytes.NewReader([]byte{99})); err == nil {
		t.Error("unknown tag accepted")
	}
	// Bad magic.
	var buf bytes.Buffer
	if err := WriteHello(&buf, Hello{}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[1] ^= 0xff
	if _, err := ReadMsg(bytes.NewReader(b)); err != ErrBadMagic {
		t.Errorf("corrupted magic: err = %v", err)
	}
	// Truncated data message.
	buf.Reset()
	if err := WriteData(&buf, Data{SliceID: 1, Size: 4, Payload: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadMsg(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated payload accepted")
	}
	// Oversize payload length field.
	big := make([]byte, 33)
	big[0] = msgData
	for i := 29; i < 33; i++ {
		big[i] = 0xff
	}
	if _, err := ReadMsg(bytes.NewReader(big)); err == nil {
		t.Error("oversize payload length accepted")
	}
}

func TestSenderValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewSender(&buf, SenderConfig{ServerBuffer: 0, Rate: 1}); err == nil {
		t.Error("B=0 accepted")
	}
	s, err := NewSender(&buf, SenderConfig{ServerBuffer: 4, Rate: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Delay() != 2 {
		t.Errorf("derived delay = %d, want 2", s.Delay())
	}
	// Payload size mismatch.
	_, err = s.Tick([]Offered{{Slice: stream.Slice{ID: 1, Size: 3}, Payload: []byte{1}}})
	if err == nil {
		t.Error("payload size mismatch accepted")
	}
	// Duplicate ID.
	if _, err := s.Tick([]Offered{{Slice: stream.Slice{ID: 2, Size: 1}, Payload: []byte{1}}}); err != nil {
		t.Fatal(err)
	}
	_, err = s.Tick([]Offered{{Slice: stream.Slice{ID: 2, Size: 1}, Payload: []byte{1}}})
	if err == nil {
		t.Error("duplicate slice ID accepted")
	}
}

// pump drives a sender over a whole stream and drains it.
func pump(t *testing.T, st *stream.Stream, cfg SenderConfig, w io.Writer) *Sender {
	t.Helper()
	s, err := NewSender(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step <= st.Horizon(); step++ {
		offers := OfferStream(st, step, func(sl stream.Slice) []byte {
			return SynthPayload(sl.ID, sl.Size)
		})
		if _, err := s.Tick(offers); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	return s
}

// receiveAll consumes a byte stream synchronously and returns the stats.
func receiveAll(t *testing.T, r io.Reader, delay int) (played []ReceivedSlice, incomplete int, rcv *Receiver) {
	t.Helper()
	rcv, err := NewReceiver(delay)
	if err != nil {
		t.Fatal(err)
	}
	playUpTo := -1
	flush := func(step int) {
		for playUpTo < step {
			playUpTo++
			ev := rcv.Play(playUpTo)
			played = append(played, ev.Slices...)
			incomplete += ev.Incomplete
		}
	}
	maxFrame := -1
	for {
		msg, err := ReadMsg(r)
		if err != nil {
			t.Fatal(err)
		}
		if msg.End {
			break
		}
		flush(int(msg.Data.SendStep) - 1)
		if int(msg.Data.Arrival) > maxFrame {
			maxFrame = int(msg.Data.Arrival)
		}
		if err := rcv.Ingest(msg.Data); err != nil {
			t.Fatal(err)
		}
	}
	flush(maxFrame + delay)
	return played, incomplete, rcv
}

// TestEndToEndMatchesSimulation — the wire pipeline plays exactly the same
// slices as core.Simulate with the same parameters.
func TestEndToEndMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		b := stream.NewBuilder()
		n := rng.Intn(30) + 5
		for i := 0; i < n; i++ {
			size := rng.Intn(4) + 1
			b.Add(rng.Intn(10), size, float64(rng.Intn(20)+1))
		}
		st := b.MustBuild()
		R := rng.Intn(3) + 1
		B := R * (rng.Intn(4) + st.MaxSliceSize())

		var wire bytes.Buffer
		snd := pump(t, st, SenderConfig{ServerBuffer: B, Rate: R, Policy: drop.Greedy}, &wire)
		played, incomplete, _ := receiveAll(t, &wire, snd.Delay())

		sim, err := core.Simulate(st, core.Config{ServerBuffer: B, Rate: R, Policy: drop.Greedy})
		if err != nil {
			t.Fatal(err)
		}
		wantPlayed := map[int]bool{}
		for id, o := range sim.Outcomes {
			if o.Played() {
				wantPlayed[id] = true
			}
		}
		if incomplete != 0 {
			t.Fatalf("trial %d: %d incomplete slices on a lossless wire", trial, incomplete)
		}
		if len(played) != len(wantPlayed) {
			t.Fatalf("trial %d: wire played %d slices, simulation %d", trial, len(played), len(wantPlayed))
		}
		var benefit float64
		for _, sl := range played {
			if !wantPlayed[sl.ID] {
				t.Fatalf("trial %d: wire played slice %d the simulation dropped", trial, sl.ID)
			}
			if !bytes.Equal(sl.Payload, SynthPayload(sl.ID, sl.Size)) {
				t.Fatalf("trial %d: slice %d payload corrupted", trial, sl.ID)
			}
			benefit += sl.Weight
		}
		if math.Abs(benefit-sim.Benefit()) > 1e-9 {
			t.Fatalf("trial %d: wire benefit %v != sim benefit %v", trial, benefit, sim.Benefit())
		}
	}
}

func TestReceiverLateBytesDiscarded(t *testing.T) {
	rcv, err := NewReceiver(1)
	if err != nil {
		t.Fatal(err)
	}
	// Frame 0 plays at step 1.
	if err := rcv.Ingest(&Data{SliceID: 0, Arrival: 0, Size: 2, SendStep: 0, Offset: 0, Payload: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	ev := rcv.Play(0)
	if len(ev.Slices) != 0 || ev.Incomplete != 0 {
		t.Fatalf("Play(0) = %+v", ev)
	}
	ev = rcv.Play(1)
	if ev.Incomplete != 1 {
		t.Fatalf("incomplete slice not reported: %+v", ev)
	}
	// A late byte of frame 0 arrives afterwards: discarded and counted.
	if err := rcv.Ingest(&Data{SliceID: 0, Arrival: 0, Size: 2, SendStep: 5, Offset: 1, Payload: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	if rcv.LateBytes() != 1 {
		t.Errorf("LateBytes = %d, want 1", rcv.LateBytes())
	}
	if rcv.Occupancy() != 0 {
		t.Errorf("occupancy = %d after late discard", rcv.Occupancy())
	}
}

func TestReceiverBadMessages(t *testing.T) {
	rcv, err := NewReceiver(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rcv.Ingest(&Data{SliceID: 1, Arrival: 0, Size: 0}); err == nil {
		t.Error("zero-size slice accepted")
	}
	if err := rcv.Ingest(&Data{SliceID: 2, Arrival: 0, Size: 2, Offset: 2, Payload: []byte{1}}); err == nil {
		t.Error("out-of-range offset accepted")
	}
	if _, err := NewReceiver(-1); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestSynthPayloadDeterministic(t *testing.T) {
	a := SynthPayload(7, 64)
	b := SynthPayload(7, 64)
	if !bytes.Equal(a, b) {
		t.Error("payload not deterministic")
	}
	c := SynthPayload(8, 64)
	if bytes.Equal(a, c) {
		t.Error("different IDs produced identical payloads")
	}
}

// TestServeReceiveOverPipe exercises the real-time wrappers end to end over
// an in-memory full-duplex connection.
func TestServeReceiveOverPipe(t *testing.T) {
	clipCfg := trace.DefaultGenConfig()
	clipCfg.Frames = 40
	clipCfg.MaxFrame = 30
	clipCfg.MeanI, clipCfg.MeanP, clipCfg.MeanB = 20, 14, 6
	clip, err := trace.Generate(clipCfg)
	if err != nil {
		t.Fatal(err)
	}

	server, client := net.Pipe()
	serveErr := make(chan error, 1)
	go func() {
		defer server.Close()
		serveErr <- Serve(server, clip, trace.PaperWeights(), ServeConfig{
			Rate:         2 * int(clip.AverageRate()),
			StepDuration: 200 * time.Microsecond,
			MaxDelay:     16,
		})
	}()

	var events int
	stats, err := Receive(client, 0, 8, func(PlayEvent) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if stats.Delay != 8 {
		t.Errorf("negotiated delay = %d, want 8", stats.Delay)
	}
	if stats.Corrupt != 0 {
		t.Errorf("%d corrupt slices", stats.Corrupt)
	}
	// The link rate is 2x the average: with delay 8 nothing should drop.
	if stats.Played != len(clip.Frames) {
		t.Errorf("played %d of %d frames (incomplete %d)", stats.Played, len(clip.Frames), stats.Incomplete)
	}
	if events == 0 {
		t.Error("no play events delivered")
	}
	if stats.LateBytes != 0 {
		t.Errorf("late bytes: %d", stats.LateBytes)
	}
}

func TestServeRejectsGarbageHello(t *testing.T) {
	server, client := net.Pipe()
	done := make(chan error, 1)
	go func() {
		defer server.Close()
		clip := &trace.Clip{Frames: []trace.Frame{{Index: 0, Type: trace.I, Size: 1}}}
		done <- Serve(server, clip, trace.PaperWeights(), ServeConfig{Rate: 1})
	}()
	if err := client.SetWriteDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write([]byte{msgHello, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	err := <-done
	if err == nil {
		t.Error("garbage hello accepted")
	}
	_ = client.Close()
	if !strings.Contains(err.Error(), "magic") && !strings.Contains(err.Error(), "hello") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestServeNegotiationBranches(t *testing.T) {
	clip := &trace.Clip{Frames: []trace.Frame{{Index: 0, Type: trace.I, Size: 4}}}

	// Desired delay above MaxDelay is clamped; a small advertised client
	// buffer caps B (and thus D).
	cases := []struct {
		hello     Hello
		wantDelay uint32
	}{
		{Hello{DesiredDelay: 999}, 8},                // clamped to MaxDelay
		{Hello{DesiredDelay: 0}, 8},                  // default to MaxDelay
		{Hello{DesiredDelay: 6, ClientBuffer: 8}, 4}, // capped by client buffer: B=8 -> D=8/2
	}
	for i, tc := range cases {
		server, client := net.Pipe()
		done := make(chan error, 1)
		go func() {
			defer server.Close()
			done <- Serve(server, clip, trace.PaperWeights(), ServeConfig{
				Rate:         2,
				StepDuration: 100 * time.Microsecond,
				MaxDelay:     8,
			})
		}()
		if err := WriteHello(client, tc.hello); err != nil {
			t.Fatal(err)
		}
		msg, err := ReadMsg(client)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if msg.Accept == nil || msg.Accept.Delay != tc.wantDelay {
			t.Errorf("case %d: accept = %+v, want delay %d", i, msg.Accept, tc.wantDelay)
		}
		// Drain the rest of the session.
		for {
			m, err := ReadMsg(client)
			if err != nil || m.End {
				break
			}
		}
		_ = client.Close()
		<-done
	}
}

func TestServeRejectsBadRate(t *testing.T) {
	clip := &trace.Clip{Frames: []trace.Frame{{Index: 0, Type: trace.I, Size: 1}}}
	var buf bytes.Buffer
	if err := Serve(&buf, clip, trace.PaperWeights(), ServeConfig{Rate: 0}); err == nil {
		t.Error("rate 0 accepted")
	}
}
