package netstream

import (
	"io"
	"testing"

	"repro/internal/drop"
	"repro/internal/trace"
)

// rewindReader replays the same byte slice forever, so decode benchmarks
// never run out of input.
type rewindReader struct {
	buf []byte
	off int
}

func (r *rewindReader) Read(p []byte) (int, error) {
	if r.off == len(r.buf) {
		r.off = 0
	}
	n := copy(p, r.buf[r.off:])
	r.off += n
	return n, nil
}

// BenchmarkCodecEncodeDecode measures the steady-state wire codec: one
// batched encode (Encoder) plus one decode (Decoder) of a Data message.
// Both sides must be 0 allocs/op — the encoder appends into a reused batch
// buffer, the decoder reads payloads into a reused scratch buffer.
func BenchmarkCodecEncodeDecode(b *testing.B) {
	payload := SynthPayload(7, 1024)
	d := Data{StreamID: 1, SliceID: 7, Arrival: 3, Size: 1024, Weight: 12,
		SendStep: 5, Offset: 0, Payload: payload}

	b.Run("encode", func(b *testing.B) {
		enc := NewEncoder(io.Discard)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.PutData(&d); err != nil {
				b.Fatal(err)
			}
			if err := enc.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		var wire []byte
		wire = appendData(wire, &d)
		dec := NewDecoder(&rewindReader{buf: wire})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			msg, err := dec.Next()
			if err != nil {
				b.Fatal(err)
			}
			if msg.Data == nil || len(msg.Data.Payload) != len(payload) {
				b.Fatal("bad decode")
			}
		}
	})
	b.Run("roundtrip", func(b *testing.B) {
		var wire []byte
		wire = appendData(wire, &d)
		enc := NewEncoder(io.Discard)
		dec := NewDecoder(&rewindReader{buf: wire})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.PutData(&d); err != nil {
				b.Fatal(err)
			}
			if err := enc.Flush(); err != nil {
				b.Fatal(err)
			}
			if _, err := dec.Next(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSenderTick measures one sender model step in steady state —
// arrivals into the smoothing buffer, framing, and the batched flush to a
// discarding wire. The encode path allocates nothing; residual allocs/op
// come only from amortized map growth in the session's slice bookkeeping.
func BenchmarkSenderTick(b *testing.B) {
	cfg := trace.DefaultGenConfig()
	cfg.Frames = 1000
	clip, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	st, err := trace.WholeFrameStream(clip, trace.PaperWeights())
	if err != nil {
		b.Fatal(err)
	}
	horizon := st.Horizon()
	rate := int(1.1 * st.AverageRate())
	payloads := make([][]byte, st.Len())
	for id := 0; id < st.Len(); id++ {
		payloads[id] = SynthPayload(id, st.Slice(id).Size)
	}
	newSender := func() *Sender {
		s, err := NewSender(io.Discard, SenderConfig{
			ServerBuffer: rate * 16, Rate: rate, Policy: drop.Greedy,
		})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	var offers []Offered
	b.ReportAllocs()
	b.ResetTimer()
	snd := newSender()
	t := 0
	for i := 0; i < b.N; i++ {
		if t > horizon && snd.Backlog() == 0 {
			// Stream exhausted and drained: restart on a fresh sender so
			// slice IDs never collide, without timing the rebuild.
			b.StopTimer()
			snd = newSender()
			t = 0
			b.StartTimer()
		}
		offers = offers[:0]
		if t <= horizon {
			for _, sl := range st.ArrivalsAt(t) {
				offers = append(offers, Offered{Slice: sl, Payload: payloads[sl.ID]})
			}
		}
		if _, err := snd.Tick(offers); err != nil {
			b.Fatal(err)
		}
		t++
	}
}
