package netstream_test

import (
	"bytes"
	"fmt"

	"repro/internal/drop"
	"repro/internal/netstream"
	"repro/internal/stream"
)

// Example pushes three slices through a Sender/Receiver pair over an
// in-memory wire, demonstrating the step-driven session API.
func Example() {
	var wire bytes.Buffer
	snd, _ := netstream.NewSender(&wire, netstream.SenderConfig{
		ServerBuffer: 4,
		Rate:         2,
		Policy:       drop.Greedy,
	})
	fmt.Printf("negotiated delay D = %d\n", snd.Delay())

	payload := func(sl stream.Slice) []byte { return netstream.SynthPayload(sl.ID, sl.Size) }
	st := stream.NewBuilder().
		Add(0, 2, 2).
		Add(0, 2, 2).
		Add(1, 2, 2).
		MustBuild()
	for step := 0; step <= st.Horizon(); step++ {
		if _, err := snd.Tick(netstream.OfferStream(st, step, payload)); err != nil {
			fmt.Println(err)
			return
		}
	}
	if _, err := snd.Drain(); err != nil {
		fmt.Println(err)
		return
	}

	rcv, _ := netstream.NewReceiver(snd.Delay())
	played := 0
	for {
		msg, err := netstream.ReadMsg(&wire)
		if err != nil || msg.End {
			break
		}
		_ = rcv.Ingest(msg.Data)
	}
	for step := 0; step <= st.Horizon()+snd.Delay(); step++ {
		played += len(rcv.Play(step).Slices)
	}
	fmt.Printf("played %d of %d slices, %d late bytes\n", played, st.Len(), rcv.LateBytes())
	// Output:
	// negotiated delay D = 2
	// played 3 of 3 slices, 0 late bytes
}
