// Package netstream carries smoothed real-time streams over a real
// transport (any io.ReadWriter; the cmd/smoothd and cmd/smoothplay tools
// use TCP). It is the system of Fig. 1 of the paper made concrete:
//
//   - the sender wraps core.Server: it buffers offered slices, transmits
//     FIFO at the negotiated rate each step (pacing), and discards slices
//     via a drop.Policy on overflow;
//   - the receiver reassembles slices and plays frame t exactly D steps
//     after its send step, anchored at the first received message — the
//     paper's clock-synchronization-free client (Section 3.3);
//   - the handshake negotiates B, R and D so that B = R·D holds.
//
// The wire format is a simple length-delimited binary protocol
// (big-endian, stdlib encoding/binary), versioned and magic-tagged.
//
// # Encoding and aliasing contract
//
// The hot wire paths are allocation-free in steady state:
//
//   - Encoder accumulates every message of one model step in a reused
//     buffer and hands the whole batch to the writer in a single Write
//     call (one syscall per step instead of one per message).
//   - Decoder reuses a payload scratch buffer; the Msg it returns — in
//     particular Msg.Data and Msg.Data.Payload — aliases decoder-owned
//     memory that the next call overwrites. Callers that retain a message
//     across calls must copy (Receiver.Ingest copies payload bytes
//     immediately, so the receive loops in this package are safe).
//   - The one-shot WriteHello/WriteAccept/WriteData/WriteEnd helpers draw
//     their staging buffers from a sync.Pool, and ReadMsg returns fresh
//     memory the caller owns.
package netstream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Protocol constants.
const (
	// Magic tags every Hello message.
	Magic = 0x534d5448 // "SMTH"
	// Version of the wire protocol. Version 2 added StreamID to Data
	// (multiplexed sessions).
	Version = 2
	// MaxPayload bounds a single data message's payload, as a defense
	// against corrupt length fields.
	MaxPayload = 16 << 20
)

// Message type tags.
const (
	msgHello  = 1
	msgAccept = 2
	msgData   = 3
	msgEnd    = 4
)

// Fixed message body lengths (excluding the one-byte tag).
const (
	helloBodyLen  = 16
	acceptBodyLen = 16
	dataHeadLen   = 32 // fixed Data fields, before the payload length + bytes
)

// Hello is the client's opening message: it advertises its buffer and the
// smoothing delay it is willing to tolerate (Section 3.3's setup protocol:
// "the client and the server advertise their buffer size in the connection
// setup message; a client may also specify the desired latency").
type Hello struct {
	ClientBuffer uint32
	DesiredDelay uint32
}

// Accept is the server's reply fixing the session parameters, chosen so
// that B = R·D.
type Accept struct {
	Rate         uint32
	Delay        uint32
	ServerBuffer uint32
	// StepMicros is the wall-clock duration of one model step in
	// microseconds, for real-time pacing.
	StepMicros uint32
}

// Data carries a contiguous run of bytes of one slice sent in one step.
type Data struct {
	// StreamID identifies the substream in a multiplexed session
	// (0 for single-stream sessions). Slices of different substreams
	// share one smoothing buffer and one paced link — the statistical-
	// multiplexing deployment of package mux, on the wire.
	StreamID uint32
	SliceID  uint32
	Arrival  uint32
	Size     uint32
	Weight   float64
	// SendStep is the model step in which these bytes entered the link;
	// the receiver anchors its playout clock to it.
	SendStep uint32
	// Offset is the index of the first payload byte within the slice.
	Offset  uint32
	Payload []byte
}

// Msg is a decoded protocol message: exactly one field is non-nil/true.
type Msg struct {
	Hello  *Hello
	Accept *Accept
	Data   *Data
	End    bool
}

// ErrBadMagic reports a Hello with the wrong magic or version.
var ErrBadMagic = errors.New("netstream: bad magic or protocol version")

// ---------------------------------------------------------------------------
// Append-style encoders (shared by Encoder and the pooled Write helpers).
// ---------------------------------------------------------------------------

//smoothvet:noalloc
func appendHello(buf []byte, h Hello) []byte {
	buf = append(buf, msgHello)
	buf = binary.BigEndian.AppendUint32(buf, Magic)
	buf = binary.BigEndian.AppendUint32(buf, Version)
	buf = binary.BigEndian.AppendUint32(buf, h.ClientBuffer)
	return binary.BigEndian.AppendUint32(buf, h.DesiredDelay)
}

//smoothvet:noalloc
func appendAccept(buf []byte, a Accept) []byte {
	buf = append(buf, msgAccept)
	buf = binary.BigEndian.AppendUint32(buf, a.Rate)
	buf = binary.BigEndian.AppendUint32(buf, a.Delay)
	buf = binary.BigEndian.AppendUint32(buf, a.ServerBuffer)
	return binary.BigEndian.AppendUint32(buf, a.StepMicros)
}

//smoothvet:noalloc
func appendData(buf []byte, d *Data) []byte {
	buf = append(buf, msgData)
	buf = binary.BigEndian.AppendUint32(buf, d.StreamID)
	buf = binary.BigEndian.AppendUint32(buf, d.SliceID)
	buf = binary.BigEndian.AppendUint32(buf, d.Arrival)
	buf = binary.BigEndian.AppendUint32(buf, d.Size)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(d.Weight))
	buf = binary.BigEndian.AppendUint32(buf, d.SendStep)
	buf = binary.BigEndian.AppendUint32(buf, d.Offset)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(d.Payload)))
	return append(buf, d.Payload...)
}

// encBufPool holds staging buffers for the one-shot Write helpers so a
// handshake or a sporadic standalone WriteData does not allocate.
var encBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// maxPooledBuf caps the staging buffers retained by the pool (and the batch
// buffer retained by an Encoder across flushes): anything larger is left for
// the collector rather than pinned forever.
const maxPooledBuf = 1 << 20

func writePooled(w io.Writer, fill func([]byte) []byte) error {
	bp := encBufPool.Get().(*[]byte)
	buf := fill((*bp)[:0])
	_, err := w.Write(buf)
	if cap(buf) <= maxPooledBuf {
		*bp = buf[:0]
	}
	encBufPool.Put(bp)
	return err
}

// WriteHello writes a Hello message.
func WriteHello(w io.Writer, h Hello) error {
	return writePooled(w, func(buf []byte) []byte { return appendHello(buf, h) })
}

// WriteAccept writes an Accept message.
func WriteAccept(w io.Writer, a Accept) error {
	return writePooled(w, func(buf []byte) []byte { return appendAccept(buf, a) })
}

// WriteData writes a Data message.
func WriteData(w io.Writer, d Data) error {
	if len(d.Payload) > MaxPayload {
		return fmt.Errorf("netstream: payload %d exceeds limit %d", len(d.Payload), MaxPayload)
	}
	return writePooled(w, func(buf []byte) []byte { return appendData(buf, &d) })
}

// WriteEnd writes the end-of-stream marker.
func WriteEnd(w io.Writer) error {
	_, err := w.Write([]byte{msgEnd})
	return err
}

// ---------------------------------------------------------------------------
// Encoder: batched, allocation-free message encoding.
// ---------------------------------------------------------------------------

// Encoder accumulates encoded messages in one reused buffer and writes the
// whole batch with a single Write on Flush — the writev-style coalescing
// the serving engine relies on: all Data messages a session emits in one
// model step cost one syscall. Steady-state encoding allocates nothing.
//
// An Encoder is not safe for concurrent use.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder returns an encoder batching writes to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// PutHello appends a Hello message to the batch.
func (e *Encoder) PutHello(h Hello) { e.buf = appendHello(e.buf, h) }

// PutAccept appends an Accept message to the batch.
func (e *Encoder) PutAccept(a Accept) { e.buf = appendAccept(e.buf, a) }

// PutData appends a Data message to the batch. The payload bytes are copied
// into the batch buffer, so the caller may reuse them immediately.
//
//smoothvet:noalloc
func (e *Encoder) PutData(d *Data) error {
	if len(d.Payload) > MaxPayload {
		return fmt.Errorf("netstream: payload %d exceeds limit %d", len(d.Payload), MaxPayload)
	}
	e.buf = appendData(e.buf, d)
	return nil
}

// PutEnd appends the end-of-stream marker to the batch.
func (e *Encoder) PutEnd() { e.buf = append(e.buf, msgEnd) }

// Buffered returns the number of bytes batched but not yet flushed.
func (e *Encoder) Buffered() int { return len(e.buf) }

// Flush writes the batched messages with one Write call and resets the
// batch. Flushing an empty batch is a no-op.
//
//smoothvet:noalloc
func (e *Encoder) Flush() error {
	if len(e.buf) == 0 {
		return nil
	}
	_, err := e.w.Write(e.buf)
	if cap(e.buf) > maxPooledBuf {
		e.buf = nil // don't pin a pathological step forever
	} else {
		e.buf = e.buf[:0]
	}
	return err
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

func decodeHello(buf []byte) (Hello, error) {
	if binary.BigEndian.Uint32(buf[0:]) != Magic || binary.BigEndian.Uint32(buf[4:]) != Version {
		return Hello{}, ErrBadMagic
	}
	return Hello{
		ClientBuffer: binary.BigEndian.Uint32(buf[8:]),
		DesiredDelay: binary.BigEndian.Uint32(buf[12:]),
	}, nil
}

func decodeAccept(buf []byte) Accept {
	return Accept{
		Rate:         binary.BigEndian.Uint32(buf[0:]),
		Delay:        binary.BigEndian.Uint32(buf[4:]),
		ServerBuffer: binary.BigEndian.Uint32(buf[8:]),
		StepMicros:   binary.BigEndian.Uint32(buf[12:]),
	}
}

// decodeDataHead fills everything but the payload and returns the declared
// payload length.
//
//smoothvet:noalloc
func decodeDataHead(buf []byte, d *Data) (int, error) {
	n := binary.BigEndian.Uint32(buf[32:])
	if n > MaxPayload {
		return 0, fmt.Errorf("netstream: payload length %d exceeds limit %d", n, MaxPayload)
	}
	d.StreamID = binary.BigEndian.Uint32(buf[0:])
	d.SliceID = binary.BigEndian.Uint32(buf[4:])
	d.Arrival = binary.BigEndian.Uint32(buf[8:])
	d.Size = binary.BigEndian.Uint32(buf[12:])
	d.Weight = math.Float64frombits(binary.BigEndian.Uint64(buf[16:]))
	d.SendStep = binary.BigEndian.Uint32(buf[24:])
	d.Offset = binary.BigEndian.Uint32(buf[28:])
	return int(n), nil
}

// readBody reads a fixed-length message body, turning a mid-message EOF
// into a descriptive error (only a clean EOF before any tag byte is a
// legitimate end of stream).
//
//smoothvet:noalloc
func readBody(r io.Reader, buf []byte, what string) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("netstream: truncated %s: %w", what, err)
	}
	return nil
}

// Decoder reads protocol messages with reused decode state: one scratch
// buffer receives every Data payload, so a steady-state receive loop
// allocates nothing per message.
//
// Aliasing contract: the Msg returned by Next — including Msg.Hello,
// Msg.Accept, Msg.Data and Msg.Data.Payload — points into decoder-owned
// memory that the next Next call overwrites. Retain across calls only by
// copying. A Decoder is not safe for concurrent use.
type Decoder struct {
	r       io.Reader
	head    [36]byte
	hello   Hello
	accept  Accept
	data    Data
	scratch []byte
}

// NewDecoder returns a decoder reading from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Reset switches the decoder to read from r, retaining the payload scratch
// buffer. The load generator's shard reactors use one decoder per shard,
// re-pointed at each session's buffered bytes, so ten thousand sessions
// share one scratch allocation.
//
//smoothvet:noalloc
func (dec *Decoder) Reset(r io.Reader) { dec.r = r }

// SizeNext reports the total encoded length — tag byte included — of the
// first message in buf, when buf holds enough bytes to determine it. It
// returns 0 (and no error) when more bytes are needed, and an error for an
// unknown tag or a payload length beyond MaxPayload. Reactor-style readers
// use it to feed a Decoder only complete messages, so a partial message
// split across reads is never mistaken for truncation.
//
//smoothvet:noalloc
func SizeNext(buf []byte) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	switch buf[0] {
	case msgHello:
		return 1 + helloBodyLen, nil
	case msgAccept:
		return 1 + acceptBodyLen, nil
	case msgData:
		if len(buf) < 1+dataHeadLen+4 {
			return 0, nil
		}
		n := binary.BigEndian.Uint32(buf[1+dataHeadLen:])
		if n > MaxPayload {
			return 0, fmt.Errorf("netstream: payload length %d exceeds limit %d", n, MaxPayload)
		}
		return 1 + dataHeadLen + 4 + int(n), nil
	case msgEnd:
		return 1, nil
	default:
		return 0, fmt.Errorf("netstream: unknown message tag %d", buf[0])
	}
}

// Next reads and decodes the next message. See the Decoder aliasing
// contract. io.EOF is returned verbatim only at a clean message boundary;
// truncation inside a message yields a descriptive error wrapping
// io.ErrUnexpectedEOF.
//
//smoothvet:aliased
//smoothvet:noalloc
func (dec *Decoder) Next() (Msg, error) {
	if _, err := io.ReadFull(dec.r, dec.head[:1]); err != nil {
		return Msg{}, err
	}
	switch dec.head[0] {
	case msgHello:
		if err := readBody(dec.r, dec.head[:helloBodyLen], "hello"); err != nil {
			return Msg{}, err
		}
		h, err := decodeHello(dec.head[:helloBodyLen])
		if err != nil {
			return Msg{}, err
		}
		dec.hello = h
		return Msg{Hello: &dec.hello}, nil
	case msgAccept:
		if err := readBody(dec.r, dec.head[:acceptBodyLen], "accept"); err != nil {
			return Msg{}, err
		}
		dec.accept = decodeAccept(dec.head[:acceptBodyLen])
		return Msg{Accept: &dec.accept}, nil
	case msgData:
		if err := readBody(dec.r, dec.head[:dataHeadLen+4], "data header"); err != nil {
			return Msg{}, err
		}
		n, err := decodeDataHead(dec.head[:dataHeadLen+4], &dec.data)
		if err != nil {
			return Msg{}, err
		}
		if cap(dec.scratch) < n {
			dec.scratch = make([]byte, n)
		}
		dec.data.Payload = dec.scratch[:n]
		if err := readBody(dec.r, dec.data.Payload, "data payload"); err != nil {
			return Msg{}, err
		}
		return Msg{Data: &dec.data}, nil
	case msgEnd:
		return Msg{End: true}, nil
	default:
		return Msg{}, fmt.Errorf("netstream: unknown message tag %d", dec.head[0])
	}
}

// WriteTo re-encodes the message onto w, byte-identical to its original
// wire form. Proxies use it to forward a decoded handshake message
// verbatim: ReadMsg from one peer, WriteTo on the other. Exactly one of
// the Msg's fields must be set; a zero Msg is an error. The staging
// buffer comes from the shared encoder pool, so forwarding a handshake
// does not allocate in steady state. Msg implements io.WriterTo.
func (m Msg) WriteTo(w io.Writer) (int64, error) {
	if m.Hello == nil && m.Accept == nil && m.Data == nil && !m.End {
		return 0, errors.New("netstream: WriteTo on an empty Msg")
	}
	if m.Data != nil && len(m.Data.Payload) > MaxPayload {
		return 0, fmt.Errorf("netstream: payload %d exceeds limit %d", len(m.Data.Payload), MaxPayload)
	}
	var n int
	err := writePooled(w, func(buf []byte) []byte {
		switch {
		case m.Hello != nil:
			buf = appendHello(buf, *m.Hello)
		case m.Accept != nil:
			buf = appendAccept(buf, *m.Accept)
		case m.Data != nil:
			buf = appendData(buf, m.Data)
		default:
			buf = append(buf, msgEnd)
		}
		n = len(buf)
		return buf
	})
	return int64(n), err
}

// ReadMsg reads and decodes the next message. Unlike Decoder.Next, the
// returned message owns its memory; use a Decoder on hot receive loops.
func ReadMsg(r io.Reader) (Msg, error) {
	var head [36]byte
	if _, err := io.ReadFull(r, head[:1]); err != nil {
		return Msg{}, err
	}
	switch head[0] {
	case msgHello:
		if err := readBody(r, head[:helloBodyLen], "hello"); err != nil {
			return Msg{}, err
		}
		h, err := decodeHello(head[:helloBodyLen])
		if err != nil {
			return Msg{}, err
		}
		return Msg{Hello: &h}, nil
	case msgAccept:
		if err := readBody(r, head[:acceptBodyLen], "accept"); err != nil {
			return Msg{}, err
		}
		a := decodeAccept(head[:acceptBodyLen])
		return Msg{Accept: &a}, nil
	case msgData:
		if err := readBody(r, head[:dataHeadLen+4], "data header"); err != nil {
			return Msg{}, err
		}
		d := &Data{}
		n, err := decodeDataHead(head[:dataHeadLen+4], d)
		if err != nil {
			return Msg{}, err
		}
		d.Payload = make([]byte, n)
		if err := readBody(r, d.Payload, "data payload"); err != nil {
			return Msg{}, err
		}
		return Msg{Data: d}, nil
	case msgEnd:
		return Msg{End: true}, nil
	default:
		return Msg{}, fmt.Errorf("netstream: unknown message tag %d", head[0])
	}
}
