// Package netstream carries smoothed real-time streams over a real
// transport (any io.ReadWriter; the cmd/smoothd and cmd/smoothplay tools
// use TCP). It is the system of Fig. 1 of the paper made concrete:
//
//   - the sender wraps core.Server: it buffers offered slices, transmits
//     FIFO at the negotiated rate each step (pacing), and discards slices
//     via a drop.Policy on overflow;
//   - the receiver reassembles slices and plays frame t exactly D steps
//     after its send step, anchored at the first received message — the
//     paper's clock-synchronization-free client (Section 3.3);
//   - the handshake negotiates B, R and D so that B = R·D holds.
//
// The wire format is a simple length-delimited binary protocol
// (big-endian, stdlib encoding/binary), versioned and magic-tagged.
package netstream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Protocol constants.
const (
	// Magic tags every Hello message.
	Magic = 0x534d5448 // "SMTH"
	// Version of the wire protocol. Version 2 added StreamID to Data
	// (multiplexed sessions).
	Version = 2
	// MaxPayload bounds a single data message's payload, as a defense
	// against corrupt length fields.
	MaxPayload = 16 << 20
)

// Message type tags.
const (
	msgHello  = 1
	msgAccept = 2
	msgData   = 3
	msgEnd    = 4
)

// Hello is the client's opening message: it advertises its buffer and the
// smoothing delay it is willing to tolerate (Section 3.3's setup protocol:
// "the client and the server advertise their buffer size in the connection
// setup message; a client may also specify the desired latency").
type Hello struct {
	ClientBuffer uint32
	DesiredDelay uint32
}

// Accept is the server's reply fixing the session parameters, chosen so
// that B = R·D.
type Accept struct {
	Rate         uint32
	Delay        uint32
	ServerBuffer uint32
	// StepMicros is the wall-clock duration of one model step in
	// microseconds, for real-time pacing.
	StepMicros uint32
}

// Data carries a contiguous run of bytes of one slice sent in one step.
type Data struct {
	// StreamID identifies the substream in a multiplexed session
	// (0 for single-stream sessions). Slices of different substreams
	// share one smoothing buffer and one paced link — the statistical-
	// multiplexing deployment of package mux, on the wire.
	StreamID uint32
	SliceID  uint32
	Arrival  uint32
	Size     uint32
	Weight   float64
	// SendStep is the model step in which these bytes entered the link;
	// the receiver anchors its playout clock to it.
	SendStep uint32
	// Offset is the index of the first payload byte within the slice.
	Offset  uint32
	Payload []byte
}

// Msg is a decoded protocol message: exactly one field is non-nil/true.
type Msg struct {
	Hello  *Hello
	Accept *Accept
	Data   *Data
	End    bool
}

// ErrBadMagic reports a Hello with the wrong magic or version.
var ErrBadMagic = errors.New("netstream: bad magic or protocol version")

// WriteHello writes a Hello message.
func WriteHello(w io.Writer, h Hello) error {
	buf := make([]byte, 1+4+4+4+4)
	buf[0] = msgHello
	binary.BigEndian.PutUint32(buf[1:], Magic)
	binary.BigEndian.PutUint32(buf[5:], Version)
	binary.BigEndian.PutUint32(buf[9:], h.ClientBuffer)
	binary.BigEndian.PutUint32(buf[13:], h.DesiredDelay)
	_, err := w.Write(buf)
	return err
}

// WriteAccept writes an Accept message.
func WriteAccept(w io.Writer, a Accept) error {
	buf := make([]byte, 1+4*4)
	buf[0] = msgAccept
	binary.BigEndian.PutUint32(buf[1:], a.Rate)
	binary.BigEndian.PutUint32(buf[5:], a.Delay)
	binary.BigEndian.PutUint32(buf[9:], a.ServerBuffer)
	binary.BigEndian.PutUint32(buf[13:], a.StepMicros)
	_, err := w.Write(buf)
	return err
}

// WriteData writes a Data message.
func WriteData(w io.Writer, d Data) error {
	if len(d.Payload) > MaxPayload {
		return fmt.Errorf("netstream: payload %d exceeds limit %d", len(d.Payload), MaxPayload)
	}
	head := make([]byte, 1+4*7+8)
	head[0] = msgData
	binary.BigEndian.PutUint32(head[1:], d.StreamID)
	binary.BigEndian.PutUint32(head[5:], d.SliceID)
	binary.BigEndian.PutUint32(head[9:], d.Arrival)
	binary.BigEndian.PutUint32(head[13:], d.Size)
	binary.BigEndian.PutUint64(head[17:], math.Float64bits(d.Weight))
	binary.BigEndian.PutUint32(head[25:], d.SendStep)
	binary.BigEndian.PutUint32(head[29:], d.Offset)
	binary.BigEndian.PutUint32(head[33:], uint32(len(d.Payload)))
	if _, err := w.Write(head); err != nil {
		return err
	}
	_, err := w.Write(d.Payload)
	return err
}

// WriteEnd writes the end-of-stream marker.
func WriteEnd(w io.Writer) error {
	_, err := w.Write([]byte{msgEnd})
	return err
}

// ReadMsg reads and decodes the next message.
func ReadMsg(r io.Reader) (Msg, error) {
	var tag [1]byte
	if _, err := io.ReadFull(r, tag[:]); err != nil {
		return Msg{}, err
	}
	switch tag[0] {
	case msgHello:
		var buf [16]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Msg{}, err
		}
		if binary.BigEndian.Uint32(buf[0:]) != Magic || binary.BigEndian.Uint32(buf[4:]) != Version {
			return Msg{}, ErrBadMagic
		}
		return Msg{Hello: &Hello{
			ClientBuffer: binary.BigEndian.Uint32(buf[8:]),
			DesiredDelay: binary.BigEndian.Uint32(buf[12:]),
		}}, nil
	case msgAccept:
		var buf [16]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Msg{}, err
		}
		return Msg{Accept: &Accept{
			Rate:         binary.BigEndian.Uint32(buf[0:]),
			Delay:        binary.BigEndian.Uint32(buf[4:]),
			ServerBuffer: binary.BigEndian.Uint32(buf[8:]),
			StepMicros:   binary.BigEndian.Uint32(buf[12:]),
		}}, nil
	case msgData:
		var buf [36]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Msg{}, err
		}
		n := binary.BigEndian.Uint32(buf[32:])
		if n > MaxPayload {
			return Msg{}, fmt.Errorf("netstream: payload length %d exceeds limit", n)
		}
		d := &Data{
			StreamID: binary.BigEndian.Uint32(buf[0:]),
			SliceID:  binary.BigEndian.Uint32(buf[4:]),
			Arrival:  binary.BigEndian.Uint32(buf[8:]),
			Size:     binary.BigEndian.Uint32(buf[12:]),
			Weight:   math.Float64frombits(binary.BigEndian.Uint64(buf[16:])),
			SendStep: binary.BigEndian.Uint32(buf[24:]),
			Offset:   binary.BigEndian.Uint32(buf[28:]),
			Payload:  make([]byte, n),
		}
		if _, err := io.ReadFull(r, d.Payload); err != nil {
			return Msg{}, err
		}
		return Msg{Data: d}, nil
	case msgEnd:
		return Msg{End: true}, nil
	default:
		return Msg{}, fmt.Errorf("netstream: unknown message tag %d", tag[0])
	}
}
