package netstream

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/stream"
)

// buildWire pumps a random stream through a Sender and returns the raw
// bytes plus the negotiated delay.
func buildWire(t *testing.T, seed int64) ([]byte, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := stream.NewBuilder()
	n := rng.Intn(40) + 5
	for i := 0; i < n; i++ {
		b.Add(rng.Intn(12), rng.Intn(5)+1, float64(rng.Intn(20)+1))
	}
	st := b.MustBuild()
	R := rng.Intn(3) + 1
	B := R * (rng.Intn(4) + st.MaxSliceSize())
	var wire bytes.Buffer
	snd := pump(t, st, SenderConfig{ServerBuffer: B, Rate: R, Policy: drop.Greedy}, &wire)
	return wire.Bytes(), snd.Delay()
}

// TestSizeNextFramesWholeStream: SizeNext must frame a real sender's
// output message by message, agreeing with what ReadMsg decodes, and
// report "incomplete" for every proper prefix of each message.
func TestSizeNextFramesWholeStream(t *testing.T) {
	wire, _ := buildWire(t, 21)
	reader := bytes.NewReader(wire)
	off := 0
	for off < len(wire) {
		n, err := SizeNext(wire[off:])
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if n <= 0 {
			t.Fatalf("offset %d: SizeNext returned %d on a complete stream", off, n)
		}
		// A truncated prefix must never error: SizeNext reports either 0
		// (length not yet determinable) or the true total length (header
		// complete) — both tell the caller to wait for more bytes.
		for _, cut := range []int{0, 1, n / 2, n - 1} {
			if cut >= n {
				continue
			}
			pn, perr := SizeNext(wire[off : off+cut])
			if perr != nil || (pn != 0 && pn != n) {
				t.Fatalf("offset %d, prefix %d/%d: got (%d, %v), want (0 or %d, nil)", off, cut, n, pn, perr, n)
			}
		}
		msg, err := ReadMsg(reader)
		if err != nil {
			t.Fatalf("offset %d: ReadMsg: %v", off, err)
		}
		if rem := reader.Len(); len(wire)-off-n != rem {
			t.Fatalf("offset %d: SizeNext says %d bytes, ReadMsg consumed %d", off, n, len(wire)-off-rem)
		}
		off += n
		if msg.End && off != len(wire) {
			t.Fatalf("End mid-stream at offset %d of %d", off, len(wire))
		}
	}
}

func TestSizeNextErrors(t *testing.T) {
	if _, err := SizeNext([]byte{0xff}); err == nil {
		t.Error("unknown tag accepted")
	}
	// A data head whose payload length exceeds MaxPayload must error
	// rather than asking the caller to buffer gigabytes.
	huge := make([]byte, 1+36+4)
	huge[0] = 3 // msgData
	huge[1+32] = 0xff
	huge[1+33] = 0xff
	huge[1+34] = 0xff
	huge[1+35] = 0xff
	if _, err := SizeNext(huge); err == nil {
		t.Error("oversized payload length accepted")
	}
	if n, err := SizeNext(nil); n != 0 || err != nil {
		t.Errorf("empty buffer: got (%d, %v)", n, err)
	}
}

// TestDecoderReset: one decoder fed message-by-message through a reused
// bytes.Reader (the shard reactor's pattern) must decode the same
// sequence as a fresh decoder over the whole stream.
func TestDecoderReset(t *testing.T) {
	wire, _ := buildWire(t, 22)
	whole := NewDecoder(bytes.NewReader(wire))

	var br bytes.Reader
	pieced := NewDecoder(&br)
	off := 0
	for {
		want, werr := whole.Next()
		n, err := SizeNext(wire[off:])
		if err != nil || n == 0 {
			t.Fatalf("offset %d: SizeNext (%d, %v)", off, n, err)
		}
		br.Reset(wire[off : off+n])
		got, gerr := pieced.Next()
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("offset %d: error mismatch %v vs %v", off, werr, gerr)
		}
		off += n
		if want.End != got.End {
			t.Fatalf("offset %d: End mismatch", off)
		}
		if (want.Data == nil) != (got.Data == nil) {
			t.Fatalf("offset %d: Data presence mismatch", off)
		}
		if want.Data != nil {
			if want.Data.SliceID != got.Data.SliceID || want.Data.SendStep != got.Data.SendStep ||
				want.Data.Offset != got.Data.Offset || !bytes.Equal(want.Data.Payload, got.Data.Payload) {
				t.Fatalf("offset %d: data mismatch: %+v vs %+v", off, want.Data, got.Data)
			}
		}
		if want.End {
			break
		}
	}
	if off != len(wire) {
		t.Fatalf("consumed %d of %d bytes", off, len(wire))
	}
}

// TestRecvWindowMatchesReceiver: core.RecvWindow driven by the loadgen
// client loop (resolve to SendStep-1-delay, ingest by Arrival frame)
// must account playout exactly like the map-based Receiver over real
// sender output.
func TestRecvWindowMatchesReceiver(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		wire, delay := buildWire(t, 100+seed)
		played, incomplete, rcv := receiveAll(t, bytes.NewReader(wire), delay)

		var w core.RecvWindow
		w.Reset(delay, 8)
		dec := NewDecoder(bytes.NewReader(wire))
		for {
			msg, err := dec.Next()
			if err != nil {
				t.Fatal(err)
			}
			if msg.End {
				break
			}
			d := msg.Data
			w.ResolveTo(int(d.SendStep) - 1 - delay)
			w.Ingest(int32(d.SliceID), int(d.Arrival), int32(d.Size), int32(len(d.Payload)))
		}
		w.Finish()

		if w.Played() != len(played) || w.Incomplete() != incomplete {
			t.Fatalf("seed %d: window played %d incomplete %d, receiver played %d incomplete %d",
				seed, w.Played(), w.Incomplete(), len(played), incomplete)
		}
		if w.LateBytes() != rcv.LateBytes() {
			t.Fatalf("seed %d: late bytes %d vs %d", seed, w.LateBytes(), rcv.LateBytes())
		}
		if w.MaxOccupancy() != rcv.MaxOccupancy() {
			t.Fatalf("seed %d: max occupancy %d vs %d", seed, w.MaxOccupancy(), rcv.MaxOccupancy())
		}
	}
}
