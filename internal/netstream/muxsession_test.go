package netstream

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/drop"
	"repro/internal/mux"
	"repro/internal/stream"
	"repro/internal/trace"
)

func muxClips(t *testing.T, k, frames int) []*trace.Clip {
	t.Helper()
	clips := make([]*trace.Clip, k)
	for i := range clips {
		cfg := trace.DefaultGenConfig()
		cfg.Frames = frames
		cfg.Seed = int64(i + 1)
		c, err := trace.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		clips[i] = c
	}
	return clips
}

func TestMuxerOffersAndLocalIDs(t *testing.T) {
	a := stream.NewBuilder().Add(0, 1, 1).Add(1, 2, 2).MustBuild()
	b := stream.NewBuilder().Add(0, 3, 3).MustBuild()
	m, err := NewMuxer([]*stream.Stream{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.Streams() != 2 || m.Horizon() != 1 {
		t.Errorf("streams=%d horizon=%d", m.Streams(), m.Horizon())
	}
	offers := m.Offers(0, func(si int, sl stream.Slice) []byte {
		return make([]byte, sl.Size)
	})
	if len(offers) != 2 {
		t.Fatalf("step-0 offers = %d", len(offers))
	}
	// Session IDs are unique and interleaved by (arrival, stream):
	// a.slice0 -> 0, b.slice0 -> 1, a.slice1 -> 2.
	ids := map[int]bool{}
	for _, o := range offers {
		if ids[o.Slice.ID] {
			t.Fatalf("duplicate session ID %d", o.Slice.ID)
		}
		ids[o.Slice.ID] = true
	}
	local, err := m.LocalID(1, 1)
	if err != nil || local != 0 {
		t.Errorf("LocalID(1, 1) = %d, %v; want 0", local, err)
	}
	if _, err := m.LocalID(1, 0); err == nil {
		t.Error("cross-stream session ID accepted")
	}
	if _, err := m.LocalID(5, 0); err == nil {
		t.Error("unknown substream accepted")
	}
	if _, err := NewMuxer(nil); err == nil {
		t.Error("empty muxer accepted")
	}
}

// TestMuxSessionMatchesSharedSimulation — the wire mux session delivers
// exactly the per-stream benefit that the mux.Shared simulation predicts.
func TestMuxSessionMatchesSharedSimulation(t *testing.T) {
	const k = 3
	clips := muxClips(t, k, 200)
	streams := make([]*stream.Stream, k)
	totalBytes, horizon := 0, 0
	for i, c := range clips {
		st, err := trace.WholeFrameStream(c, trace.PaperWeights())
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = st
		totalBytes += st.TotalBytes()
		if st.Horizon() > horizon {
			horizon = st.Horizon()
		}
	}
	R := int(0.95 * float64(totalBytes) / float64(horizon+1))
	B := 4 * 120 * k

	var wire bytes.Buffer
	dropped, err := ServeMux(&wire, clips, SenderConfig{ServerBuffer: B, Rate: R, Policy: drop.Greedy}, 0)
	if err != nil {
		t.Fatal(err)
	}
	delay := (B + R - 1) / R
	stats, err := ReceiveMux(&wire, delay, k)
	if err != nil {
		t.Fatal(err)
	}

	sim, err := mux.Shared(streams, R, B, drop.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if math.Abs(stats.PerStream[i].Weight-sim.PerStream[i].PlayedWeight) > 1e-6 {
			t.Errorf("stream %d: wire weight %v != simulated %v",
				i, stats.PerStream[i].Weight, sim.PerStream[i].PlayedWeight)
		}
		if stats.PerStream[i].Bytes != sim.PerStream[i].PlayedBytes {
			t.Errorf("stream %d: wire bytes %d != simulated %d",
				i, stats.PerStream[i].Bytes, sim.PerStream[i].PlayedBytes)
		}
	}
	if stats.Incomplete != 0 {
		t.Errorf("%d incomplete slices on a lossless wire", stats.Incomplete)
	}
	// Drops happened iff the simulation dropped.
	simDropped := 0
	for i := range sim.PerStream {
		simDropped += streams[i].Len()
	}
	simPlayed := 0
	for i := range sim.PerStream {
		simPlayed += stats.PerStream[i].Played
	}
	if dropped != simDropped-simPlayed {
		t.Errorf("wire dropped %d, simulation %d", dropped, simDropped-simPlayed)
	}
}

func TestReceiveMuxValidation(t *testing.T) {
	if _, err := ReceiveMux(bytes.NewReader(nil), 1, 0); err == nil {
		t.Error("stream count 0 accepted")
	}
	// A data message tagged with an out-of-range stream fails cleanly.
	var wire bytes.Buffer
	if err := WriteData(&wire, Data{StreamID: 9, SliceID: 1, Arrival: 0, Size: 1, SendStep: 0, Payload: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := WriteData(&wire, Data{StreamID: 9, SliceID: 2, Arrival: 1, Size: 1, SendStep: 5, Payload: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := WriteEnd(&wire); err != nil {
		t.Fatal(err)
	}
	if _, err := ReceiveMux(&wire, 1, 2); err == nil {
		t.Error("out-of-range stream tag accepted")
	}
}
