package netstream

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/stream"
)

// SenderConfig parameterizes a sending session.
type SenderConfig struct {
	// ServerBuffer is B in payload bytes. Required.
	ServerBuffer int
	// Rate is R in payload bytes per step. Required.
	Rate int
	// Delay is D; zero derives the lawful ceil(B/R).
	Delay int
	// Policy selects the drop policy (default drop.Greedy — the sender
	// knows slice weights, so value-aware dropping is the sensible
	// default per Section 4).
	Policy drop.Factory
}

// Sender pushes a stream of slices through a smoothing buffer onto a wire.
// Drive it step by step with Tick; the caller provides per-step arrivals
// and owns the clock (wall-clock pacing lives in Serve and in the sharded
// engine of internal/serve).
//
// All Data messages emitted by one Tick are coalesced into a single Write
// call on the underlying writer (see Encoder), so a session costs one
// syscall per step regardless of how many slices it advances.
type Sender struct {
	enc      *Encoder
	server   *core.Server
	delay    int
	step     int
	payload  map[int][]byte // remaining payload per live slice
	sent     map[int]int    // bytes already sent per slice
	meta     map[int]stream.Slice
	streamOf map[int]int  // substream tag per live slice
	seen     map[int]bool // all slice IDs ever offered (uniqueness guard)
	scratch  []stream.Slice
}

// TickStats reports what one step did.
type TickStats struct {
	Step      int
	SentBytes int
	Dropped   []stream.Slice
	Occupancy int
}

// NewSender validates the config and returns a sender writing to w.
func NewSender(w io.Writer, cfg SenderConfig) (*Sender, error) {
	if cfg.ServerBuffer <= 0 || cfg.Rate <= 0 {
		return nil, fmt.Errorf("netstream: invalid sender config B=%d R=%d", cfg.ServerBuffer, cfg.Rate)
	}
	if cfg.Delay <= 0 {
		cfg.Delay = core.DelayFor(cfg.ServerBuffer, cfg.Rate)
	}
	policy := drop.Greedy
	if cfg.Policy != nil {
		policy = cfg.Policy
	}
	return &Sender{
		enc:      NewEncoder(w),
		server:   core.NewServer(cfg.ServerBuffer, cfg.Rate, policy(), core.ServerOptions{}),
		delay:    cfg.Delay,
		payload:  make(map[int][]byte),
		sent:     make(map[int]int),
		meta:     make(map[int]stream.Slice),
		streamOf: make(map[int]int),
		seen:     make(map[int]bool),
	}, nil
}

// Delay returns the session's smoothing delay D.
func (s *Sender) Delay() int { return s.delay }

// Step returns the current model step (the number of Ticks so far).
func (s *Sender) Step() int { return s.step }

// Backlog returns the bytes currently buffered.
func (s *Sender) Backlog() int { return s.server.Occupancy() }

// Offered pairs a slice with its payload bytes; len(Payload) must equal
// Slice.Size. StreamID tags the substream in multiplexed sessions (leave 0
// for single-stream use); slice IDs must be unique across the WHOLE
// session, not just within one substream — see Muxer.
type Offered struct {
	Slice    stream.Slice
	Payload  []byte
	StreamID int
}

// Tick advances one model step: the arrivals join the buffer, up to R
// payload bytes are framed and batched, and overflow is shed via the drop
// policy; the whole batch then goes to the wire in one Write. Slice IDs
// must be unique across the session.
//
//smoothvet:noalloc
func (s *Sender) Tick(arrivals []Offered) (TickStats, error) {
	s.scratch = s.scratch[:0]
	for _, a := range arrivals {
		if len(a.Payload) != a.Slice.Size {
			return TickStats{}, fmt.Errorf("netstream: slice %d payload %d bytes, size says %d",
				a.Slice.ID, len(a.Payload), a.Slice.Size)
		}
		if s.seen[a.Slice.ID] {
			return TickStats{}, fmt.Errorf("netstream: duplicate slice ID %d", a.Slice.ID)
		}
		s.seen[a.Slice.ID] = true
		s.scratch = append(s.scratch, a.Slice)
		s.payload[a.Slice.ID] = a.Payload
		s.meta[a.Slice.ID] = a.Slice
		s.streamOf[a.Slice.ID] = a.StreamID
	}
	res := s.server.Step(s.step, s.scratch)
	for _, b := range res.Sent {
		sl := s.meta[b.SliceID]
		off := s.sent[b.SliceID]
		chunk := s.payload[b.SliceID][:b.Bytes]
		s.payload[b.SliceID] = s.payload[b.SliceID][b.Bytes:]
		s.sent[b.SliceID] = off + b.Bytes
		err := s.enc.PutData(&Data{
			StreamID: uint32(s.streamOf[b.SliceID]),
			SliceID:  uint32(b.SliceID),
			Arrival:  uint32(sl.Arrival),
			Size:     uint32(sl.Size),
			Weight:   sl.Weight,
			SendStep: uint32(s.step),
			Offset:   uint32(off),
			Payload:  chunk,
		})
		if err != nil {
			return TickStats{}, err
		}
		if s.sent[b.SliceID] == sl.Size {
			delete(s.payload, b.SliceID)
			delete(s.sent, b.SliceID)
			delete(s.meta, b.SliceID)
			delete(s.streamOf, b.SliceID)
		}
	}
	for _, d := range res.Dropped {
		delete(s.payload, d.ID)
		delete(s.sent, d.ID)
		delete(s.meta, d.ID)
		delete(s.streamOf, d.ID)
	}
	// One Write per step: everything this step framed leaves together.
	if err := s.enc.Flush(); err != nil {
		return TickStats{}, err
	}
	s.step++
	// res.Dropped aliases a buffer the server reuses next Step; TickStats
	// outlives the step, so copy (drops are rare — usually nil).
	var dropped []stream.Slice
	if len(res.Dropped) > 0 {
		dropped = append(dropped, res.Dropped...)
	}
	return TickStats{
		Step:      s.step - 1,
		SentBytes: res.SentBytes,
		Dropped:   dropped,
		Occupancy: res.Occupancy,
	}, nil
}

// Drain ticks with no arrivals until the buffer empties, then writes the
// end-of-stream marker. It returns the number of drain steps.
func (s *Sender) Drain() (int, error) {
	steps := 0
	for !s.server.Empty() {
		if _, err := s.Tick(nil); err != nil {
			return steps, err
		}
		steps++
	}
	s.enc.PutEnd()
	return steps, s.enc.Flush()
}

// ReceivedSlice is a fully reassembled slice ready for playout.
type ReceivedSlice struct {
	ID       int
	StreamID int
	Arrival  int
	Size     int
	Weight   float64
	Payload  []byte
}

// PlayEvent reports one playout step at the receiver.
type PlayEvent struct {
	// Step is the receiver's model step.
	Step int
	// Slices are the complete slices played this step, in the order their
	// first bytes arrived on the wire — the sender's FIFO transmission
	// order, which for every sender in this package coincides with slice
	// ID order within a frame.
	Slices []ReceivedSlice
	// Incomplete counts slices of this frame that had bytes but were not
	// fully delivered by the deadline (they are discarded).
	Incomplete int
}

// Receiver reassembles slices from data messages and determines playout by
// the paper's rule: a slice sent in step s is available from step s; the
// playout of the frame with arrival a happens at step a+D (the transport's
// propagation is absorbed into the receiver's anchor, so P = 0 in model
// terms). Drive it with Ingest for each message and Play once per step.
type Receiver struct {
	delay int

	byFrame   map[int][]int // arrival -> slice IDs seen
	partial   map[int]*ReceivedSlice
	received  map[int]int
	watermark int // latest frame already resolved by Play
	lateBytes int
	occ       int
	maxOcc    int
}

// NewReceiver returns a receiver enforcing smoothing delay D.
func NewReceiver(delay int) (*Receiver, error) {
	if delay < 0 {
		return nil, fmt.Errorf("netstream: negative delay %d", delay)
	}
	return &Receiver{
		delay:     delay,
		byFrame:   make(map[int][]int),
		partial:   make(map[int]*ReceivedSlice),
		received:  make(map[int]int),
		watermark: -1,
	}, nil
}

// Occupancy returns the bytes currently buffered; MaxOccupancy the peak.
func (r *Receiver) Occupancy() int    { return r.occ }
func (r *Receiver) MaxOccupancy() int { return r.maxOcc }

// LateBytes returns the number of payload bytes that arrived after their
// frame's playout deadline and were discarded.
func (r *Receiver) LateBytes() int { return r.lateBytes }

// Ingest stores the bytes of one data message.
func (r *Receiver) Ingest(d *Data) error {
	id := int(d.SliceID)
	if int(d.Arrival) <= r.watermark {
		// Bytes of an already-resolved frame: too late, discard.
		r.lateBytes += len(d.Payload)
		return nil
	}
	p, ok := r.partial[id]
	if !ok {
		if d.Size == 0 || d.Size > MaxPayload {
			return fmt.Errorf("netstream: slice %d has invalid size %d", id, d.Size)
		}
		p = &ReceivedSlice{
			ID:       id,
			StreamID: int(d.StreamID),
			Arrival:  int(d.Arrival),
			Size:     int(d.Size),
			Weight:   d.Weight,
			Payload:  make([]byte, d.Size),
		}
		r.partial[id] = p
		r.byFrame[p.Arrival] = append(r.byFrame[p.Arrival], id)
	}
	if int(d.Offset)+len(d.Payload) > p.Size {
		return fmt.Errorf("netstream: slice %d bytes [%d, %d) beyond size %d",
			id, d.Offset, int(d.Offset)+len(d.Payload), p.Size)
	}
	copy(p.Payload[d.Offset:], d.Payload)
	r.received[id] += len(d.Payload)
	r.occ += len(d.Payload)
	return nil
}

// Play resolves the frame scheduled for the given (sender-clock) step:
// complete slices with arrival step-D are returned; incomplete ones are
// discarded, and any bytes of this frame arriving later will be dropped on
// ingest.
func (r *Receiver) Play(step int) PlayEvent {
	frame := step - r.delay
	ev := PlayEvent{Step: step}
	ids := r.byFrame[frame]
	delete(r.byFrame, frame)
	if frame > r.watermark {
		r.watermark = frame
	}
	// ids is already in wire-arrival order: byFrame appends on first byte
	// seen, and the server queue transmits FIFO — no per-tick sort needed.
	for _, id := range ids {
		p := r.partial[id]
		delete(r.partial, id)
		got := r.received[id]
		delete(r.received, id)
		r.occ -= got
		if got == p.Size {
			ev.Slices = append(ev.Slices, *p)
		} else {
			ev.Incomplete++
		}
	}
	// Peak occupancy is recorded at step boundaries (after playout), the
	// same end-of-step convention as the model's Bc(t) in Lemma 3.4;
	// mid-step, the buffer may transiently hold up to R extra bytes of
	// the frame being played this step.
	if r.occ > r.maxOcc {
		r.maxOcc = r.occ
	}
	return ev
}
