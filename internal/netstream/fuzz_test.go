package netstream

import (
	"bytes"
	"testing"
)

// FuzzReadMsg feeds arbitrary bytes to both wire decoders (the allocating
// ReadMsg and the scratch-reusing Decoder): they must never panic or
// over-allocate, must agree with each other message for message, and every
// message they accept must re-encode to bytes the decoder reads back
// identically.
func FuzzReadMsg(f *testing.F) {
	// Seed with each valid message type.
	var seed bytes.Buffer
	_ = WriteHello(&seed, Hello{ClientBuffer: 7, DesiredDelay: 3})
	helloBytes := append([]byte{}, seed.Bytes()...)
	f.Add(append([]byte{}, helloBytes...))
	seed.Reset()
	_ = WriteAccept(&seed, Accept{Rate: 1, Delay: 2, ServerBuffer: 2, StepMicros: 1000})
	f.Add(append([]byte{}, seed.Bytes()...))
	seed.Reset()
	_ = WriteData(&seed, Data{SliceID: 1, Size: 2, Payload: []byte{1, 2}})
	dataBytes := append([]byte{}, seed.Bytes()...)
	f.Add(append([]byte{}, dataBytes...))
	f.Add([]byte{msgEnd})
	f.Add([]byte{msgData, 0xff, 0xff})
	f.Add([]byte{99, 1, 2, 3})
	// The codec error paths, as explicit corpus entries: truncated header,
	// bad magic, bad version, oversized length field, unknown tag.
	f.Add(append([]byte{}, helloBytes[:3]...))               // truncated hello header
	f.Add(append([]byte{}, dataBytes[:10]...))               // truncated data header
	f.Add(append([]byte{}, dataBytes[:len(dataBytes)-1]...)) // truncated payload
	f.Add(corrupt(helloBytes, 1))                            // bad magic
	f.Add(corrupt(helloBytes, 8))                            // bad version
	f.Add(oversizedData())                                   // length field > MaxPayload
	f.Add([]byte{0x7f})                                      // unknown tag, no body

	f.Fuzz(func(t *testing.T, input []byte) {
		r := bytes.NewReader(input)
		dec := NewDecoder(bytes.NewReader(input))
		for {
			msg, err := ReadMsg(r)
			dmsg, derr := dec.Next()
			if (err == nil) != (derr == nil) {
				t.Fatalf("ReadMsg err %v but Decoder err %v", err, derr)
			}
			if err != nil {
				return // any error is fine; panics are not
			}
			if !msgEqual(msg, dmsg) {
				t.Fatalf("decoders disagree: %+v vs %+v", msg, dmsg)
			}
			// Round-trip whatever was decoded.
			var buf bytes.Buffer
			switch {
			case msg.Hello != nil:
				if err := WriteHello(&buf, *msg.Hello); err != nil {
					t.Fatal(err)
				}
			case msg.Accept != nil:
				if err := WriteAccept(&buf, *msg.Accept); err != nil {
					t.Fatal(err)
				}
			case msg.Data != nil:
				if len(msg.Data.Payload) > MaxPayload {
					t.Fatalf("decoder accepted %d-byte payload", len(msg.Data.Payload))
				}
				if err := WriteData(&buf, *msg.Data); err != nil {
					t.Fatal(err)
				}
			case msg.End:
				if err := WriteEnd(&buf); err != nil {
					t.Fatal(err)
				}
			default:
				t.Fatal("decoder returned an empty message without error")
			}
			again, err := ReadMsg(&buf)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if !msgEqual(msg, again) {
				t.Fatalf("round trip changed message: %+v vs %+v", msg, again)
			}
		}
	})
}

func msgEqual(a, b Msg) bool {
	switch {
	case a.Hello != nil:
		return b.Hello != nil && *a.Hello == *b.Hello
	case a.Accept != nil:
		return b.Accept != nil && *a.Accept == *b.Accept
	case a.Data != nil:
		if b.Data == nil {
			return false
		}
		x, y := a.Data, b.Data
		if !bytes.Equal(x.Payload, y.Payload) {
			return false
		}
		// NaN weights never compare equal even though the bit pattern
		// round-trips; treat two NaNs as matching.
		weightsMatch := x.Weight == y.Weight || (x.Weight != x.Weight && y.Weight != y.Weight)
		return weightsMatch &&
			x.SliceID == y.SliceID && x.Arrival == y.Arrival && x.Size == y.Size &&
			x.SendStep == y.SendStep && x.Offset == y.Offset
	default:
		return a.End && b.End
	}
}
