package netstream

import (
	"bytes"
	"testing"
)

// FuzzReadMsg feeds arbitrary bytes to the wire decoder: it must never
// panic or over-allocate, and every message it accepts must re-encode to
// bytes the decoder reads back identically.
func FuzzReadMsg(f *testing.F) {
	// Seed with each valid message type.
	var seed bytes.Buffer
	_ = WriteHello(&seed, Hello{ClientBuffer: 7, DesiredDelay: 3})
	f.Add(append([]byte{}, seed.Bytes()...))
	seed.Reset()
	_ = WriteAccept(&seed, Accept{Rate: 1, Delay: 2, ServerBuffer: 2, StepMicros: 1000})
	f.Add(append([]byte{}, seed.Bytes()...))
	seed.Reset()
	_ = WriteData(&seed, Data{SliceID: 1, Size: 2, Payload: []byte{1, 2}})
	f.Add(append([]byte{}, seed.Bytes()...))
	f.Add([]byte{msgEnd})
	f.Add([]byte{msgData, 0xff, 0xff})
	f.Add([]byte{99, 1, 2, 3})

	f.Fuzz(func(t *testing.T, input []byte) {
		r := bytes.NewReader(input)
		for {
			msg, err := ReadMsg(r)
			if err != nil {
				return // any error is fine; panics are not
			}
			// Round-trip whatever was decoded.
			var buf bytes.Buffer
			switch {
			case msg.Hello != nil:
				if err := WriteHello(&buf, *msg.Hello); err != nil {
					t.Fatal(err)
				}
			case msg.Accept != nil:
				if err := WriteAccept(&buf, *msg.Accept); err != nil {
					t.Fatal(err)
				}
			case msg.Data != nil:
				if len(msg.Data.Payload) > MaxPayload {
					t.Fatalf("decoder accepted %d-byte payload", len(msg.Data.Payload))
				}
				if err := WriteData(&buf, *msg.Data); err != nil {
					t.Fatal(err)
				}
			case msg.End:
				if err := WriteEnd(&buf); err != nil {
					t.Fatal(err)
				}
			default:
				t.Fatal("decoder returned an empty message without error")
			}
			again, err := ReadMsg(&buf)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if !msgEqual(msg, again) {
				t.Fatalf("round trip changed message: %+v vs %+v", msg, again)
			}
		}
	})
}

func msgEqual(a, b Msg) bool {
	switch {
	case a.Hello != nil:
		return b.Hello != nil && *a.Hello == *b.Hello
	case a.Accept != nil:
		return b.Accept != nil && *a.Accept == *b.Accept
	case a.Data != nil:
		if b.Data == nil {
			return false
		}
		x, y := a.Data, b.Data
		if !bytes.Equal(x.Payload, y.Payload) {
			return false
		}
		// NaN weights never compare equal even though the bit pattern
		// round-trips; treat two NaNs as matching.
		weightsMatch := x.Weight == y.Weight || (x.Weight != x.Weight && y.Weight != y.Weight)
		return weightsMatch &&
			x.SliceID == y.SliceID && x.Arrival == y.Arrival && x.Size == y.Size &&
			x.SendStep == y.SendStep && x.Offset == y.Offset
	default:
		return a.End && b.End
	}
}
