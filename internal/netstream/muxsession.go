package netstream

import (
	"fmt"
	"io"
	"time"

	"repro/internal/stream"
	"repro/internal/trace"
)

// Muxer feeds several substreams into one Sender — the statistical-
// multiplexing deployment of package mux, on the wire: all substreams share
// one smoothing buffer and one paced link, and each data message carries
// its substream tag so the receiver can demultiplex.
//
// Slice IDs must be unique across the whole session; Muxer assigns them in
// global (arrival step, substream) order — the same interleaving mux.Merge
// uses — so that ID-based tie-breaking in drop policies treats every
// substream identically, and a wire session reproduces the mux.Shared
// simulation byte for byte.
type Muxer struct {
	streams []*stream.Stream
	ids     [][]int // ids[si][localID] = session ID
	local   []struct{ si, local int }
	horizon int
}

// NewMuxer wraps the substreams. At least one is required.
func NewMuxer(streams []*stream.Stream) (*Muxer, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("netstream: muxer needs at least one stream")
	}
	m := &Muxer{streams: streams, ids: make([][]int, len(streams))}
	total := 0
	for i, st := range streams {
		m.ids[i] = make([]int, st.Len())
		total += st.Len()
		if st.Horizon() > m.horizon {
			m.horizon = st.Horizon()
		}
	}
	m.local = make([]struct{ si, local int }, total)
	next := 0
	for step := 0; step <= m.horizon; step++ {
		for si, st := range streams {
			for _, sl := range st.ArrivalsAt(step) {
				m.ids[si][sl.ID] = next
				m.local[next] = struct{ si, local int }{si, sl.ID}
				next++
			}
		}
	}
	return m, nil
}

// Horizon returns the largest arrival step across the substreams.
func (m *Muxer) Horizon() int { return m.horizon }

// Streams returns the number of substreams.
func (m *Muxer) Streams() int { return len(m.streams) }

// Offers returns the combined arrivals of all substreams at the given step,
// with session-unique slice IDs and StreamID tags. payload synthesizes the
// bytes for one slice of one substream.
func (m *Muxer) Offers(step int, payload func(streamIdx int, sl stream.Slice) []byte) []Offered {
	var out []Offered
	for si, st := range m.streams {
		for _, sl := range st.ArrivalsAt(step) {
			tagged := sl
			tagged.ID = m.ids[si][sl.ID]
			out = append(out, Offered{
				Slice:    tagged,
				Payload:  payload(si, sl),
				StreamID: si,
			})
		}
	}
	return out
}

// LocalID converts a session-unique slice ID back to the substream-local ID.
func (m *Muxer) LocalID(streamIdx, sessionID int) (int, error) {
	if streamIdx < 0 || streamIdx >= len(m.streams) {
		return 0, fmt.Errorf("netstream: no substream %d", streamIdx)
	}
	if sessionID < 0 || sessionID >= len(m.local) || m.local[sessionID].si != streamIdx {
		return 0, fmt.Errorf("netstream: session ID %d outside substream %d", sessionID, streamIdx)
	}
	return m.local[sessionID].local, nil
}

// MuxStats aggregates a multiplexed receiving session per substream.
type MuxStats struct {
	// PerStream[i] counts the complete slices and payload bytes played
	// for substream i, and the weight delivered.
	PerStream []struct {
		Played int
		Bytes  int
		Weight float64
	}
	// Incomplete counts slices discarded at their deadline (all streams).
	Incomplete int
}

// ServeMux runs a whole multiplexed session over w. Clips are converted to
// whole-frame streams with the paper's weights; payloads are synthesized
// deterministically. pace is the wall-clock duration of one model step
// (0 runs the session as fast as the writer accepts it — fine for buffers
// and tests, flooding for sockets). It returns the sender's drop count.
func ServeMux(w io.Writer, clips []*trace.Clip, cfg SenderConfig, pace time.Duration) (dropped int, err error) {
	streams := make([]*stream.Stream, len(clips))
	for i, c := range clips {
		st, err := trace.WholeFrameStream(c, trace.PaperWeights())
		if err != nil {
			return 0, err
		}
		streams[i] = st
	}
	m, err := NewMuxer(streams)
	if err != nil {
		return 0, err
	}
	snd, err := NewSender(w, cfg)
	if err != nil {
		return 0, err
	}
	payload := func(si int, sl stream.Slice) []byte {
		return SynthPayload(sl.ID*31+si, sl.Size)
	}
	var tick <-chan time.Time
	if pace > 0 {
		ticker := time.NewTicker(pace)
		defer ticker.Stop()
		tick = ticker.C
	}
	for step := 0; step <= m.Horizon() || snd.Backlog() > 0; step++ {
		var offers []Offered
		if step <= m.Horizon() {
			offers = m.Offers(step, payload)
		}
		stats, err := snd.Tick(offers)
		if err != nil {
			return dropped, err
		}
		dropped += len(stats.Dropped)
		if tick != nil {
			<-tick
		}
	}
	return dropped, WriteEnd(w)
}

// ReceiveMux consumes a multiplexed session from r and returns per-stream
// playout statistics. streams is the substream count the caller expects.
func ReceiveMux(r io.Reader, delay, streams int) (*MuxStats, error) {
	if streams < 1 {
		return nil, fmt.Errorf("netstream: non-positive stream count %d", streams)
	}
	rcv, err := NewReceiver(delay)
	if err != nil {
		return nil, err
	}
	stats := &MuxStats{PerStream: make([]struct {
		Played int
		Bytes  int
		Weight float64
	}, streams)}
	playUpTo := -1
	maxFrame := -1
	flush := func(step int) error {
		for playUpTo < step {
			playUpTo++
			ev := rcv.Play(playUpTo)
			for _, sl := range ev.Slices {
				if sl.StreamID < 0 || sl.StreamID >= streams {
					return fmt.Errorf("netstream: slice %d tagged with unknown stream %d", sl.ID, sl.StreamID)
				}
				ps := &stats.PerStream[sl.StreamID]
				ps.Played++
				ps.Bytes += sl.Size
				ps.Weight += sl.Weight
			}
			stats.Incomplete += ev.Incomplete
		}
		return nil
	}
	dec := NewDecoder(r)
	for {
		msg, err := dec.Next()
		if err != nil {
			return stats, err
		}
		if msg.End {
			break
		}
		if msg.Data == nil {
			return stats, fmt.Errorf("netstream: unexpected message in mux session")
		}
		if err := flush(int(msg.Data.SendStep) - 1); err != nil {
			return stats, err
		}
		if int(msg.Data.Arrival) > maxFrame {
			maxFrame = int(msg.Data.Arrival)
		}
		if err := rcv.Ingest(msg.Data); err != nil {
			return stats, err
		}
	}
	if err := flush(maxFrame + delay); err != nil {
		return stats, err
	}
	return stats, nil
}
