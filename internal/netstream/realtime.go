package netstream

import (
	"fmt"
	"io"
	"time"

	"repro/internal/stream"
	"repro/internal/trace"
)

// ServeConfig parameterizes a real-time serving session.
type ServeConfig struct {
	// Rate is R in payload bytes per model step. Required.
	Rate int
	// StepDuration is the wall-clock length of one model step.
	// Defaults to 40ms (25 frames/second).
	StepDuration time.Duration
	// MaxDelay caps the smoothing delay the server will grant, in steps.
	// Defaults to 64.
	MaxDelay int
	// Policy overrides the sender's drop policy (default greedy).
	Policy SenderConfig
}

// Serve performs the server side of a session on conn: it reads the
// client's Hello, fixes D = min(desired, MaxDelay) and B = R·D (the
// paper's law, additionally capped by the client's advertised buffer),
// then paces the clip over the wire one step per StepDuration. Frame k of
// the clip arrives at the smoothing buffer at step k. Payload bytes are
// synthesized deterministically from the slice ID.
//
// Serve returns after the stream has drained and the End marker is written.
func Serve(conn io.ReadWriter, clip *trace.Clip, weights trace.WeightMap, cfg ServeConfig) error {
	if cfg.Rate <= 0 {
		return fmt.Errorf("netstream: serve rate %d", cfg.Rate)
	}
	if cfg.StepDuration <= 0 {
		cfg.StepDuration = 40 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 64
	}
	msg, err := ReadMsg(conn)
	if err != nil {
		return fmt.Errorf("netstream: reading hello: %w", err)
	}
	if msg.Hello == nil {
		return fmt.Errorf("netstream: expected hello, got %+v", msg)
	}
	delay, buffer := NegotiateSession(*msg.Hello, cfg.Rate, cfg.MaxDelay)
	if err := WriteAccept(conn, Accept{
		Rate:         uint32(cfg.Rate),
		Delay:        uint32(delay),
		ServerBuffer: uint32(buffer),
		StepMicros:   uint32(cfg.StepDuration / time.Microsecond),
	}); err != nil {
		return err
	}

	sc := SenderConfig{ServerBuffer: buffer, Rate: cfg.Rate, Delay: delay, Policy: cfg.Policy.Policy}
	sender, err := NewSender(conn, sc)
	if err != nil {
		return err
	}
	st, err := trace.WholeFrameStream(clip, weights)
	if err != nil {
		return err
	}

	ticker := time.NewTicker(cfg.StepDuration)
	defer ticker.Stop()
	for step := 0; step <= st.Horizon(); step++ {
		var offers []Offered
		for _, sl := range st.ArrivalsAt(step) {
			offers = append(offers, Offered{Slice: sl, Payload: SynthPayload(sl.ID, sl.Size)})
		}
		if _, err := sender.Tick(offers); err != nil {
			return err
		}
		<-ticker.C
	}
	for !senderDone(sender) {
		if _, err := sender.Tick(nil); err != nil {
			return err
		}
		<-ticker.C
	}
	return WriteEnd(conn)
}

func senderDone(s *Sender) bool { return s.Backlog() == 0 }

// NegotiateSession fixes the session parameters from a client Hello: the
// smoothing delay is the client's desired delay clamped to (0, maxDelay],
// and B = R·D — the paper's law — additionally capped by the client's
// advertised buffer (Section 3.3: making only one buffer bigger does not
// help). It returns the negotiated delay and server buffer.
func NegotiateSession(h Hello, rate, maxDelay int) (delay, buffer int) {
	delay = int(h.DesiredDelay)
	if delay <= 0 || delay > maxDelay {
		delay = maxDelay
	}
	buffer = rate * delay
	if cb := int(h.ClientBuffer); cb > 0 && buffer > cb {
		buffer = cb / rate * rate
		if buffer < rate {
			buffer = rate
		}
		delay = buffer / rate
	}
	return delay, buffer
}

// SynthPayload deterministically fills a payload of the given size for a
// slice ID, so receivers can verify content integrity end to end.
func SynthPayload(id, size int) []byte {
	p := make([]byte, size)
	x := uint32(id)*2654435761 + 1
	for i := range p {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		p[i] = byte(x)
	}
	return p
}

// PlayStats summarizes a receiving session.
type PlayStats struct {
	// Played is the number of complete slices delivered to the playout
	// callback; PlayedBytes their total payload.
	Played, PlayedBytes int
	// Incomplete is the number of slices discarded at their deadline.
	Incomplete int
	// LateBytes counts payload bytes that arrived after their deadline.
	LateBytes int
	// MaxBuffer is the receiver's peak buffer occupancy in bytes.
	MaxBuffer int
	// Delay is the negotiated smoothing delay.
	Delay int
	// Corrupt counts played slices whose payload failed verification.
	Corrupt int
}

// Receive performs the client side of a session on conn: it sends Hello,
// reads Accept, then consumes data messages, anchoring its playout clock
// at the first one (the paper's timer-based client — no clock
// synchronization). onPlay, if non-nil, is invoked once per playout step.
//
// The playout clock is driven by the *message* clock rather than the wall
// clock: frame a plays once a message with SendStep >= a+D has been seen
// or the stream ended. On a paced sender this coincides with wall-clock
// playout but keeps tests and tools deterministic and fast.
func Receive(conn io.ReadWriter, clientBuffer, desiredDelay int, onPlay func(PlayEvent)) (PlayStats, error) {
	if err := WriteHello(conn, Hello{
		ClientBuffer: uint32(clientBuffer),
		DesiredDelay: uint32(desiredDelay),
	}); err != nil {
		return PlayStats{}, err
	}
	msg, err := ReadMsg(conn)
	if err != nil {
		return PlayStats{}, err
	}
	if msg.Accept == nil {
		return PlayStats{}, fmt.Errorf("netstream: expected accept, got %+v", msg)
	}
	delay := int(msg.Accept.Delay)
	rcv, err := NewReceiver(delay)
	if err != nil {
		return PlayStats{}, err
	}
	stats := PlayStats{Delay: delay}
	playUpTo := -1
	flush := func(step int) {
		for playUpTo < step {
			playUpTo++
			ev := rcv.Play(playUpTo)
			for _, sl := range ev.Slices {
				stats.Played++
				stats.PlayedBytes += sl.Size
				if !bytesEqual(sl.Payload, SynthPayload(sl.ID, sl.Size)) {
					stats.Corrupt++
				}
			}
			stats.Incomplete += ev.Incomplete
			if onPlay != nil && (len(ev.Slices) > 0 || ev.Incomplete > 0) {
				onPlay(ev)
			}
		}
	}
	// Decoder reuses one payload scratch buffer across messages; Ingest
	// copies the bytes out immediately, so the aliasing is safe and the
	// receive loop is allocation-free in steady state.
	dec := NewDecoder(conn)
	for {
		msg, err := dec.Next()
		if err != nil {
			return stats, fmt.Errorf("netstream: mid-stream: %w", err)
		}
		if msg.End {
			break
		}
		if msg.Data == nil {
			return stats, fmt.Errorf("netstream: unexpected message %+v", msg)
		}
		// All frames whose deadline precedes this send step are due.
		flush(int(msg.Data.SendStep) - 1)
		if err := rcv.Ingest(msg.Data); err != nil {
			return stats, err
		}
	}
	// Stream over: everything buffered is due.
	maxFrame := -1
	for a := range rcv.byFrame {
		if a > maxFrame {
			maxFrame = a
		}
	}
	flush(maxFrame + delay)
	stats.LateBytes = rcv.LateBytes()
	stats.MaxBuffer = rcv.MaxOccupancy()
	return stats, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// OfferStream converts a stream plus payload function into per-step offers;
// a convenience for tests and tools driving a Sender manually.
func OfferStream(st *stream.Stream, step int, payload func(stream.Slice) []byte) []Offered {
	var out []Offered
	for _, sl := range st.ArrivalsAt(step) {
		out = append(out, Offered{Slice: sl, Payload: payload(sl)})
	}
	return out
}
