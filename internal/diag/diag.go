// Package diag wires the profiling surface capacity runs need: an optional
// net/http/pprof endpoint and a SIGUSR1-triggered one-line runtime
// snapshot, shared by cmd/smoothd and cmd/smoothload so a 100k-session run
// can be profiled from outside without stopping it.
package diag

import (
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"runtime"
	"syscall"
)

// Serve exposes net/http/pprof on addr (e.g. "localhost:6060") in a
// background goroutine. The listen error is returned synchronously so a
// bad -pprof flag fails fast; serve errors after that are logged.
func Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("diag: pprof listen %s: %w", addr, err)
	}
	log.Printf("diag: pprof on http://%s/debug/pprof/", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			log.Printf("diag: pprof server: %v", err)
		}
	}()
	return nil
}

// Snapshot returns a one-line runtime summary: goroutines, heap in use,
// total process memory obtained from the OS, GC cycles, cumulative GC
// pause, and the most recent pause.
func Snapshot() string {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	lastPause := m.PauseNs[(m.NumGC+255)%256]
	return fmt.Sprintf("goroutines=%d heap=%.1fMiB sys=%.1fMiB gc=%d pause_total=%.3fms pause_last=%.3fms",
		runtime.NumGoroutine(),
		float64(m.HeapInuse)/(1<<20),
		float64(m.Sys)/(1<<20),
		m.NumGC,
		float64(m.PauseTotalNs)/1e6,
		float64(lastPause)/1e6)
}

// SnapshotOnSIGUSR1 logs Snapshot each time the process receives SIGUSR1,
// from a background goroutine that lives for the life of the process.
func SnapshotOnSIGUSR1() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGUSR1)
	go func() {
		for range ch {
			log.Printf("diag: %s", Snapshot())
		}
	}()
}
