// Package diag is the shared diagnostic surface of cmd/smoothd and
// cmd/smoothload: a Prometheus-text /metrics endpoint, a JSON /statusz,
// a flight-recorder dump at /debug/flightrec, the net/http/pprof
// handlers, and one unified SIGUSR1 snapshot writer, all fed by an
// engine's obs.Registry. Both daemons route every dump through the same
// writer, so a capacity run produces the same diagnostic shapes no
// matter which side of the wire it is taken from.
package diag

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/obs"
)

// Options selects what a daemon exposes. Registry is required for the
// metric endpoints; the rest are optional.
type Options struct {
	// Service names the daemon in snapshots and /statusz ("smoothd",
	// "smoothload").
	Service string
	// Registry is the engine's metric registry.
	Registry *obs.Registry
	// Recorders are the engine's per-shard flight-recorder rings.
	Recorders []*obs.FlightRecorder
	// SLO, if non-nil, is rendered after the registry on /metrics and
	// /statusz.
	SLO *obs.SLO
}

// scrapeErrs counts endpoint write failures (client hung up mid-scrape).
// There is nowhere useful to report a write error once the response has
// started, so the failure is counted and surfaced on the next successful
// /statusz instead of being dropped.
var scrapeErrs atomic.Uint64

// writeTimeout bounds one diagnostic response; a stalled scraper must
// not pin a handler goroutine for the life of the process.
const writeTimeout = 10 * time.Second

// Start exposes the diagnostic surface on addr (e.g. "localhost:6060")
// in a background goroutine and returns the bound address. The listen
// error is returned synchronously so a bad flag fails fast; per-request
// errors after that are counted in scrape_errors. Endpoints: /metrics,
// /statusz, /debug/flightrec (?format=json), /debug/pprof/*.
func Start(addr string, opts Options) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("diag: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           Handler(opts),
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      writeTimeout,
	}
	log.Printf("diag: %s metrics on http://%s/metrics (statusz, debug/flightrec, debug/pprof)", opts.Service, ln.Addr())
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("diag: server: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}

// Handler returns the diagnostic mux for Options, for daemons (and
// tests) that manage their own server.
func Handler(opts Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := writeMetrics(w, opts); err != nil {
			scrapeErrs.Add(1)
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := writeStatusz(w, opts); err != nil {
			scrapeErrs.Add(1)
		}
	})
	mux.HandleFunc("/debug/flightrec", func(w http.ResponseWriter, r *http.Request) {
		var err error
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			err = obs.WriteFlightJSON(w, opts.Recorders)
		} else {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			err = obs.WriteFlightDump(w, opts.Recorders)
		}
		if err != nil {
			scrapeErrs.Add(1)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeMetrics renders the full Prometheus-text body: registry, then the
// SLO accountant's series.
func writeMetrics(w io.Writer, opts Options) error {
	if err := opts.Registry.WritePrometheus(w, nil); err != nil {
		return err
	}
	if opts.SLO != nil {
		return opts.SLO.WritePrometheus(w)
	}
	return nil
}

// writeStatusz renders the JSON status object: service identity, runtime
// stats, the merged registry, and the SLO fields.
func writeStatusz(w io.Writer, opts Options) error {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	adm, rej := admission.Counters()
	if _, err := fmt.Fprintf(w,
		`{"service":%q,"runtime":{"goroutines":%d,"heap_inuse_bytes":%d,"sys_bytes":%d,"gc_cycles":%d},`+
			`"admission":{"admitted":%d,"rejected":%d},"scrape_errors":%d,"metrics":`,
		opts.Service, runtime.NumGoroutine(), m.HeapInuse, m.Sys, m.NumGC, adm, rej, scrapeErrs.Load()); err != nil {
		return err
	}
	if err := opts.Registry.WriteJSON(w, nil); err != nil {
		return err
	}
	if opts.SLO != nil {
		if err := opts.SLO.WriteJSONFields(w); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

// WriteSnapshot writes the unified diagnostic snapshot both daemons dump
// on SIGUSR1 (and smoothload on SLO breach): the runtime line, the full
// metric state in Prometheus text, and the flight-recorder rings.
func WriteSnapshot(w io.Writer, opts Options) error {
	if _, err := fmt.Fprintf(w, "=== %s diagnostic snapshot ===\nruntime: %s\n--- metrics ---\n", opts.Service, Snapshot()); err != nil {
		return err
	}
	if err := writeMetrics(w, opts); err != nil {
		return err
	}
	if len(opts.Recorders) > 0 {
		if _, err := io.WriteString(w, "--- flight recorder ---\n"); err != nil {
			return err
		}
		if err := obs.WriteFlightDump(w, opts.Recorders); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "=== end %s snapshot ===\n", opts.Service)
	return err
}

// NotifySIGUSR1 dumps WriteSnapshot to stderr each time the process
// receives SIGUSR1, from a background goroutine that lives for the life
// of the process.
func NotifySIGUSR1(opts Options) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGUSR1)
	go func() {
		for range ch {
			if err := WriteSnapshot(os.Stderr, opts); err != nil {
				log.Printf("diag: snapshot: %v", err)
			}
		}
	}()
}

// RegisterRuntimeMetrics adds the process-level series both daemons
// expose (goroutines, heap, GC cycles, admission decisions) to an
// engine's obs.Builder, via the engines' Config.Instrument hook.
func RegisterRuntimeMetrics(b *obs.Builder) {
	b.Func("runtime_goroutines", "Live goroutines.", func() int64 {
		return int64(runtime.NumGoroutine())
	})
	b.Func("runtime_heap_inuse_bytes", "Bytes in in-use heap spans.", func() int64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return int64(m.HeapInuse)
	})
	b.Func("runtime_gc_cycles_total", "Completed GC cycles.", func() int64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return int64(m.NumGC)
	})
	b.Func("admission_admitted_total", "Admissible evaluations that answered yes.", func() int64 {
		a, _ := admission.Counters()
		return int64(a)
	})
	b.Func("admission_rejected_total", "Admissible evaluations that answered no.", func() int64 {
		_, r := admission.Counters()
		return int64(r)
	})
	b.Func("diag_scrape_errors_total", "Diagnostic endpoint write failures.", func() int64 {
		return int64(scrapeErrs.Load())
	})
}

// Snapshot returns a one-line runtime summary: goroutines, heap in use,
// total process memory obtained from the OS, GC cycles, cumulative GC
// pause, and the most recent pause.
func Snapshot() string {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	lastPause := m.PauseNs[(m.NumGC+255)%256]
	return fmt.Sprintf("goroutines=%d heap=%.1fMiB sys=%.1fMiB gc=%d pause_total=%.3fms pause_last=%.3fms",
		runtime.NumGoroutine(),
		float64(m.HeapInuse)/(1<<20),
		float64(m.Sys)/(1<<20),
		m.NumGC,
		float64(m.PauseTotalNs)/1e6,
		float64(lastPause)/1e6)
}
