// Package lossless provides the lossless-smoothing counterparts that the
// paper positions its lossy results against (Section 1, "related work on
// smoothing"):
//
//   - exact zero-loss provisioning for the generic algorithm: the minimum
//     link rate for a given buffer, minimum buffer for a given rate, and
//     minimum rate for a given delay under the B = R·D law. These follow
//     from the interval characterization of feasibility (see package
//     offline): no loss occurs iff for every interval I the bytes arriving
//     in I are at most R·|I| + B;
//   - the optimal minimum-peak-rate transmission plan for stored video with
//     a client buffer (in the style of Salehi et al., IEEE/ACM ToN 1998):
//     the taut-string schedule through the corridor between the cumulative
//     playout curve and the buffer-shifted upper envelope;
//   - a simple online sliding-window smoother (in the style of Rexford et
//     al., NOSSDAV 1997) as an online lossless baseline.
package lossless

import (
	"fmt"
	"math"

	"repro/internal/stream"
)

// MinBuffer returns the smallest server/client buffer size B such that the
// generic algorithm with link rate R loses nothing on the stream: the
// maximum over all intervals of (arriving bytes − R·length), but at least
// the largest slice (a slice bigger than the buffer can never be stored).
func MinBuffer(st *stream.Stream, R int) (int, error) {
	if R <= 0 {
		return 0, fmt.Errorf("lossless: non-positive rate %d", R)
	}
	B := st.MaxSliceSize()
	if B == 0 {
		B = 1 // empty stream: any positive buffer works
	}
	cum := st.CumulativeArrivals()
	// occ(t) under work conservation = max over t1<=t of A[t1..t] - R(t-t1+1);
	// one forward Lindley pass finds the max occupancy, which is MinBuffer.
	occ := int64(0)
	prev := int64(0)
	for t := range cum {
		arr := cum[t] - prev
		prev = cum[t]
		occ += arr - int64(R)
		if occ < 0 {
			occ = 0
		}
		if occ > int64(B) {
			B = int(occ)
		}
	}
	return B, nil
}

// MinRate returns the smallest link rate R such that the generic algorithm
// with buffer B loses nothing: the maximum over all intervals [t1, t2] of
// ceil((A[t1..t2] − B)/(t2−t1+1)), but at least 1. It returns an error if
// some slice exceeds B (no rate can help).
func MinRate(st *stream.Stream, B int) (int, error) {
	if B <= 0 {
		return 0, fmt.Errorf("lossless: non-positive buffer %d", B)
	}
	if st.MaxSliceSize() > B {
		return 0, fmt.Errorf("lossless: slice of size %d exceeds buffer %d", st.MaxSliceSize(), B)
	}
	cum := st.CumulativeArrivals()
	R := 1
	for t1 := 0; t1 < len(cum); t1++ {
		var before int64
		if t1 > 0 {
			before = cum[t1-1]
		}
		for t2 := t1; t2 < len(cum); t2++ {
			need := cum[t2] - before - int64(B)
			if need <= 0 {
				continue
			}
			length := int64(t2 - t1 + 1)
			r := int((need + length - 1) / length)
			if r > R {
				R = r
			}
		}
	}
	return R, nil
}

// MinRateForDelay returns the smallest link rate R such that the generic
// algorithm with smoothing delay D and the lawful buffer B = R·D loses
// nothing: the maximum over intervals of ceil(A[t1..t2]/(t2−t1+1+D)).
// This is the "compute the required bandwidth from the desired latency"
// calculation of the setup protocol sketched in Section 3.3.
func MinRateForDelay(st *stream.Stream, D int) (int, error) {
	if D < 0 {
		return 0, fmt.Errorf("lossless: negative delay %d", D)
	}
	cum := st.CumulativeArrivals()
	R := 1
	for t1 := 0; t1 < len(cum); t1++ {
		var before int64
		if t1 > 0 {
			before = cum[t1-1]
		}
		for t2 := t1; t2 < len(cum); t2++ {
			bytes := cum[t2] - before
			window := int64(t2 - t1 + 1 + D)
			r := int((bytes + window - 1) / window)
			if r > R {
				R = r
			}
		}
	}
	// The lawful buffer must also hold the largest slice.
	if D > 0 {
		if minB := st.MaxSliceSize(); minB > R*D {
			R = (minB + D - 1) / D
		}
	} else if st.MaxSliceSize() > R {
		R = st.MaxSliceSize()
	}
	return R, nil
}

// Segment is one constant-rate piece of a transmission plan, covering the
// steps [From, To] inclusive.
type Segment struct {
	From, To int
	Rate     float64
}

// Plan is a piecewise-constant lossless transmission schedule for a stored
// stream.
type Plan struct {
	// Segments partition the transmission interval in order.
	Segments []Segment
	// Peak is the largest segment rate.
	Peak float64
	// Startup is the playout delay the plan was computed for.
	Startup int
	// Total is the number of bytes transmitted.
	Total int64
}

// Rates expands the plan into a per-step rate series.
func (p *Plan) Rates() []float64 {
	if len(p.Segments) == 0 {
		return nil
	}
	last := p.Segments[len(p.Segments)-1].To
	out := make([]float64, last+1)
	for _, seg := range p.Segments {
		for t := seg.From; t <= seg.To; t++ {
			out[t] = seg.Rate
		}
	}
	return out
}

// OptimalStoredPlan computes the minimum-peak-rate lossless transmission
// plan for a stored stream: demand[k] bytes are played at step startup+k,
// the client buffer holds at most clientBuffer bytes, and transmission may
// begin at step 0. The plan is the taut-string (shortest-path) schedule
// through the corridor L(t) <= X(t) <= min(L(t)+clientBuffer, total); among
// all feasible schedules it minimizes the peak rate (and, classically, the
// rate variability).
func OptimalStoredPlan(demand []int, clientBuffer, startup int) (*Plan, error) {
	if clientBuffer <= 0 {
		return nil, fmt.Errorf("lossless: non-positive client buffer %d", clientBuffer)
	}
	if startup < 0 {
		return nil, fmt.Errorf("lossless: negative startup delay %d", startup)
	}
	var total int64
	for i, d := range demand {
		if d < 0 {
			return nil, fmt.Errorf("lossless: negative demand %d at index %d", d, i)
		}
		total += int64(d)
	}
	plan := &Plan{Startup: startup, Total: total}
	if total == 0 {
		return plan, nil
	}

	// Corridor over steps t = 0..Tend. lower[t] = bytes that must have
	// been transmitted by the END of step t; upper[t] = bytes that may
	// have been.
	Tend := startup + len(demand) - 1
	lower := make([]int64, Tend+1)
	upper := make([]int64, Tend+1)
	var played int64
	for t := 0; t <= Tend; t++ {
		if t >= startup {
			played += int64(demand[t-startup])
		}
		lower[t] = played
		upper[t] = played + int64(clientBuffer)
		if upper[t] > total {
			upper[t] = total
		}
	}

	// Taut string via the funnel ("windshield wiper") sweep: from the
	// current apex, narrow the wedge of feasible slopes corner by corner;
	// when a corner falls outside the wedge, the path bends at the corner
	// that defined the violated side, which becomes the new apex.
	t0, x0 := -1, float64(0)
	for t0 < Tend {
		loSlope, hiSlope := math.Inf(-1), math.Inf(1)
		loT, hiT := t0+1, t0+1
		bendT := -1
		bendX := 0.0
		for t := t0 + 1; t <= Tend; t++ {
			dt := float64(t - t0)
			sLo := (float64(lower[t]) - x0) / dt
			sHi := (float64(upper[t]) - x0) / dt
			if sLo > hiSlope {
				// The lower envelope rises above the wedge: the path
				// must bend upward at the corner that set hiSlope.
				bendT, bendX = hiT, float64(upper[hiT])
				break
			}
			if sHi < loSlope {
				// The upper envelope dips below the wedge: bend
				// downward at the corner that set loSlope.
				bendT, bendX = loT, float64(lower[loT])
				break
			}
			if sLo >= loSlope {
				loSlope, loT = sLo, t
			}
			if sHi <= hiSlope {
				hiSlope, hiT = sHi, t
			}
		}
		if bendT < 0 {
			// The wedge survived to the end of the corridor, where
			// lower == upper == total: a single straight segment.
			bendT, bendX = Tend, float64(total)
		}
		rate := (bendX - x0) / float64(bendT-t0)
		if rate < 0 {
			rate = 0 // numerically impossible for monotone envelopes; guard anyway
		}
		plan.Segments = append(plan.Segments, Segment{From: t0 + 1, To: bendT, Rate: rate})
		if rate > plan.Peak {
			plan.Peak = rate
		}
		t0, x0 = bendT, bendX
	}
	return plan, nil
}

// MinPeakLowerBound returns the information-theoretic lower bound on the
// peak rate of any lossless schedule for the stored-plan setting: the
// maximum over t1 < t2 of (L(t2) − U(t1)) / (t2 − t1), where L and U are
// the corridor envelopes of OptimalStoredPlan (with U(-1) = 0). The taut
// string achieves it.
func MinPeakLowerBound(demand []int, clientBuffer, startup int) float64 {
	var total int64
	for _, d := range demand {
		total += int64(d)
	}
	if total == 0 {
		return 0
	}
	Tend := startup + len(demand) - 1
	lower := make([]int64, Tend+1)
	upper := make([]int64, Tend+2) // index shifted by 1; upper[0] = U(-1) = 0
	var played int64
	for t := 0; t <= Tend; t++ {
		if t >= startup {
			played += int64(demand[t-startup])
		}
		lower[t] = played
		u := played + int64(clientBuffer)
		if u > total {
			u = total
		}
		upper[t+1] = u
	}
	best := 0.0
	for t1 := -1; t1 < Tend; t1++ {
		u := upper[t1+1]
		for t2 := t1 + 1; t2 <= Tend; t2++ {
			if need := float64(lower[t2]-u) / float64(t2-t1); need > best {
				best = need
			}
		}
	}
	return best
}

// WindowSmoother is a simple online lossless smoother: it keeps a backlog
// of arrived-but-unsent bytes and transmits at rate ceil(backlog/window)
// each step, spreading every burst over the next `window` steps. It is the
// "sliding window" baseline from the online lossless smoothing literature;
// its peak rate decreases with the window at the cost of delay.
type WindowSmoother struct {
	window  int
	backlog int64
}

// NewWindowSmoother returns a smoother with the given window (>= 1).
func NewWindowSmoother(window int) (*WindowSmoother, error) {
	if window < 1 {
		return nil, fmt.Errorf("lossless: window must be >= 1, got %d", window)
	}
	return &WindowSmoother{window: window}, nil
}

// Step accepts the bytes arriving this step and returns the bytes to send.
func (w *WindowSmoother) Step(arrived int) int {
	w.backlog += int64(arrived)
	send := (w.backlog + int64(w.window) - 1) / int64(w.window)
	w.backlog -= send
	return int(send)
}

// Backlog returns the bytes currently buffered.
func (w *WindowSmoother) Backlog() int64 { return w.backlog }

// SmoothStream runs the smoother over a whole stream and returns the
// per-step send series, its peak, and the maximum backlog (server buffer
// requirement).
func (w *WindowSmoother) SmoothStream(st *stream.Stream) (sends []int, peak int, maxBacklog int64) {
	for t := 0; t <= st.Horizon() || w.backlog > 0; t++ {
		arrived := 0
		for _, sl := range st.ArrivalsAt(t) {
			arrived += sl.Size
		}
		send := w.Step(arrived)
		sends = append(sends, send)
		if send > peak {
			peak = send
		}
		if w.backlog > maxBacklog {
			maxBacklog = w.backlog
		}
	}
	return sends, peak, maxBacklog
}
