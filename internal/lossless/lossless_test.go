package lossless

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/stream"
)

func randomStream(rng *rand.Rand) *stream.Stream {
	b := stream.NewBuilder()
	n := rng.Intn(25) + 1
	for i := 0; i < n; i++ {
		b.Add(rng.Intn(12), rng.Intn(4)+1, 1)
	}
	return b.MustBuild()
}

// lossFree reports whether the generic algorithm drops nothing.
func lossFree(t *testing.T, st *stream.Stream, B, R int) bool {
	t.Helper()
	s, err := core.Simulate(st, core.Config{ServerBuffer: B, Rate: R})
	if err != nil {
		t.Fatal(err)
	}
	return s.DroppedSlices() == 0
}

func TestMinBufferExact(t *testing.T) {
	// Property: simulation with MinBuffer loses nothing; with one byte
	// less it loses something (unless MinBuffer is already forced by the
	// largest slice).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStream(rng)
		R := rng.Intn(3) + 1
		B, err := MinBuffer(st, R)
		if err != nil {
			return false
		}
		if !lossFree(t, st, B, R) {
			t.Logf("seed %d: loss at MinBuffer=%d (R=%d)", seed, B, R)
			return false
		}
		if B > st.MaxSliceSize() && B > 1 && lossFree(t, st, B-1, R) {
			t.Logf("seed %d: no loss at MinBuffer-1=%d (R=%d)", seed, B-1, R)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestMinRateExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStream(rng)
		B := st.MaxSliceSize() + rng.Intn(6)
		R, err := MinRate(st, B)
		if err != nil {
			return false
		}
		if !lossFree(t, st, B, R) {
			t.Logf("seed %d: loss at MinRate=%d (B=%d)", seed, R, B)
			return false
		}
		if R > 1 && lossFree(t, st, B, R-1) {
			t.Logf("seed %d: no loss at MinRate-1=%d (B=%d)", seed, R-1, B)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestMinRateForDelayExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStream(rng)
		D := rng.Intn(6) + 1
		R, err := MinRateForDelay(st, D)
		if err != nil {
			return false
		}
		if !lossFree(t, st, R*D, R) {
			t.Logf("seed %d: loss at R=%d, B=RD=%d (D=%d)", seed, R, R*D, D)
			return false
		}
		if R > 1 && (R-1)*D >= st.MaxSliceSize() && lossFree(t, st, (R-1)*D, R-1) {
			t.Logf("seed %d: no loss at R-1=%d (D=%d)", seed, R-1, D)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestMinBufferSmoke(t *testing.T) {
	// 6 bytes at step 0, R=2: occupancy after step 0 is 4.
	st := stream.NewBuilder().AddFrame(0, 1, 1, 1, 1, 1, 1).MustBuild()
	B, err := MinBuffer(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if B != 4 {
		t.Errorf("MinBuffer = %d, want 4", B)
	}
}

func TestMinRateSmoke(t *testing.T) {
	// 10 bytes at step 0, B=4: need ceil((10-4)/1) = 6 per step.
	b := stream.NewBuilder()
	for i := 0; i < 10; i++ {
		b.Add(0, 1, 1)
	}
	st := b.MustBuild()
	R, err := MinRate(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	if R != 6 {
		t.Errorf("MinRate = %d, want 6", R)
	}
}

func TestErrors(t *testing.T) {
	st := stream.NewBuilder().Add(0, 5, 5).MustBuild()
	if _, err := MinBuffer(st, 0); err == nil {
		t.Error("MinBuffer R=0 accepted")
	}
	if _, err := MinRate(st, 0); err == nil {
		t.Error("MinRate B=0 accepted")
	}
	if _, err := MinRate(st, 4); err == nil {
		t.Error("MinRate with slice > B accepted")
	}
	if _, err := MinRateForDelay(st, -1); err == nil {
		t.Error("MinRateForDelay D<0 accepted")
	}
}

func TestMinBufferEmptyStream(t *testing.T) {
	st := stream.NewBuilder().MustBuild()
	B, err := MinBuffer(st, 1)
	if err != nil {
		t.Fatal(err)
	}
	if B != 1 {
		t.Errorf("MinBuffer(empty) = %d, want 1", B)
	}
}

// planFeasible checks the plan stays inside the corridor and delivers all
// bytes on time.
func planFeasible(t *testing.T, p *Plan, demand []int, clientBuffer, startup int) {
	t.Helper()
	rates := p.Rates()
	x := 0.0
	var played int64
	for step, r := range rates {
		if r < -1e-9 {
			t.Fatalf("negative rate %v at step %d", r, step)
		}
		x += r
		if step >= startup && step-startup < len(demand) {
			played += int64(demand[step-startup])
		}
		if x < float64(played)-1e-6 {
			t.Fatalf("underflow at step %d: sent %.3f < played %d", step, x, played)
		}
		if x > float64(played)+float64(clientBuffer)+1e-6 {
			t.Fatalf("overflow at step %d: sent %.3f > played %d + buffer %d", step, x, played, clientBuffer)
		}
	}
	if math.Abs(x-float64(p.Total)) > 1e-6 {
		t.Fatalf("plan transmits %.3f of %d bytes", x, p.Total)
	}
}

func TestOptimalStoredPlanSmooth(t *testing.T) {
	// Constant demand with ample buffer: a single segment at the demand
	// rate (after the startup build-up is averaged in).
	demand := []int{10, 10, 10, 10, 10}
	p, err := OptimalStoredPlan(demand, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	planFeasible(t, p, demand, 100, 0)
	if p.Peak > 10+1e-9 {
		t.Errorf("peak = %v, want <= 10", p.Peak)
	}
}

func TestOptimalStoredPlanStartupHelps(t *testing.T) {
	// A big first frame: with startup delay the peak drops.
	demand := []int{100, 1, 1, 1, 1, 1, 1, 1}
	p0, err := OptimalStoredPlan(demand, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := OptimalStoredPlan(demand, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	planFeasible(t, p0, demand, 1000, 0)
	planFeasible(t, p4, demand, 1000, 4)
	if p4.Peak >= p0.Peak {
		t.Errorf("startup did not reduce peak: %v vs %v", p4.Peak, p0.Peak)
	}
}

func TestOptimalStoredPlanTightBuffer(t *testing.T) {
	// A tiny client buffer forces near-just-in-time transmission.
	demand := []int{5, 50, 5, 50, 5}
	p, err := OptimalStoredPlan(demand, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	planFeasible(t, p, demand, 50, 0)
}

func TestOptimalStoredPlanAchievesLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 1
		demand := make([]int, n)
		for i := range demand {
			demand[i] = rng.Intn(30)
		}
		buffer := rng.Intn(60) + 30
		startup := rng.Intn(4)
		p, err := OptimalStoredPlan(demand, buffer, startup)
		if err != nil {
			return false
		}
		planFeasible(t, p, demand, buffer, startup)
		lb := MinPeakLowerBound(demand, buffer, startup)
		if p.Peak > lb+1e-6 {
			t.Logf("seed %d: peak %v > lower bound %v", seed, p.Peak, lb)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOptimalStoredPlanEdgeCases(t *testing.T) {
	p, err := OptimalStoredPlan(nil, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) != 0 || p.Peak != 0 {
		t.Errorf("empty demand plan = %+v", p)
	}
	if _, err := OptimalStoredPlan([]int{1}, 0, 0); err == nil {
		t.Error("zero buffer accepted")
	}
	if _, err := OptimalStoredPlan([]int{1}, 1, -1); err == nil {
		t.Error("negative startup accepted")
	}
	if _, err := OptimalStoredPlan([]int{-1}, 1, 0); err == nil {
		t.Error("negative demand accepted")
	}
	// All-zero demand.
	p, err = OptimalStoredPlan([]int{0, 0}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total != 0 {
		t.Errorf("total = %d", p.Total)
	}
}

func TestWindowSmoother(t *testing.T) {
	w, err := NewWindowSmoother(4)
	if err != nil {
		t.Fatal(err)
	}
	// A burst of 8 spreads over the window.
	if got := w.Step(8); got != 2 {
		t.Errorf("first send = %d, want 2", got)
	}
	if got := w.Step(0); got != 2 {
		t.Errorf("second send = %d, want 2", got)
	}
	if w.Backlog() != 4 {
		t.Errorf("backlog = %d, want 4", w.Backlog())
	}
}

func TestWindowSmootherErrors(t *testing.T) {
	if _, err := NewWindowSmoother(0); err == nil {
		t.Error("window 0 accepted")
	}
}

func TestWindowSmootherReducesPeak(t *testing.T) {
	// One big burst: peak with window w is ceil(burst/w).
	b := stream.NewBuilder()
	for i := 0; i < 100; i++ {
		b.Add(0, 1, 1)
	}
	st := b.MustBuild()
	w1, _ := NewWindowSmoother(1)
	w10, _ := NewWindowSmoother(10)
	_, peak1, _ := w1.SmoothStream(st)
	sends, peak10, maxBacklog := w10.SmoothStream(st)
	if peak1 != 100 {
		t.Errorf("window-1 peak = %d, want 100", peak1)
	}
	if peak10 != 10 {
		t.Errorf("window-10 peak = %d, want 10", peak10)
	}
	if maxBacklog != 90 {
		t.Errorf("max backlog = %d, want 90", maxBacklog)
	}
	var totalSent int
	for _, s := range sends {
		totalSent += s
	}
	if totalSent != 100 {
		t.Errorf("smoother lost bytes: sent %d of 100", totalSent)
	}
}

func TestWindowSmootherConservesBytes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStream(rng)
		w, err := NewWindowSmoother(rng.Intn(6) + 1)
		if err != nil {
			return false
		}
		sends, _, _ := w.SmoothStream(st)
		total := 0
		for _, s := range sends {
			total += s
		}
		return total == st.TotalBytes() && w.Backlog() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStoredPlanSmootherThanWorkConserving(t *testing.T) {
	// The taut string is the smoothest feasible schedule: its rate
	// variance must not exceed that of the just-in-time (work-conserving
	// playback-driven) schedule, on bursty demand.
	rng := rand.New(rand.NewSource(17))
	demand := make([]int, 200)
	for i := range demand {
		if rng.Intn(4) == 0 {
			demand[i] = rng.Intn(80)
		}
	}
	const (
		buffer  = 300
		startup = 8
	)
	p, err := OptimalStoredPlan(demand, buffer, startup)
	if err != nil {
		t.Fatal(err)
	}
	variance := func(rates []float64) float64 {
		var sum float64
		for _, r := range rates {
			sum += r
		}
		mean := sum / float64(len(rates))
		var ss float64
		for _, r := range rates {
			ss += (r - mean) * (r - mean)
		}
		return ss / float64(len(rates))
	}
	taut := p.Rates()
	// Just-in-time: transmit each frame exactly when played.
	jit := make([]float64, len(taut))
	for i, d := range demand {
		if startup+i < len(jit) {
			jit[startup+i] = float64(d)
		}
	}
	if variance(taut) > variance(jit)+1e-9 {
		t.Errorf("taut-string variance %v above just-in-time %v", variance(taut), variance(jit))
	}
	// And its peak is no higher either.
	peakOf := func(rates []float64) float64 {
		m := 0.0
		for _, r := range rates {
			if r > m {
				m = r
			}
		}
		return m
	}
	if peakOf(taut) > peakOf(jit)+1e-9 {
		t.Errorf("taut-string peak %v above just-in-time %v", peakOf(taut), peakOf(jit))
	}
}
