package lossless_test

import (
	"fmt"

	"repro/internal/lossless"
	"repro/internal/stream"
)

// ExampleMinRateForDelay derives the bandwidth a latency budget buys: the
// setup-protocol calculation of the paper's Section 3.3.
func ExampleMinRateForDelay() {
	// A stream that alternates 10-byte bursts with idle steps.
	b := stream.NewBuilder()
	for t := 0; t < 10; t += 2 {
		b.Add(t, 10, 10)
	}
	st := b.MustBuild()

	// Delay 1 still needs rate 10: the lawful buffer R·D must hold a
	// whole 10-byte slice. At delay 4 the binding constraint is the
	// sustained rate over the whole stream: 50 bytes over 9+4 steps.
	for _, d := range []int{0, 1, 4} {
		r, _ := lossless.MinRateForDelay(st, d)
		fmt.Printf("delay %d needs rate %d (buffer %d)\n", d, r, r*d)
	}
	// Output:
	// delay 0 needs rate 10 (buffer 0)
	// delay 1 needs rate 10 (buffer 10)
	// delay 4 needs rate 4 (buffer 16)
}

// ExampleOptimalStoredPlan computes the minimum-peak-rate plan for a stored
// clip with a client buffer: the taut string through the playback corridor.
func ExampleOptimalStoredPlan() {
	demand := []int{8, 1, 1, 1, 1} // a big first frame, then a trickle
	plan, _ := lossless.OptimalStoredPlan(demand, 100, 2)
	fmt.Printf("peak %.2f with %d segments\n", plan.Peak, len(plan.Segments))
	// Output:
	// peak 2.67 with 2 segments
}
