package trace

import (
	"fmt"

	"repro/internal/stream"
)

// MPEG decode dependencies: losing a frame hurts more than its own bytes,
// because other frames reference it. The paper motivates value-aware
// dropping by noting that "the quality of the output does not degrade
// linearly with the quantity of lost data"; this file quantifies that with
// the standard MPEG-1 reference structure:
//
//   - an I frame is self-contained;
//   - a P frame references the closest preceding anchor (I or P);
//   - a B frame references both the closest preceding AND the closest
//     following anchor.
//
// A delivered frame is *decodable* only if all frames it (transitively)
// references were delivered too.

// DecodeStats summarizes dependency-aware playback quality.
type DecodeStats struct {
	// Delivered counts frames whose own data arrived.
	Delivered int
	// Decodable counts delivered frames whose references are decodable.
	Decodable int
	// Poisoned counts delivered frames that are useless because a
	// reference was lost (Delivered - Decodable).
	Poisoned int
	// PerType breaks Decodable down by frame type.
	PerType map[FrameType]int
	// Total is the clip length.
	Total int
}

// DecodableFraction returns Decodable / Total (0 for an empty clip).
func (d DecodeStats) DecodableFraction() float64 {
	if d.Total == 0 {
		return 0
	}
	return float64(d.Decodable) / float64(d.Total)
}

// Decodability evaluates which frames of the clip are actually usable by a
// decoder, given which frames were delivered (by index). delivered may be
// nil, meaning everything was delivered.
func Decodability(c *Clip, delivered func(frameIndex int) bool) DecodeStats {
	n := len(c.Frames)
	stats := DecodeStats{Total: n, PerType: make(map[FrameType]int, 3)}
	if n == 0 {
		return stats
	}
	decodable := DecodableFrames(c, delivered)
	del := func(i int) bool { return delivered == nil || delivered(i) }
	for i, f := range c.Frames {
		if del(i) {
			stats.Delivered++
		}
		if decodable[i] {
			stats.Decodable++
			stats.PerType[f.Type]++
		}
	}
	stats.Poisoned = stats.Delivered - stats.Decodable
	return stats
}

// DecodableFrames returns, per frame, whether a decoder could actually use
// it given the delivery predicate (nil = everything delivered).
func DecodableFrames(c *Clip, delivered func(frameIndex int) bool) []bool {
	n := len(c.Frames)
	if n == 0 {
		return nil
	}
	del := func(i int) bool { return delivered == nil || delivered(i) }

	// decodable[i] for anchors is computed in one forward pass: an anchor
	// chain breaks at the first lost or poisoned anchor and heals at the
	// next delivered I frame.
	decodable := make([]bool, n)
	prevAnchorOK := false
	for i, f := range c.Frames {
		switch f.Type {
		case I:
			decodable[i] = del(i)
			prevAnchorOK = decodable[i]
		case P:
			decodable[i] = del(i) && prevAnchorOK
			prevAnchorOK = decodable[i]
		}
	}
	// B frames need the following anchor as well: a backward sweep
	// tracking the next anchor's decodability.
	nextAnchorOK := false
	prevOK := make([]bool, n) // decodability of the closest preceding anchor
	ok := false
	for i, f := range c.Frames {
		prevOK[i] = ok
		if f.Type == I || f.Type == P {
			ok = decodable[i]
		}
	}
	for i := n - 1; i >= 0; i-- {
		f := c.Frames[i]
		if f.Type == I || f.Type == P {
			nextAnchorOK = decodable[i]
			continue
		}
		decodable[i] = del(i) && prevOK[i] && nextAnchorOK
	}
	return decodable
}

// GlitchProfile quantifies how the viewer experiences the losses: a glitch
// is a maximal run of consecutive undecodable frames (frozen or corrupted
// playback). Two schedules with identical frame-loss counts can differ
// enormously here — which is the whole point of value-aware dropping.
type GlitchProfile struct {
	// Glitches is the number of maximal undecodable runs.
	Glitches int
	// Longest is the longest run, in frames.
	Longest int
	// Mean is the mean run length (0 if there are no glitches).
	Mean float64
	// BadFrames is the total number of undecodable frames.
	BadFrames int
	// PerKiloframe is glitches per 1000 frames.
	PerKiloframe float64
}

// DependencyWeights derives a per-frame weight map from the decode
// dependency structure itself, instead of the paper's fixed 12:8:1: each
// frame's weight per byte is proportional to the total size of the frames
// that become undecodable if it is lost (itself included), normalized so
// that B frames have weight 1. This is the "discard the least damaging
// data" idea of Section 1 taken to its logical end; the "smartweights"
// experiment measures whether it buys additional decodable frames over
// 12:8:1.
//
// The returned slice is indexed by frame; use it with WeightedStream.
func DependencyWeights(c *Clip) []float64 {
	n := len(c.Frames)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	// damage[i] = bytes rendered undecodable by losing frame i alone,
	// relative to the full-delivery baseline (a clip may have frames that
	// are undecodable even with everything delivered, e.g. a trailing B
	// with no following anchor).
	damage := make([]float64, n)
	baseline := DecodableFrames(c, nil)
	// Losing a B frame hurts only itself; losing an anchor kills every
	// frame whose decode chain runs through it. Rerunning the O(n)
	// decodability sweep per anchor keeps this exact at O(n * anchors)
	// cost, fine at clip scale.
	for i, f := range c.Frames {
		if f.Type == B {
			if baseline[i] {
				damage[i] = float64(f.Size)
			}
			continue
		}
		var total float64
		dec := DecodableFrames(c, func(j int) bool { return j != i })
		for k, ok := range dec {
			if !ok && baseline[k] {
				total += float64(c.Frames[k].Size)
			}
		}
		damage[i] = total
	}
	// Normalize to weight-per-byte with B frames at 1.
	for i, f := range c.Frames {
		out[i] = damage[i] / float64(f.Size)
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

// WeightedStream converts the clip into a whole-frame-slice stream using an
// explicit per-frame weight-per-byte vector (e.g. from DependencyWeights).
func WeightedStream(c *Clip, perByte []float64) (*stream.Stream, error) {
	if len(perByte) != len(c.Frames) {
		return nil, fmt.Errorf("trace: %d weights for %d frames", len(perByte), len(c.Frames))
	}
	b := stream.NewBuilder()
	for i, f := range c.Frames {
		b.Add(f.Index, f.Size, perByte[i]*float64(f.Size))
	}
	return b.Build()
}

// Glitches computes the glitch profile of a delivery.
func Glitches(c *Clip, delivered func(frameIndex int) bool) GlitchProfile {
	var p GlitchProfile
	n := len(c.Frames)
	if n == 0 {
		return p
	}
	decodable := DecodableFrames(c, delivered)
	run := 0
	for i := 0; i <= n; i++ {
		if i < n && !decodable[i] {
			run++
			continue
		}
		if run > 0 {
			p.Glitches++
			p.BadFrames += run
			if run > p.Longest {
				p.Longest = run
			}
			run = 0
		}
	}
	if p.Glitches > 0 {
		p.Mean = float64(p.BadFrames) / float64(p.Glitches)
	}
	p.PerKiloframe = 1000 * float64(p.Glitches) / float64(n)
	return p
}
