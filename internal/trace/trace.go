// Package trace provides MPEG-like video traces for the experiments of
// Section 5 of the paper.
//
// The paper's experiments used MPEG-1 clips from the CNN video archive,
// which no longer exists. This package substitutes a synthetic generator
// calibrated to the statistics the paper reports for those clips:
//
//   - mean frame size ≈ 38 KB, maximum frame size ≈ 120 KB;
//   - I/P/B frame frequencies ≈ 8% / 31% / 61% (a 13-frame GOP
//     IBBPBBPBBPBBP gives 1/13, 4/13, 8/13 ≈ 7.7%/30.8%/61.5%);
//   - slice values 12 : 8 : 1 for I : P : B frames.
//
// Frame sizes are drawn from per-type lognormal distributions modulated by
// a slowly varying AR(1) "scene level" process, which produces the bursty
// group structure characteristic of entertainment video. Sizes are measured
// in abstract units (the model's "bytes"); the experiment harness uses
// 1 unit = 1 KB.
//
// The package also reads and writes the classic ASCII trace format
// ("index type size" per line) used by public MPEG trace archives, so real
// traces can be substituted for the synthetic ones.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/stats"
	"repro/internal/stream"
)

// FrameType is an MPEG frame type.
type FrameType byte

// The three MPEG-1 frame types.
const (
	I FrameType = 'I'
	P FrameType = 'P'
	B FrameType = 'B'
)

// Valid reports whether t is one of I, P, B.
func (t FrameType) Valid() bool { return t == I || t == P || t == B }

// String returns "I", "P" or "B".
func (t FrameType) String() string { return string(rune(t)) }

// Frame is one video frame of a clip.
type Frame struct {
	// Index is the display/generation index; frame k arrives at step k.
	Index int
	// Type is the MPEG frame type.
	Type FrameType
	// Size is the encoded frame size in abstract units.
	Size int
}

// Clip is a sequence of frames, one per time step.
type Clip struct {
	Frames []Frame
}

// TotalSize returns the sum of all frame sizes.
func (c *Clip) TotalSize() int {
	n := 0
	for _, f := range c.Frames {
		n += f.Size
	}
	return n
}

// MaxFrameSize returns the largest frame size, or 0 for an empty clip.
func (c *Clip) MaxFrameSize() int {
	m := 0
	for _, f := range c.Frames {
		if f.Size > m {
			m = f.Size
		}
	}
	return m
}

// AverageRate returns the mean frame size (units per step): total size over
// the number of frames — the paper's "average stream rate".
func (c *Clip) AverageRate() float64 {
	if len(c.Frames) == 0 {
		return 0
	}
	return float64(c.TotalSize()) / float64(len(c.Frames))
}

// TypeStats returns, per frame type, the count and the size summary.
func (c *Clip) TypeStats() map[FrameType]stats.Summary {
	buckets := map[FrameType][]float64{}
	for _, f := range c.Frames {
		buckets[f.Type] = append(buckets[f.Type], float64(f.Size))
	}
	out := make(map[FrameType]stats.Summary, len(buckets))
	for ft, xs := range buckets {
		out[ft] = stats.Summarize(xs)
	}
	return out
}

// WeightMap assigns a per-unit value to each frame type. The paper uses
// I:P:B = 12:8:1.
type WeightMap map[FrameType]float64

// PaperWeights returns the 12:8:1 value assignment of Section 5.
func PaperWeights() WeightMap { return WeightMap{I: 12, P: 8, B: 1} }

// WholeFrameStream converts the clip to a stream with one slice per frame
// (the "each frame is an individual slice" model of Section 5.3). The
// slice weight is w(type) * size, so the per-unit byte value is w(type).
func WholeFrameStream(c *Clip, w WeightMap) (*stream.Stream, error) {
	b := stream.NewBuilder()
	for _, f := range c.Frames {
		wt, ok := w[f.Type]
		if !ok {
			return nil, fmt.Errorf("trace: no weight for frame type %q", f.Type)
		}
		b.Add(f.Index, f.Size, wt*float64(f.Size))
	}
	return b.Build()
}

// ByteSliceStream converts the clip to a stream in which every unit is an
// individual slice of weight w(type) (the "each byte is an individual
// slice" model of Sections 5.1–5.2).
func ByteSliceStream(c *Clip, w WeightMap) (*stream.Stream, error) {
	b := stream.NewBuilder()
	for _, f := range c.Frames {
		wt, ok := w[f.Type]
		if !ok {
			return nil, fmt.Errorf("trace: no weight for frame type %q", f.Type)
		}
		for i := 0; i < f.Size; i++ {
			b.Add(f.Index, 1, wt)
		}
	}
	return b.Build()
}

// GenConfig parameterizes the synthetic generator. The zero value is not
// usable; start from DefaultGenConfig.
type GenConfig struct {
	// Frames is the clip length.
	Frames int
	// GOP is the repeating frame-type pattern, e.g. "IBBPBBPBBPBBP".
	GOP string
	// Mean size per frame type, in units.
	MeanI, MeanP, MeanB float64
	// Relative standard deviation (coefficient of variation) per type.
	CVI, CVP, CVB float64
	// MinFrame and MaxFrame clamp every frame size.
	MinFrame, MaxFrame int
	// ScenePersistence is the AR(1) coefficient of the scene-level
	// multiplier (0 disables scene modulation).
	ScenePersistence float64
	// SceneNoise is the innovation stddev of the scene multiplier.
	SceneNoise float64
	// Seed drives the deterministic random source.
	Seed int64
}

// DefaultGenConfig returns the calibration that matches the statistics the
// paper reports for its CNN clips: mean frame ≈ 38 units, max 120 units,
// I/P/B ≈ 8/31/61 %. With the 13-frame GOP the type means satisfy
// (MeanI + 4·MeanP + 8·MeanB)/13 ≈ 38.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Frames:           2000,
		GOP:              "IBBPBBPBBPBBP",
		MeanI:            88,
		MeanP:            54,
		MeanB:            22,
		CVI:              0.15,
		CVP:              0.22,
		CVB:              0.28,
		MinFrame:         2,
		MaxFrame:         120,
		ScenePersistence: 0.985,
		SceneNoise:       0.055,
		Seed:             1,
	}
}

// NewsProfile is an alias for DefaultGenConfig: talking heads with regular
// scene cuts, calibrated to the paper's clip statistics.
func NewsProfile() GenConfig { return DefaultGenConfig() }

// SportsProfile models high-motion content: larger inter-coded frames
// (motion defeats prediction), higher per-frame variability, and rapid
// scene-level changes. The overall mean rate stays near the paper's
// 38 units/frame so results are comparable across profiles.
func SportsProfile() GenConfig {
	g := DefaultGenConfig()
	g.MeanI = 80
	g.MeanP = 56
	g.MeanB = 25
	g.CVI = 0.20
	g.CVP = 0.30
	g.CVB = 0.40
	g.ScenePersistence = 0.9
	g.SceneNoise = 0.15
	return g
}

// MovieProfile models cinematic content: very long scenes (high AR(1)
// persistence) with large slow swings between quiet dialogue and action,
// which makes the trace bursty at time scales of hundreds of frames —
// the hardest case for small smoothing buffers.
func MovieProfile() GenConfig {
	g := DefaultGenConfig()
	g.MeanI = 85
	g.MeanP = 52
	g.MeanB = 21
	g.ScenePersistence = 0.995
	g.SceneNoise = 0.035
	return g
}

// Profile is a named generator preset.
type Profile struct {
	Name string
	Cfg  GenConfig
}

// Profiles returns the built-in generator presets by name, in a stable
// order.
func Profiles() []Profile {
	return []Profile{
		{"news", NewsProfile()},
		{"sports", SportsProfile()},
		{"movie", MovieProfile()},
	}
}

// Validate checks the configuration.
func (g GenConfig) Validate() error {
	switch {
	case g.Frames <= 0:
		return fmt.Errorf("trace: non-positive frame count %d", g.Frames)
	case len(g.GOP) == 0:
		return fmt.Errorf("trace: empty GOP pattern")
	case g.MeanI <= 0 || g.MeanP <= 0 || g.MeanB <= 0:
		return fmt.Errorf("trace: non-positive type mean")
	case g.CVI < 0 || g.CVP < 0 || g.CVB < 0:
		return fmt.Errorf("trace: negative coefficient of variation")
	case g.MinFrame < 1 || g.MaxFrame < g.MinFrame:
		return fmt.Errorf("trace: invalid frame size clamp [%d, %d]", g.MinFrame, g.MaxFrame)
	}
	for _, r := range g.GOP {
		if !FrameType(r).Valid() {
			return fmt.Errorf("trace: invalid GOP symbol %q", r)
		}
	}
	return nil
}

// Generate produces a synthetic clip. It is deterministic in the config
// (including Seed).
func Generate(cfg GenConfig) (*Clip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	dists := map[FrameType]stats.Lognormal{}
	for _, tm := range []struct {
		ft   FrameType
		mean float64
		cv   float64
	}{{I, cfg.MeanI, cfg.CVI}, {P, cfg.MeanP, cfg.CVP}, {B, cfg.MeanB, cfg.CVB}} {
		ln, err := stats.LognormalFromMoments(tm.mean, tm.mean*tm.cv)
		if err != nil {
			return nil, err
		}
		dists[tm.ft] = ln
	}

	scene := stats.AR1{Phi: cfg.ScenePersistence, Target: 1, Noise: cfg.SceneNoise}
	c := &Clip{Frames: make([]Frame, cfg.Frames)}
	for i := 0; i < cfg.Frames; i++ {
		ft := FrameType(cfg.GOP[i%len(cfg.GOP)])
		mult := 1.0
		if cfg.ScenePersistence > 0 {
			mult = scene.Next(rng)
			if mult < 0.3 {
				mult = 0.3
			}
			if mult > 2.5 {
				mult = 2.5
			}
		}
		size := int(dists[ft].Sample(rng)*mult + 0.5)
		if size < cfg.MinFrame {
			size = cfg.MinFrame
		}
		if size > cfg.MaxFrame {
			size = cfg.MaxFrame
		}
		c.Frames[i] = Frame{Index: i, Type: ft, Size: size}
	}
	return c, nil
}

// Write emits the clip in the classic ASCII trace format: one
// "index type size" line per frame.
func (c *Clip) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range c.Frames {
		if _, err := fmt.Fprintf(bw, "%d %s %d\n", f.Index, f.Type, f.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the ASCII trace format produced by Write (and by the public
// MPEG trace archives): whitespace-separated "index type size" records,
// one per line; blank lines and lines starting with '#' are skipped.
// Frames are re-indexed consecutively in file order.
func Read(r io.Reader) (*Clip, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	c := &Clip{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		ft := FrameType(fields[1][0])
		if len(fields[1]) != 1 || !ft.Valid() {
			return nil, fmt.Errorf("trace: line %d: invalid frame type %q", lineNo, fields[1])
		}
		size, err := strconv.Atoi(fields[2])
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("trace: line %d: invalid size %q", lineNo, fields[2])
		}
		c.Frames = append(c.Frames, Frame{Index: len(c.Frames), Type: ft, Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}
