package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func mustGenerate(t *testing.T, cfg GenConfig) *Clip {
	t.Helper()
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateCalibration(t *testing.T) {
	// The default configuration must reproduce the statistics the paper
	// reports for its clips: mean ≈ 38, max ≤ 120, I/P/B ≈ 8/31/61 %.
	c := mustGenerate(t, DefaultGenConfig())
	if len(c.Frames) != 2000 {
		t.Fatalf("got %d frames", len(c.Frames))
	}
	mean := c.AverageRate()
	if mean < 33 || mean > 43 {
		t.Errorf("mean frame size = %.1f, want ≈ 38", mean)
	}
	if max := c.MaxFrameSize(); max > 120 || max < 90 {
		t.Errorf("max frame size = %d, want close to (and at most) 120", max)
	}
	counts := map[FrameType]int{}
	for _, f := range c.Frames {
		counts[f.Type]++
	}
	total := float64(len(c.Frames))
	for _, tc := range []struct {
		ft   FrameType
		want float64 // fraction
	}{{I, 1.0 / 13}, {P, 4.0 / 13}, {B, 8.0 / 13}} {
		got := float64(counts[tc.ft]) / total
		if math.Abs(got-tc.want) > 0.01 {
			t.Errorf("type %s frequency = %.3f, want %.3f", tc.ft, got, tc.want)
		}
	}
	// I frames must be markedly larger than B frames on average.
	ts := c.TypeStats()
	if ts[I].Mean <= 2*ts[B].Mean {
		t.Errorf("I mean %.1f not >> B mean %.1f", ts[I].Mean, ts[B].Mean)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	a := mustGenerate(t, cfg)
	b := mustGenerate(t, cfg)
	for i := range a.Frames {
		if a.Frames[i] != b.Frames[i] {
			t.Fatalf("frame %d differs between identical seeds", i)
		}
	}
	cfg.Seed = 2
	c := mustGenerate(t, cfg)
	same := true
	for i := range a.Frames {
		if a.Frames[i] != c.Frames[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical clips")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []func(*GenConfig){
		func(g *GenConfig) { g.Frames = 0 },
		func(g *GenConfig) { g.GOP = "" },
		func(g *GenConfig) { g.GOP = "IXP" },
		func(g *GenConfig) { g.MeanI = 0 },
		func(g *GenConfig) { g.CVB = -1 },
		func(g *GenConfig) { g.MinFrame = 0 },
		func(g *GenConfig) { g.MaxFrame = 1; g.MinFrame = 2 },
	}
	for i, mutate := range bad {
		cfg := DefaultGenConfig()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestFrameSizeClamps(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Frames = 5000
	c := mustGenerate(t, cfg)
	for _, f := range c.Frames {
		if f.Size < cfg.MinFrame || f.Size > cfg.MaxFrame {
			t.Fatalf("frame %d size %d outside [%d, %d]", f.Index, f.Size, cfg.MinFrame, cfg.MaxFrame)
		}
	}
}

func TestWholeFrameStream(t *testing.T) {
	c := &Clip{Frames: []Frame{
		{0, I, 10}, {1, B, 2}, {2, P, 5},
	}}
	st, err := WholeFrameStream(c, PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 3 {
		t.Fatalf("len = %d", st.Len())
	}
	if st.TotalBytes() != 17 {
		t.Errorf("bytes = %d, want 17", st.TotalBytes())
	}
	// I frame: weight 12*10; byte value 12.
	if got := st.Slice(0).ByteValue(); got != 12 {
		t.Errorf("I byte value = %v, want 12", got)
	}
	if got := st.Slice(1).ByteValue(); got != 1 {
		t.Errorf("B byte value = %v, want 1", got)
	}
	if got := st.Slice(2).Arrival; got != 2 {
		t.Errorf("third frame arrival = %d, want 2", got)
	}
}

func TestByteSliceStream(t *testing.T) {
	c := &Clip{Frames: []Frame{{0, I, 3}, {1, B, 2}}}
	st, err := ByteSliceStream(c, PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 5 {
		t.Fatalf("len = %d, want 5", st.Len())
	}
	if !st.UnitSliced() {
		t.Error("byte-slice stream not unit sliced")
	}
	if st.Slice(0).Weight != 12 || st.Slice(4).Weight != 1 {
		t.Errorf("weights wrong: %v, %v", st.Slice(0).Weight, st.Slice(4).Weight)
	}
}

func TestStreamsAgreeOnTotals(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Frames = 100
	c := mustGenerate(t, cfg)
	whole, err := WholeFrameStream(c, PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	bytes, err := ByteSliceStream(c, PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	if whole.TotalBytes() != bytes.TotalBytes() {
		t.Errorf("total bytes differ: %d vs %d", whole.TotalBytes(), bytes.TotalBytes())
	}
	if math.Abs(whole.TotalWeight()-bytes.TotalWeight()) > 1e-6 {
		t.Errorf("total weight differs: %v vs %v", whole.TotalWeight(), bytes.TotalWeight())
	}
}

func TestMissingWeightRejected(t *testing.T) {
	c := &Clip{Frames: []Frame{{0, I, 1}}}
	if _, err := WholeFrameStream(c, WeightMap{P: 1, B: 1}); err == nil {
		t.Error("missing I weight accepted")
	}
	if _, err := ByteSliceStream(c, WeightMap{}); err == nil {
		t.Error("empty weight map accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Frames = 200
	c := mustGenerate(t, cfg)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Frames) != len(c.Frames) {
		t.Fatalf("round trip lost frames: %d vs %d", len(got.Frames), len(c.Frames))
	}
	for i := range c.Frames {
		if got.Frames[i] != c.Frames[i] {
			t.Fatalf("frame %d: %+v != %+v", i, got.Frames[i], c.Frames[i])
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n0 I 10\n  \n1 B 2\n"
	c, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(c.Frames))
	}
	if c.Frames[1].Type != B || c.Frames[1].Size != 2 {
		t.Errorf("frame 1 = %+v", c.Frames[1])
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"0 I\n",      // too few fields
		"0 X 5\n",    // bad type
		"0 IP 5\n",   // multi-char type
		"0 I five\n", // bad size
		"0 I 0\n",    // non-positive size
		"0 I -2\n",   // negative size
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded", in)
		}
	}
}

func TestReadReindexes(t *testing.T) {
	// Indices in the file are ignored; frames are renumbered in order.
	c, err := Read(strings.NewReader("7 I 5\n3 B 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Frames[0].Index != 0 || c.Frames[1].Index != 1 {
		t.Errorf("indices = %d, %d; want 0, 1", c.Frames[0].Index, c.Frames[1].Index)
	}
}

func TestClipAggregatesEmpty(t *testing.T) {
	c := &Clip{}
	if c.TotalSize() != 0 || c.MaxFrameSize() != 0 || c.AverageRate() != 0 {
		t.Error("empty clip aggregates non-zero")
	}
}

func TestTypeStats(t *testing.T) {
	c := &Clip{Frames: []Frame{{0, I, 10}, {1, I, 20}, {2, B, 4}}}
	ts := c.TypeStats()
	if ts[I].N != 2 || ts[I].Mean != 15 {
		t.Errorf("I stats = %+v", ts[I])
	}
	if ts[B].N != 1 || ts[B].Mean != 4 {
		t.Errorf("B stats = %+v", ts[B])
	}
	if _, ok := ts[P]; ok {
		t.Error("P stats present for clip without P frames")
	}
}

func TestFrameTypeHelpers(t *testing.T) {
	if !I.Valid() || !P.Valid() || !B.Valid() || FrameType('Q').Valid() {
		t.Error("Valid() wrong")
	}
	if I.String() != "I" {
		t.Errorf("I.String() = %q", I.String())
	}
}

func TestSceneModulationIncreasesBurstiness(t *testing.T) {
	base := DefaultGenConfig()
	base.Frames = 4000
	flat := base
	flat.ScenePersistence = 0
	flat.SceneNoise = 0

	cb := mustGenerate(t, base)
	cf := mustGenerate(t, flat)

	// Compare coefficient of variation of I-frame sizes: scene modulation
	// should add variance.
	varOf := func(c *Clip) float64 {
		var xs []float64
		for _, f := range c.Frames {
			if f.Type == I {
				xs = append(xs, float64(f.Size))
			}
		}
		s := stats.Summarize(xs)
		return s.StdDev / s.Mean
	}
	if varOf(cb) <= varOf(cf) {
		t.Errorf("scene modulation did not increase I-frame CV: %.3f vs %.3f", varOf(cb), varOf(cf))
	}
}

func TestProfilesAreValidAndDistinct(t *testing.T) {
	profs := Profiles()
	if len(profs) != 3 {
		t.Fatalf("expected 3 profiles, got %d", len(profs))
	}
	means := map[string]float64{}
	for _, p := range profs {
		cfg := p.Cfg
		cfg.Frames = 2000
		c, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		means[p.Name] = c.AverageRate()
		// All profiles stay near the paper's calibration so results are
		// comparable.
		if m := c.AverageRate(); m < 30 || m > 46 {
			t.Errorf("%s: mean %v outside the comparable band", p.Name, m)
		}
		if c.MaxFrameSize() > 120 {
			t.Errorf("%s: max frame %d above cap", p.Name, c.MaxFrameSize())
		}
	}
	// Movie must be the most persistent (longest scenes): check via the
	// generator parameters rather than sampling noise.
	if MovieProfile().ScenePersistence <= NewsProfile().ScenePersistence {
		t.Error("movie profile not more persistent than news")
	}
	if SportsProfile().SceneNoise <= NewsProfile().SceneNoise {
		t.Error("sports profile not noisier than news")
	}
}
