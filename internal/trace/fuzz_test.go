package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the ASCII trace parser with arbitrary input: it must
// never panic, and anything it accepts must round-trip through Write.
func FuzzRead(f *testing.F) {
	f.Add("0 I 10\n1 B 2\n")
	f.Add("# comment\n\n0 P 5\n")
	f.Add("0 X 5\n")
	f.Add("0 I -1\n")
	f.Add("0 I 999999999999999999999\n")
	f.Add("garbage")
	f.Add("0 I 10 extra\n")
	f.Fuzz(func(t *testing.T, input string) {
		clip, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, fr := range clip.Frames {
			if fr.Size <= 0 {
				t.Fatalf("parser accepted non-positive size: %+v", fr)
			}
			if !fr.Type.Valid() {
				t.Fatalf("parser accepted invalid type: %+v", fr)
			}
		}
		var buf bytes.Buffer
		if err := clip.Write(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again.Frames) != len(clip.Frames) {
			t.Fatalf("round trip changed frame count: %d vs %d", len(again.Frames), len(clip.Frames))
		}
		for i := range clip.Frames {
			if again.Frames[i] != clip.Frames[i] {
				t.Fatalf("frame %d changed: %+v vs %+v", i, again.Frames[i], clip.Frames[i])
			}
		}
	})
}
