package trace

import (
	"testing"
)

// gop builds a clip from a type pattern string, all frames size 1.
func gop(pattern string) *Clip {
	c := &Clip{}
	for i, r := range pattern {
		c.Frames = append(c.Frames, Frame{Index: i, Type: FrameType(r), Size: 1})
	}
	return c
}

// deliveredExcept returns a predicate that loses exactly the given indices.
func deliveredExcept(lost ...int) func(int) bool {
	bad := make(map[int]bool, len(lost))
	for _, i := range lost {
		bad[i] = true
	}
	return func(i int) bool { return !bad[i] }
}

func TestDecodabilityAllDelivered(t *testing.T) {
	c := gop("IBBPBBPBBPBBP")
	stats := Decodability(c, nil)
	if stats.Decodable != len(c.Frames) || stats.Poisoned != 0 {
		t.Errorf("full delivery: %+v", stats)
	}
	if stats.DecodableFraction() != 1 {
		t.Errorf("fraction = %v", stats.DecodableFraction())
	}
}

func TestDecodabilityLostBFrameIsLocal(t *testing.T) {
	c := gop("IBBPBBP")
	stats := Decodability(c, deliveredExcept(1)) // lose one B frame
	if stats.Decodable != 6 {
		t.Errorf("decodable = %d, want 6", stats.Decodable)
	}
	if stats.Poisoned != 0 {
		t.Errorf("a lost B frame poisoned others: %+v", stats)
	}
}

func TestDecodabilityLostPFramePoisons(t *testing.T) {
	// IBBPBBP: lose frame 3 (the first P). Then:
	//  - frames 4,5 (B) reference P3 (prev anchor for them is P3? order:
	//    I0 B1 B2 P3 B4 B5 P6: B4/B5 sit between P3 and P6) -> poisoned;
	//  - P6 references P3 -> poisoned;
	//  - B1/B2 reference I0 and P3 -> poisoned too.
	c := gop("IBBPBBP")
	stats := Decodability(c, deliveredExcept(3))
	if stats.Decodable != 1 { // only I0 survives
		t.Errorf("decodable = %d, want 1 (%+v)", stats.Decodable, stats)
	}
	if stats.Poisoned != 5 {
		t.Errorf("poisoned = %d, want 5", stats.Poisoned)
	}
}

func TestDecodabilityLostIFramePoisonsGOPUntilNextI(t *testing.T) {
	// Two GOPs: losing the first I poisons everything up to (not
	// including) the second I.
	c := gop("IBBP" + "IBBP")
	stats := Decodability(c, deliveredExcept(0))
	// Frames 1,2,3 poisoned; 4..7 fine.
	if stats.Decodable != 4 {
		t.Errorf("decodable = %d, want 4 (%+v)", stats.Decodable, stats)
	}
	if stats.PerType[I] != 1 || stats.PerType[P] != 1 || stats.PerType[B] != 2 {
		t.Errorf("per-type = %v", stats.PerType)
	}
}

func TestDecodabilityBAcrossGOPBoundary(t *testing.T) {
	// A trailing B frame whose following anchor is the next GOP's I:
	// losing that I kills the B.
	c := gop("IPB" + "IPB")
	stats := Decodability(c, deliveredExcept(3))
	// Lost I3. B2 references P1 (prev) and I3 (next) -> poisoned.
	// P4 references I3 -> poisoned; B5 references P4, and next anchor —
	// there is none after B5; with no following anchor delivered, B5 is
	// poisoned as well.
	if stats.Decodable != 2 { // I0, P1
		t.Errorf("decodable = %d, want 2 (%+v)", stats.Decodable, stats)
	}
}

func TestDecodabilityEmptyClip(t *testing.T) {
	stats := Decodability(&Clip{}, nil)
	if stats.Total != 0 || stats.DecodableFraction() != 0 {
		t.Errorf("empty clip stats = %+v", stats)
	}
}

func TestDecodabilityNothingDelivered(t *testing.T) {
	c := gop("IBBP")
	stats := Decodability(c, func(int) bool { return false })
	if stats.Decodable != 0 || stats.Delivered != 0 || stats.Poisoned != 0 {
		t.Errorf("nothing delivered: %+v", stats)
	}
}

func TestGlitchesNone(t *testing.T) {
	c := gop("IBBPBBP")
	p := Glitches(c, nil)
	if p.Glitches != 0 || p.Longest != 0 || p.BadFrames != 0 || p.Mean != 0 {
		t.Errorf("full delivery glitches = %+v", p)
	}
}

func TestGlitchesSingleRun(t *testing.T) {
	// Losing the first P of IBBPBBP poisons frames 1..6: one long glitch.
	c := gop("IBBPBBP")
	p := Glitches(c, deliveredExcept(3))
	if p.Glitches != 1 {
		t.Errorf("glitches = %d, want 1", p.Glitches)
	}
	if p.Longest != 6 || p.BadFrames != 6 {
		t.Errorf("longest/bad = %d/%d, want 6/6", p.Longest, p.BadFrames)
	}
	if p.Mean != 6 {
		t.Errorf("mean = %v", p.Mean)
	}
}

func TestGlitchesSeparateRuns(t *testing.T) {
	// Two isolated B losses in different GOPs: two length-1 glitches.
	c := gop("IBBP" + "IBBP")
	p := Glitches(c, deliveredExcept(1, 5))
	if p.Glitches != 2 || p.Longest != 1 || p.BadFrames != 2 {
		t.Errorf("glitches = %+v", p)
	}
	if p.PerKiloframe != 250 { // 2 per 8 frames
		t.Errorf("per-kiloframe = %v", p.PerKiloframe)
	}
}

func TestGlitchesTrailingRun(t *testing.T) {
	// A glitch running to the end of the clip is still counted.
	c := gop("IBBP")
	p := Glitches(c, deliveredExcept(3))
	if p.Glitches == 0 {
		t.Error("trailing glitch not counted")
	}
}

func TestGlitchesEmpty(t *testing.T) {
	if p := Glitches(&Clip{}, nil); p.Glitches != 0 || p.PerKiloframe != 0 {
		t.Errorf("empty clip glitches = %+v", p)
	}
}

func TestDecodableFramesConsistentWithStats(t *testing.T) {
	c := gop("IBBPBBPBBPBBP" + "IBBPBBPBBPBBP")
	del := deliveredExcept(0, 7, 20)
	dec := DecodableFrames(c, del)
	stats := Decodability(c, del)
	n := 0
	for _, ok := range dec {
		if ok {
			n++
		}
	}
	if n != stats.Decodable {
		t.Errorf("DecodableFrames count %d != stats.Decodable %d", n, stats.Decodable)
	}
}

func TestDependencyWeights(t *testing.T) {
	c := &Clip{Frames: []Frame{
		{0, I, 10}, {1, B, 2}, {2, B, 2}, {3, P, 5}, {4, B, 2}, {5, P, 5},
		{6, I, 10}, {7, B, 2},
	}}
	w := DependencyWeights(c)
	if len(w) != len(c.Frames) {
		t.Fatalf("got %d weights", len(w))
	}
	// B frames are worth exactly 1 per byte.
	for _, i := range []int{1, 2, 4, 7} {
		if w[i] != 1 {
			t.Errorf("B frame %d weight %v, want 1", i, w[i])
		}
	}
	// Losing I0 kills frames 0..5 (26 bytes) over its own 10 bytes.
	if got := w[0]; got != 2.6 {
		t.Errorf("I0 weight = %v, want 2.6", got)
	}
	// The first P (frame 3) kills 3,4,5 plus B1,B2 (which need P3):
	// 5+2+5+2+2 = 16 over 5 bytes.
	if got := w[3]; got != 3.2 {
		t.Errorf("P3 weight = %v, want 3.2", got)
	}
	// Anchors with live dependents outrank B frames; the last I frame's
	// only dependent (B7) is baseline-undecodable, so it scores exactly 1.
	for _, i := range []int{0, 3, 5} {
		if w[i] <= 1 {
			t.Errorf("anchor %d weight %v not above 1", i, w[i])
		}
	}
	if w[6] != 1 {
		t.Errorf("trailing I weight = %v, want 1 (no live dependents)", w[6])
	}
}

func TestDependencyWeightsEmpty(t *testing.T) {
	if w := DependencyWeights(&Clip{}); len(w) != 0 {
		t.Errorf("empty clip weights = %v", w)
	}
}

func TestWeightedStream(t *testing.T) {
	c := &Clip{Frames: []Frame{{0, I, 4}, {1, B, 2}}}
	st, err := WeightedStream(c, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Slice(0).Weight != 12 || st.Slice(1).Weight != 2 {
		t.Errorf("weights = %v, %v", st.Slice(0).Weight, st.Slice(1).Weight)
	}
	if _, err := WeightedStream(c, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}
