package trace_test

import (
	"fmt"

	"repro/internal/trace"
)

// ExampleGenerate builds a calibrated synthetic clip and inspects the
// statistics the paper reports for its CNN material.
func ExampleGenerate() {
	cfg := trace.DefaultGenConfig()
	cfg.Frames = 1300 // 100 GOPs
	clip, _ := trace.Generate(cfg)

	counts := map[trace.FrameType]int{}
	for _, f := range clip.Frames {
		counts[f.Type]++
	}
	fmt.Printf("frames: %d (I:%d P:%d B:%d)\n", len(clip.Frames), counts[trace.I], counts[trace.P], counts[trace.B])
	fmt.Printf("mean within paper range [33, 43]: %v\n", clip.AverageRate() >= 33 && clip.AverageRate() <= 43)
	fmt.Printf("max frame capped at 120: %v\n", clip.MaxFrameSize() <= 120)
	// Output:
	// frames: 1300 (I:100 P:400 B:800)
	// mean within paper range [33, 43]: true
	// max frame capped at 120: true
}

// ExampleDecodability shows how a single lost anchor frame poisons its
// dependents: the delivered-but-undecodable frames are the hidden cost of
// value-blind dropping.
func ExampleDecodability() {
	clip := &trace.Clip{Frames: []trace.Frame{
		{Index: 0, Type: trace.I, Size: 10},
		{Index: 1, Type: trace.B, Size: 2},
		{Index: 2, Type: trace.B, Size: 2},
		{Index: 3, Type: trace.P, Size: 5},
		{Index: 4, Type: trace.B, Size: 2},
		{Index: 5, Type: trace.P, Size: 5},
	}}
	// Deliver everything except the first P frame.
	stats := trace.Decodability(clip, func(i int) bool { return i != 3 })
	fmt.Printf("delivered %d, decodable %d, poisoned %d\n", stats.Delivered, stats.Decodable, stats.Poisoned)
	// Output:
	// delivered 5, decodable 1, poisoned 4
}
