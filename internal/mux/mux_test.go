package mux

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/drop"
	"repro/internal/stream"
	"repro/internal/trace"
)

func clipStream(t *testing.T, seed int64, frames int) *stream.Stream {
	t.Helper()
	cfg := trace.DefaultGenConfig()
	cfg.Frames = frames
	cfg.Seed = seed
	clip, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.WholeFrameStream(clip, trace.PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestMergeAlignsOrigins(t *testing.T) {
	a := stream.NewBuilder().Add(0, 1, 1).Add(2, 2, 2).MustBuild()
	b := stream.NewBuilder().Add(1, 3, 3).Add(2, 4, 4).MustBuild()
	combined, origin, err := Merge([]*stream.Stream{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if combined.Len() != 4 {
		t.Fatalf("merged %d slices", combined.Len())
	}
	// Every combined slice's origin stream must contain a slice with the
	// same (arrival, size, weight).
	counts := map[int]int{}
	for id, o := range origin {
		sl := combined.Slice(id)
		counts[o]++
		src := []*stream.Stream{a, b}[o]
		found := false
		for _, cand := range src.Slices() {
			if cand.Arrival == sl.Arrival && cand.Size == sl.Size && cand.Weight == sl.Weight {
				found = true
			}
		}
		if !found {
			t.Errorf("slice %d (origin %d) not found in source stream", id, o)
		}
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("origin counts = %v", counts)
	}
	// Totals preserved.
	if combined.TotalBytes() != a.TotalBytes()+b.TotalBytes() {
		t.Error("merge lost bytes")
	}
}

func TestMergePreservesTotalsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var streams []*stream.Stream
		var bytes int
		var weight float64
		for k := 0; k < rng.Intn(4)+1; k++ {
			b := stream.NewBuilder()
			for i := 0; i < rng.Intn(10)+1; i++ {
				b.Add(rng.Intn(8), rng.Intn(3)+1, float64(rng.Intn(9)+1))
			}
			st := b.MustBuild()
			streams = append(streams, st)
			bytes += st.TotalBytes()
			weight += st.TotalWeight()
		}
		combined, origin, err := Merge(streams)
		if err != nil {
			return false
		}
		return combined.TotalBytes() == bytes &&
			math.Abs(combined.TotalWeight()-weight) < 1e-9 &&
			len(origin) == combined.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSharedBeatsPartitionedOnIndependentBursts(t *testing.T) {
	// Four independent clips; total rate set at 95% of the combined
	// average, total buffer 8 max frames. Shared smoothing should lose
	// (weighted) no more than the partitioned system — usually far less.
	const k = 4
	var streams []*stream.Stream
	totalBytes := 0
	horizon := 0
	for i := 0; i < k; i++ {
		st := clipStream(t, int64(i+1), 600)
		streams = append(streams, st)
		totalBytes += st.TotalBytes()
		if st.Horizon() > horizon {
			horizon = st.Horizon()
		}
	}
	totalRate := int(0.95 * float64(totalBytes) / float64(horizon+1))
	totalBuffer := 8 * 120 * k

	shared, err := Shared(streams, totalRate, totalBuffer, drop.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	part, err := Partitioned(streams, totalRate, totalBuffer, drop.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	if shared.WeightedLoss() > part.WeightedLoss()+1e-9 {
		t.Errorf("shared loss %.4f exceeds partitioned %.4f — no multiplexing gain?",
			shared.WeightedLoss(), part.WeightedLoss())
	}
	// Both accounted for all offered weight.
	if math.Abs(shared.OfferedWeight()-part.OfferedWeight()) > 1e-6 {
		t.Errorf("offered weight differs: %v vs %v", shared.OfferedWeight(), part.OfferedWeight())
	}
	if len(shared.PerStream) != k || len(part.PerStream) != k {
		t.Error("per-stream metrics missing")
	}
}

func TestSingleStreamModesCoincide(t *testing.T) {
	// With K=1 the two modes are the same system.
	st := clipStream(t, 3, 300)
	R := int(0.9 * float64(st.TotalBytes()) / float64(st.Horizon()+1))
	B := 6 * 120
	shared, err := Shared([]*stream.Stream{st}, R, B, drop.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	part, err := Partitioned([]*stream.Stream{st}, R, B, drop.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(shared.Benefit()-part.Benefit()) > 1e-9 {
		t.Errorf("K=1: shared %v != partitioned %v", shared.Benefit(), part.Benefit())
	}
}

func TestEmptyInput(t *testing.T) {
	if _, err := Shared(nil, 1, 1, drop.Greedy); err == nil {
		t.Error("Shared accepted zero streams")
	}
	if _, err := Partitioned(nil, 1, 1, drop.Greedy); err == nil {
		t.Error("Partitioned accepted zero streams")
	}
}

func TestMetricsArithmetic(t *testing.T) {
	m := StreamMetrics{OfferedWeight: 10, PlayedWeight: 7.5}
	if got := m.WeightedLoss(); got != 0.25 {
		t.Errorf("WeightedLoss = %v", got)
	}
	if (StreamMetrics{}).WeightedLoss() != 0 {
		t.Error("zero metrics loss != 0")
	}
	r := Result{PerStream: []StreamMetrics{
		{OfferedWeight: 10, PlayedWeight: 5},
		{OfferedWeight: 10, PlayedWeight: 10},
	}}
	if r.Benefit() != 15 || r.OfferedWeight() != 20 || r.WeightedLoss() != 0.25 {
		t.Errorf("aggregate metrics wrong: %v %v %v", r.Benefit(), r.OfferedWeight(), r.WeightedLoss())
	}
	if (&Result{}).WeightedLoss() != 0 {
		t.Error("empty result loss != 0")
	}
}

func TestFairnessIndex(t *testing.T) {
	// Equal treatment: index 1.
	r := &Result{PerStream: []StreamMetrics{
		{OfferedWeight: 10, PlayedWeight: 8},
		{OfferedWeight: 20, PlayedWeight: 16},
	}}
	if got := r.FairnessIndex(); math.Abs(got-1) > 1e-9 {
		t.Errorf("equal fractions index = %v, want 1", got)
	}
	// One starved stream: index 1/2 for n=2.
	r = &Result{PerStream: []StreamMetrics{
		{OfferedWeight: 10, PlayedWeight: 10},
		{OfferedWeight: 10, PlayedWeight: 0},
	}}
	if got := r.FairnessIndex(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("starved stream index = %v, want 0.5", got)
	}
	// Degenerate cases.
	if (&Result{}).FairnessIndex() != 1 {
		t.Error("empty result index != 1")
	}
	r = &Result{PerStream: []StreamMetrics{{OfferedWeight: 0}}}
	if r.FairnessIndex() != 1 {
		t.Error("zero-offered streams index != 1")
	}
}

func TestSharedIsFairOnHomogeneousStreams(t *testing.T) {
	var streams []*stream.Stream
	totalBytes, horizon := 0, 0
	for i := 0; i < 4; i++ {
		st := clipStream(t, int64(50+i), 500)
		streams = append(streams, st)
		totalBytes += st.TotalBytes()
		if st.Horizon() > horizon {
			horizon = st.Horizon()
		}
	}
	rate := int(0.9 * float64(totalBytes) / float64(horizon+1))
	res, err := Shared(streams, rate, 4*4*120, drop.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	if idx := res.FairnessIndex(); idx < 0.99 {
		t.Errorf("shared smoothing unfair on homogeneous streams: Jain index %v", idx)
	}
}
