// Package mux studies statistical multiplexing of several real-time
// streams over one constant-rate link — the alternative to smoothing that
// the paper's introduction lists ("statistical multiplexing, relying on an
// assumed statistical independence of the bit rates of different streams").
// Combining it WITH smoothing is natural: K streams share one server
// buffer and one link, and because their bursts are independent, the
// shared system loses far less than K privately-partitioned systems with
// the same total resources.
//
// Two provisioning modes with identical total resources (rate R, buffer B,
// common smoothing delay D = ceil(B/R)):
//
//   - Partitioned: stream i gets a private buffer B/K drained at R/K;
//   - Shared: all slices enter one buffer B drained at R, FIFO by arrival;
//     each stream is still played out in real time at arrival + P + D.
//
// Mux reports per-stream and aggregate benefit, so fairness of the shared
// mode can be inspected alongside the multiplexing gain.
package mux

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/stream"
)

// StreamMetrics is the per-stream outcome of a multiplexed run.
type StreamMetrics struct {
	// Offered are the stream's total bytes and weight.
	OfferedBytes  int
	OfferedWeight float64
	// Played are the delivered bytes and weight.
	PlayedBytes  int
	PlayedWeight float64
}

// WeightedLoss returns the stream's weighted loss fraction.
func (m StreamMetrics) WeightedLoss() float64 {
	if m.OfferedWeight == 0 {
		return 0
	}
	return (m.OfferedWeight - m.PlayedWeight) / m.OfferedWeight
}

// Result aggregates a multiplexed run.
type Result struct {
	// PerStream holds one entry per input stream, in input order.
	PerStream []StreamMetrics
	// Mode is "shared" or "partitioned".
	Mode string
}

// Benefit returns the total delivered weight.
func (r *Result) Benefit() float64 {
	var w float64
	for _, m := range r.PerStream {
		w += m.PlayedWeight
	}
	return w
}

// OfferedWeight returns the total offered weight.
func (r *Result) OfferedWeight() float64 {
	var w float64
	for _, m := range r.PerStream {
		w += m.OfferedWeight
	}
	return w
}

// WeightedLoss returns the aggregate weighted loss fraction.
func (r *Result) WeightedLoss() float64 {
	total := r.OfferedWeight()
	if total == 0 {
		return 0
	}
	return (total - r.Benefit()) / total
}

// FairnessIndex returns Jain's fairness index of the per-stream delivered
// weight fractions: (Σx)² / (n·Σx²), where x_i is stream i's delivered
// fraction of its offered weight. 1 means perfectly equal treatment; 1/n
// means one stream got everything. Streams with no offered weight are
// skipped; an empty result returns 1.
func (r *Result) FairnessIndex() float64 {
	var sum, sumSq float64
	n := 0
	for _, m := range r.PerStream {
		if m.OfferedWeight == 0 {
			continue
		}
		x := m.PlayedWeight / m.OfferedWeight
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// Merge combines several streams into one, interleaving arrivals, and
// returns the combined stream together with origin[id] = index of the
// input stream each combined slice came from. Relative order of slices
// within one input stream is preserved.
func Merge(streams []*stream.Stream) (*stream.Stream, []int, error) {
	type rec struct {
		sl     stream.Slice
		origin int
		seq    int
	}
	var recs []rec
	for si, st := range streams {
		for _, sl := range st.Slices() {
			recs = append(recs, rec{sl: sl, origin: si, seq: len(recs)})
		}
	}
	// The Builder sorts stably by arrival, so pre-sorting the records the
	// same way keeps origin[] aligned with the assigned IDs.
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].sl.Arrival < recs[j].sl.Arrival })
	b := stream.NewBuilder()
	origin := make([]int, len(recs))
	for i, r := range recs {
		b.Add(r.sl.Arrival, r.sl.Size, r.sl.Weight)
		origin[i] = r.origin
	}
	combined, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return combined, origin, nil
}

// Shared runs all streams through one server buffer of the given total
// size drained at the total rate, with D = ceil(B/R), and returns the
// per-stream outcome.
func Shared(streams []*stream.Stream, totalRate, totalBuffer int, policy drop.Factory) (*Result, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("mux: no streams")
	}
	combined, origin, err := Merge(streams)
	if err != nil {
		return nil, err
	}
	s, err := core.Simulate(combined, core.Config{
		ServerBuffer: totalBuffer,
		Rate:         totalRate,
		Policy:       policy,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{PerStream: make([]StreamMetrics, len(streams)), Mode: "shared"}
	for id, o := range s.Outcomes {
		sl := combined.Slice(id)
		m := &res.PerStream[origin[id]]
		m.OfferedBytes += sl.Size
		m.OfferedWeight += sl.Weight
		if o.Played() {
			m.PlayedBytes += sl.Size
			m.PlayedWeight += sl.Weight
		}
	}
	return res, nil
}

// Partitioned gives stream i a private buffer totalBuffer/K drained at
// totalRate/K (both floored, minimum 1) and runs the K systems
// independently with the same smoothing delay as the shared system would
// use, for a fair latency comparison.
func Partitioned(streams []*stream.Stream, totalRate, totalBuffer int, policy drop.Factory) (*Result, error) {
	k := len(streams)
	if k == 0 {
		return nil, fmt.Errorf("mux: no streams")
	}
	rate := totalRate / k
	if rate < 1 {
		rate = 1
	}
	buffer := totalBuffer / k
	if buffer < 1 {
		buffer = 1
	}
	delay := core.DelayFor(totalBuffer, totalRate)
	res := &Result{PerStream: make([]StreamMetrics, k), Mode: "partitioned"}
	for i, st := range streams {
		s, err := core.Simulate(st, core.Config{
			ServerBuffer: buffer,
			Rate:         rate,
			Delay:        delay,
			ClientBuffer: rate * delay,
			Policy:       policy,
		})
		if err != nil {
			return nil, err
		}
		m := &res.PerStream[i]
		m.OfferedBytes = st.TotalBytes()
		m.OfferedWeight = st.TotalWeight()
		m.PlayedBytes = s.Throughput()
		m.PlayedWeight = s.Benefit()
	}
	return res, nil
}
