package mux_test

import (
	"fmt"

	"repro/internal/drop"
	"repro/internal/mux"
	"repro/internal/stream"
)

// Example multiplexes two complementary bursty streams: each alternates
// busy and idle steps, out of phase, so one shared link carries both
// losslessly while private partitions overflow.
func ExampleShared() {
	mk := func(phase int) *stream.Stream {
		b := stream.NewBuilder()
		for t := 0; t < 60; t++ {
			if t%3 == phase {
				for i := 0; i < 6; i++ {
					b.Add(t, 1, 1) // a burst of 6 unit slices every 3rd step
				}
			}
		}
		return b.MustBuild()
	}
	streams := []*stream.Stream{mk(0), mk(1)}

	// Total rate 4 = exactly the combined average; total buffer 4.
	shared, _ := mux.Shared(streams, 4, 4, drop.Greedy)
	part, _ := mux.Partitioned(streams, 4, 4, drop.Greedy)
	fmt.Printf("shared loss:      %.0f%%\n", 100*shared.WeightedLoss())
	fmt.Printf("partitioned loss: %.0f%% (rate 2, buffer 2 against 6-slice bursts)\n",
		100*part.WeightedLoss())
	fmt.Printf("shared fairness (Jain): %.2f\n", shared.FairnessIndex())
	// Output:
	// shared loss:      0%
	// partitioned loss: 33% (rate 2, buffer 2 against 6-slice bursts)
	// shared fairness (Jain): 1.00
}
