package stream_test

import (
	"fmt"

	"repro/internal/stream"
)

// Example builds a small weighted stream and inspects its aggregates.
func Example() {
	st := stream.NewBuilder().
		Add(0, 120, 1440). // a 120-byte I frame worth 12/byte
		Add(1, 23, 23).    // a 23-byte B frame worth 1/byte
		Add(2, 55, 440).   // a 55-byte P frame worth 8/byte
		MustBuild()

	fmt.Printf("slices %d, bytes %d, weight %.0f\n", st.Len(), st.TotalBytes(), st.TotalWeight())
	fmt.Printf("Lmax %d, horizon %d, avg rate %.1f\n", st.MaxSliceSize(), st.Horizon(), st.AverageRate())
	fmt.Printf("frame at t=1: %d slice(s), byte value %.0f\n",
		len(st.ArrivalsAt(1)), st.ArrivalsAt(1)[0].ByteValue())
	// Output:
	// slices 3, bytes 198, weight 1903
	// Lmax 120, horizon 2, avg rate 66.0
	// frame at t=1: 1 slice(s), byte value 1
}

// ExampleStream_Explode shows the reduction from atomic slices to unit
// slices used by Lemma 3.7 and the byte-slice experiments.
func ExampleStream_Explode() {
	st := stream.NewBuilder().Add(0, 4, 8).MustBuild()
	ex := st.Explode()
	fmt.Printf("%d unit slices, each weight %.0f, total weight %.0f\n",
		ex.Len(), ex.Slice(0).Weight, ex.TotalWeight())
	// Output:
	// 4 unit slices, each weight 2, total weight 8
}
