package stream

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBuilderAssignsIDsInArrivalOrder(t *testing.T) {
	st := NewBuilder().
		Add(5, 2, 1).
		Add(0, 3, 2).
		Add(5, 1, 3).
		Add(2, 4, 4).
		MustBuild()
	arrivals := make([]int, st.Len())
	for i, s := range st.Slices() {
		if s.ID != i {
			t.Errorf("slice %d has ID %d", i, s.ID)
		}
		arrivals[i] = s.Arrival
	}
	want := []int{0, 2, 5, 5}
	if !reflect.DeepEqual(arrivals, want) {
		t.Errorf("arrivals = %v, want %v", arrivals, want)
	}
}

func TestBuilderStableWithinStep(t *testing.T) {
	// Two slices at the same arrival keep insertion order.
	st := NewBuilder().
		Add(1, 10, 1). // inserted first
		Add(1, 20, 2).
		MustBuild()
	if st.Slice(0).Size != 10 || st.Slice(1).Size != 20 {
		t.Errorf("insertion order not preserved: sizes %d, %d", st.Slice(0).Size, st.Slice(1).Size)
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name    string
		arrival int
		size    int
		weight  float64
	}{
		{"negative arrival", -1, 1, 1},
		{"zero size", 0, 0, 1},
		{"negative size", 0, -3, 1},
		{"negative weight", 0, 1, -1},
		{"NaN weight", 0, 1, math.NaN()},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewBuilder().Add(tc.arrival, tc.size, tc.weight).Build(); err == nil {
				t.Errorf("Build() succeeded for %s", tc.name)
			}
		})
	}
}

func TestBuilderErrorDoesNotPoisonReuse(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Add(0, -1, 1).Build(); err == nil {
		t.Fatal("expected error")
	}
	st, err := b.Add(0, 1, 1).Build()
	if err != nil {
		t.Fatalf("builder not reusable after error: %v", err)
	}
	if st.Len() != 1 {
		t.Errorf("got %d slices, want 1", st.Len())
	}
}

func TestAggregates(t *testing.T) {
	st := NewBuilder().
		Add(0, 3, 6).
		Add(0, 2, 2).
		Add(4, 5, 10).
		MustBuild()
	if got := st.TotalBytes(); got != 10 {
		t.Errorf("TotalBytes = %d, want 10", got)
	}
	if got := st.TotalWeight(); got != 18 {
		t.Errorf("TotalWeight = %v, want 18", got)
	}
	if got := st.MaxSliceSize(); got != 5 {
		t.Errorf("MaxSliceSize = %d, want 5", got)
	}
	if got := st.Horizon(); got != 4 {
		t.Errorf("Horizon = %d, want 4", got)
	}
	if got := st.AverageRate(); got != 2 {
		t.Errorf("AverageRate = %v, want 2 (10 bytes over 5 steps)", got)
	}
	if got := st.PeakFrameBytes(); got != 5 {
		t.Errorf("PeakFrameBytes = %d, want 5", got)
	}
}

func TestEmptyStream(t *testing.T) {
	st := NewBuilder().MustBuild()
	if st.Len() != 0 || st.TotalBytes() != 0 || st.Horizon() != -1 {
		t.Errorf("empty stream aggregates wrong: len=%d bytes=%d horizon=%d",
			st.Len(), st.TotalBytes(), st.Horizon())
	}
	if st.AverageRate() != 0 {
		t.Errorf("AverageRate of empty stream = %v", st.AverageRate())
	}
	if st.CumulativeArrivals() != nil {
		t.Error("CumulativeArrivals of empty stream should be nil")
	}
	if got := st.ArrivalsAt(0); got != nil {
		t.Errorf("ArrivalsAt(0) = %v, want nil", got)
	}
}

func TestArrivalsAt(t *testing.T) {
	st := NewBuilder().
		Add(2, 1, 1).
		Add(2, 2, 1).
		Add(7, 3, 1).
		MustBuild()
	if got := len(st.ArrivalsAt(2)); got != 2 {
		t.Errorf("ArrivalsAt(2) has %d slices, want 2", got)
	}
	for _, step := range []int{0, 1, 3, 6, 8, -1, 100} {
		if got := st.ArrivalsAt(step); len(got) != 0 {
			t.Errorf("ArrivalsAt(%d) = %v, want empty", step, got)
		}
	}
	if got := len(st.ArrivalsAt(7)); got != 1 {
		t.Errorf("ArrivalsAt(7) has %d slices, want 1", got)
	}
}

func TestCumulativeArrivals(t *testing.T) {
	st := NewBuilder().
		Add(1, 4, 1).
		Add(3, 2, 1).
		Add(3, 1, 1).
		MustBuild()
	got := st.CumulativeArrivals()
	want := []int64{0, 4, 4, 7}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CumulativeArrivals = %v, want %v", got, want)
	}
}

func TestExplodePreservesAggregates(t *testing.T) {
	st := NewBuilder().
		Add(0, 3, 6).
		Add(2, 5, 5).
		MustBuild()
	ex := st.Explode()
	if ex.Len() != st.TotalBytes() {
		t.Errorf("exploded stream has %d slices, want %d", ex.Len(), st.TotalBytes())
	}
	if !ex.UnitSliced() {
		t.Error("exploded stream is not unit-sliced")
	}
	if ex.TotalBytes() != st.TotalBytes() {
		t.Errorf("TotalBytes changed: %d -> %d", st.TotalBytes(), ex.TotalBytes())
	}
	if math.Abs(ex.TotalWeight()-st.TotalWeight()) > 1e-9 {
		t.Errorf("TotalWeight changed: %v -> %v", st.TotalWeight(), ex.TotalWeight())
	}
	if ex.Horizon() != st.Horizon() {
		t.Errorf("Horizon changed: %d -> %d", st.Horizon(), ex.Horizon())
	}
	// First slice's bytes carry byte value 2 each.
	if got := ex.Slice(0).Weight; got != 2 {
		t.Errorf("first exploded byte weight = %v, want 2", got)
	}
}

func TestExplodeQuick(t *testing.T) {
	// Property: for random streams, Explode preserves total bytes, total
	// weight (within fp tolerance) and per-step arrival byte counts.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		n := rng.Intn(20) + 1
		for i := 0; i < n; i++ {
			b.Add(rng.Intn(10), rng.Intn(6)+1, float64(rng.Intn(100)+1))
		}
		st := b.MustBuild()
		ex := st.Explode()
		if ex.TotalBytes() != st.TotalBytes() {
			return false
		}
		if math.Abs(ex.TotalWeight()-st.TotalWeight()) > 1e-6 {
			return false
		}
		for t := 0; t <= st.Horizon(); t++ {
			a, b := 0, 0
			for _, s := range st.ArrivalsAt(t) {
				a += s.Size
			}
			for _, s := range ex.ArrivalsAt(t) {
				b += s.Size
			}
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRestrict(t *testing.T) {
	st := NewBuilder().
		Add(0, 1, 1).
		Add(1, 2, 2).
		Add(2, 3, 3).
		MustBuild()
	sub := st.Restrict(map[int]bool{0: true, 2: true})
	if sub.Len() != 2 {
		t.Fatalf("restricted stream has %d slices, want 2", sub.Len())
	}
	if sub.Slice(0).Size != 1 || sub.Slice(1).Size != 3 {
		t.Errorf("wrong slices kept: sizes %d, %d", sub.Slice(0).Size, sub.Slice(1).Size)
	}
	if sub.Slice(1).ID != 1 {
		t.Errorf("IDs not re-indexed: got %d", sub.Slice(1).ID)
	}
}

func TestTruncate(t *testing.T) {
	st := NewBuilder().
		Add(0, 1, 1).
		Add(5, 1, 1).
		Add(9, 1, 1).
		MustBuild()
	cut := st.Truncate(5)
	if cut.Len() != 2 || cut.Horizon() != 5 {
		t.Errorf("Truncate(5): len=%d horizon=%d, want 2, 5", cut.Len(), cut.Horizon())
	}
	if all := st.Truncate(100); all.Len() != 3 {
		t.Errorf("Truncate(100) lost slices: %d", all.Len())
	}
	if none := st.Truncate(-1); none.Len() != 0 {
		t.Errorf("Truncate(-1) kept slices: %d", none.Len())
	}
}

func TestByteValue(t *testing.T) {
	s := Slice{Size: 4, Weight: 10}
	if got := s.ByteValue(); got != 2.5 {
		t.Errorf("ByteValue = %v, want 2.5", got)
	}
}

func TestFromSizes(t *testing.T) {
	st, err := FromSizes([]int{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 3 || st.TotalBytes() != 6 || st.TotalWeight() != 6 {
		t.Errorf("FromSizes wrong: len=%d bytes=%d weight=%v", st.Len(), st.TotalBytes(), st.TotalWeight())
	}
	if st.Slice(1).Arrival != 1 {
		t.Errorf("second frame arrival = %d, want 1", st.Slice(1).Arrival)
	}
}

func TestAddFrame(t *testing.T) {
	st := NewBuilder().AddFrame(3, 2, 5, 1).MustBuild()
	if st.Len() != 3 {
		t.Fatalf("AddFrame built %d slices, want 3", st.Len())
	}
	for _, s := range st.Slices() {
		if s.Arrival != 3 {
			t.Errorf("slice %d arrival = %d, want 3", s.ID, s.Arrival)
		}
		if s.Weight != float64(s.Size) {
			t.Errorf("slice %d weight = %v, want %d", s.ID, s.Weight, s.Size)
		}
	}
}

func TestUnitSliced(t *testing.T) {
	if !NewBuilder().Add(0, 1, 1).MustBuild().UnitSliced() {
		t.Error("size-1 stream not reported unit-sliced")
	}
	if NewBuilder().Add(0, 2, 1).MustBuild().UnitSliced() {
		t.Error("size-2 stream reported unit-sliced")
	}
	if !NewBuilder().MustBuild().UnitSliced() {
		t.Error("empty stream should count as unit-sliced")
	}
}
