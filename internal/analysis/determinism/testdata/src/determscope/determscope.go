// Package determscope seeds determinism violations; the analyzer's test
// adds this package to determinism.Scope so the map-range rule applies to
// unmarked functions too.
package determscope

import (
	"math/rand"
	"sort"
	"time"
)

// mapRanges is unmarked: only the map-range rule applies.
func mapRanges(m map[string]int) int {
	total := 0
	for k, v := range m { // want `map iteration order can reach output`
		total += len(k) * v
	}

	keys := make([]string, 0, len(m))
	for k := range m { // ok: collect-then-sort
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		total += m[k]
	}

	for k := range m { // ok: in-place clear
		delete(m, k)
	}

	//smoothvet:ordered the body only counts entries; order cannot leak
	for range m { // ok: suppressed
		total++
	}
	return total
}

// collectNoSort gathers keys but never sorts them: still order-dependent.
func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order can reach output`
		keys = append(keys, k)
	}
	return keys
}

// step is a marked deterministic function: the strict rules apply.
//
//smoothvet:deterministic
func step(points []int) int {
	x := 0
	if time.Now().Unix() > 0 { // want `time\.Now reads the wall clock`
		x++
	}
	x += rand.Intn(6) // want `global math/rand\.Intn`

	rng := rand.New(rand.NewSource(1)) // ok: seeded generator
	x += rng.Intn(6)

	results := make([]int, len(points))
	ch := make(chan int)
	for i := range points {
		i := i
		go func() {
			results[i] = i // ok: indexed slot
			ch <- i        // want `channel send inside a spawned goroutine`
		}()
	}
	select { // want `select outcome depends on goroutine scheduling`
	case v := <-ch:
		x += v
	default:
	}
	return x + results[0]
}

// wallClockHelpers exercises the remaining time checks.
//
//smoothvet:deterministic
func wallClockHelpers() time.Duration {
	t0 := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC) // ok: pure construction
	return time.Since(t0)                             // want `time\.Since reads the wall clock`
}

// root is deterministic; the strict rules extend through the call graph to
// the unmarked helpers it calls, and the diagnostic names the root.
//
//smoothvet:deterministic
func root(points []int) int {
	return jitter() + len(points)
}

// jitter is unmarked but reachable from root, so the strict checks apply.
func jitter() int {
	x := rand.Intn(3)                 // want `global math/rand\.Intn in a //smoothvet:deterministic function \(reachable from root\)`
	if time.Now().UnixNano()&1 == 0 { // want `time\.Now reads the wall clock in a //smoothvet:deterministic function \(reachable from root\)`
		x++
	}
	return x
}

// offPath is not reachable from any deterministic root: only the map-range
// rule (this package is in Scope) applies, so the clock read is accepted.
func offPath() int64 {
	return time.Now().Unix() // ok: not on a deterministic path
}
