// Package determinism implements the smoothvet analyzer that keeps the
// simulation and serving step paths schedule-invariant: the sweep engine
// promises byte-identical output at any worker count, and the serving
// engine at any shard count, so code on those paths must not let map
// iteration order, the wall clock, global randomness, or goroutine
// scheduling leak into results.
//
// Two triggers:
//
//   - every function in the packages listed in Scope is checked for
//     order-leaking map iteration;
//   - functions annotated //smoothvet:deterministic (anywhere in the
//     module) are additionally checked for wall-clock reads, global
//     math/rand use, channel traffic inside spawned goroutines, and
//     multi-way selects.
//
// A map range is accepted in three shapes: collect-keys-then-sort (the
// ordered-collect idiom), pure map clearing (delete or overwrite of the
// ranged map only), or an explicit //smoothvet:ordered suppression on the
// statement, which asserts — auditable in review — that order cannot
// reach output.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Scope lists package-path suffixes whose whole body is subject to the
// map-range rule: the step paths named by the determinism contracts.
// It is a variable so the analyzer's own tests can scope their testdata.
var Scope = []string{
	"repro/internal/experiment",
	"repro/internal/sched",
	"repro/internal/serve",
}

// Analyzer is the determinism checker.
var Analyzer = &framework.Analyzer{
	Name: "determinism",
	Doc:  "forbid nondeterminism sources (map order, wall clock, global rand, scheduling) on step paths",
	Run:  run,
}

func run(pass *framework.Pass) error {
	markers := pass.ParseMarkers()
	inScope := pass.InScope(Scope)
	roots := make(map[*ast.FuncDecl]string)
	for _, fd := range markers.FuncDecls(framework.MarkerDeterministic) {
		roots[fd] = framework.MarkerDeterministic
	}
	// The strict checks extend through the package call graph: a helper a
	// deterministic function calls is on the deterministic path whether or
	// not it carries its own marker.
	reach := pass.BuildCallGraph().ReachableFrom(roots)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			how, strict := reach[fd]
			if !strict && !inScope {
				continue
			}
			checkFunc(pass, fd, strict, how)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl, strict bool, how framework.Reach) {
	markers := pass.ParseMarkers()
	suffix := ""
	if strict && how.Root != fd {
		suffix = " (reachable from " + how.Root.Name.Name + ")"
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapType(pass, n.X) && !markers.OrderedAt(n.For) &&
				!isOrderedCollect(pass, fd, n) && !isMapClear(pass, n) {
				pass.Reportf(n.For, "map iteration order can reach output here; collect keys and sort, or annotate //smoothvet:ordered")
			}
		case *ast.CallExpr:
			if !strict {
				break
			}
			if name, ok := stdlibCall(pass, n, "time"); ok {
				switch name {
				case "Now", "Since", "Until", "After", "Tick", "NewTicker", "NewTimer", "AfterFunc":
					pass.Reportf(n.Pos(), "time.%s reads the wall clock in a //smoothvet:deterministic function%s", name, suffix)
				}
			}
			if name, ok := stdlibCall(pass, n, "math/rand"); ok && !strings.HasPrefix(name, "New") {
				pass.Reportf(n.Pos(), "global math/rand.%s in a //smoothvet:deterministic function%s; use a seeded *rand.Rand", name, suffix)
			}
			if name, ok := stdlibCall(pass, n, "math/rand/v2"); ok && !strings.HasPrefix(name, "New") {
				pass.Reportf(n.Pos(), "global math/rand/v2.%s in a //smoothvet:deterministic function%s; use a seeded generator", name, suffix)
			}
		case *ast.GoStmt:
			if !strict {
				break
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkGoroutineBody(pass, lit)
			}
		case *ast.SelectStmt:
			if !strict {
				break
			}
			comm := 0
			hasDefault := false
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					hasDefault = true
				} else {
					comm++
				}
			}
			if comm > 1 || hasDefault {
				pass.Reportf(n.Select, "select outcome depends on goroutine scheduling in a //smoothvet:deterministic function%s", suffix)
			}
		}
		return true
	})
}

// checkGoroutineBody flags channel traffic inside a goroutine spawned by a
// deterministic function: which goroutine's send lands first is a
// scheduler decision, so results must come back through indexed slots
// (results[i] = ...) the way experiment.Sweep does, not through a shared
// channel.
func checkGoroutineBody(pass *framework.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Arrow, "channel send inside a spawned goroutine makes completion order observable; write to an indexed slot instead")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.OpPos, "channel receive inside a spawned goroutine makes scheduling order observable")
			}
		}
		return true
	})
}

// isMapType reports whether the ranged expression has map type.
func isMapType(pass *framework.Pass, x ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(x)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isOrderedCollect recognizes the collect-then-sort idiom:
//
//	for k := range m { ks = append(ks, k) }
//	...
//	sort.Strings(ks)   // or sort.Slice/sort.Ints/slices.Sort...
//
// The loop body must be exactly one self-append of the range variable, and
// a sort call mentioning the destination must follow the loop inside the
// same function.
func isOrderedCollect(pass *framework.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	dst := exprObj(pass, as.Lhs[0])
	if dst == nil || dst != exprObj(pass, call.Args[0]) {
		return false
	}
	// The appended values must come from the range variables.
	rangeVars := make(map[types.Object]bool)
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if v != nil {
			if o := exprObj(pass, v); o != nil {
				rangeVars[o] = true
			}
		}
	}
	for _, arg := range call.Args[1:] {
		if o := exprObj(pass, arg); o == nil || !rangeVars[o] {
			return false
		}
	}
	// A later sort of dst seals the idiom.
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted || n == nil || n.Pos() <= rs.End() {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		isSort := false
		if name, ok := stdlibCall(pass, call, "sort"); ok {
			switch name {
			case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
				isSort = true
			}
		} else if name, ok := stdlibCall(pass, call, "slices"); ok && strings.HasPrefix(name, "Sort") {
			isSort = true
		}
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			found := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == dst {
					found = true
				}
				return !found
			})
			if found {
				sorted = true
				break
			}
		}
		return !sorted
	})
	return sorted
}

// isMapClear recognizes loops that only delete from or overwrite the
// ranged map itself — in-place clears, which are order-invariant.
func isMapClear(pass *framework.Pass, rs *ast.RangeStmt) bool {
	m := types.ExprString(ast.Unparen(rs.X))
	if len(rs.Body.List) == 0 {
		return false
	}
	for _, st := range rs.Body.List {
		switch st := st.(type) {
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return false
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "delete" {
				return false
			}
			if types.ExprString(ast.Unparen(call.Args[0])) != m {
				return false
			}
		case *ast.AssignStmt:
			if len(st.Lhs) != 1 {
				return false
			}
			ix, ok := st.Lhs[0].(*ast.IndexExpr)
			if !ok || types.ExprString(ast.Unparen(ix.X)) != m {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// exprObj resolves a plain identifier (possibly parenthesized) to its
// object; composite expressions yield nil.
func exprObj(pass *framework.Pass, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return pass.TypesInfo.ObjectOf(id)
	}
	return nil
}

// stdlibCall reports whether call invokes a package-level function of the
// stdlib package with the given import path, returning the function name.
func stdlibCall(pass *framework.Pass, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if _, isSel := pass.TypesInfo.Selections[sel]; isSel {
		return "", false // method call, not a package-level function
	}
	return fn.Name(), true
}
