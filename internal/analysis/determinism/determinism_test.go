package determinism

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	old := Scope
	Scope = append(append([]string(nil), old...), "determscope")
	defer func() { Scope = old }()
	analysistest.Run(t, analysistest.TestData(), Analyzer, "determscope")
}
