// Package errloss implements the smoothvet analyzer for wire-path error
// hygiene in the serving packages (internal/serve, internal/netstream):
//
//   - a call whose results include an error must not be used as a bare
//     statement (or go statement): handle the error or discard it with an
//     explicit `_ =` assignment, which is greppable and review-visible.
//     Deferred calls are exempt (deferred cleanup has nowhere to report),
//     as is the fmt.Print family.
//   - a Write call on a deadline-capable connection (any value whose
//     method set has SetWriteDeadline, i.e. net.Conn and friends) must be
//     preceded in the same function by arming a write deadline on that
//     same connection, so one stalled client cannot wedge a shard loop
//     forever. Writers that are plain io.Writer are out of scope — the
//     serve engine wraps conns in deadlineWriter exactly to concentrate
//     this obligation in one checked place.
package errloss

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Scope lists package-path suffixes the analyzer applies to. A variable so
// the analyzer's tests can scope their testdata packages in.
var Scope = []string{
	"repro/internal/serve",
	"repro/internal/netstream",
	"repro/internal/diag",
	"repro/internal/obs",
	"repro/internal/lb",
}

// Analyzer is the error-hygiene checker.
var Analyzer = &framework.Analyzer{
	Name: "errloss",
	Doc:  "report dropped errors and conn writes without a write deadline in the serving packages",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if !pass.InScope(Scope) {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDroppedErrors(pass, fd)
			checkWriteDeadlines(pass, fd.Body)
			// Function literals get their own flow problem: a deadline
			// armed in the enclosing function does not excuse a write in a
			// closure that may run on another goroutine or much later.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkWriteDeadlines(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// checkDroppedErrors flags expression-statement and go-statement calls
// whose results include an error.
func checkDroppedErrors(pass *framework.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = ast.Unparen(n.X).(*ast.CallExpr)
		case *ast.GoStmt:
			call = n.Call
		case *ast.DeferStmt:
			return false // deferred cleanup is exempt
		}
		if call == nil {
			return true
		}
		if !returnsError(pass, call) || isPrintCall(pass, call) {
			return true
		}
		pass.Reportf(call.Pos(), "%s returns an error that is silently dropped; handle it or assign to _ explicitly", calleeName(pass, call))
		return true
	})
}

// returnsError reports whether any result of the call is error-typed.
func returnsError(pass *framework.Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// isPrintCall exempts the fmt.Print family, whose error results are
// conventionally ignored.
func isPrintCall(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	return strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")
}

// calleeName renders the called expression for the diagnostic.
func calleeName(pass *framework.Pass, call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}

// checkWriteDeadlines flags recv.Write(...) calls on deadline-capable
// receivers that no path from the function entry arms with
// recv.SetWriteDeadline(...) first. Arming is tracked flow-sensitively
// over the framework CFG with may-reach semantics: an arm on some path to
// the write suffices (the deadlineWriter pattern arms conditionally, once
// per tick), but an arm the control flow cannot carry to the write — on a
// returning branch, or later in source — no longer does, which is the
// false-negative gap the old position-based check had.
func checkWriteDeadlines(pass *framework.Pass, body *ast.BlockStmt) {
	cfg := framework.NewCFG(body)
	framework.RunFlow(cfg, framework.Facts{}, func(n ast.Node, facts framework.Facts, report bool) {
		eachCall(n, func(call *ast.CallExpr) {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return
			}
			key := "arm:" + types.ExprString(ast.Unparen(sel.X))
			switch sel.Sel.Name {
			case "SetWriteDeadline":
				facts[key] = "armed"
			case "Write":
				recvT := pass.TypesInfo.TypeOf(sel.X)
				if recvT == nil || !hasSetWriteDeadline(recvT) {
					return
				}
				if _, armed := facts[key]; !armed && report {
					pass.Reportf(call.Pos(),
						"write to %s without arming SetWriteDeadline first; a stalled peer blocks this goroutine forever",
						types.ExprString(ast.Unparen(sel.X)))
				}
			}
		})
	}, nil)
}

// eachCall visits the call expressions inside one CFG node in syntactic
// order, skipping nested function literals (analyzed separately).
func eachCall(n ast.Node, fn func(*ast.CallExpr)) {
	if rh, ok := n.(*framework.RangeHead); ok {
		n = rh.Range.X
	}
	ast.Inspect(n, func(inner ast.Node) bool {
		if _, ok := inner.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := inner.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}

// hasSetWriteDeadline reports whether the type's method set includes
// SetWriteDeadline — the structural signature of net.Conn and the
// deadline-capable wrappers.
func hasSetWriteDeadline(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "SetWriteDeadline" {
			return true
		}
	}
	// Pointer receivers widen the method set.
	if _, ok := t.(*types.Pointer); !ok && !types.IsInterface(t) {
		return hasSetWriteDeadlinePtr(t)
	}
	return false
}

func hasSetWriteDeadlinePtr(t types.Type) bool {
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "SetWriteDeadline" {
			return true
		}
	}
	return false
}
