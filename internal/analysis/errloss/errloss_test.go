package errloss

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestErrLoss(t *testing.T) {
	old := Scope
	Scope = append(append([]string(nil), old...), "errlossdata")
	defer func() { Scope = old }()
	analysistest.Run(t, analysistest.TestData(), Analyzer, "errlossdata")
}
