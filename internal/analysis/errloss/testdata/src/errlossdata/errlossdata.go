// Package errlossdata seeds dropped-error and missing-write-deadline
// violations; the analyzer's test adds this package to errloss.Scope.
package errlossdata

import "time"

// conn is the structural shape of net.Conn's write half; declared locally
// so the testdata stays stdlib-only.
type conn interface {
	Write(p []byte) (int, error)
	SetWriteDeadline(t time.Time) error
	Close() error
}

type plainWriter interface {
	Write(p []byte) (int, error)
}

func doClose(c conn) {
	c.Close()       // want `c\.Close returns an error that is silently dropped`
	_ = c.Close()   // ok: explicit discard
	defer c.Close() // ok: deferred cleanup is exempt
}

func goDrop(c conn) {
	go c.Close() // want `c\.Close returns an error that is silently dropped`
}

func write(c conn, p []byte) error {
	if err := c.SetWriteDeadline(time.Time{}.Add(time.Second)); err != nil {
		return err
	}
	_, err := c.Write(p) // ok: deadline armed above
	return err
}

func writeNoDeadline(c conn, p []byte) error {
	_, err := c.Write(p) // want `write to c without arming SetWriteDeadline`
	return err
}

func plainOK(w plainWriter, p []byte) error {
	_, err := w.Write(p) // ok: not deadline-capable
	return err
}

// armOnDeadBranch: the arm sits on a branch that returns, so no path
// carries it to the write (the old position-based check missed this).
func armOnDeadBranch(c conn, p []byte, bail bool) error {
	if bail {
		if err := c.SetWriteDeadline(time.Time{}.Add(time.Second)); err != nil {
			return err
		}
		return nil
	}
	_, err := c.Write(p) // want `write to c without arming SetWriteDeadline`
	return err
}

// armMayReach: an arm on one path into the write suffices (the
// deadlineWriter arms conditionally, once per tick).
func armMayReach(c conn, p []byte, stale bool) error {
	if stale {
		if err := c.SetWriteDeadline(time.Time{}.Add(time.Second)); err != nil {
			return err
		}
	}
	_, err := c.Write(p) // ok: armed on the stale path, may-reach
	return err
}

// armInLoop: arming on a previous iteration reaches later writes through
// the loop back edge.
func armInLoop(c conn, chunks [][]byte) error {
	for i, chunk := range chunks {
		if i == 0 {
			if err := c.SetWriteDeadline(time.Time{}.Add(time.Second)); err != nil {
				return err
			}
		}
		if _, err := c.Write(chunk); err != nil { // ok: armed before first write, carried by the back edge
			return err
		}
	}
	return nil
}

// closureNeedsOwnArm: a deadline armed outside does not excuse a write
// inside a function literal, which may run later or elsewhere.
func closureNeedsOwnArm(c conn, p []byte) func() {
	_ = c.SetWriteDeadline(time.Time{}.Add(time.Second))
	return func() {
		_, _ = c.Write(p) // want `write to c without arming SetWriteDeadline`
	}
}

// relayFlush mirrors the front tier's relay fallback flushing a pending
// span to the client: the write's error is the session's fate — dropping
// it leaves a dead session spinning in the relay loop.
func relayFlush(c conn, pend []byte) {
	if err := c.SetWriteDeadline(time.Time{}.Add(time.Second)); err != nil {
		return
	}
	c.Write(pend) // want `c\.Write returns an error that is silently dropped`
}

// relayFlushHandled is the sanctioned shape: deadline armed, error
// decides the session.
func relayFlushHandled(c conn, pend []byte) error {
	if err := c.SetWriteDeadline(time.Time{}.Add(time.Second)); err != nil {
		return err
	}
	if _, err := c.Write(pend); err != nil {
		return err
	}
	return nil
}
