// Package errlossdata seeds dropped-error and missing-write-deadline
// violations; the analyzer's test adds this package to errloss.Scope.
package errlossdata

import "time"

// conn is the structural shape of net.Conn's write half; declared locally
// so the testdata stays stdlib-only.
type conn interface {
	Write(p []byte) (int, error)
	SetWriteDeadline(t time.Time) error
	Close() error
}

type plainWriter interface {
	Write(p []byte) (int, error)
}

func doClose(c conn) {
	c.Close()       // want `c\.Close returns an error that is silently dropped`
	_ = c.Close()   // ok: explicit discard
	defer c.Close() // ok: deferred cleanup is exempt
}

func goDrop(c conn) {
	go c.Close() // want `c\.Close returns an error that is silently dropped`
}

func write(c conn, p []byte) error {
	if err := c.SetWriteDeadline(time.Time{}.Add(time.Second)); err != nil {
		return err
	}
	_, err := c.Write(p) // ok: deadline armed above
	return err
}

func writeNoDeadline(c conn, p []byte) error {
	_, err := c.Write(p) // want `write to c without arming SetWriteDeadline`
	return err
}

func plainOK(w plainWriter, p []byte) error {
	_, err := w.Write(p) // ok: not deadline-capable
	return err
}
