package shardconfine

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestShardConfine(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "shardconfinedata")
}
