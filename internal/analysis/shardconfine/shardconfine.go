// Package shardconfine defines a smoothvet analyzer enforcing goroutine
// confinement of shard state. A type marked //smoothvet:confined (the
// serve and loadgen shard structs) is owned by exactly one goroutine: all
// of its non-//smoothvet:shared fields may only be stored to by code
// holding an *owned* reference — the method receiver, a parameter (the
// call was vetted at the caller), or a locally constructed value. The
// analyzer flags:
//
//   - stores to a non-shared field through a foreign reference (one
//     obtained from another struct's field, a slice/map of shards, or a
//     package variable) — the cross-shard store;
//   - launching a goroutine that captures or receives a confined value
//     (go sh.run(), go func() { … sh … }()) without a
//     //smoothvet:transfer marker on the go statement;
//   - sending a confined value over a channel without a
//     //smoothvet:transfer marker on the send.
//
// //smoothvet:transfer documents an audited ownership hand-off: after the
// marked statement the new goroutine owns the value and the sender must
// not store through it again (the analyzer downgrades the local to
// foreign past the hand-off, so later stores are flagged).
//
// Ownership is tracked flow-sensitively per function over the framework
// CFG with a two-point lattice (owned < foreign, join = foreign), so a
// reference that is foreign on any path into a statement is treated as
// foreign there. Reads of foreign shard state are deliberately not
// flagged — cross-shard reads are guarded by //smoothvet:shared
// fields (mutexes, atomics) in practice, and flagging reads would drown
// the real signal; the write side is where corruption starts. Function
// literal bodies are analyzed as separate functions whose captured
// variables are presumed owned: a closure runs on the owning goroutine
// unless launched with go, which is checked at the go statement.
package shardconfine

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the shardconfine analyzer.
var Analyzer = &framework.Analyzer{
	Name: "shardconfine",
	Doc: "report cross-goroutine access to //smoothvet:confined shard state: " +
		"foreign-reference stores, unmarked goroutine captures and channel sends",
	Run: run,
}

const (
	owned   = "owned"
	foreign = "foreign"
)

func run(pass *framework.Pass) error {
	markers := pass.ParseMarkers()
	c := &checker{pass: pass, markers: markers}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

type checker struct {
	pass    *framework.Pass
	markers *framework.Markers
}

// confined reports whether t is (a pointer to) a //smoothvet:confined type.
func (c *checker) confined(t types.Type) bool {
	if t == nil {
		return false
	}
	return c.markers.TypeHasMarker(t, framework.MarkerConfined)
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	init := framework.Facts{}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				if obj := c.pass.TypesInfo.Defs[name]; obj != nil && c.confined(obj.Type()) {
					init[obj] = owned
				}
			}
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := c.pass.TypesInfo.Defs[name]; obj != nil && c.confined(obj.Type()) {
					init[obj] = owned
				}
			}
		}
	}
	c.checkBody(fd.Body, init)

	// Function literals are analyzed as their own flow problems: captured
	// confined variables are presumed owned (see the package comment).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.checkBody(lit.Body, framework.Facts{})
		}
		return true
	})
}

func (c *checker) checkBody(body *ast.BlockStmt, init framework.Facts) {
	cfg := framework.NewCFG(body)
	framework.RunFlow(cfg, init, c.transfer, func(a, b string) string {
		if a == foreign || b == foreign {
			return foreign
		}
		return owned
	})
}

// transfer is the dataflow transfer function: fact updates always, checks
// only when report is true.
func (c *checker) transfer(n ast.Node, facts framework.Facts, report bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if report {
			for _, lhs := range n.Lhs {
				c.checkStore(lhs, facts)
			}
		}
		c.applyAssign(n, facts)

	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				obj := c.pass.TypesInfo.Defs[name]
				if obj == nil || !c.confined(obj.Type()) {
					continue
				}
				cls := owned // zero value (nil pointer) is nobody's shard
				if i < len(vs.Values) {
					cls = c.classify(vs.Values[i], facts)
				} else if len(vs.Values) == 1 {
					cls = c.classify(vs.Values[0], facts)
				}
				facts[obj] = cls
			}
		}

	case *framework.RangeHead:
		cls := c.classify(n.Range.X, facts)
		if t := c.typeOf(n.Range.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				cls = owned // values received over a channel are transferred in
			}
		}
		for _, e := range []ast.Expr{n.Range.Key, n.Range.Value} {
			id, ok := e.(*ast.Ident)
			if !ok {
				continue
			}
			if obj := c.identObj(id); obj != nil && c.confined(obj.Type()) {
				facts[obj] = cls
			}
		}

	case *ast.IncDecStmt:
		if report {
			c.checkStore(n.X, facts)
		}

	case *ast.SendStmt:
		if report && c.confined(c.typeOf(n.Value)) && !c.markers.TransferAt(n.Pos()) {
			c.pass.Reportf(n.Pos(),
				"send of confined %s over a channel without //smoothvet:transfer",
				types.TypeString(c.typeOf(n.Value), types.RelativeTo(c.pass.Pkg)))
		}
		c.demote(n.Value, facts)

	case *ast.GoStmt:
		if report && !c.markers.TransferAt(n.Pos()) {
			c.checkGo(n, facts)
		}
		for _, e := range goConfinedExprs(n) {
			c.demote(e, facts)
		}
	}
}

// applyAssign updates ownership facts for confined identifiers on the LHS.
func (c *checker) applyAssign(n *ast.AssignStmt, facts framework.Facts) {
	for i, lhs := range n.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := c.identObj(id)
		if obj == nil || !c.confined(obj.Type()) {
			continue
		}
		var rhs ast.Expr
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		} else if len(n.Rhs) == 1 {
			rhs = n.Rhs[0] // tuple: call / map index / type assert
		}
		if rhs == nil {
			continue
		}
		facts[obj] = c.classify(rhs, facts)
	}
}

// checkStore flags a store whose target chain passes through a non-shared
// field of a confined type reached from a foreign reference.
func (c *checker) checkStore(lhs ast.Expr, facts framework.Facts) {
	e := lhs
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			if c.confined(c.typeOf(t.X)) {
				sel, ok := c.pass.TypesInfo.Selections[t]
				if ok && sel.Kind() == types.FieldVal {
					field, _ := sel.Obj().(*types.Var)
					if c.markers.FieldHasMarker(field, framework.MarkerShared) {
						return // shared field: cross-goroutine access sanctioned
					}
					if c.classify(t.X, facts) == foreign {
						c.pass.Reportf(lhs.Pos(),
							"store to field %s of confined %s through a foreign reference; confined state may only be written by its owning goroutine",
							field.Name(), types.TypeString(c.typeOf(t.X), types.RelativeTo(c.pass.Pkg)))
					}
				}
				return
			}
			e = t.X
		default:
			return
		}
	}
}

// checkGo flags goroutine launches that smuggle a confined value: a method
// call on one, one passed as an argument, or a closure capturing one.
func (c *checker) checkGo(n *ast.GoStmt, facts framework.Facts) {
	call := n.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		seen := make(map[types.Object]bool)
		ast.Inspect(lit.Body, func(inner ast.Node) bool {
			id, ok := inner.(*ast.Ident)
			if !ok {
				return true
			}
			obj := c.identObj(id)
			if obj == nil || seen[obj] || !c.confined(obj.Type()) {
				return true
			}
			// Only captures: identifiers declared outside the literal.
			if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
				return true
			}
			seen[obj] = true
			c.pass.Reportf(n.Pos(),
				"goroutine closure captures confined value %s without //smoothvet:transfer", obj.Name())
			return true
		})
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && c.confined(c.typeOf(sel.X)) {
		c.pass.Reportf(n.Pos(),
			"go %s.%s hands the confined receiver to a new goroutine without //smoothvet:transfer",
			exprName(sel.X), sel.Sel.Name)
	}
	for _, arg := range call.Args {
		if c.confined(c.typeOf(arg)) {
			c.pass.Reportf(n.Pos(),
				"goroutine receives confined value %s without //smoothvet:transfer", exprName(arg))
		}
	}
}

// goConfinedExprs lists the confined-typed expressions a go statement hands
// off (receiver and arguments), for post-hand-off demotion.
func goConfinedExprs(n *ast.GoStmt) []ast.Expr {
	var out []ast.Expr
	if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok {
		out = append(out, sel.X)
	}
	out = append(out, n.Call.Args...)
	return out
}

// demote marks a handed-off local as foreign: the new owner runs it now.
func (c *checker) demote(e ast.Expr, facts framework.Facts) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	if obj := c.identObj(id); obj != nil && c.confined(obj.Type()) {
		facts[obj] = foreign
	}
}

// classify resolves the ownership of an expression under the current facts.
func (c *checker) classify(e ast.Expr, facts framework.Facts) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.identObj(e)
		if obj == nil {
			return owned
		}
		if cls, ok := facts[obj]; ok {
			return cls
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return foreign // package-level shard variable: shared by definition
		}
		return owned
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return owned // received over a channel: transferred in
		}
		return c.classify(e.X, facts) // &composite → fresh
	case *ast.CompositeLit:
		return owned
	case *ast.CallExpr:
		// Convention: a function returning a confined value is a
		// constructor handing ownership to the caller. Accessors returning
		// someone else's shard must not exist (they would be flagged in
		// their own body when the store happens).
		return owned
	case *ast.SelectorExpr:
		return foreign // read out of another structure
	case *ast.IndexExpr:
		return c.classify(e.X, facts) // element of a local slice stays owned
	case *ast.StarExpr:
		return c.classify(e.X, facts)
	case *ast.TypeAssertExpr:
		return c.classify(e.X, facts)
	default:
		return owned
	}
}

func (c *checker) identObj(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Defs[id]
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	return c.pass.TypesInfo.TypeOf(e)
}

func exprName(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "value"
}
