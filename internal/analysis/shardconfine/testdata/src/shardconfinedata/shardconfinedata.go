// Package shardconfinedata seeds confinement violations around a marked
// shard type, next to the sanctioned ownership idioms.
package shardconfinedata

import "sync"

// shard is goroutine-confined: one reactor goroutine owns each instance.
//
//smoothvet:confined
type shard struct {
	mu       sync.Mutex //smoothvet:shared
	incoming chan int   //smoothvet:shared
	draining bool
	sessions []int
	count    int
}

type engine struct {
	shards []*shard
}

// newEngine constructs shards and hands each to its goroutine.
func newEngine(n int) *engine {
	e := &engine{}
	for i := 0; i < n; i++ {
		sh := &shard{incoming: make(chan int)}
		sh.sessions = make([]int, 0, 8) // ok: fresh value, construction
		//smoothvet:transfer
		go sh.run()
		e.shards = append(e.shards, sh)
	}
	return e
}

func (e *engine) launchUnmarked() {
	sh := &shard{}
	go sh.run() // want `go sh\.run hands the confined receiver to a new goroutine without //smoothvet:transfer`
}

// run owns its receiver.
func (sh *shard) run() {
	sh.count++         // ok: receiver is owned
	sh.draining = true // ok
}

// crossStore writes another shard's state: the classic violation.
func (e *engine) crossStore(i int) {
	e.shards[i].draining = true // want `store to field draining of confined \*shard through a foreign reference`
	sh := e.shards[i]
	sh.count++ // want `store to field count of confined \*shard through a foreign reference`
	sh.mu.Lock()
	sh.sessions = nil // want `store to field sessions of confined \*shard through a foreign reference`
	sh.mu.Unlock()
}

// sharedFieldOK: cross-goroutine traffic through marked fields is fine.
func (e *engine) sharedFieldOK(i int, v int) {
	sh := e.shards[i]
	sh.incoming <- v // ok: shared channel field
	sh.mu.Lock()     // ok: shared mutex field
	sh.mu.Unlock()
}

// flowJoin: a reference that is foreign on one path is foreign at the join.
func (e *engine) flowJoin(mine *shard, steal bool) {
	sh := mine
	if steal {
		sh = e.shards[0]
	}
	sh.count++ // want `store to field count of confined \*shard through a foreign reference`
}

// loopFlow: the foreign binding flows around the loop back edge.
func (e *engine) loopFlow() {
	var sh *shard
	for i := 0; i < 4; i++ {
		if sh != nil {
			sh.count++ // want `store to field count of confined \*shard through a foreign reference`
		}
		sh = e.shards[i]
	}
}

// rangeForeign: ranging over a shared slice yields foreign references.
func (e *engine) rangeForeign() {
	for _, sh := range e.shards {
		sh.draining = true // want `store to field draining of confined \*shard through a foreign reference`
	}
}

// rangeOwned: ranging over a locally built slice keeps ownership.
func rangeOwned(n int) []*shard {
	shards := make([]*shard, 0, n)
	for i := 0; i < n; i++ {
		shards = append(shards, &shard{})
	}
	for _, sh := range shards {
		sh.count = i0() // ok: owned via local slice
	}
	return shards
}

func i0() int { return 0 }

// closureCapture: goroutine closures must not capture confined values.
func (sh *shard) closureCapture() {
	go func() { // want `goroutine closure captures confined value sh without //smoothvet:transfer`
		sh.count++
	}()
}

// sendUnmarked: confined values cross channels only with a transfer marker.
func sendUnmarked(ch chan *shard, sh *shard) {
	ch <- sh // want `send of confined \*shard over a channel without //smoothvet:transfer`
}

func sendMarked(ch chan *shard, sh *shard) {
	ch <- sh //smoothvet:transfer
}

// afterHandoff: the sender must not touch the value past the hand-off.
func afterHandoff(ch chan *shard) {
	sh := &shard{}
	sh.count = 1 // ok: still owned
	ch <- sh     //smoothvet:transfer
	sh.count = 2 // want `store to field count of confined \*shard through a foreign reference`
}

// receiveOwns: the receiving goroutine owns what it takes off the channel.
func receiveOwns(ch chan *shard) {
	sh := <-ch
	sh.count++ // ok: transferred in
	for got := range ch {
		got.draining = true // ok: transferred in
	}
}

// shardMetrics mirrors the observability layer's per-shard slot row: the
// live slots are plain memory owned by the shard goroutine, the published
// mirror is the sanctioned cross-goroutine surface.
//
//smoothvet:confined
type shardMetrics struct {
	live []uint64
	pub  []uint64 //smoothvet:shared
}

type registry struct {
	rows []*shardMetrics
}

// recordOwned: the shard goroutine bumping its own slot is the hot path.
func recordOwned(m *shardMetrics, slot int) {
	m.live[slot]++ // ok: receiver-owned row
}

// scrapeStore: a scraper incrementing another shard's live slot is the
// exact bug the metrics layer exists to prevent — merge at scrape instead.
func (r *registry) scrapeStore(i, slot int) {
	r.rows[i].live[slot]++ // want `store to field live of confined \*shardMetrics through a foreign reference`
}

// scrapeSharedOK: the published mirror is marked shared; scrape-side
// writes through it (atomics in the real layer) are sanctioned.
func (r *registry) scrapeSharedOK(i, slot int, v uint64) {
	r.rows[i].pub[slot] = v // ok: shared field
}

// relayShard mirrors the front tier's relay shard: the fd-indexed
// placement table maps live fds to sessions and is touched only by the
// shard's reactor goroutine; placements arrive through the shared
// incoming queue.
//
//smoothvet:confined
type relayShard struct {
	mu       sync.Mutex //smoothvet:shared
	incoming []int      //smoothvet:shared
	table    []int
}

type frontTier struct {
	relays []*relayShard
}

// placeDirect: a placement worker writing another shard's placement
// table directly instead of queueing through incoming — the cross-shard
// write the front tier's enqueue/admit split exists to prevent.
func (e *frontTier) placeDirect(i, fd int) {
	e.relays[i].table = append(e.relays[i].table, fd) // want `store to field table of confined \*relayShard through a foreign reference`
}

// placeQueued is the sanctioned hand-off: append to the shared queue
// under the shared mutex; the owning goroutine moves it into the table.
func (e *frontTier) placeQueued(i, fd int) {
	sh := e.relays[i]
	sh.mu.Lock()
	sh.incoming = append(sh.incoming, fd) // ok: shared field under the shared mutex
	sh.mu.Unlock()
}

// drainOwned: the reactor goroutine moving queued placements into its
// own table.
func (sh *relayShard) drainOwned() {
	sh.mu.Lock()
	pend := sh.incoming
	sh.incoming = nil // ok: shared field
	sh.mu.Unlock()
	sh.table = append(sh.table, pend...) // ok: receiver-owned
}
