// Package analysis gathers the smoothvet analyzer suite. The individual
// passes live in subpackages (one per contract); this package is the single
// registration point cmd/smoothvet and the tests consume.
package analysis

import (
	"repro/internal/analysis/aliasretain"
	"repro/internal/analysis/atomicpair"
	"repro/internal/analysis/clockuse"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/errloss"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/pubimmut"
	"repro/internal/analysis/shardconfine"
)

// All returns every smoothvet analyzer, in stable order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		aliasretain.Analyzer,
		atomicpair.Analyzer,
		clockuse.Analyzer,
		determinism.Analyzer,
		errloss.Analyzer,
		hotpath.Analyzer,
		pubimmut.Analyzer,
		shardconfine.Analyzer,
	}
}
