package framework

import (
	"go/ast"
	"go/token"
)

// CFG is a per-function control-flow graph over the parsed AST: the
// flow-sensitive substrate the smoothvet analyzers run their dataflow on.
// It deliberately stays lightweight — basic blocks hold the original
// ast.Node statements and condition expressions, in execution order, and
// nested control flow is *not* repeated inside a block's nodes (an if
// statement contributes its Init and Cond to the head block; its branches
// become separate blocks). Transfer functions may therefore inspect each
// block node fully without double-visiting a nested body.
//
// Supported control flow: if/else, for (all three clauses), range, switch
// and type switch (with fallthrough), select, labeled break/continue,
// return, and panic-free straight-line code. goto is treated as
// terminating the current path (no edge is added): the repository style
// forbids goto on analyzed paths, and under-approximating its successors
// can only suppress diagnostics on code that uses it, never invent them.
type CFG struct {
	// Entry is the block control enters at. It is Blocks[0].
	Entry *Block
	// Blocks lists every block, in creation (roughly source) order.
	Blocks []*Block
}

// Block is one straight-line run of nodes with a common set of successors.
type Block struct {
	Index int
	// Nodes holds statements and head expressions in execution order.
	// Composite statements never appear here — only their evaluated parts
	// (an if's Init/Cond, a switch's Init/Tag, a RangeHead, …), so
	// inspecting a node never re-walks a nested body.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// RangeHead marks the loop-head evaluation of a range statement: the
// ranged expression and the per-iteration key/value binding, without the
// body (which occupies its own blocks). Analyzer transfer functions
// type-switch on *RangeHead to model the binding; Pos/End cover the
// clause up to the ranged expression.
type RangeHead struct {
	Range *ast.RangeStmt
}

// Pos implements ast.Node.
func (h *RangeHead) Pos() token.Pos { return h.Range.For }

// End implements ast.Node.
func (h *RangeHead) End() token.Pos { return h.Range.X.End() }

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cur = b.newBlock()
	b.cfg.Entry = b.cur
	b.stmts(body.List)
	b.link()
	return b.cfg
}

type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminator
	// (return, break, …) until the next label or join point revives flow.
	cur    *Block
	frames []loopFrame
	// pendingLabel names the label attached to the next loop/switch.
	pendingLabel string
	// fallthroughTo is the next case clause while building a switch body.
	fallthroughTo *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge records from→to (nil-safe: unreachable sources add nothing).
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// link back-fills predecessor lists once all edges exist.
func (b *cfgBuilder) link() {
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
}

// add appends a node to the current block (dropped when unreachable).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// frame helpers: find the innermost frame, or the one carrying label.
func (b *cfgBuilder) frameFor(label string, needContinue bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needContinue && f.continueTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		// Start a fresh block so a labeled loop's break/continue targets
		// resolve, then build the labeled statement with the label pending.
		lb := b.newBlock()
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if f := b.frameFor(label, false); f != nil {
				b.edge(b.cur, f.breakTo)
			}
			b.cur = nil
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if f := b.frameFor(label, true); f != nil {
				b.edge(b.cur, f.continueTo)
			}
			b.cur = nil
		case token.FALLTHROUGH:
			b.edge(b.cur, b.fallthroughTo)
			b.cur = nil
		case token.GOTO:
			// Unsupported: treat as terminating (see the type comment).
			b.cur = nil
		}

	case *ast.IfStmt:
		b.takeLabel() // labels on if are only goto targets; ignore
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		join := b.newBlock()
		thenB := b.newBlock()
		b.edge(head, thenB)
		b.cur = thenB
		b.stmts(s.Body.List)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(head, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		join := b.newBlock()
		// continue runs Post (when present) before re-testing the head.
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
		}
		b.frames = append(b.frames, loopFrame{label: label, breakTo: join, continueTo: post})
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, post)
		b.frames = b.frames[:len(b.frames)-1]
		if s.Cond != nil {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, &RangeHead{Range: s})
		join := b.newBlock()
		b.edge(head, join) // the range may be empty
		b.frames = append(b.frames, loopFrame{label: label, breakTo: join, continueTo: head})
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.buildSwitchBody(label, s.Body, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.buildSwitchBody(label, s.Body, s.Assign)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		join := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, breakTo: join})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cb := b.newBlock()
			b.edge(head, cb)
			b.cur = cb
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmts(cc.Body)
			b.edge(b.cur, join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(s.Body.List) == 0 {
			b.edge(head, join)
		}
		b.cur = join

	default:
		// Simple statements: expression, assignment, declaration, inc/dec,
		// send, go, defer, empty. One node, straight-line flow.
		b.add(s)
	}
}

// buildSwitchBody shares the clause scaffolding of switch and type switch.
// assign is the type switch's `x := y.(type)` statement, evaluated at the
// head of every clause (each clause binds its own typed x).
func (b *cfgBuilder) buildSwitchBody(label string, body *ast.BlockStmt, assign ast.Stmt) {
	head := b.cur
	join := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTo: join})
	clauses := make([]*Block, len(body.List))
	for i := range body.List {
		clauses[i] = b.newBlock()
		b.edge(head, clauses[i])
	}
	hasDefault := false
	savedFall := b.fallthroughTo
	for i, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = clauses[i]
		if assign != nil {
			b.add(assign)
		}
		for _, e := range cc.List {
			b.add(e)
		}
		if i+1 < len(clauses) {
			b.fallthroughTo = clauses[i+1]
		} else {
			b.fallthroughTo = join
		}
		b.stmts(cc.Body)
		b.edge(b.cur, join)
	}
	b.fallthroughTo = savedFall
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		b.edge(head, join)
	}
	b.cur = join
}
