// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools go/analysis vocabulary (Analyzer, Pass, Diagnostic),
// just large enough to host the smoothvet analyzers.
//
// The build environment for this repository is hermetic — the module has no
// network access and an empty module cache — so the canonical x/tools
// packages cannot be vendored in. The subset here keeps the same shape and
// field names as go/analysis on purpose: should x/tools become available,
// each analyzer ports by changing one import line.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	// It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph documentation shown by -flags consumers.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one package's worth of parsed and type-checked input to an
// Analyzer's Run function, mirroring go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report is invoked for each diagnostic; set by the driver.
	Report func(Diagnostic)

	// markers caches ParseMarkers results for the pass (built lazily).
	markers *Markers
	// callgraph caches BuildCallGraph results for the pass (built lazily).
	callgraph *CallGraph
}

// InScope reports whether the pass's package falls under one of the given
// import-path suffixes. The external test package of an in-scope package
// ("<path>_test", or "<path>.test" under the vet driver) is in scope too —
// tests must honor the same contracts as the code they exercise.
func (p *Pass) InScope(suffixes []string) bool {
	path := p.Pkg.Path()
	path = strings.TrimSuffix(path, "_test")
	path = strings.TrimSuffix(path, ".test")
	for _, s := range suffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated. Drivers (the vet unitcheck driver and the analysistest
// harness) share it so passes always see fully populated type facts.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
