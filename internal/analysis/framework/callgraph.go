package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sync"
)

// CallEdge is one static call site inside a function declaration.
type CallEdge struct {
	Site   *ast.CallExpr
	Callee *types.Func
}

// CallGraph is the package's static call graph: every same-package
// function declaration, the statically resolvable calls inside each
// (including calls inside nested function literals — a closure built on a
// path runs that path's contract), and the object→declaration index
// needed to walk it. Dynamic calls through function values and interface
// methods have no edges; analyzers that traverse the graph document that
// under-approximation.
type CallGraph struct {
	pass  *Pass
	byObj map[*types.Func]*ast.FuncDecl
	edges map[*ast.FuncDecl][]CallEdge
	decls []*ast.FuncDecl
}

// BuildCallGraph constructs (and caches) the pass's call graph.
func (p *Pass) BuildCallGraph() *CallGraph {
	if p.callgraph != nil {
		return p.callgraph
	}
	g := &CallGraph{
		pass:  p,
		byObj: make(map[*types.Func]*ast.FuncDecl),
		edges: make(map[*ast.FuncDecl][]CallEdge),
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g.decls = append(g.decls, fd)
			if obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				g.byObj[obj] = fd
			}
		}
	}
	for _, fd := range g.decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := StaticCallee(p.TypesInfo, call); fn != nil {
				g.edges[fd] = append(g.edges[fd], CallEdge{Site: call, Callee: fn})
			}
			return true
		})
	}
	p.callgraph = g
	return g
}

// StaticCallee resolves the *types.Func a call statically invokes: a named
// function or a method called through a concrete receiver. Calls through
// function-typed values, builtins and interface methods resolve to nil.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// DeclOf returns the same-package declaration of fn, or nil.
func (g *CallGraph) DeclOf(fn *types.Func) *ast.FuncDecl { return g.byObj[fn] }

// Edges returns the static call sites inside fd.
func (g *CallGraph) Edges(fd *ast.FuncDecl) []CallEdge { return g.edges[fd] }

// Reach records how a function became reachable from a marked root.
type Reach struct {
	// Root is the marked declaration the walk started from.
	Root *ast.FuncDecl
	// Marker is the root's marker name (for diagnostics).
	Marker string
	// Site is the call that first reached this declaration (nil for roots).
	Site *ast.CallExpr
	// Caller is the declaration containing Site (nil for roots).
	Caller *ast.FuncDecl
}

// ReachableFrom walks the same-package call graph breadth-first from the
// given roots (each mapped to its marker name for diagnostics) and returns
// every declaration reachable through static calls, roots included.
func (g *CallGraph) ReachableFrom(roots map[*ast.FuncDecl]string) map[*ast.FuncDecl]Reach {
	reach := make(map[*ast.FuncDecl]Reach, len(roots))
	var queue []*ast.FuncDecl
	// Deterministic BFS order: roots in declaration order.
	for _, fd := range g.decls {
		if marker, ok := roots[fd]; ok {
			reach[fd] = Reach{Root: fd, Marker: marker}
			queue = append(queue, fd)
		}
	}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		from := reach[fd]
		for _, e := range g.edges[fd] {
			callee := g.byObj[e.Callee]
			if callee == nil {
				continue // cross-package or no body
			}
			if _, seen := reach[callee]; seen {
				continue
			}
			reach[callee] = Reach{Root: from.Root, Marker: from.Marker, Site: e.Site, Caller: fd}
			queue = append(queue, callee)
		}
	}
	return reach
}

// ---------------------------------------------------------------------------
// Cross-package summaries.
//
// Export data carries no function bodies, but it carries declaration
// positions — the same hook framework.Markers uses to resolve annotations
// on other packages' APIs. For the one-hop summaries the clockuse analyzer
// needs ("does this out-of-package callee read the wall clock directly?"),
// the declaring source file is parsed once, cached process-wide, and the
// declaration enclosing the object's line is summarized syntactically.
// ---------------------------------------------------------------------------

type parsedDeclFile struct {
	fset *token.FileSet
	file *ast.File
}

// declFileASTCache caches parsed declaration files, shared across passes
// within a process (nil entry: unparseable file).
var declFileASTCache sync.Map // filename -> *parsedDeclFile

func loadDeclFile(filename string) *parsedDeclFile {
	if v, ok := declFileASTCache.Load(filename); ok {
		pf, _ := v.(*parsedDeclFile)
		return pf
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, nil, parser.ParseComments)
	var pf *parsedDeclFile
	if err == nil {
		pf = &parsedDeclFile{fset: fset, file: file}
	}
	declFileASTCache.Store(filename, pf)
	return pf
}

// DeclFile returns the cached parse of a declaring source file, or
// (nil, nil) when it cannot be read or parsed.
func DeclFile(filename string) (*token.FileSet, *ast.File) {
	pf := loadDeclFile(filename)
	if pf == nil {
		return nil, nil
	}
	return pf.fset, pf.file
}

// FuncDeclAt parses the source file and returns the function declaration
// whose extent covers the given line, with the FileSet it was parsed
// under. It returns (nil, nil) when the file cannot be read or no
// declaration matches — callers treat that as "no summary available".
func FuncDeclAt(filename string, line int) (*token.FileSet, *ast.FuncDecl) {
	pf := loadDeclFile(filename)
	if pf == nil {
		return nil, nil
	}
	for _, d := range pf.file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		start := pf.fset.Position(fd.Pos()).Line
		end := pf.fset.Position(fd.End()).Line
		if line >= start && line <= end {
			return pf.fset, fd
		}
	}
	return nil, nil
}

// ImportName returns the local name a file binds the given import path to
// ("" when the file does not import it; the default name when unrenamed).
func ImportName(file *ast.File, path, defaultName string) string {
	for _, imp := range file.Imports {
		p := imp.Path.Value // quoted
		if p != `"`+path+`"` {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return defaultName
	}
	return ""
}
