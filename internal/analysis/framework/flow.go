package framework

import (
	"go/ast"
)

// Facts is the dataflow state of one program point: a small lattice value
// per tracked key. Keys are usually types.Object (locals, fields) but may
// be any comparable value — the errloss analyzer keys armed deadlines by
// printed receiver expression, for example. The absent key is bottom.
type Facts map[any]string

// Clone copies the fact map (the engine never shares maps across blocks).
func (f Facts) Clone() Facts {
	out := make(Facts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func factsEqual(a, b Facts) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// TransferFunc applies one node's effect to the facts. It is called many
// times during fixpoint iteration with report=false, then exactly once per
// node with report=true under the converged entry state of the node's
// block — diagnostics must only be emitted when report is true, and fact
// updates must happen in both modes.
type TransferFunc func(n ast.Node, facts Facts, report bool)

// JoinFunc merges two non-equal lattice values for the same key at a
// control-flow join. It must be commutative, associative and idempotent,
// and the value domain must be finite, or the fixpoint may not terminate.
type JoinFunc func(a, b string) string

// RunFlow runs a forward may-style dataflow over the CFG: facts are joined
// key-wise at block entries (a key present on any incoming edge is present
// after the join; conflicting values merge through join), transfer is
// iterated to a fixpoint, and a final reporting pass replays every reached
// block once under its converged entry state. Blocks never reached from
// the entry (dead code, post-panic) are not analyzed.
func RunFlow(cfg *CFG, init Facts, transfer TransferFunc, join JoinFunc) {
	n := len(cfg.Blocks)
	in := make([]Facts, n)
	out := make([]Facts, n)
	if init == nil {
		init = Facts{}
	}
	in[cfg.Entry.Index] = init.Clone()

	// Chaotic iteration over a worklist seeded with the entry block.
	work := []*Block{cfg.Entry}
	queued := make([]bool, n)
	queued[cfg.Entry.Index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		facts := in[b.Index].Clone()
		for _, node := range b.Nodes {
			transfer(node, facts, false)
		}
		if out[b.Index] != nil && factsEqual(out[b.Index], facts) {
			continue
		}
		out[b.Index] = facts
		for _, s := range b.Succs {
			if mergeFacts(&in[s.Index], facts, join) && !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}

	// Reporting pass: one replay per reached block.
	for _, b := range cfg.Blocks {
		if in[b.Index] == nil {
			continue
		}
		facts := in[b.Index].Clone()
		for _, node := range b.Nodes {
			transfer(node, facts, true)
		}
	}
}

// mergeFacts joins src into *dst, reporting whether *dst changed.
func mergeFacts(dst *Facts, src Facts, join JoinFunc) bool {
	if *dst == nil {
		*dst = src.Clone()
		return true
	}
	changed := false
	for k, v := range src {
		old, ok := (*dst)[k]
		switch {
		case !ok:
			(*dst)[k] = v
			changed = true
		case old != v:
			merged := old
			if join != nil {
				merged = join(old, v)
			}
			if merged != old {
				(*dst)[k] = merged
				changed = true
			}
		}
	}
	return changed
}
