package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"strconv"
	"strings"
	"sync"
)

// smoothvet annotations are machine-readable contract markers written in
// doc comments:
//
//	//smoothvet:aliased        — the function's results alias receiver-owned
//	                             memory that later calls overwrite; callers
//	                             must copy before retaining (aliasretain).
//	//smoothvet:noalloc        — the function is a steady-state-zero-alloc
//	                             hot path (hotpath).
//	//smoothvet:deterministic  — the function's observable output must not
//	                             depend on wall clock, global randomness or
//	                             goroutine scheduling (determinism).
//	//smoothvet:ordered        — written on (or directly above) a map range
//	                             statement: the author asserts iteration
//	                             order cannot leak into output (determinism
//	                             suppression, meant to be rare and audited).
const (
	MarkerAliased       = "aliased"
	MarkerNoAlloc       = "noalloc"
	MarkerDeterministic = "deterministic"
	MarkerOrdered       = "ordered"
)

const markerPrefix = "//smoothvet:"

// Markers indexes the smoothvet annotations of one package.
type Markers struct {
	fset  *token.FileSet
	funcs map[*ast.FuncDecl][]string
	// byObj maps the *types.Func of a same-package declaration to its decl.
	byObj map[*types.Func]*ast.FuncDecl
	// orderedLines records "file:line" positions carrying the ordered
	// marker (the marker's own line and the one directly below it, so both
	// "above the statement" and "trailing on the statement" placements hit
	// the range statement's line).
	orderedLines map[string]bool
}

// ParseMarkers scans the pass's files once and caches the result.
func (p *Pass) ParseMarkers() *Markers {
	if p.markers != nil {
		return p.markers
	}
	m := &Markers{
		fset:         p.Fset,
		funcs:        make(map[*ast.FuncDecl][]string),
		byObj:        make(map[*types.Func]*ast.FuncDecl),
		orderedLines: make(map[string]bool),
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, markerPrefix) {
					continue
				}
				name := markerName(c.Text)
				if name != MarkerOrdered {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				m.orderedLines[lineKey(pos.Filename, pos.Line)] = true
				m.orderedLines[lineKey(pos.Filename, pos.Line+1)] = true
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			var names []string
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, markerPrefix) {
					names = append(names, markerName(c.Text))
				}
			}
			if len(names) == 0 {
				continue
			}
			m.funcs[fd] = names
			if obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				m.byObj[obj] = fd
			}
		}
	}
	p.markers = m
	return m
}

func markerName(text string) string {
	name := strings.TrimPrefix(text, markerPrefix)
	if i := strings.IndexAny(name, " \t"); i >= 0 {
		name = name[:i]
	}
	return name
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// FuncDecls returns the declared functions carrying the given marker.
func (m *Markers) FuncDecls(marker string) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for fd, names := range m.funcs {
		for _, n := range names {
			if n == marker {
				out = append(out, fd)
				break
			}
		}
	}
	return out
}

// OrderedAt reports whether the position is covered by a //smoothvet:ordered
// suppression comment.
func (m *Markers) OrderedAt(pos token.Pos) bool {
	p := m.fset.Position(pos)
	return m.orderedLines[lineKey(p.Filename, p.Line)]
}

// FuncHasMarker reports whether the function object's declaration carries
// the marker. Same-package declarations are answered from the parsed AST;
// declarations in other packages (reached through export data, which
// strips comments) are answered by reading the declaring source file at
// obj.Pos and scanning the comment block directly above the declaration.
func (m *Markers) FuncHasMarker(obj *types.Func, marker string) bool {
	if obj == nil {
		return false
	}
	if fd, ok := m.byObj[obj]; ok {
		for _, n := range m.funcs[fd] {
			if n == marker {
				return true
			}
		}
		return false
	}
	pos := m.fset.Position(obj.Pos())
	if !pos.IsValid() || pos.Filename == "" {
		return false
	}
	return fileHasMarkerAbove(pos.Filename, pos.Line, marker)
}

// declMarkerCache caches the split lines of source files consulted for
// cross-package marker lookups, shared across passes within a process.
var declMarkerCache sync.Map // filename -> []string (nil if unreadable)

// fileHasMarkerAbove reports whether the comment block directly above
// declLine in the file contains //smoothvet:<marker>. It tolerates files
// that cannot be read (the answer is then false): annotations outside the
// module — where no smoothvet contract can exist — resolve to no marker.
func fileHasMarkerAbove(filename string, declLine int, marker string) bool {
	var lines []string
	if v, ok := declMarkerCache.Load(filename); ok {
		lines = v.([]string)
	} else {
		data, err := os.ReadFile(filename)
		if err != nil {
			declMarkerCache.Store(filename, []string(nil))
			return false
		}
		lines = strings.Split(string(data), "\n")
		declMarkerCache.Store(filename, lines)
	}
	want := markerPrefix + marker
	// Scan the contiguous comment block above the declaration line
	// (declLine is 1-based; lines is 0-based).
	for i := declLine - 2; i >= 0 && i < len(lines); i-- {
		t := strings.TrimSpace(lines[i])
		if !strings.HasPrefix(t, "//") {
			break
		}
		if t == want || strings.HasPrefix(t, want+" ") {
			return true
		}
	}
	return false
}
