package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"strconv"
	"strings"
	"sync"
)

// smoothvet annotations are machine-readable contract markers written in
// doc comments:
//
//	//smoothvet:aliased        — the function's results alias receiver-owned
//	                             memory that later calls overwrite; callers
//	                             must copy before retaining (aliasretain).
//	//smoothvet:noalloc        — the function is a steady-state-zero-alloc
//	                             hot path (hotpath).
//	//smoothvet:deterministic  — the function's observable output must not
//	                             depend on wall clock, global randomness or
//	                             goroutine scheduling (determinism).
//	//smoothvet:ordered        — written on (or directly above) a map range
//	                             statement: the author asserts iteration
//	                             order cannot leak into output (determinism
//	                             suppression, meant to be rare and audited).
//	//smoothvet:confined       — on a type declaration: instances are owned
//	                             by a single goroutine; stores reaching one
//	                             instance from another's methods, goroutine
//	                             captures and unmarked channel sends are
//	                             errors (shardconfine).
//	//smoothvet:shared         — on a field of a confined type: the field is
//	                             safe for cross-goroutine access (mutex,
//	                             channel, atomic) and exempt from
//	                             confinement checks (shardconfine).
//	//smoothvet:frozen         — on a type declaration or struct field:
//	                             immutable once published; writes through
//	                             values of the type / reads of the field
//	                             after publication are errors (pubimmut).
//	//smoothvet:transfer       — written on (or directly above) a send or
//	                             goroutine statement: ownership of the
//	                             confined value moves with the operation,
//	                             audited by hand (shardconfine suppression).
const (
	MarkerAliased       = "aliased"
	MarkerNoAlloc       = "noalloc"
	MarkerDeterministic = "deterministic"
	MarkerOrdered       = "ordered"
	MarkerConfined      = "confined"
	MarkerShared        = "shared"
	MarkerFrozen        = "frozen"
	MarkerTransfer      = "transfer"
)

const markerPrefix = "//smoothvet:"

// Markers indexes the smoothvet annotations of one package.
type Markers struct {
	fset  *token.FileSet
	funcs map[*ast.FuncDecl][]string
	// byObj maps the *types.Func of a same-package declaration to its decl.
	byObj map[*types.Func]*ast.FuncDecl
	// types maps same-package type names to their declaration markers.
	types map[*types.TypeName][]string
	// fields maps same-package struct fields to their markers (from the
	// field's doc comment or trailing line comment).
	fields map[*types.Var][]string
	// orderedLines records "file:line" positions carrying the ordered
	// marker (the marker's own line and the one directly below it, so both
	// "above the statement" and "trailing on the statement" placements hit
	// the range statement's line).
	orderedLines map[string]bool
	// transferLines is the same scheme for the transfer marker.
	transferLines map[string]bool
}

// ParseMarkers scans the pass's files once and caches the result.
func (p *Pass) ParseMarkers() *Markers {
	if p.markers != nil {
		return p.markers
	}
	m := &Markers{
		fset:          p.Fset,
		funcs:         make(map[*ast.FuncDecl][]string),
		byObj:         make(map[*types.Func]*ast.FuncDecl),
		types:         make(map[*types.TypeName][]string),
		fields:        make(map[*types.Var][]string),
		orderedLines:  make(map[string]bool),
		transferLines: make(map[string]bool),
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, markerPrefix) {
					continue
				}
				var lines map[string]bool
				switch markerName(c.Text) {
				case MarkerOrdered:
					lines = m.orderedLines
				case MarkerTransfer:
					lines = m.transferLines
				default:
					continue
				}
				pos := p.Fset.Position(c.Pos())
				lines[lineKey(pos.Filename, pos.Line)] = true
				lines[lineKey(pos.Filename, pos.Line+1)] = true
			}
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				names := commentMarkers(d.Doc)
				if len(names) == 0 {
					continue
				}
				m.funcs[d] = names
				if obj, ok := p.TypesInfo.Defs[d.Name].(*types.Func); ok {
					m.byObj[obj] = d
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					names := commentMarkers(ts.Doc)
					// A single-spec `type name ...` declaration carries its
					// doc on the GenDecl, not the TypeSpec.
					if len(d.Specs) == 1 {
						names = append(names, commentMarkers(d.Doc)...)
					}
					if len(names) > 0 {
						if obj, ok := p.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
							m.types[obj] = names
						}
					}
					m.parseFieldMarkers(p, ts.Type)
				}
			}
		}
	}
	p.markers = m
	return m
}

// parseFieldMarkers indexes struct fields (at any nesting depth under a
// type spec) whose doc or trailing comment carries a smoothvet marker.
func (m *Markers) parseFieldMarkers(p *Pass, typ ast.Expr) {
	ast.Inspect(typ, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			names := append(commentMarkers(field.Doc), commentMarkers(field.Comment)...)
			if len(names) == 0 {
				continue
			}
			for _, id := range field.Names {
				if obj, ok := p.TypesInfo.Defs[id].(*types.Var); ok {
					m.fields[obj] = names
				}
			}
		}
		return true
	})
}

// commentMarkers extracts the smoothvet marker names in a comment group.
func commentMarkers(cg *ast.CommentGroup) []string {
	if cg == nil {
		return nil
	}
	var names []string
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, markerPrefix) {
			names = append(names, markerName(c.Text))
		}
	}
	return names
}

func markerName(text string) string {
	name := strings.TrimPrefix(text, markerPrefix)
	if i := strings.IndexAny(name, " \t"); i >= 0 {
		name = name[:i]
	}
	return name
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// FuncDecls returns the declared functions carrying the given marker.
func (m *Markers) FuncDecls(marker string) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for fd, names := range m.funcs {
		for _, n := range names {
			if n == marker {
				out = append(out, fd)
				break
			}
		}
	}
	return out
}

// OrderedAt reports whether the position is covered by a //smoothvet:ordered
// suppression comment.
func (m *Markers) OrderedAt(pos token.Pos) bool {
	p := m.fset.Position(pos)
	return m.orderedLines[lineKey(p.Filename, p.Line)]
}

// TransferAt reports whether the position is covered by a
// //smoothvet:transfer ownership-move comment.
func (m *Markers) TransferAt(pos token.Pos) bool {
	p := m.fset.Position(pos)
	return m.transferLines[lineKey(p.Filename, p.Line)]
}

// TypeHasMarker reports whether the type's declaration carries the marker.
// Named and pointer-to-named types resolve through their *types.TypeName;
// same-package declarations are answered from the parsed AST, cross-package
// ones by reading the declaring source file (export data strips comments).
func (m *Markers) TypeHasMarker(t types.Type, marker string) bool {
	obj := namedTypeName(t)
	if obj == nil {
		return false
	}
	if names, ok := m.types[obj]; ok {
		return containsMarker(names, marker)
	}
	if obj.Pkg() == nil {
		return false
	}
	pos := m.fset.Position(obj.Pos())
	if !pos.IsValid() || pos.Filename == "" {
		return false
	}
	return fileHasMarkerAbove(pos.Filename, pos.Line, marker)
}

// FieldHasMarker reports whether the struct field's declaration carries the
// marker (in its doc comment or trailing line comment). Cross-package
// fields are answered from the declaring source file, checking both the
// comment block above the field and the field's own line.
func (m *Markers) FieldHasMarker(obj *types.Var, marker string) bool {
	if obj == nil {
		return false
	}
	if names, ok := m.fields[obj]; ok {
		return containsMarker(names, marker)
	}
	if obj.Pkg() == nil {
		return false
	}
	pos := m.fset.Position(obj.Pos())
	if !pos.IsValid() || pos.Filename == "" {
		return false
	}
	return fileHasMarkerAbove(pos.Filename, pos.Line, marker) ||
		fileHasMarkerOn(pos.Filename, pos.Line, marker)
}

// namedTypeName unwraps pointers and aliases to the defining *types.TypeName.
func namedTypeName(t types.Type) *types.TypeName {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt.Obj()
		default:
			return nil
		}
	}
}

func containsMarker(names []string, marker string) bool {
	for _, n := range names {
		if n == marker {
			return true
		}
	}
	return false
}

// FuncHasMarker reports whether the function object's declaration carries
// the marker. Same-package declarations are answered from the parsed AST;
// declarations in other packages (reached through export data, which
// strips comments) are answered by reading the declaring source file at
// obj.Pos and scanning the comment block directly above the declaration.
func (m *Markers) FuncHasMarker(obj *types.Func, marker string) bool {
	if obj == nil {
		return false
	}
	if fd, ok := m.byObj[obj]; ok {
		for _, n := range m.funcs[fd] {
			if n == marker {
				return true
			}
		}
		return false
	}
	pos := m.fset.Position(obj.Pos())
	if !pos.IsValid() || pos.Filename == "" {
		return false
	}
	return fileHasMarkerAbove(pos.Filename, pos.Line, marker)
}

// declMarkerCache caches the split lines of source files consulted for
// cross-package marker lookups, shared across passes within a process.
var declMarkerCache sync.Map // filename -> []string (nil if unreadable)

// declFileLines returns the cached lines of a source file (nil when the
// file cannot be read: annotations outside the module resolve to no marker).
func declFileLines(filename string) []string {
	if v, ok := declMarkerCache.Load(filename); ok {
		return v.([]string)
	}
	data, err := os.ReadFile(filename)
	if err != nil {
		declMarkerCache.Store(filename, []string(nil))
		return nil
	}
	lines := strings.Split(string(data), "\n")
	declMarkerCache.Store(filename, lines)
	return lines
}

// fileHasMarkerAbove reports whether the comment block directly above
// declLine in the file contains //smoothvet:<marker>. It tolerates files
// that cannot be read (the answer is then false): annotations outside the
// module — where no smoothvet contract can exist — resolve to no marker.
func fileHasMarkerAbove(filename string, declLine int, marker string) bool {
	lines := declFileLines(filename)
	want := markerPrefix + marker
	// Scan the contiguous comment block above the declaration line
	// (declLine is 1-based; lines is 0-based).
	for i := declLine - 2; i >= 0 && i < len(lines); i-- {
		t := strings.TrimSpace(lines[i])
		if !strings.HasPrefix(t, "//") {
			break
		}
		if t == want || strings.HasPrefix(t, want+" ") {
			return true
		}
	}
	return false
}

// fileHasMarkerOn reports whether the declaration line itself carries a
// trailing //smoothvet:<marker> comment (the struct-field placement).
func fileHasMarkerOn(filename string, declLine int, marker string) bool {
	lines := declFileLines(filename)
	if declLine-1 < 0 || declLine-1 >= len(lines) {
		return false
	}
	line := lines[declLine-1]
	i := strings.Index(line, markerPrefix)
	if i < 0 {
		return false
	}
	return markerName(line[i:]) == marker
}
