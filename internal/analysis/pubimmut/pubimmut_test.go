package pubimmut

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestPubImmut(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "pubimmutdata")
}
