// Package pubimmut defines a smoothvet analyzer enforcing
// freeze-at-publication for shared plans. A type or struct field marked
// //smoothvet:frozen (the cohort plans, the engine's pre-built offer
// slices) may be filled in freely while the value is *fresh* — locally
// constructed and not yet visible to another goroutine — and must never be
// written again once *published* (read back out of a struct, map, channel
// or call result, or handed off by storing a fresh local into one). The
// analyzer flags, flow-sensitively per function over the framework CFG:
//
//   - stores to a frozen field (or any field of a frozen type) through a
//     published reference — including element stores like c.wire[i] = b;
//   - append to a frozen slice reached from a published reference (append
//     may write into the published backing array);
//   - stores or appends through a local alias of published frozen state
//     (w := c.wire; w[0] = …).
//
// Publication is modeled as the lattice transition fresh → published: a
// fresh local stored into any field, slice, map or channel is published
// from that statement on, so the build-then-publish idiom (construct,
// fill, store under sync.Once) passes while a write after the publishing
// store on any path is flagged. Call results are published by convention:
// a function returning a frozen value returns the shared copy. Function
// literal bodies are analyzed as separate functions; their captured
// locals are presumed published.
package pubimmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the pubimmut analyzer.
var Analyzer = &framework.Analyzer{
	Name: "pubimmut",
	Doc: "report writes to //smoothvet:frozen values after publication: frozen " +
		"state may be filled only while fresh and local, never once shared",
	Run: run,
}

// The lattice: fresh < alias < published, join = max.
const (
	fresh     = "fresh"
	alias     = "alias"
	published = "published"
)

func rank(v string) int {
	switch v {
	case fresh:
		return 0
	case alias:
		return 1
	default:
		return 2
	}
}

func run(pass *framework.Pass) error {
	markers := pass.ParseMarkers()
	c := &checker{pass: pass, markers: markers}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkBody(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					c.checkBody(lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

type checker struct {
	pass    *framework.Pass
	markers *framework.Markers
}

func (c *checker) checkBody(body *ast.BlockStmt) {
	cfg := framework.NewCFG(body)
	framework.RunFlow(cfg, framework.Facts{}, c.transfer, func(a, b string) string {
		if rank(a) >= rank(b) {
			return a
		}
		return b
	})
}

// frozenType reports whether t is (a pointer to) a //smoothvet:frozen type.
func (c *checker) frozenType(t types.Type) bool {
	if t == nil {
		return false
	}
	return c.markers.TypeHasMarker(t, framework.MarkerFrozen)
}

func (c *checker) transfer(n ast.Node, facts framework.Facts, report bool) {
	if report {
		// RangeHead is a synthetic node ast.Inspect cannot walk; a range
		// expression cannot contain an append destination anyway.
		if _, synthetic := n.(*framework.RangeHead); !synthetic {
			c.checkAppends(n, facts)
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if report {
			for _, lhs := range n.Lhs {
				c.checkStore(lhs, facts)
			}
		}
		c.applyAssign(n, facts)

	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				obj := c.pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if i < len(vs.Values) {
					facts[obj] = c.classify(vs.Values[i], facts)
				} else if len(vs.Values) == 0 {
					facts[obj] = fresh // zero value
				}
			}
		}

	case *ast.IncDecStmt:
		if report {
			c.checkStore(n.X, facts)
		}

	case *ast.SendStmt:
		c.publish(n.Value, facts)

	case *framework.RangeHead:
		cls := c.classify(n.Range.X, facts)
		for _, e := range []ast.Expr{n.Range.Key, n.Range.Value} {
			id, ok := e.(*ast.Ident)
			if !ok {
				continue
			}
			if obj := c.identObj(id); obj != nil {
				facts[obj] = cls
			}
		}
	}
}

// applyAssign updates facts for assigned identifiers and publishes fresh
// values that escape through a stored reference.
func (c *checker) applyAssign(n *ast.AssignStmt, facts framework.Facts) {
	// A fresh local stored anywhere but a plain local rebinding escapes.
	escape := false
	for _, lhs := range n.Lhs {
		if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
			escape = true
		}
	}
	if escape {
		for _, rhs := range n.Rhs {
			c.publish(rhs, facts)
		}
	}
	for i, lhs := range n.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := c.identObj(id)
		if obj == nil {
			continue
		}
		var rhs ast.Expr
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		} else if len(n.Rhs) == 1 {
			rhs = n.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		facts[obj] = c.classify(rhs, facts)
	}
}

// publish demotes a fresh identifier to published.
func (c *checker) publish(e ast.Expr, facts framework.Facts) {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := c.identObj(id); obj != nil {
			if cur, ok := facts[obj]; !ok || cur == fresh {
				facts[obj] = published
			}
		}
	}
}

// checkStore flags writes whose target chain reaches frozen state from a
// published or aliased reference.
func (c *checker) checkStore(lhs ast.Expr, facts framework.Facts) {
	e := lhs
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			sel, ok := c.pass.TypesInfo.Selections[t]
			if ok && sel.Kind() == types.FieldVal {
				field, _ := sel.Obj().(*types.Var)
				frozenOwner := c.frozenType(c.typeOf(t.X))
				frozenField := c.markers.FieldHasMarker(field, framework.MarkerFrozen)
				if frozenOwner || frozenField {
					if cls := c.classify(t.X, facts); cls != fresh {
						what := "field " + field.Name() + " of frozen " +
							types.TypeString(c.typeOf(t.X), types.RelativeTo(c.pass.Pkg))
						if frozenField && !frozenOwner {
							what = "frozen field " + field.Name()
						}
						c.pass.Reportf(lhs.Pos(),
							"write to %s after publication; frozen state may only be filled while fresh and local", what)
					}
					return
				}
			}
			e = t.X
		case *ast.Ident:
			if obj := c.identObj(t); obj != nil && facts[obj] == alias {
				c.pass.Reportf(lhs.Pos(),
					"write through %s, an alias of published frozen state", t.Name)
			}
			return
		default:
			return
		}
	}
}

// checkAppends flags append calls whose destination is published frozen
// state, anywhere inside the node (function literal bodies excluded — they
// are analyzed separately).
func (c *checker) checkAppends(n ast.Node, facts framework.Facts) {
	ast.Inspect(n, func(inner ast.Node) bool {
		if _, ok := inner.(*ast.FuncLit); ok {
			return false
		}
		call, ok := inner.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			return true
		}
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		c.checkAppendDest(call, call.Args[0], facts)
		return true
	})
}

func (c *checker) checkAppendDest(call *ast.CallExpr, dst ast.Expr, facts framework.Facts) {
	e := dst
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = t.X
		case *ast.SelectorExpr:
			sel, ok := c.pass.TypesInfo.Selections[t]
			if ok && sel.Kind() == types.FieldVal {
				field, _ := sel.Obj().(*types.Var)
				if c.frozenType(c.typeOf(t.X)) || c.markers.FieldHasMarker(field, framework.MarkerFrozen) {
					if cls := c.classify(t.X, facts); cls != fresh {
						c.pass.Reportf(call.Pos(),
							"append to frozen slice %s after publication; append may write into the shared backing array",
							field.Name())
					}
					return
				}
			}
			e = t.X
		case *ast.Ident:
			if obj := c.identObj(t); obj != nil && facts[obj] == alias {
				c.pass.Reportf(call.Pos(),
					"append through %s, an alias of published frozen state", t.Name)
			}
			return
		default:
			return
		}
	}
}

// classify resolves the publication state of an expression.
func (c *checker) classify(e ast.Expr, facts framework.Facts) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.identObj(e)
		if obj == nil {
			return published
		}
		if cls, ok := facts[obj]; ok {
			return cls
		}
		return published
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.classify(e.X, facts)
		}
		return published // <-ch and others: shared origin
	case *ast.CompositeLit:
		return fresh
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "new", "make":
					return fresh
				case "append":
					// append result keeps the state of its destination.
					if len(e.Args) > 0 {
						return c.classify(e.Args[0], facts)
					}
				}
			}
		}
		return published
	case *ast.SelectorExpr:
		// Reading frozen state out of a published holder yields an alias;
		// everything else read out of a structure is published.
		sel, ok := c.pass.TypesInfo.Selections[e]
		if ok && sel.Kind() == types.FieldVal {
			field, _ := sel.Obj().(*types.Var)
			if c.frozenType(c.typeOf(e.X)) || c.markers.FieldHasMarker(field, framework.MarkerFrozen) {
				if c.classify(e.X, facts) == fresh {
					return fresh
				}
				return alias
			}
		}
		return published
	case *ast.IndexExpr:
		return c.classify(e.X, facts)
	case *ast.StarExpr:
		return c.classify(e.X, facts)
	default:
		return published
	}
}

func (c *checker) identObj(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Defs[id]
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	return c.pass.TypesInfo.TypeOf(e)
}
