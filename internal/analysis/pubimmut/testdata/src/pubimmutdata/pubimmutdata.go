// Package pubimmutdata seeds post-publication writes to frozen state, next
// to the sanctioned build-then-publish idiom.
package pubimmutdata

import "sync"

// plan is frozen at publication: filled while fresh, immutable once shared.
//
//smoothvet:frozen
type plan struct {
	wire  []byte
	off   []int32
	drops []int32
}

type entry struct {
	once sync.Once
	p    *plan
}

type engine struct {
	entries map[int]*entry
	offers  []int //smoothvet:frozen
	scratch []int
}

// build is the sanctioned idiom: construct, fill, hand to the caller.
func build(n int) *plan {
	p := &plan{}
	for i := 0; i < n; i++ {
		p.drops = append(p.drops, int32(i)) // ok: fresh, under construction
	}
	p.wire = make([]byte, n) // ok: fresh
	p.off = []int32{0}       // ok: fresh
	return p
}

// lookup publishes through a sync.Once and returns the shared plan.
func (e *engine) lookup(k int) *plan {
	ent := e.entries[k]
	ent.once.Do(func() { ent.p = build(k) })
	return ent.p
}

// mutateShared writes a plan read back out of the cache: the violation.
func (e *engine) mutateShared(k int) {
	p := e.entries[k].p
	p.wire[0] = 1                // want `write to field wire of frozen \*plan after publication`
	p.off = nil                  // want `write to field off of frozen \*plan after publication`
	p.drops = append(p.drops, 9) // want `write to field drops of frozen \*plan after publication` `append to frozen slice drops after publication`
	q := lookupGlobal()
	q.wire = nil // want `write to field wire of frozen \*plan after publication`
}

func lookupGlobal() *plan { return nil }

// aliasWrite launders the write through a local alias of the frozen slice.
func (e *engine) aliasWrite(k int) {
	p := e.entries[k].p
	w := p.wire
	w[0] = 1 // want `write through w, an alias of published frozen state`
}

// publishThenWrite: fresh until stored, flagged after on every path.
func (e *engine) publishThenWrite(k int) {
	p := &plan{}
	p.wire = make([]byte, 4) // ok: fresh
	e.entries[k].p = p       // publication
	p.wire[0] = 1            // want `write to field wire of frozen \*plan after publication`
}

// branchPublish: published on one path only — the join is still published.
func (e *engine) branchPublish(k int, share bool) {
	p := &plan{}
	if share {
		e.entries[k].p = p
	}
	p.off = append(p.off, 1) // want `write to field off of frozen \*plan after publication` `append to frozen slice off after publication`
}

// frozenField: a marked field on an unmarked type obeys the same rule.
func (e *engine) frozenField() {
	e.offers[0] = 1                    // want `write to frozen field offers after publication`
	e.scratch = append(e.scratch, 1)   // ok: unmarked field
	freshEngine().offers = []int{1, 2} // want `write to frozen field offers after publication`
}

// freshEngine may fill its own frozen field while the value is fresh.
func freshEngine() *engine {
	e := &engine{}
	e.offers = append(e.offers, 1) // ok: fresh
	return e
}

// methodWrite: the receiver of a method on a frozen type is published.
func (p *plan) methodWrite() {
	p.off[0] = 1 // want `write to field off of frozen \*plan after publication`
}
