package analysis

import (
	"os"
	"strings"
	"testing"
)

// infraDirs are the subpackages of internal/analysis that are not
// analyzers and therefore have no registry entry.
var infraDirs = map[string]bool{
	"framework":    true,
	"unitcheck":    true,
	"analysistest": true,
}

// TestEveryAnalyzerRegistered catches the add-an-analyzer-forget-to-wire-it
// failure mode: every analyzer subpackage must appear in All(), named after
// its directory, with non-empty documentation, and All() must stay sorted
// so the suite's order (and the -V content hash downstream) is stable.
func TestEveryAnalyzerRegistered(t *testing.T) {
	registered := make(map[string]bool)
	var prev string
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Name, Doc or Run", a.Name)
		}
		if prev != "" && a.Name <= prev {
			t.Errorf("All() not sorted: %q follows %q", a.Name, prev)
		}
		prev = a.Name
		registered[a.Name] = true
	}

	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if !e.IsDir() || infraDirs[e.Name()] || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		dirs = append(dirs, e.Name())
	}
	if len(dirs) == 0 {
		t.Fatal("no analyzer subpackages found; wrong working directory?")
	}
	for _, dir := range dirs {
		if !registered[dir] {
			t.Errorf("subpackage %q is not registered in All() (or its Analyzer.Name differs from the directory name)", dir)
		}
		delete(registered, dir)
	}
	for name := range registered {
		t.Errorf("registered analyzer %q has no subpackage directory", name)
	}
}
