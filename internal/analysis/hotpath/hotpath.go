// Package hotpath implements the smoothvet analyzer that keeps the
// benchmarked 0 allocs/op claims honest: functions annotated
// //smoothvet:noalloc (the core Server.Step loop, the netstream codec, the
// serving engine's per-step path) are checked for constructs that allocate
// on the steady-state path.
//
// Flagged: func literals (closure allocation), go statements, new, make
// outside a cap()-guarded amortized-growth branch, map/slice literals,
// addresses of composite literals that are retained (direct call arguments
// are exempt — they usually stay on the stack), append whose result lands
// in a different variable than its source (self-append `x = append(x, ...)`
// and `return append(x, ...)` are the sanctioned amortized idioms),
// string<->[]byte/[]rune conversions, and implicit interface conversions
// (boxing) in assignments, call arguments, and returns.
//
// Error exits are exempt: any return statement whose final result is a
// (possibly constructed) non-nil error suppresses diagnostics inside it —
// wrapping with fmt.Errorf on the failure path does not violate the
// steady-state contract.
//
// Deliberately not flagged (amortized or allocation-free): map reads,
// map writes and deletes on retained maps, struct composite values, and
// slicing.
//
// Unmarked functions a noalloc root reaches through the package call
// graph get a reduced rule set — only func literals and go statements,
// the unconditional allocators — so hot helpers cannot hide a closure
// behind a missing marker while their error branches stay quiet.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the hot-path allocation checker.
var Analyzer = &framework.Analyzer{
	Name: "hotpath",
	Doc:  "report allocating constructs inside //smoothvet:noalloc functions",
	Run:  run,
}

func run(pass *framework.Pass) error {
	markers := pass.ParseMarkers()
	marked := make(map[*ast.FuncDecl]bool)
	roots := make(map[*ast.FuncDecl]string)
	for _, fd := range markers.FuncDecls(framework.MarkerNoAlloc) {
		marked[fd] = true
		roots[fd] = framework.MarkerNoAlloc
		if fd.Body != nil {
			check(pass, fd)
		}
	}
	// Unmarked helpers reachable from a noalloc root are on the hot path
	// too. The full rule set would drown their error branches in noise, so
	// only the unconditional allocators — closures and goroutine spawns —
	// are flagged there; the rest of the contract asks for an explicit
	// marker on the helper.
	reach := pass.BuildCallGraph().ReachableFrom(roots)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || marked[fd] {
				continue
			}
			how, ok := reach[fd]
			if !ok {
				continue
			}
			checkReachable(pass, fd, how.Root)
		}
	}
	return nil
}

// checkReachable flags closure and goroutine allocation in an unmarked
// function that a //smoothvet:noalloc root reaches through the package
// call graph.
func checkReachable(pass *framework.Pass, fd, root *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "func literal allocates a closure on a //smoothvet:noalloc path (reachable from %s)", root.Name.Name)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates a goroutine on a //smoothvet:noalloc path (reachable from %s)", root.Name.Name)
			return false
		}
		return true
	})
}

// checker walks one noalloc function keeping the ancestor context needed
// by the exemption rules.
type checker struct {
	pass     *framework.Pass
	fd       *ast.FuncDecl
	suppress []posRange // error-exit returns
	capGuard []posRange // if-bodies guarded by a cap() comparison
}

type posRange struct{ lo, hi token.Pos }

func (c *checker) suppressed(p token.Pos) bool {
	for _, r := range c.suppress {
		if r.lo <= p && p <= r.hi {
			return true
		}
	}
	return false
}

func (c *checker) capGuarded(p token.Pos) bool {
	for _, r := range c.capGuard {
		if r.lo <= p && p <= r.hi {
			return true
		}
	}
	return false
}

func check(pass *framework.Pass, fd *ast.FuncDecl) {
	c := &checker{pass: pass, fd: fd}
	// Pass 1: collect exemption regions.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if c.isErrorExit(n) {
				c.suppress = append(c.suppress, posRange{n.Pos(), n.End()})
			}
		case *ast.IfStmt:
			if containsCapCall(n.Cond) {
				c.capGuard = append(c.capGuard, posRange{n.Body.Pos(), n.Body.End()})
			}
		}
		return true
	})
	// Pass 2: report allocating constructs.
	c.walk(fd.Body)
}

// isErrorExit reports whether the return's last result is an error-typed
// expression other than the literal nil.
func (c *checker) isErrorExit(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false
	}
	last := ret.Results[len(ret.Results)-1]
	if id, ok := ast.Unparen(last).(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	t := c.pass.TypesInfo.TypeOf(last)
	return t != nil && isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorType)
}

func containsCapCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "cap" {
				found = true
			}
		}
		return !found
	})
	return found
}

// walk recursively checks n; it handles the contexts (assignments,
// returns, call arguments) that change how children are judged.
func (c *checker) walk(n ast.Node) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.FuncLit:
		c.report(n.Pos(), "func literal allocates a closure")
		return // the literal's body is not the annotated hot path

	case *ast.GoStmt:
		c.report(n.Pos(), "go statement allocates a goroutine")
		return

	case *ast.AssignStmt:
		for i, rhs := range n.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && c.isBuiltin(call, "append") && i < len(n.Lhs) {
				if types.ExprString(ast.Unparen(n.Lhs[i])) != types.ExprString(ast.Unparen(call.Args[0])) {
					c.report(call.Pos(), "append result assigned to a different variable always allocates; use the self-append idiom x = append(x, ...)")
				}
				// Judge the append's operands, not the append itself.
				for _, a := range call.Args {
					c.walkExpr(a, false)
				}
				continue
			}
			c.walkExpr(rhs, false)
			// Implicit boxing: concrete value assigned to interface target.
			if i < len(n.Lhs) && len(n.Lhs) == len(n.Rhs) {
				c.checkBox(c.pass.TypesInfo.TypeOf(n.Lhs[i]), rhs)
			}
		}
		for _, lhs := range n.Lhs {
			c.walkExpr(lhs, false)
		}
		return

	case *ast.ReturnStmt:
		if c.suppressed(n.Pos()) {
			return
		}
		sig := c.signature()
		for i, res := range n.Results {
			if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && c.isBuiltin(call, "append") {
				// Returning an append continues the caller's amortized
				// buffer — the append-style encoder idiom.
				for _, a := range call.Args {
					c.walkExpr(a, false)
				}
				continue
			}
			c.walkExpr(res, false)
			if sig != nil && sig.Results().Len() == len(n.Results) {
				c.checkBox(sig.Results().At(i).Type(), res)
			}
		}
		return

	case ast.Expr:
		c.walkExpr(n, false)
		return
	}

	// Generic statement: recurse over children via Inspect one level at a
	// time is fiddly; instead reuse Inspect but cut off at nodes the cases
	// above own.
	ast.Inspect(n, func(m ast.Node) bool {
		if m == n || m == nil {
			return true
		}
		switch m.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.AssignStmt, *ast.ReturnStmt:
			c.walk(m)
			return false
		case ast.Expr:
			c.walkExpr(m.(ast.Expr), false)
			return false
		}
		return true
	})
}

// walkExpr checks one expression tree. directArg is true when e is an
// immediate argument of a call (the &T{} stack-friendly position).
func (c *checker) walkExpr(e ast.Expr, directArg bool) {
	if e == nil || c.suppressed(e.Pos()) {
		return
	}
	switch e := e.(type) {
	case *ast.FuncLit:
		c.report(e.Pos(), "func literal allocates a closure")
		return

	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok && !directArg {
				c.report(e.Pos(), "address of composite literal escapes and allocates; reuse a struct or pass it as a direct call argument")
				return
			}
		}
		c.walkExpr(e.X, false)

	case *ast.CompositeLit:
		switch c.pass.TypesInfo.TypeOf(e).Underlying().(type) {
		case *types.Map:
			c.report(e.Pos(), "map literal allocates")
		case *types.Slice:
			c.report(e.Pos(), "slice literal allocates")
		}
		for _, el := range e.Elts {
			c.walkExpr(el, false)
		}

	case *ast.KeyValueExpr:
		c.walkExpr(e.Value, false)

	case *ast.CallExpr:
		c.checkCall(e)

	case *ast.ParenExpr:
		c.walkExpr(e.X, directArg)

	case *ast.BinaryExpr:
		c.walkExpr(e.X, false)
		c.walkExpr(e.Y, false)

	case *ast.StarExpr:
		c.walkExpr(e.X, false)

	case *ast.SelectorExpr:
		c.walkExpr(e.X, false)

	case *ast.IndexExpr:
		c.walkExpr(e.X, false)
		c.walkExpr(e.Index, false)

	case *ast.SliceExpr:
		c.walkExpr(e.X, false)
		c.walkExpr(e.Low, false)
		c.walkExpr(e.High, false)
		c.walkExpr(e.Max, false)

	case *ast.TypeAssertExpr:
		c.walkExpr(e.X, false)
	}
}

func (c *checker) checkCall(call *ast.CallExpr) {
	tv, isConv := c.pass.TypesInfo.Types[call.Fun]
	switch {
	case c.isBuiltin(call, "new"):
		c.report(call.Pos(), "new allocates; reuse a field or local")
		return
	case c.isBuiltin(call, "make"):
		if !c.capGuarded(call.Pos()) {
			c.report(call.Pos(), "make allocates on every call; amortize growth behind an `if cap(buf) < n` guard")
		}
		for _, a := range call.Args[1:] {
			c.walkExpr(a, false)
		}
		return
	case c.isBuiltin(call, "append"):
		// An append outside the sanctioned assignment/return positions
		// produces a fresh backing array the moment it grows.
		c.report(call.Pos(), "append result is not reassigned to its source; growth allocates a new backing array")
		for _, a := range call.Args {
			c.walkExpr(a, false)
		}
		return
	case isConv && tv.IsType():
		// Conversion: string <-> []byte/[]rune copies.
		if tv.Value == nil && len(call.Args) == 1 && isStringBytesConv(tv.Type, c.pass.TypesInfo.TypeOf(call.Args[0])) {
			c.report(call.Pos(), "string/byte-slice conversion copies its operand")
		}
		for _, a := range call.Args {
			c.walkExpr(a, false)
		}
		return
	}

	c.walkExpr(call.Fun, false)
	sig := calleeSignature(c.pass, call)
	for i, a := range call.Args {
		c.walkExpr(a, true)
		if sig != nil && !call.Ellipsis.IsValid() {
			c.checkBox(paramType(sig, i), a)
		}
	}
}

// checkBox reports an implicit concrete-to-interface conversion.
func (c *checker) checkBox(target types.Type, val ast.Expr) {
	if target == nil || c.suppressed(val.Pos()) {
		return
	}
	if !types.IsInterface(target) {
		return
	}
	vt := c.pass.TypesInfo.TypeOf(val)
	if vt == nil || types.IsInterface(vt) {
		return
	}
	if b, ok := vt.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	c.report(val.Pos(), "implicit conversion to %s boxes the value and allocates", target)
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.suppressed(pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func (c *checker) signature() *types.Signature {
	if obj, ok := c.pass.TypesInfo.Defs[c.fd.Name].(*types.Func); ok {
		return obj.Type().(*types.Signature)
	}
	return nil
}

// calleeSignature resolves the static signature of a call, if any.
func calleeSignature(pass *framework.Pass, call *ast.CallExpr) *types.Signature {
	t := pass.TypesInfo.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// paramType returns the type the i-th argument converts to, unrolling the
// variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if sl, ok := last.Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// isStringBytesConv reports a string <-> []byte/[]rune conversion.
func isStringBytesConv(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}
