// Package hotpathdata seeds allocation violations inside
// //smoothvet:noalloc functions, next to the sanctioned idioms.
package hotpathdata

import "fmt"

type buf struct {
	scratch []byte
	out     []int
}

func work() {}

func consume(v any) {}

func take(p *buf) {}

// good uses only the sanctioned steady-state idioms.
//
//smoothvet:noalloc
func good(b *buf, n int, xs []int) []int {
	if cap(b.scratch) < n {
		b.scratch = make([]byte, n) // ok: cap-guarded amortized growth
	}
	b.out = b.out[:0]
	for _, x := range xs {
		b.out = append(b.out, x) // ok: self-append
	}
	take(&buf{}) // ok: composite address as a direct call argument
	return b.out
}

// appendStyle is the append-style encoder shape.
//
//smoothvet:noalloc
func appendStyle(dst []byte, v byte) []byte {
	dst = append(dst, v)
	return append(dst, v) // ok: continues the caller's buffer
}

// errPath may allocate on the failure exit.
//
//smoothvet:noalloc
func errPath(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("bad n %d", n) // ok: error exit is exempt
	}
	return nil, nil
}

//smoothvet:noalloc
func bad(b *buf, xs []int, s string) {
	f := func() {} // want `func literal allocates a closure`
	f()
	go work()     // want `go statement allocates a goroutine`
	p := new(buf) // want `new allocates`
	_ = p
	m := make(map[int]int) // want `make allocates on every call`
	_ = m
	lit := []int{1, 2, 3} // want `slice literal allocates`
	_ = lit
	y := append(xs, 1) // want `append result assigned to a different variable`
	_ = y
	bs := []byte(s) // want `string/byte-slice conversion copies`
	_ = bs
	var i any
	i = 7 // want `boxes the value and allocates`
	_ = i
	consume(42) // want `boxes the value and allocates`
	d := &buf{} // want `address of composite literal escapes`
	_ = d
}

// unmarked is outside the contract: nothing is flagged.
func unmarked() []int {
	return []int{1, 2, 3} // ok: not a noalloc function
}

// hot reaches helper through the call graph: helper's closures and
// goroutine spawns are on the hot path even without its own marker.
//
//smoothvet:noalloc
func hot(n int) int {
	return helper(n)
}

// helper is unmarked but reachable from hot; only the unconditional
// allocators are flagged here.
func helper(n int) int {
	f := func() int { return n } // want `func literal allocates a closure on a //smoothvet:noalloc path \(reachable from hot\)`
	go work()                    // want `go statement allocates a goroutine on a //smoothvet:noalloc path \(reachable from hot\)`
	m := make([]int, n)          // ok: reachable-but-unmarked functions get only the closure/go rules
	return f() + len(m)
}

// coldHelper is not reachable from any noalloc root: closures are fine.
func coldHelper() func() {
	return func() {} // ok: off the hot path
}
