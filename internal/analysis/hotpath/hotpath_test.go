package hotpath

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "hotpathdata")
}
