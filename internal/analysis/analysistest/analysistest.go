// Package analysistest runs a framework.Analyzer over a testdata package
// and checks its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (reimplemented on the
// standard library; see package framework for why).
//
// Layout: each analyzer keeps testdata/src/<pkg>/*.go packages. A want
// comment anchors one or more expected diagnostics to its own line:
//
//	rand.Intn(6) // want `global math/rand`
//	x := f()     // want `regexp one` `regexp two`
//
// Expectations are backquoted or double-quoted regular expressions matched
// against the diagnostic message; every diagnostic must be expected and
// every expectation must fire, or the test fails. Matching is positional:
// diagnostics are sorted by source position and each must match the next
// unconsumed expectation on its exact file and line, so two swapped
// same-line diagnostics fail. Testdata packages may import only the
// standard library (they are type-checked with the source importer so the
// harness needs no compiled artifacts).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// TestData returns the calling test's testdata/src root as an absolute path.
func TestData() string {
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		panic(err)
	}
	return dir
}

// expectation is one unconsumed // want entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

// Run analyzes dir/<pkg> for each named package and compares diagnostics
// with the // want comments in its sources.
func Run(t *testing.T, dir string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, filepath.Join(dir, pkg), pkg, a)
	}
}

func runOne(t *testing.T, dir, pkgpath string, a *framework.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: parse: %v", a.Name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no Go files in %s", a.Name, dir)
	}

	tc := &types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(error) {}, // collect every error via Check's return
	}
	info := framework.NewInfo()
	typPkg, err := tc.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("%s: typecheck %s: %v", a.Name, pkgpath, err)
	}

	want := collectWants(t, fset, files)

	var diags []framework.Diagnostic
	pass := &framework.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       typPkg,
		TypesInfo: info,
		Report:    func(d framework.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: run: %v", a.Name, err)
	}

	// Match diagnostics to expectations positionally: diagnostics are
	// ordered by source position, and each must match the *next* unconsumed
	// expectation on its exact file and line. Swapping two same-line
	// diagnostics therefore fails, as does a diagnostic drifting to a
	// neighboring line — both escaped the original any-on-the-line matcher.
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		file := filepath.Base(posn.Filename)
		var next *expectation
		for _, w := range want {
			if w.re != nil && w.file == file && w.line == posn.Line {
				next = w
				break
			}
		}
		switch {
		case next == nil:
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, file, posn.Line, d.Message)
		case !next.re.MatchString(d.Message):
			t.Errorf("%s: diagnostic at %s:%d:%d does not match the next expectation %q: %s",
				a.Name, file, posn.Line, posn.Column, next.raw, d.Message)
			next.re = nil // consume to keep later diagnostics aligned
		default:
			next.re = nil // consume
		}
	}
	var unmet []string
	for _, w := range want {
		if w.re != nil {
			unmet = append(unmet, fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw))
		}
	}
	sort.Strings(unmet)
	for _, u := range unmet {
		t.Errorf("%s: %s", a.Name, u)
	}
}

var wantRE = regexp.MustCompile("(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllString(text[i+len("// want "):], -1) {
					var pat string
					if m[0] == '`' {
						pat = m[1 : len(m)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(m)
						if err != nil {
							t.Fatalf("bad want string %s at %s: %v", m, posn, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("bad want regexp %q at %s: %v", pat, posn, err)
					}
					out = append(out, &expectation{
						file: filepath.Base(posn.Filename),
						line: posn.Line,
						re:   re,
						raw:  pat,
					})
				}
			}
		}
	}
	return out
}
