// Package unitcheck drives framework analyzers under "go vet -vettool".
//
// It speaks the vet tool protocol that cmd/go expects (the same contract
// golang.org/x/tools/go/analysis/unitchecker implements, reproduced here on
// the standard library alone because the module builds hermetically):
//
//   - "-V=full" prints a version line keyed to the tool binary's content
//     hash, so the go command's result cache invalidates when the tool
//     changes;
//   - "-flags" prints the tool's flags as JSON for cmd/go to validate
//     user-supplied analyzer flags against;
//   - otherwise the single positional argument is a JSON *.cfg file
//     describing one package unit: its Go files, the import map, and the
//     export-data file of every dependency. The tool parses and
//     type-checks the unit (resolving imports through the export data via
//     go/importer), runs the analyzers, prints diagnostics to stderr as
//     "file:line:col: message (analyzer)", and exits nonzero if any fired.
//
// Facts are not supported: the smoothvet analyzers resolve cross-package
// annotations by reading the declaring source file at the object's
// position (see framework.Markers), so no fact serialization is needed.
// The fact file (VetxOutput) demanded by cmd/go is written empty.
package unitcheck

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// Config is the JSON unit description cmd/go hands the vet tool. Field
// names and meanings follow x/tools' unitchecker.Config, which cmd/go
// treats as the interface contract.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main runs the vet tool protocol over the given analyzers and exits.
func Main(analyzers ...*framework.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	var enabled = make(map[string]*bool)
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	flag.Var(versionFlag{}, "V", "print version and exit")
	flag.Parse()

	if *printflags {
		printFlags()
		os.Exit(0)
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf(`invoking %s directly is unsupported; use "go vet -vettool=%s [packages]"`,
			progname, progname)
	}

	var keep []*framework.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			keep = append(keep, a)
		}
	}
	os.Exit(run(args[0], keep))
}

// versionFlag implements -V=full: the go command runs the tool once with
// this flag and caches vet results keyed on the reported build ID, so the
// ID must change whenever the tool binary does — a content hash delivers
// that without build-system cooperation.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return false }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, h.Sum(nil))
	os.Exit(0)
	return nil
}

// printFlags emits the registered flags as the JSON array cmd/go parses to
// validate pass-through analyzer flags.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.Marshal(flags)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// run analyzes one unit and returns the process exit code.
func run(cfgFile string, analyzers []*framework.Analyzer) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		log.Print(err)
		return 1
	}

	// cmd/go expects the fact file regardless of outcome; smoothvet keeps
	// no facts, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Print(err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency units are analyzed only for facts; with none kept
		// there is nothing to do.
		return 0
	}
	if len(cfg.GoFiles) == 0 {
		// Unsafe and cgo-only units arrive file-less; nothing to analyze.
		return 0
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		log.Print(err)
		return 1
	}
	pkg, info, err := typecheck(fset, cfg, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Print(err)
		return 1
	}

	exit := 0
	for _, a := range analyzers {
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d framework.Diagnostic) {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, name)
			exit = 1
		}
		if err := a.Run(pass); err != nil {
			log.Printf("%s: %v", a.Name, err)
			return 1
		}
	}
	return exit
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", path, err)
	}
	return cfg, nil
}

func parseFiles(fset *token.FileSet, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// typecheck resolves the unit against the export data named in the config.
func typecheck(fset *token.FileSet, cfg *Config, files []*ast.File) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(importPath string) (io.ReadCloser, error) {
		// Resolve vendoring and test-variant mappings first.
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
	}
	var allErrs []error
	tc.Error = func(err error) { allErrs = append(allErrs, err) }
	info := framework.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		msgs := make([]string, 0, len(allErrs))
		for _, e := range allErrs {
			msgs = append(msgs, e.Error())
		}
		sort.Strings(msgs)
		return nil, nil, fmt.Errorf("typecheck %s: %s", cfg.ImportPath, strings.Join(msgs, "; "))
	}
	return pkg, info, nil
}
