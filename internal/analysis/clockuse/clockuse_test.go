package clockuse

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestClockUse(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "clockusedata")
}
