// Package clockuse defines a smoothvet analyzer pinning the time source of
// hot paths: any function reachable from a //smoothvet:noalloc root (the
// per-tick step paths of the serving and load-generating engines) must not
// read the wall clock. time.Now, time.Since and time.Until are flagged, as
// is arming SetWriteDeadline from a wall-clock read inside such a function
// — the per-write time.Now re-arm is exactly the regression the sharded
// engine's tickClock exists to prevent. Hot code takes its notion of "now"
// from the shard clock (an atomic nanosecond stamp taken once per tick or
// per reactor wake) or from an explicit monotonic now parameter.
//
// Reachability is the package call graph from the noalloc roots through
// statically resolvable calls (see framework.CallGraph); calls through
// function values and interface methods are not followed. Calls into other
// packages of this module get a one-hop summary: the callee's declaring
// source file is parsed and its body scanned for wall-clock reads, so a
// step path cannot launder time.Now through a helper package. Deeper
// cross-package chains are out of scope by design — hot helpers are
// expected to carry their own //smoothvet:noalloc marker and be vetted in
// their own package.
package clockuse

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the clockuse analyzer.
var Analyzer = &framework.Analyzer{
	Name: "clockuse",
	Doc: "report wall-clock reads (time.Now/Since/Until, deadline re-arms) in code " +
		"reachable from //smoothvet:noalloc paths, which must use the shard clock",
	Run: run,
}

// modulePrefix scopes the one-hop cross-package summaries to this module.
const modulePrefix = "repro/"

func run(pass *framework.Pass) error {
	markers := pass.ParseMarkers()
	roots := make(map[*ast.FuncDecl]string)
	for _, fd := range markers.FuncDecls(framework.MarkerNoAlloc) {
		roots[fd] = framework.MarkerNoAlloc
	}
	if len(roots) == 0 {
		return nil
	}
	g := pass.BuildCallGraph()
	reach := g.ReachableFrom(roots)

	// Deterministic order: declarations in file order.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if how, ok := reach[fd]; ok {
				c := &checker{pass: pass, fd: fd, how: how}
				ast.Inspect(fd.Body, c.check)
			}
		}
	}
	return nil
}

type checker struct {
	pass *framework.Pass
	fd   *ast.FuncDecl
	how  framework.Reach
}

// wallClockFuncs are the package-level time functions that read the wall
// clock (Since and Until call Now internally).
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func (c *checker) check(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return true
	}

	// SetWriteDeadline armed from a wall-clock read: one specific message,
	// and the inner time.Now is not reported separately.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "SetWriteDeadline" {
		for _, arg := range call.Args {
			if clock := c.findWallClockCall(arg); clock != "" {
				c.reportf(call.Pos(),
					"per-write SetWriteDeadline re-arm from time.%s", clock)
				return false
			}
		}
		return true
	}

	fn := framework.StaticCallee(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return true
	}
	switch {
	case fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()]:
		c.reportf(call.Pos(), "time.%s reads the wall clock", fn.Name())
	case fn.Pkg() != c.pass.Pkg && strings.HasPrefix(fn.Pkg().Path(), modulePrefix):
		if clock, declPos := c.calleeReadsClock(fn); clock != "" {
			c.reportf(call.Pos(), "call to %s.%s reaches time.%s (declared at %s)",
				fn.Pkg().Name(), fn.Name(), clock, declPos)
		}
	}
	return true
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	suffix := " on a //smoothvet:noalloc path; derive time from the shard clock or a monotonic now parameter"
	if c.how.Root != c.fd {
		suffix = " on a //smoothvet:noalloc path (reachable from " + c.how.Root.Name.Name +
			"); derive time from the shard clock or a monotonic now parameter"
	}
	c.pass.Reportf(pos, format+"%s", append(args, suffix)...)
}

// findWallClockCall reports the name of a wall-clock time function called
// anywhere inside e ("" when there is none).
func (c *checker) findWallClockCall(e ast.Expr) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := framework.StaticCallee(c.pass.TypesInfo, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
			found = fn.Name()
			return false
		}
		return true
	})
	return found
}

// calleeReadsClock is the one-hop cross-package summary: parse the
// declaring file of a same-module callee and scan its body syntactically
// for wall-clock reads through that file's "time" import.
func (c *checker) calleeReadsClock(fn *types.Func) (clock, declPos string) {
	posn := c.pass.Fset.Position(fn.Pos())
	if !posn.IsValid() || posn.Filename == "" {
		return "", ""
	}
	fset, fd := framework.FuncDeclAt(posn.Filename, posn.Line)
	if fd == nil {
		return "", ""
	}
	_, file := framework.DeclFile(posn.Filename)
	if file == nil {
		return "", ""
	}
	timeName := framework.ImportName(file, "time", "time")
	if timeName == "" {
		return "", ""
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if clock != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeName && wallClockFuncs[sel.Sel.Name] {
			clock = sel.Sel.Name
		}
		return true
	})
	if clock == "" {
		return "", ""
	}
	p := fset.Position(fd.Pos())
	return clock, filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}
