// Package clockusedata seeds wall-clock reads on and off noalloc paths.
package clockusedata

import (
	"sync/atomic"
	"time"
)

type conn interface {
	Write(p []byte) (int, error)
	SetWriteDeadline(t time.Time) error
}

type clock struct {
	nanos atomic.Int64
}

type shard struct {
	clk  clock
	c    conn
	last int64
}

// step is the per-tick hot path.
//
//smoothvet:noalloc
func (sh *shard) step(now int64) {
	t := time.Now() // want `time\.Now reads the wall clock on a //smoothvet:noalloc path`
	_ = t
	sh.last = now
	sh.helper()
	sh.cold()
}

// helper is unmarked but reachable from step.
func (sh *shard) helper() {
	d := time.Since(time.Unix(0, sh.clk.nanos.Load())) // want `time\.Since reads the wall clock on a //smoothvet:noalloc path \(reachable from step\)`
	_ = d
	_ = sh.c.SetWriteDeadline(time.Now().Add(time.Second)) // want `per-write SetWriteDeadline re-arm from time\.Now on a //smoothvet:noalloc path \(reachable from step\)`
}

// cold reads only the shard clock: allowed.
func (sh *shard) cold() {
	nanos := sh.clk.nanos.Load()
	deadline := time.Unix(0, nanos).Add(time.Second) // ok: conversion, not a clock read
	_ = sh.c.SetWriteDeadline(deadline)              // ok: armed from the shard clock
}

// offPath is not reachable from any noalloc root.
func (sh *shard) offPath() time.Duration {
	return time.Since(time.Unix(0, sh.last)) // ok: cold path
}

// loop exercises reachability through a loop body and a closure.
//
//smoothvet:noalloc
func (sh *shard) loop(n int) {
	for i := 0; i < n; i++ {
		f := func() {
			_ = time.Now() // want `time\.Now reads the wall clock on a //smoothvet:noalloc path`
		}
		f()
	}
}
