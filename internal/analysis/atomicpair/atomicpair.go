// Package atomicpair defines a smoothvet analyzer enforcing a uniform
// access discipline per field: once any site in the package accesses a
// variable or struct field through sync/atomic (atomic.StoreInt64(&x.f),
// atomic.LoadUint32(&x.f), Add/Swap/CompareAndSwap), every other access to
// the same field must be atomic too. A plain read racing an atomic store
// is just as much a data race as two plain writes, and it is the variant
// -race only catches when the interleaving actually happens in a test run.
//
// Fields declared with the sync/atomic wrapper types (atomic.Int64,
// atomic.Bool, …) are safe by construction — their only access path is
// method calls — and are the repository's preferred style; this analyzer
// exists to police the residual old-style call-based usages (and any that
// review lets back in).
package atomicpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/framework"
)

// Analyzer is the atomicpair analyzer.
var Analyzer = &framework.Analyzer{
	Name: "atomicpair",
	Doc: "report mixed atomic and plain access to the same variable or field: " +
		"once one site uses sync/atomic call-based access, every access must",
	Run: run,
}

// access is one recorded touch of a tracked object.
type access struct {
	pos  token.Pos
	kind string // "atomic", "write", "read"
	desc string // the atomic function name, for diagnostics
}

func run(pass *framework.Pass) error {
	c := &checker{
		pass:     pass,
		accesses: make(map[types.Object][]access),
		inAtomic: make(map[ast.Node]bool),
	}
	for _, f := range pass.Files {
		ast.Inspect(f, c.collect)
	}
	c.report()
	return nil
}

type checker struct {
	pass     *framework.Pass
	accesses map[types.Object][]access
	// inAtomic marks the &x argument expressions of sync/atomic calls so
	// the generic read collector skips them.
	inAtomic map[ast.Node]bool
}

// atomicAddrFuncs are the sync/atomic functions whose first argument is the
// address of the accessed word.
var atomicAddrFuncs = map[string]bool{
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true,
	"LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true,
	"StoreUintptr": true, "StorePointer": true,
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true,
	"AddUintptr": true,
	"SwapInt32":  true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true,
	"SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true,
	"CompareAndSwapUint32": true, "CompareAndSwapUint64": true,
	"CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func (c *checker) collect(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		name, ok := c.atomicCall(n)
		if !ok || len(n.Args) == 0 {
			return true
		}
		arg := ast.Unparen(n.Args[0])
		addr, ok := arg.(*ast.UnaryExpr)
		if !ok || addr.Op != token.AND {
			return true
		}
		if obj := c.target(addr.X); obj != nil {
			c.inAtomic[addr.X] = true
			c.record(obj, access{pos: n.Pos(), kind: "atomic", desc: "atomic." + name})
		}

	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if obj := c.target(lhs); obj != nil {
				c.record(obj, access{pos: lhs.Pos(), kind: "write"})
			}
		}

	case *ast.IncDecStmt:
		if obj := c.target(n.X); obj != nil {
			c.record(obj, access{pos: n.X.Pos(), kind: "write"})
		}

	case *ast.SelectorExpr:
		if c.inAtomic[n] {
			return false
		}
		if obj := c.target(n); obj != nil && !c.isWriteContext(n, obj) {
			c.record(obj, access{pos: n.Pos(), kind: "read"})
		}

	case *ast.Ident:
		if c.inAtomic[n] {
			return false
		}
		if obj := c.target(n); obj != nil && !c.isWriteContext(n, obj) {
			c.record(obj, access{pos: n.Pos(), kind: "read"})
		}
	}
	return true
}

// isWriteContext is handled by recording writes from AssignStmt/IncDecStmt
// directly (parents are visited before children): an expression seen on
// its own is a read unless already recorded as a write at this position.
func (c *checker) isWriteContext(e ast.Expr, obj types.Object) bool {
	for _, a := range c.accesses[obj] {
		if a.pos == e.Pos() && a.kind == "write" {
			return true
		}
	}
	return false
}

// atomicCall reports whether the call invokes a sync/atomic address-taking
// function, returning its name.
func (c *checker) atomicCall(call *ast.CallExpr) (string, bool) {
	fn := framework.StaticCallee(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	return fn.Name(), atomicAddrFuncs[fn.Name()]
}

// target resolves an lvalue expression to the tracked object: a struct
// field selection or a package-level variable. Locals are skipped — a
// goroutine-local word needs no atomicity — as are selections through
// method calls.
func (c *checker) target(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		sel, ok := c.pass.TypesInfo.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return nil
		}
		return sel.Obj()
	case *ast.Ident:
		obj, ok := c.pass.TypesInfo.Uses[e].(*types.Var)
		if !ok || obj.Pkg() == nil {
			return nil
		}
		// Track package-level vars only.
		if obj.Parent() != obj.Pkg().Scope() {
			return nil
		}
		return obj
	}
	return nil
}

func (c *checker) record(obj types.Object, a access) {
	c.accesses[obj] = append(c.accesses[obj], a)
}

func (c *checker) report() {
	// Deterministic order: objects sorted by declaration position.
	objs := make([]types.Object, 0, len(c.accesses))
	for obj := range c.accesses {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		accs := c.accesses[obj]
		var atomicUse *access
		for i := range accs {
			if accs[i].kind == "atomic" {
				atomicUse = &accs[i]
				break
			}
		}
		if atomicUse == nil {
			continue
		}
		atomicPos := c.pass.Fset.Position(atomicUse.pos)
		sort.Slice(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })
		for _, a := range accs {
			if a.kind == "atomic" {
				continue
			}
			verb := "read"
			if a.kind == "write" {
				verb = "written"
			}
			c.pass.Reportf(a.pos,
				"%s is accessed atomically (%s at %s:%d) but %s plainly here; every access to an atomic word must go through sync/atomic",
				obj.Name(), atomicUse.desc, shortFile(atomicPos.Filename), atomicPos.Line, verb)
		}
	}
}

func shortFile(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[i+1:]
		}
	}
	return name
}
