// Package atomicpairdata seeds mixed atomic/plain accesses.
package atomicpairdata

import "sync/atomic"

type counter struct {
	hits  int64
	drops int64
	plain int64
	boxed atomic.Int64
}

var global uint32

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1) // ok: atomic access
}

func (c *counter) readPlain() int64 {
	return c.hits // want `hits is accessed atomically \(atomic\.AddInt64 at atomicpairdata\.go:16\) but read plainly here`
}

func (c *counter) writePlain() {
	c.hits = 0 // want `hits is accessed atomically \(atomic\.AddInt64 at atomicpairdata\.go:16\) but written plainly here`
}

func (c *counter) incPlain() {
	c.drops++ // want `drops is accessed atomically \(atomic\.LoadInt64 at atomicpairdata\.go:32\) but written plainly here`
}

func (c *counter) loadDrops() int64 {
	return atomic.LoadInt64(&c.drops) // ok: atomic access
}

func (c *counter) purePlain() int64 {
	c.plain++      // ok: never accessed atomically
	return c.plain // ok
}

func (c *counter) wrapper() int64 {
	c.boxed.Store(1)      // ok: atomic.Int64 has no plain access path
	return c.boxed.Load() // ok
}

func setGlobal() {
	atomic.StoreUint32(&global, 1) // ok: atomic access
}

func getGlobal() uint32 {
	return global // want `global is accessed atomically \(atomic\.StoreUint32 at atomicpairdata\.go:46\) but read plainly here`
}

func localOK() int64 {
	var n int64
	atomic.AddInt64(&n, 1) // ok: locals are not tracked
	return n               // ok
}
