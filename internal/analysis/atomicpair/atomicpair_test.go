package atomicpair

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestAtomicPair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "atomicpairdata")
}
