package aliasretain

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestAliasRetain(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "aliasdata")
}
