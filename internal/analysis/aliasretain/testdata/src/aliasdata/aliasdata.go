// Package aliasdata seeds aliasing-contract violations against an
// in-package //smoothvet:aliased API shaped like core.Server.Step.
package aliasdata

type result struct {
	sent    []int
	dropped []string
	n       int
}

type server struct {
	sent []int
	last []int
}

// Step returns buffers the server overwrites on the next call.
//
//smoothvet:aliased
func (s *server) Step() result {
	s.sent = s.sent[:0]
	return result{sent: s.sent}
}

type payload struct{ b []byte }

type msg struct{ data *payload }

// next returns a message whose payload is decoder-owned scratch.
//
//smoothvet:aliased
func next() msg { return msg{data: &payload{}} }

var global []int

func use(xs []int) int { return len(xs) }

// ok reads the borrow within the step and copies before keeping anything.
func ok(s *server) int {
	res := s.Step()
	total := 0
	for _, v := range res.sent { // ok: element copies
		total += v
	}
	cp := append([]int(nil), res.sent...) // ok: spread copies the elements
	total += use(res.sent)                // ok: borrow for the call's duration
	total += len(cp)
	return res.n // ok: scalar projection
}

func retain(s *server) []int {
	res := s.Step()
	s.last = res.sent // want `storing res\.sent in s\.last retains memory reused by`
	global = res.sent // want `storing res\.sent in package variable global retains`
	var batches [][]int
	batches = append(batches, res.sent) // want `appending res\.sent as an element retains`
	ch := make(chan []int, 1)
	ch <- res.sent // want `sending res\.sent on a channel retains`
	_ = batches
	return res.sent // want `returning res\.sent leaks memory reused by`
}

func mutate(s *server) {
	res := s.Step()
	res.sent[0] = 9 // want `writing into res\.sent mutates memory owned by`
	res2 := s.Step()
	copy(res2.sent, res.dropped2()) // want `copying into res2\.sent overwrites memory owned by`
	_ = append(res.sent, 5)         // want `appending to res\.sent may write into memory owned by`
	m := next()
	m.data.b = nil // want `writing m\.data\.b mutates memory owned by`
}

func (r result) dropped2() []int { return nil }

// indirect taints a plain local and catches the escape one hop later.
func indirect(s *server) {
	res := s.Step()
	x := res.sent // taints x
	global = x    // want `storing x in package variable global retains`
}

// retaint shows a clean overwrite clearing the borrow.
func retaint(s *server) {
	res := s.Step()
	x := res.sent
	x = make([]int, 4) // clean overwrite clears the taint
	global = x         // ok: x no longer borrows
}

// propagate re-exports the borrow under its own aliased contract.
//
//smoothvet:aliased
func propagate(s *server) []int {
	res := s.Step()
	return res.sent // ok: this function is annotated aliased itself
}

// loopCarried: the borrow taken on a previous iteration is still live when
// the next iteration re-uses it — the taint rides the loop back edge, which
// a source-order walk cannot see (res is tainted on a later line than the
// append that consumes it).
func loopCarried(s *server) [][]int {
	var res result
	var batches [][]int
	for i := 0; i < 3; i++ {
		batches = append(batches, res.sent) // want `appending res\.sent as an element retains memory reused by`
		res = s.Step()
	}
	return batches
}

// loopCleared re-borrows and copies inside every iteration: the clean
// overwrite kills the taint before the back edge, so nothing is live at
// the loop head.
func loopCleared(s *server) [][]int {
	var batches [][]int
	for i := 0; i < 3; i++ {
		res := s.Step()
		cp := append([]int(nil), res.sent...)
		batches = append(batches, cp) // ok: cp is a copy
	}
	return batches
}

// branchJoin taints on one arm only: the join keeps the borrow (may-alias),
// so the store after the if is flagged.
func branchJoin(s *server, cond bool) {
	var x []int
	if cond {
		x = s.Step().sent
	}
	global = x // want `storing x in package variable global retains`
}
