// Package aliasretain implements the smoothvet analyzer that enforces the
// reused-buffer aliasing contracts: APIs annotated //smoothvet:aliased
// (core.Server.Step's result slices, netstream Decoder.Next's message)
// return memory their owner overwrites on the next call, so callers may
// read the result within the step but must copy before retaining.
//
// The analyzer taints every value produced by an annotated call and every
// reference-carrying value derived from it (field selections, slicings,
// re-assignments, composite literals containing one), then reports uses
// that outlive or corrupt the borrow:
//
//   - storing a tainted value anywhere that outlives the local frame — a
//     struct field, a dereference, an array/map/slice element, a global;
//   - sending a tainted value on a channel;
//   - returning a tainted value, unless the enclosing function is itself
//     annotated //smoothvet:aliased (explicit contract propagation);
//   - appending a tainted slice *as one element* of a slice-of-slices
//     (append(batches, res.Sent) retains; append(dst, res.Sent...) copies
//     elements and is fine);
//   - mutating the borrowed memory: tainted[i] = v, append whose first
//     operand is tainted, or copy into a tainted destination.
//
// Scalar loads (res.SentBytes) do not taint, element copies out of ranged
// tainted slices do not taint, and passing a tainted value as an ordinary
// call argument is allowed — the callee sees a borrow for the duration of
// the call, the same contract the caller holds.
//
// Annotations on APIs in *other* packages are honored too: export data
// carries no comments, so the analyzer resolves the callee's declaration
// position and scans the declaring source file (framework.Markers).
package aliasretain

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the aliasing-contract checker.
var Analyzer = &framework.Analyzer{
	Name: "aliasretain",
	Doc:  "report callers retaining or mutating buffers returned by //smoothvet:aliased APIs",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc runs the intra-procedural taint walk over one function as a
// forward dataflow problem on the framework CFG: taint introduced on one
// path — including a loop back edge, where the borrow from a previous
// iteration is still live — reaches every use control flow can carry it
// to. The facts map local objects to the aliased API they borrow from,
// joined by union (may-borrow).
func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	c := &checker{
		pass:    pass,
		markers: pass.ParseMarkers(),
	}
	c.selfAliased = c.funcIsAliased(pass.TypesInfo.Defs[fd.Name])
	cfg := framework.NewCFG(fd.Body)
	framework.RunFlow(cfg, framework.Facts{}, func(n ast.Node, facts framework.Facts, report bool) {
		c.facts = facts
		c.reporting = report
		c.node(n)
	}, nil)
}

// node applies the taint rules to one CFG node. Nested function literals
// are walked in place with the enclosing facts: a closure shares its
// frame's borrows, so a retain inside it is just as wrong.
func (c *checker) node(n ast.Node) {
	if rh, ok := n.(*framework.RangeHead); ok {
		// Range variables hold element copies; the ranged expression
		// itself is a read. Only nested calls (append/copy) need checking.
		if rh.Range.X == nil {
			return
		}
		n = rh.Range.X
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			c.assign(m)
		case *ast.GenDecl:
			c.varDecl(m)
		case *ast.SendStmt:
			if src := c.taintSource(m.Value); src != "" {
				c.reportf(m.Arrow, "sending %s on a channel retains memory reused by %s; copy first", types.ExprString(m.Value), src)
			}
		case *ast.ReturnStmt:
			if c.selfAliased {
				break
			}
			for _, res := range m.Results {
				if src := c.taintSource(res); src != "" {
					c.reportf(res.Pos(), "returning %s leaks memory reused by %s; copy it, or annotate this function //smoothvet:aliased to propagate the contract", types.ExprString(res), src)
				}
			}
		case *ast.CallExpr:
			c.call(m)
		}
		return true
	})
}

type checker struct {
	pass    *framework.Pass
	markers *framework.Markers
	// facts is the current flow state: it maps a local types.Object to the
	// name of the aliased API whose memory it borrows.
	facts       framework.Facts
	reporting   bool
	selfAliased bool
}

// reportf emits a diagnostic only during the reporting replay; the
// fixpoint iterations mutate facts silently.
func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if c.reporting {
		c.pass.Reportf(pos, format, args...)
	}
}

func (c *checker) funcIsAliased(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	return ok && c.markers.FuncHasMarker(fn, framework.MarkerAliased)
}

// callee resolves the static *types.Func of a call, if any.
func (c *checker) callee(call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := c.pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// taintSource returns the name of the aliased API the expression borrows
// from, or "" if the expression is clean. Only reference-carrying types
// can borrow: scalar projections of a tainted struct are safe copies.
func (c *checker) taintSource(e ast.Expr) string {
	if e == nil {
		return ""
	}
	if !taintable(c.pass.TypesInfo.TypeOf(e)) {
		return ""
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.pass.TypesInfo.ObjectOf(e); obj != nil {
			return c.facts[obj]
		}
	case *ast.SelectorExpr:
		return c.taintSource(e.X)
	case *ast.IndexExpr:
		return c.taintSource(e.X)
	case *ast.SliceExpr:
		return c.taintSource(e.X)
	case *ast.StarExpr:
		return c.taintSource(e.X)
	case *ast.TypeAssertExpr:
		return c.taintSource(e.X)
	case *ast.CallExpr:
		if fn := c.callee(e); fn != nil && c.markers.FuncHasMarker(fn, framework.MarkerAliased) {
			return fn.FullName()
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if src := c.taintSource(el); src != "" {
				return src
			}
		}
	case *ast.UnaryExpr:
		return c.taintSource(e.X)
	}
	return ""
}

// assign propagates taint through assignments, flags escaping stores, and
// flags writes that mutate borrowed memory through a tainted base.
func (c *checker) assign(n *ast.AssignStmt) {
	for _, lhs := range n.Lhs {
		c.checkMutation(lhs)
	}
	// Pair-wise only; tuple assignments from calls are handled by the
	// call's own taint (a, b := f() taints both when f is aliased).
	if len(n.Lhs) != len(n.Rhs) {
		if len(n.Rhs) == 1 {
			if src := c.taintSource(n.Rhs[0]); src != "" {
				for _, lhs := range n.Lhs {
					c.taintOrFlag(lhs, src, n.Rhs[0])
				}
			}
		}
		return
	}
	for i := range n.Lhs {
		src := c.taintSource(n.Rhs[i])
		if src == "" {
			// Overwriting with a clean value clears a local's taint on
			// this path (it may survive the join from another path).
			if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
				if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
					delete(c.facts, obj)
				}
			}
			continue
		}
		c.taintOrFlag(n.Lhs[i], src, n.Rhs[i])
	}
}

// checkMutation flags assignment targets that write through a tainted
// base into memory the borrower does not own: element writes into a
// tainted slice or map, writes through a tainted pointer, and field
// writes through a tainted pointer chain. Overwriting a tainted *local*
// (a plain identifier) only changes the local copy and is clean.
func (c *checker) checkMutation(lhs ast.Expr) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		if src := c.taintSource(l.X); src != "" {
			c.reportf(lhs.Pos(), "writing into %s mutates memory owned by %s; copy the slice before editing it", types.ExprString(l.X), src)
		}
	case *ast.StarExpr:
		if src := c.taintSource(l.X); src != "" {
			c.reportf(lhs.Pos(), "writing through %s mutates memory owned by %s", types.ExprString(l.X), src)
		}
	case *ast.SelectorExpr:
		if t := c.pass.TypesInfo.TypeOf(l.X); t != nil {
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				if src := c.taintSource(l.X); src != "" {
					c.reportf(lhs.Pos(), "writing %s mutates memory owned by %s", types.ExprString(lhs), src)
				}
			}
		}
	}
}

// taintOrFlag either records the taint (plain local target) or reports an
// escaping store (anything that outlives the frame).
func (c *checker) taintOrFlag(lhs ast.Expr, src string, rhs ast.Expr) {
	if t := c.pass.TypesInfo.TypeOf(lhs); t != nil && types.Identical(t, errType) {
		return // the error result of an aliased call carries no buffer
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := c.pass.TypesInfo.ObjectOf(l)
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() && obj.Parent() != c.pass.Pkg.Scope() {
			if taintable(obj.Type()) {
				c.facts[obj] = src
			}
			return
		}
		// Package-level variable: escapes every frame.
		c.reportf(lhs.Pos(), "storing %s in package variable %s retains memory reused by %s; copy first", types.ExprString(rhs), l.Name, src)
	default:
		// Field, element, or dereference target: outlives the statement.
		c.reportf(lhs.Pos(), "storing %s in %s retains memory reused by %s; copy first", types.ExprString(rhs), types.ExprString(lhs), src)
	}
}

// varDecl handles `var x = taintedExpr`.
func (c *checker) varDecl(n *ast.GenDecl) {
	for _, spec := range n.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if i >= len(vs.Values) {
				break
			}
			if src := c.taintSource(vs.Values[i]); src != "" {
				if obj := c.pass.TypesInfo.ObjectOf(name); obj != nil && taintable(obj.Type()) {
					c.facts[obj] = src
				}
			}
		}
	}
}

// call flags borrow-mutating builtins and taints tuple destructuring.
func (c *checker) call(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	switch id.Name {
	case "append":
		if len(call.Args) == 0 {
			return
		}
		if src := c.taintSource(call.Args[0]); src != "" {
			c.reportf(call.Pos(), "appending to %s may write into memory owned by %s; copy the slice before growing it", types.ExprString(call.Args[0]), src)
		}
		if call.Ellipsis.IsValid() {
			return // append(dst, tainted...) copies the elements out
		}
		for _, a := range call.Args[1:] {
			if src := c.taintSource(a); src != "" {
				c.reportf(a.Pos(), "appending %s as an element retains memory reused by %s; copy first", types.ExprString(a), src)
			}
		}
	case "copy":
		if len(call.Args) == 2 {
			if src := c.taintSource(call.Args[0]); src != "" {
				c.reportf(call.Pos(), "copying into %s overwrites memory owned by %s", types.ExprString(call.Args[0]), src)
			}
		}
	}
}

var errType = types.Universe.Lookup("error").Type()

// taintable reports whether values of the type can carry a borrow:
// pointers, slices, maps, channels, funcs, interfaces, strings are value
// types (copies), and structs/arrays are taintable if any field is.
func taintable(t types.Type) bool {
	return taintableDepth(t, 0)
}

func taintableDepth(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	switch t := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if taintableDepth(t.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return taintableDepth(t.Elem(), depth+1)
	}
	return false
}
