package experiment

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TableRobust addresses the substitution risk head-on: the paper's
// conclusions must not depend on one synthetic clip. For each content
// profile (news, sports, movie) and several seeds, it measures Tail-Drop
// and Greedy weighted loss at the Fig. 3 operating point (R = 0.9 × avg,
// buffer 4 × maxframe) and reports each policy's best and worst case. The
// headline conclusion — Greedy's worst case beats Tail-Drop's best case —
// holds for every profile.
func TableRobust(c Config) (*Table, error) {
	c = c.withDefaults()
	seeds := []int64{1, 2, 3, 4, 5}
	if c.Quick {
		seeds = []int64{1, 2}
	}
	t := &Table{
		ID:     "robust",
		Title:  "Sensitivity of the Fig. 3 conclusion across content profiles and seeds",
		XLabel: "profile#",
		YLabel: "weighted loss %",
		Series: []string{"greedy-min", "greedy-max", "taildrop-min", "taildrop-max", "idc256"},
		Notes: []string{
			fmt.Sprintf("profiles: 1=news 2=sports 3=movie; %d seeds each; frames=%d", len(seeds), c.Frames),
			"operating point: R = 0.9 x avg rate, B = 4 x maxframe, byte slices",
			"idc256: mean index of dispersion (window 256) — burstiness per profile",
		},
	}
	rows, err := Sweep(c.Workers, trace.Profiles(), func(pi int, prof trace.Profile) (Row, error) {
		r := core.AcquireRunner()
		defer core.ReleaseRunner(r)
		gMin, gMax := math.Inf(1), math.Inf(-1)
		tdMin, tdMax := math.Inf(1), math.Inf(-1)
		var idcSum float64
		for _, seed := range seeds {
			gc := prof.Cfg
			gc.Frames = c.Frames
			gc.Seed = seed
			clip, err := trace.Generate(gc)
			if err != nil {
				return Row{}, err
			}
			st, err := trace.ByteSliceStream(clip, trace.PaperWeights())
			if err != nil {
				return Row{}, err
			}
			R := rateFor(clip, 0.9)
			B := bufferUnits(4 * clip.MaxFrameSize())
			for _, p := range []struct {
				name string
				f    drop.Factory
			}{{"greedy", drop.Greedy}, {"taildrop", drop.TailDrop}} {
				s, err := r.Run(st, core.Config{ServerBuffer: B, Rate: R, Policy: p.f})
				if err != nil {
					return Row{}, err
				}
				loss := 100 * s.WeightedLoss()
				switch p.name {
				case "greedy":
					gMin = math.Min(gMin, loss)
					gMax = math.Max(gMax, loss)
				case "taildrop":
					tdMin = math.Min(tdMin, loss)
					tdMax = math.Max(tdMax, loss)
				}
			}
			demand := make([]float64, len(clip.Frames))
			for i, fr := range clip.Frames {
				demand[i] = float64(fr.Size)
			}
			window := 256
			if w := len(demand) / 4; w < window {
				window = w
			}
			idcSum += idc(demand, window)
		}
		return Row{X: float64(pi + 1), Y: map[string]float64{
			"greedy-min":   gMin,
			"greedy-max":   gMax,
			"taildrop-min": tdMin,
			"taildrop-max": tdMax,
			"idc256":       idcSum / float64(len(seeds)),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// idc is a thin indirection to keep the experiment readable.
func idc(xs []float64, window int) float64 {
	return stats.IndexOfDispersion(xs, window)
}
