package experiment

// Extension experiments beyond the paper's own evaluation: the Section 6
// open problem (proactive dropping), the introduction's alternatives
// (statistical multiplexing, truncation, peak reservation, renegotiated
// CBR), dependency-aware MPEG decodability, and delay jitter with and
// without the jitter-control regulator that justifies the paper's 0-jitter
// model.

import (
	"fmt"

	"repro/internal/alternatives"
	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/linksim"
	"repro/internal/lossless"
	"repro/internal/mux"
	"repro/internal/stream"
	"repro/internal/trace"
)

// TableMuxGain measures the statistical-multiplexing gain of SHARING one
// smoothing buffer and link among K independent streams versus partitioning
// the same total resources privately.
func TableMuxGain(c Config) (*Table, error) {
	c = c.withDefaults()
	perStream := c.Frames / 2
	t := &Table{
		ID:     "muxgain",
		Title:  "Statistical multiplexing gain of shared smoothing (intro, alt. 2)",
		XLabel: "streams K",
		YLabel: "weighted loss %",
		Series: []string{"partitioned", "shared"},
		Notes: []string{
			fmt.Sprintf("independent clips of %d frames; total rate = 0.95 x combined average;", perStream),
			"total buffer = 6 x maxframe x K; greedy policy; whole-frame slices",
		},
	}
	err := t.sweepRowsInt(c, []int{1, 2, 4, 8}, func(k int) (map[string]float64, error) {
		var streams []*stream.Stream
		totalBytes := 0
		horizon := 0
		maxFrame := 0
		for i := 0; i < k; i++ {
			gc := trace.DefaultGenConfig()
			gc.Frames = perStream
			gc.Seed = c.Seed + int64(i)*101
			clip, err := trace.Generate(gc)
			if err != nil {
				return nil, err
			}
			st, err := trace.WholeFrameStream(clip, trace.PaperWeights())
			if err != nil {
				return nil, err
			}
			streams = append(streams, st)
			totalBytes += st.TotalBytes()
			if st.Horizon() > horizon {
				horizon = st.Horizon()
			}
			if clip.MaxFrameSize() > maxFrame {
				maxFrame = clip.MaxFrameSize()
			}
		}
		totalRate := int(0.95 * float64(totalBytes) / float64(horizon+1))
		totalBuffer := 6 * maxFrame * k
		shared, err := mux.Shared(streams, totalRate, totalBuffer, drop.Greedy)
		if err != nil {
			return nil, err
		}
		part, err := mux.Partitioned(streams, totalRate, totalBuffer, drop.Greedy)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"shared":      100 * shared.WeightedLoss(),
			"partitioned": 100 * part.WeightedLoss(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// TableAlternatives compares the bandwidth each approach needs as a
// function of the latency budget: lossy smoothing at a 1% weighted-loss
// target, exact lossless smoothing, and renegotiated CBR; peak reservation
// and truncation appear as notes (they do not trade latency for rate).
func TableAlternatives(c Config) (*Table, error) {
	c = c.withDefaults()
	cl, err := c.clip()
	if err != nil {
		return nil, err
	}
	st, err := trace.WholeFrameStream(cl, trace.PaperWeights())
	if err != nil {
		return nil, err
	}
	avg := cl.AverageRate()
	tr, err := alternatives.Truncation(st, int(avg))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "alternatives",
		Title:  "Bandwidth vs latency budget across VBR-over-CBR approaches (intro)",
		XLabel: "delay D",
		YLabel: "rate / avg rate",
		Series: []string{"smoothing-1pct", "lossless", "rcbr-peak"},
		Notes: []string{
			fmt.Sprintf("frames=%d; rates relative to avg %.1f units/step", c.Frames, avg),
			fmt.Sprintf("peak reservation (D=0, zero loss) needs %.2f x avg", float64(alternatives.PeakRate(st))/avg),
			fmt.Sprintf("truncation at R=avg (D=0, no buffer) loses %.1f%% of the weight", 100*tr.WeightedLoss),
			"rcbr-peak: renegotiated-CBR peak rate with window D (lossless, ~2D delay)",
		},
	}
	delays := []int{1, 2, 4, 8, 16, 32, 64}
	if c.Quick {
		delays = []int{1, 4, 16, 64}
	}
	err = t.sweepRowsInt(c, delays, func(D int) (map[string]float64, error) {
		r1, err := alternatives.MinRateForLoss(st, D, 0.01)
		if err != nil {
			return nil, err
		}
		r0, err := lossless.MinRateForDelay(st, D)
		if err != nil {
			return nil, err
		}
		plan, err := alternatives.Renegotiate(st, D)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"smoothing-1pct": float64(r1) / avg,
			"lossless":       float64(r0) / avg,
			"rcbr-peak":      float64(plan.Peak) / avg,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// TableDecode evaluates dependency-aware quality: the fraction of frames a
// real MPEG decoder could actually use, under Tail-Drop and Greedy, as the
// buffer grows. Greedy's habit of sacrificing B frames (no one references
// a B frame) keeps almost every delivered frame decodable; Tail-Drop's
// indiscriminate drops poison whole GOPs.
func TableDecode(c Config) (*Table, error) {
	c = c.withDefaults()
	cl, err := c.clip()
	if err != nil {
		return nil, err
	}
	st, err := trace.WholeFrameStream(cl, trace.PaperWeights())
	if err != nil {
		return nil, err
	}
	R := rateFor(cl, 0.9)
	t := &Table{
		ID:     "decode",
		Title:  "Decodable frames under MPEG reference dependencies (extension)",
		XLabel: "buffer/maxframe",
		YLabel: "% of frames",
		Series: []string{"taildrop-delivered", "taildrop-decodable", "greedy-delivered", "greedy-decodable"},
		Notes: []string{
			fmt.Sprintf("frames=%d R=%d (0.9 x avg); whole-frame slices; I<-P<-B reference chains", c.Frames, R),
		},
	}
	multiples := []float64{1, 2, 3, 4, 6, 8, 12, 16}
	if c.Quick {
		multiples = []float64{1, 4, 16}
	}
	err = t.sweepRows(c, multiples, func(m float64) (map[string]float64, error) {
		B := bufferUnits(int(m * float64(cl.MaxFrameSize())))
		row := map[string]float64{}
		r := core.AcquireRunner()
		defer core.ReleaseRunner(r)
		for _, p := range []struct {
			name string
			f    drop.Factory
		}{{"taildrop", drop.TailDrop}, {"greedy", drop.Greedy}} {
			s, err := r.Run(st, core.Config{ServerBuffer: B, Rate: R, Policy: p.f})
			if err != nil {
				return nil, err
			}
			// Whole-frame slices: slice ID == frame index.
			stats := trace.Decodability(cl, func(i int) bool { return s.Outcomes[i].Played() })
			row[p.name+"-delivered"] = 100 * float64(stats.Delivered) / float64(stats.Total)
			row[p.name+"-decodable"] = 100 * stats.DecodableFraction()
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// TableProactive explores the Section 6 open problem: proactive (early)
// dropping versus the pure overflow-time greedy, on a workload crafted to
// punish no-preemption — long low-value slices that hog the link head just
// before bursts of high-value data — and, for contrast, on the MPEG trace
// where proactivity has nothing to offer.
func TableProactive(c Config) (*Table, error) {
	c = c.withDefaults()
	// Crafted workload: each step one low-value slice of half the rate's
	// worth of bytes; every period a burst of high-value unit slices that
	// exactly fills the buffer.
	const (
		R      = 10
		B      = 60
		period = 6
		steps  = 240
	)
	wb := stream.NewBuilder()
	for t2 := 0; t2 < steps; t2++ {
		wb.Add(t2, 30, 30) // byte value 1, three steps to transmit
		if t2%period == period-1 {
			for i := 0; i < B; i++ {
				wb.Add(t2, 1, 20) // byte value 20
			}
		}
	}
	crafted := wb.MustBuild()

	cl, err := c.clip()
	if err != nil {
		return nil, err
	}
	mpeg, err := trace.ByteSliceStream(cl, trace.PaperWeights())
	if err != nil {
		return nil, err
	}
	mpegR := rateFor(cl, 0.9)
	mpegB := 4 * cl.MaxFrameSize()

	t := &Table{
		ID:     "proactive",
		Title:  "Proactive early-dropping vs overflow-time greedy (Sect. 6 open problem)",
		XLabel: "threshold",
		YLabel: "benefit % of offered",
		Series: []string{"crafted", "mpeg"},
		Notes: []string{
			"threshold 1.0 = pure greedy (drop only on overflow); lower thresholds shed",
			"low-value slices early, before they reach the unpreemptable queue head",
			fmt.Sprintf("crafted: R=%d B=%d, %d-step bursts; mpeg: R=%d B=%d byte slices",
				R, B, period, mpegR, mpegB),
		},
	}
	err = t.sweepRows(c, []float64{0.25, 0.5, 0.75, 0.9, 1.0}, func(th float64) (map[string]float64, error) {
		var factory drop.Factory
		if th >= 1 {
			factory = drop.Greedy
		} else {
			factory = drop.Anticipate(th, 1.5) // shed byte values < 1.5 early
		}
		row := map[string]float64{}
		r := core.AcquireRunner()
		defer core.ReleaseRunner(r)
		sc, err := r.Run(crafted, core.Config{ServerBuffer: B, Rate: R, Policy: factory})
		if err != nil {
			return nil, err
		}
		row["crafted"] = 100 * sc.Benefit() / crafted.TotalWeight()
		sm, err := r.Run(mpeg, core.Config{ServerBuffer: mpegB, Rate: mpegR, Policy: factory})
		if err != nil {
			return nil, err
		}
		row["mpeg"] = 100 * sm.Benefit() / mpeg.TotalWeight()
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// TableJitter quantifies what link-delay jitter does to the naive client
// and how the jitter-control regulator (Section 2.2's justification for
// the 0-jitter model) restores exact constant-delay behaviour at the cost
// of J extra steps of latency.
func TableJitter(c Config) (*Table, error) {
	c = c.withDefaults()
	cl, err := c.clip()
	if err != nil {
		return nil, err
	}
	st, err := trace.WholeFrameStream(cl, trace.PaperWeights())
	if err != nil {
		return nil, err
	}
	R := rateFor(cl, 1.05)
	B := 6 * cl.MaxFrameSize()
	cfg := core.Config{ServerBuffer: B, Rate: R, LinkDelay: 2, Policy: drop.Greedy}
	t := &Table{
		ID:     "jitter",
		Title:  "Delay jitter: naive client vs jitter-control regulator (Sect. 2.2)",
		XLabel: "jitter J",
		YLabel: "% frames played",
		Series: []string{"unregulated", "regulated", "regulator-buffer/R"},
		Notes: []string{
			fmt.Sprintf("frames=%d R=%d B=%d P=2; jitter uniform in [0, J] per step", c.Frames, R, B),
			"regulated runs are byte-identical to a constant P+J link (property-tested)",
		},
	}
	err = t.sweepRowsInt(c, []int{0, 1, 2, 4, 8, 16}, func(J int) (map[string]float64, error) {
		res, err := linksim.SimulateUnregulated(st, cfg, J, c.Seed)
		if err != nil {
			return nil, err
		}
		sch, regOcc, err := linksim.Simulate(st, cfg, J, c.Seed)
		if err != nil {
			return nil, err
		}
		played := 0
		for _, o := range sch.Outcomes {
			if o.Played() {
				played++
			}
		}
		total := float64(st.Len())
		return map[string]float64{
			"unregulated":        100 * float64(res.Played) / total,
			"regulated":          100 * float64(played) / total,
			"regulator-buffer/R": float64(regOcc) / float64(R),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
