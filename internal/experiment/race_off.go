//go:build !race

package experiment

// raceEnabled reports whether the race detector is compiled in. The
// quick-mode benchmarks pin the sweep worker count to 1 under -race so
// that race-checked benchmark iterations stay comparable to the seeded
// sequential baselines (see Config.withDefaults).
const raceEnabled = false
