package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/competitive"
	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/lossless"
	"repro/internal/offline"
	"repro/internal/sched"
	"repro/internal/stream"
	"repro/internal/trace"
)

// randomUnitStream builds a bursty random unit-slice stream for the
// validation tables.
func randomUnitStream(rng *rand.Rand, n, horizon, maxW int) *stream.Stream {
	b := stream.NewBuilder()
	for i := 0; i < n; i++ {
		b.Add(rng.Intn(horizon), 1, float64(rng.Intn(maxW)+1))
	}
	return b.MustBuild()
}

// randomVarStream builds a random variable-slice-size stream.
func randomVarStream(rng *rand.Rand, n, horizon, lmax, maxW int) *stream.Stream {
	b := stream.NewBuilder()
	for i := 0; i < n; i++ {
		b.Add(rng.Intn(horizon), rng.Intn(lmax)+1, float64(rng.Intn(maxW)+1))
	}
	return b.MustBuild()
}

// TableBRD validates the B = R·D law (Theorem 3.5 / Section 3.3): with the
// link rate and smoothing delay fixed, sweep the server buffer around R·D
// and measure byte loss. Loss is minimized exactly at B = R·D; smaller
// buffers drop more at the server, larger ones gain nothing because the
// delay bound already limits what can be used.
func TableBRD(c Config) (*Table, error) {
	c = c.withDefaults()
	cl, err := c.clip()
	if err != nil {
		return nil, err
	}
	st, err := trace.ByteSliceStream(cl, trace.PaperWeights())
	if err != nil {
		return nil, err
	}
	R := rateFor(cl, 0.95)
	D := (4*cl.MaxFrameSize() + R - 1) / R // delay budget of ~4 max frames
	law := R * D
	t := &Table{
		ID:     "brd",
		Title:  "Loss vs server buffer around the B = R*D law (Thm 3.5, Sect. 3.3)",
		XLabel: "B/(R*D)",
		YLabel: "loss %",
		Series: []string{"byteloss", "serverdrop", "clientdrop", "byteloss-droplate"},
		Notes: []string{
			fmt.Sprintf("frames=%d R=%d D=%d R*D=%d; client buffer fixed at R*D", c.Frames, R, D, law),
			"loss is minimized at B = R*D; beyond it the naive FIFO server clogs itself",
			"with stale data (rising client drops), while the proactive late-dropping",
			"server (ablation) stays flat — exactly the Section 3.3 waste observation",
		},
	}
	err = t.sweepRows(c, []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0}, func(k float64) (map[string]float64, error) {
		B := int(k*float64(law) + 0.5)
		if B < 1 {
			B = 1
		}
		r := core.AcquireRunner()
		defer core.ReleaseRunner(r)
		// One arena for both runs: the first schedule's statistics are
		// extracted before the second run overwrites it.
		s, err := r.Run(st, core.Config{
			ServerBuffer: B,
			ClientBuffer: law,
			Rate:         R,
			Delay:        D,
		})
		if err != nil {
			return nil, err
		}
		total := float64(st.TotalBytes())
		server, client := 0, 0
		for id, o := range s.Outcomes {
			if !o.Dropped() {
				continue
			}
			sz := st.Slice(id).Size
			if o.DropSite == sched.SiteServer {
				server += sz
			} else {
				client += sz
			}
		}
		byteloss := 100 * float64(st.TotalBytes()-s.Throughput()) / total
		sLate, err := r.Run(st, core.Config{
			ServerBuffer:    B,
			ClientBuffer:    law,
			Rate:            R,
			Delay:           D,
			ServerDropsLate: true,
		})
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"byteloss":          byteloss,
			"serverdrop":        100 * float64(server) / total,
			"clientdrop":        100 * float64(client) / total,
			"byteloss-droplate": 100 * float64(st.TotalBytes()-sLate.Throughput()) / total,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// TableBufferRatio validates Lemma 3.6: over random unit streams, the
// throughput of a buffer of size B1 is at least B1/B2 times that of a
// buffer B2 >= B1; the batch pattern shows the bound is essentially tight.
func TableBufferRatio(c Config) (*Table, error) {
	c = c.withDefaults()
	const (
		B2 = 60
		R  = 1
	)
	t := &Table{
		ID:     "bufratio",
		Title:  "Throughput ratio of small vs large buffer (Lemma 3.6)",
		XLabel: "B1",
		YLabel: "throughput ratio",
		Series: []string{"worst-random", "batch-pattern", "bound"},
		Notes: []string{
			fmt.Sprintf("B2=%d R=%d trials=%d; bound = B1/B2", B2, R, c.Trials),
		},
	}
	batch, err := competitive.BatchPattern(B2, 12)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	streams := make([]*stream.Stream, c.Trials)
	for i := range streams {
		streams[i] = randomUnitStream(rng, 150+rng.Intn(150), 40, 1)
	}
	throughput := func(r *core.Runner, st *stream.Stream, B int) (float64, error) {
		s, err := r.Run(st, core.Config{ServerBuffer: B, Rate: R})
		if err != nil {
			return 0, err
		}
		return float64(s.Throughput()), nil
	}
	err = t.sweepRowsInt(c, []int{10, 20, 30, 40, 50, 60}, func(B1 int) (map[string]float64, error) {
		r := core.AcquireRunner()
		defer core.ReleaseRunner(r)
		worst := math.Inf(1)
		for _, st := range streams {
			t1, err := throughput(r, st, B1)
			if err != nil {
				return nil, err
			}
			t2, err := throughput(r, st, B2)
			if err != nil {
				return nil, err
			}
			if t2 > 0 && t1/t2 < worst {
				worst = t1 / t2
			}
		}
		bt1, err := throughput(r, batch, B1)
		if err != nil {
			return nil, err
		}
		bt2, err := throughput(r, batch, B2)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"worst-random":  worst,
			"batch-pattern": bt1 / bt2,
			"bound":         float64(B1) / float64(B2),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// TableVarSlices validates Theorem 3.9: the generic algorithm's throughput
// with variable slice sizes is at least (B-Lmax+1)/B of the optimum.
func TableVarSlices(c Config) (*Table, error) {
	c = c.withDefaults()
	const R = 2
	t := &Table{
		ID:     "varslices",
		Title:  "Generic/optimal throughput with variable slice sizes (Thm 3.9)",
		XLabel: "Lmax",
		YLabel: "throughput ratio",
		Series: []string{"worst-measured", "bound"},
		Notes:  []string{fmt.Sprintf("B=4*Lmax (rounded to R), R=%d, trials=%d", R, c.Trials)},
	}
	// Random inputs are drawn sequentially from one shared source, so that
	// the instance set (and hence the golden output) is independent of the
	// worker count; only the simulations below run concurrently.
	lmaxes := []int{1, 2, 3, 4, 6, 8}
	rng := rand.New(rand.NewSource(c.Seed))
	trialStreams := make([][]*stream.Stream, len(lmaxes))
	for li, lmax := range lmaxes {
		trialStreams[li] = make([]*stream.Stream, c.Trials)
		for i := 0; i < c.Trials; i++ {
			b := stream.NewBuilder()
			n := 30 + rng.Intn(40)
			for j := 0; j < n; j++ {
				size := rng.Intn(lmax) + 1
				b.Add(rng.Intn(12), size, float64(size))
			}
			trialStreams[li][i] = b.MustBuild()
		}
	}
	rows, err := Sweep(c.Workers, lmaxes, func(li int, lmax int) (Row, error) {
		B := 4 * lmax
		if B < R {
			B = R
		}
		r := core.AcquireRunner()
		defer core.ReleaseRunner(r)
		worst := math.Inf(1)
		for _, st := range trialStreams[li] {
			s, err := r.Run(st, core.Config{ServerBuffer: B, Rate: R})
			if err != nil {
				return Row{}, err
			}
			opt, err := offline.OptimalFrames(st, B, R)
			if err != nil {
				return Row{}, err
			}
			if opt.Benefit > 0 {
				if r := float64(s.Throughput()) / opt.Benefit; r < worst {
					worst = r
				}
			}
		}
		return Row{X: float64(lmax), Y: map[string]float64{
			"worst-measured": worst,
			"bound":          float64(B-lmax+1) / float64(B),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// TableGreedyUpperBound validates Theorem 4.1: the measured competitive
// ratio of the greedy policy never exceeds 4B/(B-2(Lmax-1)).
func TableGreedyUpperBound(c Config) (*Table, error) {
	c = c.withDefaults()
	const R = 2
	t := &Table{
		ID:     "greedyub",
		Title:  "Greedy competitive ratio vs the 4B/(B-2(Lmax-1)) bound (Thm 4.1)",
		XLabel: "Lmax",
		YLabel: "opt/greedy",
		Series: []string{"worst-measured", "bound"},
		Notes:  []string{fmt.Sprintf("B=6*Lmax (rounded), R=%d, trials=%d, random weighted streams", R, c.Trials)},
	}
	// As in TableVarSlices: draw the random instances sequentially so the
	// sweep is worker-count-invariant, then measure them concurrently.
	lmaxes := []int{1, 2, 3, 4}
	rng := rand.New(rand.NewSource(c.Seed))
	trialStreams := make([][]*stream.Stream, len(lmaxes))
	for li, lmax := range lmaxes {
		trialStreams[li] = make([]*stream.Stream, c.Trials)
		for i := 0; i < c.Trials; i++ {
			if lmax == 1 {
				trialStreams[li][i] = randomUnitStream(rng, 40+rng.Intn(60), 15, 50)
			} else {
				trialStreams[li][i] = randomVarStream(rng, 30+rng.Intn(40), 12, lmax, 50)
			}
		}
	}
	rows, err := Sweep(c.Workers, lmaxes, func(li int, lmax int) (Row, error) {
		B := 6 * lmax
		if B < R {
			B = R
		}
		worst := 1.0
		for _, st := range trialStreams[li] {
			ratio, _, _, err := competitive.MeasureRatio(st, B, R, drop.Greedy)
			if err != nil {
				return Row{}, err
			}
			if !math.IsInf(ratio, 1) && ratio > worst {
				worst = ratio
			}
		}
		return Row{X: float64(lmax), Y: map[string]float64{
			"worst-measured": worst,
			"bound":          4 * float64(B) / float64(B-2*(lmax-1)),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// TableGreedyLowerBound validates Theorem 4.7: on the parametric instance
// the measured greedy ratio equals the closed form, approaching 2.
func TableGreedyLowerBound(c Config) (*Table, error) {
	c = c.withDefaults()
	const B = 32
	t := &Table{
		ID:     "greedylb",
		Title:  "Greedy ratio on the Theorem 4.7 instance (approaches 2)",
		XLabel: "alpha",
		YLabel: "opt/greedy",
		Series: []string{"measured", "predicted", "two-minus-eps"},
		Notes:  []string{fmt.Sprintf("B=%d, R=1; predicted = (α(2B+1)+1)/((B+1)(α+1))", B)},
	}
	err := t.sweepRows(c, []float64{1, 2, 4, 8, 16, 64, 256}, func(alpha float64) (map[string]float64, error) {
		st, err := competitive.GreedyLowerBoundInstance(B, alpha)
		if err != nil {
			return nil, err
		}
		ratio, _, _, err := competitive.MeasureRatio(st, B, 1, drop.Greedy)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"measured":      ratio,
			"predicted":     competitive.PredictedGreedyRatio(B, alpha),
			"two-minus-eps": 2 - (2/(alpha+1) + 1/float64(B+1)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// TableOnlineLowerBound validates Theorem 4.8 (and the Lotker/Sviridenko
// refinement): the adaptive adversary achieves at least ≈1.2287 (α=2)
// resp. ≈1.28197 (α≈4.015) against every implemented policy.
func TableOnlineLowerBound(c Config) (*Table, error) {
	c = c.withDefaults()
	B := 24
	if c.Quick {
		B = 12
	}
	t := &Table{
		ID:     "onlinelb",
		Title:  "Adversary ratio vs deterministic online policies (Thm 4.8)",
		XLabel: "alpha",
		YLabel: "opt/online",
		Series: []string{"greedy", "taildrop", "headdrop", "randmix-oblivious", "predicted-lb"},
		Notes: []string{
			fmt.Sprintf("B=%d, R=1, adaptive two-scenario adversary", B),
			"randmix-oblivious: randomized greedy/uniform mix (p=0.5) judged by",
			"EXPECTED benefit against the oblivious adversary — Theorem 4.8's bound",
			"covers deterministic policies only. Empirically it matches greedy here:",
			"the adversary reads the cut point from the FIFO *send* order, which no",
			"drop randomization perturbs — beating 1.2287 would require randomizing",
			"the sending/commitment decisions themselves",
		},
	}
	trials := 20
	if c.Quick {
		trials = 6
	}
	err := t.sweepRows(c, []float64{2, 4.015}, func(alpha float64) (map[string]float64, error) {
		row := map[string]float64{"predicted-lb": competitive.PredictedOnlineLB(alpha)}
		// Build the scenario streams and their offline optima once per
		// alpha; all four games below replay the same fixed inputs.
		scenarios, err := competitive.GameScenarios(B, alpha, 3*B)
		if err != nil {
			return nil, err
		}
		for _, p := range []struct {
			name string
			f    drop.Factory
		}{{"greedy", drop.Greedy}, {"taildrop", drop.TailDrop}, {"headdrop", drop.HeadDrop}} {
			res, err := competitive.OnlineLowerBoundGameOn(scenarios, B, p.f)
			if err != nil {
				return nil, err
			}
			row[p.name] = res.Ratio
		}
		rr, err := competitive.OnlineLowerBoundGameRandomizedOn(scenarios, B, func(trial int) drop.Factory {
			return drop.RandomMix(c.Seed+int64(trial)*7919, 0.5)
		}, trials)
		if err != nil {
			return nil, err
		}
		row["randmix-oblivious"] = rr.Ratio
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// TableLossless connects to the lossless smoothing literature the paper
// builds on: for the synthetic clip, the minimum lossless link rate as a
// function of the smoothing delay (with B = R·D), alongside the peak rate
// of the online sliding-window smoother and the offline optimal stored-
// video plan with the same client buffer.
func TableLossless(c Config) (*Table, error) {
	c = c.withDefaults()
	cl, err := c.clip()
	if err != nil {
		return nil, err
	}
	st, err := trace.WholeFrameStream(cl, trace.PaperWeights())
	if err != nil {
		return nil, err
	}
	demand := make([]int, len(cl.Frames))
	for i, f := range cl.Frames {
		demand[i] = f.Size
	}
	avg := cl.AverageRate()
	t := &Table{
		ID:     "lossless",
		Title:  "Zero-loss rate vs smoothing delay (lossless baselines)",
		XLabel: "delay D",
		YLabel: "peak rate / avg rate",
		Series: []string{"minrate-lossy-law", "window-smoother", "stored-plan"},
		Notes: []string{
			fmt.Sprintf("frames=%d avgRate=%.1f; minrate uses B=R*D; stored plan uses clientBuffer = minrate*D", c.Frames, avg),
		},
	}
	err = t.sweepRowsInt(c, []int{1, 2, 4, 8, 16, 32, 64}, func(D int) (map[string]float64, error) {
		R, err := lossless.MinRateForDelay(st, D)
		if err != nil {
			return nil, err
		}
		ws, err := lossless.NewWindowSmoother(D)
		if err != nil {
			return nil, err
		}
		_, wPeak, _ := ws.SmoothStream(st)
		plan, err := lossless.OptimalStoredPlan(demand, R*D, D)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"minrate-lossy-law": float64(R) / avg,
			"window-smoother":   float64(wPeak) / avg,
			"stored-plan":       plan.Peak / avg,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
