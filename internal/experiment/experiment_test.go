package experiment

import (
	"strings"
	"testing"
)

// quick is the shared reduced configuration for test runs.
var quick = Config{Quick: true}

// run executes a registered experiment and applies shared sanity checks.
func run(t *testing.T, name string) *Table {
	t.Helper()
	r, ok := All()[name]
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	tab, err := r(quick)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if tab.ID != name {
		t.Errorf("%s: table ID %q", name, tab.ID)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: empty table", name)
	}
	if len(tab.Series) == 0 {
		t.Fatalf("%s: no series", name)
	}
	for i, row := range tab.Rows {
		if len(row.Y) == 0 {
			t.Errorf("%s: row %d has no values", name, i)
		}
	}
	return tab
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != len(All()) {
		t.Fatalf("Names() has %d entries, registry %d", len(names), len(All()))
	}
	// Figures sort first.
	if !strings.HasPrefix(names[0], "fig") {
		t.Errorf("first name %q is not a figure", names[0])
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestAllExperimentsRun(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) { run(t, name) })
	}
}

// seriesAt fetches a value or fails.
func seriesAt(t *testing.T, tab *Table, i int, s string) float64 {
	t.Helper()
	v, ok := tab.Get(i, s)
	if !ok {
		t.Fatalf("%s: missing %s at row %d", tab.ID, s, i)
	}
	return v
}

func TestFig2Ordering(t *testing.T) {
	tab := run(t, "fig2")
	const eps = 1e-9
	for i := range tab.Rows {
		opt := seriesAt(t, tab, i, "optimal")
		gr := seriesAt(t, tab, i, "greedy")
		td := seriesAt(t, tab, i, "taildrop")
		if opt > gr+eps {
			t.Errorf("row %d: optimal loss %v > greedy %v", i, opt, gr)
		}
		if gr > td+eps {
			t.Errorf("row %d: greedy loss %v > taildrop %v", i, gr, td)
		}
	}
	// Optimal loss is non-increasing in the buffer.
	for i := 1; i < len(tab.Rows); i++ {
		if seriesAt(t, tab, i, "optimal") > seriesAt(t, tab, i-1, "optimal")+1e-9 {
			t.Errorf("optimal loss increased from row %d to %d", i-1, i)
		}
	}
	// With a link 10%% above the average rate, a big buffer loses nothing.
	last := len(tab.Rows) - 1
	if v := seriesAt(t, tab, last, "greedy"); v > 0.5 {
		t.Errorf("greedy loss %v%% at the largest buffer, want ~0", v)
	}
}

func TestFig3Phenomena(t *testing.T) {
	tab := run(t, "fig3")
	// The paper's headline phenomenon: at moderate-to-large buffers the
	// Tail-Drop weighted loss stays above ~10% (it must lose ~10% of the
	// *bytes*, and it loses valuable ones), while Greedy's weighted loss
	// drops well below.
	found := false
	for i := range tab.Rows {
		if tab.Rows[i].X < 2 || tab.Rows[i].X > 16 {
			continue
		}
		td := seriesAt(t, tab, i, "taildrop")
		gr := seriesAt(t, tab, i, "greedy")
		if td > 10 && gr < 10 && gr < td/2 {
			found = true
		}
	}
	if !found {
		t.Error("fig3: expected a buffer range where taildrop > 10% and greedy << taildrop")
	}
}

func TestFig4Phenomena(t *testing.T) {
	tab := run(t, "fig4")
	const eps = 1e-9
	for i := range tab.Rows {
		opt := seriesAt(t, tab, i, "optimal")
		gr := seriesAt(t, tab, i, "greedy")
		td := seriesAt(t, tab, i, "taildrop")
		if gr > opt+eps {
			t.Errorf("row %d: greedy benefit %v above optimal %v", i, gr, opt)
		}
		if td > gr+eps {
			t.Errorf("row %d: taildrop benefit %v above greedy %v", i, td, gr)
		}
		// Benefit is non-decreasing in the link rate for the optimal.
		if i > 0 && opt < seriesAt(t, tab, i-1, "optimal")-1e-9 {
			t.Errorf("optimal benefit decreased at row %d", i)
		}
	}
	// Greedy salvages most of the benefit even at 40% of the average rate
	// (the paper's Fig. 4 observation), far ahead of Tail-Drop.
	gr0 := seriesAt(t, tab, 0, "greedy")
	td0 := seriesAt(t, tab, 0, "taildrop")
	if gr0 < 1.5*td0 {
		t.Errorf("at the lowest rate greedy=%v%% vs taildrop=%v%%: expected a large gap", gr0, td0)
	}
}

func TestFig5Phenomena(t *testing.T) {
	tab := run(t, "fig5")
	const eps = 1e-9
	for i := range tab.Rows {
		fr := seriesAt(t, tab, i, "optimal-frame")
		by := seriesAt(t, tab, i, "optimal-byte")
		if by > fr+eps {
			t.Errorf("row %d: byte-slice optimal loss %v above frame-slice %v", i, by, fr)
		}
	}
	// Large gap at the smallest buffer, negligible gap at the largest.
	fr0 := seriesAt(t, tab, 0, "optimal-frame")
	by0 := seriesAt(t, tab, 0, "optimal-byte")
	if by0 <= 0 || fr0/by0 < 2 {
		t.Errorf("smallest buffer gap %v/%v: expected a multiple >= 2", fr0, by0)
	}
	last := len(tab.Rows) - 1
	frL := seriesAt(t, tab, last, "optimal-frame")
	byL := seriesAt(t, tab, last, "optimal-byte")
	if frL-byL > 0.1 {
		t.Errorf("largest buffer gap %v vs %v: expected to vanish", frL, byL)
	}
}

func TestFig6Phenomena(t *testing.T) {
	tab := run(t, "fig6")
	const eps = 1e-9
	for i := range tab.Rows {
		if g, td := seriesAt(t, tab, i, "greedy-frame"), seriesAt(t, tab, i, "taildrop-frame"); g > td+eps {
			t.Errorf("row %d: greedy-frame %v above taildrop-frame %v", i, g, td)
		}
		if g, td := seriesAt(t, tab, i, "greedy-byte"), seriesAt(t, tab, i, "taildrop-byte"); g > td+eps {
			t.Errorf("row %d: greedy-byte %v above taildrop-byte %v", i, g, td)
		}
	}
}

func TestTableBRDLaw(t *testing.T) {
	tab := run(t, "brd")
	// Find the law row (x == 1).
	lawIdx := -1
	for i, r := range tab.Rows {
		if r.X == 1 {
			lawIdx = i
		}
	}
	if lawIdx < 0 {
		t.Fatal("no row at B/(R*D) = 1")
	}
	lawLoss := seriesAt(t, tab, lawIdx, "byteloss")
	for i, r := range tab.Rows {
		if loss := seriesAt(t, tab, i, "byteloss"); loss < lawLoss-1e-9 {
			t.Errorf("B/(R*D)=%v: loss %v below the law's %v — law not optimal", r.X, loss, lawLoss)
		}
		// The proactive-drop ablation never exceeds the law loss for
		// B >= R*D (extra buffer is simply unused).
		if r.X >= 1 {
			if dl := seriesAt(t, tab, i, "byteloss-droplate"); dl > lawLoss+1e-9 {
				t.Errorf("B/(R*D)=%v: droplate loss %v above the law's %v", r.X, dl, lawLoss)
			}
		}
	}
}

func TestTableBufferRatioBound(t *testing.T) {
	tab := run(t, "bufratio")
	for i, r := range tab.Rows {
		bound := seriesAt(t, tab, i, "bound")
		if v := seriesAt(t, tab, i, "worst-random"); v < bound-1e-9 {
			t.Errorf("B1=%v: worst random ratio %v below bound %v", r.X, v, bound)
		}
		if v := seriesAt(t, tab, i, "batch-pattern"); v < bound-1e-9 {
			t.Errorf("B1=%v: batch ratio %v below bound %v", r.X, v, bound)
		}
	}
}

func TestTableVarSlicesBound(t *testing.T) {
	tab := run(t, "varslices")
	for i, r := range tab.Rows {
		if v, b := seriesAt(t, tab, i, "worst-measured"), seriesAt(t, tab, i, "bound"); v < b-1e-9 {
			t.Errorf("Lmax=%v: measured %v below bound %v", r.X, v, b)
		}
	}
}

func TestTableGreedyBounds(t *testing.T) {
	ub := run(t, "greedyub")
	for i, r := range ub.Rows {
		if v, b := seriesAt(t, ub, i, "worst-measured"), seriesAt(t, ub, i, "bound"); v > b+1e-9 {
			t.Errorf("Lmax=%v: measured ratio %v exceeds bound %v", r.X, v, b)
		}
	}
	lb := run(t, "greedylb")
	for i, r := range lb.Rows {
		m := seriesAt(t, lb, i, "measured")
		p := seriesAt(t, lb, i, "predicted")
		if diff := m - p; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("alpha=%v: measured %v != predicted %v", r.X, m, p)
		}
		if e := seriesAt(t, lb, i, "two-minus-eps"); m < e-1e-9 {
			t.Errorf("alpha=%v: measured %v below theorem's 2-eps %v", r.X, m, e)
		}
	}
}

func TestTableOnlineLB(t *testing.T) {
	tab := run(t, "onlinelb")
	for i, r := range tab.Rows {
		pred := seriesAt(t, tab, i, "predicted-lb")
		for _, pol := range []string{"greedy", "taildrop", "headdrop"} {
			if v := seriesAt(t, tab, i, pol); v < pred*0.95 {
				t.Errorf("alpha=%v: %s achieved only %v, predicted lb %v", r.X, pol, v, pred)
			}
		}
	}
}

func TestTableLosslessOrdering(t *testing.T) {
	tab := run(t, "lossless")
	for i, r := range tab.Rows {
		stored := seriesAt(t, tab, i, "stored-plan")
		min := seriesAt(t, tab, i, "minrate-lossy-law")
		if stored > min+0.02 {
			t.Errorf("D=%v: stored plan peak %v above live min rate %v", r.X, stored, min)
		}
		// Min rate decreases with delay.
		if i > 0 && min > seriesAt(t, tab, i-1, "minrate-lossy-law")+1e-9 {
			t.Errorf("min rate increased at D=%v", r.X)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "Demo, with comma", XLabel: "x", YLabel: "y",
		Series: []string{"a", "b,c"},
	}
	tab.AddRow(1, map[string]float64{"a": 2})
	tab.AddRow(2, map[string]float64{"a": 3, "b,c": 4})

	text := tab.Text()
	if !strings.Contains(text, "Demo") || !strings.Contains(text, "-") {
		t.Errorf("Text missing pieces:\n%s", text)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"b,c"`) {
		t.Errorf("CSV did not escape the series name:\n%s", csv)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Errorf("CSV has %d lines, want 3", len(lines))
	}
	if lines[1] != "1,2," {
		t.Errorf("CSV row 1 = %q", lines[1])
	}
	plot := tab.Plot(40, 8)
	if !strings.Contains(plot, "a=a") {
		t.Errorf("Plot legend missing:\n%s", plot)
	}
	if got := (&Table{}).Plot(10, 5); !strings.Contains(got, "empty") {
		t.Errorf("empty plot = %q", got)
	}
}

func TestTableGet(t *testing.T) {
	tab := &Table{Series: []string{"a"}}
	tab.AddRow(0, map[string]float64{"a": 7})
	if v, ok := tab.Get(0, "a"); !ok || v != 7 {
		t.Errorf("Get = %v/%v", v, ok)
	}
	if _, ok := tab.Get(0, "zz"); ok {
		t.Error("Get found a missing series")
	}
	if _, ok := tab.Get(5, "a"); ok {
		t.Error("Get found an out-of-range row")
	}
}

func TestTableMuxGain(t *testing.T) {
	tab := run(t, "muxgain")
	for i, r := range tab.Rows {
		sh := seriesAt(t, tab, i, "shared")
		pa := seriesAt(t, tab, i, "partitioned")
		if sh > pa+1e-9 {
			t.Errorf("K=%v: shared loss %v above partitioned %v", r.X, sh, pa)
		}
	}
	// With one stream the modes coincide.
	if sh, pa := seriesAt(t, tab, 0, "shared"), seriesAt(t, tab, 0, "partitioned"); sh != pa {
		t.Errorf("K=1: shared %v != partitioned %v", sh, pa)
	}
}

func TestTableAlternatives(t *testing.T) {
	tab := run(t, "alternatives")
	for i, r := range tab.Rows {
		lossy := seriesAt(t, tab, i, "smoothing-1pct")
		lossfree := seriesAt(t, tab, i, "lossless")
		rcbr := seriesAt(t, tab, i, "rcbr-peak")
		if lossy > lossfree+1e-9 {
			t.Errorf("D=%v: 1%%-loss smoothing needs more rate (%v) than lossless (%v)", r.X, lossy, lossfree)
		}
		if lossfree > rcbr+1e-9 {
			t.Errorf("D=%v: lossless smoothing needs more rate (%v) than rcbr peak (%v)", r.X, lossfree, rcbr)
		}
		// Rates decrease with the latency budget.
		if i > 0 && lossfree > seriesAt(t, tab, i-1, "lossless")+1e-9 {
			t.Errorf("lossless rate increased at D=%v", r.X)
		}
	}
}

func TestTableDecode(t *testing.T) {
	tab := run(t, "decode")
	for i, r := range tab.Rows {
		for _, pol := range []string{"taildrop", "greedy"} {
			del := seriesAt(t, tab, i, pol+"-delivered")
			dec := seriesAt(t, tab, i, pol+"-decodable")
			if dec > del+1e-9 {
				t.Errorf("%s at m=%v: decodable %v exceeds delivered %v", pol, r.X, dec, del)
			}
		}
		// Greedy's poisoning (delivered - decodable) must be far below
		// Tail-Drop's at moderate buffers.
		if r.X >= 2 {
			tdPoison := seriesAt(t, tab, i, "taildrop-delivered") - seriesAt(t, tab, i, "taildrop-decodable")
			grPoison := seriesAt(t, tab, i, "greedy-delivered") - seriesAt(t, tab, i, "greedy-decodable")
			if grPoison > tdPoison/2 {
				t.Errorf("m=%v: greedy poisoning %v not far below taildrop %v", r.X, grPoison, tdPoison)
			}
		}
	}
}

func TestTableProactive(t *testing.T) {
	tab := run(t, "proactive")
	// Threshold 1.0 must be present (pure greedy) and all benefits sane.
	last := len(tab.Rows) - 1
	if tab.Rows[last].X != 1.0 {
		t.Fatalf("last row x = %v, want 1.0", tab.Rows[last].X)
	}
	for i := range tab.Rows {
		for _, s := range tab.Series {
			v := seriesAt(t, tab, i, s)
			if v <= 0 || v > 100 {
				t.Errorf("row %d series %s: benefit %v%% out of range", i, s, v)
			}
		}
	}
	// Proactivity cannot beat greedy by a wide margin (the paper's
	// overflow-time greedy is already near-optimal); allow 5 points.
	greedyCrafted := seriesAt(t, tab, last, "crafted")
	for i := range tab.Rows {
		if v := seriesAt(t, tab, i, "crafted"); v > greedyCrafted+5 {
			t.Errorf("threshold %v beats greedy by %v points — suspicious", tab.Rows[i].X, v-greedyCrafted)
		}
	}
}

func TestTableJitter(t *testing.T) {
	tab := run(t, "jitter")
	reg0 := seriesAt(t, tab, 0, "regulated")
	for i, r := range tab.Rows {
		unreg := seriesAt(t, tab, i, "unregulated")
		reg := seriesAt(t, tab, i, "regulated")
		if reg != reg0 {
			t.Errorf("J=%v: regulated playback %v changed from %v — regulator leaky", r.X, reg, reg0)
		}
		if unreg > reg+1e-9 {
			t.Errorf("J=%v: unregulated %v above regulated %v", r.X, unreg, reg)
		}
	}
	// Jitter must actually hurt the naive client at the high end.
	last := len(tab.Rows) - 1
	if seriesAt(t, tab, last, "unregulated") >= reg0 {
		t.Error("max jitter did not hurt the unregulated client")
	}
}

func TestTableGlitch(t *testing.T) {
	tab := run(t, "glitch")
	for i, r := range tab.Rows {
		tdLong := seriesAt(t, tab, i, "taildrop-longest")
		grLong := seriesAt(t, tab, i, "greedy-longest")
		// Greedy's glitches must be much shorter at moderate buffers: it
		// sheds B frames (1-frame skips), taildrop loses anchors
		// (GOP-length freezes).
		if r.X >= 2 && grLong > tdLong/2 {
			t.Errorf("m=%v: greedy longest glitch %v not far below taildrop %v", r.X, grLong, tdLong)
		}
		for _, s := range tab.Series {
			if v := seriesAt(t, tab, i, s); v < 0 {
				t.Errorf("negative value %v in %s", v, s)
			}
		}
	}
}

func TestTableAdaptive(t *testing.T) {
	tab := run(t, "adaptive")
	for i := 1; i < len(tab.Rows); i++ {
		// Renegotiation frequency strictly falls with the window.
		prev := seriesAt(t, tab, i-1, "renegs/kstep")
		cur := seriesAt(t, tab, i, "renegs/kstep")
		if cur >= prev {
			t.Errorf("renegotiations did not fall: %v then %v", prev, cur)
		}
	}
	// Tight tracking (small window) must be lossless or nearly so.
	if v := seriesAt(t, tab, 0, "wloss%"); v > 1 {
		t.Errorf("smallest window lost %v%%", v)
	}
	// Reservation stays within sane bounds.
	for i := range tab.Rows {
		if v := seriesAt(t, tab, i, "mean-reserved/avg"); v < 0.9 || v > 2 {
			t.Errorf("row %d: mean reserved %v x avg out of range", i, v)
		}
	}
}

func TestTableAdmission(t *testing.T) {
	tab := run(t, "admission")
	for i, r := range tab.Rows {
		bound := seriesAt(t, tab, i, "chernoff-bound")
		measured := seriesAt(t, tab, i, "measured-bufferless")
		if bound < 0 || bound > 1 || measured < 0 || measured > 1 {
			t.Errorf("K=%v: probabilities out of range: bound %v measured %v", r.X, bound, measured)
		}
		// The bound must hold (small finite-sample slack).
		if measured > bound*1.5+0.01 {
			t.Errorf("K=%v: measured %v violates Chernoff bound %v", r.X, measured, bound)
		}
		// Overflow grows with K.
		if i > 0 && measured < seriesAt(t, tab, i-1, "measured-bufferless")-1e-9 {
			t.Errorf("measured overflow decreased at K=%v", r.X)
		}
	}
}

func TestTableRobust(t *testing.T) {
	tab := run(t, "robust")
	if len(tab.Rows) != 3 {
		t.Fatalf("expected 3 profiles, got %d", len(tab.Rows))
	}
	for i, r := range tab.Rows {
		gMax := seriesAt(t, tab, i, "greedy-max")
		tdMin := seriesAt(t, tab, i, "taildrop-min")
		// The headline: greedy's WORST case beats taildrop's BEST case on
		// every profile.
		if gMax >= tdMin {
			t.Errorf("profile %v: greedy worst %v not below taildrop best %v", r.X, gMax, tdMin)
		}
		if seriesAt(t, tab, i, "greedy-min") > gMax {
			t.Errorf("profile %v: min above max", r.X)
		}
		if seriesAt(t, tab, i, "idc256") <= 0 {
			t.Errorf("profile %v: non-positive burstiness index", r.X)
		}
	}
}

func TestTableSmartWeights(t *testing.T) {
	tab := run(t, "smartweights")
	for i, r := range tab.Rows {
		paper := seriesAt(t, tab, i, "paper-12-8-1")
		smart := seriesAt(t, tab, i, "dependency-derived")
		tail := seriesAt(t, tab, i, "taildrop-reference")
		// Both value-aware weightings decode at least as much as the
		// value-blind reference at moderate buffers, and agree with each
		// other (the ordinal-equivalence finding).
		if r.X >= 2 {
			if paper <= tail || smart <= tail {
				t.Errorf("m=%v: weighted greedy (%v/%v) not above taildrop %v", r.X, paper, smart, tail)
			}
		}
		if diff := paper - smart; diff > 2 || diff < -2 {
			t.Errorf("m=%v: weightings diverge: %v vs %v", r.X, paper, smart)
		}
	}
}

func TestTableFairness(t *testing.T) {
	tab := run(t, "fairness")
	for i, r := range tab.Rows {
		js := seriesAt(t, tab, i, "jain-shared")
		if js < 0.99 {
			t.Errorf("rate %v: shared smoothing unfair: Jain %v", r.X, js)
		}
		ws := seriesAt(t, tab, i, "wloss-shared")
		wp := seriesAt(t, tab, i, "wloss-partitioned")
		if ws > wp+1e-9 {
			t.Errorf("rate %v: shared loss %v above partitioned %v", r.X, ws, wp)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", XLabel: "x", Series: []string{"a"}, Notes: []string{"note"}}
	tab.AddRow(1, map[string]float64{"a": 2.5})
	tab.AddRow(2, nil)
	md := tab.Markdown()
	for _, want := range []string{"### x — T", "> note", "| x | a |", "| 1 | 2.5 |", "| 2 | - |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
