// Package experiment regenerates every figure and table of the paper's
// evaluation (Section 5) plus validation tables for the analytic results of
// Sections 3 and 4. Each experiment returns a Table whose series can be
// printed as aligned text, CSV, or a crude ASCII plot; cmd/experiments and
// the repository benchmarks drive them.
//
// Conventions (see DESIGN.md §5): sizes are in abstract units (1 unit =
// 1 KB); the link rate is set relative to the trace's average rate; the
// buffer axis is in multiples of the maximum frame size; D = B/R
// throughout, with B rounded to a multiple of R so the law holds exactly.
package experiment

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a generic (x, series...) result set.
type Table struct {
	// ID is the experiment identifier, e.g. "fig2".
	ID string
	// Title describes the experiment.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series names, in display order.
	Series []string
	// Rows, in x order.
	Rows []Row
	// Notes holds free-form annotations (parameters, caveats).
	Notes []string
}

// Row is one x position with one y value per series (map key = series name;
// missing entries render as blanks).
type Row struct {
	X float64
	Y map[string]float64
}

// AddRow appends a row.
func (t *Table) AddRow(x float64, y map[string]float64) {
	t.Rows = append(t.Rows, Row{X: x, Y: y})
}

// Get returns the y value of the given series at the i-th row.
func (t *Table) Get(i int, series string) (float64, bool) {
	if i < 0 || i >= len(t.Rows) {
		return 0, false
	}
	v, ok := t.Rows[i].Y[series]
	return v, ok
}

// Text renders the table as aligned columns.
func (t *Table) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s — %s\n", t.ID, t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "# %s\n", n)
	}
	fmt.Fprintf(&sb, "%-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&sb, " %14s", s)
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-12.4g", r.X)
		for _, s := range t.Series {
			if v, ok := r.Y[s]; ok {
				fmt.Fprintf(&sb, " %14.6g", v)
			} else {
				fmt.Fprintf(&sb, " %14s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV renders the table as comma-separated values with a header line.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(csvEscape(t.XLabel))
	for _, s := range t.Series {
		sb.WriteByte(',')
		sb.WriteString(csvEscape(s))
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%g", r.X)
		for _, s := range t.Series {
			sb.WriteByte(',')
			if v, ok := r.Y[s]; ok {
				fmt.Fprintf(&sb, "%g", v)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Plot renders a crude ASCII line plot of all series, letter-coded in
// series order (a, b, c, ...). It is meant for eyeballing shapes in a
// terminal, not for publication.
func (t *Table) Plot(width, height int) string {
	if len(t.Rows) == 0 || len(t.Series) == 0 {
		return "(empty table)\n"
	}
	if width < 16 {
		width = 64
	}
	if height < 4 {
		height = 16
	}
	minY, maxY := 0.0, 0.0
	first := true
	for _, r := range t.Rows {
		for _, s := range t.Series {
			v, ok := r.Y[s]
			if !ok {
				continue
			}
			if first {
				minY, maxY = v, v
				first = false
			}
			if v < minY {
				minY = v
			}
			if v > maxY {
				maxY = v
			}
		}
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	minX, maxX := t.Rows[0].X, t.Rows[len(t.Rows)-1].X
	if maxX == minX {
		maxX = minX + 1
	}
	for si, s := range t.Series {
		mark := byte('a' + si%26)
		for _, r := range t.Rows {
			v, ok := r.Y[s]
			if !ok {
				continue
			}
			col := int((r.X - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((v-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = mark
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (y: %.4g..%.4g, x: %.4g..%.4g)\n", t.Title, minY, maxY, minX, maxX)
	for _, line := range grid {
		sb.WriteString("  |")
		sb.Write(line)
		sb.WriteByte('\n')
	}
	sb.WriteString("  +" + strings.Repeat("-", width) + "\n")
	legend := make([]string, len(t.Series))
	for i, s := range t.Series {
		legend[i] = fmt.Sprintf("%c=%s", 'a'+i%26, s)
	}
	sb.WriteString("   " + strings.Join(legend, "  ") + "\n")
	return sb.String()
}

// Registry maps experiment IDs to their runners, for cmd/experiments.
type Runner func(Config) (*Table, error)

// All returns the full experiment registry keyed by ID, in a deterministic
// order via Names.
func All() map[string]Runner {
	return map[string]Runner{
		"fig2":      Fig2,
		"fig3":      Fig3,
		"fig4":      Fig4,
		"fig5":      Fig5,
		"fig6":      Fig6,
		"brd":       TableBRD,
		"bufratio":  TableBufferRatio,
		"varslices": TableVarSlices,
		"greedyub":  TableGreedyUpperBound,
		"greedylb":  TableGreedyLowerBound,
		"onlinelb":  TableOnlineLowerBound,
		"lossless":  TableLossless,
		// Extensions beyond the paper's own evaluation (see extensions.go
		// and extensions2.go).
		"muxgain":      TableMuxGain,
		"alternatives": TableAlternatives,
		"decode":       TableDecode,
		"proactive":    TableProactive,
		"jitter":       TableJitter,
		"glitch":       TableGlitch,
		"adaptive":     TableAdaptive,
		"admission":    TableAdmission,
		"robust":       TableRobust,
		"smartweights": TableSmartWeights,
		"fairness":     TableFairness,
	}
}

// Names returns the registry keys sorted with figures first.
func Names() []string {
	m := All()
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool {
		fi, fj := strings.HasPrefix(names[i], "fig"), strings.HasPrefix(names[j], "fig")
		if fi != fj {
			return fi
		}
		return names[i] < names[j]
	})
	return names
}

// Markdown renders the table as a GitHub-style pipe table with the notes as
// a blockquote header.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "> %s\n", n)
	}
	if len(t.Notes) > 0 {
		sb.WriteByte('\n')
	}
	sb.WriteString("| " + t.XLabel + " |")
	for _, s := range t.Series {
		sb.WriteString(" " + s + " |")
	}
	sb.WriteString("\n|---|")
	for range t.Series {
		sb.WriteString("---|")
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "| %g |", r.X)
		for _, s := range t.Series {
			if v, ok := r.Y[s]; ok {
				fmt.Fprintf(&sb, " %.6g |", v)
			} else {
				sb.WriteString(" - |")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
