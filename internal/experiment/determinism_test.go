package experiment

import (
	"testing"
)

// TestWorkerCountInvariance runs every registered experiment at quick scale
// with 1 worker and with 4 workers and requires byte-identical CSV output.
// This is the contract that lets golden_test.go lock one set of files
// regardless of how many goroutines a host sweeps with: result ordering is
// positional, and experiments that consume a shared random source draw all
// random inputs sequentially before the sweep starts.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	registry := All()
	for _, name := range Names() {
		runner := registry[name]
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			seq, err := runner(Config{Quick: true, Workers: 1})
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			par, err := runner(Config{Quick: true, Workers: 4})
			if err != nil {
				t.Fatalf("workers=4: %v", err)
			}
			if got, want := par.CSV(), seq.CSV(); got != want {
				t.Errorf("output differs between 1 and 4 workers:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", want, got)
			}
		})
	}
}
