package experiment

// Further extension experiments: viewer-perceived glitches, online
// renegotiated CBR, and effective-bandwidth admission control.

import (
	"fmt"
	"math"

	"repro/internal/adaptive"
	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/trace"
)

// TableGlitch measures playback glitches (maximal runs of undecodable
// frames): the viewer-facing cost of value-blind dropping, complementing
// TableDecode's per-frame counts.
func TableGlitch(c Config) (*Table, error) {
	c = c.withDefaults()
	cl, err := c.clip()
	if err != nil {
		return nil, err
	}
	st, err := trace.WholeFrameStream(cl, trace.PaperWeights())
	if err != nil {
		return nil, err
	}
	R := rateFor(cl, 0.9)
	t := &Table{
		ID:     "glitch",
		Title:  "Playback glitches per 1000 frames (extension)",
		XLabel: "buffer/maxframe",
		YLabel: "glitches/kframe (and longest run)",
		Series: []string{"taildrop-glitches", "greedy-glitches", "taildrop-longest", "greedy-longest"},
		Notes: []string{
			fmt.Sprintf("frames=%d R=%d (0.9 x avg); glitch = maximal run of undecodable frames", c.Frames, R),
		},
	}
	multiples := []float64{1, 2, 4, 8, 16}
	if c.Quick {
		multiples = []float64{1, 4, 16}
	}
	err = t.sweepRows(c, multiples, func(m float64) (map[string]float64, error) {
		B := bufferUnits(int(m * float64(cl.MaxFrameSize())))
		row := map[string]float64{}
		r := core.AcquireRunner()
		defer core.ReleaseRunner(r)
		for _, pol := range []struct {
			name string
			f    drop.Factory
		}{{"taildrop", drop.TailDrop}, {"greedy", drop.Greedy}} {
			s, err := r.Run(st, core.Config{ServerBuffer: B, Rate: R, Policy: pol.f})
			if err != nil {
				return nil, err
			}
			p := trace.Glitches(cl, func(i int) bool { return s.Outcomes[i].Played() })
			row[pol.name+"-glitches"] = p.PerKiloframe
			row[pol.name+"-longest"] = float64(p.Longest)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// TableAdaptive sweeps the RCBR renegotiation window: frequent
// renegotiation tracks the stream tightly (low reserved bandwidth, low
// loss) at high signalling cost; infrequent renegotiation approaches plain
// CBR. The static CBR operating point appears in the notes.
func TableAdaptive(c Config) (*Table, error) {
	c = c.withDefaults()
	cl, err := c.clip()
	if err != nil {
		return nil, err
	}
	st, err := trace.WholeFrameStream(cl, trace.PaperWeights())
	if err != nil {
		return nil, err
	}
	avg := cl.AverageRate()
	B := 6 * cl.MaxFrameSize()

	// Static CBR reference at 1.1 x avg with the same buffer.
	static, err := core.Simulate(st, core.Config{ServerBuffer: B, Rate: int(1.1 * avg), Policy: drop.Greedy})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "adaptive",
		Title:  "Online renegotiated CBR: window vs reservation vs loss (intro, alt. 5)",
		XLabel: "window W",
		YLabel: "(see series)",
		Series: []string{"renegs/kstep", "mean-reserved/avg", "peak/avg", "wloss%"},
		Notes: []string{
			fmt.Sprintf("frames=%d buffer=%d greedy policy; headroom 1.2", c.Frames, B),
			fmt.Sprintf("static CBR at 1.1 x avg with the same buffer: wloss %.2f%%",
				100*static.WeightedLoss()),
		},
	}
	windows := []int{2, 4, 8, 16, 32, 64, 128}
	if c.Quick {
		windows = []int{4, 16, 64}
	}
	err = t.sweepRowsInt(c, windows, func(w int) (map[string]float64, error) {
		res, err := adaptive.Run(st, B, adaptive.Config{Window: w, Headroom: 1.2}, drop.Greedy)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"renegs/kstep":      1000 * float64(res.Renegotiations) / float64(res.Steps),
			"mean-reserved/avg": res.MeanReserved / avg,
			"peak/avg":          float64(res.PeakRate) / avg,
			"wloss%":            100 * res.WeightedLoss,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// TableAdmission validates Chernoff-bound admission control against
// measured overflow of independent synthetic streams, and shows how much
// further a shared smoothing buffer pushes the real loss below the
// bufferless bound.
func TableAdmission(c Config) (*Table, error) {
	c = c.withDefaults()
	frames := c.Frames
	// Training trace for the MGF estimate.
	train, err := demandVector(c.Seed, frames)
	if err != nil {
		return nil, err
	}
	var mean float64
	for _, x := range train {
		mean += float64(x)
	}
	mean /= float64(len(train))

	const kMax = 12
	// Independent test streams.
	streams := make([][]int, kMax)
	for i := range streams {
		streams[i], err = demandVector(c.Seed+int64(i)*977+1, frames)
		if err != nil {
			return nil, err
		}
	}

	t := &Table{
		ID:     "admission",
		Title:  "Chernoff admission bound vs measured overflow (effective bandwidth)",
		XLabel: "streams K",
		YLabel: "per-step overflow probability",
		Series: []string{"chernoff-bound", "measured-bufferless"},
		Notes: []string{
			fmt.Sprintf("capacity C = 8 x mean demand (%.0f units/step); %d-frame traces", 8*mean, frames),
			"the bound is trained on one trace and tested on independent ones",
		},
	}
	C := 8 * mean
	ks := []int{5, 6, 7, 8, 9, 10}
	if c.Quick {
		ks = []int{6, 8, 10}
	}
	err = t.sweepRowsInt(c, ks, func(k int) (map[string]float64, error) {
		exp, err := admission.ChernoffExponent(train, k, C)
		if err != nil {
			return nil, err
		}
		measured, err := admission.MeasuredOverflow(streams[:k], C)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"chernoff-bound":      math.Exp(exp),
			"measured-bufferless": measured,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// demandVector generates one clip's per-step demand.
func demandVector(seed int64, frames int) ([]int, error) {
	gc := trace.DefaultGenConfig()
	gc.Frames = frames
	gc.Seed = seed
	clip, err := trace.Generate(gc)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(clip.Frames))
	for i, f := range clip.Frames {
		out[i] = f.Size
	}
	return out, nil
}
