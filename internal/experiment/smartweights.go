package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/stream"
	"repro/internal/trace"
)

// TableSmartWeights asks whether the paper's fixed 12:8:1 weights are the
// right input to the greedy policy, or whether weights derived from the
// actual decode-dependency damage (trace.DependencyWeights) buy more
// *decodable* frames. Both weightings steer the SAME greedy policy; the
// judge is the dependency-aware decodable fraction, which neither policy
// optimizes directly.
func TableSmartWeights(c Config) (*Table, error) {
	c = c.withDefaults()
	cl, err := c.clip()
	if err != nil {
		return nil, err
	}
	paper, err := trace.WholeFrameStream(cl, trace.PaperWeights())
	if err != nil {
		return nil, err
	}
	smart, err := trace.WeightedStream(cl, trace.DependencyWeights(cl))
	if err != nil {
		return nil, err
	}
	R := rateFor(cl, 0.9)
	t := &Table{
		ID:     "smartweights",
		Title:  "Greedy input weights: the paper's 12:8:1 vs decode-damage-derived",
		XLabel: "buffer/maxframe",
		YLabel: "% decodable frames",
		Series: []string{"paper-12-8-1", "dependency-derived", "taildrop-reference"},
		Notes: []string{
			fmt.Sprintf("frames=%d R=%d (0.9 x avg); whole-frame slices; judged on", c.Frames, R),
			"the decodable fraction under I<-P<-B reference chains.",
			"Finding: the two weightings coincide — greedy's choices are almost",
			"always 'B frame vs anchor', and any weighting with B << {P, I} makes",
			"them identically. The paper's 12:8:1 needs no tuning; only the",
			"ordinal structure matters.",
		},
	}
	multiples := []float64{1, 2, 4, 8, 16}
	if c.Quick {
		multiples = []float64{1, 4, 16}
	}
	err = t.sweepRows(c, multiples, func(m float64) (map[string]float64, error) {
		B := bufferUnits(int(m * float64(cl.MaxFrameSize())))
		r := core.AcquireRunner()
		defer core.ReleaseRunner(r)
		// One arena for all three runs: each schedule's decodable fraction
		// is extracted before the next run overwrites it.
		decodable := func(st *stream.Stream, f drop.Factory) (float64, error) {
			s, err := r.Run(st, core.Config{ServerBuffer: B, Rate: R, Policy: f})
			if err != nil {
				return 0, err
			}
			return 100 * trace.Decodability(cl, func(i int) bool { return s.Outcomes[i].Played() }).DecodableFraction(), nil
		}
		fPaper, err := decodable(paper, drop.Greedy)
		if err != nil {
			return nil, err
		}
		fSmart, err := decodable(smart, drop.Greedy)
		if err != nil {
			return nil, err
		}
		fTail, err := decodable(paper, drop.TailDrop)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"paper-12-8-1":       fPaper,
			"dependency-derived": fSmart,
			"taildrop-reference": fTail,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
