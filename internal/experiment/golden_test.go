package experiment

// Golden regression tests: every experiment is fully deterministic
// (seeded traces, deterministic algorithms), so its quick-mode CSV output
// is locked in testdata/. Any drift — an accidental change to a policy, an
// optimizer, the trace generator, or an experiment parameter — fails here
// first with a readable diff.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/experiment -run TestGolden -update

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenIDs are the experiments locked by golden files. The slow ones are
// all included: quick mode keeps each under a second.
var goldenIDs = []string{
	"fig2", "fig3", "fig4", "fig5", "fig6",
	"brd", "bufratio", "varslices", "greedylb", "lossless",
	"muxgain", "alternatives", "decode", "glitch", "robust", "smartweights",
}

func TestGolden(t *testing.T) {
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := All()[id](Config{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			got := tab.CSV()
			path := filepath.Join("testdata", id+"_quick.csv")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("output drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
					path, clip(got), clip(string(want)))
			}
		})
	}
}

// clip keeps golden-diff output readable.
func clip(s string) string {
	const max = 2000
	if len(s) <= max {
		return s
	}
	return s[:max] + "\n…(truncated)"
}

func TestGoldenListIsCurrent(t *testing.T) {
	// Every golden ID must exist in the registry (catch renames).
	for _, id := range goldenIDs {
		if _, ok := All()[id]; !ok {
			t.Errorf("golden ID %q not in registry", id)
		}
	}
	// Goldens must not contain trailing whitespace damage.
	for _, id := range goldenIDs {
		b, err := os.ReadFile(filepath.Join("testdata", id+"_quick.csv"))
		if err != nil {
			continue // covered by TestGolden
		}
		if strings.Contains(string(b), "\r") {
			t.Errorf("golden %s contains carriage returns", id)
		}
	}
}
