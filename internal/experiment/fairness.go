package experiment

import (
	"fmt"

	"repro/internal/drop"
	"repro/internal/mux"
	"repro/internal/stream"
	"repro/internal/trace"
)

// TableFairness stresses the shared smoothing buffer with HETEROGENEOUS
// substreams (news, sports, movie, and a second news clip) and asks whether
// sharing is fair: per Jain's index of the delivered-weight fractions,
// shared smoothing stays near 1 even under pressure, while the equal-split
// static partition punishes the burstier streams — adaptivity is exactly
// what the partition lacks.
func TableFairness(c Config) (*Table, error) {
	c = c.withDefaults()
	frames := c.Frames / 2

	var streams []*stream.Stream
	profiles := trace.Profiles()
	specs := []struct {
		profile int
		seed    int64
	}{{0, 1}, {1, 1}, {2, 1}, {0, 2}}
	totalBytes, horizon, maxFrame := 0, 0, 0
	for _, sp := range specs {
		gc := profiles[sp.profile].Cfg
		gc.Frames = frames
		gc.Seed = sp.seed
		clip, err := trace.Generate(gc)
		if err != nil {
			return nil, err
		}
		st, err := trace.WholeFrameStream(clip, trace.PaperWeights())
		if err != nil {
			return nil, err
		}
		streams = append(streams, st)
		totalBytes += st.TotalBytes()
		if st.Horizon() > horizon {
			horizon = st.Horizon()
		}
		if clip.MaxFrameSize() > maxFrame {
			maxFrame = clip.MaxFrameSize()
		}
	}
	t := &Table{
		ID:     "fairness",
		Title:  "Fairness of shared smoothing across heterogeneous streams",
		XLabel: "rate/avg",
		YLabel: "(see series)",
		Series: []string{"jain-shared", "jain-partitioned", "wloss-shared", "wloss-partitioned"},
		Notes: []string{
			fmt.Sprintf("4 substreams (news, sports, movie, news'), %d frames each;", frames),
			"total buffer 6 x maxframe x 4; greedy policy; Jain index of the",
			"per-stream delivered-weight fractions (1 = perfectly fair)",
		},
	}
	factors := []float64{0.85, 0.9, 0.95, 1.0}
	if c.Quick {
		factors = []float64{0.9, 1.0}
	}
	err := t.sweepRows(c, factors, func(f float64) (map[string]float64, error) {
		rate := int(f * float64(totalBytes) / float64(horizon+1))
		buffer := 6 * maxFrame * len(streams)
		shared, err := mux.Shared(streams, rate, buffer, drop.Greedy)
		if err != nil {
			return nil, err
		}
		part, err := mux.Partitioned(streams, rate, buffer, drop.Greedy)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"jain-shared":       shared.FairnessIndex(),
			"jain-partitioned":  part.FairnessIndex(),
			"wloss-shared":      100 * shared.WeightedLoss(),
			"wloss-partitioned": 100 * part.WeightedLoss(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
