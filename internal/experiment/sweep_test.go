package experiment

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestSweepOrdering checks that results come back in point order for a
// spread of worker counts, including counts above the point count.
func TestSweepOrdering(t *testing.T) {
	points := make([]int, 100)
	for i := range points {
		points[i] = i
	}
	for _, workers := range []int{0, 1, 2, 3, 7, 100, 1000} {
		got, err := Sweep(workers, points, func(i, p int) (int, error) {
			return 10 * p, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(points) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), len(points))
		}
		for i, r := range got {
			if r != 10*i {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, r, 10*i)
			}
		}
	}
}

// TestSweepIndexArgument checks that fn receives the point's index.
func TestSweepIndexArgument(t *testing.T) {
	points := []string{"a", "b", "c"}
	got, err := Sweep(2, points, func(i int, p string) (string, error) {
		return fmt.Sprintf("%d:%s", i, p), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0:a", "1:b", "2:c"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("result[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestSweepEmpty checks the no-points fast path.
func TestSweepEmpty(t *testing.T) {
	got, err := Sweep(4, nil, func(i, p int) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("got %v, want nil", got)
	}
}

// TestSweepErrorPropagation checks fail-fast behaviour: the error comes
// back, and with one worker no later point runs after the failure.
func TestSweepErrorPropagation(t *testing.T) {
	sentinel := errors.New("point 3 failed")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		_, err := Sweep(workers, []int{0, 1, 2, 3, 4, 5}, func(i, p int) (int, error) {
			ran.Add(1)
			if p == 3 {
				return 0, sentinel
			}
			return p, nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, sentinel)
		}
		if workers == 1 && ran.Load() != 4 {
			t.Errorf("workers=1: %d points ran, want 4 (fail-fast)", ran.Load())
		}
	}
}

// TestSweepLowestErrorWins checks that with several failures the
// lowest-index error is the one reported.
func TestSweepLowestErrorWins(t *testing.T) {
	points := make([]int, 32)
	for i := range points {
		points[i] = i
	}
	_, err := Sweep(8, points, func(i, p int) (int, error) {
		if p >= 5 {
			return 0, fmt.Errorf("err-%d", p)
		}
		return p, nil
	})
	if err == nil {
		t.Fatal("want error, got nil")
	}
	// Exactly which failures are recorded depends on scheduling, but the
	// reported one must be the lowest-index recorded failure, and point 5
	// is started before any worker can observe a failure only under
	// workers=1. Under any schedule the reported index is >= 5.
	var idx int
	if _, scanErr := fmt.Sscanf(err.Error(), "err-%d", &idx); scanErr != nil {
		t.Fatalf("unexpected error text %q", err)
	}
	if idx < 5 {
		t.Errorf("reported err-%d, but points below 5 cannot fail", idx)
	}
}

// TestSweepPanicContainment checks that a panicking point surfaces as an
// error naming the point instead of crashing the process.
func TestSweepPanicContainment(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Sweep(workers, []int{0, 1, 2}, func(i, p int) (int, error) {
			if p == 1 {
				panic("boom")
			}
			return p, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: want error from panic, got nil", workers)
		}
		if !strings.Contains(err.Error(), "point 1 panicked") || !strings.Contains(err.Error(), "boom") {
			t.Errorf("workers=%d: err = %q, want mention of point 1 and panic value", workers, err)
		}
	}
}

// TestSweepRowsOrder checks the Table helpers keep rows in x order and
// propagate errors.
func TestSweepRowsOrder(t *testing.T) {
	tab := &Table{}
	c := Config{Workers: 4}
	xs := []float64{0.5, 1.0, 1.5, 2.0}
	err := tab.sweepRows(c, xs, func(x float64) (map[string]float64, error) {
		return map[string]float64{"y": 2 * x}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(xs) {
		t.Fatalf("got %d rows, want %d", len(tab.Rows), len(xs))
	}
	for i, r := range tab.Rows {
		if r.X != xs[i] || r.Y["y"] != 2*xs[i] {
			t.Errorf("row %d = {%v %v}, want {%v map[y:%v]}", i, r.X, r.Y, xs[i], 2*xs[i])
		}
	}

	wantErr := errors.New("bad point")
	err = tab.sweepRowsInt(c, []int{1, 2, 3}, func(x int) (map[string]float64, error) {
		if x == 2 {
			return nil, wantErr
		}
		return map[string]float64{"y": float64(x)}, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("sweepRowsInt err = %v, want %v", err, wantErr)
	}
	if len(tab.Rows) != len(xs) {
		t.Errorf("failed sweep appended rows: %d, want %d", len(tab.Rows), len(xs))
	}
}
