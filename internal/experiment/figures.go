package experiment

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/offline"
	"repro/internal/stream"
	"repro/internal/trace"
)

// Config parameterizes the experiment drivers. The zero value selects the
// paper-scale defaults; set Quick for the reduced settings used by the
// repository benchmarks.
type Config struct {
	// Frames is the synthetic clip length (default 2000; Quick: 400).
	Frames int
	// Seed drives trace generation (default 1).
	Seed int64
	// BufferMultiples is the buffer axis of Figs. 2, 3, 5, 6 in units of
	// the maximum frame size (default 1..10 then even values to 26).
	BufferMultiples []float64
	// RateFactors is the link-rate axis of Fig. 4 relative to the average
	// stream rate (default 0.4..1.4 in steps of 0.1).
	RateFactors []float64
	// Fig4BufferMultiple fixes Fig. 4's buffer (default 8).
	Fig4BufferMultiple float64
	// Trials is the number of random instances in the validation tables
	// (default 40; Quick: 10).
	Trials int
	// Quick shrinks everything for benchmark iterations.
	Quick bool
	// Workers bounds how many sweep points run concurrently (see Sweep).
	// 0 selects GOMAXPROCS — except for Quick runs under the race
	// detector, which pin to 1 so race-checked benchmark iterations stay
	// comparable to the sequential baselines. Negative values also mean 1.
	// Results are identical for any worker count; only wall time changes.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Frames == 0 {
		c.Frames = 2000
		if c.Quick {
			c.Frames = 400
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.BufferMultiples) == 0 {
		c.BufferMultiples = []float64{0.25, 0.5, 0.75}
		for m := 1; m <= 10; m++ {
			c.BufferMultiples = append(c.BufferMultiples, float64(m))
		}
		for m := 12; m <= 26; m += 2 {
			c.BufferMultiples = append(c.BufferMultiples, float64(m))
		}
		if c.Quick {
			c.BufferMultiples = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 26}
		}
	}
	if len(c.RateFactors) == 0 {
		for f := 0.4; f <= 1.401; f += 0.1 {
			c.RateFactors = append(c.RateFactors, f)
		}
	}
	if c.Fig4BufferMultiple == 0 {
		c.Fig4BufferMultiple = 8
	}
	if c.Trials == 0 {
		c.Trials = 40
		if c.Quick {
			c.Trials = 10
		}
	}
	if c.Workers == 0 {
		if c.Quick && raceEnabled {
			c.Workers = 1
		} else {
			c.Workers = runtime.GOMAXPROCS(0)
		}
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

// clip builds the calibrated synthetic MPEG clip for the config.
func (c Config) clip() (*trace.Clip, error) {
	gc := trace.DefaultGenConfig()
	gc.Frames = c.Frames
	gc.Seed = c.Seed
	return trace.Generate(gc)
}

// rateFor converts a rate factor into an integer units-per-step link rate.
func rateFor(cl *trace.Clip, factor float64) int {
	r := int(factor*cl.AverageRate() + 0.5)
	if r < 1 {
		r = 1
	}
	return r
}

// bufferUnits floors a buffer size at one unit. No divisibility by R is
// required: the simulator uses D = ceil(B/R) with the lawful client buffer
// R·D, and the offline optima accept arbitrary B (their exactness for
// non-divisible B is covered by property tests).
func bufferUnits(units int) int {
	if units < 1 {
		return 1
	}
	return units
}

// lossPct returns the weighted loss of a schedule in percent.
func lossPct(benefit, total float64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * (total - benefit) / total
}

// runPolicies simulates the stream under the given policies and returns the
// benefit per policy name.
func runPolicies(st *stream.Stream, B, R int, policies map[string]drop.Factory) (map[string]float64, error) {
	// Iterate in sorted-name order so the first error surfaced (and any
	// future per-policy side effect) is deterministic.
	names := make([]string, 0, len(policies))
	for name := range policies {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]float64, len(policies))
	r := core.AcquireRunner()
	defer core.ReleaseRunner(r)
	for _, name := range names {
		s, err := r.Run(st, core.Config{ServerBuffer: B, Rate: R, Policy: policies[name]})
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", name, err)
		}
		out[name] = s.Benefit()
	}
	return out, nil
}

// lossFigure is the common core of Figs. 2 and 3: weighted loss of
// Tail-Drop, Greedy and Optimal vs buffer size at a fixed rate factor,
// in the single-byte-slice model.
func lossFigure(id, title string, rateFactor float64, c Config) (*Table, error) {
	c = c.withDefaults()
	cl, err := c.clip()
	if err != nil {
		return nil, err
	}
	st, err := trace.ByteSliceStream(cl, trace.PaperWeights())
	if err != nil {
		return nil, err
	}
	R := rateFor(cl, rateFactor)
	total := st.TotalWeight()
	t := &Table{
		ID:     id,
		Title:  title,
		XLabel: "buffer/maxframe",
		YLabel: "weighted loss %",
		Series: []string{"taildrop", "greedy", "optimal"},
		Notes: []string{
			fmt.Sprintf("frames=%d seed=%d avgRate=%.1f R=%d maxFrame=%d units",
				c.Frames, c.Seed, cl.AverageRate(), R, cl.MaxFrameSize()),
			"byte slices; weights I:P:B = 12:8:1; D = B/R",
		},
	}
	err = t.sweepRows(c, c.BufferMultiples, func(m float64) (map[string]float64, error) {
		B := bufferUnits(int(m * float64(cl.MaxFrameSize())))
		bens, err := runPolicies(st, B, R, map[string]drop.Factory{
			"taildrop": drop.TailDrop, "greedy": drop.Greedy,
		})
		if err != nil {
			return nil, err
		}
		opt, err := offline.OptimalUnit(st, B, R)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"taildrop": lossPct(bens["taildrop"], total),
			"greedy":   lossPct(bens["greedy"], total),
			"optimal":  lossPct(opt.Benefit, total),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Fig2 reproduces Figure 2: weighted loss vs buffer size with the link 10%
// above the average stream rate, byte slices.
func Fig2(c Config) (*Table, error) {
	return lossFigure("fig2", "Weighted loss, R = 1.1 x average rate (Fig. 2)", 1.1, c)
}

// Fig3 reproduces Figure 3: the same with the link 10% below the average
// rate; at least ~10% of the bytes must be lost, but Greedy and Optimal
// keep the weighted loss far below Tail-Drop's.
func Fig3(c Config) (*Table, error) {
	return lossFigure("fig3", "Weighted loss, R = 0.9 x average rate (Fig. 3)", 0.9, c)
}

// Fig4 reproduces Figure 4: benefit (percent of the total offered weight)
// of Tail-Drop, Greedy and Optimal as the link rate varies from 0.4 to 1.4
// times the average rate, at a fixed buffer.
func Fig4(c Config) (*Table, error) {
	c = c.withDefaults()
	cl, err := c.clip()
	if err != nil {
		return nil, err
	}
	st, err := trace.ByteSliceStream(cl, trace.PaperWeights())
	if err != nil {
		return nil, err
	}
	total := st.TotalWeight()
	t := &Table{
		ID:     "fig4",
		Title:  "Benefit vs link rate (Fig. 4)",
		XLabel: "rate/avgRate",
		YLabel: "benefit %",
		Series: []string{"taildrop", "greedy", "optimal"},
		Notes: []string{
			fmt.Sprintf("frames=%d seed=%d buffer=%.0f x maxFrame; byte slices",
				c.Frames, c.Seed, c.Fig4BufferMultiple),
		},
	}
	err = t.sweepRows(c, c.RateFactors, func(f float64) (map[string]float64, error) {
		R := rateFor(cl, f)
		B := bufferUnits(int(c.Fig4BufferMultiple * float64(cl.MaxFrameSize())))
		bens, err := runPolicies(st, B, R, map[string]drop.Factory{
			"taildrop": drop.TailDrop, "greedy": drop.Greedy,
		})
		if err != nil {
			return nil, err
		}
		opt, err := offline.OptimalUnit(st, B, R)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"taildrop": 100 * bens["taildrop"] / total,
			"greedy":   100 * bens["greedy"] / total,
			"optimal":  100 * opt.Benefit / total,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Fig5 reproduces Figure 5: the optimal weighted loss for whole-frame
// slices versus single-byte slices, as a function of the buffer size, at
// the average link rate. The gap reaches roughly a factor 4 for small
// buffers and shrinks as the buffer grows.
func Fig5(c Config) (*Table, error) {
	c = c.withDefaults()
	cl, err := c.clip()
	if err != nil {
		return nil, err
	}
	byteSt, err := trace.ByteSliceStream(cl, trace.PaperWeights())
	if err != nil {
		return nil, err
	}
	frameSt, err := trace.WholeFrameStream(cl, trace.PaperWeights())
	if err != nil {
		return nil, err
	}
	R := rateFor(cl, 1.0)
	total := byteSt.TotalWeight()
	t := &Table{
		ID:     "fig5",
		Title:  "Optimal weighted loss: frame slices vs byte slices (Fig. 5)",
		XLabel: "buffer/maxframe",
		YLabel: "weighted loss %",
		Series: []string{"optimal-frame", "optimal-byte"},
		Notes: []string{
			fmt.Sprintf("frames=%d seed=%d R=%d (average rate)", c.Frames, c.Seed, R),
		},
	}
	err = t.sweepRows(c, c.BufferMultiples, func(m float64) (map[string]float64, error) {
		B := bufferUnits(int(m * float64(cl.MaxFrameSize())))
		optB, err := offline.OptimalUnit(byteSt, B, R)
		if err != nil {
			return nil, err
		}
		optF, err := offline.OptimalFrames(frameSt, B, R)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"optimal-frame": lossPct(optF.Benefit, total),
			"optimal-byte":  lossPct(optB.Benefit, total),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Fig6 reproduces Figure 6: weighted loss of Tail-Drop and Greedy for
// whole-frame slices and byte slices vs buffer size, at the average rate.
func Fig6(c Config) (*Table, error) {
	c = c.withDefaults()
	cl, err := c.clip()
	if err != nil {
		return nil, err
	}
	byteSt, err := trace.ByteSliceStream(cl, trace.PaperWeights())
	if err != nil {
		return nil, err
	}
	frameSt, err := trace.WholeFrameStream(cl, trace.PaperWeights())
	if err != nil {
		return nil, err
	}
	R := rateFor(cl, 1.0)
	total := byteSt.TotalWeight()
	t := &Table{
		ID:     "fig6",
		Title:  "Tail-Drop and Greedy: frame slices vs byte slices (Fig. 6)",
		XLabel: "buffer/maxframe",
		YLabel: "weighted loss %",
		Series: []string{"taildrop-frame", "greedy-frame", "taildrop-byte", "greedy-byte"},
		Notes: []string{
			fmt.Sprintf("frames=%d seed=%d R=%d (average rate)", c.Frames, c.Seed, R),
		},
	}
	policies := map[string]drop.Factory{"taildrop": drop.TailDrop, "greedy": drop.Greedy}
	err = t.sweepRows(c, c.BufferMultiples, func(m float64) (map[string]float64, error) {
		B := bufferUnits(int(m * float64(cl.MaxFrameSize())))
		bensB, err := runPolicies(byteSt, B, R, policies)
		if err != nil {
			return nil, err
		}
		bensF, err := runPolicies(frameSt, B, R, policies)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"taildrop-byte":  lossPct(bensB["taildrop"], total),
			"greedy-byte":    lossPct(bensB["greedy"], total),
			"taildrop-frame": lossPct(bensF["taildrop"], total),
			"greedy-frame":   lossPct(bensF["greedy"], total),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
