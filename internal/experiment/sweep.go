package experiment

// The parallel sweep engine. Every experiment in this package is a sweep
// over independent points (buffer multiples, rate factors, delays, stream
// counts, ...); each point replays one or more full simulations and touches
// no shared mutable state — streams and clips are immutable once built, and
// drop policies are constructed fresh per simulation via drop.Factory.
//
// Sweep fans the points out over a bounded worker pool and returns the
// results in point order, so parallel runs are byte-identical to sequential
// ones (golden_test.go locks this in; determinism_test.go checks it for
// every registered experiment). Experiments whose points consume a shared
// random source pre-generate those inputs sequentially before sweeping.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Sweep applies fn to every point concurrently, using up to workers
// goroutines (workers <= 0 means GOMAXPROCS), and returns the results in
// point order. fn receives the point's index and value.
//
// Error handling is fail-fast: once any point fails, no new points are
// started, and the lowest-index recorded error is returned (with workers=1
// that is deterministically the first failing point in order). A panicking
// point is contained and reported as an error rather than tearing down the
// process.
//
//smoothvet:deterministic
func Sweep[P, R any](workers int, points []P, fn func(i int, p P) (R, error)) ([]R, error) {
	n := len(points)
	if n == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]R, n)
	if workers == 1 {
		for i, p := range points {
			r, err := runPoint(fn, i, p)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				r, err := runPoint(fn, i, points[i])
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runPoint invokes fn for one point, converting a panic into an error.
func runPoint[P, R any](fn func(int, P) (R, error), i int, p P) (r R, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("experiment: sweep point %d panicked: %v", i, rec)
		}
	}()
	return fn(i, p)
}

// sweepRows is the shape shared by most experiments: one row per float64
// x point, appended to the table in point order.
//
//smoothvet:deterministic
func (t *Table) sweepRows(c Config, xs []float64, fn func(x float64) (map[string]float64, error)) error {
	rows, err := Sweep(c.Workers, xs, func(_ int, x float64) (Row, error) {
		y, err := fn(x)
		if err != nil {
			return Row{}, err
		}
		return Row{X: x, Y: y}, nil
	})
	if err != nil {
		return err
	}
	t.Rows = append(t.Rows, rows...)
	return nil
}

// sweepRowsInt is sweepRows for integer-valued x axes (delays, buffer
// sizes, stream counts).
//
//smoothvet:deterministic
func (t *Table) sweepRowsInt(c Config, xs []int, fn func(x int) (map[string]float64, error)) error {
	rows, err := Sweep(c.Workers, xs, func(_ int, x int) (Row, error) {
		y, err := fn(x)
		if err != nil {
			return Row{}, err
		}
		return Row{X: float64(x), Y: y}, nil
	})
	if err != nil {
		return err
	}
	t.Rows = append(t.Rows, rows...)
	return nil
}
