package competitive_test

import (
	"fmt"

	"repro/internal/competitive"
	"repro/internal/drop"
)

// ExampleMeasureRatio measures the greedy policy's competitive ratio on the
// Theorem 4.7 adversarial instance and compares it with the closed form.
func ExampleMeasureRatio() {
	const (
		B     = 16
		alpha = 8.0
	)
	st, _ := competitive.GreedyLowerBoundInstance(B, alpha)
	ratio, online, opt, _ := competitive.MeasureRatio(st, B, 1, drop.Greedy)
	fmt.Printf("online %.0f, optimal %.0f\n", online, opt)
	fmt.Printf("measured ratio equals prediction: %v\n",
		ratio == competitive.PredictedGreedyRatio(B, alpha))
	// Output:
	// online 153, optimal 265
	// measured ratio equals prediction: true
}

// ExamplePredictedOnlineLB evaluates the Theorem 4.8 constants.
func ExamplePredictedOnlineLB() {
	fmt.Printf("alpha=2:     %.4f\n", competitive.PredictedOnlineLB(2))
	fmt.Printf("alpha=4.015: %.4f\n", competitive.PredictedOnlineLB(4.015))
	// Output:
	// alpha=2:     1.2287
	// alpha=4.015: 1.2820
}
