// Package competitive builds the adversarial instances of Section 4 of the
// paper and measures competitive ratios of online drop policies against the
// exact offline optimum.
//
// It provides:
//
//   - the parametric Theorem 4.7 instance on which the greedy policy
//     achieves ratio 2 − (2/(α+1) + 1/(B+1));
//   - the adaptive two-scenario game of Theorem 4.8, which forces every
//     deterministic online algorithm to a ratio of at least ≈1.2287
//     (α = 2) or ≈1.28197 (α ≈ 4.015, the Lotker/Sviridenko refinement);
//   - the batch pattern that makes Lemma 3.6's buffer-scaling bound tight;
//   - MeasureRatio, a convenience that runs a policy online and divides the
//     exact offline benefit by the online benefit.
package competitive

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/offline"
	"repro/internal/stream"
)

// GreedyLowerBoundInstance builds the Theorem 4.7 stream for buffer size B
// and weight ratio alpha (link rate 1, unit slices):
//
//   - step 0: B+1 slices of weight 1;
//   - steps 1..B: one slice of weight alpha each;
//   - step B+1: B+1 slices of weight alpha.
//
// On it, the greedy policy keeps all early weight-1 slices and is then
// forced to discard B weight-alpha slices, while the optimum sacrifices the
// weight-1 slices up front.
func GreedyLowerBoundInstance(B int, alpha float64) (*stream.Stream, error) {
	if B < 1 {
		return nil, fmt.Errorf("competitive: buffer size must be >= 1, got %d", B)
	}
	if alpha < 1 {
		return nil, fmt.Errorf("competitive: alpha must be >= 1, got %v", alpha)
	}
	b := stream.NewBuilder()
	for i := 0; i <= B; i++ {
		b.Add(0, 1, 1)
	}
	for t := 1; t <= B; t++ {
		b.Add(t, 1, alpha)
	}
	for i := 0; i <= B; i++ {
		b.Add(B+1, 1, alpha)
	}
	return b.Build()
}

// PredictedGreedyRatio returns the exact optimal/greedy benefit ratio on
// the Theorem 4.7 instance:
//
//	(α(2B+1) + 1) / ((B+1)(α+1)) = 2 − (2B+α+1)/((B+1)(α+1)).
func PredictedGreedyRatio(B int, alpha float64) float64 {
	return (alpha*float64(2*B+1) + 1) / (float64(B+1) * (alpha + 1))
}

// MeasureRatio runs the policy online through the generic algorithm with
// server buffer B, rate R and delay B/R, computes the exact offline
// optimum, and returns opt/online along with both benefits. The ratio is
// +Inf if the online benefit is zero while the optimum is positive, and 1
// if both are zero.
func MeasureRatio(st *stream.Stream, B, R int, factory drop.Factory) (ratio, online, opt float64, err error) {
	r := core.AcquireRunner()
	defer core.ReleaseRunner(r)
	s, err := r.Run(st, core.Config{ServerBuffer: B, Rate: R, Policy: factory})
	if err != nil {
		return 0, 0, 0, err
	}
	online = s.Benefit()

	var res *offline.Result
	if st.UnitSliced() {
		res, err = offline.OptimalUnit(st, B, R)
	} else {
		res, err = offline.OptimalFrames(st, B, R)
	}
	if err != nil {
		return 0, 0, 0, err
	}
	opt = res.Benefit

	switch {
	case online == 0 && opt == 0:
		ratio = 1
	case online == 0:
		ratio = math.Inf(1)
	default:
		ratio = opt / online
	}
	return ratio, online, opt, nil
}

// ratioOf applies MeasureRatio's zero conventions to a precomputed pair.
func ratioOf(online, opt float64) float64 {
	switch {
	case online == 0 && opt == 0:
		return 1
	case online == 0:
		return math.Inf(1)
	default:
		return opt / online
	}
}

// GameResult reports the outcome of the Theorem 4.8 adversary game.
type GameResult struct {
	// Ratio is the best (largest) opt/online ratio the adversary found.
	Ratio float64
	// StopStep is the cut step t1 of the winning scenario.
	StopStep int
	// Burst is true if the winning scenario appends the weight-alpha
	// burst at t1+1, false if it simply truncates the stream.
	Burst bool
	// Online and Opt are the benefits in the winning scenario.
	Online, Opt float64
}

// GameScenario is one fixed input of the Theorem 4.8 adversary game: the
// scenario stream for a cut step together with its exact offline optimum.
type GameScenario struct {
	// StopStep is the cut step t1 of the scenario.
	StopStep int
	// Burst is true if the scenario appends the weight-alpha burst at t1+1.
	Burst bool
	// Stream is the scenario's arrival sequence.
	Stream *stream.Stream
	// Opt is the exact offline optimal benefit on Stream.
	Opt float64
}

// GameScenarios builds the Theorem 4.8 scenario set for buffer B, weight
// ratio alpha and cut steps 0..maxSteps, with each scenario's offline
// optimum computed once. Playing the game against several policies (as
// the onlinelb table does) shares this expensive part instead of
// rebuilding every stream and re-solving every optimum per policy.
func GameScenarios(B int, alpha float64, maxSteps int) ([]GameScenario, error) {
	if B < 1 || alpha < 1 || maxSteps < 1 {
		return nil, fmt.Errorf("competitive: invalid game parameters B=%d alpha=%v maxSteps=%d", B, alpha, maxSteps)
	}
	scenarios := make([]GameScenario, 0, 2*(maxSteps+1))
	for t1 := 0; t1 <= maxSteps; t1++ {
		for _, burst := range []bool{false, true} {
			st, err := gameStream(B, alpha, t1, burst)
			if err != nil {
				return nil, err
			}
			opt, err := offline.OptimalUnit(st, B, 1)
			if err != nil {
				return nil, err
			}
			scenarios = append(scenarios, GameScenario{
				StopStep: t1, Burst: burst, Stream: st, Opt: opt.Benefit,
			})
		}
	}
	return scenarios, nil
}

// OnlineLowerBoundGame plays the adaptive adversary of Theorem 4.8 against
// the given (deterministic) policy with buffer B, link rate 1 and weight
// ratio alpha. The base arrival pattern is B+1 weight-1 slices at step 0
// followed by one weight-alpha slice per step; for every cut step
// t1 in [0, maxSteps] the adversary considers both endings — stop the
// stream at t1, or append B+1 weight-alpha slices at t1+1 — and keeps the
// scenario with the worst ratio for the online player.
//
// Because the policies are deterministic and online, re-simulating each
// scenario from scratch reproduces exactly the behaviour an adaptive
// adversary would observe.
func OnlineLowerBoundGame(factory drop.Factory, B int, alpha float64, maxSteps int) (GameResult, error) {
	scenarios, err := GameScenarios(B, alpha, maxSteps)
	if err != nil {
		return GameResult{}, err
	}
	return OnlineLowerBoundGameOn(scenarios, B, factory)
}

// OnlineLowerBoundGameOn plays the adaptive adversary game over a
// precomputed scenario set (see GameScenarios) with buffer B and rate 1.
func OnlineLowerBoundGameOn(scenarios []GameScenario, B int, factory drop.Factory) (GameResult, error) {
	r := core.AcquireRunner()
	defer core.ReleaseRunner(r)
	best := GameResult{Ratio: 0}
	for _, sc := range scenarios {
		s, err := r.Run(sc.Stream, core.Config{ServerBuffer: B, Rate: 1, Policy: factory})
		if err != nil {
			return GameResult{}, err
		}
		online := s.Benefit()
		if ratio := ratioOf(online, sc.Opt); ratio > best.Ratio {
			best = GameResult{Ratio: ratio, StopStep: sc.StopStep, Burst: sc.Burst, Online: online, Opt: sc.Opt}
		}
	}
	return best, nil
}

// RandomizedGameResult reports the oblivious-adversary game against a
// randomized policy.
type RandomizedGameResult struct {
	// Ratio is max over fixed scenarios of opt / E[online benefit].
	Ratio float64
	// StopStep and Burst identify the winning scenario.
	StopStep int
	Burst    bool
	// MeanOnline and Opt are the benefits in the winning scenario.
	MeanOnline, Opt float64
}

// OnlineLowerBoundGameRandomized plays the Theorem 4.8 scenarios against a
// RANDOMIZED policy under the oblivious-adversary model: the adversary must
// fix the input in advance (it cannot react to the policy's coin flips), and
// the policy is judged by its expected benefit over `trials` independent
// runs. Theorem 4.8's 1.2287 bound does not apply here — this measurement
// explores how much randomization actually buys against this adversary.
//
// policyFor must return a fresh policy per trial index (vary the seed).
func OnlineLowerBoundGameRandomized(policyFor func(trial int) drop.Factory, B int, alpha float64, maxSteps, trials int) (RandomizedGameResult, error) {
	if trials < 1 {
		return RandomizedGameResult{}, fmt.Errorf("competitive: invalid randomized game parameters")
	}
	scenarios, err := GameScenarios(B, alpha, maxSteps)
	if err != nil {
		return RandomizedGameResult{}, err
	}
	return OnlineLowerBoundGameRandomizedOn(scenarios, B, policyFor, trials)
}

// OnlineLowerBoundGameRandomizedOn plays the oblivious-adversary game over
// a precomputed scenario set (see GameScenarios) with buffer B and rate 1.
func OnlineLowerBoundGameRandomizedOn(scenarios []GameScenario, B int, policyFor func(trial int) drop.Factory, trials int) (RandomizedGameResult, error) {
	if trials < 1 {
		return RandomizedGameResult{}, fmt.Errorf("competitive: invalid randomized game parameters")
	}
	r := core.AcquireRunner()
	defer core.ReleaseRunner(r)
	best := RandomizedGameResult{}
	for _, sc := range scenarios {
		var sum float64
		for trial := 0; trial < trials; trial++ {
			s, err := r.Run(sc.Stream, core.Config{ServerBuffer: B, Rate: 1, Policy: policyFor(trial)})
			if err != nil {
				return RandomizedGameResult{}, err
			}
			sum += s.Benefit()
		}
		mean := sum / float64(trials)
		if ratio := ratioOf(mean, sc.Opt); ratio > best.Ratio {
			best = RandomizedGameResult{
				Ratio: ratio, StopStep: sc.StopStep, Burst: sc.Burst,
				MeanOnline: mean, Opt: sc.Opt,
			}
		}
	}
	return best, nil
}

// gameStream builds the Theorem 4.8 scenario stream: B+1 weight-1 slices at
// step 0, one weight-alpha slice at each step 1..t1, and, if burst is set,
// B+1 weight-alpha slices at step t1+1.
func gameStream(B int, alpha float64, t1 int, burst bool) (*stream.Stream, error) {
	b := stream.NewBuilder()
	for i := 0; i <= B; i++ {
		b.Add(0, 1, 1)
	}
	for t := 1; t <= t1; t++ {
		b.Add(t, 1, alpha)
	}
	if burst {
		for i := 0; i <= B; i++ {
			b.Add(t1+1, 1, alpha)
		}
	}
	return b.Build()
}

// PredictedOnlineLB returns the asymptotic (large B) lower bound on the
// competitive ratio of any deterministic online algorithm that the
// Theorem 4.8 adversary guarantees for a given alpha: the online player
// picks the cut point z = B/t1 that minimizes the worse of the two
// scenario ratios
//
//	r1(z) = (1 + α/z) / (1/z + 1 + α/z)        (truncate at t1)
//	r2(z) = (α(1 + 1/z + 1)) / (1/z + 1 + α)   (burst at t1+1)
//
// in the normalized limit; numerically this gives ≈1.2287 at α=2 and
// ≈1.28197 at α≈4.015.
func PredictedOnlineLB(alpha float64) float64 {
	// Normalize by B: t1 = B/z. Benefits per unit of B as B→∞:
	// scenario 1: online = t1 + α·t1 = (1+α)/z ... plus the B+1 ones it
	// kept? In the limit, online scenario-1 benefit ≈ t1·1 + α·t1 and
	// opt ≈ B + α·t1; scenario 2: online ≈ t1 + αB, opt ≈ α(t1 + B).
	// (Constant terms vanish as B→∞.)
	r := func(z float64) float64 {
		t1 := 1 / z // in units of B
		r1 := (1 + alpha*t1) / (t1 + alpha*t1)
		r2 := alpha * (t1 + 1) / (t1 + alpha)
		return math.Max(r1, r2)
	}
	// The online player minimizes over z > 0; r1 decreases in t1, r2
	// increases, so ternary search over log z is unimodal.
	lo, hi := -6.0, 6.0 // log z
	for i := 0; i < 200; i++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if r(math.Exp(m1)) < r(math.Exp(m2)) {
			hi = m2
		} else {
			lo = m1
		}
	}
	return r(math.Exp((lo + hi) / 2))
}

// BatchPattern builds the Lemma 3.6 tightness input: bursts of batchSize
// unit slices (weight 1) arriving every batchSize steps, for the given
// number of rounds, so a rate-1 server with buffer batchSize loses nothing
// while any smaller buffer B1 loses batchSize−B1−1 slices per round.
func BatchPattern(batchSize, rounds int) (*stream.Stream, error) {
	if batchSize < 1 || rounds < 1 {
		return nil, fmt.Errorf("competitive: invalid batch pattern %d x %d", batchSize, rounds)
	}
	b := stream.NewBuilder()
	for k := 0; k < rounds; k++ {
		for i := 0; i < batchSize; i++ {
			b.Add(k*batchSize, 1, 1)
		}
	}
	return b.Build()
}
