package competitive

import (
	"math"
	"testing"

	"repro/internal/drop"
)

func TestGreedyLowerBoundInstanceShape(t *testing.T) {
	const B = 5
	st, err := GreedyLowerBoundInstance(B, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != (B+1)+B+(B+1) {
		t.Fatalf("len = %d", st.Len())
	}
	if !st.UnitSliced() {
		t.Error("instance not unit-sliced")
	}
	if got := len(st.ArrivalsAt(0)); got != B+1 {
		t.Errorf("step 0 arrivals = %d, want %d", got, B+1)
	}
	if got := len(st.ArrivalsAt(B + 1)); got != B+1 {
		t.Errorf("burst arrivals = %d, want %d", got, B+1)
	}
	if st.ArrivalsAt(0)[0].Weight != 1 || st.ArrivalsAt(1)[0].Weight != 3 {
		t.Error("weights wrong")
	}
}

func TestGreedyLowerBoundInstanceErrors(t *testing.T) {
	if _, err := GreedyLowerBoundInstance(0, 2); err == nil {
		t.Error("B=0 accepted")
	}
	if _, err := GreedyLowerBoundInstance(2, 0.5); err == nil {
		t.Error("alpha<1 accepted")
	}
}

// TestTheorem47Measured — the measured greedy ratio on the instance equals
// the paper's closed form exactly.
func TestTheorem47Measured(t *testing.T) {
	for _, tc := range []struct {
		B     int
		alpha float64
	}{{4, 2}, {8, 5}, {16, 10}, {32, 100}} {
		st, err := GreedyLowerBoundInstance(tc.B, tc.alpha)
		if err != nil {
			t.Fatal(err)
		}
		ratio, online, opt, err := MeasureRatio(st, tc.B, 1, drop.Greedy)
		if err != nil {
			t.Fatal(err)
		}
		want := PredictedGreedyRatio(tc.B, tc.alpha)
		if math.Abs(ratio-want) > 1e-9 {
			t.Errorf("B=%d α=%v: measured ratio %v (online %v, opt %v), want %v",
				tc.B, tc.alpha, ratio, online, opt, want)
		}
	}
}

// TestTheorem47ApproachesTwo — the ratio tends to 2 as B and alpha grow.
func TestTheorem47ApproachesTwo(t *testing.T) {
	r := PredictedGreedyRatio(1000, 1000)
	if r < 1.99 || r > 2 {
		t.Errorf("limit ratio = %v, want just under 2", r)
	}
	// The epsilon bound of Theorem 4.7: ratio >= 2 - (2/(α+1) + 1/(B+1)).
	for _, tc := range []struct {
		B     int
		alpha float64
	}{{4, 2}, {10, 3}, {50, 20}} {
		eps := 2/(tc.alpha+1) + 1/float64(tc.B+1)
		if got := PredictedGreedyRatio(tc.B, tc.alpha); got < 2-eps-1e-9 {
			t.Errorf("B=%d α=%v: ratio %v below theorem's 2-ε = %v", tc.B, tc.alpha, got, 2-eps)
		}
	}
}

func TestMeasureRatioAtLeastOne(t *testing.T) {
	st, err := GreedyLowerBoundInstance(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []drop.Factory{drop.TailDrop, drop.HeadDrop, drop.Greedy} {
		ratio, _, _, err := MeasureRatio(st, 6, 1, f)
		if err != nil {
			t.Fatal(err)
		}
		if ratio < 1-1e-9 {
			t.Errorf("%s: ratio %v < 1 (optimal offline beaten?)", f().Name(), ratio)
		}
	}
}

func TestPredictedOnlineLB(t *testing.T) {
	// Paper: ≈1.2287 for α=2 (z ≈ 1.6861).
	if got := PredictedOnlineLB(2); math.Abs(got-1.2287) > 5e-4 {
		t.Errorf("PredictedOnlineLB(2) = %v, want ≈1.2287", got)
	}
	// Lotker/Sviridenko: ≈1.28197 for α≈4.015.
	if got := PredictedOnlineLB(4.015); math.Abs(got-1.28197) > 5e-4 {
		t.Errorf("PredictedOnlineLB(4.015) = %v, want ≈1.28197", got)
	}
}

// TestOnlineLowerBoundGame — the adversary must achieve at least the
// theorem's bound against every implemented policy.
func TestOnlineLowerBoundGame(t *testing.T) {
	const (
		B     = 24
		alpha = 2.0
	)
	bound := PredictedOnlineLB(alpha)
	for _, f := range []drop.Factory{drop.TailDrop, drop.HeadDrop, drop.Greedy} {
		res, err := OnlineLowerBoundGame(f, B, alpha, 3*B)
		if err != nil {
			t.Fatal(err)
		}
		// Finite-B slack: allow 5% below the asymptotic bound.
		if res.Ratio < bound*0.95 {
			t.Errorf("%s: adversary only achieved %v, theorem promises ≈%v",
				f().Name(), res.Ratio, bound)
		}
		if res.Online <= 0 || res.Opt <= 0 {
			t.Errorf("%s: degenerate game outcome %+v", f().Name(), res)
		}
	}
}

func TestOnlineLowerBoundGameErrors(t *testing.T) {
	if _, err := OnlineLowerBoundGame(drop.Greedy, 0, 2, 10); err == nil {
		t.Error("B=0 accepted")
	}
	if _, err := OnlineLowerBoundGame(drop.Greedy, 2, 0.5, 10); err == nil {
		t.Error("alpha<1 accepted")
	}
	if _, err := OnlineLowerBoundGame(drop.Greedy, 2, 2, 0); err == nil {
		t.Error("maxSteps=0 accepted")
	}
}

func TestBatchPattern(t *testing.T) {
	st, err := BatchPattern(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 12 {
		t.Fatalf("len = %d, want 12", st.Len())
	}
	if got := len(st.ArrivalsAt(4)); got != 4 {
		t.Errorf("second batch size = %d, want 4", got)
	}
	if got := len(st.ArrivalsAt(5)); got != 0 {
		t.Errorf("gap step has %d arrivals", got)
	}
	if _, err := BatchPattern(0, 1); err == nil {
		t.Error("batchSize=0 accepted")
	}
	if _, err := BatchPattern(1, 0); err == nil {
		t.Error("rounds=0 accepted")
	}
}

func TestOnlineLowerBoundGameRandomized(t *testing.T) {
	const (
		B     = 12
		alpha = 2.0
	)
	res, err := OnlineLowerBoundGameRandomized(func(trial int) drop.Factory {
		return drop.RandomMix(int64(trial)*31+1, 0.5)
	}, B, alpha, 3*B, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio < 1 {
		t.Errorf("randomized ratio %v < 1", res.Ratio)
	}
	if res.MeanOnline <= 0 || res.Opt <= 0 {
		t.Errorf("degenerate outcome: %+v", res)
	}
	// A p=0 mix is exactly the deterministic greedy: both games agree.
	det, err := OnlineLowerBoundGame(drop.Greedy, B, alpha, 3*B)
	if err != nil {
		t.Fatal(err)
	}
	same, err := OnlineLowerBoundGameRandomized(func(int) drop.Factory {
		return drop.RandomMix(1, 0)
	}, B, alpha, 3*B, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(same.Ratio-det.Ratio) > 1e-9 {
		t.Errorf("p=0 randomized game %v != deterministic game %v", same.Ratio, det.Ratio)
	}
}

func TestOnlineLowerBoundGameRandomizedErrors(t *testing.T) {
	mk := func(int) drop.Factory { return drop.Greedy }
	if _, err := OnlineLowerBoundGameRandomized(mk, 0, 2, 5, 1); err == nil {
		t.Error("B=0 accepted")
	}
	if _, err := OnlineLowerBoundGameRandomized(mk, 2, 2, 5, 0); err == nil {
		t.Error("trials=0 accepted")
	}
}
