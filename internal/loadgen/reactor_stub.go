//go:build !linux

package loadgen

import "fmt"

// The reactor needs epoll; elsewhere New fails fast and these stubs only
// keep the package compiling (the socket-free feed path still works, so
// the density benchmarks and unit tests run on any platform).

type poller struct{}

func newPoller() (*poller, error) {
	return nil, fmt.Errorf("loadgen: the client reactor requires linux (epoll)")
}

func (p *poller) add(fd int) error { return nil }
func (p *poller) del(fd int) error { return nil }
func (p *poller) close()           {}

func (sh *shard) run() { sh.eng.loopWG.Done() }
