// Package loadgen is the sharded client engine: the load-generation dual
// of internal/serve. Where the serving engine runs N shard clocks each
// stepping many sessions' smoothing buffers, loadgen runs N shard
// *reactors*, each draining the sockets of many client sessions from one
// epoll set: a session costs one fd, one ~300-byte struct and a sliding
// receive window (core.RecvWindow) — no goroutine, no time.Ticker, no
// per-session decoder, and no unbounded lag slice — so one smoothload
// process can drive 100k end-to-end sessions.
//
// # Architecture
//
//   - Dial tier: a bounded pool of dialer goroutines performs the TCP
//     dial and the Hello/Accept handshake (the only blocking reads in the
//     engine), records dial/handshake stage timings, then hands the
//     connection to a shard chosen by session index.
//   - Shard reactors: each shard owns an epoll set and wakes when any of
//     its sessions' sockets turn readable. A wake stamps one monotonic
//     clock reading (the tickClock pattern of internal/serve, measured
//     from a single engine-wide monotonic base), drains each ready socket
//     into a shard-owned scratch buffer with non-blocking reads, and
//     parses complete messages through one scratch-reusing
//     netstream.Decoder per shard. The old generator's per-session
//     goroutines took per-message wall-clock readings that skewed under
//     scheduler load; here every message drained in one wake shares the
//     wake's stamp, so reported step lag measures the server (plus a
//     bounded drain time), not the generator.
//   - Receivers: per-session playout accounting uses core.RecvWindow, the
//     sliding-window form of the simulator's dense client arrays; played,
//     incomplete and late-byte accounting matches netstream.Receiver.
//   - Statistics: step lags and stage timings stream into fixed-footprint
//     log-bucketed histograms (stats.LogHistogram, one per shard, merged
//     after the run) with a documented <= 1/32 relative quantile error —
//     memory does not grow with messages or sessions.
//
// # Lag semantics
//
// Step lag follows cmd/smoothload's original definition: a session
// anchors a clock at its first data message and records how far behind
// the ideal pacing schedule (anchor + SendStep·step) each message
// arrives. The seed rebased each session's lags by the whole-session
// minimum after the fact, which requires keeping every lag; with
// streaming histograms the engine instead refines the anchor over the
// first anchorWindow (32) messages — lags are buffered in a fixed array,
// rebased by their minimum, then recorded — and later messages record
// clamped at >= 0. Sessions that fail mid-stream contribute the lags they
// measured before failing (the seed dropped them with the session); dial
// and handshake failures contribute nothing.
//
// The engine requires Linux (epoll); New returns an error elsewhere.
package loadgen

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netstream"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Failure stages, in the order they can occur in a session's life. The
// values match cmd/smoothload's original report vocabulary.
const (
	StageDial      = "dial"
	StageHandshake = "handshake"
	StageMidStream = "mid-stream"
)

// anchorWindow is the number of leading messages buffered to refine a
// session's lag anchor (see the package comment's lag semantics).
const anchorWindow = 32

// reorderSlack widens a session's receive window beyond its smoothing
// delay; TCP delivers in order, so this only covers frames the server
// legitimately holds past their arrival step.
const reorderSlack = 8

// Config parameterizes an Engine.
type Config struct {
	// Addrs are the server addresses; sessions stripe across them
	// round-robin by session index. More than one matters beyond ~28k
	// concurrent sessions, where a single (src IP, dst IP, dst port)
	// tuple exhausts the ephemeral port range. Required.
	Addrs []string
	// Shards is the number of reactor shards (default GOMAXPROCS).
	Shards int
	// Buffer is the client buffer advertised in the Hello, in bytes
	// (0 = unlimited).
	Buffer int
	// Delay is the desired smoothing delay advertised in the Hello, in
	// steps.
	Delay int
	// Dialers bounds concurrent dial+handshake workers (default 64).
	Dialers int
	// DialTimeout bounds one TCP dial (default 10s).
	DialTimeout time.Duration
	// HandshakeTimeout bounds the Hello/Accept exchange (default 10s).
	HandshakeTimeout time.Duration
	// IdleTimeout retires a session that has received no bytes for this
	// long as a mid-stream failure (default 30s; negative disables).
	IdleTimeout time.Duration
	// Digest, when set, folds every decoded data message's
	// (slice, step, offset, length) into a per-session FNV-1a digest,
	// reported in SessionStats — the shard-count invariance tests compare
	// these across engines.
	Digest bool
	// OnSessionDone, if non-nil, is called once per session as it
	// finishes, from a dialer goroutine (dial/handshake failures) or a
	// shard goroutine; it may be called concurrently.
	OnSessionDone func(SessionStats)
	// Instrument, if non-nil, registers extra metrics (runtime stats) on
	// the generator's obs.Builder before it freezes.
	Instrument func(b *obs.Builder)
}

// SessionStats summarizes one finished client session.
type SessionStats struct {
	// Index is the session's index within its Run wave.
	Index int
	// Stage is "" for a completed session, else the failure stage (one
	// of StageDial, StageHandshake, StageMidStream).
	Stage string
	// Err is nil for a completed session.
	Err error
	// Steps is the number of model steps observed (max send step + 1).
	Steps int
	// Bytes is the payload bytes received, including late ones.
	Bytes int64
	// Played and Incomplete count slices that met / missed their playout
	// deadline; LateBytes are bytes that arrived after their frame
	// resolved; MaxBuffer is the peak receive-buffer occupancy.
	Played, Incomplete, LateBytes, MaxBuffer int
	// Digest is the FNV-1a fold of the decoded message sequence when
	// Config.Digest is set.
	Digest uint64
	// Elapsed is the wall-clock session duration from dial start.
	Elapsed time.Duration
}

// Report aggregates one Run wave.
type Report struct {
	// Sessions = Completed + Failed; the failure counts split by stage.
	Sessions, Completed, Failed                  int
	DialFailed, HandshakeFailed, MidStreamFailed int
	// Bytes and Messages cover completed sessions (the seed report's
	// throughput convention).
	Bytes    int64
	Messages int64
	// Loss accounting over completed sessions.
	Played, Incomplete, MaxIncomplete, LateBytes int
	// Lag is the step-lag distribution in microseconds across all
	// streamed messages; Dial and Handshake are stage-timing
	// distributions in microseconds over successful stages.
	Lag, Dial, Handshake *stats.LogHistogram
	// Elapsed is the wall-clock duration of the wave.
	Elapsed time.Duration
}

// Engine drives waves of client sessions against a serving tier.
type Engine struct {
	cfg  Config
	base time.Time // engine-wide monotonic base for all shard clocks

	shards []*shard
	met    *loadMetrics
	recs   []*obs.FlightRecorder

	mu        sync.Mutex // guards the dial-side tallies and histograms
	dialHist  *stats.LogHistogram
	hsHist    *stats.LogHistogram
	dialFails int
	hsFails   int

	running   atomic.Bool
	closing   atomic.Bool
	remaining atomic.Int64
	done      chan struct{}
	loopWG    sync.WaitGroup
}

// New validates the config and starts the shard reactors.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("loadgen: no server addresses")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Dialers <= 0 {
		cfg.Dialers = 64
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 30 * time.Second
	}
	e := &Engine{
		cfg:      cfg,
		base:     time.Now(),
		dialHist: stats.NewLogHistogram(stats.DefaultLogHistSubBits),
		hsHist:   stats.NewLogHistogram(stats.DefaultLogHistSubBits),
	}
	e.met = newLoadMetrics(cfg.Shards, cfg.Instrument)
	e.recs = make([]*obs.FlightRecorder, cfg.Shards)
	for i := range e.recs {
		e.recs[i] = obs.NewFlightRecorder(0)
	}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		sh, err := newShard(e, i)
		if err != nil {
			for _, prev := range e.shards[:i] {
				prev.poller.close()
			}
			return nil, err
		}
		e.shards[i] = sh
	}
	for _, sh := range e.shards {
		e.loopWG.Add(1)
		//smoothvet:transfer ownership of the shard moves to its reactor goroutine
		go sh.run()
	}
	return e, nil
}

// monotonic returns nanoseconds since the engine's base on the monotonic
// clock; every shard stamp and lag anchor lives on this axis, so wall
// clock jumps cannot skew reported lag.
func (e *Engine) monotonic() int64 { return int64(time.Since(e.base)) }

// Run drives one wave of n sessions to completion and reports the
// aggregate. Run may be called repeatedly (ramp waves) but not
// concurrently.
func (e *Engine) Run(n int) (Report, error) {
	if n < 1 {
		return Report{}, fmt.Errorf("loadgen: wave size %d", n)
	}
	if e.closing.Load() {
		return Report{}, fmt.Errorf("loadgen: engine is closed")
	}
	if !e.running.CompareAndSwap(false, true) {
		return Report{}, fmt.Errorf("loadgen: Run already in flight")
	}
	defer e.running.Store(false)

	// Previous waves have fully drained (Run waited on done), so the
	// shard goroutines are quiescent on the stats: reset everything.
	for _, sh := range e.shards {
		sh.resetStats()
	}
	e.mu.Lock()
	e.dialHist.Reset()
	e.hsHist.Reset()
	e.dialFails, e.hsFails = 0, 0
	e.mu.Unlock()

	e.remaining.Store(int64(n))
	e.done = make(chan struct{})
	start := time.Now()

	var next atomic.Int64
	dialers := e.cfg.Dialers
	if dialers > n {
		dialers = n
	}
	var dialWG sync.WaitGroup
	for d := 0; d < dialers; d++ {
		dialWG.Add(1)
		go func() {
			defer dialWG.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= n {
					return
				}
				if e.closing.Load() {
					// Still count the session down, or Run would wait on
					// waves that will never be dialed.
					e.failSetup(idx, StageDial, errEngineClosed, time.Now())
					continue
				}
				e.dialOne(idx)
			}
		}()
	}
	dialWG.Wait()
	<-e.done
	elapsed := time.Since(start)

	// All sessions retired: the shard goroutines no longer touch their
	// stats (and the atomic countdown ordered their last writes before
	// our read), so merging without locks is sound.
	rep := Report{
		Sessions: n,
		Lag:      stats.NewLogHistogram(stats.DefaultLogHistSubBits),
		Elapsed:  elapsed,
	}
	for _, sh := range e.shards {
		rep.Lag.Merge(sh.lag)
		rep.Completed += sh.tally.completed
		rep.MidStreamFailed += sh.tally.midStreamFailed
		rep.Bytes += sh.tally.bytes
		rep.Messages += sh.tally.msgs
		rep.Played += sh.tally.played
		rep.Incomplete += sh.tally.incomplete
		rep.LateBytes += sh.tally.lateBytes
		if sh.tally.maxIncomplete > rep.MaxIncomplete {
			rep.MaxIncomplete = sh.tally.maxIncomplete
		}
	}
	e.mu.Lock()
	rep.DialFailed = e.dialFails
	rep.HandshakeFailed = e.hsFails
	dial := stats.NewLogHistogram(stats.DefaultLogHistSubBits)
	dial.Merge(e.dialHist)
	hs := stats.NewLogHistogram(stats.DefaultLogHistSubBits)
	hs.Merge(e.hsHist)
	e.mu.Unlock()
	rep.Dial, rep.Handshake = dial, hs
	rep.Failed = rep.DialFailed + rep.HandshakeFailed + rep.MidStreamFailed
	return rep, nil
}

// Close stops the shard reactors, aborting any session still in flight.
// Safe to call more than once.
func (e *Engine) Close() {
	e.closing.Store(true)
	e.loopWG.Wait()
}

// finishOne counts down the wave; the last retirement releases Run.
func (e *Engine) finishOne() {
	if e.remaining.Add(-1) == 0 {
		close(e.done)
	}
}

// failSetup records a dial- or handshake-stage failure.
func (e *Engine) failSetup(idx int, stage string, err error, start time.Time) {
	e.mu.Lock()
	if stage == StageDial {
		e.dialFails++
	} else {
		e.hsFails++
	}
	e.mu.Unlock()
	if stage == StageDial {
		e.met.reg.GlobalInc(e.met.cDialFailed)
	} else {
		e.met.reg.GlobalInc(e.met.cHsFailed)
	}
	if cb := e.cfg.OnSessionDone; cb != nil {
		cb(SessionStats{Index: idx, Stage: stage, Err: err, Elapsed: time.Since(start)})
	}
	e.finishOne()
}

// dialOne performs the dial and handshake for session idx and registers
// the resulting session on its shard.
func (e *Engine) dialOne(idx int) {
	addr := e.cfg.Addrs[idx%len(e.cfg.Addrs)]
	start := time.Now()
	conn, err := net.DialTimeout("tcp", addr, e.cfg.DialTimeout)
	if err != nil {
		e.failSetup(idx, StageDial, err, start)
		return
	}
	dialDur := time.Since(start)
	fail := func(err error) {
		_ = conn.Close()
		e.failSetup(idx, StageHandshake, err, start)
	}
	hsStart := time.Now()
	_ = conn.SetDeadline(hsStart.Add(e.cfg.HandshakeTimeout))
	if err := netstream.WriteHello(conn, netstream.Hello{
		ClientBuffer: uint32(e.cfg.Buffer),
		DesiredDelay: uint32(e.cfg.Delay),
	}); err != nil {
		fail(fmt.Errorf("writing hello: %w", err))
		return
	}
	msg, err := netstream.ReadMsg(conn)
	if err != nil {
		fail(fmt.Errorf("reading accept: %w", err))
		return
	}
	if msg.Accept == nil {
		fail(fmt.Errorf("expected accept, got %+v", msg))
		return
	}
	acc := *msg.Accept
	if acc.StepMicros == 0 {
		fail(fmt.Errorf("accept has zero step duration"))
		return
	}
	hsDur := time.Since(hsStart)
	_ = conn.SetDeadline(time.Time{})

	tc, ok := conn.(*net.TCPConn)
	if !ok {
		fail(fmt.Errorf("loadgen: %T is not a TCP connection", conn))
		return
	}
	// A completed protocol run ends with a hard close: linger 0 frees the
	// port immediately instead of parking it in TIME_WAIT, which would
	// exhaust the ephemeral range within a few ramp waves at 10k+
	// sessions.
	_ = tc.SetLinger(0)
	fd, err := connFd(tc)
	if err != nil {
		fail(err)
		return
	}

	s := &session{
		idx:       idx,
		conn:      conn,
		fd:        fd,
		pos:       -1,
		delay:     int(acc.Delay),
		stepNanos: int64(acc.StepMicros) * 1000,
		maxStep:   -1,
		digest:    fnvOffset64,
		start:     start,
	}
	s.win.Reset(int(acc.Delay), reorderSlack)
	e.mu.Lock()
	e.dialHist.Add(int64(dialDur / time.Microsecond))
	e.hsHist.Add(int64(hsDur / time.Microsecond))
	e.mu.Unlock()

	sh := e.shards[idx%len(e.shards)]
	if !sh.enqueue(s) {
		_ = conn.Close()
		e.failSetup(idx, StageHandshake, fmt.Errorf("loadgen: engine is closed"), start)
	}
}

// connFd extracts the file descriptor of a TCP connection for the shard
// reactors' non-blocking reads. The fd stays owned by the net.Conn (the
// runtime keeps it in its own poller; loadgen never reads through the
// conn after the handshake, so the two never contend).
func connFd(tc *net.TCPConn) (int, error) {
	rc, err := tc.SyscallConn()
	if err != nil {
		return 0, fmt.Errorf("loadgen: raw conn: %w", err)
	}
	fd := -1
	if err := rc.Control(func(f uintptr) { fd = int(f) }); err != nil {
		return 0, fmt.Errorf("loadgen: conn fd: %w", err)
	}
	return fd, nil
}
