//go:build linux

package loadgen

import (
	"fmt"
	"io"
	"syscall"
)

const (
	// epollWaitMs bounds one reactor nap; it also bounds how long a
	// queued session waits for admission and how stale an idle scan can
	// be. 10ms sits well under the smallest practical step duration.
	epollWaitMs = 10
	// maxEvents is the per-wait event batch; more ready sessions than
	// this simply surface on the next wait (level-triggered).
	maxEvents = 1024
	// idleScanChunk bounds the idle-timeout sweep per wake so a 100k
	// session shard does not walk its whole table every 10ms.
	idleScanChunk = 256
)

// poller wraps one epoll set. All sockets the runtime hands us are
// already non-blocking, so the shard reads them directly with
// syscall.Read and lets epoll say when that is worthwhile.
type poller struct {
	epfd   int
	events []syscall.EpollEvent
}

func newPoller() (*poller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, fmt.Errorf("loadgen: epoll_create: %w", err)
	}
	return &poller{epfd: epfd, events: make([]syscall.EpollEvent, maxEvents)}, nil
}

func (p *poller) add(fd int) error {
	ev := syscall.EpollEvent{
		Events: syscall.EPOLLIN | syscall.EPOLLRDHUP,
		Fd:     int32(fd),
	}
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, fd, &ev)
}

func (p *poller) del(fd int) error {
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, fd, nil)
}

func (p *poller) close() {
	if p.epfd >= 0 {
		_ = syscall.Close(p.epfd)
		p.epfd = -1
	}
}

// run is the shard reactor loop: wait for readable sockets, stamp the
// shard clock once, admit queued sessions, drain every ready socket
// against that one stamp, sweep a bounded idle chunk.
//
// The single stamp per wake is the generator-side half of the step-lag
// fix: the old per-session clients took a wall-clock reading per message
// after an arbitrary scheduler delay, so under load the generator's own
// jitter was indistinguishable from server lag. Here every message
// drained in a wake shares one monotonic reading taken immediately after
// epoll_wait returns, so a reported lag can exceed truth by at most the
// drain time of one wake.
func (sh *shard) run() {
	defer sh.eng.loopWG.Done()
	for {
		n, err := syscall.EpollWait(sh.poller.epfd, sh.poller.events, epollWaitMs)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			n = 0
		}
		now := sh.eng.monotonic()
		sh.admit(now)
		for i := 0; i < n; i++ {
			if s := sh.lookupFd(int(sh.poller.events[i].Fd)); s != nil {
				sh.drainFd(s, now)
			}
		}
		sh.scanIdle(now)
		// Publish the wake's metric state: one gauge store plus an
		// O(metrics) snapshot copy per wake (≤100/s), never per message.
		sh.met.Set(sh.eng.met.gActive, uint64(len(sh.sessions)))
		sh.met.Publish()
		if sh.eng.closing.Load() {
			sh.shutdown()
			return
		}
	}
}

// drainFd empties one ready socket into the shard scratch buffer and
// feeds the bytes through the decoder. A short read means the socket
// buffer is (momentarily) empty; level-triggered epoll re-arms for
// whatever arrives next.
//
//smoothvet:noalloc
func (sh *shard) drainFd(s *session, now int64) {
	for {
		n, err := syscall.Read(s.fd, sh.scratch)
		if n > 0 {
			s.lastData = now
			if ferr := sh.feed(s, sh.scratch[:n], now); ferr != nil {
				sh.retire(s, StageMidStream, ferr, now)
				return
			}
			if s.ended {
				sh.retire(s, "", nil, now)
				return
			}
			if n < len(sh.scratch) {
				return
			}
			continue
		}
		if err == nil {
			// EOF before End: the peer hung up mid-stream.
			sh.retire(s, StageMidStream, io.ErrUnexpectedEOF, now)
			return
		}
		if en, ok := err.(syscall.Errno); ok {
			if en == syscall.EAGAIN {
				return
			}
			if en == syscall.EINTR {
				continue
			}
		}
		sh.retire(s, StageMidStream, err, now)
		return
	}
}

// scanIdle sweeps up to idleScanChunk sessions for idle timeout,
// resuming where the last wake left off.
func (sh *shard) scanIdle(now int64) {
	limit := int64(sh.eng.cfg.IdleTimeout)
	if limit <= 0 || len(sh.sessions) == 0 {
		return
	}
	k := idleScanChunk
	if k > len(sh.sessions) {
		k = len(sh.sessions)
	}
	for ; k > 0; k-- {
		if sh.idleCur >= len(sh.sessions) {
			sh.idleCur = 0
		}
		if len(sh.sessions) == 0 {
			return
		}
		s := sh.sessions[sh.idleCur]
		if now-s.lastData > limit {
			// The swap-remove moves another session into idleCur; it is
			// re-examined on a later pass.
			sh.retire(s, StageMidStream, errIdleTimeout, now)
			continue
		}
		sh.idleCur++
	}
}

// shutdown aborts every live and queued session and releases the epoll
// set. Runs once, on the shard goroutine, after Engine.Close.
func (sh *shard) shutdown() {
	now := sh.eng.monotonic()
	for len(sh.sessions) > 0 {
		sh.retire(sh.sessions[len(sh.sessions)-1], StageMidStream, errEngineClosed, now)
	}
	sh.mu.Lock()
	pend := sh.incoming
	sh.incoming = nil
	sh.mu.Unlock()
	for _, s := range pend {
		sh.retire(s, StageMidStream, errEngineClosed, now)
	}
	sh.met.Set(sh.eng.met.gActive, 0)
	sh.met.Publish()
	sh.poller.close()
}
