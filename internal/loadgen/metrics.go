package loadgen

import (
	"repro/internal/obs"
)

// loadMetrics bundles the generator's obs registry with the slot IDs its
// shards record through. The step-lag histogram doubles as the shard's
// lag accumulator (shard.lag aliases the live slot), so the per-message
// hot path pays nothing extra for being scrapeable.
type loadMetrics struct {
	reg *obs.Registry

	// Shard-recorded counters.
	cAdmitted  obs.CounterID
	cCompleted obs.CounterID
	cMidFailed obs.CounterID

	// Dialer-recorded (global) counters.
	cDialFailed obs.CounterID
	cHsFailed   obs.CounterID

	// Gauges and distributions.
	gActive    obs.GaugeID
	hLag       obs.HistID
	hOccupancy obs.HistID
}

// newLoadMetrics registers the load generator's metric set (plus any
// daemon-provided extras) and freezes it for the given shard count.
func newLoadMetrics(shards int, extra func(*obs.Builder)) *loadMetrics {
	var b obs.Builder
	m := &loadMetrics{}
	m.cAdmitted = b.Counter("loadgen_sessions_admitted_total", "Sessions registered on a reactor shard after handshake.")
	m.cCompleted = b.Counter("loadgen_sessions_completed_total", "Sessions that received End and retired cleanly.")
	m.cMidFailed = b.Counter("loadgen_sessions_midstream_failed_total", "Sessions that failed after registration (decode error, EOF, idle timeout).")
	m.cDialFailed = b.Counter("loadgen_dial_failures_total", "Sessions that failed in the dial stage.")
	m.cHsFailed = b.Counter("loadgen_handshake_failures_total", "Sessions that failed in the handshake stage.")
	m.gActive = b.Gauge("loadgen_sessions_active", "Sessions currently registered, summed across shards.")
	m.hLag = b.Histogram("loadgen_step_lag_us", "Per-message step lag against the pacing schedule, microseconds (reset per wave).")
	m.hOccupancy = b.Histogram("loadgen_recv_window_occupancy", "Peak receive-window occupancy per retired session, slices.")
	if extra != nil {
		extra(&b)
	}
	m.reg = obs.Build(&b, shards)
	return m
}

// Obs returns the generator's metric registry for diag endpoints and
// tests.
func (e *Engine) Obs() *obs.Registry { return e.met.reg }

// StepLagHist returns the step-lag histogram's slot ID — the series the
// -slo accountant windows.
func (e *Engine) StepLagHist() obs.HistID { return e.met.hLag }

// FlightRecorders returns the per-shard flight-recorder rings, indexed by
// shard.
func (e *Engine) FlightRecorders() []*obs.FlightRecorder { return e.recs }
