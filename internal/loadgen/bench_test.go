package loadgen

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/netstream"
	"repro/internal/stream"
)

// ---------------------------------------------------------------------------
// Socket-free density benchmark: the per-step client hot path.
// ---------------------------------------------------------------------------

// benchSpans records a real sender's wire output split at step boundaries:
// span k holds exactly the bytes the server writes in model step k, which
// is what one epoll wake reads from a healthy socket.
func benchSpans(tb testing.TB, frames int) (spans [][]byte, delay int, stepNanos int64) {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	b := stream.NewBuilder()
	for f := 0; f < frames; f++ {
		b.Add(f, 30+rng.Intn(60), 1)
	}
	st := b.MustBuild()
	rate := st.TotalBytes()/frames + 1
	var buf bytes.Buffer
	snd, err := netstream.NewSender(&buf, netstream.SenderConfig{ServerBuffer: 4 * rate, Rate: rate})
	if err != nil {
		tb.Fatal(err)
	}
	slices := st.Slices()
	payload := make([]byte, st.MaxSliceSize())
	prev := 0
	mark := func() {
		spans = append(spans, buf.Bytes()[prev:buf.Len()])
		prev = buf.Len()
	}
	var offered []netstream.Offered
	for step, i := 0, 0; step <= st.Horizon(); step++ {
		offered = offered[:0]
		for i < len(slices) && slices[i].Arrival == step {
			offered = append(offered, netstream.Offered{Slice: slices[i], Payload: payload[:slices[i].Size]})
			i++
		}
		if _, err := snd.Tick(offered); err != nil {
			tb.Fatal(err)
		}
		mark()
	}
	for snd.Backlog() > 0 {
		if _, err := snd.Tick(nil); err != nil {
			tb.Fatal(err)
		}
		mark()
	}
	if err := netstream.WriteEnd(&buf); err != nil {
		tb.Fatal(err)
	}
	mark()
	return spans, snd.Delay(), int64(time.Millisecond)
}

func resetBenchSession(s *session, delay int) {
	s.anchored, s.refined, s.nEarly = false, false, 0
	s.rebase = 0
	s.pending = s.pending[:0]
	s.ended = false
	s.bytes, s.msgs = 0, 0
	s.maxStep = -1
	s.digest = fnvOffset64
	s.win.Reset(delay, reorderSlack)
}

// BenchmarkLoadgenStep measures one model step of the client engine over N
// sessions with the sockets factored out: every session is fed the span of
// bytes a real sender emits in that step, exercising tail carry, framing,
// decode, lag recording and the receive window. One op = one step across
// all sessions. The steady state must not allocate — this is the path that
// has to hold at 100k sessions, and it is pinned at exactly zero in
// scripts/verify.sh.
func BenchmarkLoadgenStep(b *testing.B) {
	spans, delay, stepNanos := benchSpans(b, 24)
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("sessions_%dk", n/1000), func(b *testing.B) {
			eng := &Engine{cfg: Config{}, base: time.Now()}
			sh := newShardCore(eng, 0)
			sessions := make([]*session, n)
			for i := range sessions {
				s := &session{idx: i, fd: -1, pos: -1, delay: delay, stepNanos: stepNanos, start: time.Now()}
				resetBenchSession(s, delay)
				sessions[i] = s
			}
			feedStep := func(k int) {
				now := int64(k) * stepNanos
				span := spans[k]
				for _, s := range sessions {
					if err := sh.feed(s, span, now); err != nil {
						b.Fatal(err)
					}
				}
			}
			// One full clip as warmup: pending buffers, ring sizes and the
			// shard histogram reach their steady state.
			for k := range spans {
				feedStep(k)
			}
			for _, s := range sessions {
				resetBenchSession(s, delay)
			}
			bytesPerStep := 0
			for _, sp := range spans {
				bytesPerStep += len(sp)
			}
			b.SetBytes(int64(n * bytesPerStep / len(spans)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % len(spans)
				feedStep(k)
				if k == len(spans)-1 {
					for _, s := range sessions {
						resetBenchSession(s, delay)
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// End-to-end loopback benchmark: real serve.Engine, real sockets.
// ---------------------------------------------------------------------------

// TestLoopbackServer is not a test: it is the server half of
// BenchmarkLoopback, run in a child process (re-exec of the test binary)
// so the 20k-per-process fd ceiling bounds client and server separately.
// It prints "LISTEN <addr>" once ready and exits when stdin closes.
func TestLoopbackServer(t *testing.T) {
	if os.Getenv("LOOPBACK_SERVER") != "1" {
		t.Skip("server half of BenchmarkLoopback; set LOOPBACK_SERVER=1")
	}
	addr := startServer(t, 24, 2*time.Millisecond, 1.1)
	fmt.Printf("LISTEN %s\n", addr)
	_, _ = bufio.NewReader(os.Stdin).ReadString('\n') // block until the parent hangs up
}

// startServerProcess re-execs the test binary as a loopback server and
// returns its address plus a stop function.
func startServerProcess(b *testing.B) (string, func()) {
	b.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestLoopbackServer$", "-test.v")
	cmd.Env = append(os.Environ(), "LOOPBACK_SERVER=1")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		b.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		b.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		b.Fatal(err)
	}
	stop := func() {
		stdin.Close()
		_ = cmd.Wait()
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "LISTEN "); ok {
			return rest, stop
		}
	}
	stop()
	b.Fatalf("loopback server produced no LISTEN line (scan err: %v)", sc.Err())
	return "", nil
}

// BenchmarkLoopback drives N complete sessions through a real serving
// engine (child process) and the real client engine over loopback TCP —
// the end-to-end capacity measurement. One op = one full wave of N
// sessions: dial, handshake, stream, play out, account. Waves are capped
// at 12500 concurrent sessions to stay under the per-process fd ceiling;
// the 100k point runs 8 such waves and is gated behind LOOPBACK_100K=1
// because it takes minutes on one core.
func BenchmarkLoopback(b *testing.B) {
	if runtime.GOOS != "linux" {
		b.Skip("loadgen reactor requires linux")
	}
	const maxWave = 12_500
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("sessions_%dk", n/1000), func(b *testing.B) {
			if n > 2*maxWave && os.Getenv("LOOPBACK_100K") != "1" {
				b.Skip("set LOOPBACK_100K=1 to run the multi-wave 100k point")
			}
			addr, stop := startServerProcess(b)
			defer stop()
			eng, err := New(Config{Addrs: []string{addr}, Delay: 8, Dialers: 128})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.ReportAllocs()
			b.ResetTimer()
			var last Report
			for i := 0; i < b.N; i++ {
				var elapsed time.Duration
				for left := n; left > 0; {
					wave := left
					if wave > maxWave {
						wave = maxWave
					}
					rep, err := eng.Run(wave)
					if err != nil {
						b.Fatal(err)
					}
					if rep.Failed > 0 {
						b.Fatalf("wave of %d: %d failed (%d dial, %d handshake, %d mid-stream)",
							wave, rep.Failed, rep.DialFailed, rep.HandshakeFailed, rep.MidStreamFailed)
					}
					rep.Elapsed = elapsed + rep.Elapsed
					elapsed = rep.Elapsed
					if last.Lag != nil && left < n {
						rep.Lag.Merge(last.Lag) // cumulative quantiles across waves
					}
					last = rep
					left -= wave
				}
				b.ReportMetric(float64(n)/last.Elapsed.Seconds(), "sessions/s")
				b.ReportMetric(float64(last.Lag.Quantile(0.99)), "p99-µs")
				b.ReportMetric(float64(last.Lag.Quantile(0.999)), "p99.9-µs")
			}
		})
	}
}
