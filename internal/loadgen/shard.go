package loadgen

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netstream"
	"repro/internal/obs"
	"repro/internal/stats"
)

// shardScratchSize is the per-shard read buffer: one non-blocking read
// drains up to this much of a socket before yielding to the next ready
// session.
const shardScratchSize = 256 << 10

var (
	errUnexpectedMsg = errors.New("loadgen: unexpected message mid-stream")
	errBadSlice      = errors.New("loadgen: data message with invalid size or offset")
	errIdleTimeout   = errors.New("loadgen: session idle timeout")
	errEngineClosed  = errors.New("loadgen: engine is closed")
)

// session is one client stream's state between reactor wakes: an fd, a
// lag anchor, a partial-message tail and a sliding receive window. It
// has no goroutine and no timer; everything below ~anchorWindow messages
// is fixed-size, and pending/win reach a stream-dependent steady state.
type session struct {
	idx  int
	conn net.Conn
	fd   int
	pos  int // index in shard.sessions, maintained across swap-removes

	delay     int
	stepNanos int64

	// Lag anchor (see the package comment): provisional at the first
	// message, refined by the minimum of the first anchorWindow lags.
	anchored bool
	refined  bool
	nEarly   int
	early    [anchorWindow]int64 // µs, relative to the provisional anchor
	anchor   int64               // engine-monotonic nanos of schedule zero
	rebase   int64               // µs subtracted from post-refinement lags

	lastData int64  // shard stamp of the last readable byte (idle timeout)
	pending  []byte // partial-message tail carried between reads
	ended    bool   // End decoded; retire as completed

	win     core.RecvWindow
	bytes   int64
	msgs    int64
	maxStep int
	digest  uint64
	start   time.Time
}

// tally accumulates one shard's finished-session aggregates; only the
// owning shard goroutine touches it.
type tally struct {
	completed       int
	midStreamFailed int
	bytes           int64
	msgs            int64
	played          int
	incomplete      int
	maxIncomplete   int
	lateBytes       int
}

// shard owns a set of sessions and the reactor resources they share: one
// poller, one scratch read buffer, one decoder, one lag histogram.
//
//smoothvet:confined owned by the reactor goroutine after Run hands it off
type shard struct {
	eng    *Engine
	poller *poller

	scratch []byte
	br      bytes.Reader
	dec     *netstream.Decoder

	//smoothvet:shared guards incoming only
	mu sync.Mutex
	//smoothvet:shared appended under mu by enqueue, drained by admit
	incoming []*session
	spare    []*session

	sessions []*session
	byFd     []*session
	idleCur  int

	// lag aliases the live obs histogram slot (met.HistRef), so the
	// per-message Add is also the scrape-visible series.
	lag   *stats.LogHistogram
	tally tally

	// met and rec are this shard's obs slots and flight ring: recorded
	// into only by the reactor goroutine, read elsewhere only through
	// their published snapshots.
	met *obs.ShardMetrics
	rec *obs.FlightRecorder
}

// newShardCore builds shard idx without a poller — the socket-free form
// the density benchmarks drive through feed directly. Engines built
// outside New (benchmarks) get a single-purpose registry on demand.
func newShardCore(e *Engine, idx int) *shard {
	if e.met == nil {
		e.met = newLoadMetrics(idx+1, nil)
		e.recs = make([]*obs.FlightRecorder, idx+1)
		for i := range e.recs {
			e.recs[i] = obs.NewFlightRecorder(0)
		}
	}
	m := e.met.reg.Shard(idx)
	sh := &shard{
		eng:     e,
		scratch: make([]byte, shardScratchSize),
		byFd:    make([]*session, 1024),
		lag:     m.HistRef(e.met.hLag),
		met:     m,
		rec:     e.recs[idx],
	}
	sh.dec = netstream.NewDecoder(&sh.br)
	return sh
}

func newShard(e *Engine, idx int) (*shard, error) {
	p, err := newPoller()
	if err != nil {
		return nil, err
	}
	sh := newShardCore(e, idx)
	sh.poller = p
	return sh, nil
}

// resetStats clears the per-wave aggregates. Run calls it from the main
// goroutine while the shard is quiescent between waves; the histogram
// resets go through ResetHist, whose snapshot mutex orders them against
// the reactor's periodic Publish.
func (sh *shard) resetStats() {
	sh.met.ResetHist(sh.eng.met.hLag)
	sh.met.ResetHist(sh.eng.met.hOccupancy)
	sh.tally = tally{}
}

// enqueue hands a freshly handshaken session to the shard; it reports
// false when the engine is closing and the session was not accepted.
func (sh *shard) enqueue(s *session) bool {
	sh.mu.Lock()
	if sh.eng.closing.Load() {
		sh.mu.Unlock()
		return false
	}
	sh.incoming = append(sh.incoming, s)
	sh.mu.Unlock()
	return true
}

// admit registers every queued session. Runs on the shard goroutine.
func (sh *shard) admit(now int64) {
	sh.mu.Lock()
	if len(sh.incoming) == 0 {
		sh.mu.Unlock()
		return
	}
	pend := sh.incoming
	sh.incoming = sh.spare[:0]
	sh.mu.Unlock()
	for i := range pend {
		sh.register(pend[i], now)
		pend[i] = nil
	}
	sh.spare = pend[:0]
}

func (sh *shard) register(s *session, now int64) {
	if err := sh.poller.add(s.fd); err != nil {
		sh.retire(s, StageMidStream, err, now)
		return
	}
	sh.met.Inc(sh.eng.met.cAdmitted)
	sh.rec.Record(now, obs.EvAdmit, uint64(s.idx), 0)
	s.pos = len(sh.sessions)
	sh.sessions = append(sh.sessions, s)
	if s.fd >= len(sh.byFd) {
		grown := make([]*session, s.fd+s.fd/2+1)
		copy(grown, sh.byFd)
		sh.byFd = grown
	}
	sh.byFd[s.fd] = s
	s.lastData = now
	// No immediate drain: epoll is level-triggered, so bytes that arrived
	// while the session sat in the queue surface on the next wait.
}

func (sh *shard) lookupFd(fd int) *session {
	if fd < 0 || fd >= len(sh.byFd) {
		return nil
	}
	return sh.byFd[fd]
}

// retire finishes a session: success when stage is "", else a mid-stream
// failure. Runs on the shard goroutine. now is the caller's wake stamp
// (engine-monotonic nanos): retire sits downstream of the noalloc drain
// path, so it derives Elapsed from the stamp instead of re-reading the
// wall clock.
func (sh *shard) retire(s *session, stage string, err error, now int64) {
	if sh.poller != nil && s.fd >= 0 {
		_ = sh.poller.del(s.fd)
	}
	if s.fd >= 0 && s.fd < len(sh.byFd) && sh.byFd[s.fd] == s {
		sh.byFd[s.fd] = nil
	}
	if last := len(sh.sessions) - 1; last >= 0 && s.pos >= 0 && s.pos <= last && sh.sessions[s.pos] == s {
		sh.sessions[s.pos] = sh.sessions[last]
		sh.sessions[s.pos].pos = s.pos
		sh.sessions[last] = nil
		sh.sessions = sh.sessions[:last]
		if sh.idleCur > last {
			sh.idleCur = 0
		}
	}
	if s.conn != nil {
		_ = s.conn.Close()
	}
	if !s.refined && s.nEarly > 0 {
		sh.flushEarly(s)
	}
	if stage == "" {
		s.win.Finish()
		sh.met.Inc(sh.eng.met.cCompleted)
		sh.met.Observe(sh.eng.met.hOccupancy, int64(s.win.MaxOccupancy()))
		sh.rec.Record(now, obs.EvRetire, uint64(s.idx), int64(s.maxStep+1))
		sh.tally.completed++
		sh.tally.bytes += s.bytes
		sh.tally.msgs += s.msgs
		sh.tally.played += s.win.Played()
		sh.tally.incomplete += s.win.Incomplete()
		sh.tally.lateBytes += s.win.LateBytes()
		if s.win.Incomplete() > sh.tally.maxIncomplete {
			sh.tally.maxIncomplete = s.win.Incomplete()
		}
	} else {
		sh.met.Inc(sh.eng.met.cMidFailed)
		sh.rec.Record(now, obs.EvError, uint64(s.idx), int64(s.maxStep+1))
		sh.tally.midStreamFailed++
	}
	if cb := sh.eng.cfg.OnSessionDone; cb != nil {
		cb(SessionStats{
			Index:      s.idx,
			Stage:      stage,
			Err:        err,
			Steps:      s.maxStep + 1,
			Bytes:      s.bytes,
			Played:     s.win.Played(),
			Incomplete: s.win.Incomplete(),
			LateBytes:  s.win.LateBytes(),
			MaxBuffer:  s.win.MaxOccupancy(),
			Digest:     s.digest,
			Elapsed:    sh.eng.base.Add(time.Duration(now)).Sub(s.start),
		})
	}
	sh.eng.finishOne()
}

// feed pushes freshly read bytes through the shard decoder, carrying any
// partial-message tail over in the session's pending buffer. This is the
// per-step hot path: steady state performs no allocation (pending grows
// to the largest partial tail once, then is reused).
//
//smoothvet:noalloc
func (sh *shard) feed(s *session, chunk []byte, now int64) error {
	buf := chunk
	if len(s.pending) > 0 {
		s.pending = append(s.pending, chunk...)
		buf = s.pending
	}
	consumed, err := sh.parse(s, buf, now)
	if err != nil {
		return err
	}
	rest := buf[consumed:]
	if len(s.pending) > 0 {
		// Shift the unconsumed tail to the front; copy is overlap-safe.
		n := copy(s.pending, rest)
		s.pending = s.pending[:n]
	} else if len(rest) > 0 {
		s.pending = s.pending[:0]
		s.pending = append(s.pending, rest...)
	}
	return nil
}

// parse decodes every complete message in buf, returning the bytes
// consumed. SizeNext frames each message so the shard decoder reads from
// an exact in-memory slice — no per-session decoder state, no blocking.
//
//smoothvet:noalloc
func (sh *shard) parse(s *session, buf []byte, now int64) (int, error) {
	off := 0
	for {
		n, err := netstream.SizeNext(buf[off:])
		if err != nil {
			return off, err
		}
		if n == 0 || n > len(buf)-off {
			return off, nil
		}
		sh.br.Reset(buf[off : off+n])
		msg, err := sh.dec.Next()
		if err != nil {
			return off, err
		}
		off += n
		switch {
		case msg.Data != nil:
			if err := sh.onData(s, msg.Data, now); err != nil {
				return off, err
			}
		case msg.End:
			s.ended = true
			return off, nil
		default:
			return off, errUnexpectedMsg
		}
	}
}

// onData applies one data message: lag measurement against the pacing
// schedule, then the seed client's flush-then-ingest playout order on
// the receive window.
//
//smoothvet:noalloc
func (sh *shard) onData(s *session, d *netstream.Data, now int64) error {
	if d.Size == 0 || d.Size > netstream.MaxPayload {
		return errBadSlice
	}
	if int(d.Offset)+len(d.Payload) > int(d.Size) {
		return errBadSlice
	}
	ideal := int64(d.SendStep) * s.stepNanos
	if !s.anchored {
		s.anchor = now - ideal
		s.anchored = true
		sh.rec.Record(now, obs.EvFirstWrite, uint64(s.idx), int64(d.SendStep))
	}
	lag := (now - s.anchor - ideal) / int64(time.Microsecond)
	if !s.refined {
		s.early[s.nEarly] = lag
		s.nEarly++
		if s.nEarly == anchorWindow {
			sh.flushEarly(s)
		}
	} else {
		sh.lag.Add(lag - s.rebase)
	}
	s.bytes += int64(len(d.Payload))
	s.msgs++
	step := int(d.SendStep)
	if step > s.maxStep {
		s.maxStep = step
	}
	// Frames due strictly before this message's send step have reached
	// their playout deadline: resolve them, then ingest (the seed
	// client's flush(SendStep-1) ordering).
	s.win.ResolveTo(step - 1 - s.delay)
	s.win.Ingest(int32(d.SliceID), int(d.Arrival), int32(d.Size), int32(len(d.Payload)))
	if sh.eng.cfg.Digest {
		s.digest = fnvFold(fnvFold(fnvFold(fnvFold(s.digest, d.SliceID), d.SendStep), d.Offset), uint32(len(d.Payload)))
	}
	return nil
}

// flushEarly rebases the buffered leading lags by their minimum and
// records them; later lags subtract the same rebase.
//
//smoothvet:noalloc
func (sh *shard) flushEarly(s *session) {
	if s.nEarly == 0 {
		s.refined = true
		return
	}
	min := s.early[0]
	for _, v := range s.early[:s.nEarly] {
		if v < min {
			min = v
		}
	}
	s.rebase = min
	for _, v := range s.early[:s.nEarly] {
		sh.lag.Add(v - min)
	}
	s.refined = true
	s.nEarly = 0
}

// FNV-1a over little-endian uint32s: the per-session message-sequence
// digest the shard-count invariance tests compare.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

//smoothvet:noalloc
func fnvFold(h uint64, v uint32) uint64 {
	h ^= uint64(v & 0xff)
	h *= fnvPrime64
	h ^= uint64((v >> 8) & 0xff)
	h *= fnvPrime64
	h ^= uint64((v >> 16) & 0xff)
	h *= fnvPrime64
	h ^= uint64(v >> 24)
	h *= fnvPrime64
	return h
}
