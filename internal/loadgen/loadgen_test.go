package loadgen

import (
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/diag"
	"repro/internal/netstream"
	"repro/internal/serve"
	"repro/internal/trace"
)

// startServer runs a real serving engine on an ephemeral loopback port
// and returns its address.
func startServer(t *testing.T, frames int, step time.Duration, rateFactor float64) string {
	t.Helper()
	clip, err := trace.Generate(func() trace.GenConfig {
		cfg := trace.DefaultGenConfig()
		cfg.Frames = frames
		cfg.Seed = 1
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	rate := int(rateFactor * clip.AverageRate())
	if rate < 1 {
		rate = 1
	}
	eng, err := serve.New(clip, trace.PaperWeights(), serve.Config{
		Rate:         rate,
		Shards:       1,
		StepDuration: step,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { _ = eng.Handle(c) }(conn)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		eng.Close()
	})
	return ln.Addr().String()
}

// collectRun drives one wave of n sessions with per-session digests and
// returns the stats indexed by session.
func collectRun(t *testing.T, addr string, shards, n int) []SessionStats {
	t.Helper()
	out := make([]SessionStats, n)
	var mu sync.Mutex
	eng, err := New(Config{
		Addrs:  []string{addr},
		Shards: shards,
		Delay:  8,
		Digest: true,
		OnSessionDone: func(st SessionStats) {
			mu.Lock()
			out[st.Index] = st
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rep, err := eng.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		for _, st := range out {
			if st.Err != nil {
				t.Logf("session %d (%s): %v", st.Index, st.Stage, st.Err)
			}
		}
		t.Fatalf("%d of %d sessions failed", rep.Failed, n)
	}
	return out
}

// TestShardCountInvariance: the number of reactor shards is a capacity
// knob, not a semantic one — every session must decode exactly the same
// message sequence (same slices, steps, offsets — hence same drops)
// whether one shard drains all sockets or four split them.
func TestShardCountInvariance(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("loadgen reactor requires linux")
	}
	// Under-provisioned (rate factor < 1) so the server's drop policy
	// actually sheds slices — the drop sequence is part of the digest.
	addr := startServer(t, 50, 2*time.Millisecond, 0.8)
	const n = 48
	one := collectRun(t, addr, 1, n)
	four := collectRun(t, addr, 4, n)
	for i := range one {
		if one[i].Digest != four[i].Digest {
			t.Errorf("session %d: digest %x with 1 shard, %x with 4", i, one[i].Digest, four[i].Digest)
		}
		if one[i].Played != four[i].Played || one[i].Incomplete != four[i].Incomplete ||
			one[i].Steps != four[i].Steps || one[i].Bytes != four[i].Bytes {
			t.Errorf("session %d: (played %d, incomplete %d, steps %d, bytes %d) vs (%d, %d, %d, %d)",
				i, one[i].Played, one[i].Incomplete, one[i].Steps, one[i].Bytes,
				four[i].Played, four[i].Incomplete, four[i].Steps, four[i].Bytes)
		}
	}
	// Same cohort, same schedule: every session sees the same stream.
	for i := 1; i < n; i++ {
		if one[i].Digest != one[0].Digest {
			t.Errorf("session %d: digest %x differs from session 0's %x within one run", i, one[i].Digest, one[0].Digest)
		}
	}
}

// TestStageFailureAccounting injects failures at each stage of a
// session's life and checks they land in the right counters.
func TestStageFailureAccounting(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("loadgen reactor requires linux")
	}
	countStages := func(t *testing.T, addr string, n int) (map[string]int, Report) {
		t.Helper()
		stages := map[string]int{}
		var mu sync.Mutex
		eng, err := New(Config{
			Addrs:       []string{addr},
			Shards:      1,
			Delay:       4,
			DialTimeout: 2 * time.Second,
			IdleTimeout: 2 * time.Second,
			OnSessionDone: func(st SessionStats) {
				mu.Lock()
				stages[st.Stage]++
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		rep, err := eng.Run(n)
		if err != nil {
			t.Fatal(err)
		}
		return stages, rep
	}

	t.Run("dial", func(t *testing.T) {
		// A listener opened and immediately closed: connections refused.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		stages, rep := countStages(t, addr, 6)
		if rep.DialFailed != 6 || stages[StageDial] != 6 || rep.Completed != 0 {
			t.Fatalf("want 6 dial failures, got report %+v stages %v", rep, stages)
		}
	})

	t.Run("handshake", func(t *testing.T) {
		// Accept then close before answering the hello.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				c.Close()
			}
		}()
		stages, rep := countStages(t, ln.Addr().String(), 6)
		if rep.HandshakeFailed != 6 || stages[StageHandshake] != 6 || rep.Completed != 0 {
			t.Fatalf("want 6 handshake failures, got report %+v stages %v", rep, stages)
		}
	})

	t.Run("mid-stream", func(t *testing.T) {
		// Complete the handshake, send a little data, hang up before End.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				go func(c net.Conn) {
					defer c.Close()
					if msg, err := netstream.ReadMsg(c); err != nil || msg.Hello == nil {
						return
					}
					_ = netstream.WriteAccept(c, netstream.Accept{
						Rate: 10, Delay: 4, ServerBuffer: 40, StepMicros: 1000,
					})
					for step := uint32(0); step < 3; step++ {
						_ = netstream.WriteData(c, netstream.Data{
							SliceID: step, Arrival: step, Size: 4, Weight: 1,
							SendStep: step, Payload: []byte{1, 2, 3, 4},
						})
					}
					// No End: the close below is a mid-stream hangup.
				}(c)
			}
		}()
		stages, rep := countStages(t, ln.Addr().String(), 6)
		if rep.MidStreamFailed != 6 || stages[StageMidStream] != 6 || rep.Completed != 0 {
			t.Fatalf("want 6 mid-stream failures, got report %+v stages %v", rep, stages)
		}
	})
}

// scrapeMetrics performs one GET /metrics against the generator's diag
// handler and returns the body.
func scrapeMetrics(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics returned %d", rec.Code)
	}
	return rec.Body.String()
}

// metricValue extracts the value of a plain `name value` sample from a
// Prometheus-text body (-1 when absent).
func metricValue(body, name string) int64 {
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return -1
			}
			return n
		}
	}
	return -1
}

// TestLoopbackCapacitySmoke runs a small end-to-end wave against a real
// serving engine — the verify.sh gate; LOADGEN_SMOKE overrides the
// session count for bigger manual runs. Mid-wave it scrapes the
// generator's /metrics through the diag handler and asserts the key
// series: the active-sessions gauge reaches the wave size and the
// step-lag histogram is populated while traffic flows.
func TestLoopbackCapacitySmoke(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("loadgen reactor requires linux")
	}
	n := 256
	if env := os.Getenv("LOADGEN_SMOKE"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil || v < 1 {
			t.Fatalf("bad LOADGEN_SMOKE=%q", env)
		}
		n = v
	}
	// Scale the clip with the wave so every session is still streaming
	// when the last one dials in: the mid-wave gauge check below needs the
	// whole wave concurrently active, and a session lives ~frames·step.
	frames := 40 + n/4
	addr := startServer(t, frames, 4*time.Millisecond, 1.1)
	eng, err := New(Config{Addrs: []string{addr}, Delay: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	handler := diag.Handler(diag.Options{
		Service:   "smoothload",
		Registry:  eng.Obs(),
		Recorders: eng.FlightRecorders(),
	})

	type result struct {
		rep Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := eng.Run(n)
		done <- result{rep, err}
	}()

	// Poll /metrics while the wave is in flight: every session holds its
	// connection until the clip ends, so the active gauge must reach the
	// full wave size once dialing completes.
	sawFull := false
	sawLag := false
	deadline := time.After(30 * time.Second)
	var rep Report
poll:
	for {
		select {
		case r := <-done:
			if r.err != nil {
				t.Fatal(r.err)
			}
			rep = r.rep
			break poll
		case <-deadline:
			t.Fatalf("wave of %d did not finish (mid-wave: active=%v lag=%v)", n, sawFull, sawLag)
		case <-time.After(2 * time.Millisecond):
			body := scrapeMetrics(t, handler)
			if metricValue(body, "loadgen_sessions_active") == int64(n) {
				sawFull = true
			}
			if metricValue(body, "loadgen_step_lag_us_count") > 0 {
				sawLag = true
			}
		}
	}
	if rep.Completed != n || rep.Failed != 0 {
		t.Fatalf("wave of %d: %d completed, %d failed (%d dial, %d handshake, %d mid-stream)",
			n, rep.Completed, rep.Failed, rep.DialFailed, rep.HandshakeFailed, rep.MidStreamFailed)
	}
	if rep.Lag.Count() == 0 || rep.Played == 0 {
		t.Fatalf("no messages or playout recorded: lag n=%d played=%d", rep.Lag.Count(), rep.Played)
	}
	if rep.Bytes == 0 || rep.Dial.Count() != int64(n) {
		t.Fatalf("throughput/stage accounting empty: bytes=%d dials=%d", rep.Bytes, rep.Dial.Count())
	}
	if !sawFull {
		t.Errorf("mid-wave scrape never saw loadgen_sessions_active = %d", n)
	}
	if !sawLag {
		t.Errorf("mid-wave scrape never saw a populated loadgen_step_lag_us histogram")
	}

	// Post-wave scrape: cumulative counters cover the whole wave and the
	// active gauge drains back to zero. Run returns when the last session
	// retires, which can be a beat ahead of that reactor wake's trailing
	// Publish — poll briefly instead of asserting one scrape.
	var body string
	for waited := 0; ; waited++ {
		body = scrapeMetrics(t, handler)
		if metricValue(body, "loadgen_sessions_active") == 0 &&
			metricValue(body, "loadgen_sessions_completed_total") == int64(n) {
			break
		}
		if waited > 200 {
			break // fall through to the assertions' failure output
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := metricValue(body, "loadgen_sessions_admitted_total"); got != int64(n) {
		t.Errorf("post-wave admitted_total = %d, want %d", got, n)
	}
	if got := metricValue(body, "loadgen_sessions_completed_total"); got != int64(n) {
		t.Errorf("post-wave completed_total = %d, want %d", got, n)
	}
	if got := metricValue(body, "loadgen_sessions_active"); got != 0 {
		t.Errorf("post-wave active gauge = %d, want 0", got)
	}
	t.Logf("%d sessions in %v (%.0f sessions/s), lag p50=%dµs p99=%dµs p99.9=%dµs",
		n, rep.Elapsed.Round(time.Millisecond), float64(rep.Completed)/rep.Elapsed.Seconds(),
		rep.Lag.Quantile(0.5), rep.Lag.Quantile(0.99), rep.Lag.Quantile(0.999))
}

// TestRunErrors: wave-size validation and closed-engine behavior.
func TestRunErrors(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("loadgen reactor requires linux")
	}
	eng, err := New(Config{Addrs: []string{"127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(0); err == nil {
		t.Error("Run(0) accepted")
	}
	eng.Close()
	if _, err := eng.Run(1); err == nil {
		t.Error("Run on a closed engine accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New without addresses accepted")
	}
}

// TestStripeAssignmentDeterministic: sessions stripe across Config.Addrs
// by session index (idx % len(Addrs)), and the assignment is a pure
// function of the index — identical on every wave of the same engine and
// across engines. Fleet ramps (smoothload -ramp -connect a,b) depend on
// this: wave k+1 re-measures the same server mix as wave k, so a lag
// regression means the servers changed, not the stripe. Two backends
// serving distinguishable clips make the assignment visible in the
// per-session digests.
func TestStripeAssignmentDeterministic(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("loadgen reactor requires linux")
	}
	// Different frame counts: the clips differ, so the two backends
	// produce different digests.
	addrs := []string{
		startServer(t, 30, 2*time.Millisecond, 1.1),
		startServer(t, 44, 2*time.Millisecond, 1.1),
	}
	const n = 24
	wave := func(eng *Engine) []uint64 {
		t.Helper()
		digests := make([]uint64, n)
		var mu sync.Mutex
		eng.cfg.OnSessionDone = func(st SessionStats) {
			mu.Lock()
			digests[st.Index] = st.Digest
			mu.Unlock()
		}
		rep, err := eng.Run(n)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed != 0 {
			t.Fatalf("%d of %d sessions failed", rep.Failed, n)
		}
		return digests
	}
	eng, err := New(Config{Addrs: addrs, Shards: 2, Delay: 8, Digest: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	first := wave(eng)
	if first[0] == first[1] {
		t.Fatalf("backends are indistinguishable (digest %x); the stripe cannot be observed", first[0])
	}
	// The assignment is idx % len(addrs): every session's digest matches
	// the reference digest of its stripe.
	for i, d := range first {
		if want := first[i%len(addrs)]; d != want {
			t.Errorf("session %d: digest %x, want stripe %d digest %x", i, d, i%len(addrs), want)
		}
	}
	// Same engine, next wave: identical assignment.
	second := wave(eng)
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("session %d: digest %x on wave 1, %x on wave 2 — stripe moved between waves", i, first[i], second[i])
		}
	}
	// Fresh engine (a new ramp step): still identical.
	eng2, err := New(Config{Addrs: addrs, Shards: 1, Delay: 8, Digest: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	third := wave(eng2)
	for i := range first {
		if first[i] != third[i] {
			t.Errorf("session %d: digest %x from engine 1, %x from engine 2", i, first[i], third[i])
		}
	}
}
