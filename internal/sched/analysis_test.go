package sched

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRateStats(t *testing.T) {
	s := legalSchedule(t)
	// SentPerStep = {1, 1, 0}: active period is steps 0..1.
	rs := s.RateStats()
	if rs.Mean != 1 || rs.StdDev != 0 || rs.CV != 0 {
		t.Errorf("RateStats = %+v, want mean 1, sd 0", rs)
	}
	if rs.Peak != 1 {
		t.Errorf("Peak = %d", rs.Peak)
	}
	if rs.Utilization != 1 {
		t.Errorf("Utilization = %v, want 1 (rate 1 fully used)", rs.Utilization)
	}
}

func TestRateStatsIdle(t *testing.T) {
	s := legalSchedule(t)
	s.SentPerStep = []int{0, 0, 0}
	rs := s.RateStats()
	if rs.Mean != 0 || rs.Peak != 0 || rs.CV != 0 {
		t.Errorf("idle RateStats = %+v", rs)
	}
}

func TestRateStatsVariable(t *testing.T) {
	s := legalSchedule(t)
	s.SentPerStep = []int{0, 2, 0, 4, 0} // active period 1..3: {2, 0, 4}
	rs := s.RateStats()
	if rs.Mean != 2 {
		t.Errorf("Mean = %v, want 2", rs.Mean)
	}
	if rs.Peak != 4 {
		t.Errorf("Peak = %d, want 4", rs.Peak)
	}
	if rs.CV <= 0 {
		t.Errorf("CV = %v, want positive", rs.CV)
	}
}

func TestDropsPerStep(t *testing.T) {
	s := legalSchedule(t)
	drops := s.DropsPerStep()
	// Slice 2 (size 2) dropped at step 1.
	if len(drops) != 3 || drops[0] != 0 || drops[1] != 2 || drops[2] != 0 {
		t.Errorf("DropsPerStep = %v", drops)
	}
}

func TestDropsPerStepClamping(t *testing.T) {
	s := legalSchedule(t)
	s.Outcomes[2].DropTime = 99 // beyond the horizon: folded into the last step
	drops := s.DropsPerStep()
	if drops[2] != 2 {
		t.Errorf("out-of-range drop not folded: %v", drops)
	}
}

func TestTimeline(t *testing.T) {
	s := legalSchedule(t)
	out := s.Timeline(20, 4)
	if !strings.Contains(out, "#") {
		t.Errorf("timeline has no occupancy marks:\n%s", out)
	}
	if !strings.Contains(out, "x") {
		t.Errorf("timeline does not mark the drop step:\n%s", out)
	}
	if !strings.Contains(out, "over 3 steps") {
		t.Errorf("timeline header wrong:\n%s", out)
	}
	// Defaults and empty schedule.
	empty := &Schedule{Params: s.Params, Stream: s.Stream}
	if got := empty.Timeline(0, 0); !strings.Contains(got, "empty") {
		t.Errorf("empty timeline = %q", got)
	}
}

func TestReport(t *testing.T) {
	s := legalSchedule(t)
	rep := s.Report()
	for _, want := range []string{"algorithm:", "B=2", "weighted loss", "server 1", "utilization"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	s := legalSchedule(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	slices := decoded["slices"].([]any)
	if len(slices) != 3 {
		t.Fatalf("exported %d slices", len(slices))
	}
	first := slices[0].(map[string]any)
	if first["sendStart"].(float64) != 0 {
		t.Errorf("slice 0 sendStart = %v", first["sendStart"])
	}
	third := slices[2].(map[string]any)
	if third["playTime"] != nil {
		t.Errorf("dropped slice has playTime %v", third["playTime"])
	}
	if third["dropSite"].(string) != "server" {
		t.Errorf("dropSite = %v", third["dropSite"])
	}
	metrics := decoded["metrics"].(map[string]any)
	if metrics["benefit"].(float64) != 8 {
		t.Errorf("benefit = %v", metrics["benefit"])
	}
	series := decoded["series"].(map[string]any)
	if len(series["sentPerStep"].([]any)) != 3 {
		t.Errorf("series length wrong")
	}
}
