package sched

import (
	"encoding/json"
	"io"
)

// jsonSchedule is the stable export schema for external tooling (plotting,
// notebooks). It carries the per-slice outcomes and the per-step series;
// None times are exported as null.
type jsonSchedule struct {
	Algorithm string      `json:"algorithm"`
	Params    Params      `json:"params"`
	Slices    []jsonSlice `json:"slices"`
	Series    jsonSeries  `json:"series"`
	Metrics   jsonMetrics `json:"metrics"`
}

type jsonSlice struct {
	ID        int     `json:"id"`
	Arrival   int     `json:"arrival"`
	Size      int     `json:"size"`
	Weight    float64 `json:"weight"`
	SendStart *int    `json:"sendStart"`
	SendEnd   *int    `json:"sendEnd"`
	PlayTime  *int    `json:"playTime"`
	DropTime  *int    `json:"dropTime"`
	DropSite  string  `json:"dropSite"`
}

type jsonSeries struct {
	SentPerStep []int `json:"sentPerStep"`
	ServerOcc   []int `json:"serverOcc"`
	ClientOcc   []int `json:"clientOcc"`
}

type jsonMetrics struct {
	Throughput   int     `json:"throughput"`
	Benefit      float64 `json:"benefit"`
	ByteLoss     float64 `json:"byteLoss"`
	WeightedLoss float64 `json:"weightedLoss"`
	ServerReq    int     `json:"serverBufferRequirement"`
	ClientReq    int     `json:"clientBufferRequirement"`
	LinkReq      int     `json:"linkRateRequirement"`
}

func optTime(t int) *int {
	if t == None {
		return nil
	}
	return &t
}

// WriteJSON exports the schedule in a stable JSON schema for external
// tooling. The export is lossless with respect to outcomes and series;
// derived metrics are included for convenience.
func (s *Schedule) WriteJSON(w io.Writer) error {
	out := jsonSchedule{
		Algorithm: s.Algorithm,
		Params:    s.Params,
		Series: jsonSeries{
			SentPerStep: s.SentPerStep,
			ServerOcc:   s.ServerOcc,
			ClientOcc:   s.ClientOcc,
		},
		Metrics: jsonMetrics{
			Throughput:   s.Throughput(),
			Benefit:      s.Benefit(),
			ByteLoss:     s.ByteLoss(),
			WeightedLoss: s.WeightedLoss(),
			ServerReq:    s.ServerBufferRequirement(),
			ClientReq:    s.ClientBufferRequirement(),
			LinkReq:      s.LinkRateRequirement(),
		},
	}
	out.Slices = make([]jsonSlice, len(s.Outcomes))
	for id, o := range s.Outcomes {
		sl := s.Stream.Slice(id)
		out.Slices[id] = jsonSlice{
			ID:        id,
			Arrival:   sl.Arrival,
			Size:      sl.Size,
			Weight:    sl.Weight,
			SendStart: optTime(o.SendStart),
			SendEnd:   optTime(o.SendEnd),
			PlayTime:  optTime(o.PlayTime),
			DropTime:  optTime(o.DropTime),
			DropSite:  o.DropSite.String(),
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
