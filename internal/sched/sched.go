// Package sched defines the representation of a smoothing schedule — the
// output of a simulation run — together with its performance metrics
// (Definition 2.4 of the paper) and a validator that checks that a recorded
// schedule obeys the model of Section 2: causality, FIFO transmission,
// link-rate and buffer-capacity constraints, no preemption, and the
// real-time property (all played slices have identical sojourn time P+D).
package sched

import (
	"fmt"

	"repro/internal/stream"
)

// None marks an event that never happened (the paper's "time = infinity").
const None = -1

// Params records the resource parameters a schedule was produced with.
type Params struct {
	// ServerBuffer is B_s, the server buffer capacity in bytes.
	ServerBuffer int
	// ClientBuffer is B_c, the client buffer capacity in bytes.
	ClientBuffer int
	// Rate is R, the link rate in bytes per step.
	Rate int
	// Delay is D, the common smoothing delay of all played slices.
	Delay int
	// LinkDelay is P, the constant per-byte propagation delay of the link.
	LinkDelay int
}

// Validate checks the parameters for basic sanity.
func (p Params) Validate() error {
	switch {
	case p.ServerBuffer <= 0:
		return fmt.Errorf("sched: non-positive server buffer %d", p.ServerBuffer)
	case p.ClientBuffer <= 0:
		return fmt.Errorf("sched: non-positive client buffer %d", p.ClientBuffer)
	case p.Rate <= 0:
		return fmt.Errorf("sched: non-positive link rate %d", p.Rate)
	case p.Delay < 0:
		return fmt.Errorf("sched: negative smoothing delay %d", p.Delay)
	case p.LinkDelay < 0:
		return fmt.Errorf("sched: negative link delay %d", p.LinkDelay)
	}
	return nil
}

// DropSite identifies where a slice was discarded.
type DropSite uint8

const (
	// SiteNone means the slice was not dropped (it was played).
	SiteNone DropSite = iota
	// SiteServer means the server discarded the slice before any of its
	// bytes entered the link (overflow or proactive drop).
	SiteServer
	// SiteClient means the client discarded the slice: either its buffer
	// overflowed, or the slice missed its playback deadline (some bytes
	// were still in the server buffer or in transit at play time).
	SiteClient
)

// String returns "none", "server" or "client".
func (d DropSite) String() string {
	switch d {
	case SiteServer:
		return "server"
	case SiteClient:
		return "client"
	default:
		return "none"
	}
}

// Outcome records what happened to one slice: when its transmission started
// and finished, when it was dropped, and when it was played. Exactly one of
// {played, dropped} holds for every slice of a terminated schedule.
type Outcome struct {
	// SendStart is ST of the slice's first byte, or None.
	SendStart int
	// SendEnd is ST of the slice's last byte, or None. A slice whose
	// transmission started is never preempted at the server, so
	// SendStart != None implies SendEnd != None in a terminated schedule
	// — even when the client ends up discarding the slice.
	SendEnd int
	// DropTime is DT(s), or None if the slice was never dropped.
	DropTime int
	// DropSite says which side discarded the slice, if any. Server drops
	// never have a send span; client drops may (their bytes crossed the
	// link but arrived late or overflowed the client buffer).
	DropSite DropSite
	// PlayTime is PT(s), or None if the slice was never played.
	PlayTime int
}

// Played reports whether the slice was delivered to the playout device.
func (o Outcome) Played() bool { return o.PlayTime != None }

// Dropped reports whether the slice was discarded.
func (o Outcome) Dropped() bool { return o.DropTime != None }

// Schedule is the complete record of one smoothing run over a stream.
type Schedule struct {
	// Stream is the input the schedule was produced for.
	Stream *stream.Stream
	// Params are the resource parameters used.
	Params Params
	// Outcomes[id] is the fate of slice id.
	Outcomes []Outcome
	// SentPerStep[t] is |S(t)|, bytes submitted to the link at step t.
	SentPerStep []int
	// ServerOcc[t] is |Bs(t)|, bytes stored at the server at the end of
	// step t.
	ServerOcc []int
	// ClientOcc[t] is |Bc(t)|, bytes stored at the client at the end of
	// step t.
	ClientOcc []int
	// Algorithm names the policy/algorithm that produced the schedule.
	Algorithm string
}

// Throughput returns the total number of bytes played out (Definition 2.4).
func (s *Schedule) Throughput() int {
	n := 0
	for id, o := range s.Outcomes {
		if o.Played() {
			n += s.Stream.Slice(id).Size
		}
	}
	return n
}

// Benefit returns the total weight of played slices (Definition 2.6).
func (s *Schedule) Benefit() float64 {
	var w float64
	for id, o := range s.Outcomes {
		if o.Played() {
			w += s.Stream.Slice(id).Weight
		}
	}
	return w
}

// DroppedBytes returns the total size of dropped slices.
func (s *Schedule) DroppedBytes() int {
	n := 0
	for id, o := range s.Outcomes {
		if o.Dropped() {
			n += s.Stream.Slice(id).Size
		}
	}
	return n
}

// DroppedSlices returns the number of dropped slices.
func (s *Schedule) DroppedSlices() int {
	n := 0
	for _, o := range s.Outcomes {
		if o.Dropped() {
			n++
		}
	}
	return n
}

// DroppedAt returns the number of slices dropped at the given site.
func (s *Schedule) DroppedAt(site DropSite) int {
	n := 0
	for _, o := range s.Outcomes {
		if o.Dropped() && o.DropSite == site {
			n++
		}
	}
	return n
}

// WeightedLoss returns (offered weight - played weight) / offered weight,
// the "weighted loss" plotted in Figures 2, 3, 5 and 6 of the paper.
// It returns 0 for a stream with zero total weight.
func (s *Schedule) WeightedLoss() float64 {
	total := s.Stream.TotalWeight()
	if total == 0 {
		return 0
	}
	return (total - s.Benefit()) / total
}

// ByteLoss returns the fraction of offered bytes not played.
func (s *Schedule) ByteLoss() float64 {
	total := s.Stream.TotalBytes()
	if total == 0 {
		return 0
	}
	return float64(total-s.Throughput()) / float64(total)
}

// ServerBufferRequirement returns the least upper bound on |Bs(t)|.
func (s *Schedule) ServerBufferRequirement() int { return maxOf(s.ServerOcc) }

// ClientBufferRequirement returns the least upper bound on |Bc(t)|.
func (s *Schedule) ClientBufferRequirement() int { return maxOf(s.ClientOcc) }

// LinkRateRequirement returns the least upper bound on |S(t)|.
func (s *Schedule) LinkRateRequirement() int { return maxOf(s.SentPerStep) }

// CumulativeSent returns prefix sums of SentPerStep; element t is the total
// number of bytes submitted to the link in steps [0, t]. Used to compare
// schedules per Lemma 3.1 and Theorem 3.5.
func (s *Schedule) CumulativeSent() []int64 {
	cum := make([]int64, len(s.SentPerStep))
	var run int64
	for t, n := range s.SentPerStep {
		run += int64(n)
		cum[t] = run
	}
	return cum
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// String summarizes the schedule in one line.
func (s *Schedule) String() string {
	return fmt.Sprintf("%s: B=%d R=%d D=%d P=%d played=%dB/%dB benefit=%.4g loss=%.2f%%",
		s.Algorithm, s.Params.ServerBuffer, s.Params.Rate, s.Params.Delay, s.Params.LinkDelay,
		s.Throughput(), s.Stream.TotalBytes(), s.Benefit(), 100*s.WeightedLoss())
}
