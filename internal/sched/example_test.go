package sched_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/stream"
)

// Example inspects the schedule a simulation produces: per-slice fates,
// aggregate metrics, and the model validator.
func Example() {
	st := stream.NewBuilder().
		Add(0, 1, 1).Add(0, 1, 1).Add(0, 1, 9).
		MustBuild()
	s, _ := core.Simulate(st, core.Config{ServerBuffer: 1, Rate: 1, Policy: drop.Greedy})

	fmt.Printf("valid: %v\n", s.Validate() == nil)
	fmt.Printf("benefit %v of %v (weighted loss %.0f%%)\n",
		s.Benefit(), st.TotalWeight(), 100*s.WeightedLoss())
	for id, o := range s.Outcomes {
		switch {
		case o.Played():
			fmt.Printf("slice %d: played at %d\n", id, o.PlayTime)
		default:
			fmt.Printf("slice %d: dropped at %d (%s)\n", id, o.DropTime, o.DropSite)
		}
	}
	// Output:
	// valid: true
	// benefit 10 of 11 (weighted loss 9%)
	// slice 0: played at 1
	// slice 1: dropped at 0 (server)
	// slice 2: played at 1
}

// Example_rateStats summarizes the transmission-rate process.
func Example_rateStats() {
	st := stream.NewBuilder().AddFrame(0, 1, 1, 1, 1).MustBuild()
	s, _ := core.Simulate(st, core.Config{ServerBuffer: 4, Rate: 2})
	rs := s.RateStats()
	fmt.Printf("mean %.0f, peak %d, utilization %.0f%%\n", rs.Mean, rs.Peak, 100*rs.Utilization)
	// Output:
	// mean 2, peak 2, utilization 100%
}
