package sched

import (
	"strings"
	"testing"

	"repro/internal/stream"
)

// tinyStream: two unit slices at t=0, one size-2 slice at t=1.
func tinyStream(t *testing.T) *stream.Stream {
	t.Helper()
	return stream.NewBuilder().
		Add(0, 1, 3).
		Add(0, 1, 5).
		Add(1, 2, 4).
		MustBuild()
}

// legalSchedule builds, by hand, a legal schedule for tinyStream with
// B=2, R=1, D=2, P=0: slice 0 sent at 0, slice 1 sent at 1, slice 2
// dropped at the server at 1.
func legalSchedule(t *testing.T) *Schedule {
	t.Helper()
	return &Schedule{
		Stream: tinyStream(t),
		Params: Params{ServerBuffer: 2, ClientBuffer: 2, Rate: 1, Delay: 2, LinkDelay: 0},
		Outcomes: []Outcome{
			{SendStart: 0, SendEnd: 0, DropTime: None, PlayTime: 2},
			{SendStart: 1, SendEnd: 1, DropTime: None, PlayTime: 2},
			{SendStart: None, SendEnd: None, DropTime: 1, DropSite: SiteServer, PlayTime: None},
		},
		SentPerStep: []int{1, 1, 0},
		ServerOcc:   []int{1, 0, 0},
		ClientOcc:   []int{1, 2, 0},
		Algorithm:   "hand",
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{ServerBuffer: 1, ClientBuffer: 1, Rate: 1, Delay: 0, LinkDelay: 0}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{ServerBuffer: 0, ClientBuffer: 1, Rate: 1},
		{ServerBuffer: 1, ClientBuffer: 0, Rate: 1},
		{ServerBuffer: 1, ClientBuffer: 1, Rate: 0},
		{ServerBuffer: 1, ClientBuffer: 1, Rate: 1, Delay: -1},
		{ServerBuffer: 1, ClientBuffer: 1, Rate: 1, LinkDelay: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid params %d accepted: %+v", i, p)
		}
	}
}

func TestMetrics(t *testing.T) {
	s := legalSchedule(t)
	if got := s.Throughput(); got != 2 {
		t.Errorf("Throughput = %d, want 2", got)
	}
	if got := s.Benefit(); got != 8 {
		t.Errorf("Benefit = %v, want 8", got)
	}
	if got := s.DroppedBytes(); got != 2 {
		t.Errorf("DroppedBytes = %d, want 2", got)
	}
	if got := s.DroppedSlices(); got != 1 {
		t.Errorf("DroppedSlices = %d, want 1", got)
	}
	if got := s.DroppedAt(SiteServer); got != 1 {
		t.Errorf("DroppedAt(server) = %d, want 1", got)
	}
	if got := s.DroppedAt(SiteClient); got != 0 {
		t.Errorf("DroppedAt(client) = %d, want 0", got)
	}
	// Weighted loss: total weight 12, played 8 -> 1/3.
	if got := s.WeightedLoss(); got < 0.333 || got > 0.334 {
		t.Errorf("WeightedLoss = %v, want 1/3", got)
	}
	// Byte loss: 2 of 4 bytes.
	if got := s.ByteLoss(); got != 0.5 {
		t.Errorf("ByteLoss = %v, want 0.5", got)
	}
	if got := s.ServerBufferRequirement(); got != 1 {
		t.Errorf("ServerBufferRequirement = %d, want 1", got)
	}
	if got := s.ClientBufferRequirement(); got != 2 {
		t.Errorf("ClientBufferRequirement = %d, want 2", got)
	}
	if got := s.LinkRateRequirement(); got != 1 {
		t.Errorf("LinkRateRequirement = %d, want 1", got)
	}
	cum := s.CumulativeSent()
	if len(cum) != 3 || cum[0] != 1 || cum[1] != 2 || cum[2] != 2 {
		t.Errorf("CumulativeSent = %v", cum)
	}
	if !strings.Contains(s.String(), "hand") {
		t.Errorf("String() missing algorithm: %q", s.String())
	}
}

func TestZeroWeightLoss(t *testing.T) {
	st := stream.NewBuilder().Add(0, 1, 0).MustBuild()
	s := &Schedule{
		Stream:      st,
		Params:      Params{ServerBuffer: 1, ClientBuffer: 1, Rate: 1, Delay: 1},
		Outcomes:    []Outcome{{SendStart: 0, SendEnd: 0, DropTime: None, PlayTime: 1}},
		SentPerStep: []int{1, 0},
		ServerOcc:   []int{0, 0},
		ClientOcc:   []int{1, 0},
	}
	if got := s.WeightedLoss(); got != 0 {
		t.Errorf("WeightedLoss with zero total weight = %v, want 0", got)
	}
}

func TestValidateAcceptsLegal(t *testing.T) {
	if err := legalSchedule(t).Validate(); err != nil {
		t.Fatalf("legal schedule rejected: %v", err)
	}
}

// mutate applies f to a fresh legal schedule and asserts Validate rejects
// it with the given rule.
func expectViolation(t *testing.T, rule string, f func(*Schedule)) {
	t.Helper()
	s := legalSchedule(t)
	f(s)
	err := s.Validate()
	if err == nil {
		t.Fatalf("expected %q violation, got nil", rule)
	}
	ve, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("expected ValidationError, got %T: %v", err, err)
	}
	if ve.Rule != rule {
		t.Fatalf("expected rule %q, got %q (%v)", rule, ve.Rule, err)
	}
}

func TestValidateRejections(t *testing.T) {
	t.Run("nil stream", func(t *testing.T) {
		s := legalSchedule(t)
		s.Stream = nil
		if s.Validate() == nil {
			t.Fatal("nil stream accepted")
		}
	})
	t.Run("outcome count", func(t *testing.T) {
		expectViolation(t, "shape", func(s *Schedule) { s.Outcomes = s.Outcomes[:2] })
	})
	t.Run("series lengths", func(t *testing.T) {
		expectViolation(t, "shape", func(s *Schedule) { s.ServerOcc = s.ServerOcc[:2] })
	})
	t.Run("double fate", func(t *testing.T) {
		expectViolation(t, "fate", func(s *Schedule) {
			s.Outcomes[0].DropTime = 1
			s.Outcomes[0].DropSite = SiteServer
		})
	})
	t.Run("no fate", func(t *testing.T) {
		expectViolation(t, "fate", func(s *Schedule) {
			s.Outcomes[2].DropTime = None
			s.Outcomes[2].DropSite = SiteNone
		})
	})
	t.Run("drop site missing", func(t *testing.T) {
		expectViolation(t, "fate", func(s *Schedule) { s.Outcomes[2].DropSite = SiteNone })
	})
	t.Run("send before arrival", func(t *testing.T) {
		expectViolation(t, "causality", func(s *Schedule) {
			// Slice 2 arrives at 1; pretend it was sent from step 0 and
			// played.
			s.Outcomes[2] = Outcome{SendStart: 0, SendEnd: 0, DropTime: None, PlayTime: 3}
		})
	})
	t.Run("server drop after send", func(t *testing.T) {
		expectViolation(t, "preemption", func(s *Schedule) {
			s.Outcomes[0] = Outcome{SendStart: 0, SendEnd: 0, DropTime: 1, DropSite: SiteServer, PlayTime: None}
		})
	})
	t.Run("wrong play time", func(t *testing.T) {
		expectViolation(t, "real-time", func(s *Schedule) { s.Outcomes[1].PlayTime = 3 })
	})
	t.Run("rate exceeded", func(t *testing.T) {
		expectViolation(t, "rate", func(s *Schedule) { s.SentPerStep[0] = 2 })
	})
	t.Run("fifo inversion", func(t *testing.T) {
		expectViolation(t, "fifo", func(s *Schedule) {
			s.Outcomes[0].SendStart, s.Outcomes[0].SendEnd = 1, 1
			s.Outcomes[1].SendStart, s.Outcomes[1].SendEnd = 0, 0
		})
	})
	t.Run("server occupancy mismatch", func(t *testing.T) {
		expectViolation(t, "server-occ", func(s *Schedule) { s.ServerOcc[0] = 0 })
	})
	t.Run("client occupancy mismatch", func(t *testing.T) {
		expectViolation(t, "client-occ", func(s *Schedule) { s.ClientOcc[0] = 0 })
	})
	t.Run("server capacity", func(t *testing.T) {
		expectViolation(t, "server-capacity", func(s *Schedule) {
			// Shrink the declared buffer below the occupancy implied by
			// holding both step-0 slices through step 0.
			s.Params.ServerBuffer = 1
			s.Outcomes[0].SendStart, s.Outcomes[0].SendEnd = 1, 1
			s.Outcomes[1].SendStart, s.Outcomes[1].SendEnd = 2, 2
			s.SentPerStep = []int{0, 1, 1}
			s.ServerOcc = []int{2, 1, 0}
			s.ClientOcc = []int{0, 1, 0}
		})
	})
	t.Run("underflow", func(t *testing.T) {
		expectViolation(t, "underflow", func(s *Schedule) {
			// Last byte of slice 1 sent after its play time (play at 2,
			// sent at 3).
			s.Outcomes[1].SendStart, s.Outcomes[1].SendEnd = 3, 3
			s.SentPerStep = []int{1, 0, 0, 1}
			s.ServerOcc = []int{1, 1, 1, 0}
			s.ClientOcc = []int{1, 1, 0, 0}
		})
	})
}

func TestValidateClientDropWithSendSpan(t *testing.T) {
	// A client-dropped (late) slice may legally have a send span. B=1,
	// R=1, D=1: slice of size 2 cannot make its deadline.
	st := stream.NewBuilder().Add(0, 2, 2).MustBuild()
	s := &Schedule{
		Stream: st,
		Params: Params{ServerBuffer: 2, ClientBuffer: 2, Rate: 1, Delay: 1, LinkDelay: 0},
		Outcomes: []Outcome{
			{SendStart: 0, SendEnd: 1, DropTime: 1, DropSite: SiteClient, PlayTime: None},
		},
		SentPerStep: []int{1, 1},
		ServerOcc:   []int{1, 0},
		ClientOcc:   []int{1, 0},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("legal late-drop schedule rejected: %v", err)
	}
}

func TestDropSiteString(t *testing.T) {
	if SiteNone.String() != "none" || SiteServer.String() != "server" || SiteClient.String() != "client" {
		t.Error("DropSite.String() wrong")
	}
}

func TestOutcomeHelpers(t *testing.T) {
	o := Outcome{SendStart: None, SendEnd: None, DropTime: None, PlayTime: 5}
	if !o.Played() || o.Dropped() {
		t.Error("played outcome misclassified")
	}
	o = Outcome{SendStart: None, SendEnd: None, DropTime: 3, DropSite: SiteServer, PlayTime: None}
	if o.Played() || !o.Dropped() {
		t.Error("dropped outcome misclassified")
	}
}

func TestValidationErrorMessage(t *testing.T) {
	err := &ValidationError{Rule: "fifo", Detail: "details here"}
	msg := err.Error()
	if !strings.Contains(msg, "fifo") || !strings.Contains(msg, "details here") {
		t.Errorf("Error() = %q", msg)
	}
}
