package sched

import (
	"fmt"
	"sort"
)

// ValidationError describes a single violation of the schedule model found
// by Validate.
type ValidationError struct {
	Rule   string // short identifier of the violated rule
	Detail string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("sched: invalid schedule: %s: %s", e.Rule, e.Detail)
}

func violation(rule, format string, args ...any) error {
	return &ValidationError{Rule: rule, Detail: fmt.Sprintf(format, args...)}
}

// Validate checks that the recorded schedule is a legal real-time smoothing
// schedule per Section 2 of the paper:
//
//   - shape: per-slice outcomes and per-step series are present and
//     consistent in length;
//   - fate: every slice is either played or dropped, never both;
//   - causality: nothing is sent or dropped before it arrives;
//   - no preemption: a server-dropped slice has no send span, and a slice
//     that started sending finishes;
//   - link rate: at most Rate bytes are sent per step, and the recorded
//     SentPerStep is exactly accounted for by the slices' send spans;
//   - FIFO: bytes enter the link in slice-ID order with non-overlapping
//     send spans;
//   - buffers: independently recomputed server and client occupancies match
//     the recorded series and never exceed capacity;
//   - real-time: every played slice has PlayTime = Arrival + LinkDelay +
//     Delay and its last byte is received no later than that.
//
// Validate returns nil if the schedule is legal, or the first violation
// found.
func (s *Schedule) Validate() error {
	if s.Stream == nil {
		return violation("shape", "nil stream")
	}
	if err := s.Params.Validate(); err != nil {
		return err
	}
	n := s.Stream.Len()
	if len(s.Outcomes) != n {
		return violation("shape", "have %d outcomes for %d slices", len(s.Outcomes), n)
	}
	if len(s.ServerOcc) != len(s.SentPerStep) || len(s.ClientOcc) != len(s.SentPerStep) {
		return violation("shape", "series lengths differ: sent=%d serverOcc=%d clientOcc=%d",
			len(s.SentPerStep), len(s.ServerOcc), len(s.ClientOcc))
	}
	if err := s.validateOutcomes(len(s.SentPerStep)); err != nil {
		return err
	}
	if err := s.validateFIFO(); err != nil {
		return err
	}
	return s.validateSeries()
}

func (s *Schedule) validateOutcomes(T int) error {
	for id := 0; id < s.Stream.Len(); id++ {
		o := s.Outcomes[id]
		sl := s.Stream.Slice(id)
		played, dropped := o.Played(), o.Dropped()
		if played == dropped {
			return violation("fate", "slice %d: played=%v dropped=%v (exactly one required)", id, played, dropped)
		}
		if dropped != (o.DropSite != SiteNone) {
			return violation("fate", "slice %d: dropped=%v but drop site %q", id, dropped, o.DropSite)
		}
		if (o.SendStart == None) != (o.SendEnd == None) {
			return violation("preemption", "slice %d: half-open send span [%d,%d]", id, o.SendStart, o.SendEnd)
		}
		if o.SendStart != None {
			if o.SendStart < sl.Arrival {
				return violation("causality", "slice %d sent at %d before arrival %d", id, o.SendStart, sl.Arrival)
			}
			if o.SendEnd < o.SendStart {
				return violation("causality", "slice %d send span [%d,%d] inverted", id, o.SendStart, o.SendEnd)
			}
			if o.SendEnd >= T {
				return violation("shape", "slice %d send end %d beyond recorded horizon %d", id, o.SendEnd, T-1)
			}
		}
		if dropped {
			if o.DropSite == SiteServer && o.SendStart != None {
				return violation("preemption", "slice %d server-dropped at %d after transmission started at %d",
					id, o.DropTime, o.SendStart)
			}
			if o.DropTime < sl.Arrival {
				return violation("causality", "slice %d dropped at %d before arrival %d", id, o.DropTime, sl.Arrival)
			}
			continue
		}
		// Played slice.
		if o.SendStart == None {
			return violation("causality", "slice %d played but has no send span", id)
		}
		if got, want := o.PlayTime, sl.Arrival+s.Params.LinkDelay+s.Params.Delay; got != want {
			return violation("real-time", "slice %d played at %d, want arrival+P+D = %d", id, got, want)
		}
		if o.SendEnd+s.Params.LinkDelay > o.PlayTime {
			return violation("underflow", "slice %d last byte received at %d after play time %d",
				id, o.SendEnd+s.Params.LinkDelay, o.PlayTime)
		}
	}
	return nil
}

// validateFIFO checks that transmitted slices (played or client-dropped)
// enter the link in ID order with non-overlapping send spans. Adjacent
// slices may share a boundary step.
func (s *Schedule) validateFIFO() error {
	prev := -1
	prevEnd := -1
	for id := 0; id < s.Stream.Len(); id++ {
		o := s.Outcomes[id]
		if o.SendStart == None {
			continue
		}
		if o.SendStart < prevEnd {
			return violation("fifo", "slice %d starts sending at %d before slice %d finishes at %d",
				id, o.SendStart, prev, prevEnd)
		}
		prev, prevEnd = id, o.SendEnd
	}
	return nil
}

// validateSeries replays the byte flow implied by the outcomes and the
// recorded SentPerStep, and cross-checks the recorded occupancy series and
// the capacity limits.
func (s *Schedule) validateSeries() error {
	T := len(s.SentPerStep)
	serverOcc := make([]int, T)
	clientOcc := make([]int, T)

	// Static server residency: every slice occupies the server buffer from
	// its arrival until it starts transmission, is dropped by the server,
	// or the schedule ends (which would itself be a conservation bug,
	// caught below).
	for id := 0; id < s.Stream.Len(); id++ {
		o := s.Outcomes[id]
		sl := s.Stream.Slice(id)
		until := T
		switch {
		case o.DropSite == SiteServer:
			until = o.DropTime
		case o.SendStart != None:
			until = o.SendStart
		}
		for t := sl.Arrival; t < until && t < T; t++ {
			serverOcc[t] += sl.Size
		}
	}

	// Replay the link input in FIFO order. queue holds transmitted slices
	// (played or client-dropped) by ID; the recorded SentPerStep dictates
	// how many bytes leave per step.
	type pending struct {
		id        int
		remaining int
		started   bool
	}
	var queue []pending
	for id := 0; id < s.Stream.Len(); id++ {
		if s.Outcomes[id].SendStart != None {
			queue = append(queue, pending{id: id, remaining: s.Stream.Slice(id).Size})
		}
	}
	qi := 0
	// receivedAt[t] lists (sliceID, byteCount) batches delivered at step t.
	type batch struct{ id, n int }
	receivedAt := make([][]batch, T)
	for t := 0; t < T; t++ {
		if s.SentPerStep[t] < 0 || s.SentPerStep[t] > s.Params.Rate {
			return violation("rate", "step %d sends %d bytes, rate is %d", t, s.SentPerStep[t], s.Params.Rate)
		}
		budget := s.SentPerStep[t]
		for budget > 0 {
			if qi >= len(queue) {
				return violation("conservation", "step %d sends %d bytes beyond transmitted slices", t, budget)
			}
			p := &queue[qi]
			o := s.Outcomes[p.id]
			if !p.started {
				if o.SendStart != t {
					return violation("span", "slice %d first byte actually sent at %d, recorded SendStart=%d",
						p.id, t, o.SendStart)
				}
				p.started = true
			}
			n := p.remaining
			if n > budget {
				n = budget
			}
			p.remaining -= n
			budget -= n
			if rt := t + s.Params.LinkDelay; rt < T {
				receivedAt[rt] = append(receivedAt[rt], batch{p.id, n})
			} else if s.Outcomes[p.id].Played() {
				return violation("shape", "slice %d bytes received at %d beyond recorded horizon", p.id, t+s.Params.LinkDelay)
			}
			if p.remaining == 0 {
				if o.SendEnd != t {
					return violation("span", "slice %d last byte actually sent at %d, recorded SendEnd=%d",
						p.id, t, o.SendEnd)
				}
				qi++
			} else {
				// Partially-sent slice: its residue occupies the server
				// buffer at the end of this step.
				serverOcc[t] += p.remaining
				break // budget exhausted by construction (n == budget)
			}
		}
		// A slice mid-transmission whose step sent zero of its bytes
		// (budget was 0) still occupies the buffer.
		if budget == 0 && qi < len(queue) && queue[qi].started && queue[qi].remaining > 0 && s.SentPerStep[t] == 0 {
			serverOcc[t] += queue[qi].remaining
		}
	}
	if qi != len(queue) {
		return violation("conservation", "%d transmitted slices have unsent bytes at end of schedule", len(queue)-qi)
	}

	for t := 0; t < T; t++ {
		if serverOcc[t] != s.ServerOcc[t] {
			return violation("server-occ", "step %d recomputed server occupancy %d != recorded %d",
				t, serverOcc[t], s.ServerOcc[t])
		}
		if serverOcc[t] > s.Params.ServerBuffer {
			return violation("server-capacity", "step %d server occupancy %d exceeds B=%d",
				t, serverOcc[t], s.Params.ServerBuffer)
		}
	}

	// Client occupancy. A byte delivered at step t is counted from the end
	// of step t until its slice is played or dropped by the client; bytes
	// delivered at or after the slice's client-drop step are discarded on
	// arrival and never counted.
	occ := 0
	buffered := make(map[int]int, 64) // sliceID -> bytes currently held
	for t := 0; t < T; t++ {
		for _, b := range receivedAt[t] {
			o := s.Outcomes[b.id]
			if o.DropSite == SiteClient && t >= o.DropTime {
				continue // discarded on arrival
			}
			buffered[b.id] += b.n
			occ += b.n
		}
		// Client-side removals during step t: playouts and client drops.
		// Sorted so the first violation reported is deterministic.
		ids := make([]int, 0, len(buffered))
		for id := range buffered {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			held := buffered[id]
			o := s.Outcomes[id]
			if o.Played() && o.PlayTime == t {
				if held != s.Stream.Slice(id).Size {
					return violation("client-underflow", "slice %d played at %d with only %d/%d bytes received",
						id, t, held, s.Stream.Slice(id).Size)
				}
				occ -= held
				delete(buffered, id)
			} else if o.DropSite == SiteClient && o.DropTime == t {
				occ -= held
				delete(buffered, id)
			}
		}
		clientOcc[t] = occ
		if clientOcc[t] != s.ClientOcc[t] {
			return violation("client-occ", "step %d recomputed client occupancy %d != recorded %d",
				t, clientOcc[t], s.ClientOcc[t])
		}
		if clientOcc[t] > s.Params.ClientBuffer {
			return violation("client-capacity", "step %d client occupancy %d exceeds Bc=%d",
				t, clientOcc[t], s.Params.ClientBuffer)
		}
	}
	if occ != 0 {
		return violation("conservation", "%d bytes left in client buffer at end of schedule", occ)
	}

	// Every played slice must actually have been delivered in full before
	// its play time; verified implicitly above only if its play step is
	// within T. Ensure the horizon covers all play steps.
	for id := 0; id < s.Stream.Len(); id++ {
		if o := s.Outcomes[id]; o.Played() && o.PlayTime >= T {
			return violation("shape", "slice %d play time %d beyond recorded horizon %d", id, o.PlayTime, T-1)
		}
	}
	return nil
}
