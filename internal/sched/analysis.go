package sched

import (
	"fmt"
	"math"
	"strings"
)

// RateStats summarizes the transmission-rate process of a schedule — the
// quantity lossless smoothing work (Salehi et al.) minimizes and a useful
// companion metric for lossy schedules.
type RateStats struct {
	// Mean and StdDev are over the active period (first to last step with
	// any transmission).
	Mean, StdDev float64
	// CV is StdDev/Mean (0 if Mean is 0).
	CV float64
	// Peak is the largest per-step send.
	Peak int
	// Utilization is Mean/Rate: how much of the reserved link the
	// schedule actually used.
	Utilization float64
}

// RateStats computes transmission-rate statistics over the schedule's
// active period.
func (s *Schedule) RateStats() RateStats {
	first, last := -1, -1
	for t, n := range s.SentPerStep {
		if n > 0 {
			if first < 0 {
				first = t
			}
			last = t
		}
	}
	var rs RateStats
	if first < 0 {
		return rs
	}
	active := s.SentPerStep[first : last+1]
	var sum float64
	for _, n := range active {
		sum += float64(n)
		if n > rs.Peak {
			rs.Peak = n
		}
	}
	rs.Mean = sum / float64(len(active))
	var ss float64
	for _, n := range active {
		d := float64(n) - rs.Mean
		ss += d * d
	}
	rs.StdDev = math.Sqrt(ss / float64(len(active)))
	if rs.Mean > 0 {
		rs.CV = rs.StdDev / rs.Mean
	}
	if s.Params.Rate > 0 {
		rs.Utilization = rs.Mean / float64(s.Params.Rate)
	}
	return rs
}

// DropsPerStep returns the number of bytes dropped at each step (both
// sites), indexed like SentPerStep. Steps beyond the recorded horizon are
// folded into the last step.
func (s *Schedule) DropsPerStep() []int {
	out := make([]int, len(s.SentPerStep))
	if len(out) == 0 {
		return out
	}
	for id, o := range s.Outcomes {
		if !o.Dropped() {
			continue
		}
		t := o.DropTime
		if t >= len(out) {
			t = len(out) - 1
		}
		if t < 0 {
			t = 0
		}
		out[t] += s.Stream.Slice(id).Size
	}
	return out
}

// Timeline renders an ASCII occupancy chart: server occupancy ('#'), with
// drop steps marked 'x' on the baseline, downsampled to the given width.
// It is a quick diagnostic for cmd/smoothsim, not a plotting library.
func (s *Schedule) Timeline(width, height int) string {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 10
	}
	T := len(s.ServerOcc)
	if T == 0 {
		return "(empty schedule)\n"
	}
	drops := s.DropsPerStep()
	// Downsample to width buckets by max.
	occ := make([]int, width)
	dropped := make([]bool, width)
	for t := 0; t < T; t++ {
		b := t * width / T
		if s.ServerOcc[t] > occ[b] {
			occ[b] = s.ServerOcc[t]
		}
		if drops[t] > 0 {
			dropped[b] = true
		}
	}
	maxOcc := s.Params.ServerBuffer
	if maxOcc < 1 {
		maxOcc = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "server occupancy 0..%d over %d steps ('x' = drops)\n", maxOcc, T)
	for row := height; row >= 1; row-- {
		threshold := maxOcc * row / height
		sb.WriteString("  |")
		for b := 0; b < width; b++ {
			if occ[b] >= threshold && threshold > 0 {
				sb.WriteByte('#')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("  +")
	for b := 0; b < width; b++ {
		if dropped[b] {
			sb.WriteByte('x')
		} else {
			sb.WriteByte('-')
		}
	}
	sb.WriteByte('\n')
	return sb.String()
}

// Report renders a multi-line human-readable summary of the schedule.
func (s *Schedule) Report() string {
	rs := s.RateStats()
	var sb strings.Builder
	fmt.Fprintf(&sb, "algorithm:     %s\n", s.Algorithm)
	fmt.Fprintf(&sb, "parameters:    B=%d Bc=%d R=%d D=%d P=%d\n",
		s.Params.ServerBuffer, s.Params.ClientBuffer, s.Params.Rate, s.Params.Delay, s.Params.LinkDelay)
	fmt.Fprintf(&sb, "throughput:    %d/%d bytes (%.2f%% loss)\n",
		s.Throughput(), s.Stream.TotalBytes(), 100*s.ByteLoss())
	fmt.Fprintf(&sb, "benefit:       %.6g/%.6g (%.2f%% weighted loss)\n",
		s.Benefit(), s.Stream.TotalWeight(), 100*s.WeightedLoss())
	fmt.Fprintf(&sb, "drops:         %d slices (server %d, client %d)\n",
		s.DroppedSlices(), s.DroppedAt(SiteServer), s.DroppedAt(SiteClient))
	fmt.Fprintf(&sb, "requirements:  server %d, client %d, link %d\n",
		s.ServerBufferRequirement(), s.ClientBufferRequirement(), s.LinkRateRequirement())
	fmt.Fprintf(&sb, "link process:  mean %.2f, sd %.2f (CV %.3f), peak %d, utilization %.1f%%\n",
		rs.Mean, rs.StdDev, rs.CV, rs.Peak, 100*rs.Utilization)
	return sb.String()
}
