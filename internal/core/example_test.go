package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/stream"
)

// Example demonstrates the B = R·D law on a bursty stream: a burst of
// exactly B unit slices is absorbed without loss, while anything beyond it
// must be dropped.
func Example() {
	b := stream.NewBuilder()
	for i := 0; i < 10; i++ {
		b.Add(0, 1, 1) // ten unit slices in one burst
	}
	st := b.MustBuild()

	// R = 2 and B = 8: two slices leave in step 0, eight fit the buffer.
	s, _ := core.Simulate(st, core.Config{ServerBuffer: 8, Rate: 2})
	fmt.Printf("B=8: played %d of 10, delay D=%d\n", s.Throughput(), s.Params.Delay)

	// A smaller buffer loses the excess.
	s, _ = core.Simulate(st, core.Config{ServerBuffer: 4, Rate: 2})
	fmt.Printf("B=4: played %d of 10, delay D=%d\n", s.Throughput(), s.Params.Delay)

	// Output:
	// B=8: played 10 of 10, delay D=4
	// B=4: played 6 of 10, delay D=2
}

// ExampleSimulate_weighted shows the greedy policy preferring valuable
// slices when the buffer overflows.
func ExampleSimulate_weighted() {
	b := stream.NewBuilder()
	b.Add(0, 1, 1).Add(0, 1, 1).Add(0, 1, 1) // cheap
	b.Add(1, 1, 9).Add(1, 1, 9).Add(1, 1, 9) // valuable, one step later
	st := b.MustBuild()

	cfg := core.Config{ServerBuffer: 3, Rate: 1}
	cfg.Policy = drop.TailDrop
	td, _ := core.Simulate(st, cfg)
	cfg.Policy = drop.Greedy
	gr, _ := core.Simulate(st, cfg)
	fmt.Printf("taildrop benefit: %v\n", td.Benefit())
	fmt.Printf("greedy benefit:   %v\n", gr.Benefit())

	// Output:
	// taildrop benefit: 21
	// greedy benefit:   29
}

// ExampleDelayFor shows the provisioning helpers of the B = R·D law.
func ExampleDelayFor() {
	fmt.Println(core.DelayFor(480, 40)) // buffer and rate given -> delay
	fmt.Println(core.BufferFor(40, 12)) // rate and delay given -> buffer
	fmt.Println(core.RateFor(480, 12))  // buffer and delay given -> rate
	// Output:
	// 12
	// 480
	// 40
}
