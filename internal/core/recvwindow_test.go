package core

import (
	"math/rand"
	"testing"
)

// refReceiver mirrors netstream.Receiver's accounting (map-based, grows
// with the stream) as an executable model; the equivalence test in
// internal/netstream additionally checks RecvWindow against the real
// Receiver over decoded wire messages.
type refReceiver struct {
	delay      int
	size       map[int32]int32
	got        map[int32]int32
	byFrame    map[int][]int32
	watermark  int // highest non-negative frame resolved (late-byte rule)
	reqFrame   int // highest frame requested, negatives included (occupancy records)
	lateBytes  int
	occ        int
	maxOcc     int
	played     int
	incomplete int
}

func newRefReceiver(delay int) *refReceiver {
	return &refReceiver{
		delay:     delay,
		size:      map[int32]int32{},
		got:       map[int32]int32{},
		byFrame:   map[int][]int32{},
		watermark: -1,
		reqFrame:  -1 - delay,
	}
}

func (r *refReceiver) ingest(id int32, frame int, size, n int32) {
	if frame <= r.watermark {
		r.lateBytes += int(n)
		return
	}
	if _, ok := r.size[id]; !ok {
		r.size[id] = size
		r.byFrame[frame] = append(r.byFrame[frame], id)
	}
	r.got[id] += n
	r.occ += int(n)
}

// resolveTo mirrors the seed client's flush loop: one Receiver.Play per
// step from the last requested up to frame, recording occupancy after
// every play — empty and negative frames included.
func (r *refReceiver) resolveTo(frame int) {
	for f := r.reqFrame + 1; f <= frame; f++ {
		for _, id := range r.byFrame[f] {
			got := r.got[id]
			r.occ -= int(got)
			if got >= r.size[id] {
				r.played++
			} else {
				r.incomplete++
			}
			delete(r.got, id)
			delete(r.size, id)
		}
		delete(r.byFrame, f)
		if r.occ > r.maxOcc {
			r.maxOcc = r.occ
		}
	}
	if frame > r.reqFrame {
		r.reqFrame = frame
	}
	if frame > r.watermark {
		r.watermark = frame
	}
}

func checkAgainstRef(t *testing.T, w *RecvWindow, r *refReceiver, ctx string) {
	t.Helper()
	if w.Played() != r.played || w.Incomplete() != r.incomplete ||
		w.LateBytes() != r.lateBytes || w.Occupancy() != r.occ || w.MaxOccupancy() != r.maxOcc {
		t.Fatalf("%s: window (played %d, incomplete %d, late %d, occ %d, maxOcc %d) vs model (%d, %d, %d, %d, %d)",
			ctx, w.Played(), w.Incomplete(), w.LateBytes(), w.Occupancy(), w.MaxOccupancy(),
			r.played, r.incomplete, r.lateBytes, r.occ, r.maxOcc)
	}
}

// TestRecvWindowMatchesModel drives random message schedules — chunked
// slices, step gaps, late bytes, missing tails — through RecvWindow and
// the map model and requires identical accounting throughout.
func TestRecvWindowMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		delay := rng.Intn(12)
		var w RecvWindow
		w.Reset(delay, 2+rng.Intn(6))
		ref := newRefReceiver(delay)

		frames := 5 + rng.Intn(40)
		nextID := int32(0)
		step := 0
		for f := 0; f < frames; f++ {
			// A frame advances the clock by 1..4 steps (gaps exercise
			// multi-frame resolves).
			step += 1 + rng.Intn(4)
			nSlices := rng.Intn(4)
			for sl := 0; sl < nSlices; sl++ {
				id := nextID
				nextID++
				size := int32(1 + rng.Intn(2000))
				// Deliver the slice in 1..3 chunks; sometimes drop the
				// tail (incomplete), sometimes deliver a chunk so late
				// its frame has resolved.
				chunks := 1 + rng.Intn(3)
				sent := int32(0)
				for c := 0; c < chunks; c++ {
					n := size / int32(chunks)
					if c == chunks-1 {
						n = size - sent
					}
					if rng.Intn(10) == 0 {
						continue // dropped chunk -> incomplete
					}
					chunkStep := step + rng.Intn(3)
					if rng.Intn(12) == 0 {
						chunkStep += delay + 2 + rng.Intn(5) // late
					}
					// The resolve-then-ingest order of the client loop.
					w.ResolveTo(chunkStep - 1 - delay)
					ref.resolveTo(chunkStep - 1 - delay)
					frame := step // this slice's arrival frame
					w.Ingest(id, frame, size, n)
					ref.ingest(id, frame, size, n)
					sent += n
				}
			}
		}
		w.Finish()
		ref.resolveTo(ref.watermark + frames*10) // resolve everything
		checkAgainstRef(t, &w, ref, "end of trial")
		if w.Occupancy() != 0 {
			t.Fatalf("trial %d: %d bytes left after Finish", trial, w.Occupancy())
		}
	}
}

// TestRecvWindowGrow: a frame arriving beyond the configured window must
// grow the ring without losing buffered entries.
func TestRecvWindowGrow(t *testing.T) {
	var w RecvWindow
	w.Reset(0, 4)
	w.Ingest(1, 0, 100, 100) // frame 0, complete
	w.Ingest(2, 1, 100, 40)  // frame 1, partial
	// Frame 70 is far beyond a 4-slot ring: the ring must grow to span
	// (watermark, 70].
	w.Ingest(3, 70, 10, 10)
	if len(w.slots) < 71 {
		t.Fatalf("ring did not grow: %d slots for frame span 71", len(w.slots))
	}
	w.Finish()
	if w.Played() != 2 || w.Incomplete() != 1 {
		t.Fatalf("after grow+finish: played %d incomplete %d, want 2 and 1", w.Played(), w.Incomplete())
	}
}

// TestRecvWindowResolvePastData: resolving far beyond the last ingested
// frame (drop gaps, corrupt send steps) must terminate cheaply and set
// the watermark so later bytes count late.
func TestRecvWindowResolvePastData(t *testing.T) {
	var w RecvWindow
	w.Reset(0, 8)
	w.Ingest(1, 0, 10, 10)
	w.ResolveTo(1 << 40) // must clamp to maxFrame, not walk 2^40 frames
	if w.Played() != 1 {
		t.Fatalf("played %d, want 1", w.Played())
	}
	if w.Ingest(2, 1000, 10, 10) {
		t.Fatalf("frame below the resolved watermark was accepted")
	}
	if w.LateBytes() != 10 {
		t.Fatalf("late bytes %d, want 10", w.LateBytes())
	}
}

// TestRecvWindowReuse: Reset must fully clear state for session reuse.
func TestRecvWindowReuse(t *testing.T) {
	var w RecvWindow
	for round := 0; round < 3; round++ {
		w.Reset(0, 8)
		if w.Played() != 0 || w.Incomplete() != 0 || w.LateBytes() != 0 ||
			w.Occupancy() != 0 || w.MaxOccupancy() != 0 || w.MaxFrame() != -1 {
			t.Fatalf("round %d: dirty state after Reset", round)
		}
		w.Ingest(int32(round), 3, 50, 50)
		w.Ingest(int32(round+100), 4, 50, 20)
		w.Finish()
		if w.Played() != 1 || w.Incomplete() != 1 {
			t.Fatalf("round %d: played %d incomplete %d", round, w.Played(), w.Incomplete())
		}
	}
}
