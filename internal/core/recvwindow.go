package core

// RecvWindow is the sliding-window generalization of Client's dense
// held/ignored arrays, built for processes that run very many receivers at
// once (the load generator's client engine). Client can afford flat arrays
// sized to the whole stream because a simulation holds one of them;
// a 100k-session client process cannot, so RecvWindow keeps only the
// frames that can still be live — the interval (watermark, watermark+W] —
// in a power-of-two ring of per-frame slots, and resolves frames in order
// exactly like Client.Step's playout: a slice whose bytes all arrived by
// its frame's play time counts as played, a partially delivered slice
// counts as incomplete, and bytes of an already-resolved frame count as
// late and are discarded.
//
// The ring is sized by Reset and grows only when a frame arrives beyond
// the current window (reordering past W frames), so steady-state Ingest
// and ResolveTo allocate nothing. A RecvWindow is not safe for concurrent
// use.
type RecvWindow struct {
	slots      [][]recvEntry // ring of per-frame slice entries, len power of two
	watermark  int           // highest resolved frame
	reqFrame   int           // highest frame ever requested from ResolveTo (may be negative)
	maxFrame   int           // highest frame ever ingested
	occ        int
	maxOcc     int
	played     int
	incomplete int
	lateBytes  int
}

// recvEntry accumulates one slice's delivery within its frame slot.
type recvEntry struct {
	id   int32
	size int32
	got  int32
}

// Reset prepares the window for a new session with smoothing delay
// `delay`: up to delay+slack frames can be in flight at once (slack
// covers frames the sender legitimately holds past their arrival step).
// Grown rings and per-slot entry arrays are retained across Resets, so a
// pooled RecvWindow reaches a steady state with no per-session allocation.
//
// The delay also fixes the occupancy-recording origin: a client playing
// out with delay D issues its first resolve for frame (firstStep-1)-D,
// and Receiver's end-of-step peak-occupancy convention records from play
// step 0 — frame -D — onward.
func (w *RecvWindow) Reset(delay, slack int) {
	window := delay + slack
	n := 1
	for n < window {
		n <<= 1
	}
	if n > len(w.slots) {
		w.slots = make([][]recvEntry, n)
	}
	for i := range w.slots {
		w.slots[i] = w.slots[i][:0]
	}
	w.watermark = -1
	w.reqFrame = -1 - delay
	w.maxFrame = -1
	w.occ, w.maxOcc = 0, 0
	w.played, w.incomplete, w.lateBytes = 0, 0, 0
}

// Played returns the number of slices fully delivered by their play time.
func (w *RecvWindow) Played() int { return w.played }

// Incomplete returns the number of slices that had bytes but missed their
// play time.
func (w *RecvWindow) Incomplete() int { return w.incomplete }

// LateBytes returns the payload bytes that arrived after their frame was
// resolved.
func (w *RecvWindow) LateBytes() int { return w.lateBytes }

// Occupancy returns the bytes currently buffered; MaxOccupancy the peak,
// recorded at resolve boundaries (the model's end-of-step convention).
func (w *RecvWindow) Occupancy() int    { return w.occ }
func (w *RecvWindow) MaxOccupancy() int { return w.maxOcc }

// MaxFrame returns the highest frame index ingested so far (-1 before the
// first byte).
func (w *RecvWindow) MaxFrame() int { return w.maxFrame }

// Ingest records n delivered bytes of slice id belonging to frame. Bytes
// of an already-resolved frame are counted late and discarded. It reports
// whether the bytes were accepted into the window.
//
//smoothvet:noalloc
func (w *RecvWindow) Ingest(id int32, frame int, size, n int32) bool {
	if frame <= w.watermark {
		w.lateBytes += int(n)
		return false
	}
	if frame-w.watermark > len(w.slots) {
		w.grow(frame)
	}
	if frame > w.maxFrame {
		w.maxFrame = frame
	}
	slot := &w.slots[frame&(len(w.slots)-1)]
	for i := range *slot {
		if (*slot)[i].id == id {
			(*slot)[i].got += n
			w.occ += int(n)
			return true
		}
	}
	*slot = append(*slot, recvEntry{id: id, size: size, got: n})
	w.occ += int(n)
	return true
}

// grow re-rings the window so that frame fits; entries keep their slots
// because re-indexing uses each live frame's own index.
func (w *RecvWindow) grow(frame int) {
	n := len(w.slots)
	for frame-w.watermark > n {
		n <<= 1
	}
	fresh := make([][]recvEntry, n)
	for f := w.watermark + 1; f <= w.maxFrame; f++ {
		old := w.slots[f&(len(w.slots)-1)]
		if len(old) > 0 {
			fresh[f&(n-1)] = old
		}
	}
	w.slots = fresh
}

// ResolveTo plays every frame up to and including frame, in order: each
// buffered slice counts as played when fully delivered and incomplete
// otherwise, and its bytes leave the buffer. Frames at or below the
// watermark are already resolved and are skipped.
//
//smoothvet:noalloc
func (w *RecvWindow) ResolveTo(frame int) {
	// Only ingested frames can hold bytes: clamp the walk to maxFrame so a
	// resolve far past the data (drop gaps, corrupt send steps) costs no
	// more than the frames actually seen.
	limit := frame
	if limit > w.maxFrame {
		limit = w.maxFrame
	}
	for f := w.watermark + 1; f <= limit; f++ {
		slot := &w.slots[f&(len(w.slots)-1)]
		for i := range *slot {
			e := (*slot)[i]
			w.occ -= int(e.got)
			if e.got >= e.size {
				w.played++
			} else {
				w.incomplete++
			}
		}
		*slot = (*slot)[:0]
		// Peak occupancy is recorded at playout boundaries, matching
		// netstream.Receiver's end-of-step convention frame by frame.
		if w.occ > w.maxOcc {
			w.maxOcc = w.occ
		}
	}
	// Receiver records occupancy at every requested play step, including
	// steps whose frame holds nothing (the clamp above skips walking
	// them, but occupancy is the same at each, so one record suffices).
	// A repeat request for an already-resolved frame records nothing.
	if frame > w.reqFrame {
		w.reqFrame = frame
		if w.occ > w.maxOcc {
			w.maxOcc = w.occ
		}
	}
	if frame > w.watermark {
		w.watermark = frame
	}
}

// Finish resolves every outstanding frame (end of stream: the receiver
// plays out everything it has, the seed client's flush(maxFrame+D)).
func (w *RecvWindow) Finish() {
	w.ResolveTo(w.maxFrame)
}
