package core_test

// Integration tests that check the paper's theorems hold for the actual
// implementations: the generic algorithm (this package) against the exact
// offline optima (package offline).

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	. "repro/internal/core" // dot-import: external test package avoids the core<->offline test cycle
	"repro/internal/drop"
	"repro/internal/offline"
	"repro/internal/stream"
)

// unitStreamW builds a random unit-slice stream with random weights.
func unitStreamW(rng *rand.Rand, n, horizon, maxW int) *stream.Stream {
	b := stream.NewBuilder()
	for i := 0; i < n; i++ {
		b.Add(rng.Intn(horizon), 1, float64(rng.Intn(maxW)+1))
	}
	return b.MustBuild()
}

// TestTheorem35 — with unit slices and B = R·D, the generic algorithm loses
// the minimum possible number of slices regardless of the drop policy.
func TestTheorem35GenericOptimalForUnitSlices(t *testing.T) {
	factories := []drop.Factory{drop.TailDrop, drop.HeadDrop, drop.Greedy, drop.Random(7)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Unit slices with weight 1: benefit == number of slices played.
		st := unitStreamW(rng, rng.Intn(40)+1, rng.Intn(10)+1, 1)
		R := rng.Intn(3) + 1
		B := R * (rng.Intn(6) + 1)
		opt, err := offline.OptimalUnit(st, B, R)
		if err != nil {
			return false
		}
		for _, factory := range factories {
			s, err := Simulate(st, Config{ServerBuffer: B, Rate: R, Policy: factory})
			if err != nil {
				return false
			}
			played := 0
			for _, o := range s.Outcomes {
				if o.Played() {
					played++
				}
			}
			if float64(played) != opt.Benefit {
				t.Logf("seed %d policy %s: generic played %d, optimal %v (B=%d R=%d)",
					seed, s.Algorithm, played, opt.Benefit, B, R)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestTheorem39 — with variable slice sizes in [1, Lmax], the generic
// algorithm's throughput is at least (B-Lmax+1)/B of the best possible.
func TestTheorem39VariableSizeBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := stream.NewBuilder()
		n := rng.Intn(25) + 1
		maxSize := rng.Intn(3) + 2
		for i := 0; i < n; i++ {
			size := rng.Intn(maxSize) + 1
			b.Add(rng.Intn(8), size, float64(size)) // weight = size: benefit = throughput
		}
		st := b.MustBuild()
		R := rng.Intn(3) + 1
		B := R * (rng.Intn(5) + 1)
		if B < st.MaxSliceSize() {
			B = ((st.MaxSliceSize() + R - 1) / R) * R
		}
		opt, err := offline.OptimalFrames(st, B, R)
		if err != nil {
			return false
		}
		s, err := Simulate(st, Config{ServerBuffer: B, Rate: R})
		if err != nil {
			return false
		}
		bound := float64(B-st.MaxSliceSize()+1) / float64(B) * opt.Benefit
		if float64(s.Throughput()) < bound-1e-9 {
			t.Logf("seed %d: throughput %d below bound %v (opt %v, B=%d Lmax=%d R=%d)",
				seed, s.Throughput(), bound, opt.Benefit, B, st.MaxSliceSize(), R)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestLemma36 — for unit slices, a server with buffer B1 <= B2 achieves at
// least B1/B2 of the larger buffer's throughput.
func TestLemma36BufferScaling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := unitStreamW(rng, rng.Intn(50)+1, rng.Intn(12)+1, 1)
		R := rng.Intn(3) + 1
		B1 := R * (rng.Intn(4) + 1)
		B2 := B1 + R*(rng.Intn(4))
		s1, err := Simulate(st, Config{ServerBuffer: B1, Rate: R})
		if err != nil {
			return false
		}
		s2, err := Simulate(st, Config{ServerBuffer: B2, Rate: R})
		if err != nil {
			return false
		}
		t1 := float64(s1.Throughput())
		t2 := float64(s2.Throughput())
		return t1 >= float64(B1)/float64(B2)*t2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestLemma36Tightness — the batch pattern from the paper (bursts of B2
// slices every B2 steps) makes the bound tight.
func TestLemma36Tightness(t *testing.T) {
	const (
		B1, B2 = 2, 6
		R      = 1
		rounds = 10
	)
	b := stream.NewBuilder()
	for k := 0; k < rounds; k++ {
		for i := 0; i < B2; i++ {
			b.Add(k*B2, 1, 1)
		}
	}
	st := b.MustBuild()
	s1, err := Simulate(st, Config{ServerBuffer: B1, Rate: R})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Simulate(st, Config{ServerBuffer: B2, Rate: R})
	if err != nil {
		t.Fatal(err)
	}
	// Each round: S2 keeps all B2 (sends 1 immediately, stores... accepts
	// all and drains exactly by the next burst); S1 accepts B1+... the
	// paper: S1 loses B2-B1-... — verify the *ratio* approaches B1'/B2'
	// in the adjusted sense: both send at full rate; what matters here is
	// the measured ratio equals the bound within one round's slack.
	ratio := float64(s1.Throughput()) / float64(s2.Throughput())
	wantAtMost := float64(B1+R) / float64(B2) // S1 salvages B1 stored + R sent per round
	if ratio > wantAtMost+1e-9 {
		t.Errorf("ratio = %v, want <= %v (tight pattern)", ratio, wantAtMost)
	}
	if s2.DroppedSlices() != 0 {
		t.Errorf("large buffer dropped %d slices on the tight pattern", s2.DroppedSlices())
	}
}

// TestTheorem41 — the greedy policy is 4B/(B-2(Lmax-1))-competitive. For
// unit slices this is the plain factor 4.
func TestTheorem41GreedyCompetitiveUnit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := unitStreamW(rng, rng.Intn(40)+1, rng.Intn(10)+1, 50)
		R := rng.Intn(3) + 1
		B := R * (rng.Intn(6) + 1)
		opt, err := offline.OptimalUnit(st, B, R)
		if err != nil {
			return false
		}
		s, err := Simulate(st, Config{ServerBuffer: B, Rate: R, Policy: drop.Greedy})
		if err != nil {
			return false
		}
		if s.Benefit() == 0 {
			return opt.Benefit == 0
		}
		return opt.Benefit/s.Benefit() <= 4+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTheorem41GreedyCompetitiveVariable — general slice sizes against the
// refined bound 4B/(B-2(Lmax-1)).
func TestTheorem41GreedyCompetitiveVariable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := stream.NewBuilder()
		n := rng.Intn(20) + 1
		maxSize := rng.Intn(2) + 2
		for i := 0; i < n; i++ {
			b.Add(rng.Intn(8), rng.Intn(maxSize)+1, float64(rng.Intn(50)+1))
		}
		st := b.MustBuild()
		R := rng.Intn(2) + 1
		// Ensure B > 2(Lmax-1) so the bound is meaningful.
		Lmax := st.MaxSliceSize()
		B := R * (2*Lmax + rng.Intn(5))
		opt, err := offline.OptimalFrames(st, B, R)
		if err != nil {
			return false
		}
		s, err := Simulate(st, Config{ServerBuffer: B, Rate: R, Policy: drop.Greedy})
		if err != nil {
			return false
		}
		if s.Benefit() == 0 {
			return opt.Benefit == 0
		}
		bound := 4 * float64(B) / float64(B-2*(Lmax-1))
		if opt.Benefit/s.Benefit() > bound+1e-9 {
			t.Logf("seed %d: ratio %v > bound %v (B=%d Lmax=%d R=%d)",
				seed, opt.Benefit/s.Benefit(), bound, B, Lmax, R)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestSection33 — the observations about B != R·D: increasing B beyond R·D
// never helps; at B = R·D loss is minimized.
func TestSection33NoGainBeyondLaw(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := unitStreamW(rng, rng.Intn(40)+1, rng.Intn(10)+1, 1)
		R := rng.Intn(3) + 1
		D := rng.Intn(5) + 1
		lawful, err := Simulate(st, Config{ServerBuffer: R * D, Rate: R, Delay: D})
		if err != nil {
			return false
		}
		// A bigger server buffer with the same delay cannot reduce loss:
		// slices beyond R*D in the buffer would miss their deadline anyway.
		bigger, err := Simulate(st, Config{
			ServerBuffer: R*D + R*(rng.Intn(3)+1),
			ClientBuffer: R * D,
			Rate:         R,
			Delay:        D,
		})
		if err != nil {
			return false
		}
		return bigger.Throughput() <= lawful.Throughput()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestGreedyNeverWorseThanBoundOnAdversarial — the Theorem 4.7 instance:
// greedy achieves exactly benefit (B+1)(1+alpha) while the optimum gets
// 1 + alpha(2B+1).
func TestTheorem47InstanceExactValues(t *testing.T) {
	const (
		B     = 6
		alpha = 5.0
	)
	b := stream.NewBuilder()
	for i := 0; i < B+1; i++ {
		b.Add(0, 1, 1)
	}
	for t2 := 1; t2 <= B; t2++ {
		b.Add(t2, 1, alpha)
	}
	for i := 0; i < B+1; i++ {
		b.Add(B+1, 1, alpha)
	}
	st := b.MustBuild()

	s, err := Simulate(st, Config{ServerBuffer: B, Rate: 1, Policy: drop.Greedy})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy: it must drop one value-1 slice at step 0 (B+1 arrive, 1 is
	// sent, B stay), then loses B value-alpha slices at step B+1.
	wantGreedy := float64(B)*1 + 1 + alpha*(B+1)
	if math.Abs(s.Benefit()-wantGreedy) > 1e-9 {
		t.Errorf("greedy benefit = %v, want %v", s.Benefit(), wantGreedy)
	}

	opt, err := offline.OptimalUnit(st, B, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantOpt := 1 + alpha*(2*B+1)
	if math.Abs(opt.Benefit-wantOpt) > 1e-9 {
		t.Errorf("optimal benefit = %v, want %v", opt.Benefit, wantOpt)
	}
}

// optimalUnitBenefit is a small indirection so lemma tests can use the
// exact optimum without re-importing.
func optimalUnitBenefit(st *stream.Stream, B, R int) (float64, error) {
	res, err := offline.OptimalUnit(st, B, R)
	if err != nil {
		return 0, err
	}
	return res.Benefit, nil
}
