package core_test

// Golden equivalence: the dense-window drop policies, the dense-array
// Server/Client, and the reusable core.Runner arena are pure performance
// refactors — they must produce byte-identical sched.Schedule output to the
// seed implementations. This file embeds a self-contained copy of the seed
// simulator (map-based policy sets, map-based server position index,
// map-based client buffer, allocating link pipe) as the reference model and
// compares full WriteJSON output across policies, seeds, unit and
// variable-size slices, and well/under-provisioned configurations.

import (
	"bytes"
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/sched"
	"repro/internal/stream"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------------
// Reference drop policies (seed rev c1c4e6f internal/drop).
// ---------------------------------------------------------------------------

type refPolicy interface {
	Name() string
	Add(s stream.Slice)
	Remove(id int)
	Victim() (stream.Slice, bool)
	Len() int
}

type refEarlyDropper interface {
	refPolicy
	EarlyVictim(occupancy, capacity int) (stream.Slice, bool)
}

type refLazySet struct{ present map[int]stream.Slice }

func newRefLazySet() refLazySet { return refLazySet{present: make(map[int]stream.Slice)} }

func (l *refLazySet) add(s stream.Slice) { l.present[s.ID] = s }
func (l *refLazySet) remove(id int)      { delete(l.present, id) }
func (l *refLazySet) len() int           { return len(l.present) }
func (l *refLazySet) get(id int) (stream.Slice, bool) {
	s, ok := l.present[id]
	return s, ok
}

type refTailDrop struct {
	stack []int
	set   refLazySet
}

func newRefTailDrop() refPolicy { return &refTailDrop{set: newRefLazySet()} }

func (p *refTailDrop) Name() string { return "taildrop" }
func (p *refTailDrop) Add(s stream.Slice) {
	p.set.add(s)
	p.stack = append(p.stack, s.ID)
}
func (p *refTailDrop) Remove(id int) { p.set.remove(id) }
func (p *refTailDrop) Victim() (stream.Slice, bool) {
	for len(p.stack) > 0 {
		id := p.stack[len(p.stack)-1]
		p.stack = p.stack[:len(p.stack)-1]
		if s, ok := p.set.get(id); ok {
			p.set.remove(id)
			return s, true
		}
	}
	return stream.Slice{}, false
}
func (p *refTailDrop) Len() int { return p.set.len() }

type refHeadDrop struct {
	queue []int
	head  int
	set   refLazySet
}

func newRefHeadDrop() refPolicy { return &refHeadDrop{set: newRefLazySet()} }

func (p *refHeadDrop) Name() string { return "headdrop" }
func (p *refHeadDrop) Add(s stream.Slice) {
	p.set.add(s)
	p.queue = append(p.queue, s.ID)
}
func (p *refHeadDrop) Remove(id int) { p.set.remove(id) }
func (p *refHeadDrop) Victim() (stream.Slice, bool) {
	for p.head < len(p.queue) {
		id := p.queue[p.head]
		p.head++
		if s, ok := p.set.get(id); ok {
			p.set.remove(id)
			return s, true
		}
	}
	return stream.Slice{}, false
}
func (p *refHeadDrop) Len() int { return p.set.len() }

type refGreedyItem struct {
	id        int
	byteValue float64
}

type refGreedyHeap []refGreedyItem

func (h refGreedyHeap) Len() int { return len(h) }
func (h refGreedyHeap) Less(i, j int) bool {
	if h[i].byteValue != h[j].byteValue {
		return h[i].byteValue < h[j].byteValue
	}
	return h[i].id > h[j].id
}
func (h refGreedyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refGreedyHeap) Push(x any)   { *h = append(*h, x.(refGreedyItem)) }
func (h *refGreedyHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type refGreedy struct {
	h   refGreedyHeap
	set refLazySet
}

func newRefGreedy() *refGreedy { return &refGreedy{set: newRefLazySet()} }

func (p *refGreedy) Name() string { return "greedy" }
func (p *refGreedy) Add(s stream.Slice) {
	p.set.add(s)
	heap.Push(&p.h, refGreedyItem{id: s.ID, byteValue: s.ByteValue()})
}
func (p *refGreedy) Remove(id int) { p.set.remove(id) }
func (p *refGreedy) Victim() (stream.Slice, bool) {
	for p.h.Len() > 0 {
		it := heap.Pop(&p.h).(refGreedyItem)
		if s, ok := p.set.get(it.id); ok {
			p.set.remove(it.id)
			return s, true
		}
	}
	return stream.Slice{}, false
}
func (p *refGreedy) peek() (stream.Slice, bool) {
	for p.h.Len() > 0 {
		if s, ok := p.set.get(p.h[0].id); ok {
			return s, true
		}
		heap.Pop(&p.h)
	}
	return stream.Slice{}, false
}
func (p *refGreedy) Len() int { return p.set.len() }

type refRandom struct {
	rng  *rand.Rand
	seed int64
	ids  []int
	pos  map[int]int
	all  map[int]stream.Slice
}

func newRefRandom(seed int64) *refRandom {
	return &refRandom{
		rng:  rand.New(rand.NewSource(seed)),
		seed: seed,
		pos:  make(map[int]int),
		all:  make(map[int]stream.Slice),
	}
}

func (p *refRandom) Name() string { return fmt.Sprintf("random(seed=%d)", p.seed) }
func (p *refRandom) Add(s stream.Slice) {
	if _, ok := p.pos[s.ID]; ok {
		return
	}
	p.pos[s.ID] = len(p.ids)
	p.ids = append(p.ids, s.ID)
	p.all[s.ID] = s
}
func (p *refRandom) Remove(id int) {
	i, ok := p.pos[id]
	if !ok {
		return
	}
	last := len(p.ids) - 1
	p.ids[i] = p.ids[last]
	p.pos[p.ids[i]] = i
	p.ids = p.ids[:last]
	delete(p.pos, id)
	delete(p.all, id)
}
func (p *refRandom) Victim() (stream.Slice, bool) {
	if len(p.ids) == 0 {
		return stream.Slice{}, false
	}
	id := p.ids[p.rng.Intn(len(p.ids))]
	s := p.all[id]
	p.Remove(id)
	return s, true
}
func (p *refRandom) Len() int { return len(p.ids) }

type refAnticipate struct {
	*refGreedy
	threshold  float64
	valueFloor float64
}

func newRefAnticipate(threshold, valueFloor float64) refPolicy {
	return &refAnticipate{refGreedy: newRefGreedy(), threshold: threshold, valueFloor: valueFloor}
}

func (p *refAnticipate) Name() string { return "anticipate" }
func (p *refAnticipate) EarlyVictim(occupancy, capacity int) (stream.Slice, bool) {
	if float64(occupancy) <= p.threshold*float64(capacity) {
		return stream.Slice{}, false
	}
	s, ok := p.peek()
	if !ok {
		return stream.Slice{}, false
	}
	if p.valueFloor > 0 && s.ByteValue() >= p.valueFloor {
		return stream.Slice{}, false
	}
	return p.Victim()
}

type refRandomMix struct {
	g    *refGreedy
	r    *refRandom
	coin func() float64
	prob float64
}

func newRefRandomMix(seed int64, prob float64) refPolicy {
	r := newRefRandom(seed)
	return &refRandomMix{g: newRefGreedy(), r: r, coin: r.rng.Float64, prob: prob}
}

func (p *refRandomMix) Name() string { return "randommix" }
func (p *refRandomMix) Add(s stream.Slice) {
	p.g.Add(s)
	p.r.Add(s)
}
func (p *refRandomMix) Remove(id int) {
	p.g.Remove(id)
	p.r.Remove(id)
}
func (p *refRandomMix) Victim() (stream.Slice, bool) {
	if p.coin() < p.prob {
		s, ok := p.r.Victim()
		if ok {
			p.g.Remove(s.ID)
		}
		return s, ok
	}
	s, ok := p.g.Victim()
	if ok {
		p.r.Remove(s.ID)
	}
	return s, ok
}
func (p *refRandomMix) Len() int { return p.g.Len() }

// ---------------------------------------------------------------------------
// Reference server, client and link pipe (seed rev c1c4e6f internal/core).
// ---------------------------------------------------------------------------

type refServerEntry struct {
	s         stream.Slice
	remaining int
	started   bool
	dropped   bool
}

type refServer struct {
	buffer   int
	rate     int
	policy   refPolicy
	dropLate bool
	deadline int

	queue []refServerEntry
	head  int
	pos   map[int]int
	occ   int
}

type refServerResult struct {
	Sent      []core.Batch
	SentBytes int
	Finished  []int
	Dropped   []stream.Slice
	Occupancy int
}

func newRefServer(buffer, rate int, policy refPolicy, dropLate bool, deadline int) *refServer {
	return &refServer{buffer: buffer, rate: rate, policy: policy,
		dropLate: dropLate, deadline: deadline, pos: make(map[int]int)}
}

func (sv *refServer) Contains(id int) bool {
	i, ok := sv.pos[id]
	return ok && !sv.queue[i].dropped && sv.queue[i].remaining > 0
}

func (sv *refServer) Empty() bool { return sv.occ == 0 }

func (sv *refServer) Step(t int, arrivals []stream.Slice) refServerResult {
	var res refServerResult

	if sv.dropLate {
		for i := sv.head; i < len(sv.queue); i++ {
			e := &sv.queue[i]
			if e.dropped || e.started {
				continue
			}
			if e.s.Arrival+sv.deadline < t {
				sv.policy.Remove(e.s.ID)
				sv.removeByID(e.s.ID)
				res.Dropped = append(res.Dropped, e.s)
			}
		}
	}

	for _, sl := range arrivals {
		if sl.Size > sv.buffer {
			res.Dropped = append(res.Dropped, sl)
			continue
		}
		sv.pos[sl.ID] = len(sv.queue)
		sv.queue = append(sv.queue, refServerEntry{s: sl, remaining: sl.Size})
		sv.occ += sl.Size
		sv.policy.Add(sl)
	}

	if ed, ok := sv.policy.(refEarlyDropper); ok {
		for {
			victim, more := ed.EarlyVictim(sv.occ, sv.buffer)
			if !more {
				break
			}
			sv.removeByID(victim.ID)
			res.Dropped = append(res.Dropped, victim)
		}
	}

	budget := sv.rate
	for budget > 0 && sv.head < len(sv.queue) {
		e := &sv.queue[sv.head]
		if e.dropped {
			sv.advanceHead()
			continue
		}
		if !e.started {
			e.started = true
			sv.policy.Remove(e.s.ID)
		}
		n := e.remaining
		if n > budget {
			n = budget
		}
		e.remaining -= n
		budget -= n
		sv.occ -= n
		res.Sent = append(res.Sent, core.Batch{SliceID: e.s.ID, Bytes: n})
		res.SentBytes += n
		if e.remaining == 0 {
			res.Finished = append(res.Finished, e.s.ID)
			sv.advanceHead()
		}
	}

	for sv.occ > sv.buffer {
		victim, ok := sv.policy.Victim()
		if !ok {
			break
		}
		sv.removeByID(victim.ID)
		res.Dropped = append(res.Dropped, victim)
	}

	res.Occupancy = sv.occ
	return res
}

func (sv *refServer) removeByID(id int) {
	i, ok := sv.pos[id]
	if !ok {
		return
	}
	e := &sv.queue[i]
	if e.dropped {
		return
	}
	e.dropped = true
	sv.occ -= e.remaining
	delete(sv.pos, id)
}

func (sv *refServer) advanceHead() {
	if i, ok := sv.pos[sv.queue[sv.head].s.ID]; ok && i == sv.head {
		delete(sv.pos, sv.queue[sv.head].s.ID)
	}
	sv.head++
}

type refClient struct {
	buffer    int
	delay     int
	linkDelay int
	st        *stream.Stream

	held    map[int]int
	ignored map[int]bool
	occ     int
}

type refClientResult struct {
	Played    []int
	Dropped   []int
	Occupancy int
}

func newRefClient(buffer, delay, linkDelay int, st *stream.Stream) *refClient {
	return &refClient{buffer: buffer, delay: delay, linkDelay: linkDelay, st: st,
		held: make(map[int]int), ignored: make(map[int]bool)}
}

func (cl *refClient) Step(t int, delivered []core.Batch) refClientResult {
	var res refClientResult

	for _, b := range delivered {
		if cl.ignored[b.SliceID] {
			continue
		}
		cl.held[b.SliceID] += b.Bytes
		cl.occ += b.Bytes
	}

	for _, sl := range cl.st.ArrivalsAt(t - cl.linkDelay - cl.delay) {
		if cl.ignored[sl.ID] {
			continue
		}
		if cl.held[sl.ID] == sl.Size {
			res.Played = append(res.Played, sl.ID)
			cl.occ -= sl.Size
			delete(cl.held, sl.ID)
			cl.ignored[sl.ID] = true
			continue
		}
		res.Dropped = append(res.Dropped, sl.ID)
		cl.occ -= cl.held[sl.ID]
		delete(cl.held, sl.ID)
		cl.ignored[sl.ID] = true
	}

	for cl.occ > cl.buffer {
		victim := cl.latestDeadlineHeld()
		if victim < 0 {
			break
		}
		res.Dropped = append(res.Dropped, victim)
		cl.occ -= cl.held[victim]
		delete(cl.held, victim)
		cl.ignored[victim] = true
	}

	res.Occupancy = cl.occ
	return res
}

func (cl *refClient) latestDeadlineHeld() int {
	ids := make([]int, 0, len(cl.held))
	for id := range cl.held {
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return -1
	}
	sort.Ints(ids)
	best := -1
	bestArrival := -1
	for _, id := range ids {
		a := cl.st.Slice(id).Arrival
		if a > bestArrival || (a == bestArrival && id > best) {
			best, bestArrival = id, a
		}
	}
	return best
}

type refPipe struct {
	ring     [][]core.Batch
	head     int
	inFlight int
}

func newRefPipe(delay int) *refPipe { return &refPipe{ring: make([][]core.Batch, delay+1)} }

func (p *refPipe) push(batches []core.Batch) {
	tail := (p.head + len(p.ring) - 1) % len(p.ring)
	p.ring[tail] = append(p.ring[tail], batches...)
	for _, b := range batches {
		p.inFlight += b.Bytes
	}
}

func (p *refPipe) pop() []core.Batch {
	out := p.ring[p.head]
	p.ring[p.head] = nil
	p.head = (p.head + 1) % len(p.ring)
	for _, b := range out {
		p.inFlight -= b.Bytes
	}
	return out
}

func (p *refPipe) empty() bool { return p.inFlight == 0 }

// refSimulate is the seed Simulate loop, driving the reference components.
func refSimulate(st *stream.Stream, cfg core.Config, policy refPolicy) (*sched.Schedule, error) {
	if cfg.Delay <= 0 {
		cfg.Delay = core.DelayFor(cfg.ServerBuffer, cfg.Rate)
	}
	if cfg.ClientBuffer == 0 {
		cfg.ClientBuffer = cfg.ServerBuffer
		if law := cfg.Rate * cfg.Delay; law > cfg.ClientBuffer {
			cfg.ClientBuffer = law
		}
	}
	out := &sched.Schedule{
		Stream: st,
		Params: sched.Params{
			ServerBuffer: cfg.ServerBuffer,
			ClientBuffer: cfg.ClientBuffer,
			Rate:         cfg.Rate,
			Delay:        cfg.Delay,
			LinkDelay:    cfg.LinkDelay,
		},
		Outcomes:  make([]sched.Outcome, st.Len()),
		Algorithm: "generic/" + policy.Name(),
	}
	for i := range out.Outcomes {
		out.Outcomes[i] = sched.Outcome{
			SendStart: sched.None, SendEnd: sched.None,
			DropTime: sched.None, PlayTime: sched.None,
		}
	}
	server := newRefServer(cfg.ServerBuffer, cfg.Rate, policy, cfg.ServerDropsLate, cfg.Delay)
	client := newRefClient(cfg.ClientBuffer, cfg.Delay, cfg.LinkDelay, st)
	link := newRefPipe(cfg.LinkDelay)

	resolved := 0
	pendingLate := make(map[int]int)
	maxSteps := st.Horizon() + cfg.LinkDelay + cfg.Delay + st.TotalBytes()/cfg.Rate + 9
	for t := 0; t <= st.Horizon() || resolved < st.Len() || !server.Empty() || !link.empty(); t++ {
		res := server.Step(t, st.ArrivalsAt(t))
		for _, d := range res.Dropped {
			delete(pendingLate, d.ID)
			if out.Outcomes[d.ID].DropTime == sched.None {
				out.Outcomes[d.ID].DropTime = t
				out.Outcomes[d.ID].DropSite = sched.SiteServer
				resolved++
			}
		}
		for _, b := range res.Sent {
			o := &out.Outcomes[b.SliceID]
			if o.SendStart == sched.None {
				o.SendStart = t
			}
		}
		for _, id := range res.Finished {
			out.Outcomes[id].SendEnd = t
			if lateAt, ok := pendingLate[id]; ok {
				delete(pendingLate, id)
				out.Outcomes[id].DropTime = lateAt
				out.Outcomes[id].DropSite = sched.SiteClient
				resolved++
			}
		}
		link.push(res.Sent)

		cres := client.Step(t, link.pop())
		for _, id := range cres.Played {
			out.Outcomes[id].PlayTime = t
			resolved++
		}
		for _, id := range cres.Dropped {
			if out.Outcomes[id].DropTime != sched.None {
				continue
			}
			if server.Contains(id) {
				pendingLate[id] = t
				continue
			}
			out.Outcomes[id].DropTime = t
			out.Outcomes[id].DropSite = sched.SiteClient
			resolved++
		}

		out.SentPerStep = append(out.SentPerStep, res.SentBytes)
		out.ServerOcc = append(out.ServerOcc, res.Occupancy)
		out.ClientOcc = append(out.ClientOcc, cres.Occupancy)

		if t > maxSteps {
			return nil, fmt.Errorf("reference simulation failed to terminate by step %d", t)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// The equivalence matrix.
// ---------------------------------------------------------------------------

func scheduleJSON(t *testing.T, s *sched.Schedule) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

type goldenPolicy struct {
	name    string
	factory drop.Factory
	ref     func() refPolicy
}

func goldenPolicies() []goldenPolicy {
	return []goldenPolicy{
		{"taildrop", drop.TailDrop, newRefTailDrop},
		{"headdrop", drop.HeadDrop, newRefHeadDrop},
		{"greedy", drop.Greedy, func() refPolicy { return newRefGreedy() }},
		{"random-1", drop.Random(1), func() refPolicy { return newRefRandom(1) }},
		{"random-42", drop.Random(42), func() refPolicy { return newRefRandom(42) }},
		{"anticipate", drop.Anticipate(0.7, 2.0), func() refPolicy { return newRefAnticipate(0.7, 2.0) }},
		{"randommix-7", drop.RandomMix(7, 0.5), func() refPolicy { return newRefRandomMix(7, 0.5) }},
	}
}

// TestGoldenEquivalence runs every policy over unit-slice and variable-size
// streams under well- and under-provisioned configurations, and asserts that
// (a) core.Simulate with the dense implementations and (b) a single
// core.Runner arena reused across ALL cases both reproduce the seed
// simulator's schedule byte-for-byte. The shared runner across heterogeneous
// runs is the state-leakage check; a second full pass over the matrix checks
// that pooled policies reseed deterministically after Recycle.
func TestGoldenEquivalence(t *testing.T) {
	gc := trace.DefaultGenConfig()
	gc.Frames = 90
	cl, err := trace.Generate(gc)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := trace.ByteSliceStream(cl, trace.PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	frames, err := trace.WholeFrameStream(cl, trace.PaperWeights())
	if err != nil {
		t.Fatal(err)
	}

	maxFrame := cl.MaxFrameSize()
	avg := cl.AverageRate()
	type streamCase struct {
		name    string
		st      *stream.Stream
		configs []core.Config
	}
	cases := []streamCase{
		{
			name: "unit",
			st:   unit,
			configs: []core.Config{
				{ServerBuffer: 480, Rate: 35},                                           // well provisioned
				{ServerBuffer: 480, Rate: 33},                                           // lossy rate
				{ServerBuffer: 96, Rate: 7},                                             // tight buffer, heavy loss
				{ServerBuffer: 480, Rate: 33, LinkDelay: 2},                             // propagation delay
				{ServerBuffer: 480, Rate: 30, Delay: 6, ServerDropsLate: true},          // under-provisioned D
				{ServerBuffer: 480, Rate: 33, ClientBuffer: 64, ServerDropsLate: false}, // client overflow path
			},
		},
		{
			name: "frames",
			st:   frames,
			configs: []core.Config{
				{ServerBuffer: 4 * maxFrame, Rate: int(0.9 * avg)}, // Fig. 3 operating point
				{ServerBuffer: 2 * maxFrame, Rate: int(0.7 * avg)}, // lossy
				{ServerBuffer: maxFrame / 2, Rate: int(avg)},       // oversize slices dropped on arrival
				{ServerBuffer: 2 * maxFrame, Rate: int(0.8 * avg), LinkDelay: 1},
			},
		},
	}

	// One arena for the entire matrix: any state leaking between
	// heterogeneous runs (policy pools, dense arrays, pipe ring) would break
	// byte equality somewhere downstream.
	shared := core.NewRunner()
	for pass := 1; pass <= 2; pass++ {
		for _, sc := range cases {
			for ci, cfg := range sc.configs {
				for _, pol := range goldenPolicies() {
					label := fmt.Sprintf("pass%d/%s/cfg%d/%s", pass, sc.name, ci, pol.name)
					refCfg := cfg
					want, err := refSimulate(sc.st, refCfg, pol.ref())
					if err != nil {
						t.Fatalf("%s: reference: %v", label, err)
					}
					wantJSON := scheduleJSON(t, want)

					simCfg := cfg
					simCfg.Policy = pol.factory
					got, err := core.Simulate(sc.st, simCfg)
					if err != nil {
						t.Fatalf("%s: Simulate: %v", label, err)
					}
					if gotJSON := scheduleJSON(t, got); !bytes.Equal(wantJSON, gotJSON) {
						t.Fatalf("%s: Simulate schedule differs from seed reference\nref:  %.200s\ngot:  %.200s",
							label, wantJSON, gotJSON)
					}

					arena, err := shared.Run(sc.st, simCfg)
					if err != nil {
						t.Fatalf("%s: Runner.Run: %v", label, err)
					}
					if arenaJSON := scheduleJSON(t, arena); !bytes.Equal(wantJSON, arenaJSON) {
						t.Fatalf("%s: shared-arena schedule differs from seed reference\nref:  %.200s\ngot:  %.200s",
							label, wantJSON, arenaJSON)
					}
				}
			}
		}
	}
}

// TestRunnerPoolEquivalence checks the Acquire/Release pool path used by the
// sweep workers: pooled runners that previously ran a different policy and
// stream must still reproduce fresh-simulation output exactly.
func TestRunnerPoolEquivalence(t *testing.T) {
	gc := trace.DefaultGenConfig()
	gc.Frames = 60
	cl, err := trace.Generate(gc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.ByteSliceStream(cl, trace.PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{ServerBuffer: 480, Rate: 33, Policy: drop.Greedy}
	fresh, err := core.Simulate(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := scheduleJSON(t, fresh)

	for i := 0; i < 4; i++ {
		r := core.AcquireRunner()
		// Dirty the arena with a different run first.
		if _, err := r.Run(st, core.Config{ServerBuffer: 96, Rate: 7, Policy: drop.Random(3)}); err != nil {
			t.Fatal(err)
		}
		got, err := r.Run(st, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if gotJSON := scheduleJSON(t, got); !bytes.Equal(wantJSON, gotJSON) {
			t.Fatalf("iteration %d: pooled runner schedule differs from fresh Simulate", i)
		}
		core.ReleaseRunner(r)
	}
}
