package core_test

// Property tests for the paper's internal lemmas, checked directly against
// recorded schedules.

import (
	"math/rand"
	"testing"
	"testing/quick"

	. "repro/internal/core" // dot-import: external test package avoids the core<->offline test cycle
	"repro/internal/drop"
	"repro/internal/sched"
)

// TestLemma32 — no byte is submitted to the link more than B/R steps after
// its arrival, and the server buffer requirement is at most B.
func TestLemma32SendWithinBOverR(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStream(rng, 3)
		R := rng.Intn(3) + 1
		B := R * (rng.Intn(6) + st.MaxSliceSize())
		s, err := Simulate(st, Config{ServerBuffer: B, Rate: R})
		if err != nil {
			return false
		}
		D := s.Params.Delay // = ceil(B/R)
		for id, o := range s.Outcomes {
			if o.SendEnd == sched.None {
				continue
			}
			if o.SendEnd > st.Slice(id).Arrival+D {
				t.Logf("seed %d: slice %d sent at %d, arrival %d, bound +%d",
					seed, id, o.SendEnd, st.Slice(id).Arrival, D)
				return false
			}
		}
		return s.ServerBufferRequirement() <= B
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestLemma33 — every byte of a non-dropped slice is received in the window
// [arrival+P, arrival+P+B/R].
func TestLemma33ReceiveWindow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStream(rng, 3)
		R := rng.Intn(3) + 1
		B := R * (rng.Intn(5) + st.MaxSliceSize())
		P := rng.Intn(4)
		s, err := Simulate(st, Config{ServerBuffer: B, Rate: R, LinkDelay: P})
		if err != nil {
			return false
		}
		D := s.Params.Delay
		for id, o := range s.Outcomes {
			if !o.Played() {
				continue
			}
			a := st.Slice(id).Arrival
			rt0 := o.SendStart + P // first byte received
			rt1 := o.SendEnd + P   // last byte received
			if rt0 < a+P || rt1 > a+P+D {
				t.Logf("seed %d: slice %d received [%d,%d], window [%d,%d]",
					seed, id, rt0, rt1, a+P, a+P+D)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestLemma44 — under the greedy policy, the value stored in the buffer at
// any step is at most the value transmitted during the following D steps.
func TestLemma44BufferValueBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := unitStreamW(rng, rng.Intn(60)+1, rng.Intn(12)+1, 50)
		R := rng.Intn(3) + 1
		D := rng.Intn(5) + 1
		B := R * D
		s, err := Simulate(st, Config{ServerBuffer: B, Rate: R, Delay: D, Policy: drop.Greedy})
		if err != nil {
			return false
		}
		// Reconstruct per-step buffer value and sent value from outcomes.
		T := len(s.SentPerStep)
		bufVal := make([]float64, T)  // value of w(Bs(t))
		sentVal := make([]float64, T) // value of w(S(t))
		for id, o := range s.Outcomes {
			sl := st.Slice(id)
			switch {
			case o.Played():
				// Unit slices: SendStart == SendEnd.
				sentVal[o.SendStart] += sl.Weight
				for t2 := sl.Arrival; t2 < o.SendStart; t2++ {
					bufVal[t2] += sl.Weight
				}
			case o.DropSite == sched.SiteServer:
				for t2 := sl.Arrival; t2 < o.DropTime; t2++ {
					bufVal[t2] += sl.Weight
				}
			}
		}
		for t2 := 0; t2 < T; t2++ {
			var next float64
			for i := t2 + 1; i <= t2+D && i < T; i++ {
				next += sentVal[i]
			}
			if bufVal[t2] > next+1e-9 {
				t.Logf("seed %d: step %d buffer value %v > next-%d-steps sent value %v",
					seed, t2, bufVal[t2], D, next)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestLemma31 — the generic server transmits cumulatively at least as much
// as any other schedule with the same buffer and rate: compare against the
// offline-optimal accepted set replayed work-conservingly and against
// randomized alternative schedules.
func TestLemma31GreedyServerDominates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := unitStreamW(rng, rng.Intn(40)+1, rng.Intn(10)+1, 1)
		R := rng.Intn(3) + 1
		B := R * (rng.Intn(5) + 1)
		s, err := Simulate(st, Config{ServerBuffer: B, Rate: R})
		if err != nil {
			return false
		}
		cum := s.CumulativeSent()
		// Alternative: a schedule that randomly drops some arrivals
		// up-front and sends work-conservingly. Its cumulative sends must
		// never exceed the generic algorithm's.
		occ := 0
		var alt int64
		for t2 := 0; t2 < len(cum); t2++ {
			for _, sl := range st.ArrivalsAt(t2) {
				if rng.Intn(3) > 0 { // accept ~2/3
					occ += sl.Size
				}
			}
			send := occ
			if send > R {
				send = R
			}
			occ -= send
			if occ > B {
				occ = B // drop overflow
			}
			alt += int64(send)
			if alt > cum[t2] {
				t.Logf("seed %d: alternative sent %d > generic %d by step %d", seed, alt, cum[t2], t2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestNoPreemptionInvariant — once a slice's first byte is sent, the slice
// is always fully sent (never dropped), for every policy.
func TestNoPreemptionInvariant(t *testing.T) {
	factories := []drop.Factory{drop.TailDrop, drop.HeadDrop, drop.Greedy, drop.Random(3), drop.Anticipate(0.5, 2)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStream(rng, 4)
		R := rng.Intn(3) + 1
		B := R * (rng.Intn(4) + st.MaxSliceSize())
		for _, factory := range factories {
			s, err := Simulate(st, Config{ServerBuffer: B, Rate: R, Policy: factory})
			if err != nil {
				return false
			}
			for id, o := range s.Outcomes {
				if o.SendStart != sched.None && o.SendEnd == sched.None {
					t.Logf("seed %d: slice %d started but never finished", seed, id)
					return false
				}
				if o.DropSite == sched.SiteServer && o.SendStart != sched.None {
					t.Logf("seed %d: slice %d preempted", seed, id)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestAnticipateNeverInvalid — the proactive policy keeps schedules legal
// and cannot beat the exact offline optimum.
func TestAnticipateBoundedByOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := unitStreamW(rng, rng.Intn(40)+1, rng.Intn(10)+1, 20)
		R := rng.Intn(3) + 1
		B := R * (rng.Intn(5) + 1)
		s, err := Simulate(st, Config{ServerBuffer: B, Rate: R, Policy: drop.Anticipate(0.6, 5)})
		if err != nil {
			return false
		}
		if err := s.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		opt, err := optimalUnitBenefit(st, B, R)
		if err != nil {
			return false
		}
		return s.Benefit() <= opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
