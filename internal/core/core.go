// Package core implements the paper's primary contribution: the generic
// real-time lossy smoothing algorithm of Section 3 and the B = R·D
// provisioning law around it.
//
// The system (Fig. 1 of the paper) is a source feeding a server buffer,
// drained FIFO at up to R bytes per step over a lossless constant-delay
// link into a client buffer, which plays each frame exactly P+D steps after
// it was generated:
//
//   - the server transmits whenever its buffer is non-empty, in FIFO order,
//     at the maximal possible rate (Eq. 2);
//   - on overflow it discards whole slices chosen by a pluggable drop.Policy
//     until occupancy is back within B (Eq. 3); a slice whose transmission
//     has begun is never preempted;
//   - the client sets a timer of D steps when the first slice arrives and
//     thereafter plays frame t at step t+P+D (Section 3.1.2).
//
// Theorem 3.5: with unit-size slices and B = R·D this schedule drops the
// minimum possible number of slices among all real-time schedules with the
// same buffer and rate; Theorem 3.9 bounds the degradation for variable
// slice sizes by (B−Lmax+1)/B.
//
// Server and Client are usable step-by-step (the online setting), and
// Simulate wires them together over a recorded stream, returning a complete
// sched.Schedule.
package core

import (
	"fmt"

	"repro/internal/drop"
	"repro/internal/sched"
	"repro/internal/stream"
)

// DelayFor returns the smoothing delay mandated by the B = R·D law for a
// given buffer size and link rate, rounding up when R does not divide B
// (Lemma 3.2's bound is ceil(B/R)).
func DelayFor(buffer, rate int) int {
	if rate <= 0 {
		return 0
	}
	return (buffer + rate - 1) / rate
}

// BufferFor returns the buffer size mandated by the B = R·D law for a given
// rate and delay.
func BufferFor(rate, delay int) int { return rate * delay }

// RateFor returns the link rate mandated by the B = R·D law for a given
// buffer and delay, rounding up.
func RateFor(buffer, delay int) int {
	if delay <= 0 {
		return buffer
	}
	return (buffer + delay - 1) / delay
}

// Config parameterizes a smoothing run.
type Config struct {
	// ServerBuffer is B_s in bytes. Required.
	ServerBuffer int
	// ClientBuffer is B_c in bytes. If zero it defaults to ServerBuffer,
	// the symmetric allocation the paper shows is exactly right when
	// B = R·D.
	ClientBuffer int
	// Rate is R, the link rate in bytes per step. Required.
	Rate int
	// Delay is D, the smoothing delay. If zero or negative, it defaults
	// to DelayFor(ServerBuffer, Rate) — the optimal choice by the B=R·D
	// law. (A degenerate zero smoothing delay cannot be requested; it
	// would make every slice not sent in its arrival step late.)
	Delay int
	// LinkDelay is P, the constant propagation delay of the link.
	LinkDelay int
	// Policy builds the server's drop policy. Defaults to drop.TailDrop.
	Policy drop.Factory
	// ServerDropsLate makes the server proactively discard slices whose
	// playback deadline can no longer be met instead of transmitting them
	// uselessly. The paper's generic algorithm does not do this (it never
	// needs to when D >= B/R); enabling it is an ablation for
	// under-provisioned delays (Section 3.3, first observation).
	ServerDropsLate bool
}

// withDefaults resolves defaulted fields and validates the configuration.
func (c Config) withDefaults() (Config, error) {
	if c.ServerBuffer <= 0 {
		return c, fmt.Errorf("core: server buffer must be positive, got %d", c.ServerBuffer)
	}
	if c.Rate <= 0 {
		return c, fmt.Errorf("core: rate must be positive, got %d", c.Rate)
	}
	if c.Delay <= 0 {
		c.Delay = DelayFor(c.ServerBuffer, c.Rate)
	}
	if c.ClientBuffer == 0 {
		// Lemma 3.4: the client holds at most the bytes the link delivers
		// in a window of D steps, i.e. R·D. When R divides B this equals
		// B (the paper's symmetric allocation); with the rounded-up delay
		// it can exceed B slightly.
		c.ClientBuffer = c.ServerBuffer
		if law := c.Rate * c.Delay; law > c.ClientBuffer {
			c.ClientBuffer = law
		}
	}
	if c.ClientBuffer < 0 {
		return c, fmt.Errorf("core: client buffer must be positive, got %d", c.ClientBuffer)
	}
	if c.LinkDelay < 0 {
		return c, fmt.Errorf("core: link delay must be non-negative, got %d", c.LinkDelay)
	}
	if c.Policy == nil {
		c.Policy = drop.TailDrop
	}
	return c, nil
}

// Batch is a run of consecutive bytes of one slice entering (or leaving)
// the link within a single step.
type Batch struct {
	SliceID int
	Bytes   int
}

// NewComponents resolves the configuration and returns a fresh schedule
// skeleton (all outcomes unresolved, Params filled with the resolved
// values), server and client, for callers that drive their own step loop
// (e.g. package linksim, which puts a jittery link and a regulator between
// server and client).
func NewComponents(st *stream.Stream, cfg Config) (*sched.Schedule, *Server, *Client, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, nil, err
	}
	policy := cfg.Policy()
	out := &sched.Schedule{
		Stream: st,
		Params: sched.Params{
			ServerBuffer: cfg.ServerBuffer,
			ClientBuffer: cfg.ClientBuffer,
			Rate:         cfg.Rate,
			Delay:        cfg.Delay,
			LinkDelay:    cfg.LinkDelay,
		},
		Outcomes:  make([]sched.Outcome, st.Len()),
		Algorithm: "generic/" + policy.Name(),
	}
	for i := range out.Outcomes {
		out.Outcomes[i] = sched.Outcome{
			SendStart: sched.None, SendEnd: sched.None,
			DropTime: sched.None, PlayTime: sched.None,
		}
	}
	server := NewServer(cfg.ServerBuffer, cfg.Rate, policy, ServerOptions{
		DropLate:  cfg.ServerDropsLate,
		Deadline:  cfg.Delay,
		LinkDelay: cfg.LinkDelay,
	})
	client := NewClient(cfg.ClientBuffer, cfg.Delay, cfg.LinkDelay, st)
	return out, server, client, nil
}

// Simulate runs the generic algorithm for the whole stream and returns the
// resulting schedule. The simulation is deterministic given the config (and
// the policy's seed, for randomized policies). The returned schedule always
// passes sched.Validate; tests enforce this.
//
// Simulate uses a fresh arena per call, so the returned schedule owns its
// memory. Sweeps that run many simulations and only read each schedule
// transiently should reuse a Runner instead.
func Simulate(st *stream.Stream, cfg Config) (*sched.Schedule, error) {
	return NewRunner().run(st, cfg)
}

// totalSteps bounds how many steps draining the whole stream can take.
func totalSteps(st *stream.Stream, rate int) int {
	return st.TotalBytes()/rate + 1
}

// pipe models the lossless FIFO link: batches pushed at step t emerge at
// step t+P. It is a fixed-size ring over the propagation delay. Slot
// backing arrays are retained across pops and across reset, so a steady
// simulation pushes and pops without allocating.
type pipe struct {
	ring     [][]Batch
	head     int
	inFlight int
}

// reset prepares the pipe for a run with the given propagation delay,
// reusing slot capacity from earlier runs.
//
//smoothvet:noalloc
func (p *pipe) reset(delay int) {
	n := delay + 1
	if cap(p.ring) < n {
		p.ring = make([][]Batch, n)
	}
	p.ring = p.ring[:n]
	for i := range p.ring {
		p.ring[i] = p.ring[i][:0]
	}
	p.head = 0
	p.inFlight = 0
}

// push inserts the batches sent this step; they will pop after the
// propagation delay.
//
//smoothvet:noalloc
func (p *pipe) push(batches []Batch) {
	tail := (p.head + len(p.ring) - 1) % len(p.ring)
	p.ring[tail] = append(p.ring[tail], batches...)
	for _, b := range batches {
		p.inFlight += b.Bytes
	}
}

// pop removes and returns the batches arriving this step. The returned
// slice aliases the slot's backing array, which is reused for batches
// pushed from this step on; with a positive delay those surface pops
// later, and with delay 0 the caller consumes the batches before the next
// step's push — either way the contents are stable while the caller needs
// them.
//
//smoothvet:aliased
//smoothvet:noalloc
func (p *pipe) pop() []Batch {
	out := p.ring[p.head]
	p.ring[p.head] = out[:0]
	p.head = (p.head + 1) % len(p.ring)
	for _, b := range out {
		p.inFlight -= b.Bytes
	}
	return out
}

func (p *pipe) empty() bool { return p.inFlight == 0 }
