package core

import (
	"sort"

	"repro/internal/stream"
)

// Client is the receiving side of the generic algorithm (Section 3.1.2):
// it buffers bytes delivered by the link and plays the slices of frame t at
// step t+P+D. A slice is played only if all its bytes have arrived by its
// play time; otherwise it is discarded (it missed its deadline). If the
// client buffer overflows, buffered slices with the latest deadlines are
// discarded until the buffer fits.
//
// With B = R·D and ClientBuffer = B the paper proves neither case ever
// happens (Lemmas 3.3 and 3.4); the client implementation still handles
// them so that mis-provisioned configurations (Section 3.3) can be studied.
//
// The paper's client needs no clock synchronization: it starts a timer of D
// steps at the first arrival. This simulation uses the equivalent absolute
// form PT(s) = AT(s)+P+D, which is what the timer realizes on a 0-jitter
// link.
type Client struct {
	buffer    int
	delay     int
	linkDelay int
	st        *stream.Stream

	held    map[int]int  // slice ID -> bytes currently buffered
	ignored map[int]bool // slice ID -> discard any further bytes
	occ     int

	// Reusable ClientStepResult backing arrays (see Step).
	played  []int
	dropped []int
}

// ClientStepResult reports what the client did in one step.
//
// The Played and Dropped slices alias buffers owned by the Client and are
// overwritten by the next Step call; callers that retain them across steps
// must copy.
type ClientStepResult struct {
	// Played lists slice IDs played out this step (all bytes present).
	Played []int
	// Dropped lists slice IDs discarded this step, either because their
	// play time passed without full delivery or because the client
	// buffer overflowed. It may include slices the caller already knows
	// were dropped upstream (the client cannot distinguish "never sent"
	// from "still in transit"); callers should ignore those.
	Dropped []int
	// Occupancy is |Bc(t)| at the end of the step.
	Occupancy int
}

// NewClient returns a client with the given buffer capacity, smoothing
// delay D and link delay P for the given stream. The stream provides the
// frame map (which slices belong to which play step); a wire protocol would
// carry the same information in headers.
func NewClient(buffer, delay, linkDelay int, st *stream.Stream) *Client {
	return &Client{
		buffer:    buffer,
		delay:     delay,
		linkDelay: linkDelay,
		st:        st,
		held:      make(map[int]int),
		ignored:   make(map[int]bool),
	}
}

// Occupancy returns the bytes currently buffered.
func (cl *Client) Occupancy() int { return cl.occ }

// Step executes one time step t: accept delivered batches, play the frame
// scheduled for t, then resolve any buffer overflow.
func (cl *Client) Step(t int, delivered []Batch) ClientStepResult {
	cl.played = cl.played[:0]
	cl.dropped = cl.dropped[:0]
	var res ClientStepResult

	for _, b := range delivered {
		if cl.ignored[b.SliceID] {
			continue
		}
		cl.held[b.SliceID] += b.Bytes
		cl.occ += b.Bytes
	}

	// Play frame t-P-D: whole slices only; incomplete ones missed their
	// deadline and are discarded.
	for _, sl := range cl.st.ArrivalsAt(t - cl.linkDelay - cl.delay) {
		if cl.ignored[sl.ID] {
			continue
		}
		if cl.held[sl.ID] == sl.Size {
			cl.played = append(cl.played, sl.ID)
			cl.occ -= sl.Size
			delete(cl.held, sl.ID)
			cl.ignored[sl.ID] = true
			continue
		}
		cl.dropped = append(cl.dropped, sl.ID)
		cl.occ -= cl.held[sl.ID]
		delete(cl.held, sl.ID)
		cl.ignored[sl.ID] = true
	}

	// Overflow: discard buffered slices, latest deadline first, until the
	// buffer fits. Deterministic tie-break by higher slice ID.
	for cl.occ > cl.buffer {
		victim := cl.latestDeadlineHeld()
		if victim < 0 {
			break
		}
		cl.dropped = append(cl.dropped, victim)
		cl.occ -= cl.held[victim]
		delete(cl.held, victim)
		cl.ignored[victim] = true
	}

	res.Played = cl.played
	res.Dropped = cl.dropped
	res.Occupancy = cl.occ
	return res
}

// latestDeadlineHeld returns the buffered slice with the largest play time
// (ties to the largest ID), or -1 if nothing is buffered. Linear scan:
// overflow is rare and the buffer holds at most Bc bytes.
func (cl *Client) latestDeadlineHeld() int {
	ids := make([]int, 0, len(cl.held))
	for id := range cl.held {
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return -1
	}
	sort.Ints(ids)
	best := -1
	bestArrival := -1
	for _, id := range ids {
		a := cl.st.Slice(id).Arrival
		if a > bestArrival || (a == bestArrival && id > best) {
			best, bestArrival = id, a
		}
	}
	return best
}
