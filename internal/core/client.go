package core

import (
	"repro/internal/stream"
)

// Client is the receiving side of the generic algorithm (Section 3.1.2):
// it buffers bytes delivered by the link and plays the slices of frame t at
// step t+P+D. A slice is played only if all its bytes have arrived by its
// play time; otherwise it is discarded (it missed its deadline). If the
// client buffer overflows, buffered slices with the latest deadlines are
// discarded until the buffer fits.
//
// With B = R·D and ClientBuffer = B the paper proves neither case ever
// happens (Lemmas 3.3 and 3.4); the client implementation still handles
// them so that mis-provisioned configurations (Section 3.3) can be studied.
//
// The paper's client needs no clock synchronization: it starts a timer of D
// steps at the first arrival. This simulation uses the equivalent absolute
// form PT(s) = AT(s)+P+D, which is what the timer realizes on a 0-jitter
// link.
type Client struct {
	buffer    int
	delay     int
	linkDelay int
	st        *stream.Stream

	// held[id] is the number of bytes of slice id currently buffered;
	// 0 means not held (the link never delivers empty batches). ignored[id]
	// marks slices whose fate is sealed (played or given up on), so stray
	// late bytes are discarded. Slice IDs are dense per stream, so flat
	// arrays sized st.Len() replace the maps the client originally used.
	held    []int32
	ignored []bool
	// [heldLo, heldHi) bounds the IDs that may have held bytes; it only
	// widens within a run and is used by the (rare) overflow scan.
	heldLo, heldHi int
	occ            int

	// Reusable ClientStepResult backing arrays (see Step).
	played  []int
	dropped []int
}

// ClientStepResult reports what the client did in one step.
//
// The Played and Dropped slices alias buffers owned by the Client and are
// overwritten by the next Step call; callers that retain them across steps
// must copy.
type ClientStepResult struct {
	// Played lists slice IDs played out this step (all bytes present).
	Played []int
	// Dropped lists slice IDs discarded this step, either because their
	// play time passed without full delivery or because the client
	// buffer overflowed. It may include slices the caller already knows
	// were dropped upstream (the client cannot distinguish "never sent"
	// from "still in transit"); callers should ignore those.
	Dropped []int
	// Occupancy is |Bc(t)| at the end of the step.
	Occupancy int
}

// NewClient returns a client with the given buffer capacity, smoothing
// delay D and link delay P for the given stream. The stream provides the
// frame map (which slices belong to which play step); a wire protocol would
// carry the same information in headers.
func NewClient(buffer, delay, linkDelay int, st *stream.Stream) *Client {
	cl := &Client{}
	cl.Reset(buffer, delay, linkDelay, st)
	return cl
}

// Reset reinitializes the client for a new run over the given stream,
// retaining grown backing arrays so repeated runs (core.Runner) allocate
// nothing once the arrays cover the largest stream seen.
//
//smoothvet:noalloc
func (cl *Client) Reset(buffer, delay, linkDelay int, st *stream.Stream) {
	cl.buffer = buffer
	cl.delay = delay
	cl.linkDelay = linkDelay
	cl.st = st
	n := st.Len()
	if cap(cl.held) < n {
		cl.held = make([]int32, n)
	} else {
		// Clear the full capacity, not just [:n]: a previous, larger run
		// may have left non-zero entries beyond this stream's length.
		cl.held = cl.held[:cap(cl.held)]
		clear(cl.held)
		cl.held = cl.held[:n]
	}
	if cap(cl.ignored) < n {
		cl.ignored = make([]bool, n)
	} else {
		cl.ignored = cl.ignored[:cap(cl.ignored)]
		clear(cl.ignored)
		cl.ignored = cl.ignored[:n]
	}
	cl.heldLo = n
	cl.heldHi = 0
	cl.occ = 0
	cl.played = cl.played[:0]
	cl.dropped = cl.dropped[:0]
}

// Occupancy returns the bytes currently buffered.
func (cl *Client) Occupancy() int { return cl.occ }

// Step executes one time step t: accept delivered batches, play the frame
// scheduled for t, then resolve any buffer overflow.
//
//smoothvet:aliased
//smoothvet:noalloc
func (cl *Client) Step(t int, delivered []Batch) ClientStepResult {
	cl.played = cl.played[:0]
	cl.dropped = cl.dropped[:0]
	var res ClientStepResult

	for _, b := range delivered {
		if cl.ignored[b.SliceID] {
			continue
		}
		if cl.held[b.SliceID] == 0 {
			if b.SliceID < cl.heldLo {
				cl.heldLo = b.SliceID
			}
			if b.SliceID+1 > cl.heldHi {
				cl.heldHi = b.SliceID + 1
			}
		}
		cl.held[b.SliceID] += int32(b.Bytes)
		cl.occ += b.Bytes
	}

	// Play frame t-P-D: whole slices only; incomplete ones missed their
	// deadline and are discarded.
	for _, sl := range cl.st.ArrivalsAt(t - cl.linkDelay - cl.delay) {
		if cl.ignored[sl.ID] {
			continue
		}
		if int(cl.held[sl.ID]) == sl.Size {
			cl.played = append(cl.played, sl.ID)
			cl.occ -= sl.Size
			cl.held[sl.ID] = 0
			cl.ignored[sl.ID] = true
			continue
		}
		cl.dropped = append(cl.dropped, sl.ID)
		cl.occ -= int(cl.held[sl.ID])
		cl.held[sl.ID] = 0
		cl.ignored[sl.ID] = true
	}

	// Overflow: discard buffered slices, latest deadline first, until the
	// buffer fits. Deterministic tie-break by higher slice ID.
	for cl.occ > cl.buffer {
		victim := cl.latestDeadlineHeld()
		if victim < 0 {
			break
		}
		cl.dropped = append(cl.dropped, victim)
		cl.occ -= int(cl.held[victim])
		cl.held[victim] = 0
		cl.ignored[victim] = true
	}

	res.Played = cl.played
	res.Dropped = cl.dropped
	res.Occupancy = cl.occ
	return res
}

// latestDeadlineHeld returns the buffered slice with the largest play time
// (ties to the largest ID), or -1 if nothing is buffered. Linear scan over
// the held ID range: overflow is rare and the ascending scan with >= makes
// the tie-break fall out for free.
//
//smoothvet:noalloc
func (cl *Client) latestDeadlineHeld() int {
	best := -1
	bestArrival := -1
	for id := cl.heldLo; id < cl.heldHi; id++ {
		if cl.held[id] == 0 {
			continue
		}
		if a := cl.st.Slice(id).Arrival; a >= bestArrival {
			best, bestArrival = id, a
		}
	}
	return best
}
