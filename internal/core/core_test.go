package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	. "repro/internal/core" // dot-import: external test package avoids the core<->offline test cycle
	"repro/internal/drop"
	"repro/internal/sched"
	"repro/internal/stream"
)

func mustSimulate(t *testing.T, st *stream.Stream, cfg Config) *sched.Schedule {
	t.Helper()
	s, err := Simulate(st, cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	return s
}

// randomStream builds a small random stream for property tests.
func randomStream(rng *rand.Rand, maxSliceSize int) *stream.Stream {
	b := stream.NewBuilder()
	n := rng.Intn(30) + 1
	for i := 0; i < n; i++ {
		size := rng.Intn(maxSliceSize) + 1
		b.Add(rng.Intn(15), size, float64(rng.Intn(50)+1))
	}
	return b.MustBuild()
}

func TestDelayBufferRateLaws(t *testing.T) {
	tests := []struct {
		b, r, wantD int
	}{
		{10, 2, 5},
		{10, 3, 4}, // ceil(10/3)
		{1, 1, 1},
		{7, 7, 1},
		{7, 10, 1},
	}
	for _, tc := range tests {
		if got := DelayFor(tc.b, tc.r); got != tc.wantD {
			t.Errorf("DelayFor(%d,%d) = %d, want %d", tc.b, tc.r, got, tc.wantD)
		}
	}
	if got := BufferFor(3, 4); got != 12 {
		t.Errorf("BufferFor(3,4) = %d, want 12", got)
	}
	if got := RateFor(10, 4); got != 3 {
		t.Errorf("RateFor(10,4) = %d, want 3 (ceil)", got)
	}
	if got := RateFor(10, 0); got != 10 {
		t.Errorf("RateFor(10,0) = %d, want 10", got)
	}
	if got := DelayFor(10, 0); got != 0 {
		t.Errorf("DelayFor(10,0) = %d, want 0", got)
	}
}

func TestConfigErrors(t *testing.T) {
	st := stream.NewBuilder().Add(0, 1, 1).MustBuild()
	bad := []Config{
		{ServerBuffer: 0, Rate: 1},
		{ServerBuffer: -1, Rate: 1},
		{ServerBuffer: 1, Rate: 0},
		{ServerBuffer: 1, Rate: 1, ClientBuffer: -2},
		{ServerBuffer: 1, Rate: 1, LinkDelay: -1},
	}
	for i, cfg := range bad {
		if _, err := Simulate(st, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSmoothStreamLosesNothing(t *testing.T) {
	// Constant-rate input exactly matching the link rate: zero loss,
	// and with B=RD every slice plays exactly D+P after arrival.
	b := stream.NewBuilder()
	for tt := 0; tt < 50; tt++ {
		b.Add(tt, 3, 3)
	}
	st := b.MustBuild()
	s := mustSimulate(t, st, Config{ServerBuffer: 6, Rate: 3})
	if s.DroppedSlices() != 0 {
		t.Errorf("dropped %d slices on a smooth stream", s.DroppedSlices())
	}
	if s.Throughput() != st.TotalBytes() {
		t.Errorf("throughput %d, want %d", s.Throughput(), st.TotalBytes())
	}
}

func TestBurstAbsorbedByBuffer(t *testing.T) {
	// One burst of exactly B bytes: nothing must be lost.
	st := stream.NewBuilder().AddFrame(0, 1, 1, 1, 1, 1, 1).MustBuild() // 6 unit slices
	s := mustSimulate(t, st, Config{ServerBuffer: 6, Rate: 2})          // D=3
	if s.DroppedSlices() != 0 {
		t.Errorf("dropped %d slices from a burst of exactly B", s.DroppedSlices())
	}
}

func TestOverflowDropsExactExcess(t *testing.T) {
	// 10 unit slices arrive at once; R=2, B=4: 2 sent in step 0, 4 kept,
	// so 4 must be dropped.
	b := stream.NewBuilder()
	for i := 0; i < 10; i++ {
		b.Add(0, 1, 1)
	}
	st := b.MustBuild()
	s := mustSimulate(t, st, Config{ServerBuffer: 4, Rate: 2})
	if got := s.DroppedSlices(); got != 4 {
		t.Errorf("dropped %d slices, want 4", got)
	}
	if got := s.DroppedAt(sched.SiteServer); got != 4 {
		t.Errorf("server drops = %d, want 4", got)
	}
	if got := s.Throughput(); got != 6 {
		t.Errorf("throughput = %d, want 6", got)
	}
}

func TestTailDropDropsNewest(t *testing.T) {
	// Frame 0 fills buffer+link; frame 1 overflows. Tail-drop discards
	// from frame 1.
	b := stream.NewBuilder()
	for i := 0; i < 3; i++ {
		b.Add(0, 1, 1)
	}
	for i := 0; i < 3; i++ {
		b.Add(1, 1, 1)
	}
	st := b.MustBuild()
	s := mustSimulate(t, st, Config{ServerBuffer: 2, Rate: 1, Policy: drop.TailDrop})
	// Step 0: 3 arrive, 1 sent, 2 kept. Step 1: 3 more arrive (occ 5),
	// 1 sent (occ 4), drop to 2 : two of frame 1 dropped... also step 0
	// needed no drop. Count drops from frame 1.
	dropped1 := 0
	for id := 3; id < 6; id++ {
		if s.Outcomes[id].Dropped() {
			dropped1++
		}
	}
	if s.DroppedSlices() != dropped1 {
		t.Errorf("tail-drop dropped old slices: total %d, from frame 1 %d", s.DroppedSlices(), dropped1)
	}
}

func TestGreedyKeepsValuable(t *testing.T) {
	// Low-value slices arrive first, then a burst of high-value ones.
	// Greedy must sacrifice the low-value slices.
	b := stream.NewBuilder()
	b.Add(0, 1, 1).Add(0, 1, 1).Add(0, 1, 1)
	b.Add(1, 1, 100).Add(1, 1, 100).Add(1, 1, 100)
	st := b.MustBuild()
	s := mustSimulate(t, st, Config{ServerBuffer: 3, Rate: 1, Policy: drop.Greedy})
	for id := 3; id < 6; id++ {
		if !s.Outcomes[id].Played() {
			t.Errorf("greedy lost high-value slice %d", id)
		}
	}
}

func TestPlayTimesRealTime(t *testing.T) {
	st := stream.NewBuilder().Add(0, 2, 2).Add(3, 2, 2).MustBuild()
	const P = 4
	s := mustSimulate(t, st, Config{ServerBuffer: 4, Rate: 2, LinkDelay: P})
	D := s.Params.Delay
	for id, o := range s.Outcomes {
		if !o.Played() {
			t.Fatalf("slice %d not played", id)
		}
		if want := st.Slice(id).Arrival + P + D; o.PlayTime != want {
			t.Errorf("slice %d played at %d, want %d", id, o.PlayTime, want)
		}
	}
}

func TestOversizeSliceDropped(t *testing.T) {
	st := stream.NewBuilder().Add(0, 10, 10).Add(0, 2, 2).MustBuild()
	s := mustSimulate(t, st, Config{ServerBuffer: 4, Rate: 2})
	if !s.Outcomes[0].Dropped() {
		t.Error("oversize slice not dropped")
	}
	if !s.Outcomes[1].Played() {
		t.Error("fitting slice was lost")
	}
}

func TestNoPreemption(t *testing.T) {
	// A big slice begins transmission, then a burst overflows the buffer:
	// the in-flight slice must survive.
	b := stream.NewBuilder()
	b.Add(0, 4, 4) // starts sending at step 0, takes 4 steps at R=1
	for i := 0; i < 6; i++ {
		b.Add(1, 1, 1)
	}
	st := b.MustBuild()
	s := mustSimulate(t, st, Config{ServerBuffer: 4, Rate: 1, Policy: drop.HeadDrop})
	if !s.Outcomes[0].Played() {
		t.Error("in-transmission slice was lost despite no-preemption rule")
	}
}

func TestUnderProvisionedDelayCausesClientDrops(t *testing.T) {
	// B=RD needs D=4; force D=1. A burst cannot reach the client in time.
	b := stream.NewBuilder()
	for i := 0; i < 8; i++ {
		b.Add(0, 1, 1)
	}
	st := b.MustBuild()
	s := mustSimulate(t, st, Config{ServerBuffer: 8, Rate: 2, Delay: 1})
	if got := s.DroppedAt(sched.SiteClient); got == 0 {
		t.Error("expected client-side (late) drops with D < B/R")
	}
	// The well-provisioned delay loses nothing.
	s2 := mustSimulate(t, st, Config{ServerBuffer: 8, Rate: 2, Delay: 4})
	if s2.DroppedSlices() != 0 {
		t.Errorf("D=B/R dropped %d slices", s2.DroppedSlices())
	}
}

func TestServerDropsLateAblation(t *testing.T) {
	// With DropLate the server discards doomed slices instead of sending
	// them; the link then carries only useful bytes. Total loss must not
	// increase versus naive late delivery.
	b := stream.NewBuilder()
	for i := 0; i < 12; i++ {
		b.Add(0, 1, 1)
	}
	for i := 0; i < 4; i++ {
		b.Add(6, 1, 1)
	}
	st := b.MustBuild()
	naive := mustSimulate(t, st, Config{ServerBuffer: 12, Rate: 2, Delay: 2})
	proactive := mustSimulate(t, st, Config{ServerBuffer: 12, Rate: 2, Delay: 2, ServerDropsLate: true})
	if proactive.Throughput() < naive.Throughput() {
		t.Errorf("proactive late-dropping reduced throughput: %d < %d",
			proactive.Throughput(), naive.Throughput())
	}
}

func TestSmallClientBufferOverflows(t *testing.T) {
	// Oversized delay with a small client buffer: bytes pile up at the
	// client and must be dropped there (Section 3.3, B < RD discussion).
	b := stream.NewBuilder()
	for tt := 0; tt < 12; tt++ {
		b.Add(tt, 2, 2)
	}
	st := b.MustBuild()
	s := mustSimulate(t, st, Config{ServerBuffer: 100, ClientBuffer: 2, Rate: 2, Delay: 10})
	if got := s.DroppedAt(sched.SiteClient); got == 0 {
		t.Error("expected client overflow drops with Bc << R*D")
	}
}

func TestEmptyStream(t *testing.T) {
	st := stream.NewBuilder().MustBuild()
	s := mustSimulate(t, st, Config{ServerBuffer: 4, Rate: 2})
	if len(s.SentPerStep) != 0 {
		t.Errorf("empty stream simulated %d steps", len(s.SentPerStep))
	}
	if s.Benefit() != 0 || s.Throughput() != 0 {
		t.Error("empty stream has non-zero metrics")
	}
}

func TestAllPoliciesProduceValidSchedules(t *testing.T) {
	// Property: for random streams and parameters, every policy yields a
	// schedule that passes the model validator, and with B=RD and Bc=B
	// there are never client-side drops (Lemmas 3.3, 3.4).
	factories := []drop.Factory{drop.TailDrop, drop.HeadDrop, drop.Greedy, drop.Random(99)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStream(rng, 4)
		rate := rng.Intn(4) + 1
		bufUnits := rng.Intn(8) + 1
		buffer := rate * bufUnits // keep R | B so D = B/R exactly
		if buffer < st.MaxSliceSize() {
			buffer = st.MaxSliceSize() * rate
		}
		linkDelay := rng.Intn(3)
		for _, factory := range factories {
			s, err := Simulate(st, Config{
				ServerBuffer: buffer,
				Rate:         rate,
				LinkDelay:    linkDelay,
				Policy:       factory,
			})
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if err := s.Validate(); err != nil {
				t.Logf("seed %d policy %s: %v", seed, s.Algorithm, err)
				return false
			}
			if s.DroppedAt(sched.SiteClient) != 0 {
				t.Logf("seed %d policy %s: client drops with B=RD", seed, s.Algorithm)
				return false
			}
			if s.ServerBufferRequirement() > buffer {
				return false
			}
			if s.ClientBufferRequirement() > buffer {
				return false
			}
			if s.LinkRateRequirement() > rate {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	st := randomStream(rng, 3)
	cfg := Config{ServerBuffer: 6, Rate: 2, Policy: drop.Greedy}
	a := mustSimulate(t, st, cfg)
	b := mustSimulate(t, st, cfg)
	if a.Benefit() != b.Benefit() || a.Throughput() != b.Throughput() {
		t.Error("simulation not deterministic")
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			t.Fatalf("outcome %d differs between identical runs", i)
		}
	}
}

func TestWorkConserving(t *testing.T) {
	// The generic server must send at full rate whenever it has data:
	// |S(t)| = min(R, backlog). Check on a bursty stream.
	b := stream.NewBuilder()
	b.AddFrame(0, 1, 1, 1, 1, 1, 1, 1, 1)
	b.AddFrame(5, 1, 1, 1)
	st := b.MustBuild()
	s := mustSimulate(t, st, Config{ServerBuffer: 8, Rate: 2})
	backlog := 0
	for t2 := 0; t2 < len(s.SentPerStep); t2++ {
		arrived := 0
		for _, sl := range st.ArrivalsAt(t2) {
			arrived += sl.Size
		}
		avail := backlog + arrived
		want := avail
		if want > 2 {
			want = 2
		}
		if s.SentPerStep[t2] != want {
			t.Fatalf("step %d sent %d, want %d (work conservation)", t2, s.SentPerStep[t2], want)
		}
		backlog = avail - s.SentPerStep[t2]
		if backlog > 8 {
			backlog = 8 // drops
		}
	}
}

func TestSentEqualsEq2(t *testing.T) {
	// Eq. (2): |S(t)| = min(R, |Bs(t-1)| + |A(t)|), for random streams
	// and the tail-drop policy.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStream(rng, 3)
		rate := rng.Intn(3) + 1
		buffer := (rng.Intn(6) + st.MaxSliceSize()) * rate
		s, err := Simulate(st, Config{ServerBuffer: buffer, Rate: rate})
		if err != nil {
			return false
		}
		occPrev := 0
		for t2 := range s.SentPerStep {
			arrived := 0
			for _, sl := range st.ArrivalsAt(t2) {
				arrived += sl.Size
			}
			want := occPrev + arrived
			if want > rate {
				want = rate
			}
			if s.SentPerStep[t2] != want {
				return false
			}
			occPrev = s.ServerOcc[t2]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestServerAccessorsAndCompaction(t *testing.T) {
	// A long run with many small slices exercises the queue-compaction
	// path and the accessors.
	b := stream.NewBuilder()
	for i := 0; i < 400; i++ {
		b.Add(i, 1, 1)
	}
	st := b.MustBuild()
	sv := NewServer(4, 1, drop.NewTailDrop(), ServerOptions{})
	if sv.Rate() != 1 {
		t.Errorf("Rate = %d", sv.Rate())
	}
	sv.SetRate(0) // ignored
	if sv.Rate() != 1 {
		t.Error("SetRate(0) changed the rate")
	}
	sv.SetRate(2)
	if sv.Rate() != 2 {
		t.Error("SetRate(2) ignored")
	}
	sent := 0
	for t2 := 0; t2 <= st.Horizon() || !sv.Empty(); t2++ {
		res := sv.Step(t2, st.ArrivalsAt(t2))
		sent += res.SentBytes
		if sv.Occupancy() != res.Occupancy {
			t.Fatalf("Occupancy() %d != step result %d", sv.Occupancy(), res.Occupancy)
		}
	}
	if sent != st.TotalBytes() {
		t.Errorf("sent %d of %d at rate 2 >= arrival rate", sent, st.TotalBytes())
	}
}

func TestClientOccupancyAccessor(t *testing.T) {
	st := stream.NewBuilder().Add(0, 3, 3).MustBuild()
	cl := NewClient(3, 1, 0, st)
	cl.Step(0, []Batch{{SliceID: 0, Bytes: 3}})
	if cl.Occupancy() != 3 {
		t.Errorf("Occupancy = %d, want 3", cl.Occupancy())
	}
	cl.Step(1, nil) // plays at arrival+D = 1
	if cl.Occupancy() != 0 {
		t.Errorf("Occupancy = %d after playout", cl.Occupancy())
	}
}
