package core

import (
	"fmt"
	"sync"

	"repro/internal/drop"
	"repro/internal/sched"
	"repro/internal/stream"
)

// Runner is a reusable simulation arena: it owns a Server, a Client, a link
// pipe and a sched.Schedule backing store, all recycled between runs. The
// figure/table sweeps run thousands of short simulations; with a per-worker
// Runner every run after the first completes without allocating, which is
// what lets the sweeps scale with cores instead of with the garbage
// collector.
//
// A Runner is not safe for concurrent use; give each goroutine its own
// (AcquireRunner/ReleaseRunner pool them).
type Runner struct {
	server Server
	client Client
	link   pipe
	out    sched.Schedule

	// pendingLate tracks slices the client has given up on (their play
	// time passed) while their bytes are still in the server buffer; they
	// are resolved when those bytes finally leave the server, so that the
	// recorded occupancies stay exact. It is empty whenever B = R·D holds
	// (Lemma 3.3), so a small map is fine here.
	pendingLate map[int]int

	// algo caches the "generic/<policy>" algorithm string so repeated runs
	// with the same policy do not concatenate it again.
	algoPolicy string
	algo       string
}

// NewRunner returns an empty arena. The first Run grows every backing array
// to the stream's working size; subsequent runs reuse them.
func NewRunner() *Runner {
	return &Runner{pendingLate: make(map[int]int)}
}

var runnerPool = sync.Pool{New: func() any { return NewRunner() }}

// AcquireRunner returns a pooled arena. Pair with ReleaseRunner.
func AcquireRunner() *Runner { return runnerPool.Get().(*Runner) }

// ReleaseRunner returns an arena to the pool. The schedules the arena
// produced must no longer be in use: another goroutine may acquire the
// arena and overwrite them.
func ReleaseRunner(r *Runner) { runnerPool.Put(r) }

// Run simulates the generic algorithm for the whole stream, exactly like
// Simulate, but into the arena's recycled state.
//
// The returned schedule (including its Outcomes and occupancy traces)
// aliases memory owned by the Runner and is overwritten by the next Run
// call; callers that need it afterwards must copy (sched.Schedule values
// can be deep-copied via their exported fields) or use Simulate.
//
//smoothvet:aliased
func (r *Runner) Run(st *stream.Stream, cfg Config) (*sched.Schedule, error) {
	return r.run(st, cfg)
}

// run is the simulation loop proper, shared by Runner.Run (recycled result)
// and Simulate (fresh arena per call, so the result is genuinely owned).
func (r *Runner) run(st *stream.Stream, cfg Config) (*sched.Schedule, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	policy := cfg.Policy()
	// The policy is handed back to its pool at the end of the run; the
	// server holds it only between Reset calls.
	defer drop.Recycle(policy)

	if name := policy.Name(); r.algo == "" || r.algoPolicy != name {
		r.algoPolicy = name
		r.algo = "generic/" + name
	}

	out := &r.out
	out.Stream = st
	out.Params = sched.Params{
		ServerBuffer: cfg.ServerBuffer,
		ClientBuffer: cfg.ClientBuffer,
		Rate:         cfg.Rate,
		Delay:        cfg.Delay,
		LinkDelay:    cfg.LinkDelay,
	}
	out.Algorithm = r.algo
	n := st.Len()
	if cap(out.Outcomes) < n {
		out.Outcomes = make([]sched.Outcome, n)
	}
	out.Outcomes = out.Outcomes[:n]
	for i := range out.Outcomes {
		out.Outcomes[i] = sched.Outcome{
			SendStart: sched.None, SendEnd: sched.None,
			DropTime: sched.None, PlayTime: sched.None,
		}
	}
	out.SentPerStep = out.SentPerStep[:0]
	out.ServerOcc = out.ServerOcc[:0]
	out.ClientOcc = out.ClientOcc[:0]

	r.server.Reset(cfg.ServerBuffer, cfg.Rate, policy, ServerOptions{
		DropLate:  cfg.ServerDropsLate,
		Deadline:  cfg.Delay,
		LinkDelay: cfg.LinkDelay,
	})
	r.client.Reset(cfg.ClientBuffer, cfg.Delay, cfg.LinkDelay, st)
	r.link.reset(cfg.LinkDelay)
	clear(r.pendingLate)

	resolved := 0
	for t := 0; t <= st.Horizon() || resolved < n || !r.server.Empty() || !r.link.empty(); t++ {
		res := r.server.Step(t, st.ArrivalsAt(t))
		for _, d := range res.Dropped {
			// A slice the client had already declared late may now be
			// physically discarded by the server (proactive late drop);
			// the server is the drop site — that is where the bytes died.
			delete(r.pendingLate, d.ID)
			if out.Outcomes[d.ID].DropTime == sched.None {
				out.Outcomes[d.ID].DropTime = t
				out.Outcomes[d.ID].DropSite = sched.SiteServer
				resolved++
			}
		}
		for _, b := range res.Sent {
			o := &out.Outcomes[b.SliceID]
			if o.SendStart == sched.None {
				o.SendStart = t
			}
		}
		for _, id := range res.Finished {
			out.Outcomes[id].SendEnd = t
			if lateAt, ok := r.pendingLate[id]; ok {
				// The slice's bytes have fully left the server; the client
				// discarded (or will discard) them on arrival. It counts
				// as lost at the client from its play time on.
				delete(r.pendingLate, id)
				out.Outcomes[id].DropTime = lateAt
				out.Outcomes[id].DropSite = sched.SiteClient
				resolved++
			}
		}
		r.link.push(res.Sent)

		cres := r.client.Step(t, r.link.pop())
		for _, id := range cres.Played {
			out.Outcomes[id].PlayTime = t
			resolved++
		}
		for _, id := range cres.Dropped {
			// The client reports every scheduled slice it could not play;
			// slices the server already dropped were resolved upstream,
			// and slices still (partly) at the server are resolved when
			// their bytes leave it.
			if out.Outcomes[id].DropTime != sched.None {
				continue
			}
			if r.server.Contains(id) {
				r.pendingLate[id] = t
				continue
			}
			out.Outcomes[id].DropTime = t
			out.Outcomes[id].DropSite = sched.SiteClient
			resolved++
		}

		out.SentPerStep = append(out.SentPerStep, res.SentBytes)
		out.ServerOcc = append(out.ServerOcc, res.Occupancy)
		out.ClientOcc = append(out.ClientOcc, cres.Occupancy)

		if t > st.Horizon()+cfg.LinkDelay+cfg.Delay+totalSteps(st, cfg.Rate)+8 {
			// Defensive: the loop provably terminates (the server sends R
			// bytes per non-empty step), so this indicates a bug.
			return nil, fmt.Errorf("core: simulation failed to terminate by step %d", t)
		}
	}
	return out, nil
}
