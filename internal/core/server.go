package core

import (
	"repro/internal/drop"
	"repro/internal/stream"
)

// ServerOptions tunes server behaviour beyond the paper's generic algorithm.
type ServerOptions struct {
	// DropLate enables proactive discarding of slices whose playback
	// deadline can no longer be met (arrival + Deadline < now). The
	// paper's algorithm never does this; with D >= B/R it never needs to.
	DropLate bool
	// Deadline is D, used only when DropLate is set.
	Deadline int
	// LinkDelay is P; retained for documentation/symmetry (the deadline
	// test at the server is on send time, which is independent of P).
	LinkDelay int
}

// Server is the sending side of the generic algorithm: a FIFO buffer of
// capacity B drained at up to R bytes per step, discarding whole slices
// chosen by a drop.Policy on overflow, never preempting a slice whose
// transmission has begun. It is driven step-by-step, so it can be used both
// by the offline Simulate driver and by online/real-time transports.
type Server struct {
	buffer int
	rate   int
	policy drop.Policy
	opts   ServerOptions

	queue []serverEntry
	head  int
	// pos maps slice ID -> queue index + 1 (0 = absent). Slice IDs are
	// dense per stream, so a flat array replaces the map the server
	// originally used — no hashing, and Reset clears it with one memclr.
	pos []int32
	occ int // bytes currently stored

	// Reusable ServerStepResult backing arrays (see Step): the hot loops
	// in Simulate and the sweep experiments call Step millions of times,
	// and reusing these keeps the per-step allocation count at zero once
	// the arrays have grown to their working size.
	sent     []Batch
	finished []int
	dropped  []stream.Slice
}

type serverEntry struct {
	s         stream.Slice
	remaining int
	started   bool
	dropped   bool
}

// ServerStepResult reports what the server did in one step.
//
// The Sent, Finished and Dropped slices alias buffers owned by the Server
// and are overwritten by the next Step call; callers that retain them
// across steps must copy.
type ServerStepResult struct {
	// Sent lists byte batches submitted to the link this step, in FIFO
	// order. Batches of distinct slices never interleave.
	Sent []Batch
	// SentBytes is the total size of Sent.
	SentBytes int
	// Finished lists slice IDs whose last byte was sent this step.
	Finished []int
	// Dropped lists slices discarded this step (overflow, oversize, or
	// proactive late drop).
	Dropped []stream.Slice
	// Occupancy is |Bs(t)|, the buffer occupancy at the end of the step.
	Occupancy int
}

// NewServer returns a server with the given buffer capacity (bytes), link
// rate (bytes/step) and drop policy. The policy must be fresh (not shared
// with another server).
func NewServer(buffer, rate int, policy drop.Policy, opts ServerOptions) *Server {
	sv := &Server{}
	sv.Reset(buffer, rate, policy, opts)
	return sv
}

// Reset reinitializes the server for a new run with the given parameters,
// retaining all grown backing arrays so repeated runs (core.Runner, the
// sweep experiments) allocate nothing. The policy must be fresh or Reset.
//
//smoothvet:noalloc
func (sv *Server) Reset(buffer, rate int, policy drop.Policy, opts ServerOptions) {
	sv.buffer = buffer
	sv.rate = rate
	sv.policy = policy
	sv.opts = opts
	sv.queue = sv.queue[:0]
	sv.head = 0
	sv.occ = 0
	sv.pos = sv.pos[:cap(sv.pos)]
	clear(sv.pos)
	sv.sent = sv.sent[:0]
	sv.finished = sv.finished[:0]
	sv.dropped = sv.dropped[:0]
}

// Occupancy returns the bytes currently stored.
func (sv *Server) Occupancy() int { return sv.occ }

// Rate returns the current drain rate.
func (sv *Server) Rate() int { return sv.rate }

// SetRate changes the drain rate from the next step on. It supports
// renegotiated-CBR experiments (package adaptive); the paper's model keeps
// the rate constant. Non-positive rates are ignored.
func (sv *Server) SetRate(rate int) {
	if rate > 0 {
		sv.rate = rate
	}
}

// posAt returns the queue index of the slice, or -1 if it is not stored.
//
//smoothvet:noalloc
func (sv *Server) posAt(id int) int {
	if id < 0 || id >= len(sv.pos) {
		return -1
	}
	return int(sv.pos[id]) - 1
}

// Contains reports whether the slice still has unsent bytes stored in the
// server buffer.
func (sv *Server) Contains(id int) bool {
	i := sv.posAt(id)
	return i >= 0 && !sv.queue[i].dropped && sv.queue[i].remaining > 0
}

// Empty reports whether the buffer holds no bytes.
func (sv *Server) Empty() bool { return sv.occ == 0 }

// Step executes one time step t: accept arrivals, transmit up to R bytes in
// FIFO order, then discard slices per the policy until occupancy is within
// the buffer (Eqs. 2–3 of the paper, with whole-slice drops).
//
//smoothvet:aliased
//smoothvet:noalloc
func (sv *Server) Step(t int, arrivals []stream.Slice) ServerStepResult {
	// Reuse the result backing arrays from the previous step (see the
	// ServerStepResult aliasing contract).
	sv.sent = sv.sent[:0]
	sv.finished = sv.finished[:0]
	sv.dropped = sv.dropped[:0]
	var res ServerStepResult

	if sv.opts.DropLate {
		sv.dropLate(t)
	}

	// Arrivals join the buffer; a slice larger than the whole buffer can
	// never be stored and is discarded on the spot.
	for _, sl := range arrivals {
		if sl.Size > sv.buffer {
			sv.dropped = append(sv.dropped, sl)
			continue
		}
		for len(sv.pos) <= sl.ID {
			sv.pos = append(sv.pos, 0)
		}
		sv.pos[sl.ID] = int32(len(sv.queue)) + 1
		sv.queue = append(sv.queue, serverEntry{s: sl, remaining: sl.Size})
		sv.occ += sl.Size
		sv.policy.Add(sl)
	}

	// Proactive policies may shed slices before transmission admits a new
	// slice to the unpreemptable head of the queue (Section 6's open
	// problem; see drop.EarlyDropper).
	if ed, ok := sv.policy.(drop.EarlyDropper); ok {
		for {
			victim, more := ed.EarlyVictim(sv.occ, sv.buffer)
			if !more {
				break
			}
			sv.removeByID(victim.ID)
			sv.dropped = append(sv.dropped, victim)
		}
	}

	// Transmit: |S(t)| = min(R, |Bs(t-1)| + |A(t)|), FIFO, no preemption.
	budget := sv.rate
	for budget > 0 && sv.head < len(sv.queue) {
		e := &sv.queue[sv.head]
		if e.dropped {
			sv.advanceHead()
			continue
		}
		if !e.started {
			e.started = true
			// The slice has commenced transmission: it is no longer
			// droppable.
			sv.policy.Remove(e.s.ID)
		}
		n := e.remaining
		if n > budget {
			n = budget
		}
		e.remaining -= n
		budget -= n
		sv.occ -= n
		sv.sent = append(sv.sent, Batch{SliceID: e.s.ID, Bytes: n})
		res.SentBytes += n
		if e.remaining == 0 {
			sv.finished = append(sv.finished, e.s.ID)
			sv.advanceHead()
		}
	}

	// Overflow: discard whole slices until occupancy fits (Eq. 3). The
	// partially-transmitted head slice is exempt; its residue is at most
	// Lmax-1 <= B-1 bytes, so the loop always terminates within capacity
	// as long as every stored slice fits the buffer (guaranteed above).
	for sv.occ > sv.buffer {
		victim, ok := sv.policy.Victim()
		if !ok {
			break // only the in-transmission residue remains
		}
		sv.removeByID(victim.ID)
		sv.dropped = append(sv.dropped, victim)
	}

	res.Sent = sv.sent
	res.Finished = sv.finished
	res.Dropped = sv.dropped
	res.Occupancy = sv.occ
	return res
}

// dropLate proactively discards queued, not-yet-started slices whose
// deadline (arrival + D) has already passed.
//
//smoothvet:noalloc
func (sv *Server) dropLate(t int) {
	for i := sv.head; i < len(sv.queue); i++ {
		e := &sv.queue[i]
		if e.dropped || e.started {
			continue
		}
		if e.s.Arrival+sv.opts.Deadline < t {
			sv.policy.Remove(e.s.ID)
			sv.removeByID(e.s.ID)
			sv.dropped = append(sv.dropped, e.s)
		}
	}
}

// removeByID marks the slice dropped and releases its bytes.
//
//smoothvet:noalloc
func (sv *Server) removeByID(id int) {
	i := sv.posAt(id)
	if i < 0 {
		return
	}
	e := &sv.queue[i]
	if e.dropped {
		return
	}
	e.dropped = true
	sv.occ -= e.remaining
	sv.pos[id] = 0
}

// advanceHead moves past the head entry and compacts the queue when more
// than half of it is dead, keeping memory proportional to live entries.
//
//smoothvet:noalloc
func (sv *Server) advanceHead() {
	if id := sv.queue[sv.head].s.ID; sv.posAt(id) == sv.head {
		sv.pos[id] = 0
	}
	sv.head++
	if sv.head > 64 && sv.head > len(sv.queue)/2 {
		live := sv.queue[sv.head:]
		copy(sv.queue, live)
		sv.queue = sv.queue[:len(live)]
		sv.head = 0
		for i := range sv.queue {
			if !sv.queue[i].dropped {
				sv.pos[sv.queue[i].s.ID] = int32(i) + 1
			}
		}
	}
}
