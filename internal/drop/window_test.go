package drop

import (
	"math/rand"
	"testing"

	"repro/internal/stream"
)

// windowModel is the map-based reference the dense window replaces: plain
// hash-map membership with recomputed-by-scan queries.
type windowModel struct {
	present map[int]stream.Slice
	aux     map[int]int32
}

func newWindowModel() *windowModel {
	return &windowModel{present: make(map[int]stream.Slice), aux: make(map[int]int32)}
}

func (m *windowModel) add(s stream.Slice) {
	m.present[s.ID] = s
	if _, ok := m.aux[s.ID]; !ok {
		m.aux[s.ID] = 0
	}
}

func (m *windowModel) remove(id int) {
	delete(m.present, id)
	delete(m.aux, id)
}

func (m *windowModel) first() (stream.Slice, bool) {
	best, ok := stream.Slice{}, false
	for id, s := range m.present {
		if !ok || id < best.ID {
			best, ok = s, true
		}
	}
	return best, ok
}

// checkAgainstModel asserts every observable of the window matches the
// model over the full live ID range.
func checkAgainstModel(t *testing.T, w *window, m *windowModel, lo, hi int) {
	t.Helper()
	if w.len() != len(m.present) {
		t.Fatalf("len: window %d, model %d", w.len(), len(m.present))
	}
	wf, wok := w.first()
	mf, mok := m.first()
	if wok != mok || (wok && wf != mf) {
		t.Fatalf("first: window (%+v,%v), model (%+v,%v)", wf, wok, mf, mok)
	}
	for id := lo; id <= hi; id++ {
		ws, wok := w.get(id)
		ms, mok := m.present[id]
		if wok != mok || (wok && ws != ms) {
			t.Fatalf("get(%d): window (%+v,%v), model (%+v,%v)", id, ws, wok, ms, mok)
		}
		wa, wok := w.auxOf(id)
		ma, mok2 := m.aux[id]
		if wok != mok2 || (wok && wa != ma) {
			t.Fatalf("aux(%d): window (%d,%v), model (%d,%v)", id, wa, wok, ma, mok2)
		}
	}
}

// driveWindow replays an operation stream (monotone adds, arbitrary
// removals/aux writes) against both implementations and cross-checks after
// every step. ops bytes select the operation; the walk is deterministic.
func driveWindow(t *testing.T, ops []byte) {
	t.Helper()
	w := &window{}
	m := newWindowModel()
	nextID := 0
	live := []int{} // ids added and not yet removed (may contain stale ids)
	lo := 0
	for i, op := range ops {
		switch op % 5 {
		case 0, 1: // add the next ID, sometimes skipping a gap
			if op%7 == 0 {
				nextID += int(op%3) + 1 // gap: IDs the policy never sees
			}
			s := stream.Slice{ID: nextID, Arrival: i, Size: int(op%9) + 1, Weight: float64(op%13) + 1}
			w.add(s)
			m.add(s)
			live = append(live, nextID)
			nextID++
		case 2: // remove a known id (possibly already removed: no-op)
			if len(live) > 0 {
				id := live[int(op)%len(live)]
				w.remove(id)
				m.remove(id)
			}
		case 3: // re-add the most recent id (idempotent refresh)
			if len(live) > 0 {
				id := live[len(live)-1]
				if s, ok := m.present[id]; ok {
					w.add(s)
					m.add(s)
				}
			}
		case 4: // set aux on a known id
			if len(live) > 0 {
				id := live[int(op)%len(live)]
				v := int32(op)
				w.setAux(id, v)
				if _, ok := m.present[id]; ok {
					m.aux[id] = v
				}
			}
		}
		checkAgainstModel(t, w, m, lo, nextID+1)
	}
	// Reset must empty the window and keep it consistent for a fresh run.
	w.reset()
	if w.len() != 0 {
		t.Fatalf("after reset: len %d", w.len())
	}
	if _, ok := w.first(); ok {
		t.Fatal("after reset: first returned an entry")
	}
}

// TestWindowAgainstModel drives long random interleavings from fixed seeds.
func TestWindowAgainstModel(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := make([]byte, 400)
		for i := range ops {
			ops[i] = byte(rng.Intn(256))
		}
		driveWindow(t, ops)
	}
}

// FuzzWindow lets the fuzzer search for operation interleavings where the
// dense window diverges from the map model. Run with `go test -fuzz
// FuzzWindow ./internal/drop` for an open-ended search; in normal test runs
// the seed corpus below is replayed.
func FuzzWindow(f *testing.F) {
	f.Add([]byte{0, 0, 2, 0, 3, 4, 2, 2, 0, 1, 14, 7, 21})
	f.Add([]byte{7, 14, 21, 28, 35, 2, 2, 2, 2, 0, 0, 0})
	f.Add([]byte{0, 1, 0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 255, 128, 64})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 2048 {
			ops = ops[:2048]
		}
		driveWindow(t, ops)
	})
}

// TestWindowMonotonePanic locks in the contract violation diagnostic: adding
// an ID below the window start must panic rather than corrupt the index.
func TestWindowMonotonePanic(t *testing.T) {
	w := &window{}
	w.add(stream.Slice{ID: 5, Size: 1})
	w.add(stream.Slice{ID: 6, Size: 1})
	w.remove(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-monotone add")
		}
	}()
	w.add(stream.Slice{ID: 4, Size: 1})
}

// TestWindowCompaction forces the dead-prefix compaction path and checks
// the live suffix survives with correct IDs.
func TestWindowCompaction(t *testing.T) {
	w := &window{}
	const n = 300
	for id := 0; id < n; id++ {
		w.add(stream.Slice{ID: id, Size: 1, Weight: float64(id)})
	}
	for id := 0; id < n-10; id++ {
		w.remove(id)
	}
	if w.len() != 10 {
		t.Fatalf("len = %d, want 10", w.len())
	}
	for id := n - 10; id < n; id++ {
		s, ok := w.get(id)
		if !ok || s.ID != id || s.Weight != float64(id) {
			t.Fatalf("get(%d) = (%+v, %v) after compaction", id, s, ok)
		}
	}
	if s, ok := w.first(); !ok || s.ID != n-10 {
		t.Fatalf("first = (%+v, %v), want ID %d", s, ok, n-10)
	}
	// The backing array must have shrunk to near the live span.
	if len(w.entries) > 64+10 {
		t.Fatalf("entries not compacted: len %d", len(w.entries))
	}
}

// TestWindowRebase checks that an add into an empty window rebases instead
// of growing the array across the dead gap.
func TestWindowRebase(t *testing.T) {
	w := &window{}
	w.add(stream.Slice{ID: 0, Size: 1})
	w.remove(0)
	w.add(stream.Slice{ID: 1 << 20, Size: 1})
	if len(w.entries) != 1 {
		t.Fatalf("entries len %d after rebase, want 1", len(w.entries))
	}
	if s, ok := w.first(); !ok || s.ID != 1<<20 {
		t.Fatalf("first = (%+v, %v)", s, ok)
	}
}
