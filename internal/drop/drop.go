// Package drop implements the slice-discard policies used by the server of
// the generic smoothing algorithm. The generic algorithm (Section 3 of the
// paper) intentionally under-specifies which slices to drop on overflow;
// this package supplies the choices studied in the paper:
//
//   - TailDrop: discard the most recently arrived slices first ("slices from
//     frame i are discarded" on an overflow at time i) — the FIFO/Tail-Drop
//     baseline of Section 5;
//   - Greedy: discard the slices with the lowest byte value w(s)/|s| first —
//     the 4-competitive algorithm of Section 4.1;
//   - HeadDrop: discard the oldest droppable slices first;
//   - Random: discard uniformly random droppable slices (deterministic seed).
//
// A policy tracks the set of "droppable" slices currently in the server
// buffer: slices that have not yet started transmission (no preemption) and
// have not been dropped. The simulator notifies the policy as slices enter
// the buffer, start transmission, or finish; when an overflow occurs it
// repeatedly asks for a victim until the buffer fits.
//
// All policies index membership with a dense ID window (see window.go)
// instead of hash maps, exploiting the monotone slice IDs the simulator
// guarantees, and their instances are recycled through Recycle so the
// simulation hot loop runs allocation-free.
package drop

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/stream"
)

// Policy selects victims on server-buffer overflow. Implementations keep an
// internal index of droppable slices; all methods are called from a single
// goroutine by the simulator. Add must be called in non-decreasing slice-ID
// order (the simulator's arrival order), which is what lets the policies use
// dense windows instead of hash maps.
type Policy interface {
	// Name returns a short human-readable policy name.
	Name() string
	// Add registers a slice that has entered the server buffer and is
	// droppable.
	Add(s stream.Slice)
	// Remove unregisters a slice that left the droppable set without
	// being chosen as a victim: it either started transmission or was
	// fully sent within the step it arrived. Removing an unknown or
	// already-removed ID is a no-op.
	Remove(id int)
	// Victim removes and returns the next slice to drop. ok is false if
	// no droppable slice remains.
	Victim() (s stream.Slice, ok bool)
	// Len returns the number of droppable slices currently registered.
	Len() int
	// Reset clears all state so the policy can be reused for a new run.
	Reset()
}

// Factory builds a fresh Policy instance. Simulations take a Factory so
// that concurrent or repeated runs never share mutable policy state.
type Factory func() Policy

// Recycle returns a policy obtained from one of this package's constructors
// to its free pool, so the next constructor call reuses its grown backing
// arrays instead of allocating. The caller must not touch the policy after
// recycling it. Policies of foreign types are ignored.
//
// Only the simulation driver that created a policy (and knows its lifetime
// ended) may recycle it; core.Runner does so at the end of every run.
func Recycle(p Policy) {
	switch p := p.(type) {
	case *tailDrop:
		tailPool.Put(p)
	case *headDrop:
		headPool.Put(p)
	case *greedy:
		greedyPool.Put(p)
	case *random:
		randomPool.Put(p)
	case *anticipate:
		anticipatePool.Put(p)
	case *randomMix:
		randomMixPool.Put(p)
	}
}

var (
	tailPool       = sync.Pool{New: func() any { return new(tailDrop) }}
	headPool       = sync.Pool{New: func() any { return new(headDrop) }}
	greedyPool     = sync.Pool{New: func() any { return new(greedy) }}
	randomPool     = sync.Pool{New: func() any { return new(random) }}
	anticipatePool = sync.Pool{New: func() any { return new(anticipate) }}
	randomMixPool  = sync.Pool{New: func() any { return new(randomMix) }}
)

// ---------------------------------------------------------------------------
// TailDrop
// ---------------------------------------------------------------------------

// tailDrop drops the newest slice first. Because the simulator adds slices
// in arrival order, a stack with lazy deletion gives O(1) amortized victims.
type tailDrop struct {
	stack []int
	w     window
}

// NewTailDrop returns a policy that discards the most recently arrived
// droppable slice first.
func NewTailDrop() Policy {
	p := tailPool.Get().(*tailDrop)
	p.Reset()
	return p
}

// TailDrop is the Factory for NewTailDrop.
func TailDrop() Policy { return NewTailDrop() }

func (p *tailDrop) Name() string { return "taildrop" }

//smoothvet:noalloc
func (p *tailDrop) Add(s stream.Slice) {
	p.w.add(s)
	p.stack = append(p.stack, s.ID)
}

//smoothvet:noalloc
func (p *tailDrop) Remove(id int) { p.w.remove(id) }

//smoothvet:noalloc
func (p *tailDrop) Victim() (stream.Slice, bool) {
	for len(p.stack) > 0 {
		id := p.stack[len(p.stack)-1]
		p.stack = p.stack[:len(p.stack)-1]
		if s, ok := p.w.get(id); ok {
			p.w.remove(id)
			return s, true
		}
	}
	return stream.Slice{}, false
}

func (p *tailDrop) Len() int { return p.w.len() }

//smoothvet:noalloc
func (p *tailDrop) Reset() {
	p.stack = p.stack[:0]
	p.w.reset()
}

// ---------------------------------------------------------------------------
// HeadDrop
// ---------------------------------------------------------------------------

// headDrop drops the oldest droppable slice first. The victim order needs
// no auxiliary queue at all: slices are added in ID order, so the oldest
// droppable slice is exactly the window's head entry, by construction.
type headDrop struct {
	w window
}

// NewHeadDrop returns a policy that discards the oldest droppable slice
// first (drop-from-front).
func NewHeadDrop() Policy {
	p := headPool.Get().(*headDrop)
	p.Reset()
	return p
}

// HeadDrop is the Factory for NewHeadDrop.
func HeadDrop() Policy { return NewHeadDrop() }

func (p *headDrop) Name() string { return "headdrop" }

//smoothvet:noalloc
func (p *headDrop) Add(s stream.Slice) { p.w.add(s) }

//smoothvet:noalloc
func (p *headDrop) Remove(id int) { p.w.remove(id) }

//smoothvet:noalloc
func (p *headDrop) Victim() (stream.Slice, bool) {
	s, ok := p.w.first()
	if !ok {
		return stream.Slice{}, false
	}
	p.w.remove(s.ID)
	return s, true
}

func (p *headDrop) Len() int { return p.w.len() }

//smoothvet:noalloc
func (p *headDrop) Reset() { p.w.reset() }

// ---------------------------------------------------------------------------
// Greedy
// ---------------------------------------------------------------------------

// greedyItem orders the min-heap behind the greedy policy: lowest byte value
// first; ties are broken toward the newest slice (largest ID), matching the
// tail-drop intuition that newer data has had less invested in it. The paper
// allows arbitrary tie-breaking.
type greedyItem struct {
	id        int
	byteValue float64
}

// greedyHeap is a hand-rolled min-heap rather than a container/heap
// implementation: heap.Push/Pop box every greedyItem into an interface,
// which costs one allocation per operation in the simulator's hot path.
// The direct methods below are allocation-free, and push reuses the
// backing array truncated by pop and Reset.
type greedyHeap []greedyItem

func (h greedyHeap) less(i, j int) bool {
	if h[i].byteValue != h[j].byteValue {
		return h[i].byteValue < h[j].byteValue
	}
	return h[i].id > h[j].id
}

// push inserts an item and restores the heap invariant (sift-up).
func (h *greedyHeap) push(it greedyItem) {
	*h = append(*h, it)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum item (sift-down). The backing array
// is retained for reuse.
func (h *greedyHeap) pop() greedyItem {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s = s[:n]
	*h = s
	for i := 0; ; {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && s.less(left, smallest) {
			smallest = left
		}
		if right < n && s.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// greedy drops the slice with the lowest byte value w(s)/|s| first
// (Section 4.1), via a min-heap with lazy deletion.
type greedy struct {
	h greedyHeap
	w window
}

// NewGreedy returns the greedy policy of Section 4.1: on overflow, discard
// the droppable slice with the lowest byte value.
func NewGreedy() Policy {
	p := greedyPool.Get().(*greedy)
	p.Reset()
	return p
}

// Greedy is the Factory for NewGreedy.
func Greedy() Policy { return NewGreedy() }

func (p *greedy) Name() string { return "greedy" }

//smoothvet:noalloc
func (p *greedy) Add(s stream.Slice) {
	p.w.add(s)
	p.h.push(greedyItem{id: s.ID, byteValue: s.ByteValue()})
}

//smoothvet:noalloc
func (p *greedy) Remove(id int) { p.w.remove(id) }

//smoothvet:noalloc
func (p *greedy) Victim() (stream.Slice, bool) {
	for len(p.h) > 0 {
		it := p.h.pop()
		if s, ok := p.w.get(it.id); ok {
			p.w.remove(it.id)
			return s, true
		}
	}
	return stream.Slice{}, false
}

// peek returns the live minimum-byte-value slice without removing it,
// discarding stale heap entries along the way.
//
//smoothvet:noalloc
func (p *greedy) peek() (stream.Slice, bool) {
	for len(p.h) > 0 {
		if s, ok := p.w.get(p.h[0].id); ok {
			return s, true
		}
		p.h.pop()
	}
	return stream.Slice{}, false
}

func (p *greedy) Len() int { return p.w.len() }

//smoothvet:noalloc
func (p *greedy) Reset() {
	p.h = p.h[:0]
	p.w.reset()
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

// random drops a uniformly random droppable slice, using a swap-delete
// vector plus the window's aux payload as the id->position index.
type random struct {
	rng  *rand.Rand
	seed int64
	name string
	ids  []int
	w    window
}

// NewRandom returns a policy that discards a uniformly random droppable
// slice, driven by a deterministic source seeded with seed.
func NewRandom(seed int64) Policy {
	p := randomPool.Get().(*random)
	p.setSeed(seed)
	p.Reset()
	return p
}

// Random returns a Factory producing NewRandom(seed) policies.
func Random(seed int64) Factory {
	return func() Policy { return NewRandom(seed) }
}

// setSeed (re)parameterizes a pooled instance, rebuilding the cached name
// only when the seed actually changed.
func (p *random) setSeed(seed int64) {
	if p.name == "" || p.seed != seed {
		p.name = fmt.Sprintf("random(seed=%d)", seed)
	}
	p.seed = seed
}

func (p *random) Name() string { return p.name }

//smoothvet:noalloc
func (p *random) Add(s stream.Slice) {
	if _, ok := p.w.get(s.ID); ok {
		return
	}
	p.w.add(s)
	p.w.setAux(s.ID, int32(len(p.ids)))
	p.ids = append(p.ids, s.ID)
}

//smoothvet:noalloc
func (p *random) Remove(id int) {
	aux, ok := p.w.auxOf(id)
	if !ok {
		return
	}
	i, last := int(aux), len(p.ids)-1
	p.ids[i] = p.ids[last]
	p.w.setAux(p.ids[i], aux)
	p.ids = p.ids[:last]
	p.w.remove(id)
}

//smoothvet:noalloc
func (p *random) Victim() (stream.Slice, bool) {
	if len(p.ids) == 0 {
		return stream.Slice{}, false
	}
	id := p.ids[p.rng.Intn(len(p.ids))]
	s, _ := p.w.get(id)
	p.Remove(id)
	return s, true
}

func (p *random) Len() int { return len(p.ids) }

//smoothvet:noalloc
func (p *random) Reset() {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.seed))
	} else {
		// Reseeding restores exactly the state of a fresh source without
		// reallocating it (rand.NewSource seeds the same way).
		p.rng.Seed(p.seed)
	}
	p.ids = p.ids[:0]
	p.w.reset()
}
