// Package drop implements the slice-discard policies used by the server of
// the generic smoothing algorithm. The generic algorithm (Section 3 of the
// paper) intentionally under-specifies which slices to drop on overflow;
// this package supplies the choices studied in the paper:
//
//   - TailDrop: discard the most recently arrived slices first ("slices from
//     frame i are discarded" on an overflow at time i) — the FIFO/Tail-Drop
//     baseline of Section 5;
//   - Greedy: discard the slices with the lowest byte value w(s)/|s| first —
//     the 4-competitive algorithm of Section 4.1;
//   - HeadDrop: discard the oldest droppable slices first;
//   - Random: discard uniformly random droppable slices (deterministic seed).
//
// A policy tracks the set of "droppable" slices currently in the server
// buffer: slices that have not yet started transmission (no preemption) and
// have not been dropped. The simulator notifies the policy as slices enter
// the buffer, start transmission, or finish; when an overflow occurs it
// repeatedly asks for a victim until the buffer fits.
package drop

import (
	"fmt"
	"math/rand"

	"repro/internal/stream"
)

// Policy selects victims on server-buffer overflow. Implementations keep an
// internal index of droppable slices; all methods are called from a single
// goroutine by the simulator.
type Policy interface {
	// Name returns a short human-readable policy name.
	Name() string
	// Add registers a slice that has entered the server buffer and is
	// droppable.
	Add(s stream.Slice)
	// Remove unregisters a slice that left the droppable set without
	// being chosen as a victim: it either started transmission or was
	// fully sent within the step it arrived. Removing an unknown or
	// already-removed ID is a no-op.
	Remove(id int)
	// Victim removes and returns the next slice to drop. ok is false if
	// no droppable slice remains.
	Victim() (s stream.Slice, ok bool)
	// Len returns the number of droppable slices currently registered.
	Len() int
	// Reset clears all state so the policy can be reused for a new run.
	Reset()
}

// Factory builds a fresh Policy instance. Simulations take a Factory so
// that concurrent or repeated runs never share mutable policy state.
type Factory func() Policy

// lazySet tracks membership with O(1) removal for the lazy-deletion
// structures below.
type lazySet struct {
	present map[int]stream.Slice
}

func newLazySet() lazySet { return lazySet{present: make(map[int]stream.Slice)} }

func (l *lazySet) add(s stream.Slice) { l.present[s.ID] = s }
func (l *lazySet) remove(id int)      { delete(l.present, id) }
func (l *lazySet) len() int           { return len(l.present) }

// reset clears the map in place rather than reallocating: policies are
// Reset once per simulation in the sweep hot path, and the runtime reuses
// the map's buckets, so repeated runs stop churning the allocator.
func (l *lazySet) reset() { clear(l.present) }
func (l *lazySet) get(id int) (stream.Slice, bool) {
	s, ok := l.present[id]
	return s, ok
}

// ---------------------------------------------------------------------------
// TailDrop
// ---------------------------------------------------------------------------

// tailDrop drops the newest slice first. Because the simulator adds slices
// in arrival order, a stack with lazy deletion gives O(1) amortized victims.
type tailDrop struct {
	stack []int
	set   lazySet
}

// NewTailDrop returns a policy that discards the most recently arrived
// droppable slice first.
func NewTailDrop() Policy { return &tailDrop{set: newLazySet()} }

// TailDrop is the Factory for NewTailDrop.
func TailDrop() Policy { return NewTailDrop() }

func (p *tailDrop) Name() string { return "taildrop" }

func (p *tailDrop) Add(s stream.Slice) {
	p.set.add(s)
	p.stack = append(p.stack, s.ID)
}

func (p *tailDrop) Remove(id int) { p.set.remove(id) }

func (p *tailDrop) Victim() (stream.Slice, bool) {
	for len(p.stack) > 0 {
		id := p.stack[len(p.stack)-1]
		p.stack = p.stack[:len(p.stack)-1]
		if s, ok := p.set.get(id); ok {
			p.set.remove(id)
			return s, true
		}
	}
	return stream.Slice{}, false
}

func (p *tailDrop) Len() int { return p.set.len() }

func (p *tailDrop) Reset() {
	p.stack = p.stack[:0]
	p.set.reset()
}

// ---------------------------------------------------------------------------
// HeadDrop
// ---------------------------------------------------------------------------

// headDrop drops the oldest droppable slice first, using a FIFO queue with
// lazy deletion.
type headDrop struct {
	queue []int
	head  int
	set   lazySet
}

// NewHeadDrop returns a policy that discards the oldest droppable slice
// first (drop-from-front).
func NewHeadDrop() Policy { return &headDrop{set: newLazySet()} }

// HeadDrop is the Factory for NewHeadDrop.
func HeadDrop() Policy { return NewHeadDrop() }

func (p *headDrop) Name() string { return "headdrop" }

func (p *headDrop) Add(s stream.Slice) {
	p.set.add(s)
	p.queue = append(p.queue, s.ID)
}

func (p *headDrop) Remove(id int) { p.set.remove(id) }

func (p *headDrop) Victim() (stream.Slice, bool) {
	for p.head < len(p.queue) {
		id := p.queue[p.head]
		p.head++
		if p.head > len(p.queue)/2 && p.head > 64 {
			// Compact to keep memory bounded on long runs.
			p.queue = append(p.queue[:0], p.queue[p.head:]...)
			p.head = 0
		}
		if s, ok := p.set.get(id); ok {
			p.set.remove(id)
			return s, true
		}
	}
	return stream.Slice{}, false
}

func (p *headDrop) Len() int { return p.set.len() }

func (p *headDrop) Reset() {
	p.queue = p.queue[:0]
	p.head = 0
	p.set.reset()
}

// ---------------------------------------------------------------------------
// Greedy
// ---------------------------------------------------------------------------

// greedyItem orders the min-heap behind the greedy policy: lowest byte value
// first; ties are broken toward the newest slice (largest ID), matching the
// tail-drop intuition that newer data has had less invested in it. The paper
// allows arbitrary tie-breaking.
type greedyItem struct {
	id        int
	byteValue float64
}

// greedyHeap is a hand-rolled min-heap rather than a container/heap
// implementation: heap.Push/Pop box every greedyItem into an interface,
// which costs one allocation per operation in the simulator's hot path.
// The direct methods below are allocation-free, and push reuses the
// backing array truncated by pop and Reset.
type greedyHeap []greedyItem

func (h greedyHeap) less(i, j int) bool {
	if h[i].byteValue != h[j].byteValue {
		return h[i].byteValue < h[j].byteValue
	}
	return h[i].id > h[j].id
}

// push inserts an item and restores the heap invariant (sift-up).
func (h *greedyHeap) push(it greedyItem) {
	*h = append(*h, it)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum item (sift-down). The backing array
// is retained for reuse.
func (h *greedyHeap) pop() greedyItem {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s = s[:n]
	*h = s
	for i := 0; ; {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && s.less(left, smallest) {
			smallest = left
		}
		if right < n && s.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// greedy drops the slice with the lowest byte value w(s)/|s| first
// (Section 4.1), via a min-heap with lazy deletion.
type greedy struct {
	h   greedyHeap
	set lazySet
}

// NewGreedy returns the greedy policy of Section 4.1: on overflow, discard
// the droppable slice with the lowest byte value.
func NewGreedy() Policy { return &greedy{set: newLazySet()} }

// Greedy is the Factory for NewGreedy.
func Greedy() Policy { return NewGreedy() }

func (p *greedy) Name() string { return "greedy" }

func (p *greedy) Add(s stream.Slice) {
	p.set.add(s)
	p.h.push(greedyItem{id: s.ID, byteValue: s.ByteValue()})
}

func (p *greedy) Remove(id int) { p.set.remove(id) }

func (p *greedy) Victim() (stream.Slice, bool) {
	for len(p.h) > 0 {
		it := p.h.pop()
		if s, ok := p.set.get(it.id); ok {
			p.set.remove(it.id)
			return s, true
		}
	}
	return stream.Slice{}, false
}

// peek returns the live minimum-byte-value slice without removing it,
// discarding stale heap entries along the way.
func (p *greedy) peek() (stream.Slice, bool) {
	for len(p.h) > 0 {
		if s, ok := p.set.get(p.h[0].id); ok {
			return s, true
		}
		p.h.pop()
	}
	return stream.Slice{}, false
}

func (p *greedy) Len() int { return p.set.len() }

func (p *greedy) Reset() {
	p.h = p.h[:0]
	p.set.reset()
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

// random drops a uniformly random droppable slice, using a swap-delete
// vector plus an id->position index for O(1) operations.
type random struct {
	rng  *rand.Rand
	seed int64
	ids  []int
	pos  map[int]int
	all  map[int]stream.Slice
}

// NewRandom returns a policy that discards a uniformly random droppable
// slice, driven by a deterministic source seeded with seed.
func NewRandom(seed int64) Policy {
	return &random{
		rng:  rand.New(rand.NewSource(seed)),
		seed: seed,
		pos:  make(map[int]int),
		all:  make(map[int]stream.Slice),
	}
}

// Random returns a Factory producing NewRandom(seed) policies.
func Random(seed int64) Factory {
	return func() Policy { return NewRandom(seed) }
}

func (p *random) Name() string { return fmt.Sprintf("random(seed=%d)", p.seed) }

func (p *random) Add(s stream.Slice) {
	if _, ok := p.pos[s.ID]; ok {
		return
	}
	p.pos[s.ID] = len(p.ids)
	p.ids = append(p.ids, s.ID)
	p.all[s.ID] = s
}

func (p *random) Remove(id int) {
	i, ok := p.pos[id]
	if !ok {
		return
	}
	last := len(p.ids) - 1
	p.ids[i] = p.ids[last]
	p.pos[p.ids[i]] = i
	p.ids = p.ids[:last]
	delete(p.pos, id)
	delete(p.all, id)
}

func (p *random) Victim() (stream.Slice, bool) {
	if len(p.ids) == 0 {
		return stream.Slice{}, false
	}
	id := p.ids[p.rng.Intn(len(p.ids))]
	s := p.all[id]
	p.Remove(id)
	return s, true
}

func (p *random) Len() int { return len(p.ids) }

func (p *random) Reset() {
	p.rng = rand.New(rand.NewSource(p.seed))
	p.ids = p.ids[:0]
	clear(p.pos)
	clear(p.all)
}
