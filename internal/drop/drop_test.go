package drop

import (
	"testing"

	"repro/internal/stream"
)

func slice(id, arrival, size int, weight float64) stream.Slice {
	return stream.Slice{ID: id, Arrival: arrival, Size: size, Weight: weight}
}

// drain pulls victims until exhaustion and returns their IDs in order.
func drain(p Policy) []int {
	var ids []int
	for {
		s, ok := p.Victim()
		if !ok {
			return ids
		}
		ids = append(ids, s.ID)
	}
}

func TestTailDropOrder(t *testing.T) {
	p := NewTailDrop()
	p.Add(slice(0, 0, 1, 1))
	p.Add(slice(1, 1, 1, 1))
	p.Add(slice(2, 2, 1, 1))
	got := drain(p)
	want := []int{2, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("taildrop order = %v, want %v", got, want)
		}
	}
}

func TestHeadDropOrder(t *testing.T) {
	p := NewHeadDrop()
	for i := 0; i < 5; i++ {
		p.Add(slice(i, i, 1, 1))
	}
	got := drain(p)
	for i, id := range got {
		if id != i {
			t.Fatalf("headdrop order = %v, want ascending", got)
		}
	}
}

func TestGreedyOrderByByteValue(t *testing.T) {
	p := NewGreedy()
	p.Add(slice(0, 0, 2, 8)) // byte value 4
	p.Add(slice(1, 0, 1, 1)) // byte value 1
	p.Add(slice(2, 0, 4, 8)) // byte value 2
	got := drain(p)
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("greedy order = %v, want %v", got, want)
		}
	}
}

func TestGreedyTieBreaksToNewest(t *testing.T) {
	p := NewGreedy()
	p.Add(slice(3, 0, 1, 5))
	p.Add(slice(7, 1, 1, 5))
	if s, _ := p.Victim(); s.ID != 7 {
		t.Errorf("greedy tie victim = %d, want 7 (newest)", s.ID)
	}
}

func TestRemovePreventsVictim(t *testing.T) {
	policies := map[string]Policy{
		"taildrop": NewTailDrop(),
		"headdrop": NewHeadDrop(),
		"greedy":   NewGreedy(),
		"random":   NewRandom(1),
	}
	for name, p := range policies {
		t.Run(name, func(t *testing.T) {
			p.Add(slice(0, 0, 1, 1))
			p.Add(slice(1, 0, 1, 2))
			p.Remove(1)
			if p.Len() != 1 {
				t.Errorf("Len = %d after remove, want 1", p.Len())
			}
			s, ok := p.Victim()
			if !ok || s.ID != 0 {
				t.Errorf("victim = %v/%v, want slice 0", s.ID, ok)
			}
			if _, ok := p.Victim(); ok {
				t.Error("victim available after all removed")
			}
		})
	}
}

func TestRemoveUnknownIsNoop(t *testing.T) {
	for _, p := range []Policy{NewTailDrop(), NewHeadDrop(), NewGreedy(), NewRandom(1)} {
		p.Remove(42)
		p.Add(slice(1, 0, 1, 1))
		p.Remove(99)
		if p.Len() != 1 {
			t.Errorf("%s: Len = %d, want 1", p.Name(), p.Len())
		}
	}
}

func TestVictimOnEmpty(t *testing.T) {
	for _, p := range []Policy{NewTailDrop(), NewHeadDrop(), NewGreedy(), NewRandom(1)} {
		if _, ok := p.Victim(); ok {
			t.Errorf("%s: victim from empty policy", p.Name())
		}
	}
}

func TestReset(t *testing.T) {
	for _, p := range []Policy{NewTailDrop(), NewHeadDrop(), NewGreedy(), NewRandom(1)} {
		p.Add(slice(0, 0, 1, 1))
		p.Reset()
		if p.Len() != 0 {
			t.Errorf("%s: Len = %d after reset", p.Name(), p.Len())
		}
		if _, ok := p.Victim(); ok {
			t.Errorf("%s: victim after reset", p.Name())
		}
		// Reusable after reset.
		p.Add(slice(5, 0, 1, 1))
		if s, ok := p.Victim(); !ok || s.ID != 5 {
			t.Errorf("%s: not reusable after reset", p.Name())
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	run := func() []int {
		p := NewRandom(42)
		for i := 0; i < 10; i++ {
			p.Add(slice(i, i, 1, 1))
		}
		return drain(p)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("random policy not deterministic: %v vs %v", a, b)
		}
	}
}

func TestRandomCoversAll(t *testing.T) {
	p := NewRandom(7)
	for i := 0; i < 20; i++ {
		p.Add(slice(i, i, 1, 1))
	}
	got := drain(p)
	if len(got) != 20 {
		t.Fatalf("random drained %d victims, want 20", len(got))
	}
	seen := make(map[int]bool)
	for _, id := range got {
		if seen[id] {
			t.Fatalf("random returned %d twice", id)
		}
		seen[id] = true
	}
}

func TestRandomDoubleAddIgnored(t *testing.T) {
	p := NewRandom(1)
	p.Add(slice(0, 0, 1, 1))
	p.Add(slice(0, 0, 1, 1))
	if p.Len() != 1 {
		t.Errorf("Len = %d after double add, want 1", p.Len())
	}
}

func TestHeadDropCompaction(t *testing.T) {
	// Exercise the compaction path: add and drain many slices.
	p := NewHeadDrop()
	for i := 0; i < 500; i++ {
		p.Add(slice(i, i, 1, 1))
	}
	for i := 0; i < 300; i++ {
		s, ok := p.Victim()
		if !ok || s.ID != i {
			t.Fatalf("victim %d = %v/%v", i, s.ID, ok)
		}
	}
	for i := 500; i < 600; i++ {
		p.Add(slice(i, i, 1, 1))
	}
	prev := -1
	for {
		s, ok := p.Victim()
		if !ok {
			break
		}
		if s.ID <= prev {
			t.Fatalf("headdrop order violated after compaction: %d after %d", s.ID, prev)
		}
		prev = s.ID
	}
	if p.Len() != 0 {
		t.Errorf("Len = %d after full drain", p.Len())
	}
}

func TestFactories(t *testing.T) {
	// Factories must return independent instances.
	f := Random(3)
	a, b := f(), f()
	a.Add(slice(0, 0, 1, 1))
	if b.Len() != 0 {
		t.Error("factory instances share state")
	}
	if TailDrop().Name() != "taildrop" || HeadDrop().Name() != "headdrop" || Greedy().Name() != "greedy" {
		t.Error("unexpected policy names")
	}
}

func TestAnticipateActsAsGreedyOnOverflow(t *testing.T) {
	p := NewAnticipate(1.0, 0) // threshold 1: never proactive
	p.Add(slice(0, 0, 2, 8))
	p.Add(slice(1, 0, 1, 1))
	p.Add(slice(2, 0, 4, 8))
	got := drain(p)
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("anticipate greedy order = %v, want %v", got, want)
		}
	}
}

func TestAnticipateEarlyVictim(t *testing.T) {
	p := NewAnticipate(0.5, 3).(EarlyDropper)
	p.Add(slice(0, 0, 2, 2))  // byte value 1: below floor
	p.Add(slice(1, 0, 2, 10)) // byte value 5: above floor
	// Occupancy 4 of capacity 10: below half — no early drop.
	if _, ok := p.EarlyVictim(4, 10); ok {
		t.Error("early victim below threshold")
	}
	// Occupancy 8 of 10: above half — shed the low-value slice only.
	s, ok := p.EarlyVictim(8, 10)
	if !ok || s.ID != 0 {
		t.Fatalf("early victim = %v/%v, want slice 0", s.ID, ok)
	}
	if _, ok := p.EarlyVictim(8, 10); ok {
		t.Error("early victim above the value floor was shed")
	}
	// The remaining slice is still droppable on real overflow.
	if s, ok := p.Victim(); !ok || s.ID != 1 {
		t.Errorf("overflow victim = %v/%v, want slice 1", s.ID, ok)
	}
}

func TestAnticipateNoFloorShedsAnything(t *testing.T) {
	p := NewAnticipate(0, 0).(EarlyDropper)
	p.Add(slice(0, 0, 1, 100))
	if s, ok := p.EarlyVictim(1, 10); !ok || s.ID != 0 {
		t.Errorf("floorless anticipate refused to shed: %v/%v", s.ID, ok)
	}
	if _, ok := p.EarlyVictim(0, 10); ok {
		t.Error("early victim from empty occupancy 0... policy should be empty")
	}
}

func TestAnticipateThresholdClamped(t *testing.T) {
	// Out-of-range thresholds are clamped rather than rejected.
	for _, th := range []float64{-1, 2} {
		p := NewAnticipate(th, 0)
		p.Add(slice(0, 0, 1, 1))
		if p.Len() != 1 {
			t.Errorf("threshold %v: policy unusable", th)
		}
	}
}

func TestAnticipatePeekSkipsStale(t *testing.T) {
	p := NewAnticipate(0, 0).(EarlyDropper)
	p.Add(slice(0, 0, 1, 1))
	p.Add(slice(1, 0, 1, 2))
	p.Remove(0) // stale heap top
	s, ok := p.EarlyVictim(5, 10)
	if !ok || s.ID != 1 {
		t.Errorf("early victim = %v/%v, want live slice 1", s.ID, ok)
	}
}

func TestRandomMixDeterministicPerSeed(t *testing.T) {
	runOnce := func() []int {
		p := NewRandomMix(5, 0.5)
		for i := 0; i < 12; i++ {
			p.Add(slice(i, i, 1, float64(i%4+1)))
		}
		return drain(p)
	}
	a, b := runOnce(), runOnce()
	if len(a) != 12 || len(b) != 12 {
		t.Fatalf("drain lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("randommix not deterministic per seed: %v vs %v", a, b)
		}
	}
}

func TestRandomMixExtremes(t *testing.T) {
	// p=0 behaves exactly like greedy.
	g := NewGreedy()
	m := NewRandomMix(1, 0)
	for i, w := range []float64{5, 1, 9, 7} {
		g.Add(slice(i, 0, 1, w))
		m.Add(slice(i, 0, 1, w))
	}
	got, want := drain(m), drain(g)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("p=0 mix diverged from greedy: %v vs %v", got, want)
		}
	}
	// p=1 drains everything (uniform choice) without duplicates.
	m = NewRandomMix(2, 1)
	for i := 0; i < 8; i++ {
		m.Add(slice(i, 0, 1, 1))
	}
	seen := map[int]bool{}
	for _, id := range drain(m) {
		if seen[id] {
			t.Fatalf("duplicate victim %d", id)
		}
		seen[id] = true
	}
	if len(seen) != 8 {
		t.Fatalf("drained %d of 8", len(seen))
	}
}

func TestRandomMixBothIndexesConsistent(t *testing.T) {
	p := NewRandomMix(3, 0.5)
	p.Add(slice(0, 0, 1, 1))
	p.Add(slice(1, 0, 1, 2))
	p.Remove(0)
	if p.Len() != 1 {
		t.Errorf("Len = %d after remove", p.Len())
	}
	s, ok := p.Victim()
	if !ok || s.ID != 1 {
		t.Errorf("victim = %v/%v", s.ID, ok)
	}
	if _, ok := p.Victim(); ok {
		t.Error("victim from empty mix")
	}
	p.Reset()
	p.Add(slice(7, 0, 1, 1))
	if s, ok := p.Victim(); !ok || s.ID != 7 {
		t.Error("mix unusable after reset")
	}
}

func TestRandomMixClampsProbability(t *testing.T) {
	for _, pr := range []float64{-0.5, 1.5} {
		p := NewRandomMix(1, pr)
		p.Add(slice(0, 0, 1, 1))
		if _, ok := p.Victim(); !ok {
			t.Errorf("p=%v: unusable", pr)
		}
	}
}

func TestExtraFactoriesAndNames(t *testing.T) {
	if Anticipate(0.5, 1)().Name() != "anticipate" {
		t.Error("anticipate factory/name wrong")
	}
	if RandomMix(1, 0.5)().Name() != "randommix" {
		t.Error("randommix factory/name wrong")
	}
	if NewRandom(9).Name() == "" {
		t.Error("random name empty")
	}
	// Factory instances are independent.
	f := Anticipate(0.5, 1)
	a, b := f(), f()
	a.Add(slice(0, 0, 1, 1))
	if b.Len() != 0 {
		t.Error("anticipate factory shares state")
	}
}
