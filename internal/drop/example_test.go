package drop_test

import (
	"fmt"

	"repro/internal/drop"
	"repro/internal/stream"
)

// Example shows the greedy policy's victim order: lowest value per byte
// goes first, regardless of size or arrival order.
func Example() {
	p := drop.NewGreedy()
	p.Add(stream.Slice{ID: 0, Size: 120, Weight: 1440}) // I frame, 12/byte
	p.Add(stream.Slice{ID: 1, Size: 23, Weight: 23})    // B frame, 1/byte
	p.Add(stream.Slice{ID: 2, Size: 55, Weight: 440})   // P frame, 8/byte

	for {
		victim, ok := p.Victim()
		if !ok {
			break
		}
		fmt.Printf("drop slice %d (%.0f per byte)\n", victim.ID, victim.ByteValue())
	}
	// Output:
	// drop slice 1 (1 per byte)
	// drop slice 2 (8 per byte)
	// drop slice 0 (12 per byte)
}

// ExamplePolicy_noPreemption shows how the simulator marks a slice
// undroppable once its transmission starts.
func ExamplePolicy_noPreemption() {
	p := drop.NewTailDrop()
	p.Add(stream.Slice{ID: 0, Size: 4, Weight: 4})
	p.Add(stream.Slice{ID: 1, Size: 4, Weight: 4})

	p.Remove(1) // slice 1 commenced transmission: no longer droppable
	victim, _ := p.Victim()
	fmt.Printf("victim: slice %d\n", victim.ID)
	_, ok := p.Victim()
	fmt.Printf("more victims: %v\n", ok)
	// Output:
	// victim: slice 0
	// more victims: false
}
