package drop

import (
	"fmt"

	"repro/internal/stream"
)

// window is the dense membership index shared by the drop policies: a
// ring-buffer-like view over a contiguous range of slice IDs backed by one
// flat array, replacing the hash maps the policies used originally.
//
// It exploits the structure the simulator guarantees (stream.Slice IDs are
// assigned densely in arrival order, and the server registers slices in
// exactly that order): Add is only ever called with an ID at least as large
// as every ID added before, so membership is a monotone window [base+head,
// base+len(entries)) and entry lookup is plain subtraction — no hashing, no
// per-Add map growth, O(1) everything.
//
// The window self-compacts: removals advance head past dead entries, and
// once the dead prefix dominates, the live suffix is copied down and base
// advances. Memory is therefore proportional to the ID span of the live
// droppable set (roughly the server buffer), not to the whole stream, and
// the backing array is retained across Reset for allocation-free reuse.
type window struct {
	base    int // slice ID of entries[0]
	head    int // index of the first live (present) entry; == len(entries) when empty
	n       int // number of present entries
	entries []windowEntry
}

// windowEntry is one slot of the window. aux carries per-policy payload
// (the random policy stores the slice's position in its shuffle vector);
// policies that do not need it leave it zero.
type windowEntry struct {
	s       stream.Slice
	aux     int32
	present bool
}

// add registers a slice. IDs must be monotone: s.ID must be >= base+head
// (the simulator adds slices in ID order, so this always holds; violating
// it indicates a driver bug and panics rather than corrupting the index).
//
//smoothvet:noalloc
func (w *window) add(s stream.Slice) {
	if w.n == 0 {
		// Empty window: rebase at the new ID so long-dead prefixes from
		// earlier in the run cost neither memory nor scan time.
		w.base = s.ID
		w.head = 0
		w.entries = w.entries[:0]
	}
	idx := s.ID - w.base
	switch {
	case idx < w.head:
		panicNonMonotone(s.ID, w.base+w.head)
	case idx < len(w.entries):
		// Re-add inside the window (idempotent, mirroring the map's put).
		e := &w.entries[idx]
		if !e.present {
			w.n++
		}
		e.s = s
		e.present = true
		return
	}
	// Gap IDs (slices that never became droppable) get dead placeholders.
	for len(w.entries) < idx {
		w.entries = append(w.entries, windowEntry{})
	}
	w.entries = append(w.entries, windowEntry{s: s, present: true})
	w.n++
}

// remove unregisters an ID; unknown or already-removed IDs are no-ops.
//
//smoothvet:noalloc
func (w *window) remove(id int) {
	idx := id - w.base
	if idx < w.head || idx >= len(w.entries) || !w.entries[idx].present {
		return
	}
	w.entries[idx].present = false
	w.n--
	w.advance()
}

// advance moves head past dead entries and compacts the backing array when
// the dead prefix dominates, keeping memory bounded on long runs.
//
//smoothvet:noalloc
func (w *window) advance() {
	for w.head < len(w.entries) && !w.entries[w.head].present {
		w.head++
	}
	if w.head > 64 && w.head > len(w.entries)/2 {
		live := w.entries[w.head:]
		copy(w.entries, live)
		w.entries = w.entries[:len(live)]
		w.base += w.head
		w.head = 0
	}
}

// get returns the slice registered under id.
//
//smoothvet:noalloc
func (w *window) get(id int) (stream.Slice, bool) {
	idx := id - w.base
	if idx < w.head || idx >= len(w.entries) || !w.entries[idx].present {
		return stream.Slice{}, false
	}
	return w.entries[idx].s, true
}

// first returns the present slice with the smallest ID. After advance, that
// is exactly the head entry — the oldest droppable slice, by construction.
//
//smoothvet:noalloc
func (w *window) first() (stream.Slice, bool) {
	if w.n == 0 {
		return stream.Slice{}, false
	}
	return w.entries[w.head].s, true
}

// aux returns the auxiliary payload stored for id.
//
//smoothvet:noalloc
func (w *window) auxOf(id int) (int32, bool) {
	idx := id - w.base
	if idx < w.head || idx >= len(w.entries) || !w.entries[idx].present {
		return 0, false
	}
	return w.entries[idx].aux, true
}

// setAux stores the auxiliary payload for a present id.
//
//smoothvet:noalloc
func (w *window) setAux(id int, v int32) {
	idx := id - w.base
	if idx < w.head || idx >= len(w.entries) || !w.entries[idx].present {
		return
	}
	w.entries[idx].aux = v
}

// len returns the number of present entries.
func (w *window) len() int { return w.n }

// reset empties the window, retaining the backing array for reuse.
//
//smoothvet:noalloc
func (w *window) reset() {
	w.base = 0
	w.head = 0
	w.n = 0
	w.entries = w.entries[:0]
}

// panicNonMonotone is split out of add so the formatted message's boxing
// stays off the annotated hot path.
func panicNonMonotone(id, start int) {
	panic(fmt.Sprintf("drop: non-monotone slice ID %d added below window start %d", id, start))
}
