package drop

import (
	"repro/internal/stream"
)

// EarlyDropper is an optional extension of Policy. The paper's generic
// algorithm only discards on overflow; Section 6 raises "more pro-active
// algorithms for overflows" as an open problem. A policy implementing
// EarlyDropper is additionally consulted by the server at the start of
// every step, before transmission admits a new slice to the (unpreemptable)
// head of the queue.
//
// Why proactivity can help at all: dropping early can never improve which
// *set* of slices fits the buffer (the overflow-time greedy choice already
// keeps the most valuable fit), but it can prevent a low-value slice from
// reaching the head and *starting transmission* — after which the
// no-preemption rule protects it even when far more valuable data arrives
// one step later, wasting link capacity on cheap bytes.
type EarlyDropper interface {
	Policy
	// EarlyVictim may return a slice to discard proactively given the
	// current occupancy and capacity. It is called repeatedly until
	// ok == false. The returned slice must currently be droppable; the
	// policy must unregister it, exactly like Victim.
	EarlyVictim(occupancy, capacity int) (s stream.Slice, ok bool)
}

// anticipate wraps the greedy policy with a threshold rule: whenever the
// buffer is more than threshold-full, slices whose byte value is below
// valueFloor are discarded proactively (lowest first), before they can
// commence transmission.
type anticipate struct {
	*greedy
	threshold  float64
	valueFloor float64
}

// NewAnticipate returns a proactive greedy policy: on overflow it behaves
// exactly like NewGreedy; additionally, while occupancy exceeds
// threshold*capacity, it sheds droppable slices with byte value below
// valueFloor, lowest value first.
//
// threshold is clamped to [0, 1]. valueFloor <= 0 disables the value
// filter (any lowest-value slice may be shed early).
func NewAnticipate(threshold, valueFloor float64) Policy {
	if threshold < 0 {
		threshold = 0
	}
	if threshold > 1 {
		threshold = 1
	}
	p := anticipatePool.Get().(*anticipate)
	if p.greedy == nil {
		p.greedy = NewGreedy().(*greedy)
	} else {
		p.greedy.Reset()
	}
	p.threshold = threshold
	p.valueFloor = valueFloor
	return p
}

// Anticipate returns a Factory for NewAnticipate.
func Anticipate(threshold, valueFloor float64) Factory {
	return func() Policy { return NewAnticipate(threshold, valueFloor) }
}

func (p *anticipate) Name() string { return "anticipate" }

// randomMix randomizes between the greedy victim and a uniformly random
// one. Theorem 4.8's 1.2287 lower bound holds only for DETERMINISTIC
// online algorithms; a randomized policy denies the adversary knowledge of
// when the last low-value slice departs, so against an oblivious adversary
// its expected competitive ratio can differ from any deterministic
// policy's. The "onlinelb" experiment measures exactly that.
type randomMix struct {
	g    *greedy
	r    *random
	rng  *randSource
	prob float64
}

// randSource wraps math/rand for the mix coin to keep determinism per seed.
type randSource struct{ f func() float64 }

// NewRandomMix returns a policy that, on each overflow victim decision,
// picks a uniformly random droppable slice with probability p and the
// greedy (lowest byte value) one otherwise. Deterministic per seed.
func NewRandomMix(seed int64, p float64) Policy {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	m := randomMixPool.Get().(*randomMix)
	if m.g == nil {
		m.g = NewGreedy().(*greedy)
	} else {
		m.g.Reset()
	}
	if m.r == nil {
		m.r = NewRandom(seed).(*random)
	} else {
		m.r.setSeed(seed)
		m.r.Reset()
	}
	if m.rng == nil {
		m.rng = &randSource{}
	}
	m.rng.f = m.r.rng.Float64
	m.prob = p
	return m
}

// RandomMix returns a Factory for NewRandomMix.
func RandomMix(seed int64, p float64) Factory {
	return func() Policy { return NewRandomMix(seed, p) }
}

func (p *randomMix) Name() string { return "randommix" }

func (p *randomMix) Add(s stream.Slice) {
	p.g.Add(s)
	p.r.Add(s)
}

func (p *randomMix) Remove(id int) {
	p.g.Remove(id)
	p.r.Remove(id)
}

func (p *randomMix) Victim() (stream.Slice, bool) {
	var s stream.Slice
	var ok bool
	if p.rng.f() < p.prob {
		s, ok = p.r.Victim()
		if ok {
			p.g.Remove(s.ID)
		}
		return s, ok
	}
	s, ok = p.g.Victim()
	if ok {
		p.r.Remove(s.ID)
	}
	return s, ok
}

func (p *randomMix) Len() int { return p.g.Len() }

func (p *randomMix) Reset() {
	p.g.Reset()
	p.r.Reset()
	p.rng.f = p.r.rng.Float64
}

func (p *anticipate) EarlyVictim(occupancy, capacity int) (stream.Slice, bool) {
	if float64(occupancy) <= p.threshold*float64(capacity) {
		return stream.Slice{}, false
	}
	// Peek at the cheapest droppable slice; only shed it if it is below
	// the value floor (when a floor is configured).
	s, ok := p.peek()
	if !ok {
		return stream.Slice{}, false
	}
	if p.valueFloor > 0 && s.ByteValue() >= p.valueFloor {
		return stream.Slice{}, false
	}
	return p.Victim()
}
