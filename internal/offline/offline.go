// Package offline computes exact optimal offline smoothing schedules, used
// as the "Optimal" baseline in the paper's Section 5 experiments and as the
// denominator of every competitive ratio in Section 4.
//
// # Model
//
// Following Section 4 of the paper, the offline problem is posed at the
// server: a FIFO buffer of capacity B drained at R bytes per step. With the
// B = R·D law and a client buffer of B, a slice accepted by the server is
// guaranteed to be played on time (Lemmas 3.3 and 3.4), so the server-side
// optimum is the system optimum.
//
// Two reductions make the problem tractable, both without loss of
// generality among real-time schedules:
//
//  1. drop-at-arrival: accepting a slice and discarding it later only
//     raises interim buffer occupancy, so an optimal schedule rejects
//     unwanted slices on arrival;
//  2. work conservation: transmitting as early as possible (FIFO) only
//     frees space earlier.
//
// A schedule is then determined by its accepted set S, and S is feasible
// if and only if the Lindley occupancy recursion
//
//	occ(t) = max(0, occ(t-1) + acc_S(t) - R) stays <= B,
//
// equivalently (by unfolding the recursion) iff for every interval
// [t1, t2]:  bytes of S arriving in [t1, t2] <= R·(t2-t1+1) + B.
//
// # Algorithms
//
//   - BruteForce enumerates accepted sets; exponential, the test oracle.
//   - OptimalUnit handles unit-size slices: the feasible sets form a
//     matroid (for B = R·D they are the transversal matroid of unit jobs
//     with windows [a, a+D] on R machines), so greedy-by-weight with an
//     exact independence test is optimal. The test uses a segment tree
//     over the interval constraints and runs in O(log T) per slice.
//   - OptimalFrames handles atomic variable-size slices by dynamic
//     programming over (time, occupancy); exact in O(n·(B+R)) time.
package offline

import (
	"fmt"

	"repro/internal/stream"
)

// Result describes an optimal accepted set.
type Result struct {
	// Benefit is the total weight of accepted slices.
	Benefit float64
	// Bytes is the total size of accepted slices.
	Bytes int
	// Accepted[id] reports whether slice id is accepted.
	Accepted []bool
}

// AcceptedIDs returns the accepted slice IDs in increasing order.
func (r *Result) AcceptedIDs() []int {
	var ids []int
	for id, ok := range r.Accepted {
		if ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// Feasible reports whether the accepted set (given as a predicate over
// slice IDs) can be scheduled through a server buffer of capacity B drained
// at rate R: it runs the Lindley occupancy recursion and checks occ <= B at
// every step. Slices larger than B are infeasible on their own.
func Feasible(st *stream.Stream, accepted func(id int) bool, B, R int) bool {
	if B <= 0 || R <= 0 {
		return false
	}
	occ := 0
	for t := 0; t <= st.Horizon(); t++ {
		for _, sl := range st.ArrivalsAt(t) {
			if accepted(sl.ID) {
				if sl.Size > B {
					// A slice larger than the whole buffer can never be
					// stored (the paper assumes Lmax <= B throughout).
					return false
				}
				occ += sl.Size
			}
		}
		occ -= R
		if occ < 0 {
			occ = 0
		}
		if occ > B {
			return false
		}
	}
	return true
}

// Verify cross-checks a Result against the stream it was computed for: the
// accepted set must be feasible for (B, R), its weight and size must match
// the recorded Benefit and Bytes, and the Accepted vector must cover every
// slice. It returns nil if everything is consistent. Tests and tools use
// it to keep optimal schedules honest end to end.
func Verify(st *stream.Stream, res *Result, B, R int) error {
	if res == nil {
		return fmt.Errorf("offline: nil result")
	}
	if len(res.Accepted) != st.Len() {
		return fmt.Errorf("offline: result covers %d slices, stream has %d", len(res.Accepted), st.Len())
	}
	var w float64
	bytes := 0
	for id, ok := range res.Accepted {
		if ok {
			sl := st.Slice(id)
			w += sl.Weight
			bytes += sl.Size
		}
	}
	if diff := w - res.Benefit; diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("offline: accepted weight %v != recorded benefit %v", w, res.Benefit)
	}
	if bytes != res.Bytes {
		return fmt.Errorf("offline: accepted size %d != recorded bytes %d", bytes, res.Bytes)
	}
	if !Feasible(st, func(id int) bool { return res.Accepted[id] }, B, R) {
		return fmt.Errorf("offline: accepted set infeasible for B=%d R=%d", B, R)
	}
	return nil
}

// maxSubsetSize bounds BruteForce's input size.
const maxBruteForce = 22

// BruteForce returns the exact optimal accepted set by exhaustive search.
// It is exponential in the number of slices and refuses streams with more
// than 22 slices; it exists as the ground-truth oracle for the polynomial
// algorithms.
func BruteForce(st *stream.Stream, B, R int) (*Result, error) {
	n := st.Len()
	if n > maxBruteForce {
		return nil, fmt.Errorf("offline: brute force limited to %d slices, got %d", maxBruteForce, n)
	}
	if B <= 0 || R <= 0 {
		return nil, fmt.Errorf("offline: non-positive B=%d or R=%d", B, R)
	}
	best := &Result{Accepted: make([]bool, n)}
	cur := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		var w float64
		bytes := 0
		for i := 0; i < n; i++ {
			cur[i] = mask&(1<<i) != 0
			if cur[i] {
				sl := st.Slice(i)
				w += sl.Weight
				bytes += sl.Size
			}
		}
		if w <= best.Benefit && !(best.Benefit == 0 && w == 0) {
			continue
		}
		if Feasible(st, func(id int) bool { return cur[id] }, B, R) {
			if w > best.Benefit {
				best.Benefit = w
				best.Bytes = bytes
				copy(best.Accepted, cur)
			}
		}
	}
	return best, nil
}
