package offline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stream"
)

// OptimalUnit returns the maximum-benefit accepted set for a stream of
// unit-size slices through a server buffer of capacity B drained at rate R.
//
// Feasible accepted sets form a matroid (for B = R·D they are exactly the
// transversal matroid of unit jobs with send windows [a, a+D] on R parallel
// slots per step), so sorting slices by weight and accepting each one whose
// addition keeps the set feasible is optimal. The feasibility condition is
// the interval constraint family
//
//	for every [t1, t2]:  accepted arrivals in [t1, t2] <= R·(t2-t1+1) + B,
//
// which is maintained incrementally with a segment tree over the prefix
// function H[i] = N(i-1) - R·i (N = accepted-arrival counting function):
// the set is feasible iff max over i<j of H[j]-H[i] <= B. Accepting a slice
// with arrival a adds 1 to H[i] for all i > a; the tree supports suffix
// add, rollback, and the max-rise query in O(log T).
//
// Total time O(n log n + n log T); exact (cross-validated against
// BruteForce in the tests).
func OptimalUnit(st *stream.Stream, B, R int) (*Result, error) {
	if !st.UnitSliced() {
		return nil, fmt.Errorf("offline: OptimalUnit requires unit-size slices (Lmax=%d); use OptimalFrames or Explode", st.MaxSliceSize())
	}
	if B <= 0 || R <= 0 {
		return nil, fmt.Errorf("offline: non-positive B=%d or R=%d", B, R)
	}
	res := &Result{Accepted: make([]bool, st.Len())}
	if st.Len() == 0 {
		return res, nil
	}

	// Sort slice IDs by weight descending; ties by arrival then ID for
	// determinism (any tie-break yields the same total benefit, by the
	// matroid exchange property).
	order := make([]int, st.Len())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := st.Slice(order[x]), st.Slice(order[y])
		if a.Weight != b.Weight {
			return a.Weight > b.Weight
		}
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		return a.ID < b.ID
	})

	// H is indexed by i in [0, horizon+1]; H[i] = N(i-1) - R*i starts at
	// -R*i with N = 0.
	size := st.Horizon() + 2
	tree := newRiseTree(size, func(i int) int64 { return -int64(R) * int64(i) })

	limit := int64(B)
	for _, id := range order {
		a := st.Slice(id).Arrival
		tree.addSuffix(a+1, 1)
		if tree.maxRise() <= limit {
			res.Accepted[id] = true
			res.Benefit += st.Slice(id).Weight
			res.Bytes++
		} else {
			tree.addSuffix(a+1, -1) // rollback
		}
	}
	return res, nil
}

// riseTree is a segment tree over an int64 array supporting suffix add and
// the query max over i<j of a[j]-a[i] ("best rise").
type riseTree struct {
	n    int // number of real leaves
	base int // power-of-two leaf count
	lo   []int64
	hi   []int64
	rise []int64
	lazy []int64
}

const (
	negInf = math.MinInt64 / 4
	posInf = math.MaxInt64 / 4
)

func newRiseTree(n int, init func(i int) int64) *riseTree {
	base := 1
	for base < n {
		base <<= 1
	}
	t := &riseTree{
		n:    n,
		base: base,
		lo:   make([]int64, 2*base),
		hi:   make([]int64, 2*base),
		rise: make([]int64, 2*base),
		lazy: make([]int64, 2*base),
	}
	for i := 0; i < base; i++ {
		node := base + i
		if i < n {
			v := init(i)
			t.lo[node], t.hi[node], t.rise[node] = v, v, negInf
		} else {
			t.lo[node], t.hi[node], t.rise[node] = posInf, negInf, negInf
		}
	}
	for node := base - 1; node >= 1; node-- {
		t.pull(node)
	}
	return t
}

func (t *riseTree) pull(node int) {
	l, r := 2*node, 2*node+1
	t.lo[node] = min64(t.lo[l], t.lo[r])
	t.hi[node] = max64(t.hi[l], t.hi[r])
	cross := int64(negInf)
	if t.hi[r] != negInf && t.lo[l] != posInf {
		cross = t.hi[r] - t.lo[l]
	}
	t.rise[node] = max64(max64(t.rise[l], t.rise[r]), cross)
}

func (t *riseTree) applyAdd(node int, v int64) {
	if t.lo[node] != posInf {
		t.lo[node] += v
	}
	if t.hi[node] != negInf {
		t.hi[node] += v
	}
	// rise is invariant under a uniform shift.
	t.lazy[node] += v
}

func (t *riseTree) push(node int) {
	if t.lazy[node] != 0 {
		t.applyAdd(2*node, t.lazy[node])
		t.applyAdd(2*node+1, t.lazy[node])
		t.lazy[node] = 0
	}
}

// addSuffix adds v to every element with index >= from.
func (t *riseTree) addSuffix(from int, v int64) {
	if from >= t.n {
		return
	}
	if from < 0 {
		from = 0
	}
	t.addRange(1, 0, t.base-1, from, t.base-1, v)
}

func (t *riseTree) addRange(node, nodeLo, nodeHi, lo, hi int, v int64) {
	if hi < nodeLo || nodeHi < lo {
		return
	}
	if lo <= nodeLo && nodeHi <= hi {
		t.applyAdd(node, v)
		return
	}
	t.push(node)
	mid := (nodeLo + nodeHi) / 2
	t.addRange(2*node, nodeLo, mid, lo, hi, v)
	t.addRange(2*node+1, mid+1, nodeHi, lo, hi, v)
	t.pull(node)
}

// maxRise returns max over i<j of a[j]-a[i], or a very negative value when
// the array has fewer than two elements.
func (t *riseTree) maxRise() int64 { return t.rise[1] }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
