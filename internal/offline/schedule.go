package offline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stream"
)

// ScheduleFor materializes an optimal Result into a complete, validated
// sched.Schedule on the ORIGINAL stream: accepted slices are transmitted
// work-conservingly in FIFO order (replayed through the real simulator on
// the accepted sub-stream), rejected slices are recorded as server drops at
// their arrival steps. The returned schedule passes sched.Validate and can
// be inspected with the usual metrics, Report and Timeline — i.e. you can
// SEE what the optimum does, not just its benefit.
func ScheduleFor(st *stream.Stream, res *Result, B, R int) (*sched.Schedule, error) {
	if err := Verify(st, res, B, R); err != nil {
		return nil, err
	}
	// Build the accepted sub-stream; Restrict preserves order, so the
	// k-th accepted original slice becomes restricted slice k.
	keep := make(map[int]bool, st.Len())
	var origOf []int // restricted ID -> original ID
	for id, ok := range res.Accepted {
		if ok {
			keep[id] = true
			origOf = append(origOf, id)
		}
	}
	sub := st.Restrict(keep)
	if sub.Len() != len(origOf) {
		return nil, fmt.Errorf("offline: restrict produced %d slices, expected %d", sub.Len(), len(origOf))
	}
	subSched, err := core.Simulate(sub, core.Config{ServerBuffer: B, Rate: R})
	if err != nil {
		return nil, err
	}
	// The accepted set is feasible, so the replay must lose nothing.
	if subSched.DroppedSlices() != 0 {
		return nil, fmt.Errorf("offline: replay of a feasible accepted set dropped %d slices",
			subSched.DroppedSlices())
	}

	out := &sched.Schedule{
		Stream:      st,
		Params:      subSched.Params,
		Outcomes:    make([]sched.Outcome, st.Len()),
		SentPerStep: subSched.SentPerStep,
		ServerOcc:   subSched.ServerOcc,
		ClientOcc:   subSched.ClientOcc,
		Algorithm:   "offline-optimal",
	}
	for id := range out.Outcomes {
		out.Outcomes[id] = sched.Outcome{
			SendStart: sched.None, SendEnd: sched.None,
			DropTime: st.Slice(id).Arrival, DropSite: sched.SiteServer,
			PlayTime: sched.None,
		}
	}
	for subID, origID := range origOf {
		out.Outcomes[origID] = subSched.Outcomes[subID]
	}
	return out, nil
}
