package offline

import (
	"fmt"
	"math"

	"repro/internal/stream"
)

// OptimalFrames returns the maximum-benefit accepted set for a stream of
// atomic (indivisible) slices of arbitrary sizes through a server buffer of
// capacity B drained at rate R — the whole-frame-slice model of the paper's
// Figures 5 and 6.
//
// Dynamic program: process steps in order; within a step, decide
// accept/reject for each arriving slice; the state is the interim buffer
// occupancy (carried occupancy plus accepted arrivals so far this step),
// which may legally reach B+R because R bytes leave before the end-of-step
// capacity check (Eqs. 2–3 of the paper). After the step's arrivals the
// occupancy drains by min(R, occ). dp[o] is the best benefit over
// histories ending in interim occupancy o.
//
// Time O(n·(B+R)), memory O((n+T)·(B+R) bits) for choice reconstruction.
// Exact: drop-at-arrival and work conservation are WLOG (see package doc),
// so feasibility is fully captured by the occupancy recursion.
func OptimalFrames(st *stream.Stream, B, R int) (*Result, error) {
	if B <= 0 || R <= 0 {
		return nil, fmt.Errorf("offline: non-positive B=%d or R=%d", B, R)
	}
	n := st.Len()
	res := &Result{Accepted: make([]bool, n)}
	if n == 0 {
		return res, nil
	}

	capMax := B + R
	reject := math.Inf(-1)
	dp := make([]float64, capMax+1)
	next := make([]float64, capMax+1)
	for i := 1; i <= capMax; i++ {
		dp[i] = reject
	}

	// choice[k] is a bitset over post-accept occupancy: bit o set means the
	// optimal way to be at interim occupancy o just after considering
	// slice k is to accept it.
	choice := make([][]uint64, n)
	words := (capMax + 64) / 64
	// drainFrom0[t] is the pre-drain occupancy that yields post-drain 0
	// optimally at step t (only the o' == 0 target is ambiguous).
	horizon := st.Horizon()
	drainFrom0 := make([]int, horizon+1)

	for t := 0; t <= horizon; t++ {
		for _, sl := range st.ArrivalsAt(t) {
			bits := make([]uint64, words)
			choice[sl.ID] = bits
			if sl.Size > B {
				// Never acceptable; dp unchanged (reject forced).
				continue
			}
			// Accept transitions shift occupancy up by Size; process
			// descending so each slice is considered once.
			for o := capMax; o >= sl.Size; o-- {
				from := o - sl.Size
				if dp[from] == reject {
					continue
				}
				if v := dp[from] + sl.Weight; v > dp[o] {
					dp[o] = v
					bits[o/64] |= 1 << (o % 64)
				}
			}
		}
		// Drain: post = max(0, o - R); post-drain occupancy must be <= B,
		// which holds automatically since o <= B+R.
		for i := range next {
			next[i] = reject
		}
		bestZero, bestZeroVal := -1, reject
		for o := 0; o <= capMax; o++ {
			if dp[o] == reject {
				continue
			}
			post := o - R
			if post <= 0 {
				if dp[o] > bestZeroVal {
					bestZeroVal = dp[o]
					bestZero = o
				}
			} else if dp[o] > next[post] {
				next[post] = dp[o]
			}
		}
		next[0] = bestZeroVal
		drainFrom0[t] = bestZero
		dp, next = next, dp
	}

	// Best final state: any occupancy (the buffer drains freely after the
	// last arrival with no further constraints).
	bestOcc, bestVal := 0, dp[0]
	for o := 1; o <= capMax; o++ {
		if dp[o] > bestVal {
			bestVal = dp[o]
			bestOcc = o
		}
	}
	res.Benefit = bestVal

	// Backtrack. Walk steps in reverse; undo the drain (deterministic for
	// post > 0, recorded for post == 0), then the per-slice decisions in
	// reverse arrival order.
	o := bestOcc
	for t := horizon; t >= 0; t-- {
		if o == 0 {
			o = drainFrom0[t]
		} else {
			o += R
		}
		arr := st.ArrivalsAt(t)
		for i := len(arr) - 1; i >= 0; i-- {
			sl := arr[i]
			bits := choice[sl.ID]
			if o >= 0 && o <= capMax && bits[o/64]&(1<<(o%64)) != 0 {
				res.Accepted[sl.ID] = true
				res.Bytes += sl.Size
				o -= sl.Size
			}
		}
	}
	return res, nil
}
