package offline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

func unitStream(rng *rand.Rand, n, horizon, maxW int) *stream.Stream {
	b := stream.NewBuilder()
	for i := 0; i < n; i++ {
		b.Add(rng.Intn(horizon), 1, float64(rng.Intn(maxW)+1))
	}
	return b.MustBuild()
}

func varStream(rng *rand.Rand, n, horizon, maxSize, maxW int) *stream.Stream {
	b := stream.NewBuilder()
	for i := 0; i < n; i++ {
		b.Add(rng.Intn(horizon), rng.Intn(maxSize)+1, float64(rng.Intn(maxW)+1))
	}
	return b.MustBuild()
}

func TestFeasibleBasics(t *testing.T) {
	st := stream.NewBuilder().
		Add(0, 1, 1).Add(0, 1, 1).Add(0, 1, 1).
		MustBuild()
	all := func(int) bool { return true }
	if !Feasible(st, all, 2, 1) {
		t.Error("3 unit slices, B=2 R=1: send 1, keep 2 — should be feasible")
	}
	if Feasible(st, all, 1, 1) {
		t.Error("3 unit slices, B=1 R=1 should overflow")
	}
	if Feasible(st, all, 0, 1) || Feasible(st, all, 1, 0) {
		t.Error("non-positive parameters accepted")
	}
	none := func(int) bool { return false }
	if !Feasible(st, none, 1, 1) {
		t.Error("empty set must be feasible")
	}
}

func TestFeasibleRejectsOversizeSlice(t *testing.T) {
	st := stream.NewBuilder().Add(0, 5, 5).MustBuild()
	if Feasible(st, func(int) bool { return true }, 4, 10) {
		t.Error("slice larger than B accepted")
	}
	if !Feasible(st, func(int) bool { return true }, 5, 1) {
		t.Error("slice of exactly B rejected")
	}
}

func TestBruteForceTiny(t *testing.T) {
	// Two heavy slices conflict with one light one.
	st := stream.NewBuilder().
		Add(0, 1, 1).
		Add(0, 1, 10).
		Add(0, 1, 10).
		MustBuild()
	// B=1, R=1: send one at step 0, keep one; third must go.
	res, err := BruteForce(st, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benefit != 20 {
		t.Errorf("benefit = %v, want 20", res.Benefit)
	}
	if res.Accepted[0] {
		t.Error("brute force kept the light slice over a heavy one")
	}
	if res.Bytes != 2 {
		t.Errorf("bytes = %d, want 2", res.Bytes)
	}
	if ids := res.AcceptedIDs(); len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("AcceptedIDs = %v, want [1 2]", ids)
	}
}

func TestBruteForceRefusesLargeInput(t *testing.T) {
	b := stream.NewBuilder()
	for i := 0; i < 25; i++ {
		b.Add(0, 1, 1)
	}
	if _, err := BruteForce(b.MustBuild(), 1, 1); err == nil {
		t.Error("brute force accepted 25 slices")
	}
	if _, err := BruteForce(stream.NewBuilder().MustBuild(), 0, 1); err == nil {
		t.Error("brute force accepted B=0")
	}
}

func TestOptimalUnitRequiresUnitSlices(t *testing.T) {
	st := stream.NewBuilder().Add(0, 2, 2).MustBuild()
	if _, err := OptimalUnit(st, 2, 1); err == nil {
		t.Error("OptimalUnit accepted a size-2 slice")
	}
}

func TestOptimalUnitEmpty(t *testing.T) {
	res, err := OptimalUnit(stream.NewBuilder().MustBuild(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benefit != 0 || res.Bytes != 0 {
		t.Errorf("empty stream optimal = %+v", res)
	}
}

func TestOptimalUnitSmoke(t *testing.T) {
	// Burst of 5, B=2, R=1: step 0 sends 1, keeps 2 -> 3 acceptable.
	b := stream.NewBuilder()
	weights := []float64{5, 1, 9, 7, 3}
	for _, w := range weights {
		b.Add(0, 1, w)
	}
	st := b.MustBuild()
	res, err := OptimalUnit(st, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benefit != 21 { // 9+7+5
		t.Errorf("benefit = %v, want 21", res.Benefit)
	}
	if res.Bytes != 3 {
		t.Errorf("bytes = %d, want 3", res.Bytes)
	}
}

func TestOptimalUnitMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := unitStream(rng, rng.Intn(12)+1, rng.Intn(6)+1, 20)
		B := rng.Intn(5) + 1
		R := rng.Intn(3) + 1
		got, err := OptimalUnit(st, B, R)
		if err != nil {
			return false
		}
		want, err := BruteForce(st, B, R)
		if err != nil {
			return false
		}
		if math.Abs(got.Benefit-want.Benefit) > 1e-9 {
			t.Logf("seed %d: unit greedy %v != brute force %v (B=%d R=%d)",
				seed, got.Benefit, want.Benefit, B, R)
			return false
		}
		// The accepted set itself must be feasible.
		return Feasible(st, func(id int) bool { return got.Accepted[id] }, B, R)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOptimalUnitMatchesBruteForceNonDivisible(t *testing.T) {
	// Exercise B not divisible by R specifically.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := unitStream(rng, rng.Intn(10)+1, rng.Intn(5)+1, 10)
		R := rng.Intn(3) + 2
		B := R*(rng.Intn(3)+1) + 1 + rng.Intn(R-1) // ensures R does not divide B
		got, err := OptimalUnit(st, B, R)
		if err != nil {
			return false
		}
		want, err := BruteForce(st, B, R)
		if err != nil {
			return false
		}
		return math.Abs(got.Benefit-want.Benefit) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOptimalFramesMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := varStream(rng, rng.Intn(10)+1, rng.Intn(6)+1, 4, 20)
		B := rng.Intn(8) + 1
		R := rng.Intn(4) + 1
		got, err := OptimalFrames(st, B, R)
		if err != nil {
			return false
		}
		want, err := BruteForce(st, B, R)
		if err != nil {
			return false
		}
		if math.Abs(got.Benefit-want.Benefit) > 1e-9 {
			t.Logf("seed %d: frames DP %v != brute force %v (B=%d R=%d)",
				seed, got.Benefit, want.Benefit, B, R)
			return false
		}
		// Reconstructed set must be feasible and match the benefit.
		var w float64
		bytes := 0
		for id, ok := range got.Accepted {
			if ok {
				w += st.Slice(id).Weight
				bytes += st.Slice(id).Size
			}
		}
		if math.Abs(w-got.Benefit) > 1e-9 || bytes != got.Bytes {
			t.Logf("seed %d: backtrack mismatch: set weight %v benefit %v bytes %d/%d",
				seed, w, got.Benefit, bytes, got.Bytes)
			return false
		}
		return Feasible(st, func(id int) bool { return got.Accepted[id] }, B, R)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOptimalFramesAgreesWithOptimalUnitOnUnitStreams(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := unitStream(rng, rng.Intn(40)+1, rng.Intn(10)+1, 30)
		B := rng.Intn(10) + 1
		R := rng.Intn(4) + 1
		a, err := OptimalUnit(st, B, R)
		if err != nil {
			return false
		}
		b, err := OptimalFrames(st, B, R)
		if err != nil {
			return false
		}
		return math.Abs(a.Benefit-b.Benefit) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOptimalFramesOversizeSliceRejected(t *testing.T) {
	st := stream.NewBuilder().Add(0, 10, 100).Add(0, 1, 1).MustBuild()
	res, err := OptimalFrames(st, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted[0] {
		t.Error("oversize slice accepted")
	}
	if !res.Accepted[1] {
		t.Error("fitting slice rejected")
	}
	if res.Benefit != 1 {
		t.Errorf("benefit = %v, want 1", res.Benefit)
	}
}

func TestOptimalFramesEmpty(t *testing.T) {
	res, err := OptimalFrames(stream.NewBuilder().MustBuild(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benefit != 0 {
		t.Errorf("empty optimal benefit = %v", res.Benefit)
	}
}

func TestOptimalFramesErrors(t *testing.T) {
	st := stream.NewBuilder().Add(0, 1, 1).MustBuild()
	if _, err := OptimalFrames(st, 0, 1); err == nil {
		t.Error("B=0 accepted")
	}
	if _, err := OptimalFrames(st, 1, 0); err == nil {
		t.Error("R=0 accepted")
	}
	if _, err := OptimalUnit(st, 0, 1); err == nil {
		t.Error("OptimalUnit B=0 accepted")
	}
}

func TestOptimalMonotoneInBuffer(t *testing.T) {
	// Property: benefit is non-decreasing in B and in R.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := varStream(rng, rng.Intn(12)+1, rng.Intn(6)+1, 3, 10)
		B := rng.Intn(6) + 1
		R := rng.Intn(3) + 1
		a, err := OptimalFrames(st, B, R)
		if err != nil {
			return false
		}
		b, err := OptimalFrames(st, B+1, R)
		if err != nil {
			return false
		}
		c, err := OptimalFrames(st, B, R+1)
		if err != nil {
			return false
		}
		return b.Benefit >= a.Benefit-1e-9 && c.Benefit >= a.Benefit-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRiseTree(t *testing.T) {
	// Directly exercise the segment tree: array [3, 1, 4, 1, 5].
	vals := []int64{3, 1, 4, 1, 5}
	tr := newRiseTree(len(vals), func(i int) int64 { return vals[i] })
	if got := tr.maxRise(); got != 4 { // 5 - 1
		t.Errorf("maxRise = %d, want 4", got)
	}
	tr.addSuffix(4, -10)               // [3,1,4,1,-5]
	if got := tr.maxRise(); got != 3 { // 4 - 1
		t.Errorf("maxRise after suffix add = %d, want 3", got)
	}
	tr.addSuffix(0, 100) // uniform shift: rise unchanged
	if got := tr.maxRise(); got != 3 {
		t.Errorf("maxRise after uniform shift = %d, want 3", got)
	}
	tr.addSuffix(5, 7) // out of range: no-op
	if got := tr.maxRise(); got != 3 {
		t.Errorf("maxRise after no-op = %d, want 3", got)
	}
}

func TestRiseTreeSingleElement(t *testing.T) {
	tr := newRiseTree(1, func(int) int64 { return 42 })
	if tr.maxRise() >= 0 {
		t.Errorf("single-element maxRise = %d, want very negative", tr.maxRise())
	}
}

func TestRiseTreeRandomAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		arr := make([]int64, n)
		for i := range arr {
			arr[i] = int64(rng.Intn(41) - 20)
		}
		tr := newRiseTree(n, func(i int) int64 { return arr[i] })
		for op := 0; op < 20; op++ {
			from := rng.Intn(n)
			v := int64(rng.Intn(11) - 5)
			tr.addSuffix(from, v)
			for i := from; i < n; i++ {
				arr[i] += v
			}
			want := int64(math.MinInt64 / 4)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if r := arr[j] - arr[i]; r > want {
						want = r
					}
				}
			}
			if got := tr.maxRise(); got != want {
				t.Logf("seed %d op %d: tree %d naive %d", seed, op, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	st := unitStream(rng, 20, 6, 10)
	res, err := OptimalUnit(st, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(st, res, 4, 2); err != nil {
		t.Errorf("genuine result rejected: %v", err)
	}
	// Tampering is detected.
	bad := *res
	bad.Benefit += 1
	if err := Verify(st, &bad, 4, 2); err == nil {
		t.Error("tampered benefit accepted")
	}
	bad = *res
	bad.Bytes++
	if err := Verify(st, &bad, 4, 2); err == nil {
		t.Error("tampered bytes accepted")
	}
	if err := Verify(st, nil, 4, 2); err == nil {
		t.Error("nil result accepted")
	}
	short := &Result{Accepted: make([]bool, 1)}
	if err := Verify(st, short, 4, 2); err == nil {
		t.Error("short accepted vector accepted")
	}
	// An infeasible set is detected: accept everything on a tiny buffer.
	all := &Result{Accepted: make([]bool, st.Len())}
	for i := range all.Accepted {
		all.Accepted[i] = true
		all.Benefit += st.Slice(i).Weight
		all.Bytes += st.Slice(i).Size
	}
	if err := Verify(st, all, 1, 1); err == nil {
		t.Error("infeasible set accepted")
	}
}

func TestVerifyAllOptima(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := varStream(rng, rng.Intn(12)+1, rng.Intn(6)+1, 3, 10)
		B := rng.Intn(8) + st.MaxSliceSize()
		R := rng.Intn(3) + 1
		res, err := OptimalFrames(st, B, R)
		if err != nil {
			return false
		}
		if err := Verify(st, res, B, R); err != nil {
			t.Logf("seed %d frames: %v", seed, err)
			return false
		}
		if st.UnitSliced() {
			res, err = OptimalUnit(st, B, R)
			if err != nil {
				return false
			}
			if err := Verify(st, res, B, R); err != nil {
				t.Logf("seed %d unit: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
