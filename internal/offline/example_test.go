package offline_test

import (
	"fmt"

	"repro/internal/offline"
	"repro/internal/stream"
)

// ExampleOptimalUnit computes the exact maximum-weight schedule for a burst
// of unit slices through a small buffer.
func ExampleOptimalUnit() {
	b := stream.NewBuilder()
	for _, w := range []float64{5, 1, 9, 7, 3} {
		b.Add(0, 1, w)
	}
	st := b.MustBuild()

	// B=2, R=1: one slice leaves in step 0 and two fit the buffer, so the
	// three most valuable survive.
	res, _ := offline.OptimalUnit(st, 2, 1)
	fmt.Printf("benefit %v with %d slices: %v\n", res.Benefit, res.Bytes, res.AcceptedIDs())
	// Output:
	// benefit 21 with 3 slices: [0 2 3]
}

// ExampleOptimalFrames handles atomic slices of different sizes: a large
// cheap frame competes with small valuable ones.
func ExampleOptimalFrames() {
	st := stream.NewBuilder().
		Add(0, 4, 4).  // big, cheap
		Add(0, 2, 20). // small, valuable
		Add(1, 2, 20). // small, valuable
		MustBuild()
	res, _ := offline.OptimalFrames(st, 4, 1)
	fmt.Printf("benefit %v, big frame kept: %v\n", res.Benefit, res.Accepted[0])
	// Output:
	// benefit 40, big frame kept: false
}

// ExampleFeasible checks whether an accepted set fits through the buffer.
func ExampleFeasible() {
	st := stream.NewBuilder().Add(0, 1, 1).Add(0, 1, 1).Add(0, 1, 1).MustBuild()
	all := func(int) bool { return true }
	fmt.Println(offline.Feasible(st, all, 2, 1)) // 1 sent, 2 stored
	fmt.Println(offline.Feasible(st, all, 1, 1)) // 1 sent, 2 > buffer 1
	// Output:
	// true
	// false
}
