package offline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleForProducesValidOptimalSchedule(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := varStream(rng, rng.Intn(15)+1, rng.Intn(8)+1, 3, 20)
		B := rng.Intn(8) + st.MaxSliceSize()
		R := rng.Intn(3) + 1
		res, err := OptimalFrames(st, B, R)
		if err != nil {
			return false
		}
		s, err := ScheduleFor(st, res, B, R)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := s.Validate(); err != nil {
			t.Logf("seed %d: invalid optimal schedule: %v", seed, err)
			return false
		}
		if math.Abs(s.Benefit()-res.Benefit) > 1e-9 {
			t.Logf("seed %d: schedule benefit %v != result %v", seed, s.Benefit(), res.Benefit)
			return false
		}
		// Every outcome's fate matches the accepted set.
		for id, o := range s.Outcomes {
			if o.Played() != res.Accepted[id] {
				t.Logf("seed %d: slice %d fate mismatch", seed, id)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestScheduleForRejectsTamperedResult(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	st := unitStream(rng, 15, 5, 10)
	res, err := OptimalUnit(st, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := *res
	bad.Benefit += 5
	if _, err := ScheduleFor(st, &bad, 3, 1); err == nil {
		t.Error("tampered result accepted")
	}
}

func TestScheduleForEmptyAcceptance(t *testing.T) {
	// A stream whose only slice cannot fit: the optimal accepts nothing.
	st := unitStream(rand.New(rand.NewSource(1)), 5, 2, 3)
	res := &Result{Accepted: make([]bool, st.Len())}
	s, err := ScheduleFor(st, res, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("all-drop schedule invalid: %v", err)
	}
	if s.Benefit() != 0 || s.DroppedSlices() != st.Len() {
		t.Errorf("all-drop schedule metrics wrong: %v, %d", s.Benefit(), s.DroppedSlices())
	}
}
