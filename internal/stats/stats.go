// Package stats provides the small statistical substrate used by the trace
// generator and the experiment harness: summary statistics, histograms, and
// lognormal sampling with deterministic seeds. Everything is stdlib-only and
// allocation-conscious.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Summary holds the usual scalar summary of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // population standard deviation
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(xs)))
	return s
}

// SummarizeInts converts and summarizes an integer sample.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// String renders the summary compactly, e.g. "n=100 mean=38.2 sd=21.0 min=4 max=120".
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g", s.N, s.Mean, s.StdDev, s.Min, s.Max)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It sorts a copy; the input is not
// modified. An empty sample returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns the requested percentiles of xs in one pass over a
// single sorted copy.
func Quantiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// Histogram is a fixed-width-bin histogram over a closed interval.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
}

// NewHistogram creates a histogram with the given number of equal-width bins
// over [lo, hi]. bins must be positive and hi > lo; otherwise it panics,
// since the arguments are programmer-controlled constants.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram bounds lo=%v hi=%v bins=%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation. Out-of-range observations are tallied in
// under/overflow counters rather than dropped silently.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.under++
	case x > h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // x == Hi
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Outliers returns the number of observations below Lo and above Hi.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// Render draws a simple horizontal ASCII bar chart of the histogram, one
// line per bin, scaled so the largest bin spans width characters.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var sb strings.Builder
	binW := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/maxC)
		fmt.Fprintf(&sb, "[%8.3g, %8.3g) %6d %s\n", h.Lo+float64(i)*binW, h.Lo+float64(i+1)*binW, c, bar)
	}
	return sb.String()
}

// Lognormal samples a lognormal distribution with the given location (mu)
// and scale (sigma) of the underlying normal, i.e. exp(N(mu, sigma^2)).
type Lognormal struct {
	Mu, Sigma float64
}

// LognormalFromMoments constructs the Lognormal whose mean and standard
// deviation (of the lognormal itself, not the underlying normal) match the
// given values. mean must be positive and sd non-negative.
func LognormalFromMoments(mean, sd float64) (Lognormal, error) {
	if mean <= 0 || sd < 0 {
		return Lognormal{}, fmt.Errorf("stats: invalid lognormal moments mean=%v sd=%v", mean, sd)
	}
	if sd == 0 {
		return Lognormal{Mu: math.Log(mean), Sigma: 0}, nil
	}
	v := sd * sd
	m2 := mean * mean
	sigma2 := math.Log(1 + v/m2)
	return Lognormal{
		Mu:    math.Log(mean) - sigma2/2,
		Sigma: math.Sqrt(sigma2),
	}, nil
}

// Sample draws one value using the supplied source.
func (ln Lognormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(ln.Mu + ln.Sigma*rng.NormFloat64())
}

// Mean returns the mean of the lognormal distribution.
func (ln Lognormal) Mean() float64 { return math.Exp(ln.Mu + ln.Sigma*ln.Sigma/2) }

// FitLognormal estimates Mu and Sigma by the method of moments on the log of
// the (positive) sample. Non-positive observations are an error.
func FitLognormal(xs []float64) (Lognormal, error) {
	if len(xs) == 0 {
		return Lognormal{}, fmt.Errorf("stats: cannot fit lognormal to empty sample")
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return Lognormal{}, fmt.Errorf("stats: non-positive observation %v at index %d", x, i)
		}
		logs[i] = math.Log(x)
	}
	s := Summarize(logs)
	return Lognormal{Mu: s.Mean, Sigma: s.StdDev}, nil
}

// Autocorrelation returns the sample autocorrelation of xs at lags
// 0..maxLag (inclusive). Lag 0 is always 1 for a non-constant sample; a
// constant (zero-variance) sample returns all zeros beyond lag 0.
func Autocorrelation(xs []float64, maxLag int) []float64 {
	if maxLag < 0 {
		maxLag = 0
	}
	out := make([]float64, maxLag+1)
	n := len(xs)
	if n == 0 {
		return out
	}
	s := Summarize(xs)
	den := s.StdDev * s.StdDev * float64(n)
	if den == 0 {
		out[0] = 1
		return out
	}
	for lag := 0; lag <= maxLag && lag < n; lag++ {
		var num float64
		for i := 0; i+lag < n; i++ {
			num += (xs[i] - s.Mean) * (xs[i+lag] - s.Mean)
		}
		out[lag] = num / den
	}
	return out
}

// IndexOfDispersion returns Var(S_w)/(mean·w) where S_w is the sum of xs
// over non-overlapping windows of length w — the classic IDC burstiness
// measure (1 for a Poisson-like process, larger for positively correlated
// traffic). It returns 0 when there are fewer than two complete windows or
// the mean is 0.
func IndexOfDispersion(xs []float64, window int) float64 {
	if window <= 0 || len(xs)/window < 2 {
		return 0
	}
	var sums []float64
	for start := 0; start+window <= len(xs); start += window {
		var s float64
		for i := start; i < start+window; i++ {
			s += xs[i]
		}
		sums = append(sums, s)
	}
	all := Summarize(xs)
	if all.Mean == 0 {
		return 0
	}
	ws := Summarize(sums)
	return ws.StdDev * ws.StdDev / (all.Mean * float64(window))
}

// AR1 is a first-order autoregressive process x' = phi*x + (1-phi)*target + noise,
// used to modulate scene-level burstiness in the trace generator.
type AR1 struct {
	Phi    float64 // persistence in [0, 1)
	Target float64 // long-run mean
	Noise  float64 // stddev of the innovation
	x      float64
	init   bool
}

// Next advances the process one step and returns the new value.
func (a *AR1) Next(rng *rand.Rand) float64 {
	if !a.init {
		a.x = a.Target
		a.init = true
	}
	a.x = a.Phi*a.x + (1-a.Phi)*a.Target + a.Noise*rng.NormFloat64()
	return a.x
}
