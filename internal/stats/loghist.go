package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// LogHistogram is a fixed-footprint streaming histogram for non-negative
// integer observations (the load generator records step lags and stage
// timings in microseconds), in the HDR-histogram style: values below one
// sub-bucket span are counted exactly, larger values land in log-spaced
// octaves subdivided into 2^subBits linear sub-buckets. The bucket width
// at value v is at most v/2^subBits, so any quantile estimate is within a
// relative error of 1/2^subBits of an exact sorted-sample quantile (see
// Quantile). With the default 5 sub-bucket bits that bound is 1/32 ≈ 3.2%,
// at a fixed cost of (64-subBits+1)·2^subBits counters — about 15 KiB —
// regardless of how many observations are recorded.
//
// The zero value is not usable; call NewLogHistogram. A LogHistogram is
// not safe for concurrent use: the load generator keeps one per shard and
// merges them after the run.
type LogHistogram struct {
	subBits uint
	counts  []int64
	n       int64
	sum     int64
	min     int64 // exact, valid when n > 0
	max     int64 // exact
}

// DefaultLogHistSubBits is the sub-bucket resolution used by the load
// generator: quantiles are within 1/2^5 = 3.125% of exact.
const DefaultLogHistSubBits = 5

// NewLogHistogram returns an empty histogram with 2^subBits linear
// sub-buckets per octave. subBits must be in [1, 16]; out-of-range values
// panic, since the argument is a programmer-controlled constant.
func NewLogHistogram(subBits int) *LogHistogram {
	if subBits < 1 || subBits > 16 {
		panic(fmt.Sprintf("stats: invalid log-histogram subBits %d", subBits))
	}
	nOctaves := 64 - subBits + 1
	return &LogHistogram{
		subBits: uint(subBits),
		counts:  make([]int64, nOctaves<<uint(subBits)),
	}
}

// bucket maps a non-negative value to its bucket index: values below
// 2^subBits map to themselves (exact); value v >= 2^subBits with most
// significant bit m lands in octave m-subBits+1 at the sub-bucket given by
// its top subBits+1 bits.
//
//smoothvet:noalloc
func (h *LogHistogram) bucket(v int64) int {
	sub := int64(1) << h.subBits
	if v < sub {
		return int(v)
	}
	msb := uint(bits.Len64(uint64(v))) - 1
	shift := msb - h.subBits
	return int((int64(shift)+1)<<h.subBits + (v >> shift) - sub)
}

// bucketLow returns the lowest value mapping to bucket i (the inverse of
// bucket at the bucket's lower edge).
func (h *LogHistogram) bucketLow(i int) int64 {
	sub := int64(1) << h.subBits
	if int64(i) < sub {
		return int64(i)
	}
	shift := uint(int64(i)>>h.subBits) - 1
	return (int64(i) - int64(shift+1)<<h.subBits + sub) << shift
}

// bucketHigh returns the highest value mapping to bucket i.
func (h *LogHistogram) bucketHigh(i int) int64 {
	sub := int64(1) << h.subBits
	if int64(i) < sub {
		return int64(i)
	}
	shift := uint(int64(i)>>h.subBits) - 1
	return h.bucketLow(i) + (int64(1) << shift) - 1
}

// Add records one observation. Negative values clamp to zero (the load
// generator's lag rebase can produce small negatives before the anchor
// refines; they mean "on schedule").
//
//smoothvet:noalloc
func (h *LogHistogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.counts[h.bucket(v)]++
}

// Count returns the number of recorded observations.
func (h *LogHistogram) Count() int64 { return h.n }

// Sum returns the exact sum of recorded observations.
func (h *LogHistogram) Sum() int64 { return h.sum }

// Mean returns the exact mean of recorded observations (0 when empty).
func (h *LogHistogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min and Max return the exact extremes (0 when empty).
func (h *LogHistogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}
func (h *LogHistogram) Max() int64 { return h.max }

// Quantile returns the q-quantile (0 <= q <= 1) by the nearest-rank rule:
// the smallest recorded bucket whose cumulative count reaches ceil(q*n).
// Within a bucket the midpoint is returned, clamped to the exact recorded
// extremes, so the result differs from the exact nearest-rank sample
// quantile by at most a factor of 1/2^subBits. An empty histogram returns
// 0.
func (h *LogHistogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(q*float64(h.n) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	// The extreme ranks are tracked exactly; skip the bucket walk.
	if rank == 1 {
		return h.min
	}
	if rank == h.n {
		return h.max
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			// Midpoint via the width, not the sum: low+high overflows
			// int64 in the top octaves.
			v := h.bucketLow(i) + (h.bucketHigh(i)-h.bucketLow(i))/2
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds every observation recorded in o into h. The two histograms
// must have the same sub-bucket resolution; mismatched resolutions panic.
func (h *LogHistogram) Merge(o *LogHistogram) {
	if o == nil {
		return
	}
	if o.subBits != h.subBits {
		panic(fmt.Sprintf("stats: merging log-histograms with subBits %d and %d", h.subBits, o.subBits))
	}
	if o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
	for i, c := range o.counts {
		h.counts[i] += c
	}
}

// errCopyMismatch is pre-boxed so the noalloc CopyFrom can panic without
// a string-to-any conversion on its own path.
var errCopyMismatch any = "stats: CopyFrom with mismatched subBits"

// CopyFrom makes h an exact copy of o, reusing h's bucket array. The two
// histograms must have the same sub-bucket resolution; mismatched
// resolutions panic. The observability layer publishes per-shard
// snapshots through this once per tick.
//
//smoothvet:noalloc
func (h *LogHistogram) CopyFrom(o *LogHistogram) {
	if o.subBits != h.subBits {
		panic(errCopyMismatch)
	}
	copy(h.counts, o.counts)
	h.n, h.sum, h.min, h.max = o.n, o.sum, o.min, o.max
}

// SetDelta makes h the per-bucket difference cur - prev of two cumulative
// histograms (cur must contain every observation of prev, the usual case
// for a monotonically growing distribution between two scrapes). When cur
// has fewer observations than prev the source was reset in between; the
// delta is then cur itself. The exact min/max of the window are not
// recoverable from cumulative extremes, so SetDelta derives them from the
// delta's occupied bucket edges — they retain the histogram's relative
// error bound rather than being exact.
func (h *LogHistogram) SetDelta(cur, prev *LogHistogram) {
	if cur.subBits != h.subBits || prev.subBits != h.subBits {
		panic("stats: SetDelta with mismatched subBits")
	}
	if cur.n < prev.n {
		h.CopyFrom(cur)
		return
	}
	h.n = cur.n - prev.n
	h.sum = cur.sum - prev.sum
	h.min, h.max = 0, 0
	first := -1
	last := -1
	for i := range h.counts {
		d := cur.counts[i] - prev.counts[i]
		h.counts[i] = d
		if d > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if h.n > 0 && first >= 0 {
		h.min = h.bucketLow(first)
		h.max = h.bucketHigh(last)
		if cur.max < h.max {
			h.max = cur.max
		}
		if h.min > h.max {
			h.min = h.max
		}
	}
}

// Reset forgets every recorded observation, retaining the bucket array.
//
//smoothvet:noalloc
func (h *LogHistogram) Reset() {
	clear(h.counts)
	h.n, h.sum, h.min, h.max = 0, 0, 0, 0
}

// String summarizes the histogram for logs.
func (h *LogHistogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d mean=%.4g p50=%d p99=%d p99.9=%d max=%d",
		h.n, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.Max())
	return sb.String()
}
