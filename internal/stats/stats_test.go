package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if s.StdDev != 2 {
		t.Errorf("StdDev = %v, want 2", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !strings.Contains(s.String(), "mean=5") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{1, 2, 3})
	if s.Mean != 2 || s.N != 3 {
		t.Errorf("SummarizeInts = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {110, 5}, {10, 1.4},
	}
	for _, tc := range tests {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(empty) = %v", got)
	}
	// Input must not be modified.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Error("Percentile modified its input")
	}
}

func TestQuantiles(t *testing.T) {
	qs := Quantiles([]float64{1, 2, 3, 4, 5}, 0, 50, 100)
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Errorf("Quantiles = %v", qs)
	}
	if qs := Quantiles(nil, 50); qs[0] != 0 {
		t.Errorf("Quantiles(empty) = %v", qs)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, 10} {
		h.Add(x)
	}
	h.Add(-1)
	h.Add(11)
	if got := h.Total(); got != 6 {
		t.Errorf("Total = %d, want 6", got)
	}
	under, over := h.Outliers()
	if under != 1 || over != 1 {
		t.Errorf("Outliers = %d/%d, want 1/1", under, over)
	}
	// x == Hi lands in the last bin.
	if h.Counts[4] != 2 { // 9.9 and 10
		t.Errorf("last bin = %d, want 2", h.Counts[4])
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("first bin = %d, want 2", h.Counts[0])
	}
	if !strings.Contains(h.Render(20), "#") {
		t.Error("Render produced no bars")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(0,0,5) did not panic")
		}
	}()
	NewHistogram(0, 0, 5)
}

func TestLognormalFromMoments(t *testing.T) {
	ln, err := LognormalFromMoments(38, 15)
	if err != nil {
		t.Fatal(err)
	}
	if got := ln.Mean(); math.Abs(got-38) > 1e-9 {
		t.Errorf("Mean = %v, want 38", got)
	}
	// Sample mean should approach 38.
	rng := rand.New(rand.NewSource(1))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += ln.Sample(rng)
	}
	if got := sum / n; math.Abs(got-38) > 1 {
		t.Errorf("sample mean = %v, want ~38", got)
	}
}

func TestLognormalZeroSD(t *testing.T) {
	ln, err := LognormalFromMoments(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if got := ln.Sample(rng); math.Abs(got-10) > 1e-9 {
		t.Errorf("deterministic lognormal sample = %v, want 10", got)
	}
}

func TestLognormalErrors(t *testing.T) {
	if _, err := LognormalFromMoments(0, 1); err == nil {
		t.Error("mean 0 accepted")
	}
	if _, err := LognormalFromMoments(1, -1); err == nil {
		t.Error("negative sd accepted")
	}
}

func TestFitLognormal(t *testing.T) {
	want := Lognormal{Mu: 2, Sigma: 0.5}
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = want.Sample(rng)
	}
	got, err := FitLognormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mu-want.Mu) > 0.02 || math.Abs(got.Sigma-want.Sigma) > 0.02 {
		t.Errorf("fit = %+v, want %+v", got, want)
	}
}

func TestFitLognormalErrors(t *testing.T) {
	if _, err := FitLognormal(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := FitLognormal([]float64{1, -2}); err == nil {
		t.Error("negative observation accepted")
	}
}

func TestAR1ConvergesToTarget(t *testing.T) {
	a := AR1{Phi: 0.9, Target: 5, Noise: 0.1}
	rng := rand.New(rand.NewSource(3))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += a.Next(rng)
	}
	if got := sum / n; math.Abs(got-5) > 0.1 {
		t.Errorf("AR1 long-run mean = %v, want ~5", got)
	}
}

func TestPercentileMonotone(t *testing.T) {
	// Property: percentiles are monotone in p.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, rng.Intn(50)+1)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// White noise: lag-0 is 1, higher lags near 0.
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	ac := Autocorrelation(xs, 3)
	if math.Abs(ac[0]-1) > 1e-9 {
		t.Errorf("lag-0 autocorrelation = %v, want 1", ac[0])
	}
	for lag := 1; lag <= 3; lag++ {
		if math.Abs(ac[lag]) > 0.05 {
			t.Errorf("white-noise lag-%d autocorrelation = %v", lag, ac[lag])
		}
	}
	// A persistent AR(1) process has high lag-1 autocorrelation.
	a := AR1{Phi: 0.95, Target: 0, Noise: 1}
	ys := make([]float64, 5000)
	for i := range ys {
		ys[i] = a.Next(rng)
	}
	if ac := Autocorrelation(ys, 1); ac[1] < 0.85 {
		t.Errorf("AR(0.95) lag-1 autocorrelation = %v, want ~0.95", ac[1])
	}
}

func TestAutocorrelationEdges(t *testing.T) {
	if ac := Autocorrelation(nil, 2); len(ac) != 3 || ac[0] != 0 {
		t.Errorf("empty sample ac = %v", ac)
	}
	// Constant sample: zero variance.
	ac := Autocorrelation([]float64{5, 5, 5}, 2)
	if ac[0] != 1 || ac[1] != 0 {
		t.Errorf("constant sample ac = %v", ac)
	}
	if ac := Autocorrelation([]float64{1, 2}, -1); len(ac) != 1 {
		t.Errorf("negative maxLag ac = %v", ac)
	}
}

func TestIndexOfDispersion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// IID positive noise: IDC near Var/mean at any window.
	xs := make([]float64, 8000)
	for i := range xs {
		xs[i] = float64(rng.Intn(10)) // uniform {0..9}: mean 4.5, var 8.25
	}
	idc := IndexOfDispersion(xs, 50)
	want := 8.25 / 4.5
	if math.Abs(idc-want) > 0.4 {
		t.Errorf("IID IDC = %v, want ≈ %v", idc, want)
	}
	// Positively correlated traffic has a larger IDC at large windows.
	a := AR1{Phi: 0.98, Target: 5, Noise: 1}
	ys := make([]float64, 8000)
	for i := range ys {
		ys[i] = a.Next(rng)
	}
	if got := IndexOfDispersion(ys, 200); got < 2*IndexOfDispersion(ys, 1) {
		t.Errorf("correlated IDC did not grow with window: %v", got)
	}
}

func TestIndexOfDispersionEdges(t *testing.T) {
	if IndexOfDispersion(nil, 5) != 0 {
		t.Error("empty sample IDC != 0")
	}
	if IndexOfDispersion([]float64{1, 2, 3}, 0) != 0 {
		t.Error("window 0 IDC != 0")
	}
	if IndexOfDispersion([]float64{1, 2, 3}, 3) != 0 {
		t.Error("single window IDC != 0")
	}
	if IndexOfDispersion([]float64{0, 0, 0, 0}, 2) != 0 {
		t.Error("zero-mean IDC != 0")
	}
}
