package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactNearestRank computes the same nearest-rank quantile LogHistogram
// documents: the ceil(q*n)-th smallest sample.
func exactNearestRank(sorted []int64, q float64) int64 {
	rank := int(q*float64(len(sorted)) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestLogHistogramQuantileError is the histogram's accuracy contract:
// against adversarially shaped samples, every quantile estimate stays
// within the documented 1/2^subBits relative error of the exact
// nearest-rank quantile computed from the sorted sample.
func TestLogHistogramQuantileError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distributions := map[string]func() int64{
		// Lag-like: lognormal body with a long tail.
		"lognormal": func() int64 {
			return int64(math.Exp(rng.NormFloat64()*2 + 8))
		},
		// Heavy tail: pareto with alpha 1.2.
		"pareto": func() int64 {
			return int64(100 * math.Pow(rng.Float64(), -1/1.2))
		},
		"uniform-wide":  func() int64 { return rng.Int63n(1 << 40) },
		"uniform-small": func() int64 { return rng.Int63n(30) }, // below one sub-bucket span: exact
		"constant":      func() int64 { return 123456 },
		"bimodal": func() int64 {
			if rng.Intn(2) == 0 {
				return rng.Int63n(100)
			}
			return 1_000_000 + rng.Int63n(1000)
		},
	}
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			h := NewLogHistogram(DefaultLogHistSubBits)
			samples := make([]int64, 10000)
			for i := range samples {
				samples[i] = gen()
				if samples[i] < 0 { // mirror Add's documented clamp
					samples[i] = 0
				}
				h.Add(samples[i])
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			relBound := 1.0 / float64(int64(1)<<DefaultLogHistSubBits)
			for _, q := range quantiles {
				exact := exactNearestRank(samples, q)
				got := h.Quantile(q)
				// +1 absorbs integer midpoint rounding on tiny values.
				tol := int64(relBound*float64(exact)) + 1
				if diff := got - exact; diff > tol || diff < -tol {
					t.Errorf("q=%v: histogram %d vs exact %d (tolerance %d)", q, got, exact, tol)
				}
			}
			if h.Min() != samples[0] || h.Max() != samples[len(samples)-1] {
				t.Errorf("extremes: got [%d, %d], want [%d, %d]", h.Min(), h.Max(), samples[0], samples[len(samples)-1])
			}
			var sum int64
			for _, v := range samples {
				sum += v
			}
			if h.Sum() != sum || h.Count() != int64(len(samples)) {
				t.Errorf("sum/count: got %d/%d, want %d/%d", h.Sum(), h.Count(), sum, len(samples))
			}
		})
	}
}

// TestLogHistogramSmallValuesExact: values below 2^subBits occupy unit
// buckets, so quantiles there are exact, not just within relative error.
func TestLogHistogramSmallValuesExact(t *testing.T) {
	h := NewLogHistogram(DefaultLogHistSubBits)
	samples := make([]int64, 0, 500)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		v := rng.Int63n(32)
		samples = append(samples, v)
		h.Add(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		if got, want := h.Quantile(q), exactNearestRank(samples, q); got != want {
			t.Errorf("q=%v: got %d, want exact %d", q, got, want)
		}
	}
}

// TestLogHistogramMerge: merging shard histograms must be equivalent to
// recording everything into one histogram — the engine's per-shard
// aggregation depends on it.
func TestLogHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	whole := NewLogHistogram(DefaultLogHistSubBits)
	parts := []*LogHistogram{
		NewLogHistogram(DefaultLogHistSubBits),
		NewLogHistogram(DefaultLogHistSubBits),
		NewLogHistogram(DefaultLogHistSubBits),
	}
	for i := 0; i < 9999; i++ {
		v := int64(math.Exp(rng.NormFloat64() + 10))
		whole.Add(v)
		parts[i%len(parts)].Add(v)
	}
	merged := NewLogHistogram(DefaultLogHistSubBits)
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merge aggregates differ: %v vs %v", merged, whole)
	}
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q=%v: merged %d != whole %d", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestLogHistogramEdges(t *testing.T) {
	h := NewLogHistogram(DefaultLogHistSubBits)
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not zero-valued")
	}
	h.Add(-5) // clamps to 0
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative clamp: min=%d max=%d n=%d", h.Min(), h.Max(), h.Count())
	}
	h.Add(math.MaxInt64)
	if h.Max() != math.MaxInt64 {
		t.Fatalf("max int64 lost: %d", h.Max())
	}
	if got := h.Quantile(1); got != math.MaxInt64 {
		t.Fatalf("p100 should clamp to the exact max, got %d", got)
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(1) != 0 {
		t.Fatalf("reset did not clear")
	}

	// Bucket round-trips: every reachable bucket's low/high must map back
	// to it (buckets past bucket(MaxInt64) exist only as array padding).
	for i := 0; i <= h.bucket(math.MaxInt64); i++ {
		if h.bucket(h.bucketLow(i)) != i {
			t.Fatalf("bucketLow(%d)=%d maps to %d", i, h.bucketLow(i), h.bucket(h.bucketLow(i)))
		}
		if hi := h.bucketHigh(i); hi > 0 && h.bucket(hi) != i {
			t.Fatalf("bucketHigh(%d)=%d maps to %d", i, hi, h.bucket(hi))
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("mismatched-resolution merge did not panic")
		}
	}()
	h.Merge(NewLogHistogram(3))
}
