package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// randomPartition splits samples into k non-empty-ish histograms the way
// shards would record them (round-robin would be too regular: use a
// random owner per sample so shard loads are uneven).
func randomPartition(rng *rand.Rand, samples []int64, k int) []*LogHistogram {
	parts := make([]*LogHistogram, k)
	for i := range parts {
		parts[i] = NewLogHistogram(DefaultLogHistSubBits)
	}
	for _, v := range samples {
		parts[rng.Intn(k)].Add(v)
	}
	return parts
}

// TestLogHistogramMergeQuantileBound is the scrape-merge accuracy
// contract: after merging arbitrarily partitioned shard histograms, every
// quantile estimate still lies within the documented 1/2^subBits relative
// error of the exact sorted-sample quantile. Merging must not compound
// the error — buckets align exactly, so a merged histogram is identical
// to one that saw every sample directly.
func TestLogHistogramMergeQuantileBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gens := map[string]func() int64{
		"lognormal": func() int64 { return int64(math.Exp(rng.NormFloat64()*2 + 8)) },
		"pareto":    func() int64 { return int64(50 * math.Pow(rng.Float64(), -1/1.3)) },
		"uniform":   func() int64 { return rng.Int63n(1 << 35) },
		"bimodal": func() int64 {
			if rng.Intn(2) == 0 {
				return rng.Int63n(64)
			}
			return 500_000 + rng.Int63n(5000)
		},
	}
	relBound := 1.0 / float64(int64(1)<<DefaultLogHistSubBits)
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			for _, shards := range []int{2, 7, 16} {
				samples := make([]int64, 8000)
				for i := range samples {
					samples[i] = gen()
				}
				parts := randomPartition(rng, samples, shards)
				merged := NewLogHistogram(DefaultLogHistSubBits)
				for _, p := range parts {
					merged.Merge(p)
				}
				sorted := append([]int64(nil), samples...)
				sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
				for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
					exact := exactNearestRank(sorted, q)
					got := merged.Quantile(q)
					tol := int64(relBound*float64(exact)) + 1
					if diff := got - exact; diff > tol || diff < -tol {
						t.Errorf("shards=%d q=%v: merged %d vs exact %d (tolerance %d)", shards, q, got, exact, tol)
					}
				}
				// Exact extremes must survive the merge even when the min
				// and max were recorded by different shards.
				if merged.Min() != sorted[0] || merged.Max() != sorted[len(sorted)-1] {
					t.Errorf("shards=%d extremes: got [%d, %d], want [%d, %d]",
						shards, merged.Min(), merged.Max(), sorted[0], sorted[len(sorted)-1])
				}
			}
		})
	}
}

// TestLogHistogramMergeOrderInvariance: merging the same shard set in any
// order — including merging into a non-empty accumulator — yields
// bit-identical state. The /metrics determinism contract rests on this.
func TestLogHistogramMergeOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(6)
		samples := make([]int64, 500+rng.Intn(3000))
		for i := range samples {
			samples[i] = int64(math.Exp(rng.NormFloat64()*3 + 6))
		}
		parts := randomPartition(rng, samples, k)

		mergeIn := func(order []int) *LogHistogram {
			acc := NewLogHistogram(DefaultLogHistSubBits)
			for _, idx := range order {
				acc.Merge(parts[idx])
			}
			return acc
		}
		fwd := make([]int, k)
		for i := range fwd {
			fwd[i] = i
		}
		ref := mergeIn(fwd)
		for perm := 0; perm < 5; perm++ {
			order := append([]int(nil), fwd...)
			rng.Shuffle(k, func(i, j int) { order[i], order[j] = order[j], order[i] })
			got := mergeIn(order)
			if got.Count() != ref.Count() || got.Sum() != ref.Sum() ||
				got.Min() != ref.Min() || got.Max() != ref.Max() {
				t.Fatalf("trial %d order %v: aggregates differ: %v vs %v", trial, order, got, ref)
			}
			for i := range got.counts {
				if got.counts[i] != ref.counts[i] {
					t.Fatalf("trial %d order %v: bucket %d differs: %d vs %d",
						trial, order, i, got.counts[i], ref.counts[i])
				}
			}
		}
	}
}

// TestLogHistogramCopyFrom: a published snapshot must be bit-identical to
// its source and fully detached from later writes.
func TestLogHistogramCopyFrom(t *testing.T) {
	src := NewLogHistogram(DefaultLogHistSubBits)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		src.Add(rng.Int63n(1 << 30))
	}
	dst := NewLogHistogram(DefaultLogHistSubBits)
	dst.Add(777) // stale state a reused snapshot would carry
	dst.CopyFrom(src)
	if dst.Count() != src.Count() || dst.Sum() != src.Sum() || dst.Min() != src.Min() || dst.Max() != src.Max() {
		t.Fatalf("copy aggregates differ: %v vs %v", dst, src)
	}
	for i := range dst.counts {
		if dst.counts[i] != src.counts[i] {
			t.Fatalf("bucket %d differs after copy", i)
		}
	}
	before := dst.Count()
	src.Add(123)
	if dst.Count() != before {
		t.Fatal("copy aliases the source bucket array")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("mismatched-resolution CopyFrom did not panic")
		}
	}()
	dst.CopyFrom(NewLogHistogram(3))
}

// TestLogHistogramSetDelta: the SLO accountant's windowing — the delta of
// two cumulative snapshots must reproduce exactly the observations that
// arrived in between, and a source reset (cumulative count shrinking)
// must restart the window rather than produce negative buckets.
func TestLogHistogramSetDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cum := NewLogHistogram(DefaultLogHistSubBits)
	prev := NewLogHistogram(DefaultLogHistSubBits)
	window := NewLogHistogram(DefaultLogHistSubBits)

	for i := 0; i < 500; i++ {
		cum.Add(rng.Int63n(1 << 20))
	}
	prev.CopyFrom(cum)

	fresh := make([]int64, 2000)
	for i := range fresh {
		fresh[i] = int64(math.Exp(rng.NormFloat64()*2 + 9))
		cum.Add(fresh[i])
	}
	window.SetDelta(cum, prev)
	sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
	if window.Count() != int64(len(fresh)) {
		t.Fatalf("window count %d, want %d", window.Count(), len(fresh))
	}
	var sum int64
	for _, v := range fresh {
		sum += v
	}
	if window.Sum() != sum {
		t.Fatalf("window sum %d, want %d", window.Sum(), sum)
	}
	// Bucket counts of the window must equal a direct recording; quantiles
	// then inherit the usual relative bound (min/max are bucket-edge
	// approximations, documented on SetDelta).
	direct := NewLogHistogram(DefaultLogHistSubBits)
	for _, v := range fresh {
		direct.Add(v)
	}
	for i := range window.counts {
		if window.counts[i] != direct.counts[i] {
			t.Fatalf("window bucket %d: %d vs direct %d", i, window.counts[i], direct.counts[i])
		}
	}
	relBound := 1.0 / float64(int64(1)<<DefaultLogHistSubBits)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := exactNearestRank(fresh, q)
		got := window.Quantile(q)
		tol := 2*int64(relBound*float64(exact)) + 2 // window min/max are approximate: midpoints clamp to bucket edges, not exact extremes
		if diff := got - exact; diff > tol || diff < -tol {
			t.Errorf("q=%v: window %d vs exact %d (tolerance %d)", q, got, exact, tol)
		}
	}
	if window.Min() > exactNearestRank(fresh, 0) || window.Max() < exactNearestRank(fresh, 1) {
		t.Errorf("window extremes [%d, %d] exclude the true extremes [%d, %d]",
			window.Min(), window.Max(), fresh[0], fresh[len(fresh)-1])
	}

	// Reset detection: the load generator clears its lag histogram per
	// wave; the next delta must be the fresh distribution, not garbage.
	prev.CopyFrom(cum)
	cum.Reset()
	cum.Add(42)
	cum.Add(87)
	window.SetDelta(cum, prev)
	if window.Count() != 2 || window.Min() != 42 || window.Max() != 87 {
		t.Fatalf("reset window: n=%d min=%d max=%d, want 2/42/87", window.Count(), window.Min(), window.Max())
	}

	// Empty delta: no new observations → empty window.
	prev.CopyFrom(cum)
	window.SetDelta(cum, prev)
	if window.Count() != 0 || window.Quantile(0.99) != 0 {
		t.Fatalf("empty window not empty: n=%d", window.Count())
	}
}
