// Package linksim models communication links with propagation-delay jitter
// and the jitter-control regulator that restores the paper's 0-jitter
// abstraction.
//
// The paper (Section 2.2) assumes a lossless FIFO link whose delay is a
// constant P, justified by jitter-control algorithms: if the raw network
// delays each byte by P plus a bounded jitter in [0, J], a regulator at the
// receiver that releases every byte exactly at sendTime + P + J presents
// the client with a perfectly constant-delay link, at the cost of J extra
// delay and up to R·J extra buffer. Simulate demonstrates exactly this: a
// run over a jittery link with a regulator is byte-for-byte identical to a
// run over a constant-delay link of P+J. SimulateUnregulated shows what the
// jitter does to the naive client without the regulator.
package linksim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stream"
)

// JitterLink delivers byte batches with delay P + jitter, where jitter is
// drawn per step from a deterministic source, uniformly in [0, Jitter].
// The link does not reorder within a step, but jitter may reorder batches
// sent in different steps; the regulator (or the client) must cope.
type JitterLink struct {
	// Delay is the base propagation delay P.
	Delay int
	// Jitter is the maximum extra delay J.
	Jitter int

	rng      *rand.Rand
	inFlight map[int][]Timestamped // arrival step -> batches
	pending  int
}

// Timestamped is a byte batch annotated with its send step, as a real
// transport would stamp packets for jitter control.
type Timestamped struct {
	core.Batch
	SentAt int
}

// NewJitterLink returns a link with the given base delay, jitter bound and
// deterministic seed.
func NewJitterLink(delay, jitter int, seed int64) (*JitterLink, error) {
	if delay < 0 || jitter < 0 {
		return nil, fmt.Errorf("linksim: negative delay %d or jitter %d", delay, jitter)
	}
	return &JitterLink{
		Delay:    delay,
		Jitter:   jitter,
		rng:      rand.New(rand.NewSource(seed)),
		inFlight: make(map[int][]Timestamped),
	}, nil
}

// Push submits the batches sent at step t. All batches of one step share
// one jitter draw (they ride the same packet train).
func (l *JitterLink) Push(t int, batches []core.Batch) {
	if len(batches) == 0 {
		return
	}
	j := 0
	if l.Jitter > 0 {
		j = l.rng.Intn(l.Jitter + 1)
	}
	at := t + l.Delay + j
	for _, b := range batches {
		l.inFlight[at] = append(l.inFlight[at], Timestamped{Batch: b, SentAt: t})
		l.pending += b.Bytes
	}
}

// Pop removes and returns the batches arriving at step t, oldest send step
// first.
func (l *JitterLink) Pop(t int) []Timestamped {
	out := l.inFlight[t]
	delete(l.inFlight, t)
	for _, b := range out {
		l.pending -= b.Bytes
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].SentAt < out[j].SentAt })
	return out
}

// Empty reports whether no bytes are in flight.
func (l *JitterLink) Empty() bool { return l.pending == 0 }

// Regulator re-times deliveries to a constant total delay: a batch sent at
// step s is released exactly at step s + Total, where Total >= the link's
// worst-case delay. It is the jitter-control buffer of Section 2.2.
type Regulator struct {
	// Total is the constant delay the regulator enforces.
	Total int
	held  map[int][]core.Batch // release step -> batches
	bytes int
	max   int
}

// NewRegulator returns a regulator enforcing the given total delay.
func NewRegulator(total int) *Regulator {
	return &Regulator{Total: total, held: make(map[int][]core.Batch)}
}

// Offer hands the regulator batches that just arrived from the link.
// Batches whose release step has already passed are released immediately
// at the next Release call (they indicate Total was set below the link's
// actual worst case).
func (r *Regulator) Offer(now int, batches []Timestamped) {
	for _, b := range batches {
		release := b.SentAt + r.Total
		if release < now {
			release = now
		}
		r.held[release] = append(r.held[release], b.Batch)
		r.bytes += b.Bytes
		if r.bytes > r.max {
			r.max = r.bytes
		}
	}
}

// Release returns the batches due at step t, in send order.
func (r *Regulator) Release(t int) []core.Batch {
	out := r.held[t]
	delete(r.held, t)
	for _, b := range out {
		r.bytes -= b.Bytes
	}
	return out
}

// MaxOccupancy returns the peak number of bytes the regulator buffered.
func (r *Regulator) MaxOccupancy() int { return r.max }

// Empty reports whether the regulator holds no bytes.
func (r *Regulator) Empty() bool { return r.bytes == 0 }

// Simulate runs the generic algorithm over a jittery link with a regulator
// enforcing total delay P+J. The returned schedule has LinkDelay = P+J and
// is a legal constant-delay schedule: jitter control makes the jittery link
// indistinguishable from a slower constant link (the justification for the
// paper's 0-jitter model). The regulator's peak occupancy is returned too.
func Simulate(st *stream.Stream, cfg core.Config, jitter int, seed int64) (*sched.Schedule, int, error) {
	if jitter < 0 {
		return nil, 0, fmt.Errorf("linksim: negative jitter %d", jitter)
	}
	link, err := NewJitterLink(cfg.LinkDelay, jitter, seed)
	if err != nil {
		return nil, 0, err
	}
	reg := NewRegulator(cfg.LinkDelay + jitter)

	// Mirror core.Simulate, with link+regulator in the middle and the
	// client configured for the regulated total delay.
	effective := cfg
	effective.LinkDelay = cfg.LinkDelay + jitter
	rs, server, client, err := newRun(st, effective)
	if err != nil {
		return nil, 0, err
	}
	schedule := rs.schedule
	bound := st.Horizon() + schedule.Params.LinkDelay + schedule.Params.Delay +
		st.TotalBytes()/schedule.Params.Rate + 16
	for t := 0; t <= st.Horizon() || rs.count < st.Len() || !server.Empty() || !link.Empty() || !reg.Empty(); t++ {
		res := server.Step(t, st.ArrivalsAt(t))
		rs.noteServer(t, res)
		link.Push(t, res.Sent)
		reg.Offer(t, link.Pop(t))
		cres := client.Step(t, reg.Release(t))
		rs.noteClient(t, cres, server)
		schedule.SentPerStep = append(schedule.SentPerStep, res.SentBytes)
		schedule.ServerOcc = append(schedule.ServerOcc, res.Occupancy)
		schedule.ClientOcc = append(schedule.ClientOcc, cres.Occupancy)
		if t > bound {
			return nil, 0, fmt.Errorf("linksim: simulation failed to terminate by step %d", t)
		}
	}
	return schedule, reg.MaxOccupancy(), nil
}

// UnregulatedResult summarizes a run without jitter control.
type UnregulatedResult struct {
	Played, DroppedServer, DroppedLate int
}

// SimulateUnregulated runs the generic algorithm over a jittery link with
// NO jitter control: the client still expects every byte P steps after it
// was sent, so positive jitter makes bytes miss their deadlines. It returns
// the outcome counts — the damage jitter does without a regulator.
func SimulateUnregulated(st *stream.Stream, cfg core.Config, jitter int, seed int64) (UnregulatedResult, error) {
	if jitter < 0 {
		return UnregulatedResult{}, fmt.Errorf("linksim: negative jitter %d", jitter)
	}
	link, err := NewJitterLink(cfg.LinkDelay, jitter, seed)
	if err != nil {
		return UnregulatedResult{}, err
	}
	rs, server, client, err := newRun(st, cfg)
	if err != nil {
		return UnregulatedResult{}, err
	}
	var out UnregulatedResult
	bound := st.Horizon() + rs.schedule.Params.LinkDelay + jitter + rs.schedule.Params.Delay +
		st.TotalBytes()/rs.schedule.Params.Rate + 16
	for t := 0; t <= st.Horizon() || rs.count < st.Len() || !server.Empty() || !link.Empty(); t++ {
		res := server.Step(t, st.ArrivalsAt(t))
		rs.noteServer(t, res)
		out.DroppedServer += len(res.Dropped)
		link.Push(t, res.Sent)
		arrivals := link.Pop(t)
		batches := make([]core.Batch, len(arrivals))
		for i, a := range arrivals {
			batches[i] = a.Batch
		}
		cres := client.Step(t, batches)
		rs.noteClient(t, cres, server)
		out.Played += len(cres.Played)
		if t > bound {
			return out, fmt.Errorf("linksim: simulation failed to terminate by step %d", t)
		}
	}
	out.DroppedLate = st.Len() - out.Played - out.DroppedServer
	return out, nil
}

// runState tracks per-slice resolution while mirroring core.Simulate's
// bookkeeping for linksim's two drivers.
type runState struct {
	schedule    *sched.Schedule
	count       int
	pendingLate map[int]int
}

func newRun(st *stream.Stream, cfg core.Config) (*runState, *core.Server, *core.Client, error) {
	schedule, server, client, err := core.NewComponents(st, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return &runState{schedule: schedule, pendingLate: make(map[int]int)}, server, client, nil
}

func (rs *runState) noteServer(t int, res core.ServerStepResult) {
	for _, d := range res.Dropped {
		delete(rs.pendingLate, d.ID)
		if rs.schedule.Outcomes[d.ID].DropTime == sched.None {
			rs.schedule.Outcomes[d.ID].DropTime = t
			rs.schedule.Outcomes[d.ID].DropSite = sched.SiteServer
			rs.count++
		}
	}
	for _, b := range res.Sent {
		if o := &rs.schedule.Outcomes[b.SliceID]; o.SendStart == sched.None {
			o.SendStart = t
		}
	}
	for _, id := range res.Finished {
		rs.schedule.Outcomes[id].SendEnd = t
		if lateAt, ok := rs.pendingLate[id]; ok {
			delete(rs.pendingLate, id)
			rs.schedule.Outcomes[id].DropTime = lateAt
			rs.schedule.Outcomes[id].DropSite = sched.SiteClient
			rs.count++
		}
	}
}

func (rs *runState) noteClient(t int, cres core.ClientStepResult, server *core.Server) {
	for _, id := range cres.Played {
		rs.schedule.Outcomes[id].PlayTime = t
		rs.count++
	}
	for _, id := range cres.Dropped {
		if rs.schedule.Outcomes[id].DropTime != sched.None {
			continue
		}
		if server.Contains(id) {
			rs.pendingLate[id] = t
			continue
		}
		rs.schedule.Outcomes[id].DropTime = t
		rs.schedule.Outcomes[id].DropSite = sched.SiteClient
		rs.count++
	}
}
