package linksim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/stream"
)

func randomStream(rng *rand.Rand) *stream.Stream {
	b := stream.NewBuilder()
	n := rng.Intn(25) + 1
	for i := 0; i < n; i++ {
		b.Add(rng.Intn(12), rng.Intn(3)+1, float64(rng.Intn(10)+1))
	}
	return b.MustBuild()
}

func TestJitterLinkDelivery(t *testing.T) {
	l, err := NewJitterLink(2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.Push(0, []core.Batch{{SliceID: 1, Bytes: 3}})
	if got := l.Pop(0); len(got) != 0 {
		t.Errorf("delivered at step 0 with delay 2: %v", got)
	}
	if got := l.Pop(2); len(got) != 1 || got[0].SliceID != 1 || got[0].SentAt != 0 {
		t.Errorf("Pop(2) = %v", got)
	}
	if !l.Empty() {
		t.Error("link not empty after delivery")
	}
}

func TestJitterLinkBounds(t *testing.T) {
	const (
		P = 1
		J = 3
	)
	l, err := NewJitterLink(P, J, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Push one batch per step; each must arrive within [P, P+J] of its
	// send step.
	for s := 0; s < 50; s++ {
		l.Push(s, []core.Batch{{SliceID: s, Bytes: 1}})
	}
	got := map[int]int{} // slice -> arrival
	for t2 := 0; t2 < 60; t2++ {
		for _, b := range l.Pop(t2) {
			got[b.SliceID] = t2
		}
	}
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50 batches", len(got))
	}
	for s, at := range got {
		if at < s+P || at > s+P+J {
			t.Errorf("batch %d arrived at %d, window [%d, %d]", s, at, s+P, s+P+J)
		}
	}
}

func TestJitterLinkErrors(t *testing.T) {
	if _, err := NewJitterLink(-1, 0, 1); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := NewJitterLink(0, -1, 1); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestRegulatorConstantDelay(t *testing.T) {
	r := NewRegulator(5)
	r.Offer(3, []Timestamped{{Batch: core.Batch{SliceID: 1, Bytes: 2}, SentAt: 0}})
	if got := r.Release(4); len(got) != 0 {
		t.Errorf("released early: %v", got)
	}
	if got := r.Release(5); len(got) != 1 || got[0].SliceID != 1 {
		t.Errorf("Release(5) = %v", got)
	}
	if !r.Empty() {
		t.Error("regulator not empty")
	}
	if r.MaxOccupancy() != 2 {
		t.Errorf("max occupancy = %d, want 2", r.MaxOccupancy())
	}
}

func TestRegulatorLateBatchReleasedImmediately(t *testing.T) {
	r := NewRegulator(2)
	// Arrives at step 10 but was sent at 0 (release due at 2): released
	// at the now step.
	r.Offer(10, []Timestamped{{Batch: core.Batch{SliceID: 9, Bytes: 1}, SentAt: 0}})
	if got := r.Release(10); len(got) != 1 {
		t.Errorf("late batch not released at now: %v", got)
	}
}

// TestRegulatedEqualsConstantLink — the headline property: generic run over
// a jittery link with a regulator is identical to a run over a constant
// P+J link.
func TestRegulatedEqualsConstantLink(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStream(rng)
		P := rng.Intn(3)
		J := rng.Intn(4)
		rate := rng.Intn(3) + 1
		B := rate * (rng.Intn(5) + st.MaxSliceSize())
		cfg := core.Config{ServerBuffer: B, Rate: rate, LinkDelay: P}

		jittered, _, err := Simulate(st, cfg, J, seed)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := jittered.Validate(); err != nil {
			t.Logf("seed %d: regulated schedule invalid: %v", seed, err)
			return false
		}
		plain := cfg
		plain.LinkDelay = P + J
		want, err := core.Simulate(st, plain)
		if err != nil {
			return false
		}
		if len(jittered.Outcomes) != len(want.Outcomes) {
			return false
		}
		for i := range want.Outcomes {
			if jittered.Outcomes[i] != want.Outcomes[i] {
				t.Logf("seed %d: outcome %d differs: %+v vs %+v",
					seed, i, jittered.Outcomes[i], want.Outcomes[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRegulatorOccupancyBounded(t *testing.T) {
	// The regulator never holds more than R*(J+1) bytes (bytes of at
	// most J+1 send steps can await release simultaneously).
	rng := rand.New(rand.NewSource(3))
	st := randomStream(rng)
	const (
		R = 3
		J = 4
	)
	_, occ, err := Simulate(st, core.Config{ServerBuffer: 3 * R, Rate: R}, J, 5)
	if err != nil {
		t.Fatal(err)
	}
	if occ > R*(J+1) {
		t.Errorf("regulator occupancy %d exceeds R*(J+1) = %d", occ, R*(J+1))
	}
}

// TestUnregulatedJitterHurts — without jitter control, jitter causes
// lateness loss that the regulated system does not suffer.
func TestUnregulatedJitterHurts(t *testing.T) {
	// A steady stream at exactly the link rate; any positive jitter makes
	// some bytes late for the naive client.
	b := stream.NewBuilder()
	for i := 0; i < 60; i++ {
		b.Add(i, 2, 2)
	}
	st := b.MustBuild()
	cfg := core.Config{ServerBuffer: 4, Rate: 2, LinkDelay: 1}

	res, err := SimulateUnregulated(st, cfg, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedLate == 0 {
		t.Error("expected late drops from unregulated jitter")
	}
	if res.Played+res.DroppedServer+res.DroppedLate != st.Len() {
		t.Errorf("outcome counts do not add up: %+v vs %d slices", res, st.Len())
	}

	// The regulated run plays everything.
	sch, _, err := Simulate(st, cfg, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if sch.DroppedSlices() != 0 {
		t.Errorf("regulated run dropped %d slices", sch.DroppedSlices())
	}
}

func TestUnregulatedZeroJitterMatchesPlain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStream(rng)
		rate := rng.Intn(3) + 1
		B := rate * (rng.Intn(4) + st.MaxSliceSize())
		cfg := core.Config{ServerBuffer: B, Rate: rate, LinkDelay: rng.Intn(3)}
		res, err := SimulateUnregulated(st, cfg, 0, seed)
		if err != nil {
			return false
		}
		plain, err := core.Simulate(st, cfg)
		if err != nil {
			return false
		}
		played := 0
		for _, o := range plain.Outcomes {
			if o.Played() {
				played++
			}
		}
		return res.Played == played
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSimulateErrors(t *testing.T) {
	st := stream.NewBuilder().Add(0, 1, 1).MustBuild()
	if _, _, err := Simulate(st, core.Config{ServerBuffer: 1, Rate: 1}, -1, 1); err == nil {
		t.Error("negative jitter accepted")
	}
	if _, err := SimulateUnregulated(st, core.Config{ServerBuffer: 1, Rate: 1}, -1, 1); err == nil {
		t.Error("negative jitter accepted (unregulated)")
	}
	if _, _, err := Simulate(st, core.Config{ServerBuffer: 0, Rate: 1}, 0, 1); err == nil {
		t.Error("invalid config accepted")
	}
}
