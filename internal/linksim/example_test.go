package linksim_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/linksim"
	"repro/internal/stream"
)

// Example runs the same smoothing session over a link with up to 3 steps
// of jitter, with and without the jitter-control regulator of Section 2.2.
func Example() {
	b := stream.NewBuilder()
	for t := 0; t < 40; t++ {
		b.Add(t, 2, 2)
	}
	st := b.MustBuild()
	cfg := core.Config{ServerBuffer: 4, Rate: 2, LinkDelay: 1}

	raw, _ := linksim.SimulateUnregulated(st, cfg, 3, 7)
	fmt.Printf("no regulator:   %d of %d slices played\n", raw.Played, st.Len())

	sch, regBuf, _ := linksim.Simulate(st, cfg, 3, 7)
	played := 0
	for _, o := range sch.Outcomes {
		if o.Played() {
			played++
		}
	}
	fmt.Printf("with regulator: %d of %d played, total delay P+J = %d, regulator buffer %d\n",
		played, st.Len(), sch.Params.LinkDelay, regBuf)
	// Output:
	// no regulator:   32 of 40 slices played
	// with regulator: 40 of 40 played, total delay P+J = 4, regulator buffer 8
}
