package alternatives

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/stream"
	"repro/internal/trace"
)

func clipStream(t *testing.T, frames int) *stream.Stream {
	t.Helper()
	cfg := trace.DefaultGenConfig()
	cfg.Frames = frames
	clip, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.WholeFrameStream(clip, trace.PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestTruncationKeepsValuableWithinFrame(t *testing.T) {
	// One frame of three slices; R fits only the two most valuable per
	// byte.
	st := stream.NewBuilder().
		Add(0, 2, 2).  // byte value 1
		Add(0, 2, 20). // byte value 10
		Add(0, 2, 8).  // byte value 4
		MustBuild()
	res, err := Truncation(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlayedBytes != 4 {
		t.Errorf("played %d bytes, want 4", res.PlayedBytes)
	}
	if res.Benefit != 28 {
		t.Errorf("benefit %v, want 28 (the two high-value slices)", res.Benefit)
	}
	if math.Abs(res.WeightedLoss-2.0/30) > 1e-9 {
		t.Errorf("weighted loss %v", res.WeightedLoss)
	}
}

func TestTruncationErrors(t *testing.T) {
	st := stream.NewBuilder().Add(0, 1, 1).MustBuild()
	if _, err := Truncation(st, 0); err == nil {
		t.Error("R=0 accepted")
	}
}

func TestTruncationNeverBeatsSmoothing(t *testing.T) {
	// Property: at equal rate, smoothing with any positive buffer
	// delivers at least the truncation benefit.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := stream.NewBuilder()
		for i := 0; i < rng.Intn(25)+1; i++ {
			b.Add(rng.Intn(10), rng.Intn(3)+1, float64(rng.Intn(20)+1))
		}
		st := b.MustBuild()
		R := rng.Intn(4) + 1
		tr, err := Truncation(st, R)
		if err != nil {
			return false
		}
		B := R * (rng.Intn(5) + st.MaxSliceSize())
		s, err := core.Simulate(st, core.Config{ServerBuffer: B, Rate: R, Policy: drop.Greedy})
		if err != nil {
			return false
		}
		// Smoothing can deliver slices truncation can't (it may also make
		// different value choices, so compare throughput of *bytes* too).
		return s.Benefit() >= tr.Benefit-1e-9 || s.Throughput() >= tr.PlayedBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPeakRate(t *testing.T) {
	st := stream.NewBuilder().AddFrame(0, 2, 3).AddFrame(1, 7).MustBuild()
	if got := PeakRate(st); got != 7 {
		t.Errorf("PeakRate = %d, want 7", got)
	}
}

func TestRenegotiateLossless(t *testing.T) {
	st := clipStream(t, 500)
	for _, w := range []int{1, 4, 16, 64} {
		plan, err := Renegotiate(st, w)
		if err != nil {
			t.Fatal(err)
		}
		// Total reserved capacity must cover the stream.
		var capacity int64
		for _, r := range plan.Rates {
			capacity += int64(r) * int64(w)
		}
		if capacity < int64(st.TotalBytes()) {
			t.Errorf("w=%d: reserved %d < stream %d", w, capacity, st.TotalBytes())
		}
		if plan.Peak < int(st.AverageRate()) {
			t.Errorf("w=%d: peak %d below the average rate", w, plan.Peak)
		}
		if plan.Renegotiations >= len(plan.Rates) {
			t.Errorf("w=%d: %d renegotiations for %d windows", w, plan.Renegotiations, len(plan.Rates))
		}
	}
}

func TestRenegotiatePeakDecreasesWithWindow(t *testing.T) {
	st := clipStream(t, 800)
	p1, err := Renegotiate(st, 1)
	if err != nil {
		t.Fatal(err)
	}
	p32, err := Renegotiate(st, 32)
	if err != nil {
		t.Fatal(err)
	}
	if p32.Peak >= p1.Peak {
		t.Errorf("peak did not decrease with window: %d (w=1) vs %d (w=32)", p1.Peak, p32.Peak)
	}
	// w=1 renegotiates nearly every step and needs no buffer beyond one
	// window's arrivals; its peak equals the peak frame rate.
	if p1.Peak != st.PeakFrameBytes() {
		t.Errorf("w=1 peak %d != peak frame %d", p1.Peak, st.PeakFrameBytes())
	}
}

func TestRenegotiateEdges(t *testing.T) {
	if _, err := Renegotiate(stream.NewBuilder().MustBuild(), 0); err == nil {
		t.Error("window 0 accepted")
	}
	plan, err := Renegotiate(stream.NewBuilder().MustBuild(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Rates) != 0 || plan.Peak != 0 {
		t.Errorf("empty stream plan = %+v", plan)
	}
}

func TestMinRateForLoss(t *testing.T) {
	st := clipStream(t, 400)
	const D = 16
	R, err := MinRateForLoss(st, D, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// The found rate meets the target…
	s, err := core.Simulate(st, core.Config{ServerBuffer: R * D, Rate: R, Delay: D, Policy: drop.Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if s.WeightedLoss() > 0.01 {
		t.Errorf("R=%d misses the 1%% target: %v", R, s.WeightedLoss())
	}
	// …and sits well below the peak (smoothing pays off).
	if R >= st.PeakFrameBytes() {
		t.Errorf("MinRateForLoss returned the peak rate %d — no gain from smoothing?", R)
	}
	// Zero-loss target must need at least as much rate.
	R0, err := MinRateForLoss(st, D, 0)
	if err != nil {
		t.Fatal(err)
	}
	if R0 < R {
		t.Errorf("zero-loss rate %d below 1%%-loss rate %d", R0, R)
	}
}

func TestMinRateForLossErrors(t *testing.T) {
	st := stream.NewBuilder().Add(0, 1, 1).MustBuild()
	if _, err := MinRateForLoss(st, 0, 0.1); err == nil {
		t.Error("delay 0 accepted")
	}
	if _, err := MinRateForLoss(st, 1, 1); err == nil {
		t.Error("target 1 accepted")
	}
	if _, err := MinRateForLoss(st, 1, -0.1); err == nil {
		t.Error("negative target accepted")
	}
}

func TestRenegotiateDrainsWithinWindows(t *testing.T) {
	// Property: replaying the plan's rates against the arrivals, the
	// backlog at every window boundary is zero — each window's rate was
	// sized to clear the carried backlog plus that window's arrivals.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := stream.NewBuilder()
		for i := 0; i < rng.Intn(40)+1; i++ {
			b.Add(rng.Intn(30), rng.Intn(5)+1, 1)
		}
		st := b.MustBuild()
		w := rng.Intn(6) + 1
		plan, err := Renegotiate(st, w)
		if err != nil {
			return false
		}
		backlog := 0
		for wi, rate := range plan.Rates {
			arr := 0
			for t2 := wi * w; t2 < (wi+1)*w; t2++ {
				for _, sl := range st.ArrivalsAt(t2) {
					arr += sl.Size
				}
			}
			backlog += arr
			drained := rate * w
			if drained > backlog {
				drained = backlog
			}
			backlog -= drained
			if backlog != 0 {
				t.Logf("seed %d: window %d leaves backlog %d at rate %d", seed, wi, backlog, rate)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
