// Package alternatives implements the classical alternatives to smoothing
// that the paper's introduction enumerates, so they can be compared on the
// same traces under the same question — how much bandwidth does a given
// latency budget buy?
//
//   - Truncation: no buffer, no delay; each frame is cut down to the link
//     rate on arrival ("degradation of service by truncating the stream to
//     the link rate");
//   - Peak reservation: allocate the peak frame rate; zero loss, zero
//     smoothing delay, massive under-utilization;
//   - Renegotiated CBR (RCBR-style): a constant rate per window of W steps,
//     renegotiated at window boundaries with one window of lookahead;
//     lossless, delay W, plus a count of renegotiations (each of which
//     costs signalling in a real network);
//   - Lossy smoothing (this paper): the generic algorithm with B = R·D;
//     MinRateForLoss finds the bandwidth needed to keep the weighted loss
//     under a target;
//   - Lossless smoothing: package lossless's exact MinRateForDelay.
package alternatives

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/stream"
)

// TruncationResult reports the outcome of bufferless truncation.
type TruncationResult struct {
	// PlayedBytes and Benefit are the delivered totals.
	PlayedBytes int
	Benefit     float64
	// ByteLoss and WeightedLoss are fractions of the offered stream.
	ByteLoss     float64
	WeightedLoss float64
}

// Truncation transmits each frame in its arrival step only: the most
// valuable whole slices that fit in R bytes survive; the rest of the frame
// is discarded. There is no buffer and no smoothing delay.
func Truncation(st *stream.Stream, R int) (*TruncationResult, error) {
	if R <= 0 {
		return nil, fmt.Errorf("alternatives: non-positive rate %d", R)
	}
	res := &TruncationResult{}
	for t := 0; t <= st.Horizon(); t++ {
		frame := st.ArrivalsAt(t)
		if len(frame) == 0 {
			continue
		}
		// Highest byte value first; ties to smaller ID for determinism.
		order := make([]stream.Slice, len(frame))
		copy(order, frame)
		sortByByteValueDesc(order)
		budget := R
		for _, sl := range order {
			if sl.Size <= budget {
				budget -= sl.Size
				res.PlayedBytes += sl.Size
				res.Benefit += sl.Weight
			}
		}
	}
	if tb := st.TotalBytes(); tb > 0 {
		res.ByteLoss = float64(tb-res.PlayedBytes) / float64(tb)
	}
	if tw := st.TotalWeight(); tw > 0 {
		res.WeightedLoss = (tw - res.Benefit) / tw
	}
	return res, nil
}

func sortByByteValueDesc(slices []stream.Slice) {
	// Insertion sort: frames are small; avoids pulling in sort for a
	// custom multi-key comparison... but sort is clearer:
	for i := 1; i < len(slices); i++ {
		for j := i; j > 0; j-- {
			a, b := slices[j-1], slices[j]
			if a.ByteValue() > b.ByteValue() || (a.ByteValue() == b.ByteValue() && a.ID < b.ID) {
				break
			}
			slices[j-1], slices[j] = b, a
		}
	}
}

// PeakRate returns the rate a peak-allocation reservation needs: the
// largest frame size (everything must cross the link in its arrival step).
func PeakRate(st *stream.Stream) int { return st.PeakFrameBytes() }

// RenegotiatedPlan is a piecewise-CBR transmission plan with one rate per
// window.
type RenegotiatedPlan struct {
	// Window is the renegotiation interval W (also the playout delay).
	Window int
	// Rates holds one rate per window, covering the whole stream.
	Rates []int
	// Renegotiations counts rate *changes* between consecutive windows.
	Renegotiations int
	// Peak and Mean summarize the reserved rates.
	Peak int
	Mean float64
	// Buffer is the server buffer the plan needs.
	Buffer int
}

// Renegotiate computes the RCBR-style plan: for each window of W steps the
// reserved rate is just enough to clear the window's arrivals plus any
// carried backlog, i.e. ceil((backlog + arrivals)/W). With one window of
// lookahead this is lossless and every byte leaves the server within W
// steps of its arrival window's end, so playout delay 2W is always safe
// (W of lookahead + W of draining).
func Renegotiate(st *stream.Stream, window int) (*RenegotiatedPlan, error) {
	if window <= 0 {
		return nil, fmt.Errorf("alternatives: non-positive window %d", window)
	}
	plan := &RenegotiatedPlan{Window: window}
	if st.Horizon() < 0 {
		return plan, nil
	}
	backlog := 0
	maxBacklog := 0
	var totalRate int64
	prev := -1
	for start := 0; start <= st.Horizon(); start += window {
		arr := 0
		for t := start; t < start+window; t++ {
			for _, sl := range st.ArrivalsAt(t) {
				arr += sl.Size
			}
		}
		need := backlog + arr
		rate := (need + window - 1) / window
		plan.Rates = append(plan.Rates, rate)
		if rate != prev && prev >= 0 {
			plan.Renegotiations++
		}
		prev = rate
		if rate > plan.Peak {
			plan.Peak = rate
		}
		totalRate += int64(rate)
		sent := rate * window
		if sent > need {
			sent = need
		}
		backlog = need - sent
		if need > maxBacklog {
			maxBacklog = need
		}
	}
	plan.Buffer = maxBacklog
	if len(plan.Rates) > 0 {
		plan.Mean = float64(totalRate) / float64(len(plan.Rates))
	}
	return plan, nil
}

// MinRateForLoss returns the smallest link rate R such that the generic
// algorithm with the greedy policy, B = R·D for the given delay, keeps the
// weighted loss at or below target (a fraction in [0, 1)). The search is
// binary over R up to the peak frame rate (at which truncation-free
// delivery is trivially lossless) with a final verification; weighted loss
// under greedy is monotone non-increasing in R on real traces, and the
// verification guards the corner cases.
func MinRateForLoss(st *stream.Stream, delay int, target float64) (int, error) {
	if delay <= 0 {
		return 0, fmt.Errorf("alternatives: non-positive delay %d", delay)
	}
	if target < 0 || target >= 1 {
		return 0, fmt.Errorf("alternatives: loss target %v outside [0, 1)", target)
	}
	lossAt := func(R int) (float64, error) {
		s, err := core.Simulate(st, core.Config{
			ServerBuffer: R * delay,
			Rate:         R,
			Delay:        delay,
			Policy:       drop.Greedy,
		})
		if err != nil {
			return 0, err
		}
		return s.WeightedLoss(), nil
	}
	lo, hi := 1, st.PeakFrameBytes()
	if hi < 1 {
		hi = 1
	}
	// Ensure hi actually meets the target (it does: with R = peak every
	// frame clears in its own step), then shrink.
	for lo < hi {
		mid := (lo + hi) / 2
		loss, err := lossAt(mid)
		if err != nil {
			return 0, err
		}
		if loss <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	loss, err := lossAt(lo)
	if err != nil {
		return 0, err
	}
	// Monotonicity guard: scan upward past any local non-monotonicity.
	for loss > target && lo < st.PeakFrameBytes() {
		lo++
		loss, err = lossAt(lo)
		if err != nil {
			return 0, err
		}
	}
	if loss > target {
		return 0, fmt.Errorf("alternatives: no rate up to the peak meets target %v", target)
	}
	return lo, nil
}
