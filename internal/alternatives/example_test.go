package alternatives_test

import (
	"fmt"

	"repro/internal/alternatives"
	"repro/internal/stream"
)

// Example compares the intro's approaches on one bursty stream: bursts of
// 12 bytes every 4 steps (mean 3, peak 12).
func Example() {
	b := stream.NewBuilder()
	for t := 0; t < 64; t += 4 {
		b.Add(t, 12, 12)
	}
	st := b.MustBuild()

	fmt.Printf("peak reservation: rate %d, zero loss\n", alternatives.PeakRate(st))

	tr, _ := alternatives.Truncation(st, 3) // mean-rate link, no buffer
	fmt.Printf("truncation at mean rate: %.0f%% lost\n", 100*tr.ByteLoss)

	plan, _ := alternatives.Renegotiate(st, 4)
	fmt.Printf("rcbr window 4: peak %d, %d renegotiations\n", plan.Peak, plan.Renegotiations)

	r, _ := alternatives.MinRateForLoss(st, 4, 0) // lossless smoothing, delay 4
	fmt.Printf("smoothing delay 4: rate %d, zero loss\n", r)
	// Output:
	// peak reservation: rate 12, zero loss
	// truncation at mean rate: 100% lost
	// rcbr window 4: peak 3, 0 renegotiations
	// smoothing delay 4: rate 3, zero loss
}
