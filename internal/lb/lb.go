// Package lb is the fleet front tier: one smoothlb process accepts
// client sessions, places each on one of N smoothd backends, and relays
// the backend's pre-encoded wire stream back to the client. The paper's
// per-server story tops out at one machine's sessions; "millions of
// users" is this tier times N backends, and the tier itself must add
// near-zero per-step cost to keep the end-to-end smoothing guarantees
// intact.
//
// # Architecture
//
// The engine reuses the shard-reactor shape of internal/serve and
// internal/loadgen, split into a control plane and a data plane:
//
//   - Front door: Handle reads the client's Hello (the only blocking
//     read on the client side), applies admission control — an optional
//     admission.Gate precomputed from per-step demand samples, plus a
//     hard session cap — and pushes the session onto a bounded
//     pending-admit queue.
//   - Placer: a pool of placement workers pulls from the pending queue,
//     scores every healthy, non-draining backend by live buffer headroom
//     minus a step-lag penalty (both refreshed from the backends'
//     /statusz JSON when metrics addresses are configured, with the
//     LB-local active count as the always-fresh floor), dials the best
//     backend, forwards the Hello, and relays the Accept back to the
//     client. Dial or handshake failure marks the backend unhealthy and
//     re-places the session elsewhere, up to Config.ReplaceLimit times;
//     a backend entering drain (DrainBackend, or a scraped
//     serve_draining=1) is skipped by scoring and sessions already
//     picked for it are re-placed before the dial — graceful drain is a
//     placement event, never a client-visible failure.
//   - Shard reactors: after the handshake the session becomes pure byte
//     relay. Each shard owns an epoll set; on Linux the steady-state
//     path splices backend socket → per-session pipe → client socket
//     (kernel-to-kernel, no userspace copy, zero allocation), falling
//     back to a per-session copy loop only if the first splice reports
//     the fds unsupported (counted; zero in the benchmarks). On !linux
//     builds a portable io.CopyBuffer relay per session keeps the
//     engine functional. A stalled client write parks the session on an
//     edge-armed EPOLLOUT and the stall duration streams into a
//     histogram; stalls beyond Config.StallTimeout retire the session.
//
// Every wake stamps one engine-monotonic clock reading shared by all
// sessions drained in it (the tickClock pattern), so flight-recorder
// ticks and stall measurements never read the wall clock on the hot
// path. The relay path carries //smoothvet:noalloc and the shard structs
// //smoothvet:confined; BenchmarkLBRelayStep pins the per-step relay at
// exactly 0 B/op 0 allocs/op.
package lb

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/netstream"
	"repro/internal/obs"
)

var (
	errEngineClosed  = errors.New("lb: engine is closed")
	errQueueFull     = errors.New("lb: pending-admit queue is full")
	errAdmission     = errors.New("lb: admission refused")
	errSessionCap    = errors.New("lb: session cap reached")
	errNoBackend     = errors.New("lb: no healthy backend")
	errClientGone    = errors.New("lb: client hung up mid-relay")
	errIdleTimeout   = errors.New("lb: backend idle timeout")
	errStallTimeout  = errors.New("lb: client write stalled past the stall timeout")
	errBackendDrain  = errors.New("lb: backend started draining")
	errRelayShutdown = errors.New("lb: relay aborted by engine close")
)

// Config parameterizes an Engine.
type Config struct {
	// Backends are the smoothd addresses sessions are placed on.
	// Required.
	Backends []string
	// MetricsAddrs optionally lists each backend's diag address
	// (host:port of its -debug listener), parallel to Backends; empty
	// entries (or an empty slice) disable scraping for that backend and
	// scoring falls back to the LB-local active count alone.
	MetricsAddrs []string
	// Shards is the number of relay reactor shards (default GOMAXPROCS).
	Shards int
	// MaxSessions caps concurrently admitted sessions (0 = unlimited).
	MaxSessions int
	// BackendSlots is the per-backend session capacity headroom is
	// scored against (default 10000).
	BackendSlots int
	// PendingLimit bounds the pending-admit queue (default 4096).
	PendingLimit int
	// PlaceWorkers bounds concurrent placement (dial+handshake) workers
	// (default 16).
	PlaceWorkers int
	// ReplaceLimit bounds how many times one session is re-placed after
	// dial/handshake failures or drains before it fails (default 3).
	ReplaceLimit int
	// DialTimeout bounds one backend TCP dial (default 5s).
	DialTimeout time.Duration
	// HandshakeTimeout bounds the Hello/Accept exchange on either side
	// (default 10s).
	HandshakeTimeout time.Duration
	// IdleTimeout retires a session whose backend has sent nothing for
	// this long (default 30s; negative disables).
	IdleTimeout time.Duration
	// StallTimeout retires a session whose client write has been stalled
	// for this long (default 10s; negative disables).
	StallTimeout time.Duration
	// ScrapeInterval is the backend /statusz poll period when
	// MetricsAddrs are set (default 1s).
	ScrapeInterval time.Duration
	// ProbeInterval is the unhealthy-backend re-probe period (default 1s).
	ProbeInterval time.Duration
	// Gate, if non-nil, is the front-door admission gate; sessions it
	// refuses are rejected before queueing.
	Gate *admission.Gate
	// OnSessionDone, if non-nil, is called once per admitted session as
	// it finishes, possibly concurrently.
	OnSessionDone func(SessionStats)
	// Instrument, if non-nil, registers extra metrics on the tier's
	// obs.Builder before it freezes.
	Instrument func(b *obs.Builder)
}

// SessionStats summarizes one admitted session's life through the tier.
type SessionStats struct {
	// ID is the tier-wide session id (flight-recorder sess field).
	ID uint64
	// Backend is the index the session last relayed through (-1 if it
	// never placed).
	Backend int
	// Err is nil for a session that relayed the full stream.
	Err error
	// Bytes is the relay volume delivered to the client.
	Bytes int64
	// Replacements counts how many times placement moved the session.
	Replacements int
	// Elapsed is the wall-clock time from admission to retirement.
	Elapsed time.Duration
}

// Engine is the fleet front tier: accept → admit → place → relay.
type Engine struct {
	cfg  Config
	base time.Time // engine-wide monotonic base for all stamps

	backends []*backend
	shards   []*shard
	met      *lbMetrics
	// recs[0] is the front-door/placer ring (admit, place, re-place,
	// drain events); recs[1+i] is shard i's relay ring.
	recs []*obs.FlightRecorder

	pending   chan *session
	pendCount atomic.Int64
	active    atomic.Int64
	seq       atomic.Uint64
	fallbacks atomic.Int64

	httpc *http.Client

	closing atomic.Bool
	quit    chan struct{}
	placeWG sync.WaitGroup
	loopWG  sync.WaitGroup
	maintWG sync.WaitGroup
}

// New validates the config, connects the metric registry and starts the
// shard reactors, placement workers and the scrape/probe maintenance
// loop.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("lb: no backends")
	}
	if len(cfg.MetricsAddrs) != 0 && len(cfg.MetricsAddrs) != len(cfg.Backends) {
		return nil, fmt.Errorf("lb: %d metrics addresses for %d backends", len(cfg.MetricsAddrs), len(cfg.Backends))
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.BackendSlots <= 0 {
		cfg.BackendSlots = 10000
	}
	if cfg.PendingLimit <= 0 {
		cfg.PendingLimit = 4096
	}
	if cfg.PlaceWorkers <= 0 {
		cfg.PlaceWorkers = 16
	}
	if cfg.ReplaceLimit <= 0 {
		cfg.ReplaceLimit = 3
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 30 * time.Second
	}
	if cfg.StallTimeout == 0 {
		cfg.StallTimeout = 10 * time.Second
	}
	if cfg.ScrapeInterval <= 0 {
		cfg.ScrapeInterval = time.Second
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	e := &Engine{
		cfg:     cfg,
		base:    time.Now(),
		pending: make(chan *session, cfg.PendingLimit),
		quit:    make(chan struct{}),
		httpc:   &http.Client{Timeout: cfg.ScrapeInterval},
	}
	e.backends = make([]*backend, len(cfg.Backends))
	for i, addr := range cfg.Backends {
		b := &backend{idx: i, addr: addr}
		if i < len(cfg.MetricsAddrs) && cfg.MetricsAddrs[i] != "" {
			b.statusURL = "http://" + cfg.MetricsAddrs[i] + "/statusz"
		}
		e.backends[i] = b
	}
	e.met = newLBMetrics(e, cfg.Shards, cfg.Instrument)
	e.recs = make([]*obs.FlightRecorder, cfg.Shards+1)
	for i := range e.recs {
		e.recs[i] = obs.NewFlightRecorder(0)
	}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		sh, err := newShard(e, i)
		if err != nil {
			for _, prev := range e.shards[:i] {
				prev.poller.close()
			}
			return nil, err
		}
		e.shards[i] = sh
	}
	for _, sh := range e.shards {
		e.loopWG.Add(1)
		//smoothvet:transfer ownership of the shard moves to its reactor goroutine
		go sh.run()
	}
	for w := 0; w < cfg.PlaceWorkers; w++ {
		e.placeWG.Add(1)
		go e.placeLoop()
	}
	e.maintWG.Add(1)
	go e.maintain()
	return e, nil
}

// monotonic returns nanoseconds since the engine's base on the monotonic
// clock; every shard stamp, flight tick and stall measurement lives on
// this axis.
func (e *Engine) monotonic() int64 { return int64(time.Since(e.base)) }

// Handle admits one client connection into the tier: it reads the Hello,
// applies the admission gate and the session cap, and queues the session
// for placement. The handshake read blocks (bounded by
// HandshakeTimeout), so callers run Handle on a per-connection
// goroutine, exactly like serve.Engine.Handle. A non-nil error means the
// connection was rejected and closed.
func (e *Engine) Handle(conn net.Conn) error {
	if e.closing.Load() {
		return e.reject(conn, errEngineClosed)
	}
	_ = conn.SetReadDeadline(time.Now().Add(e.cfg.HandshakeTimeout))
	msg, err := netstream.ReadMsg(conn)
	if err != nil {
		return e.reject(conn, fmt.Errorf("lb: reading hello: %w", err))
	}
	if msg.Hello == nil {
		return e.reject(conn, fmt.Errorf("lb: expected hello, got %+v", msg))
	}
	_ = conn.SetReadDeadline(time.Time{})
	if limit := e.cfg.MaxSessions; limit > 0 && e.active.Load() >= int64(limit) {
		return e.reject(conn, errSessionCap)
	}
	if g := e.cfg.Gate; g != nil && !g.TryAdmit() {
		return e.reject(conn, errAdmission)
	}
	s := &session{
		id:         e.seq.Add(1),
		clientConn: conn,
		hello:      *msg.Hello,
		start:      time.Now(),
		enqueued:   e.monotonic(),
		pos:        -1,
		cfd:        -1,
		bfd:        -1,
		pipeR:      -1,
		pipeW:      -1,
		backendIdx: -1,
	}
	e.active.Add(1)
	select {
	case e.pending <- s:
	default:
		e.active.Add(-1)
		if g := e.cfg.Gate; g != nil {
			g.Release()
		}
		return e.reject(conn, errQueueFull)
	}
	e.pendCount.Add(1)
	e.met.reg.GlobalInc(e.met.cAccepted)
	e.recs[0].Record(s.enqueued, obs.EvAdmit, s.id, 0)
	if e.closing.Load() {
		// Close ran while this goroutine was blocked in the hello read:
		// its drain of e.pending may already be past, in which case the
		// session just queued would leak (conn open, active pinned,
		// OnSessionDone never fired). closing was set before that drain,
		// so seeing it false here means the drain has yet to run and will
		// collect the session; seeing it true means this goroutine must
		// drain instead. Pulling sessions other goroutines queued is fine
		// — everything queued after closing is failed with errEngineClosed
		// regardless of who pulls it, and channel receives never double-
		// deliver.
		e.drainPending()
		return errEngineClosed
	}
	return nil
}

// drainPending pulls and fails every queued session; used by Close after
// the placement workers stop and by Handle when its enqueue races that
// drain.
func (e *Engine) drainPending() {
	now := e.monotonic()
	for {
		select {
		case s := <-e.pending:
			e.pendCount.Add(-1)
			e.failPlacement(s, errEngineClosed, now)
		default:
			return
		}
	}
}

// reject closes a refused connection and counts it.
func (e *Engine) reject(conn net.Conn, err error) error {
	_ = conn.Close()
	e.met.reg.GlobalInc(e.met.cRejected)
	return err
}

// sessionDone releases front-door accounting for one admitted session
// and fires the completion callback. Every admitted session passes here
// exactly once, whether it failed in placement or retired on a shard.
func (e *Engine) sessionDone(s *session, err error, now int64) {
	e.active.Add(-1)
	if g := e.cfg.Gate; g != nil {
		g.Release()
	}
	if cb := e.cfg.OnSessionDone; cb != nil {
		cb(SessionStats{
			ID:           s.id,
			Backend:      s.backendIdx,
			Err:          err,
			Bytes:        s.bytes,
			Replacements: s.retries,
			Elapsed:      e.base.Add(time.Duration(now)).Sub(s.start),
		})
	}
}

// DrainBackend marks backend i as draining: scoring skips it, placement
// workers re-place sessions already picked for it, and sessions already
// relaying through it run to completion. The drain is a flight-recorder
// event; it cannot be undone short of restarting the tier.
func (e *Engine) DrainBackend(i int) error {
	if i < 0 || i >= len(e.backends) {
		return fmt.Errorf("lb: backend %d out of range", i)
	}
	b := e.backends[i]
	if !b.drainManual.Swap(true) {
		e.met.reg.GlobalInc(e.met.cDrains)
		e.recs[0].Record(e.monotonic(), obs.EvBackendDrain, uint64(i), 0)
	}
	return nil
}

// Drain waits for every admitted session to finish, up to timeout,
// without aborting relays; it reports whether the tier emptied. Callers
// stop feeding Handle first.
func (e *Engine) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if e.active.Load() == 0 {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return e.active.Load() == 0
}

// Close stops the placement workers and shard reactors, aborting any
// session still in flight. Safe to call more than once.
func (e *Engine) Close() {
	if e.closing.Swap(true) {
		e.loopWG.Wait()
		return
	}
	close(e.quit)
	e.placeWG.Wait()
	e.maintWG.Wait()
	// Fail everything still queued. Workers are gone, so only a Handle
	// goroutine still blocked in its hello read can enqueue after this —
	// and it re-checks closing after its send and drains its own wake.
	e.drainPending()
	e.loopWG.Wait()
}

// Active returns the number of admitted, unfinished sessions.
func (e *Engine) Active() int { return int(e.active.Load()) }

// SpliceFallbacks returns how many sessions abandoned the splice path
// for the userspace copy loop — zero on a healthy Linux host.
func (e *Engine) SpliceFallbacks() int64 { return e.fallbacks.Load() }

// Obs returns the tier's metric registry for diag endpoints and tests.
func (e *Engine) Obs() *obs.Registry { return e.met.reg }

// FlightRecorders returns the tier's flight rings: index 0 is the
// front-door/placer ring, index 1+i is relay shard i.
func (e *Engine) FlightRecorders() []*obs.FlightRecorder { return e.recs }

// connFd extracts a TCP connection's fd for the shard reactors. The fd
// stays owned by the net.Conn; the engine never reads through the conn
// after the handshake, so the runtime poller and the relay never
// contend.
func connFd(tc *net.TCPConn) (int, error) {
	rc, err := tc.SyscallConn()
	if err != nil {
		return 0, fmt.Errorf("lb: raw conn: %w", err)
	}
	fd := -1
	if err := rc.Control(func(f uintptr) { fd = int(f) }); err != nil {
		return 0, fmt.Errorf("lb: conn fd: %w", err)
	}
	return fd, nil
}
