package lb

import (
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
)

// startBackend runs a real serving engine on an ephemeral loopback port.
func startBackend(t *testing.T, frames int, step time.Duration, rateFactor float64) string {
	t.Helper()
	cfg := trace.DefaultGenConfig()
	cfg.Frames = frames
	cfg.Seed = 1
	clip, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := int(rateFactor * clip.AverageRate())
	if rate < 1 {
		rate = 1
	}
	eng, err := serve.New(clip, trace.PaperWeights(), serve.Config{
		Rate:         rate,
		Shards:       1,
		StepDuration: step,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { _ = eng.Handle(c) }(conn)
		}
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		eng.Close()
	})
	return ln.Addr().String()
}

// startLB runs a front tier over the given backends on an ephemeral port.
func startLB(t *testing.T, cfg Config) (string, *Engine) {
	t.Helper()
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { _ = eng.Handle(c) }(conn)
		}
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		eng.Close()
	})
	return ln.Addr().String(), eng
}

// driveWave runs one loadgen wave of n digesting sessions against addr
// and returns the per-index stats.
func driveWave(t *testing.T, addr string, shards, n int) ([]loadgen.SessionStats, loadgen.Report) {
	t.Helper()
	out := make([]loadgen.SessionStats, n)
	var mu sync.Mutex
	gen, err := loadgen.New(loadgen.Config{
		Addrs:  []string{addr},
		Shards: shards,
		Delay:  8,
		Digest: true,
		OnSessionDone: func(st loadgen.SessionStats) {
			mu.Lock()
			out[st.Index] = st
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Close()
	rep, err := gen.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return out, rep
}

func counterValue(e *Engine, id obs.CounterID) uint64 {
	snap := e.Obs().Snapshot(nil)
	return snap.Scalars[id]
}

// TestFleetRelayBasic: sessions relayed through the tier complete and
// decode exactly like direct ones — every session plays the full clip
// with zero failures, and the tier's books balance.
func TestFleetRelayBasic(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("relay reactor tests require linux")
	}
	backend := startBackend(t, 50, 2*time.Millisecond, 1.1)
	lbAddr, eng := startLB(t, Config{Backends: []string{backend}, Shards: 2})
	const n = 32
	out, rep := driveWave(t, lbAddr, 2, n)
	if rep.Failed != 0 {
		for _, st := range out {
			if st.Err != nil {
				t.Logf("session %d (%s): %v", st.Index, st.Stage, st.Err)
			}
		}
		t.Fatalf("%d of %d sessions failed through the tier", rep.Failed, n)
	}
	if !eng.Drain(5 * time.Second) {
		t.Fatalf("tier did not drain; %d still active", eng.Active())
	}
	if got := counterValue(eng, eng.met.cPlaced); got != n {
		t.Errorf("placements %d, want %d", got, n)
	}
	if got := counterValue(eng, eng.met.cCompleted); got != n {
		t.Errorf("completed relays %d, want %d", got, n)
	}
	if got := counterValue(eng, eng.met.cFailed); got != 0 {
		t.Errorf("failed relays %d, want 0", got)
	}
	if f := eng.SpliceFallbacks(); f != 0 {
		t.Errorf("splice fallbacks %d, want 0 on linux TCP", f)
	}
	// Direct comparison: the same wave straight at the backend must yield
	// identical digests — the tier is a pure relay.
	direct, drep := driveWave(t, backend, 2, n)
	if drep.Failed != 0 {
		t.Fatalf("%d of %d direct sessions failed", drep.Failed, n)
	}
	for i := range out {
		if out[i].Digest != direct[i].Digest {
			t.Errorf("session %d: digest %x through tier, %x direct", i, out[i].Digest, direct[i].Digest)
		}
	}
}

// TestLBShardCountInvariance: the tier's shard count is a capacity knob,
// not a semantic one — every client session decodes exactly the same
// message sequence whether one relay shard carries all sessions or four
// split them. Under-provisioned backends make the servers' drop
// sequences part of the digest.
func TestLBShardCountInvariance(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("relay reactor tests require linux")
	}
	backends := []string{
		startBackend(t, 50, 2*time.Millisecond, 0.8),
		startBackend(t, 50, 2*time.Millisecond, 0.8),
	}
	const n = 48
	run := func(shards int) []loadgen.SessionStats {
		addr, eng := startLB(t, Config{Backends: backends, Shards: shards})
		out, rep := driveWave(t, addr, 2, n)
		if rep.Failed != 0 {
			t.Fatalf("%d of %d sessions failed with %d tier shards", rep.Failed, n, shards)
		}
		if !eng.Drain(5 * time.Second) {
			t.Fatalf("tier (%d shards) did not drain", shards)
		}
		return out
	}
	one := run(1)
	four := run(4)
	for i := range one {
		if one[i].Digest != four[i].Digest {
			t.Errorf("session %d: digest %x with 1 tier shard, %x with 4", i, one[i].Digest, four[i].Digest)
		}
		if one[i].Played != four[i].Played || one[i].Incomplete != four[i].Incomplete {
			t.Errorf("session %d: played/incomplete %d/%d with 1 shard, %d/%d with 4",
				i, one[i].Played, one[i].Incomplete, four[i].Played, four[i].Incomplete)
		}
	}
}

// TestPlacerReplacesOnDialFailure: a dead backend is quarantined after
// its first failed dial and every session lands on the live one, with
// zero client-visible failures.
func TestPlacerReplacesOnDialFailure(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("relay reactor tests require linux")
	}
	// A listener opened and closed immediately: its port refuses dials.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	_ = dead.Close()
	live := startBackend(t, 30, 2*time.Millisecond, 1.1)
	// The dead backend is index 0, so the deterministic tie-break sends
	// the first placement straight into the failure path.
	lbAddr, eng := startLB(t, Config{
		Backends:      []string{deadAddr, live},
		Shards:        1,
		ProbeInterval: time.Hour, // keep the dead backend quarantined for the test
	})
	const n = 16
	out, rep := driveWave(t, lbAddr, 1, n)
	if rep.Failed != 0 {
		for _, st := range out {
			if st.Err != nil {
				t.Logf("session %d (%s): %v", st.Index, st.Stage, st.Err)
			}
		}
		t.Fatalf("%d of %d sessions failed despite a live backend", rep.Failed, n)
	}
	if !eng.Drain(5 * time.Second) {
		t.Fatal("tier did not drain")
	}
	if got := counterValue(eng, eng.met.cReplaced); got < 1 {
		t.Errorf("replacements %d, want >= 1 (first placement hits the dead backend)", got)
	}
	if got := eng.backends[1].placed.Load(); got != n {
		t.Errorf("live backend placed %d, want all %d", got, n)
	}
}

// TestFleetSmoke is the env-scaled fleet end-to-end: a wave through the
// tier with a graceful backend drain landing mid-wave must finish with
// zero client-visible failures, and the drained backend must stop
// receiving placements (modulo placements already in flight). LB_SMOKE
// scales the wave (default 200).
func TestFleetSmoke(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("relay reactor tests require linux")
	}
	n := 200
	if v := os.Getenv("LB_SMOKE"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 2 {
			t.Fatalf("LB_SMOKE=%q: want an integer >= 2", v)
		}
		n = parsed
	}
	backends := []string{
		startBackend(t, 40, 2*time.Millisecond, 1.1),
		startBackend(t, 40, 2*time.Millisecond, 1.1),
	}
	lbAddr, eng := startLB(t, Config{Backends: backends, Shards: 2})

	// Drain backend 1 once the wave is in flight. The waiter also bails
	// once every session has been placed: on a loaded host the whole wave
	// can finish between 1ms samples, and a drain after completion still
	// exercises the transition (the post-drain growth bound holds
	// trivially).
	drained := make(chan uint64, 1)
	go func() {
		for eng.Active() < n/4 && counterValue(eng, eng.met.cPlaced) < uint64(n) {
			time.Sleep(time.Millisecond)
		}
		if err := eng.DrainBackend(1); err != nil {
			t.Errorf("DrainBackend: %v", err)
		}
		drained <- eng.backends[1].placed.Load()
	}()

	out, rep := driveWave(t, lbAddr, 2, n)
	if rep.Failed != 0 {
		for _, st := range out {
			if st.Err != nil {
				t.Logf("session %d (%s): %v", st.Index, st.Stage, st.Err)
			}
		}
		t.Fatalf("%d of %d sessions failed across the drain", rep.Failed, n)
	}
	placedAtDrain := <-drained
	if !eng.Drain(10 * time.Second) {
		t.Fatalf("tier did not drain; %d still active", eng.Active())
	}
	// Placements already past the post-dial drain re-check may still land;
	// there are at most PlaceWorkers of those in flight at the drain
	// instant.
	workers := eng.cfg.PlaceWorkers
	if after := eng.backends[1].placed.Load(); after > placedAtDrain+uint64(workers) {
		t.Errorf("drained backend kept taking placements: %d at drain, %d after (allowance %d)",
			placedAtDrain, after, workers)
	}
	if got := counterValue(eng, eng.met.cDrains); got < 1 {
		t.Errorf("drain transitions %d, want >= 1", got)
	}
	if f := eng.SpliceFallbacks(); f != 0 {
		t.Errorf("splice fallbacks %d, want 0", f)
	}
}

// TestHandleRejectsQueueOverflow: the pending-admit queue is bounded and
// overflow is a counted, closed-connection rejection, not a hang.
func TestHandleRejectsBadHello(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("relay reactor tests require linux")
	}
	backend := startBackend(t, 20, 2*time.Millisecond, 1.1)
	lbAddr, eng := startLB(t, Config{Backends: []string{backend}, Shards: 1, HandshakeTimeout: 500 * time.Millisecond})
	conn, err := net.Dial("tcp", lbAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte("not a netstream hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("tier answered a garbage hello instead of closing")
	}
	deadline := time.Now().Add(5 * time.Second)
	for counterValue(eng, eng.met.cRejected) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rejection was never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
