package lb

import (
	"errors"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/netstream"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
)

// startBackend runs a real serving engine on an ephemeral loopback port.
func startBackend(t *testing.T, frames int, step time.Duration, rateFactor float64) string {
	t.Helper()
	cfg := trace.DefaultGenConfig()
	cfg.Frames = frames
	cfg.Seed = 1
	clip, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := int(rateFactor * clip.AverageRate())
	if rate < 1 {
		rate = 1
	}
	eng, err := serve.New(clip, trace.PaperWeights(), serve.Config{
		Rate:         rate,
		Shards:       1,
		StepDuration: step,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { _ = eng.Handle(c) }(conn)
		}
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		eng.Close()
	})
	return ln.Addr().String()
}

// startLB runs a front tier over the given backends on an ephemeral port.
func startLB(t *testing.T, cfg Config) (string, *Engine) {
	t.Helper()
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { _ = eng.Handle(c) }(conn)
		}
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		eng.Close()
	})
	return ln.Addr().String(), eng
}

// driveWave runs one loadgen wave of n digesting sessions against addr
// and returns the per-index stats.
func driveWave(t *testing.T, addr string, shards, n int) ([]loadgen.SessionStats, loadgen.Report) {
	t.Helper()
	out := make([]loadgen.SessionStats, n)
	var mu sync.Mutex
	gen, err := loadgen.New(loadgen.Config{
		Addrs:  []string{addr},
		Shards: shards,
		Delay:  8,
		Digest: true,
		OnSessionDone: func(st loadgen.SessionStats) {
			mu.Lock()
			out[st.Index] = st
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Close()
	rep, err := gen.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return out, rep
}

func counterValue(e *Engine, id obs.CounterID) uint64 {
	snap := e.Obs().Snapshot(nil)
	return snap.Scalars[id]
}

// TestFleetRelayBasic: sessions relayed through the tier complete and
// decode exactly like direct ones — every session plays the full clip
// with zero failures, and the tier's books balance.
func TestFleetRelayBasic(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("relay reactor tests require linux")
	}
	backend := startBackend(t, 50, 2*time.Millisecond, 1.1)
	lbAddr, eng := startLB(t, Config{Backends: []string{backend}, Shards: 2})
	const n = 32
	out, rep := driveWave(t, lbAddr, 2, n)
	if rep.Failed != 0 {
		for _, st := range out {
			if st.Err != nil {
				t.Logf("session %d (%s): %v", st.Index, st.Stage, st.Err)
			}
		}
		t.Fatalf("%d of %d sessions failed through the tier", rep.Failed, n)
	}
	if !eng.Drain(5 * time.Second) {
		t.Fatalf("tier did not drain; %d still active", eng.Active())
	}
	if got := counterValue(eng, eng.met.cPlaced); got != n {
		t.Errorf("placements %d, want %d", got, n)
	}
	if got := counterValue(eng, eng.met.cCompleted); got != n {
		t.Errorf("completed relays %d, want %d", got, n)
	}
	if got := counterValue(eng, eng.met.cFailed); got != 0 {
		t.Errorf("failed relays %d, want 0", got)
	}
	if f := eng.SpliceFallbacks(); f != 0 {
		t.Errorf("splice fallbacks %d, want 0 on linux TCP", f)
	}
	// Direct comparison: the same wave straight at the backend must yield
	// identical digests — the tier is a pure relay.
	direct, drep := driveWave(t, backend, 2, n)
	if drep.Failed != 0 {
		t.Fatalf("%d of %d direct sessions failed", drep.Failed, n)
	}
	for i := range out {
		if out[i].Digest != direct[i].Digest {
			t.Errorf("session %d: digest %x through tier, %x direct", i, out[i].Digest, direct[i].Digest)
		}
	}
}

// TestLBShardCountInvariance: the tier's shard count is a capacity knob,
// not a semantic one — every client session decodes exactly the same
// message sequence whether one relay shard carries all sessions or four
// split them. Under-provisioned backends make the servers' drop
// sequences part of the digest.
func TestLBShardCountInvariance(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("relay reactor tests require linux")
	}
	backends := []string{
		startBackend(t, 50, 2*time.Millisecond, 0.8),
		startBackend(t, 50, 2*time.Millisecond, 0.8),
	}
	const n = 48
	run := func(shards int) []loadgen.SessionStats {
		addr, eng := startLB(t, Config{Backends: backends, Shards: shards})
		out, rep := driveWave(t, addr, 2, n)
		if rep.Failed != 0 {
			t.Fatalf("%d of %d sessions failed with %d tier shards", rep.Failed, n, shards)
		}
		if !eng.Drain(5 * time.Second) {
			t.Fatalf("tier (%d shards) did not drain", shards)
		}
		return out
	}
	one := run(1)
	four := run(4)
	for i := range one {
		if one[i].Digest != four[i].Digest {
			t.Errorf("session %d: digest %x with 1 tier shard, %x with 4", i, one[i].Digest, four[i].Digest)
		}
		if one[i].Played != four[i].Played || one[i].Incomplete != four[i].Incomplete {
			t.Errorf("session %d: played/incomplete %d/%d with 1 shard, %d/%d with 4",
				i, one[i].Played, one[i].Incomplete, four[i].Played, four[i].Incomplete)
		}
	}
}

// TestPlacerReplacesOnDialFailure: a dead backend is quarantined after
// its first failed dial and every session lands on the live one, with
// zero client-visible failures.
func TestPlacerReplacesOnDialFailure(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("relay reactor tests require linux")
	}
	// A listener opened and closed immediately: its port refuses dials.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	_ = dead.Close()
	live := startBackend(t, 30, 2*time.Millisecond, 1.1)
	// The dead backend is index 0, so the deterministic tie-break sends
	// the first placement straight into the failure path.
	lbAddr, eng := startLB(t, Config{
		Backends:      []string{deadAddr, live},
		Shards:        1,
		ProbeInterval: time.Hour, // keep the dead backend quarantined for the test
	})
	const n = 16
	out, rep := driveWave(t, lbAddr, 1, n)
	if rep.Failed != 0 {
		for _, st := range out {
			if st.Err != nil {
				t.Logf("session %d (%s): %v", st.Index, st.Stage, st.Err)
			}
		}
		t.Fatalf("%d of %d sessions failed despite a live backend", rep.Failed, n)
	}
	if !eng.Drain(5 * time.Second) {
		t.Fatal("tier did not drain")
	}
	if got := counterValue(eng, eng.met.cReplaced); got < 1 {
		t.Errorf("replacements %d, want >= 1 (first placement hits the dead backend)", got)
	}
	if got := eng.backends[1].placed.Load(); got != n {
		t.Errorf("live backend placed %d, want all %d", got, n)
	}
}

// TestFleetSmoke is the env-scaled fleet end-to-end: a wave through the
// tier with a graceful backend drain landing mid-wave must finish with
// zero client-visible failures, and the drained backend must stop
// receiving placements (modulo placements already in flight). LB_SMOKE
// scales the wave (default 200).
func TestFleetSmoke(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("relay reactor tests require linux")
	}
	n := 200
	if v := os.Getenv("LB_SMOKE"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 2 {
			t.Fatalf("LB_SMOKE=%q: want an integer >= 2", v)
		}
		n = parsed
	}
	backends := []string{
		startBackend(t, 40, 2*time.Millisecond, 1.1),
		startBackend(t, 40, 2*time.Millisecond, 1.1),
	}
	lbAddr, eng := startLB(t, Config{Backends: backends, Shards: 2})

	// Drain backend 1 once the wave is in flight. The waiter also bails
	// once every session has been placed: on a loaded host the whole wave
	// can finish between 1ms samples, and a drain after completion still
	// exercises the transition (the post-drain growth bound holds
	// trivially).
	drained := make(chan uint64, 1)
	go func() {
		for eng.Active() < n/4 && counterValue(eng, eng.met.cPlaced) < uint64(n) {
			time.Sleep(time.Millisecond)
		}
		if err := eng.DrainBackend(1); err != nil {
			t.Errorf("DrainBackend: %v", err)
		}
		drained <- eng.backends[1].placed.Load()
	}()

	out, rep := driveWave(t, lbAddr, 2, n)
	if rep.Failed != 0 {
		for _, st := range out {
			if st.Err != nil {
				t.Logf("session %d (%s): %v", st.Index, st.Stage, st.Err)
			}
		}
		t.Fatalf("%d of %d sessions failed across the drain", rep.Failed, n)
	}
	placedAtDrain := <-drained
	if !eng.Drain(10 * time.Second) {
		t.Fatalf("tier did not drain; %d still active", eng.Active())
	}
	// Placements already past the post-dial drain re-check may still land;
	// there are at most PlaceWorkers of those in flight at the drain
	// instant.
	workers := eng.cfg.PlaceWorkers
	if after := eng.backends[1].placed.Load(); after > placedAtDrain+uint64(workers) {
		t.Errorf("drained backend kept taking placements: %d at drain, %d after (allowance %d)",
			placedAtDrain, after, workers)
	}
	if got := counterValue(eng, eng.met.cDrains); got < 1 {
		t.Errorf("drain transitions %d, want >= 1", got)
	}
	if f := eng.SpliceFallbacks(); f != 0 {
		t.Errorf("splice fallbacks %d, want 0", f)
	}
}

// TestHandleRejectsQueueOverflow: the pending-admit queue is bounded and
// overflow is a counted, closed-connection rejection, not a hang.
func TestHandleRejectsBadHello(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("relay reactor tests require linux")
	}
	backend := startBackend(t, 20, 2*time.Millisecond, 1.1)
	lbAddr, eng := startLB(t, Config{Backends: []string{backend}, Shards: 1, HandshakeTimeout: 500 * time.Millisecond})
	conn, err := net.Dial("tcp", lbAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte("not a netstream hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("tier answered a garbage hello instead of closing")
	}
	deadline := time.Now().Add(5 * time.Second)
	for counterValue(eng, eng.met.cRejected) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rejection was never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// startFloodBackend is a fake smoothd that answers the handshake and then
// streams junk as fast as the socket accepts it — the fastest way to fill
// a non-reading client's buffers and force a relay stall.
func startFloodBackend(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				if _, err := netstream.ReadMsg(c); err != nil {
					return
				}
				acc := netstream.Accept{Rate: 1, Delay: 1, ServerBuffer: 1, StepMicros: 1000}
				_ = c.SetWriteDeadline(time.Now().Add(5 * time.Second))
				if _, err := (netstream.Msg{Accept: &acc}).WriteTo(c); err != nil {
					return
				}
				junk := make([]byte, 64<<10)
				for {
					_ = c.SetWriteDeadline(time.Now().Add(5 * time.Second))
					if _, err := c.Write(junk); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestStallTimeoutRetiresStalledSession: a client that stops reading
// while the backend keeps sending must be retired within StallTimeout.
// Regression: level-triggered backend readability used to re-enter relay
// while the session was parked on EPOLLOUT, re-stalling it every wake —
// which reset the stall clock (so the timeout never fired) and inflated
// the stall counter. The counter pinning to exactly 1 is the proof the
// re-entry is gone.
func TestStallTimeoutRetiresStalledSession(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("relay reactor tests require linux")
	}
	backend := startFloodBackend(t)
	lbAddr, eng := startLB(t, Config{
		Backends:     []string{backend},
		Shards:       1,
		StallTimeout: 200 * time.Millisecond,
		IdleTimeout:  -1,
	})
	conn, err := net.Dial("tcp", lbAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	hello := netstream.Hello{ClientBuffer: 1024, DesiredDelay: 8}
	if _, err := (netstream.Msg{Hello: &hello}).WriteTo(conn); err != nil {
		t.Fatal(err)
	}
	if _, err := netstream.ReadMsg(conn); err != nil {
		t.Fatalf("reading accept: %v", err)
	}
	// Stop reading; the flood fills the pipe and both socket buffers, the
	// relay stalls once, and StallTimeout must retire the session even
	// though this conn stays open.
	deadline := time.Now().Add(5 * time.Second)
	for eng.Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled session never retired; %d still active", eng.Active())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := counterValue(eng, eng.met.cFailed); got != 1 {
		t.Errorf("failed relays %d, want 1 (stall timeout)", got)
	}
	if got := counterValue(eng, eng.met.cStalls); got != 1 {
		t.Errorf("stall count %d, want exactly 1: re-stalling a parked session resets its clock", got)
	}
}

// TestHandleCloseRaceLeaksNothing: Close can drain the pending queue
// while a Handle goroutine is still blocked in its hello read; when that
// Handle then enqueues, it must detect the race and fail the session
// itself rather than leak it (conn open, active pinned, OnSessionDone
// never fired).
func TestHandleCloseRaceLeaksNothing(t *testing.T) {
	var done atomic.Int64
	eng, err := New(Config{
		Backends:      []string{"127.0.0.1:1"},
		Shards:        1,
		OnSessionDone: func(SessionStats) { done.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	handleErr := make(chan error, 1)
	go func() { handleErr <- eng.Handle(server) }()
	// Let Handle pass its closing pre-check and block in the hello read,
	// then run the full Close — workers exit and the pending drain runs
	// before the hello ever arrives.
	time.Sleep(50 * time.Millisecond)
	eng.Close()
	hello := netstream.Hello{ClientBuffer: 1024, DesiredDelay: 8}
	if _, err := (netstream.Msg{Hello: &hello}).WriteTo(client); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-handleErr:
		if !errors.Is(err, errEngineClosed) {
			t.Errorf("Handle returned %v, want errEngineClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Handle never returned after Close")
	}
	if got := eng.Active(); got != 0 {
		t.Errorf("active sessions %d after Close, want 0 (leaked by the race)", got)
	}
	if got := done.Load(); got != 1 {
		t.Errorf("OnSessionDone fired %d times, want 1", got)
	}
}
