package lb

import (
	"fmt"

	"repro/internal/obs"
)

// lbMetrics is the front tier's obs wiring: front-door and placer
// counters recorded globally (they happen off the shard reactors), relay
// counters and the stall/admit-wait histograms recorded per shard, and
// Func gauges exposing live placer state per backend.
type lbMetrics struct {
	reg *obs.Registry

	// Front door + placer (global: GlobalInc only).
	cAccepted    obs.CounterID
	cRejected    obs.CounterID
	cPlaced      obs.CounterID
	cReplaced    obs.CounterID
	cPlaceFailed obs.CounterID
	cDrains      obs.CounterID

	// Relay (shard-local).
	cRelayed   obs.CounterID
	cCompleted obs.CounterID
	cFailed    obs.CounterID
	cFallback  obs.CounterID
	cStalls    obs.CounterID
	gActive    obs.GaugeID
	hAdmitWait obs.HistID
	hStall     obs.HistID
}

// newLBMetrics declares the tier's series and freezes the registry. The
// caller's Config.Instrument hook (if any) runs against the same builder
// so embedders can add series without a second registry.
func newLBMetrics(e *Engine, shards int, extra func(*obs.Builder)) *lbMetrics {
	m := &lbMetrics{}
	var b obs.Builder
	m.cAccepted = b.Counter("lb_sessions_accepted_total", "Client sessions past the front door.")
	m.cRejected = b.Counter("lb_sessions_rejected_total", "Client sessions refused at the front door (admission, caps, bad hello).")
	m.cPlaced = b.Counter("lb_placements_total", "Successful backend placements.")
	m.cReplaced = b.Counter("lb_replacements_total", "Placements retried on another backend after a dial failure or drain.")
	m.cPlaceFailed = b.Counter("lb_placement_failures_total", "Sessions abandoned after exhausting placement retries.")
	m.cDrains = b.Counter("lb_backend_drains_total", "Backend drain transitions observed (manual or scraped).")
	m.cRelayed = b.Counter("lb_sessions_relayed_total", "Sessions registered on a relay shard.")
	m.cCompleted = b.Counter("lb_sessions_completed_total", "Sessions relayed to a clean backend EOF.")
	m.cFailed = b.Counter("lb_sessions_failed_total", "Sessions retired on a relay error or timeout.")
	m.cFallback = b.Counter("lb_splice_fallback_total", "Sessions relayed through the userspace copy path instead of splice.")
	m.cStalls = b.Counter("lb_relay_stalls_total", "Relay pauses waiting for client-socket writability.")
	m.gActive = b.Gauge("lb_sessions_active", "Sessions currently registered on relay shards.")
	m.hAdmitWait = b.Histogram("lb_admit_wait_us", "Microseconds from front-door admit to shard registration.")
	m.hStall = b.Histogram("lb_relay_stall_us", "Microseconds a stalled relay waited for the client socket to drain.")
	b.Func("lb_sessions_pending", "Sessions waiting in the pending-admit queue.", func() int64 {
		return e.pendCount.Load()
	})
	for i := range e.cfg.Backends {
		idx := i
		b.Func(fmt.Sprintf("lb_backend_active{backend=\"%d\"}", idx),
			"Sessions the placer counts against this backend.", func() int64 {
				return e.backends[idx].active.Load()
			})
		b.Func(fmt.Sprintf("lb_backend_headroom_permille{backend=\"%d\"}", idx),
			"Placement headroom for this backend in permille of its slots.", func() int64 {
				return e.headroomPermille(e.backends[idx])
			})
	}
	if extra != nil {
		extra(&b)
	}
	m.reg = obs.Build(&b, shards)
	return m
}
