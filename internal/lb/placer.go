package lb

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/netstream"
	"repro/internal/obs"
)

// backend is one smoothd target's shared placement state. Placement
// workers, the maintenance loop and the shard reactors all touch it, so
// every field is an atomic; the placement table proper (which backend a
// session relays through) lives in the session structs the shards own.
type backend struct {
	idx       int
	addr      string
	statusURL string // "" = no scraping for this backend

	// active counts sessions placed on (or dialing toward) this backend
	// from the LB's point of view — incremented at the placement
	// decision, decremented at retirement, so scoring always has a
	// fresh local floor even between scrapes.
	active atomic.Int64
	placed atomic.Uint64

	unhealthy   atomic.Bool
	drainManual atomic.Bool
	drainScrape atomic.Bool

	// Scraped state: last good /statusz sample and its stamp
	// (engine-monotonic nanos; 0 = never scraped).
	scrapeNanos  atomic.Int64
	scrapeActive atomic.Int64
	scrapeP99    atomic.Int64 // µs
	scrapeErrs   atomic.Uint64
}

// draining reports whether placement must avoid this backend.
func (b *backend) draining() bool {
	return b.drainManual.Load() || b.drainScrape.Load()
}

// placeLoop is one placement worker: pull from the pending-admit queue,
// place. Workers exit on Close.
func (e *Engine) placeLoop() {
	defer e.placeWG.Done()
	for {
		select {
		case <-e.quit:
			return
		case s := <-e.pending:
			e.pendCount.Add(-1)
			e.place(s)
		}
	}
}

// place scores, dials and registers one session, re-placing it on
// failure or drain up to Config.ReplaceLimit times.
func (e *Engine) place(s *session) {
	for {
		if e.closing.Load() {
			e.failPlacement(s, errEngineClosed, e.monotonic())
			return
		}
		b := e.pick()
		if b == nil {
			// Every backend is unhealthy or draining; bounded wait for a
			// probe to revive one.
			if s.retries >= e.cfg.ReplaceLimit {
				e.failPlacement(s, errNoBackend, e.monotonic())
				return
			}
			s.retries++
			select {
			case <-e.quit:
				e.failPlacement(s, errEngineClosed, e.monotonic())
				return
			case <-time.After(e.cfg.ProbeInterval):
			}
			continue
		}
		b.active.Add(1)
		err := e.dialBackend(s, b)
		if err == nil && b.draining() {
			// The drain landed between pick and handshake: hand the slot
			// back and re-place; the client has not seen an Accept from a
			// backend we must still forward (the Accept is only relayed
			// below on success), so the move is invisible.
			_ = s.backendConn.Close()
			s.backendConn = nil
			err = errBackendDrain
		}
		if err == nil {
			err = e.forwardAccept(s)
			if err != nil {
				// The client side failed — re-placing cannot help.
				_ = s.backendConn.Close()
				b.active.Add(-1)
				e.failPlacement(s, err, e.monotonic())
				return
			}
			b.placed.Add(1)
			s.backend = b
			s.backendIdx = b.idx
			e.met.reg.GlobalInc(e.met.cPlaced)
			e.recs[0].Record(e.monotonic(), obs.EvPlace, s.id, int64(b.idx))
			sh := e.shards[int(s.id)%len(e.shards)]
			if !sh.enqueue(s) {
				_ = s.backendConn.Close()
				b.active.Add(-1)
				e.failPlacement(s, errEngineClosed, e.monotonic())
			}
			return
		}
		b.active.Add(-1)
		if !errors.Is(err, errBackendDrain) {
			// A dial or handshake failure: quarantine the backend until a
			// probe brings it back.
			b.unhealthy.Store(true)
		}
		e.met.reg.GlobalInc(e.met.cReplaced)
		e.recs[0].Record(e.monotonic(), obs.EvReplace, s.id, int64(b.idx))
		s.retries++
		if s.retries > e.cfg.ReplaceLimit {
			e.failPlacement(s, err, e.monotonic())
			return
		}
	}
}

// pick returns the healthy, non-draining backend with the best headroom
// score, ties broken by the lowest index (deterministic). nil when no
// backend is placeable.
func (e *Engine) pick() *backend {
	now := e.monotonic()
	var best *backend
	bestScore := int64(0)
	for _, b := range e.backends {
		if b.unhealthy.Load() || b.draining() {
			continue
		}
		if sc := e.score(b, now); best == nil || sc > bestScore {
			best, bestScore = b, sc
		}
	}
	return best
}

// score rates one backend in signed permille: buffer headroom against
// Config.BackendSlots minus a step-lag penalty of one permille per
// millisecond of scraped p99 shard-step duration. The active count is
// the max of the LB-local view and the last scrape (when fresh), so a
// backend loaded by another front tier still scores low.
func (e *Engine) score(b *backend, now int64) int64 {
	active := b.active.Load()
	if t := b.scrapeNanos.Load(); t != 0 && now-t < int64(3*e.cfg.ScrapeInterval) {
		if sa := b.scrapeActive.Load(); sa > active {
			active = sa
		}
	}
	slots := int64(e.cfg.BackendSlots)
	headroom := (slots - active) * 1000 / slots
	return headroom - b.scrapeP99.Load()/1000
}

// headroomPermille is score's headroom term alone, for the per-backend
// gauge.
func (e *Engine) headroomPermille(b *backend) int64 {
	slots := int64(e.cfg.BackendSlots)
	return (slots - b.active.Load()) * 1000 / slots
}

// dialBackend opens the backend connection and runs the upstream half of
// the handshake: forward the client's Hello, read the Accept. The Accept
// is parked on the session for forwardAccept.
func (e *Engine) dialBackend(s *session, b *backend) error {
	conn, err := net.DialTimeout("tcp", b.addr, e.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("lb: dial backend %d: %w", b.idx, err)
	}
	dl := time.Now().Add(e.cfg.HandshakeTimeout)
	_ = conn.SetReadDeadline(dl)
	_ = conn.SetWriteDeadline(dl)
	hello := s.hello
	if _, err := (netstream.Msg{Hello: &hello}).WriteTo(conn); err != nil {
		_ = conn.Close()
		return fmt.Errorf("lb: forwarding hello to backend %d: %w", b.idx, err)
	}
	msg, err := netstream.ReadMsg(conn)
	if err != nil {
		_ = conn.Close()
		return fmt.Errorf("lb: reading accept from backend %d: %w", b.idx, err)
	}
	if msg.Accept == nil {
		_ = conn.Close()
		return fmt.Errorf("lb: backend %d answered without an accept", b.idx)
	}
	_ = conn.SetReadDeadline(time.Time{})
	_ = conn.SetWriteDeadline(time.Time{})
	s.backendConn = conn
	s.accept = *msg.Accept
	return nil
}

// forwardAccept relays the backend's Accept to the client, completing
// the client's handshake. A failure here is terminal for the session —
// the client is gone — never a reason to re-place.
func (e *Engine) forwardAccept(s *session) error {
	_ = s.clientConn.SetWriteDeadline(time.Now().Add(e.cfg.HandshakeTimeout))
	accept := s.accept
	if _, err := (netstream.Msg{Accept: &accept}).WriteTo(s.clientConn); err != nil {
		return fmt.Errorf("lb: forwarding accept to client: %w", err)
	}
	_ = s.clientConn.SetWriteDeadline(time.Time{})
	return nil
}

// failPlacement finishes a session that never reached a shard.
func (e *Engine) failPlacement(s *session, err error, now int64) {
	_ = s.clientConn.Close()
	e.met.reg.GlobalInc(e.met.cPlaceFailed)
	e.recs[0].Record(now, obs.EvError, s.id, int64(s.retries))
	e.sessionDone(s, err, now)
}

// maintain is the tier's slow loop: scrape configured backend /statusz
// endpoints for headroom and step-lag signals, and probe unhealthy
// backends back to life. One goroutine, off every hot path.
func (e *Engine) maintain() {
	defer e.maintWG.Done()
	scrape := time.NewTicker(e.cfg.ScrapeInterval)
	probe := time.NewTicker(e.cfg.ProbeInterval)
	defer scrape.Stop()
	defer probe.Stop()
	for {
		select {
		case <-e.quit:
			return
		case <-scrape.C:
			for _, b := range e.backends {
				if b.statusURL != "" {
					e.scrapeBackend(b)
				}
			}
		case <-probe.C:
			for _, b := range e.backends {
				if b.unhealthy.Load() {
					e.probeBackend(b)
				}
			}
		}
	}
}

// statuszDoc is the slice of diag's /statusz JSON the scorer reads.
type statuszDoc struct {
	Metrics struct {
		Active   int64 `json:"serve_sessions_active"`
		Draining int64 `json:"serve_draining"`
		StepDur  struct {
			P99 int64 `json:"p99"`
		} `json:"serve_step_duration_us"`
	} `json:"metrics"`
}

// scrapeBackend refreshes one backend's scored signals from its diag
// /statusz endpoint. Scrape failures only age the previous sample out
// (score falls back to the LB-local active count); they never mark the
// backend unhealthy — the data path, not the diag port, decides health.
func (e *Engine) scrapeBackend(b *backend) {
	resp, err := e.httpc.Get(b.statusURL)
	if err != nil {
		b.scrapeErrs.Add(1)
		return
	}
	if resp.StatusCode != http.StatusOK {
		// An error page whose body happens to parse (a 500 rendering
		// "{}") must not pass for a fresh sample — it would zero the
		// scored signals and clear drainScrape on a draining backend.
		_ = resp.Body.Close()
		b.scrapeErrs.Add(1)
		return
	}
	var doc statuszDoc
	err = json.NewDecoder(resp.Body).Decode(&doc)
	_ = resp.Body.Close()
	if err != nil {
		b.scrapeErrs.Add(1)
		return
	}
	b.scrapeActive.Store(doc.Metrics.Active)
	b.scrapeP99.Store(doc.Metrics.StepDur.P99)
	wasDraining := b.drainScrape.Load()
	nowDraining := doc.Metrics.Draining != 0
	b.drainScrape.Store(nowDraining)
	if nowDraining && !wasDraining && !b.drainManual.Load() {
		e.met.reg.GlobalInc(e.met.cDrains)
		e.recs[0].Record(e.monotonic(), obs.EvBackendDrain, uint64(b.idx), 1)
	}
	b.scrapeNanos.Store(e.monotonic())
}

// probeBackend health-checks a quarantined backend with a bare TCP dial
// and lifts the quarantine on success.
func (e *Engine) probeBackend(b *backend) {
	conn, err := net.DialTimeout("tcp", b.addr, e.cfg.DialTimeout)
	if err != nil {
		return
	}
	_ = conn.Close()
	b.unhealthy.Store(false)
}
