//go:build linux

package lb

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/obs"
)

// ---------------------------------------------------------------------------
// Socket-free relay benchmark: the per-step splice hot path.
// ---------------------------------------------------------------------------

// benchRelayEngine builds an engine shell with live metrics but no
// goroutines, so the bench's allocation count sees only the relay path.
func benchRelayEngine(b *testing.B, shards int) *Engine {
	b.Helper()
	e := &Engine{
		cfg: Config{
			Backends:     []string{"bench"},
			BackendSlots: 10000,
			IdleTimeout:  -1,
			StallTimeout: -1,
		},
		base: time.Now(),
		quit: make(chan struct{}),
	}
	e.backends = []*backend{{idx: 0, addr: "bench"}}
	e.met = newLBMetrics(e, shards, nil)
	e.recs = make([]*obs.FlightRecorder, shards+1)
	for i := range e.recs {
		e.recs[i] = obs.NewFlightRecorder(0)
	}
	return e
}

// benchPipe returns a nonblocking pipe pair.
func benchPipe(b *testing.B) (r, w int) {
	b.Helper()
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		b.Fatal(err)
	}
	return p[0], p[1]
}

// BenchmarkLBRelayStep measures one relay step of the front tier with
// the sockets replaced by pipes (pipes splice exactly like sockets, with
// none of the TCP noise): a span of backend bytes enters the session's
// source, relay moves it source → per-session pipe → sink without
// leaving the kernel, and the bench drains the sink. One op = one step
// of one session. The steady state must not allocate — this path has to
// hold at 10k relayed sessions per tier — and it is pinned at exactly
// 0 B/op, 0 allocs/op in scripts/verify.sh.
func BenchmarkLBRelayStep(b *testing.B) {
	const chunk = 16 << 10
	for _, sessions := range []int{1, 1024} {
		b.Run(fmt.Sprintf("sessions_%d", sessions), func(b *testing.B) {
			e := benchRelayEngine(b, 1)
			sh, err := newShard(e, 0)
			if err != nil {
				b.Fatal(err)
			}
			defer sh.poller.close()
			srcW := make([]int, sessions)
			sinkR := make([]int, sessions)
			for i := 0; i < sessions; i++ {
				sr, sw := benchPipe(b)
				kr, kw := benchPipe(b)
				pr, pw := benchPipe(b)
				s := &session{
					id:         uint64(i + 1),
					bfd:        sr,
					cfd:        kw,
					pipeR:      pr,
					pipeW:      pw,
					pos:        i,
					backendIdx: 0,
					backend:    e.backends[0],
				}
				sh.sessions = append(sh.sessions, s)
				srcW[i], sinkR[i] = sw, kr
			}
			defer func() {
				for i, s := range sh.sessions {
					sh.closeRelay(s)
					_ = syscall.Close(srcW[i])
					_ = syscall.Close(sinkR[i])
				}
			}()
			span := make([]byte, chunk)
			drain := make([]byte, chunk)
			step := func(i, now int) {
				s := sh.sessions[i]
				if _, err := syscall.Write(srcW[i], span); err != nil {
					b.Fatal(err)
				}
				sh.relay(s, int64(now))
				if s.fallback {
					b.Fatal("relay fell back to the copy path on a pipe")
				}
				for got := 0; got < chunk; {
					n, err := syscall.Read(sinkR[i], drain[got:])
					if err != nil {
						b.Fatal(err)
					}
					got += n
				}
			}
			// Warmup: anchor every session (the one-time EvFirstWrite
			// record) so the timed loop is pure steady state.
			for i := 0; i < sessions; i++ {
				step(i, 0)
			}
			b.SetBytes(chunk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step(i%sessions, i+1)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// End-to-end fleet benchmark: real backends (child processes), real tier.
// ---------------------------------------------------------------------------

// TestFleetBackend is not a test: it is one smoothd-shaped backend for
// BenchmarkFleetLoopback, run in a re-exec'd child process so the
// per-process fd ceiling bounds each tier separately. It prints
// "LISTEN <addr>" once ready and exits when stdin closes.
func TestFleetBackend(t *testing.T) {
	if os.Getenv("FLEET_BACKEND") != "1" {
		t.Skip("backend half of BenchmarkFleetLoopback; set FLEET_BACKEND=1")
	}
	addr := startBackend(t, 24, 2*time.Millisecond, 1.1)
	fmt.Printf("LISTEN %s\n", addr)
	_, _ = bufio.NewReader(os.Stdin).ReadString('\n') // block until the parent hangs up
}

// startBackendProcess re-execs the test binary as one fleet backend.
func startBackendProcess(b *testing.B) (string, func()) {
	b.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestFleetBackend$", "-test.v")
	cmd.Env = append(os.Environ(), "FLEET_BACKEND=1")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		b.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		b.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		b.Fatal(err)
	}
	stop := func() {
		_ = stdin.Close()
		_ = cmd.Wait()
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "LISTEN "); ok {
			return rest, stop
		}
	}
	stop()
	b.Fatalf("fleet backend produced no LISTEN line (scan err: %v)", sc.Err())
	return "", nil
}

// benchWave drives waves of n digest-free sessions at addrs and returns
// the cumulative report. Waves are capped so the bench process (loadgen
// sockets + tier sockets + relay pipes ≈ 5 fds per concurrent session
// when addrs is the tier) stays under the fd ceiling.
func benchWave(b *testing.B, gen *loadgen.Engine, n, maxWave int) loadgen.Report {
	b.Helper()
	var last loadgen.Report
	var elapsed time.Duration
	for left := n; left > 0; {
		wave := left
		if wave > maxWave {
			wave = maxWave
		}
		rep, err := gen.Run(wave)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed > 0 {
			b.Fatalf("wave of %d: %d failed (%d dial, %d handshake, %d mid-stream)",
				wave, rep.Failed, rep.DialFailed, rep.HandshakeFailed, rep.MidStreamFailed)
		}
		rep.Elapsed = elapsed + rep.Elapsed
		elapsed = rep.Elapsed
		if last.Lag != nil && left < n {
			rep.Lag.Merge(last.Lag)
		}
		last = rep
		left -= wave
	}
	return last
}

// BenchmarkFleetLoopback drives N complete sessions through the full
// fleet path — loadgen → in-process smoothlb tier → two re-exec'd
// backend processes — and the same N directly at the backends, reporting
// the tier's added p99 step lag. One op = one full wave of N sessions
// through the tier. The 10k point runs 2500-session waves to stay under
// the per-process fd ceiling (each concurrent tier session holds 5 fds
// in this process: loadgen socket, tier client+backend sockets, pipe
// pair). The splice-fallback counter must stay zero — every relayed
// byte moves kernel-to-kernel.
func BenchmarkFleetLoopback(b *testing.B) {
	const maxWave = 2_500
	backendAddrs := make([]string, 2)
	for i := range backendAddrs {
		addr, stop := startBackendProcess(b)
		defer stop()
		backendAddrs[i] = addr
	}
	for _, n := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("sessions_%dk", n/1000), func(b *testing.B) {
			// Direct baseline, untimed: the same wave shape straight at
			// the backends.
			directGen, err := loadgen.New(loadgen.Config{Addrs: backendAddrs, Delay: 8, Dialers: 128})
			if err != nil {
				b.Fatal(err)
			}
			direct := benchWave(b, directGen, n, maxWave)
			directGen.Close()
			directP99 := float64(direct.Lag.Quantile(0.99))

			eng, err := New(Config{Backends: backendAddrs, PlaceWorkers: 64})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer ln.Close()
			var acceptWG sync.WaitGroup
			go func() {
				for {
					conn, err := ln.Accept()
					if err != nil {
						return
					}
					acceptWG.Add(1)
					go func(c net.Conn) {
						defer acceptWG.Done()
						_ = eng.Handle(c)
					}(conn)
				}
			}()
			gen, err := loadgen.New(loadgen.Config{Addrs: []string{ln.Addr().String()}, Delay: 8, Dialers: 128})
			if err != nil {
				b.Fatal(err)
			}
			defer gen.Close()

			b.ReportAllocs()
			b.ResetTimer()
			var last loadgen.Report
			for i := 0; i < b.N; i++ {
				last = benchWave(b, gen, n, maxWave)
			}
			b.StopTimer()
			lbP99 := float64(last.Lag.Quantile(0.99))
			b.ReportMetric(float64(n)/last.Elapsed.Seconds(), "sessions/s")
			b.ReportMetric(directP99, "direct-p99-µs")
			b.ReportMetric(lbP99, "lb-p99-µs")
			if directP99 > 0 {
				b.ReportMetric(100*(lbP99-directP99)/directP99, "lag-overhead-%")
			}
			if f := eng.SpliceFallbacks(); f != 0 {
				b.Fatalf("splice fallbacks %d, want 0: the zero-copy path regressed", f)
			}
		})
	}
}
