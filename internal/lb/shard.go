package lb

import (
	"net"
	"sync"
	"time"

	"repro/internal/netstream"
	"repro/internal/obs"
)

// spliceChunk bounds one backend→pipe splice; the default pipe holds
// 64 KiB, so a larger request just returns partial.
const spliceChunk = 256 << 10

// idleScanChunk bounds the idle/stall sweep per wake so a dense shard
// does not walk its whole table every 10ms.
const idleScanChunk = 256

// session is one relayed stream's state between reactor wakes: two fds,
// a kernel pipe holding in-flight bytes, and stall/idle stamps. It has
// no goroutine and no timer on Linux; the !linux fallback runs one
// copying goroutine per session instead.
type session struct {
	id          uint64
	clientConn  net.Conn
	backendConn net.Conn
	cfd, bfd    int
	pos         int // index in shard.sessions, maintained across swap-removes

	backend    *backend
	backendIdx int
	hello      netstream.Hello
	accept     netstream.Accept
	retries    int
	enqueued   int64 // engine-monotonic nanos at front-door admit
	start      time.Time

	// Relay state, owned by the shard after registration.
	pipeR, pipeW int
	pipeFill     int  // bytes parked in the pipe (disambiguates EAGAIN)
	ended        bool // backend EOF seen; retire once the pipe drains
	anchored     bool // first relayed byte recorded (EvFirstWrite)
	clientGone   bool // client hung up with nothing undelivered; backend decides
	stalled      bool
	stallStart   int64
	lastData     int64
	bytes        int64

	// Userspace fallback (first splice unsupported): a scratch buffer
	// with an unwritten [pendOff, pendLen) tail.
	fallback bool
	pend     []byte
	pendOff  int
	pendLen  int
}

// shard owns a set of relay sessions and the reactor resources they
// share: one poller and one flight ring.
//
//smoothvet:confined owned by the relay reactor goroutine after New hands it off
type shard struct {
	eng    *Engine
	poller *poller

	//smoothvet:shared guards incoming only
	mu sync.Mutex
	//smoothvet:shared appended under mu by enqueue, drained by admit
	incoming []*session
	spare    []*session

	//smoothvet:shared completion channel fed by !linux copy goroutines
	copyDone chan copyResult

	sessions []*session
	byFd     []*session
	idleCur  int

	// met and rec are this shard's obs slots and flight ring: recorded
	// into only by the reactor goroutine.
	met *obs.ShardMetrics
	rec *obs.FlightRecorder
}

// copyResult is one !linux copy goroutine's exit report.
type copyResult struct {
	s     *session
	bytes int64
	err   error
}

func newShard(e *Engine, idx int) (*shard, error) {
	p, err := newPoller()
	if err != nil {
		return nil, err
	}
	return &shard{
		eng:      e,
		poller:   p,
		byFd:     make([]*session, 1024),
		copyDone: make(chan copyResult, 64),
		met:      e.met.reg.Shard(idx),
		rec:      e.recs[idx+1],
	}, nil
}

// enqueue hands a placed session to the shard; it reports false when the
// engine is closing and the session was not accepted.
func (sh *shard) enqueue(s *session) bool {
	sh.mu.Lock()
	if sh.eng.closing.Load() {
		sh.mu.Unlock()
		return false
	}
	sh.incoming = append(sh.incoming, s)
	sh.mu.Unlock()
	return true
}

// admit registers every queued session. Runs on the shard goroutine.
func (sh *shard) admit(now int64) {
	sh.mu.Lock()
	if len(sh.incoming) == 0 {
		sh.mu.Unlock()
		return
	}
	pend := sh.incoming
	sh.incoming = sh.spare[:0]
	sh.mu.Unlock()
	for i := range pend {
		sh.register(pend[i], now)
		pend[i] = nil
	}
	sh.spare = pend[:0]
}

// register starts the relay for one placed session: the platform reactor
// wires the fds (pipes + epoll on Linux, a copy goroutine elsewhere).
func (sh *shard) register(s *session, now int64) {
	sh.met.Observe(sh.eng.met.hAdmitWait, (now-s.enqueued)/1000)
	s.lastData = now
	if err := sh.startRelay(s, now); err != nil {
		sh.retire(s, err, now)
		return
	}
	sh.met.Inc(sh.eng.met.cRelayed)
	s.pos = len(sh.sessions)
	sh.sessions = append(sh.sessions, s)
}

func (sh *shard) lookupFd(fd int) *session {
	if fd < 0 || fd >= len(sh.byFd) {
		return nil
	}
	return sh.byFd[fd]
}

// mapFd points the shard's fd table at s, growing it as needed.
func (sh *shard) mapFd(fd int, s *session) {
	if fd >= len(sh.byFd) {
		grown := make([]*session, fd+fd/2+1)
		copy(grown, sh.byFd)
		sh.byFd = grown
	}
	sh.byFd[fd] = s
}

func (sh *shard) unmapFd(fd int, s *session) {
	if fd >= 0 && fd < len(sh.byFd) && sh.byFd[fd] == s {
		sh.byFd[fd] = nil
	}
}

// retire finishes a session: success when err is nil, else a relay
// failure. Runs on the shard goroutine. now is the caller's wake stamp;
// retire sits downstream of the noalloc relay path, so it derives
// Elapsed from the stamp instead of re-reading the wall clock.
func (sh *shard) retire(s *session, err error, now int64) {
	sh.closeRelay(s)
	if last := len(sh.sessions) - 1; last >= 0 && s.pos >= 0 && s.pos <= last && sh.sessions[s.pos] == s {
		sh.sessions[s.pos] = sh.sessions[last]
		sh.sessions[s.pos].pos = s.pos
		sh.sessions[last] = nil
		sh.sessions = sh.sessions[:last]
		if sh.idleCur > last {
			sh.idleCur = 0
		}
	}
	if s.backendConn != nil {
		_ = s.backendConn.Close()
	}
	_ = s.clientConn.Close()
	if s.backend != nil {
		s.backend.active.Add(-1)
	}
	m := sh.eng.met
	if err == nil {
		sh.met.Inc(m.cCompleted)
		sh.rec.Record(now, obs.EvRetire, s.id, s.bytes)
	} else {
		sh.met.Inc(m.cFailed)
		sh.rec.Record(now, obs.EvError, s.id, int64(s.backendIdx))
	}
	sh.eng.sessionDone(s, err, now)
}

// scanIdle sweeps up to idleScanChunk sessions for idle and stall
// timeouts, resuming where the last wake left off.
func (sh *shard) scanIdle(now int64) {
	idle := int64(sh.eng.cfg.IdleTimeout)
	stall := int64(sh.eng.cfg.StallTimeout)
	if (idle <= 0 && stall <= 0) || len(sh.sessions) == 0 {
		return
	}
	k := idleScanChunk
	if k > len(sh.sessions) {
		k = len(sh.sessions)
	}
	for ; k > 0; k-- {
		if sh.idleCur >= len(sh.sessions) {
			sh.idleCur = 0
		}
		if len(sh.sessions) == 0 {
			return
		}
		s := sh.sessions[sh.idleCur]
		if s.stalled && stall > 0 && now-s.stallStart > stall {
			sh.retire(s, errStallTimeout, now)
			continue
		}
		if !s.stalled && idle > 0 && now-s.lastData > idle {
			sh.retire(s, errIdleTimeout, now)
			continue
		}
		sh.idleCur++
	}
}

// drainIncoming aborts every queued-but-unregistered session; part of
// the platform shutdown paths.
func (sh *shard) drainIncoming(now int64) {
	sh.mu.Lock()
	pend := sh.incoming
	sh.incoming = nil
	sh.mu.Unlock()
	for _, s := range pend {
		sh.retire(s, errRelayShutdown, now)
	}
}
