//go:build linux

package lb

import (
	"fmt"
	"io"
	"net"
	"syscall"

	"repro/internal/obs"
)

const (
	// epollWaitMs bounds one reactor nap; it also bounds how long a
	// placed session waits for registration.
	epollWaitMs = 10
	// maxEvents is the per-wait event batch; more ready fds than this
	// simply surface on the next wait (level-triggered).
	maxEvents = 1024
)

// poller wraps one epoll set watching two fds per session: the backend
// socket for readability and the client socket for hangup (plus a
// one-shot EPOLLOUT while the client is stalled).
type poller struct {
	epfd   int
	events []syscall.EpollEvent
}

func newPoller() (*poller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, fmt.Errorf("lb: epoll_create: %w", err)
	}
	return &poller{epfd: epfd, events: make([]syscall.EpollEvent, maxEvents)}, nil
}

// addRead arms fd for readability and peer hangup (the backend side).
func (p *poller) addRead(fd int) error {
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN | syscall.EPOLLRDHUP, Fd: int32(fd)}
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, fd, &ev)
}

// addHup arms fd for peer hangup only (the client side at rest; the
// relay never reads the client).
func (p *poller) addHup(fd int) error {
	ev := syscall.EpollEvent{Events: syscall.EPOLLRDHUP, Fd: int32(fd)}
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, fd, &ev)
}

// armWrite switches a stalled client fd to one-shot writability: it
// fires once when the socket drains, then stays quiet until re-armed.
func (p *poller) armWrite(fd int) error {
	ev := syscall.EpollEvent{Events: syscall.EPOLLOUT | syscall.EPOLLRDHUP | syscall.EPOLLONESHOT, Fd: int32(fd)}
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, fd, &ev)
}

// rearmHup returns a resumed client fd to hangup-only watching.
func (p *poller) rearmHup(fd int) error {
	ev := syscall.EpollEvent{Events: syscall.EPOLLRDHUP, Fd: int32(fd)}
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, fd, &ev)
}

func (p *poller) del(fd int) error {
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, fd, nil)
}

func (p *poller) close() {
	if p.epfd >= 0 {
		_ = syscall.Close(p.epfd)
		p.epfd = -1
	}
}

// run is the shard reactor loop: wait for ready fds, stamp the shard
// clock once, admit placed sessions, relay every ready session against
// that one stamp, sweep a bounded idle/stall chunk. The single stamp per
// wake is the same tickClock discipline as internal/serve: every stall
// measurement and flight tick in a wake shares one monotonic reading.
func (sh *shard) run() {
	defer sh.eng.loopWG.Done()
	for {
		n, err := syscall.EpollWait(sh.poller.epfd, sh.poller.events, epollWaitMs)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			n = 0
		}
		now := sh.eng.monotonic()
		sh.admit(now)
		for i := 0; i < n; i++ {
			ev := &sh.poller.events[i]
			if s := sh.lookupFd(int(ev.Fd)); s != nil {
				sh.dispatch(s, int(ev.Fd), ev.Events, now)
			}
		}
		sh.scanIdle(now)
		// Publish the wake's metric state: one gauge store plus an
		// O(metrics) snapshot copy per wake (≤100/s), never per byte.
		sh.met.Set(sh.eng.met.gActive, uint64(len(sh.sessions)))
		sh.met.Publish()
		if sh.eng.closing.Load() {
			sh.shutdown()
			return
		}
	}
}

// dispatch routes one epoll event: client-fd events resume a stalled
// write or notice a hangup; backend-fd events pump the relay.
//
//smoothvet:noalloc
func (sh *shard) dispatch(s *session, fd int, events uint32, now int64) {
	if fd == s.cfd {
		if s.stalled {
			s.stalled = false
			sh.met.Observe(sh.eng.met.hStall, (now-s.stallStart)/1000)
			if err := sh.poller.rearmHup(s.cfd); err != nil {
				sh.retire(s, err, now)
				return
			}
			// The backend fd left the epoll set at stall time; bytes it
			// buffered meanwhile surface level-triggered once re-added.
			if err := sh.poller.addRead(s.bfd); err != nil {
				sh.retire(s, err, now)
				return
			}
			sh.relay(s, now)
			return
		}
		if events&(syscall.EPOLLRDHUP|syscall.EPOLLHUP|syscall.EPOLLERR) != 0 {
			sh.onClientHup(s, now)
		}
		return
	}
	if s.stalled {
		// A backend event harvested in the same wake batch as the stall:
		// re-entering relay would re-stall and reset the stall clock,
		// defeating StallTimeout. The data keeps until the client resumes.
		return
	}
	sh.relay(s, now)
}

// onClientHup classifies a client hangup. Undelivered bytes — a parked
// pipe or copy tail — mean the client abandoned mid-stream: fail the
// session. With nothing undelivered the verdict belongs to the backend:
// its EOF means the client consumed the whole stream and simply closed
// first (the two FINs race through separate sockets, which is not a
// failure), while further payload is undeliverable. The session lingers
// on backend events until one of those arrives; the idle sweep bounds
// the wait. The client fd leaves the epoll set here so its level-
// triggered HUP stops re-firing every wake.
//
//smoothvet:noalloc
func (sh *shard) onClientHup(s *session, now int64) {
	if s.clientGone {
		return
	}
	if s.pipeFill > 0 || s.pendOff < s.pendLen {
		sh.retire(s, errClientGone, now)
		return
	}
	s.clientGone = true
	_ = sh.poller.del(s.cfd)
	// The backend's EOF may already be queued on its socket: resolve
	// immediately when it is.
	sh.finishClientGone(s, now)
}

// finishClientGone pumps the backend of a client-gone session to a
// verdict: payload fails it, EOF completes it, EAGAIN waits for the next
// backend event.
//
//smoothvet:noalloc
func (sh *shard) finishClientGone(s *session, now int64) {
	for {
		var n int
		var err error
		if s.fallback {
			n, err = syscall.Read(s.bfd, s.pend)
		} else {
			var sn int64
			sn, err = syscall.Splice(s.bfd, nil, s.pipeW, nil, spliceChunk, spliceFlags)
			n = int(sn)
		}
		if n > 0 {
			sh.retire(s, errClientGone, now)
			return
		}
		if err == nil {
			if s.ended || s.bytes > 0 {
				sh.retire(s, nil, now)
			} else {
				sh.retire(s, errClientGone, now)
			}
			return
		}
		if en, ok := err.(syscall.Errno); ok {
			if en == syscall.EAGAIN {
				return
			}
			if en == syscall.EINTR {
				continue
			}
		}
		sh.retire(s, err, now)
		return
	}
}

// startRelay wires a placed session into the reactor: a pipe pair for
// the splice path, both fds into the epoll set. Runs on the shard
// goroutine.
func (sh *shard) startRelay(s *session, now int64) error {
	ctc, ok := s.clientConn.(*net.TCPConn)
	if !ok {
		return fmt.Errorf("lb: client %T is not a TCP connection", s.clientConn)
	}
	btc, ok := s.backendConn.(*net.TCPConn)
	if !ok {
		return fmt.Errorf("lb: backend conn %T is not a TCP connection", s.backendConn)
	}
	cfd, err := connFd(ctc)
	if err != nil {
		return err
	}
	bfd, err := connFd(btc)
	if err != nil {
		return err
	}
	var pipe [2]int
	if err := syscall.Pipe2(pipe[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		return fmt.Errorf("lb: pipe2: %w", err)
	}
	s.cfd, s.bfd = cfd, bfd
	s.pipeR, s.pipeW = pipe[0], pipe[1]
	if err := sh.poller.addRead(bfd); err != nil {
		return fmt.Errorf("lb: epoll add backend: %w", err)
	}
	if err := sh.poller.addHup(cfd); err != nil {
		_ = sh.poller.del(bfd)
		return fmt.Errorf("lb: epoll add client: %w", err)
	}
	sh.mapFd(bfd, s)
	sh.mapFd(cfd, s)
	// No immediate relay: epoll is level-triggered, so bytes the backend
	// sent while the session sat in the queue surface on the next wait.
	return nil
}

// closeRelay releases a session's reactor resources: epoll entries, the
// fd table, the pipe pair.
func (sh *shard) closeRelay(s *session) {
	if s.bfd >= 0 {
		_ = sh.poller.del(s.bfd)
		sh.unmapFd(s.bfd, s)
		s.bfd = -1
	}
	if s.cfd >= 0 {
		_ = sh.poller.del(s.cfd)
		sh.unmapFd(s.cfd, s)
		s.cfd = -1
	}
	if s.pipeR >= 0 {
		_ = syscall.Close(s.pipeR)
		_ = syscall.Close(s.pipeW)
		s.pipeR, s.pipeW = -1, -1
	}
}

// relay is the steady-state hot path: drain the pipe into the client,
// refill it from the backend, entirely kernel-to-kernel. pipeFill tracks
// the bytes parked in the pipe, which disambiguates EAGAIN (empty source
// vs full sink) without a peek syscall.
//
//smoothvet:noalloc
func (sh *shard) relay(s *session, now int64) {
	if s.clientGone {
		sh.finishClientGone(s, now)
		return
	}
	if s.fallback {
		sh.relayCopy(s, now)
		return
	}
	for {
		for s.pipeFill > 0 {
			n, err := syscall.Splice(s.pipeR, nil, s.cfd, nil, s.pipeFill, spliceFlags)
			if n > 0 {
				s.pipeFill -= int(n)
				s.bytes += n
				continue
			}
			if en, ok := err.(syscall.Errno); ok {
				if en == syscall.EAGAIN {
					// The client's socket buffer is full: park on a
					// one-shot EPOLLOUT.
					sh.stall(s, now)
					return
				}
				if en == syscall.EINTR {
					continue
				}
			}
			sh.retire(s, err, now)
			return
		}
		if s.ended {
			sh.retire(s, nil, now)
			return
		}
		n, err := syscall.Splice(s.bfd, nil, s.pipeW, nil, spliceChunk, spliceFlags)
		if n > 0 {
			s.pipeFill += int(n)
			s.lastData = now
			if !s.anchored {
				s.anchored = true
				sh.rec.Record(now, obs.EvFirstWrite, s.id, int64(s.backendIdx))
			}
			continue
		}
		if err == nil {
			// Backend EOF: flush whatever the pipe still holds, then
			// retire clean on the next loop.
			s.ended = true
			continue
		}
		if en, ok := err.(syscall.Errno); ok {
			switch en {
			case syscall.EAGAIN:
				return
			case syscall.EINTR:
				continue
			case syscall.EINVAL, syscall.ENOSYS:
				if s.bytes == 0 && s.pipeFill == 0 {
					// These fds cannot splice (exotic socket type): fall
					// back to the userspace copy loop for this session.
					sh.toFallback(s)
					sh.relayCopy(s, now)
					return
				}
			}
		}
		sh.retire(s, err, now)
		return
	}
}

const spliceFlags = 0x1 | 0x2 // SPLICE_F_MOVE | SPLICE_F_NONBLOCK

// stall parks a session on client writability. The backend fd leaves the
// epoll set for the duration: its level-triggered readability would
// otherwise spin the reactor awake (and, via relay, reset the stall
// clock) the whole time the client is parked. Pending backend bytes wait
// in its socket buffer and resurface when dispatch re-adds the fd at
// resume.
func (sh *shard) stall(s *session, now int64) {
	if s.stalled {
		return
	}
	s.stalled = true
	s.stallStart = now
	sh.met.Inc(sh.eng.met.cStalls)
	if err := sh.poller.del(s.bfd); err != nil {
		sh.retire(s, err, now)
		return
	}
	if err := sh.poller.armWrite(s.cfd); err != nil {
		sh.retire(s, err, now)
	}
}

// toFallback abandons the splice path for one session: close the pipe
// (empty by the caller's check) and set up the copy buffer. This is the
// cold exit off the hot path — it allocates, once, and is counted.
func (sh *shard) toFallback(s *session) {
	_ = syscall.Close(s.pipeR)
	_ = syscall.Close(s.pipeW)
	s.pipeR, s.pipeW = -1, -1
	s.pend = make([]byte, 64<<10)
	s.fallback = true
	sh.met.Inc(sh.eng.met.cFallback)
	sh.eng.fallbacks.Add(1)
}

// relayCopy is the userspace fallback: read the backend into the
// session's scratch buffer, write the tail to the client, same stall and
// EOF discipline as the splice path. Steady state allocates nothing —
// the scratch buffer was sized at the fallback transition.
//
//smoothvet:noalloc
func (sh *shard) relayCopy(s *session, now int64) {
	for {
		for s.pendOff < s.pendLen {
			n, err := syscall.Write(s.cfd, s.pend[s.pendOff:s.pendLen])
			if n > 0 {
				s.pendOff += n
				s.bytes += int64(n)
				continue
			}
			if en, ok := err.(syscall.Errno); ok {
				if en == syscall.EAGAIN {
					sh.stall(s, now)
					return
				}
				if en == syscall.EINTR {
					continue
				}
			}
			sh.retire(s, err, now)
			return
		}
		if s.ended {
			sh.retire(s, nil, now)
			return
		}
		n, err := syscall.Read(s.bfd, s.pend)
		if n > 0 {
			s.pendOff, s.pendLen = 0, n
			s.lastData = now
			if !s.anchored {
				s.anchored = true
				sh.rec.Record(now, obs.EvFirstWrite, s.id, int64(s.backendIdx))
			}
			continue
		}
		if n == 0 && err == nil {
			s.ended = true
			continue
		}
		if en, ok := err.(syscall.Errno); ok {
			if en == syscall.EAGAIN {
				return
			}
			if en == syscall.EINTR {
				continue
			}
		}
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		sh.retire(s, err, now)
		return
	}
}

// shutdown aborts every live and queued session and releases the epoll
// set. Runs once, on the shard goroutine, after Engine.Close.
func (sh *shard) shutdown() {
	now := sh.eng.monotonic()
	for len(sh.sessions) > 0 {
		sh.retire(sh.sessions[len(sh.sessions)-1], errRelayShutdown, now)
	}
	sh.drainIncoming(now)
	sh.met.Set(sh.eng.met.gActive, 0)
	sh.met.Publish()
	sh.poller.close()
}
