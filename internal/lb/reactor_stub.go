//go:build !linux

package lb

import (
	"io"
	"net"
	"time"

	"repro/internal/obs"
)

// Non-Linux fallback reactor: no epoll and no splice. Every session gets
// one copying goroutine running io.CopyBuffer with a write-deadline
// armed per chunk; the shard goroutine keeps ownership of the session
// table and drains completion reports from copyDone. Every relay through
// this path counts as a splice fallback.

const tickMs = 10

// poller is a stub on non-Linux builds; the copy goroutines replace the
// epoll set.
type poller struct{}

func newPoller() (*poller, error) { return &poller{}, nil }

func (p *poller) close() {}

// run is the shard loop: tick, admit placed sessions, reap finished copy
// goroutines, sweep idle timers.
func (sh *shard) run() {
	defer sh.eng.loopWG.Done()
	tick := time.NewTicker(tickMs * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
		case res := <-sh.copyDone:
			now := sh.eng.monotonic()
			res.s.bytes = res.bytes
			sh.retire(res.s, res.err, now)
			continue
		}
		now := sh.eng.monotonic()
		sh.admit(now)
		sh.met.Set(sh.eng.met.gActive, uint64(len(sh.sessions)))
		sh.met.Publish()
		if sh.eng.closing.Load() {
			sh.shutdown()
			return
		}
	}
}

// startRelay launches the copy goroutine for one session. The fallback
// counter ticks here: this platform never splices.
func (sh *shard) startRelay(s *session, now int64) error {
	s.fallback = true
	sh.met.Inc(sh.eng.met.cFallback)
	sh.eng.fallbacks.Add(1)
	sh.rec.Record(now, obs.EvFirstWrite, s.id, int64(s.backendIdx))
	//smoothvet:transfer s handed to its copy goroutine until copyDone
	go sh.copySession(s)
	return nil
}

// copySession relays backend→client in userspace until EOF or error.
// Both directions carry a per-chunk deadline: the reader enforces
// Config.IdleTimeout on a silent backend, the writer Config.StallTimeout
// on a stalled client — the same two timeouts the Linux reactor's idle
// sweep applies.
func (sh *shard) copySession(s *session) {
	buf := make([]byte, 64<<10)
	src := &deadlineReader{c: s.backendConn, d: sh.eng.cfg.IdleTimeout}
	dst := &deadlineWriter{c: s.clientConn, d: sh.eng.cfg.StallTimeout}
	n, err := io.CopyBuffer(dst, src, buf)
	sh.copyDone <- copyResult{s: s, bytes: n, err: err}
}

// deadlineWriter arms a write deadline before every chunk so a stalled
// client cannot wedge the copy goroutine forever.
type deadlineWriter struct {
	c net.Conn
	d time.Duration
}

func (w *deadlineWriter) Write(p []byte) (int, error) {
	if w.d > 0 {
		if err := w.c.SetWriteDeadline(time.Now().Add(w.d)); err != nil {
			return 0, err
		}
	}
	return w.c.Write(p)
}

// deadlineReader arms a read deadline before every chunk so a backend
// that goes silent retires the session after Config.IdleTimeout instead
// of pinning the copy goroutine until process shutdown. A timeout is
// rewritten to errIdleTimeout, which io.CopyBuffer surfaces as the copy
// error.
type deadlineReader struct {
	c net.Conn
	d time.Duration
}

func (r *deadlineReader) Read(p []byte) (int, error) {
	if r.d > 0 {
		if err := r.c.SetReadDeadline(time.Now().Add(r.d)); err != nil {
			return 0, err
		}
	}
	n, err := r.c.Read(p)
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		err = errIdleTimeout
	}
	return n, err
}

// closeRelay has nothing to release here: the copy goroutine owns no
// shard-visible resources and exits when retire closes the conns.
func (sh *shard) closeRelay(s *session) {}

// shutdown closes every live session's conns (unblocking the copy
// goroutines), then reaps them all before releasing the shard.
func (sh *shard) shutdown() {
	now := sh.eng.monotonic()
	live := len(sh.sessions)
	for _, s := range sh.sessions {
		_ = s.backendConn.Close()
		_ = s.clientConn.Close()
	}
	for i := 0; i < live; i++ {
		res := <-sh.copyDone
		res.s.bytes = res.bytes
		sh.retire(res.s, errRelayShutdown, now)
	}
	sh.drainIncoming(now)
	sh.met.Set(sh.eng.met.gActive, 0)
	sh.met.Publish()
	sh.poller.close()
}
