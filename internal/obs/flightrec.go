package obs

import (
	"io"
	"sync"
)

// EventKind tags one session-lifecycle event in a flight recorder ring.
type EventKind uint8

const (
	// EvAdmit marks a session entering a shard's active set.
	EvAdmit EventKind = iota
	// EvCohortAssign marks a session binding to a cohort schedule plan
	// (arg is an opaque cohort tag; absent for fallback sessions).
	EvCohortAssign
	// EvFirstWrite marks a session's first payload write (serve) or first
	// decoded message (loadgen); the distance from EvAdmit is startup lag.
	EvFirstWrite
	// EvDeadlineExpiry marks a write missing its armed deadline — the
	// slow-client signal that precedes eviction.
	EvDeadlineExpiry
	// EvRetire marks a clean session exit (arg is steps completed).
	EvRetire
	// EvError marks a failed session exit (arg is a stage/errno tag).
	EvError
	// EvPlace marks a front-tier session placed on a backend (arg is the
	// backend index).
	EvPlace
	// EvReplace marks a front-tier session pulled back off a backend —
	// drain or dial failure — and returned to placement (arg is the
	// backend index it left).
	EvReplace
	// EvBackendDrain marks a backend entering graceful drain (sess is the
	// backend index; no session is involved).
	EvBackendDrain
)

var eventKindNames = [...]string{
	EvAdmit:          "admit",
	EvCohortAssign:   "cohort-assign",
	EvFirstWrite:     "first-write",
	EvDeadlineExpiry: "deadline-expiry",
	EvRetire:         "retire",
	EvError:          "error",
	EvPlace:          "place",
	EvReplace:        "re-place",
	EvBackendDrain:   "backend-drain",
}

// String returns the event kind's wire name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one fixed-size flight-recorder entry: the shard tick stamp
// (engine-monotonic nanos, never a wall-clock read), the session it
// concerns and a kind-specific argument.
type Event struct {
	Tick int64 // shard tick clock, nanos
	Sess uint64
	Arg  int64
	Kind EventKind
	Seq  uint32 // global position, detects wrap in dumps
}

// DefaultFlightRecEvents is the per-shard ring capacity: 4096 events
// (~128 KiB/shard) reach back several full waves at typical densities.
const DefaultFlightRecEvents = 4096

// FlightRecorder is one shard's fixed-size ring of session-lifecycle
// events. Record is the zero-alloc hot-path entry point: the shard
// goroutine is the only writer, and the mutex it takes is contended only
// while a dump copies the ring — never shard-vs-shard. Dumps (SIGUSR1,
// SLO breach, /debug/flightrec) copy the ring under the mutex and render
// outside it.
//
//smoothvet:confined owned by the recording shard goroutine; dumps copy under mu
type FlightRecorder struct {
	//smoothvet:shared guards buf/pos against dump copies
	mu sync.Mutex
	//smoothvet:shared ring storage, copied out under mu
	buf []Event
	//smoothvet:shared next write position (monotonic; wraps via modulo)
	pos uint32
}

// NewFlightRecorder returns a ring holding the most recent n events
// (DefaultFlightRecEvents when n <= 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightRecEvents
	}
	return &FlightRecorder{buf: make([]Event, 0, n)}
}

// Record appends one event, overwriting the oldest once the ring is
// full. tick is the shard's tick-clock stamp; Record performs no clock
// reads and no allocation.
//
//smoothvet:noalloc
func (r *FlightRecorder) Record(tick int64, kind EventKind, sess uint64, arg int64) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, Event{Tick: tick, Sess: sess, Arg: arg, Kind: kind, Seq: r.pos})
	} else {
		r.buf[int(r.pos)%len(r.buf)] = Event{Tick: tick, Sess: sess, Arg: arg, Kind: kind, Seq: r.pos}
	}
	r.pos++
	r.mu.Unlock()
}

// CopyInto appends the ring's events, oldest first, to dst and returns
// the extended slice. The copy is taken under the ring's mutex; rendering
// happens on the caller's time.
func (r *FlightRecorder) CopyInto(dst []Event) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) || len(r.buf) == 0 {
		return append(dst, r.buf...)
	}
	head := int(r.pos) % len(r.buf)
	dst = append(dst, r.buf[head:]...)
	return append(dst, r.buf[:head]...)
}

// Len returns the number of events currently held.
func (r *FlightRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped returns how many events have been overwritten since the ring
// was created.
func (r *FlightRecorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		return 0
	}
	return uint64(r.pos) - uint64(len(r.buf))
}

// WriteFlightDump renders every recorder's ring as text, one line per
// event in shard-major, oldest-first order:
//
//	shard=0 seq=17 tick=120000000 sess=42 kind=retire arg=300
//
// Ticks are engine-monotonic nanos (offsets within the run, not wall
// time), so two dumps of identical state are byte-identical.
func WriteFlightDump(w io.Writer, recs []*FlightRecorder) error {
	ew := &errWriter{w: w}
	var scratch []Event
	for i, r := range recs {
		if r == nil {
			continue
		}
		scratch = r.CopyInto(scratch[:0])
		ew.printf("# shard %d: %d events, %d dropped\n", i, len(scratch), r.Dropped())
		for _, ev := range scratch {
			ew.printf("shard=%d seq=%d tick=%d sess=%d kind=%s arg=%d\n",
				i, ev.Seq, ev.Tick, ev.Sess, ev.Kind, ev.Arg)
		}
	}
	return ew.err
}

// WriteFlightJSON renders every recorder's ring as a JSON array of event
// objects in the same order as WriteFlightDump.
func WriteFlightJSON(w io.Writer, recs []*FlightRecorder) error {
	ew := &errWriter{w: w}
	ew.printf("[")
	first := true
	var scratch []Event
	for i, r := range recs {
		if r == nil {
			continue
		}
		scratch = r.CopyInto(scratch[:0])
		for _, ev := range scratch {
			if !first {
				ew.printf(",")
			}
			first = false
			ew.printf(`{"shard":%d,"seq":%d,"tick":%d,"sess":%d,"kind":%q,"arg":%d}`,
				i, ev.Seq, ev.Tick, ev.Sess, ev.Kind.String(), ev.Arg)
		}
	}
	ew.printf("]\n")
	return ew.err
}
