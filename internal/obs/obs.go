// Package obs is the shard-confined, zero-allocation observability layer
// for the serving and load-generating engines. The paper's guarantees are
// statements about per-step behavior — weighted loss, buffer occupancy,
// playout lag — and this package makes those signals visible while a run
// is live, at a cost the density story can absorb: recording a metric on
// the hot path is a plain uint64 increment (or a stats.LogHistogram
// bucket bump) into slots owned by the recording shard goroutine, with no
// atomics, no locks and no allocation.
//
// # Ownership and the scrape-merge contract
//
// The layer splits every metric into three planes:
//
//   - Shard slots (ShardMetrics, //smoothvet:confined): plain uint64
//     words and histograms written only by the owning shard goroutine.
//     This is the record path, pinned at 0 B/op 0 allocs/op by
//     BenchmarkObsRecord and vetted by the hotpath/shardconfine
//     analyzers.
//   - Published snapshots: once per tick (serve) or reactor wake
//     (loadgen) the shard calls Publish, which copies its live slots into
//     atomic words and its histograms into mutex-guarded snapshot copies.
//     Publication is O(number of metrics), not O(events), so the per-event
//     cost stays a plain increment.
//   - Scrape merge: a scraper (Prometheus /metrics, /statusz, the SLO
//     accountant) sums the published atomics and merges the published
//     histogram snapshots across shards. Summation is exact and
//     order-invariant, so the merged totals are independent of the shard
//     count — the same invariance contract the engines hold for their
//     wire output.
//
// A scrape therefore observes the state as of each shard's most recent
// publish — at most one tick stale — and never contends with the record
// path beyond the per-shard snapshot mutex held during a copy.
//
// The Registry (metric definitions, shard set, global slots) is immutable
// after Build: it is //smoothvet:frozen, so the pubimmut analyzer rejects
// any post-publication write to its tables. Engine-side events that do
// not happen on a shard goroutine (admission rejections on acceptor
// goroutines, dial failures on dialer goroutines) record into the
// registry's global atomic slots instead.
package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Kind classifies a metric for rendering.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a point-in-time value (summed across shards at scrape).
	KindGauge
	// KindHist is a stats.LogHistogram distribution in microseconds (or
	// the unit named by the metric).
	KindHist
	// KindFunc is a callback gauge evaluated at scrape time (runtime
	// stats, admission counters owned by other packages).
	KindFunc
)

// CounterID, GaugeID and HistID index a registry's slot tables. The zero
// value of each is a valid ID only if it was returned by the Builder.
type (
	CounterID int
	GaugeID   int
	HistID    int
)

// Def describes one registered metric.
type Def struct {
	Name string
	Help string
	Kind Kind
	slot int // scalar slot for counters/gauges, hist slot for hists, func slot for funcs
}

// Builder accumulates metric definitions before the registry is frozen.
// The zero value is ready to use. Builders are not safe for concurrent
// use; engines build their registries during construction.
type Builder struct {
	defs    []Def
	nScalar int
	nHist   int
	funcs   []func() int64
}

// Counter registers a monotonic counter and returns its ID.
func (b *Builder) Counter(name, help string) CounterID {
	id := b.nScalar
	b.nScalar++
	b.defs = append(b.defs, Def{Name: name, Help: help, Kind: KindCounter, slot: id})
	return CounterID(id)
}

// Gauge registers a gauge (summed across shards at scrape) and returns
// its ID.
func (b *Builder) Gauge(name, help string) GaugeID {
	id := b.nScalar
	b.nScalar++
	b.defs = append(b.defs, Def{Name: name, Help: help, Kind: KindGauge, slot: id})
	return GaugeID(id)
}

// Histogram registers a log-bucketed distribution and returns its ID.
func (b *Builder) Histogram(name, help string) HistID {
	id := b.nHist
	b.nHist++
	b.defs = append(b.defs, Def{Name: name, Help: help, Kind: KindHist, slot: id})
	return HistID(id)
}

// Func registers a callback gauge evaluated at scrape time. f must be
// safe to call from any goroutine.
func (b *Builder) Func(name, help string, f func() int64) {
	b.defs = append(b.defs, Def{Name: name, Help: help, Kind: KindFunc, slot: len(b.funcs)})
	b.funcs = append(b.funcs, f)
}

// Build freezes the definitions into a Registry with one ShardMetrics
// per shard. The shard count is fixed for the registry's lifetime — the
// engines know theirs at construction.
func Build(b *Builder, shards int) *Registry {
	if shards < 1 {
		shards = 1
	}
	shardSet := make([]*ShardMetrics, shards)
	for i := range shardSet {
		m := &ShardMetrics{
			live:  make([]uint64, b.nScalar),
			pub:   make([]atomic.Uint64, b.nScalar),
			hists: make([]*stats.LogHistogram, b.nHist),
			snap:  make([]*stats.LogHistogram, b.nHist),
		}
		for h := 0; h < b.nHist; h++ {
			m.hists[h] = stats.NewLogHistogram(stats.DefaultLogHistSubBits)
			m.snap[h] = stats.NewLogHistogram(stats.DefaultLogHistSubBits)
		}
		shardSet[i] = m
	}
	r := &Registry{
		defs:    append([]Def(nil), b.defs...),
		nScalar: b.nScalar,
		nHist:   b.nHist,
		funcs:   append([]func() int64(nil), b.funcs...),
		global:  make([]atomic.Uint64, b.nScalar),
		shards:  shardSet,
	}
	return r
}

// Registry is the frozen metric table of one engine: definitions, the
// per-shard slot sets, and global atomic slots for events recorded off
// the shard goroutines. All fields are filled by Build and never written
// again; scrapers only read, sum and merge.
//
//smoothvet:frozen immutable after Build; scrape paths only read
type Registry struct {
	defs    []Def
	nScalar int
	nHist   int
	funcs   []func() int64
	// global holds the off-shard half of every scalar: atomic slots
	// written by acceptor/dialer goroutines via GlobalInc/GlobalAdd.
	// Atomic method calls mutate the words in place without writing the
	// frozen slice header.
	global []atomic.Uint64
	shards []*ShardMetrics
}

// Shards returns the number of per-shard slot sets.
func (r *Registry) Shards() int { return len(r.shards) }

// Shard returns shard i's confined slot set. The caller must hand it to
// exactly one goroutine; only that goroutine may record into it.
func (r *Registry) Shard(i int) *ShardMetrics { return r.shards[i] }

// GlobalInc increments the global (off-shard) half of a counter. Safe
// from any goroutine.
func (r *Registry) GlobalInc(id CounterID) { r.global[id].Add(1) }

// GlobalAdd adds n to the global half of a counter. Safe from any
// goroutine.
func (r *Registry) GlobalAdd(id CounterID, n uint64) { r.global[id].Add(n) }

// ShardMetrics is one shard's live metric slots. The recording methods
// (Inc, Add, Set, Observe) touch only plain shard-owned memory and are
// the zero-alloc record path; Publish copies the live state into the
// shared snapshot planes and is called once per tick by the owner.
//
//smoothvet:confined owned by the recording shard goroutine
type ShardMetrics struct {
	live  []uint64
	hists []*stats.LogHistogram

	//smoothvet:shared atomic snapshot words, stored by Publish, read by scrapers
	pub []atomic.Uint64
	//smoothvet:shared guards snap
	snapMu sync.Mutex
	//smoothvet:shared histogram snapshots, copied under snapMu
	snap []*stats.LogHistogram
}

// Inc increments a counter slot.
//
//smoothvet:noalloc
func (m *ShardMetrics) Inc(id CounterID) { m.live[id]++ }

// Add adds n to a counter slot.
//
//smoothvet:noalloc
func (m *ShardMetrics) Add(id CounterID, n uint64) { m.live[id] += n }

// Set stores a gauge slot.
//
//smoothvet:noalloc
func (m *ShardMetrics) Set(id GaugeID, v uint64) { m.live[id] = v }

// Observe records one observation into a histogram slot.
//
//smoothvet:noalloc
func (m *ShardMetrics) Observe(id HistID, v int64) { m.hists[id].Add(v) }

// HistRef returns the live histogram of one slot. The histogram is
// confined with the rest of the shard's slots: only the owning goroutine
// may Add to or Reset it. Engines that already keep a per-shard
// histogram (the load generator's lag) record straight into the slot
// through this reference instead of double-recording.
func (m *ShardMetrics) HistRef(id HistID) *stats.LogHistogram { return m.hists[id] }

// Publish copies the live slots into the shared snapshot planes: scalar
// words into atomics, histograms into the mutex-guarded snapshot copies.
// Called once per shard tick (or reactor wake) by the owning goroutine;
// cost is proportional to the number of metrics, never the event count.
//
//smoothvet:noalloc
func (m *ShardMetrics) Publish() {
	for i := range m.live {
		m.pub[i].Store(m.live[i])
	}
	m.snapMu.Lock()
	for i, h := range m.hists {
		m.snap[i].CopyFrom(h)
	}
	m.snapMu.Unlock()
}

// ResetHist clears one histogram slot — live and published snapshot.
// This is the one cross-goroutine mutation the layer allows: the load
// generator's per-wave lag reset, performed while the owning shard is
// quiescent between waves (no Adds in flight). The snapshot mutex orders
// the reset against a concurrent Publish from the shard's idle wakes.
func (m *ShardMetrics) ResetHist(id HistID) {
	m.snapMu.Lock()
	m.hists[id].Reset()
	m.snap[id].Reset()
	m.snapMu.Unlock()
}

// Snapshot is a merged view of a registry at one scrape: scalar totals
// (global + sum of shard publications), merged histograms, and evaluated
// callback gauges, indexed by the defs' slot numbers. Reuse one Snapshot
// across scrapes to amortize its allocations.
type Snapshot struct {
	Scalars []uint64
	Hists   []*stats.LogHistogram
	Funcs   []int64
}

// Snapshot merges the registry's published state into s and returns s
// (allocating the planes on first use).
func (r *Registry) Snapshot(s *Snapshot) *Snapshot {
	if s == nil {
		s = &Snapshot{}
	}
	if cap(s.Scalars) < r.nScalar {
		s.Scalars = make([]uint64, r.nScalar)
	}
	s.Scalars = s.Scalars[:r.nScalar]
	for i := range s.Scalars {
		s.Scalars[i] = r.global[i].Load()
	}
	if len(s.Hists) < r.nHist {
		s.Hists = make([]*stats.LogHistogram, r.nHist)
		for i := range s.Hists {
			s.Hists[i] = stats.NewLogHistogram(stats.DefaultLogHistSubBits)
		}
	}
	for i := 0; i < r.nHist; i++ {
		s.Hists[i].Reset()
	}
	for _, m := range r.shards {
		for i := range s.Scalars {
			s.Scalars[i] += m.pub[i].Load()
		}
		m.snapMu.Lock()
		for i := 0; i < r.nHist; i++ {
			s.Hists[i].Merge(m.snap[i])
		}
		m.snapMu.Unlock()
	}
	if cap(s.Funcs) < len(r.funcs) {
		s.Funcs = make([]int64, len(r.funcs))
	}
	s.Funcs = s.Funcs[:len(r.funcs)]
	for i, f := range r.funcs {
		s.Funcs[i] = f()
	}
	return s
}

// MergedHist merges the published snapshots of one histogram slot across
// all shards into dst (which is Reset first). The SLO accountant uses
// this to window a cumulative distribution.
func (r *Registry) MergedHist(id HistID, dst *stats.LogHistogram) {
	dst.Reset()
	for _, m := range r.shards {
		m.snapMu.Lock()
		dst.Merge(m.snap[id])
		m.snapMu.Unlock()
	}
}

// errWriter accumulates the first write error so the render loops stay
// linear; every public writer returns it once at the end.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

// histQuantiles are the quantiles rendered for histogram metrics, in
// Prometheus summary style.
var histQuantiles = []struct {
	label string // Prometheus quantile label
	key   string // JSON field name
	q     float64
}{
	{"0.5", "p50", 0.50},
	{"0.9", "p90", 0.90},
	{"0.99", "p99", 0.99},
	{"0.999", "p999", 0.999},
}

// WritePrometheus renders the merged registry state in the Prometheus
// text exposition format (version 0.0.4). Output order is the
// registration order of the defs and carries no timestamps, so two
// scrapes of identical state are byte-identical — the determinism the
// scrape tests pin.
func (r *Registry) WritePrometheus(w io.Writer, s *Snapshot) error {
	s = r.Snapshot(s)
	ew := &errWriter{w: w}
	for _, d := range r.defs {
		switch d.Kind {
		case KindCounter:
			ew.printf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", d.Name, d.Help, d.Name, d.Name, s.Scalars[d.slot])
		case KindGauge:
			ew.printf("# HELP %s %s\n# TYPE %s gauge\n%s %d\n", d.Name, d.Help, d.Name, d.Name, s.Scalars[d.slot])
		case KindFunc:
			ew.printf("# HELP %s %s\n# TYPE %s gauge\n%s %d\n", d.Name, d.Help, d.Name, d.Name, s.Funcs[d.slot])
		case KindHist:
			h := s.Hists[d.slot]
			ew.printf("# HELP %s %s\n# TYPE %s summary\n", d.Name, d.Help, d.Name)
			for _, hq := range histQuantiles {
				ew.printf("%s{quantile=%q} %d\n", d.Name, hq.label, h.Quantile(hq.q))
			}
			ew.printf("%s_sum %d\n%s_count %d\n%s_min %d\n%s_max %d\n",
				d.Name, h.Sum(), d.Name, h.Count(), d.Name, h.Min(), d.Name, h.Max())
		}
	}
	return ew.err
}

// WriteJSON renders the merged registry state as one JSON object keyed
// by metric name (histograms expand to an object of count/sum/min/max
// and the standard quantiles). Field order follows registration order;
// no timestamps, same determinism contract as WritePrometheus.
func (r *Registry) WriteJSON(w io.Writer, s *Snapshot) error {
	s = r.Snapshot(s)
	ew := &errWriter{w: w}
	ew.printf("{")
	for i, d := range r.defs {
		if i > 0 {
			ew.printf(",")
		}
		switch d.Kind {
		case KindCounter, KindGauge:
			ew.printf("%q:%d", d.Name, s.Scalars[d.slot])
		case KindFunc:
			ew.printf("%q:%d", d.Name, s.Funcs[d.slot])
		case KindHist:
			h := s.Hists[d.slot]
			ew.printf("%q:{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d", d.Name, h.Count(), h.Sum(), h.Min(), h.Max())
			for _, hq := range histQuantiles {
				ew.printf(",%q:%d", hq.key, h.Quantile(hq.q))
			}
			ew.printf("}")
		}
	}
	ew.printf("}\n")
	return ew.err
}
