package obs

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// SLO is a streaming service-level accountant over one histogram metric:
// every Update it diffs the cumulative merged distribution against the
// previous window's, computes the window's quantile (p99 by default) and
// compares it to the target. Breach entry is edge-triggered — OnBreach
// fires once per excursion above target, not once per window — which is
// what arms a flight-recorder dump without flooding it while the breach
// persists. The load generator's per-wave histogram resets are detected
// (the cumulative count shrinks) and the window restarts from the fresh
// distribution.
//
// smoothlb's placement tier consumes exactly this signal: a windowed
// tail-latency estimate per backend, cheap enough to refresh every few
// hundred milliseconds.
type SLO struct {
	reg    *Registry
	hist   HistID
	target int64   // breach threshold, in the metric's unit (µs)
	q      float64 // windowed quantile compared against target

	mu       sync.Mutex
	prev     *stats.LogHistogram // cumulative merged state at last Update
	cur      *stats.LogHistogram // scratch for the current merge
	window   *stats.LogHistogram // cur - prev
	inBreach bool
	onBreach func(quantile int64)

	lastQ    atomic.Int64  // last non-empty window's quantile
	windows  atomic.Uint64 // non-empty windows evaluated
	breaches atomic.Uint64 // edge-triggered breach entries

	stopOnce sync.Once
	stop     chan struct{}
}

// NewSLO builds an accountant over hist in reg. target is the breach
// threshold in the metric's unit; q is the windowed quantile to compare
// (use 0.99 for p99). onBreach, if non-nil, is called from Update's
// goroutine on each transition from within-target to breached, with the
// offending quantile value.
func NewSLO(reg *Registry, hist HistID, target int64, q float64, onBreach func(quantile int64)) *SLO {
	return &SLO{
		reg:      reg,
		hist:     hist,
		target:   target,
		q:        q,
		prev:     stats.NewLogHistogram(stats.DefaultLogHistSubBits),
		cur:      stats.NewLogHistogram(stats.DefaultLogHistSubBits),
		window:   stats.NewLogHistogram(stats.DefaultLogHistSubBits),
		onBreach: onBreach,
		stop:     make(chan struct{}),
	}
}

// Target returns the breach threshold.
func (s *SLO) Target() int64 { return s.target }

// LastQuantile returns the last non-empty window's quantile value (0
// before the first populated window).
func (s *SLO) LastQuantile() int64 { return s.lastQ.Load() }

// Windows returns how many non-empty windows have been evaluated.
func (s *SLO) Windows() uint64 { return s.windows.Load() }

// Breaches returns how many times the windowed quantile crossed from
// within-target to above-target.
func (s *SLO) Breaches() uint64 { return s.breaches.Load() }

// InBreach reports whether the most recent non-empty window breached.
func (s *SLO) InBreach() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inBreach
}

// Update closes the current window: it merges the published per-shard
// histograms, diffs against the previous cumulative state and evaluates
// the windowed quantile. Empty windows (no new observations) neither
// count nor clear a standing breach. Returns the window's quantile and
// whether it breached.
func (s *SLO) Update() (quantile int64, breached bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.MergedHist(s.hist, s.cur)
	s.window.SetDelta(s.cur, s.prev)
	s.prev.CopyFrom(s.cur)
	if s.window.Count() == 0 {
		return s.lastQ.Load(), s.inBreach
	}
	quantile = s.window.Quantile(s.q)
	s.lastQ.Store(quantile)
	s.windows.Add(1)
	breached = quantile > s.target
	if breached && !s.inBreach {
		s.breaches.Add(1)
		if s.onBreach != nil {
			s.onBreach(quantile)
		}
	}
	s.inBreach = breached
	return quantile, breached
}

// Start runs Update every interval until Stop. The ticker goroutine is
// the only caller of onBreach once Start is used.
func (s *SLO) Start(interval time.Duration) {
	go func() {
		tk := time.NewTicker(interval)
		defer tk.Stop()
		for {
			select {
			case <-tk.C:
				s.Update()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts the Start loop. Safe to call multiple times.
func (s *SLO) Stop() { s.stopOnce.Do(func() { close(s.stop) }) }

// The accountant's own series (slo_target, slo_window_quantile,
// slo_windows, slo_breaches, slo_in_breach) are rendered alongside the
// registry by internal/diag rather than registered on it — the SLO is
// built after the registry is frozen.
func (s *SLO) snapshotInto(ew *errWriter, jsonMode bool) {
	inBreach := int64(0)
	if s.InBreach() {
		inBreach = 1
	}
	if jsonMode {
		ew.printf(`,"slo_target":%d,"slo_window_quantile":%d,"slo_windows":%d,"slo_breaches":%d,"slo_in_breach":%d`,
			s.target, s.LastQuantile(), s.Windows(), s.Breaches(), inBreach)
		return
	}
	ew.printf("# HELP slo_target Breach threshold for the windowed quantile (metric units).\n# TYPE slo_target gauge\nslo_target %d\n", s.target)
	ew.printf("# HELP slo_window_quantile Last non-empty window's tracked quantile.\n# TYPE slo_window_quantile gauge\nslo_window_quantile %d\n", s.LastQuantile())
	ew.printf("# HELP slo_windows Non-empty SLO windows evaluated.\n# TYPE slo_windows counter\nslo_windows %d\n", s.Windows())
	ew.printf("# HELP slo_breaches Edge-triggered breach entries.\n# TYPE slo_breaches counter\nslo_breaches %d\n", s.Breaches())
	ew.printf("# HELP slo_in_breach Whether the latest window breached.\n# TYPE slo_in_breach gauge\nslo_in_breach %d\n", inBreach)
}

// WritePrometheus appends the accountant's series in Prometheus text
// format.
func (s *SLO) WritePrometheus(w io.Writer) error {
	ew := &errWriter{w: w}
	s.snapshotInto(ew, false)
	return ew.err
}

// WriteJSONFields appends the accountant's series as JSON object fields,
// with a leading comma, for embedding inside a /statusz object.
func (s *SLO) WriteJSONFields(w io.Writer) error {
	ew := &errWriter{w: w}
	s.snapshotInto(ew, true)
	return ew.err
}
