package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/stats"
)

// testBuilder registers one metric of each kind and returns the IDs.
func testBuilder() (*Builder, CounterID, GaugeID, HistID) {
	var b Builder
	c := b.Counter("test_events_total", "Events recorded.")
	g := b.Gauge("test_active", "Active things.")
	h := b.Histogram("test_latency_us", "Latency, microseconds.")
	b.Func("test_answer", "A constant callback gauge.", func() int64 { return 42 })
	return &b, c, g, h
}

// TestScrapeMergeShardInvariance pins the scrape-merge contract: the same
// event stream distributed over 1, 2 or 8 shards produces identical
// merged totals and bit-identical merged histograms — the shard count is
// an implementation detail invisible to scrapers.
func TestScrapeMergeShardInvariance(t *testing.T) {
	// A deterministic event stream: (value, gauge) pairs.
	values := make([]int64, 500)
	for i := range values {
		values[i] = int64((i*i)%9000 + 1)
	}

	type merged struct {
		scalars []uint64
		counts  int64
		sum     int64
		min     int64
		max     int64
		p99     int64
	}
	run := func(shards int) merged {
		b, c, g, h := testBuilder()
		r := Build(b, shards)
		for i, v := range values {
			m := r.Shard(i % shards)
			m.Inc(c)
			m.Observe(h, v)
			m.Set(g, uint64(i%shards+1)) // final per-shard gauge: shard index + 1
		}
		r.GlobalAdd(c, 7) // off-shard half of the counter
		for i := 0; i < shards; i++ {
			r.Shard(i).Publish()
		}
		s := r.Snapshot(nil)
		hist := s.Hists[0]
		return merged{
			scalars: append([]uint64(nil), s.Scalars...),
			counts:  hist.Count(), sum: hist.Sum(), min: hist.Min(), max: hist.Max(),
			p99: hist.Quantile(0.99),
		}
	}

	base := run(1)
	if got := base.scalars[0]; got != uint64(len(values))+7 {
		t.Fatalf("counter total = %d, want %d", got, len(values)+7)
	}
	if base.counts != int64(len(values)) {
		t.Fatalf("hist count = %d, want %d", base.counts, len(values))
	}
	for _, shards := range []int{2, 8} {
		got := run(shards)
		if got.counts != base.counts || got.sum != base.sum || got.min != base.min ||
			got.max != base.max || got.p99 != base.p99 {
			t.Errorf("shards=%d merged hist = %+v, want %+v", shards, got, base)
		}
		if got.scalars[0] != base.scalars[0] {
			t.Errorf("shards=%d counter = %d, want %d", shards, got.scalars[0], base.scalars[0])
		}
		// The gauge sums shard-local values: sum of (i+1) over shards.
		want := uint64(shards * (shards + 1) / 2)
		if got.scalars[1] != want {
			t.Errorf("shards=%d gauge sum = %d, want %d", shards, got.scalars[1], want)
		}
	}
}

// TestScrapeSeesOnlyPublished pins the publication boundary: recorded but
// unpublished state is invisible to Snapshot.
func TestScrapeSeesOnlyPublished(t *testing.T) {
	b, c, _, h := testBuilder()
	r := Build(b, 1)
	m := r.Shard(0)
	m.Inc(c)
	m.Observe(h, 100)
	s := r.Snapshot(nil)
	if s.Scalars[0] != 0 || s.Hists[0].Count() != 0 {
		t.Fatalf("unpublished state leaked into snapshot: scalars=%v histcount=%d", s.Scalars, s.Hists[0].Count())
	}
	m.Publish()
	s = r.Snapshot(s)
	if s.Scalars[0] != 1 || s.Hists[0].Count() != 1 {
		t.Fatalf("published state missing from snapshot: scalars=%v histcount=%d", s.Scalars, s.Hists[0].Count())
	}
}

// TestWritePrometheusDeterministic pins the determinism contract: two
// scrapes of identical state are byte-identical, ordered by registration.
func TestWritePrometheusDeterministic(t *testing.T) {
	b, c, g, h := testBuilder()
	r := Build(b, 4)
	for i := 0; i < 200; i++ {
		m := r.Shard(i % 4)
		m.Inc(c)
		m.Set(g, uint64(i))
		m.Observe(h, int64(i*3+1))
	}
	for i := 0; i < 4; i++ {
		r.Shard(i).Publish()
	}
	var a, bb bytes.Buffer
	if err := r.WritePrometheus(&a, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&bb, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), bb.Bytes()) {
		t.Fatalf("two scrapes of identical state differ:\n%s\n---\n%s", a.Bytes(), bb.Bytes())
	}
	for _, want := range []string{
		"# TYPE test_events_total counter",
		"# TYPE test_active gauge",
		"# TYPE test_latency_us summary",
		`test_latency_us{quantile="0.99"}`,
		"test_latency_us_count 200",
		"test_answer 42",
	} {
		if !bytes.Contains(a.Bytes(), []byte(want)) {
			t.Errorf("scrape missing %q in:\n%s", want, a.Bytes())
		}
	}
}

// TestWriteJSONValid pins that the JSON rendering parses and carries the
// merged values.
func TestWriteJSONValid(t *testing.T) {
	b, c, _, h := testBuilder()
	r := Build(b, 2)
	r.Shard(0).Inc(c)
	r.Shard(1).Inc(c)
	r.Shard(0).Observe(h, 50)
	r.Shard(0).Publish()
	r.Shard(1).Publish()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.Bytes())
	}
	if v, ok := got["test_events_total"].(float64); !ok || v != 2 {
		t.Errorf("test_events_total = %v, want 2", got["test_events_total"])
	}
	hist, ok := got["test_latency_us"].(map[string]any)
	if !ok {
		t.Fatalf("test_latency_us not an object: %v", got["test_latency_us"])
	}
	for _, key := range []string{"count", "sum", "min", "max", "p50", "p90", "p99", "p999"} {
		if _, ok := hist[key]; !ok {
			t.Errorf("histogram JSON missing %q: %v", key, hist)
		}
	}
}

// TestResetHist pins the one sanctioned cross-goroutine mutation: a reset
// clears both the live slot and its published snapshot.
func TestResetHist(t *testing.T) {
	b, _, _, h := testBuilder()
	r := Build(b, 1)
	m := r.Shard(0)
	m.Observe(h, 10)
	m.Publish()
	m.ResetHist(h)
	s := r.Snapshot(nil)
	if s.Hists[0].Count() != 0 {
		t.Fatalf("snapshot survived ResetHist: count=%d", s.Hists[0].Count())
	}
	m.Observe(h, 20)
	m.Publish()
	s = r.Snapshot(s)
	if s.Hists[0].Count() != 1 || s.Hists[0].Min() != 20 {
		t.Fatalf("post-reset recording lost: count=%d min=%d", s.Hists[0].Count(), s.Hists[0].Min())
	}
}

// TestFlightRecorderWraparound pins the ring semantics: capacity bounds
// the retained set, dumps come out oldest-first with contiguous sequence
// numbers, and the drop count tracks overwrites.
func TestFlightRecorderWraparound(t *testing.T) {
	const capacity = 8
	r := NewFlightRecorder(capacity)
	if got := r.Len(); got != 0 {
		t.Fatalf("fresh ring Len = %d", got)
	}
	const total = 21
	for i := 0; i < total; i++ {
		r.Record(int64(i*1000), EvAdmit, uint64(i), int64(-i))
	}
	if got := r.Len(); got != capacity {
		t.Fatalf("Len after wrap = %d, want %d", got, capacity)
	}
	if got := r.Dropped(); got != total-capacity {
		t.Fatalf("Dropped = %d, want %d", got, total-capacity)
	}
	evs := r.CopyInto(nil)
	if len(evs) != capacity {
		t.Fatalf("CopyInto returned %d events, want %d", len(evs), capacity)
	}
	for i, ev := range evs {
		wantSeq := uint32(total - capacity + i)
		if ev.Seq != wantSeq {
			t.Errorf("event %d: Seq = %d, want %d (not oldest-first)", i, ev.Seq, wantSeq)
		}
		if ev.Sess != uint64(wantSeq) || ev.Tick != int64(wantSeq)*1000 {
			t.Errorf("event %d: payload %+v does not match seq %d", i, ev, wantSeq)
		}
	}
}

// TestWriteFlightDump pins the dump format and its determinism.
func TestWriteFlightDump(t *testing.T) {
	r0 := NewFlightRecorder(4)
	r1 := NewFlightRecorder(4)
	r0.Record(100, EvAdmit, 1, 0)
	r0.Record(200, EvRetire, 1, 25)
	r1.Record(150, EvError, 2, 3)
	var a, b bytes.Buffer
	if err := WriteFlightDump(&a, []*FlightRecorder{r0, r1, nil}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFlightDump(&b, []*FlightRecorder{r0, r1, nil}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two dumps of identical state differ")
	}
	for _, want := range []string{
		"# shard 0: 2 events, 0 dropped",
		"shard=0 seq=1 tick=200 sess=1 kind=retire arg=25",
		"shard=1 seq=0 tick=150 sess=2 kind=error arg=3",
	} {
		if !bytes.Contains(a.Bytes(), []byte(want)) {
			t.Errorf("dump missing %q in:\n%s", want, a.Bytes())
		}
	}
	var j bytes.Buffer
	if err := WriteFlightJSON(&j, []*FlightRecorder{r0, r1}); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(j.Bytes(), &evs); err != nil {
		t.Fatalf("invalid flight JSON: %v\n%s", err, j.Bytes())
	}
	if len(evs) != 3 {
		t.Fatalf("flight JSON has %d events, want 3", len(evs))
	}
}

// TestSLOAccounting pins the accountant: windowed quantiles, edge-
// triggered breaches, empty-window behavior and reset detection.
func TestSLOAccounting(t *testing.T) {
	var b Builder
	h := b.Histogram("lag_us", "lag")
	r := Build(&b, 1)
	m := r.Shard(0)

	var breachVals []int64
	s := NewSLO(r, h, 1000, 0.99, func(q int64) { breachVals = append(breachVals, q) })

	// Window 1: all observations well under target.
	for i := 0; i < 100; i++ {
		m.Observe(h, 100)
	}
	m.Publish()
	q, breached := s.Update()
	if breached || q > 1000 {
		t.Fatalf("window 1: q=%d breached=%v, want under-target", q, breached)
	}
	if s.Windows() != 1 || s.Breaches() != 0 {
		t.Fatalf("window 1: windows=%d breaches=%d", s.Windows(), s.Breaches())
	}

	// Window 2: empty — nothing recorded. Neither counts nor breaches.
	q2, breached2 := s.Update()
	if s.Windows() != 1 || breached2 || q2 != q {
		t.Fatalf("empty window counted: windows=%d breached=%v q=%d (want %d)", s.Windows(), breached2, q2, q)
	}

	// Window 3: all slow — breach entry fires exactly once.
	for i := 0; i < 100; i++ {
		m.Observe(h, 50000)
	}
	m.Publish()
	if _, breached := s.Update(); !breached {
		t.Fatal("window 3: want breach")
	}
	if len(breachVals) != 1 || s.Breaches() != 1 || !s.InBreach() {
		t.Fatalf("breach entry: calls=%d breaches=%d in=%v", len(breachVals), s.Breaches(), s.InBreach())
	}

	// Window 4: still slow — standing breach, no second callback.
	for i := 0; i < 100; i++ {
		m.Observe(h, 60000)
	}
	m.Publish()
	s.Update()
	if len(breachVals) != 1 || s.Breaches() != 1 {
		t.Fatalf("standing breach re-fired: calls=%d breaches=%d", len(breachVals), s.Breaches())
	}

	// Window 5: recovery clears the breach state.
	for i := 0; i < 100; i++ {
		m.Observe(h, 10)
	}
	m.Publish()
	if _, breached := s.Update(); breached || s.InBreach() {
		t.Fatal("window 5: breach did not clear on recovery")
	}

	// Window 6: a wave reset (histogram shrinks) restarts the window
	// from the fresh distribution instead of producing negative deltas.
	m.ResetHist(h)
	for i := 0; i < 50; i++ {
		m.Observe(h, 200)
	}
	m.Publish()
	q6, breached6 := s.Update()
	if breached6 || q6 > 1000 || q6 == 0 {
		t.Fatalf("post-reset window: q=%d breached=%v", q6, breached6)
	}

	// Second breach excursion increments the edge counter again.
	for i := 0; i < 100; i++ {
		m.Observe(h, 70000)
	}
	m.Publish()
	s.Update()
	if s.Breaches() != 2 || len(breachVals) != 2 {
		t.Fatalf("second excursion: breaches=%d calls=%d", s.Breaches(), len(breachVals))
	}
}

// TestSLOWritePrometheus pins the accountant's own series rendering.
func TestSLOWritePrometheus(t *testing.T) {
	var b Builder
	h := b.Histogram("lag_us", "lag")
	r := Build(&b, 1)
	s := NewSLO(r, h, 5000, 0.99, nil)
	r.Shard(0).Observe(h, 123)
	r.Shard(0).Publish()
	s.Update()
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"slo_target 5000", "slo_windows 1", "slo_breaches 0", "slo_in_breach 0"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("SLO scrape missing %q in:\n%s", want, buf.Bytes())
		}
	}
	var jb bytes.Buffer
	fmt.Fprint(&jb, "{\"x\":0")
	if err := s.WriteJSONFields(&jb); err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(&jb, "}")
	if !json.Valid(jb.Bytes()) {
		t.Errorf("SLO JSON fields do not embed validly: %s", jb.Bytes())
	}
}

// TestMergedHist pins the accountant's input: cross-shard merge of one
// slot equals the union of the shards' observations.
func TestMergedHist(t *testing.T) {
	var b Builder
	h := b.Histogram("lag_us", "lag")
	r := Build(&b, 3)
	for i := 0; i < 3; i++ {
		m := r.Shard(i)
		for j := 0; j < 10; j++ {
			m.Observe(h, int64(i*100+j+1))
		}
		m.Publish()
	}
	dst := stats.NewLogHistogram(stats.DefaultLogHistSubBits)
	r.MergedHist(h, dst)
	if dst.Count() != 30 {
		t.Fatalf("merged count = %d, want 30", dst.Count())
	}
	if dst.Min() != 1 || dst.Max() != 210 {
		t.Fatalf("merged extremes = [%d, %d], want [1, 210]", dst.Min(), dst.Max())
	}
}

// BenchmarkObsRecord pins the record path at zero allocations: counter
// increments, gauge stores, histogram observations and flight-recorder
// appends. scripts/verify.sh holds every sub-benchmark at exactly
// 0 B/op 0 allocs/op.
func BenchmarkObsRecord(b *testing.B) {
	bld, c, g, h := testBuilder()
	r := Build(bld, 1)
	m := r.Shard(0)
	rec := NewFlightRecorder(DefaultFlightRecEvents)

	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Inc(c)
		}
	})
	b.Run("gauge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Set(g, uint64(i))
		}
	})
	b.Run("hist", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Observe(h, int64(i&0xffff))
		}
	})
	b.Run("flight", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec.Record(int64(i), EvAdmit, uint64(i), 0)
		}
	})
	b.Run("publish", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Publish()
		}
	})
}
