package serve

import (
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/trace"
)

// benchNow is the fixed tick timestamp used when driving shards manually;
// benchmarks never touch real connections, so the value is arbitrary.
var benchNow = time.Unix(1, 0)

// BenchmarkEngineStep measures one shard clock tick stepping many
// registered sessions (the engine's unit of serving work): each session
// advances its smoothing buffer one step, frames up to R payload bytes and
// flushes them to its wire in one batched write. ns/op is the cost of one
// tick over all sessions; divide by the session count for per-session cost.
func BenchmarkEngineStep(b *testing.B) {
	cfg := trace.DefaultGenConfig()
	cfg.Frames = 200
	clip, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, sessions := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			eng, err := newEngine(clip, trace.PaperWeights(), Config{
				Rate:         2 * int(clip.AverageRate()),
				Shards:       1,
				StepDuration: time.Millisecond, // never ticks: we drive the shard manually
				MaxDelay:     16,
			})
			if err != nil {
				b.Fatal(err)
			}
			sh := eng.shards[0]
			register := func() {
				for i := 0; i < sessions; i++ {
					s, err := eng.newSession(io.Discard, 16, 16*eng.cfg.Rate)
					if err != nil {
						b.Fatal(err)
					}
					sh.enqueue(admission{s: s})
				}
			}
			register()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.step(benchNow)
				if len(sh.sessions) == 0 {
					// Every session drained to End: refill off the clock.
					b.StopTimer()
					register()
					b.StartTimer()
				}
			}
			b.StopTimer()
			eng.Close()
		})
	}
}

// BenchmarkEngineStepDensity is the sessions-per-core gate for the
// compute-once-serve-many layer: one shard tick over K same-clip sessions,
// cohort-served (shared precomputed schedule, struct-of-arrays rows,
// pre-encoded flushes) versus the fallback per-session Sender path. The
// cohort variants are pinned at 0 allocs/op in steady state by the
// benchdiff gate; the sess-steps/s metric is sessions advanced per second
// on the one core driving the shard.
func BenchmarkEngineStepDensity(b *testing.B) {
	cfg := trace.DefaultGenConfig()
	cfg.Frames = 200
	clip, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name     string
		cohort   bool
		sessions []int
	}{
		// The fallback path at 100k sessions would hold 100k private
		// smoothing buffers (gigabytes); its own ceiling is the point of
		// the comparison, so it stops at 10k.
		{name: "cohort", cohort: true, sessions: []int{1000, 10000, 100000}},
		{name: "fallback", cohort: false, sessions: []int{1000, 10000}},
	}
	for _, m := range modes {
		for _, sessions := range m.sessions {
			b.Run(fmt.Sprintf("%s/sessions=%d", m.name, sessions), func(b *testing.B) {
				eng, err := newEngine(clip, trace.PaperWeights(), Config{
					Rate:           2 * int(clip.AverageRate()),
					Shards:         1,
					StepDuration:   time.Millisecond, // never ticks: we drive the shard manually
					MaxDelay:       16,
					DisableCohorts: !m.cohort,
				})
				if err != nil {
					b.Fatal(err)
				}
				sh := eng.shards[0]
				delay, buffer := 16, 16*eng.cfg.Rate
				var c *Cohort
				if m.cohort {
					if c = eng.cohortFor(delay, buffer); c == nil {
						b.Fatal("cohort cache refused the key")
					}
				}
				// prime registers a full load and runs the admission tick
				// off the clock, so the timed region measures steady state.
				prime := func() {
					for i := 0; i < sessions; i++ {
						if m.cohort {
							eng.active.Add(1)
							eng.sessWG.Add(1)
							sh.enqueue(admission{row: cohortRow{cohort: c, w: io.Discard}})
						} else {
							s, err := eng.newSession(io.Discard, delay, buffer)
							if err != nil {
								b.Fatal(err)
							}
							sh.enqueue(admission{s: s})
						}
					}
					sh.step(benchNow)
				}
				prime()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if len(sh.sessions) == 0 && len(sh.rows.cursors) == 0 {
						// Every session drained to End: refill off the clock.
						b.StopTimer()
						prime()
						b.StartTimer()
					}
					sh.step(benchNow)
				}
				b.StopTimer()
				b.ReportMetric(float64(sessions)*float64(b.N)/b.Elapsed().Seconds(), "sess-steps/s")
				eng.Close()
			})
		}
	}
}
