package serve

import (
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/trace"
)

// BenchmarkEngineStep measures one shard clock tick stepping many
// registered sessions (the engine's unit of serving work): each session
// advances its smoothing buffer one step, frames up to R payload bytes and
// flushes them to its wire in one batched write. ns/op is the cost of one
// tick over all sessions; divide by the session count for per-session cost.
func BenchmarkEngineStep(b *testing.B) {
	cfg := trace.DefaultGenConfig()
	cfg.Frames = 200
	clip, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, sessions := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			eng, err := newEngine(clip, trace.PaperWeights(), Config{
				Rate:         2 * int(clip.AverageRate()),
				Shards:       1,
				StepDuration: time.Millisecond, // never ticks: we drive the shard manually
				MaxDelay:     16,
			})
			if err != nil {
				b.Fatal(err)
			}
			sh := eng.shards[0]
			register := func() {
				for i := 0; i < sessions; i++ {
					s, err := eng.newSession(io.Discard, 16, 16*eng.cfg.Rate)
					if err != nil {
						b.Fatal(err)
					}
					sh.enqueue(s)
				}
			}
			register()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.step()
				if len(sh.sessions) == 0 {
					// Every session drained to End: refill off the clock.
					b.StopTimer()
					register()
					b.StartTimer()
				}
			}
			b.StopTimer()
			eng.Close()
		})
	}
}
