package serve

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/netstream"
	"repro/internal/trace"
)

func testClip(t testing.TB, frames int) *trace.Clip {
	t.Helper()
	cfg := trace.DefaultGenConfig()
	cfg.Frames = frames
	cfg.MaxFrame = 30
	cfg.MeanI, cfg.MeanP, cfg.MeanB = 20, 14, 6
	clip, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return clip
}

// clientResult is what one load-generating client observed.
type clientResult struct {
	stats  netstream.PlayStats
	played map[int]bool // slice IDs delivered complete and on time
}

// runClient drives one receive session against conn and records the exact
// set of played slice IDs.
func runClient(conn net.Conn, delay int) (clientResult, error) {
	res := clientResult{played: map[int]bool{}}
	stats, err := netstream.Receive(conn, 0, delay, func(ev netstream.PlayEvent) {
		for _, sl := range ev.Slices {
			res.played[sl.ID] = true
		}
	})
	res.stats = stats
	return res, err
}

// runEngine serves `clients` concurrent sessions from an engine with the
// given shard count and returns each client's result. disableCohorts
// selects the per-session Sender path; the default engine serves same-
// parameter sessions from the cohort cache.
func runEngine(t *testing.T, clip *trace.Clip, shards, clients int, disableCohorts bool) []clientResult {
	t.Helper()
	eng, err := New(clip, trace.PaperWeights(), Config{
		Rate:           2 * int(clip.AverageRate()),
		Shards:         shards,
		StepDuration:   200 * time.Microsecond,
		MaxDelay:       8,
		DisableCohorts: disableCohorts,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	results := make([]clientResult, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		server, client := net.Pipe()
		wg.Add(1)
		go func(i int, c net.Conn) {
			defer wg.Done()
			results[i], errs[i] = runClient(c, 8)
			_ = c.Close()
		}(i, client)
		wg.Add(1)
		go func(c net.Conn) {
			defer wg.Done()
			if err := eng.Handle(c); err != nil {
				t.Errorf("handle: %v", err)
			}
		}(server)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if !eng.Drain(5 * time.Second) {
		t.Fatal("drain timed out with no sessions left")
	}
	if got := eng.ServedSessions(); got != clients {
		t.Errorf("served %d sessions, want %d", got, clients)
	}
	return results
}

// TestShardCountInvariance — the determinism analogue of the sweep engine's
// worker-count invariance: the same clip and policy must yield the same
// per-session played/dropped sets whether the engine runs 1 shard or many,
// and whether sessions are cohort-served or run the per-session Sender
// path.
func TestShardCountInvariance(t *testing.T) {
	clip := testClip(t, 30)
	const clients = 6
	one := runEngine(t, clip, 1, clients, false)
	four := runEngine(t, clip, 4, clients, false)
	fallback := runEngine(t, clip, 4, clients, true)

	for i := 0; i < clients; i++ {
		a, b := one[i], four[i]
		if len(a.played) != len(b.played) {
			t.Fatalf("client %d: 1-shard played %d slices, 4-shard %d", i, len(a.played), len(b.played))
		}
		//smoothvet:ordered membership check only; any order reaches the same verdict
		for id := range a.played {
			if !b.played[id] {
				t.Fatalf("client %d: slice %d played at 1 shard but not at 4", i, id)
			}
		}
		if a.stats.Incomplete != b.stats.Incomplete || a.stats.LateBytes != b.stats.LateBytes ||
			a.stats.Corrupt != b.stats.Corrupt || a.stats.PlayedBytes != b.stats.PlayedBytes {
			t.Fatalf("client %d: stats diverge across shard counts: %+v vs %+v", i, a.stats, b.stats)
		}
		if f := fallback[i]; f.stats != b.stats || len(f.played) != len(b.played) {
			t.Fatalf("client %d: cohort and fallback paths diverge: %+v vs %+v", i, b.stats, f.stats)
		}
	}
	// And every session of one engine run saw the same stream.
	for i := 1; i < clients; i++ {
		if one[i].stats != one[0].stats {
			t.Errorf("session %d diverged from session 0: %+v vs %+v", i, one[i].stats, one[0].stats)
		}
	}
	// The link rate is 2x the average: nothing should be lost at all.
	if one[0].stats.Incomplete != 0 || one[0].stats.Corrupt != 0 {
		t.Errorf("lossless setup lost data: %+v", one[0].stats)
	}
	if one[0].stats.Played != len(clip.Frames) {
		t.Errorf("played %d of %d frames", one[0].stats.Played, len(clip.Frames))
	}
}

// TestMaxSessionsRejects — the engine refuses connections over the cap and
// accepts again once a slot frees up.
func TestMaxSessionsRejects(t *testing.T) {
	clip := testClip(t, 10)
	eng, err := New(clip, trace.PaperWeights(), Config{
		Rate:         2 * int(clip.AverageRate()),
		Shards:       2,
		MaxSessions:  1,
		StepDuration: 200 * time.Microsecond,
		MaxDelay:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	server1, client1 := net.Pipe()
	handled := make(chan error, 1)
	go func() { handled <- eng.Handle(server1) }()
	clientDone := make(chan error, 1)
	go func() {
		_, err := runClient(client1, 4)
		_ = client1.Close()
		clientDone <- err
	}()
	if err := <-handled; err != nil {
		t.Fatalf("first session rejected: %v", err)
	}

	// Second connection while the first is live: over the cap.
	server2, client2 := net.Pipe()
	go func() { _, _ = client2.Read(make([]byte, 1)) }() // observe the close
	if err := eng.Handle(server2); err == nil {
		t.Fatal("session over the cap accepted")
	}
	_ = client2.Close()

	if err := <-clientDone; err != nil {
		t.Fatalf("first client: %v", err)
	}
	// Slot freed: a new session is admitted again.
	server3, client3 := net.Pipe()
	go func() { handled <- eng.Handle(server3) }()
	go func() {
		_, err := runClient(client3, 4)
		_ = client3.Close()
		clientDone <- err
	}()
	if err := <-handled; err != nil {
		t.Fatalf("post-drain session rejected: %v", err)
	}
	if err := <-clientDone; err != nil {
		t.Fatalf("post-drain client: %v", err)
	}
}

// TestDrainRejectsNewSessions — after Drain starts, Handle refuses.
func TestDrainRejectsNewSessions(t *testing.T) {
	clip := testClip(t, 5)
	eng, err := New(clip, trace.PaperWeights(), Config{
		Rate:         2 * int(clip.AverageRate()),
		Shards:       1,
		StepDuration: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if !eng.Drain(time.Second) {
		t.Fatal("drain of an idle engine timed out")
	}
	server, client := net.Pipe()
	go func() { _, _ = client.Read(make([]byte, 1)) }()
	if err := eng.Handle(server); err == nil {
		t.Error("session accepted while draining")
	}
	_ = client.Close()
}

// TestCloseAbortsInFlight — Close cuts sessions off mid-stream and the
// client sees a mid-stream error rather than a hang.
func TestCloseAbortsInFlight(t *testing.T) {
	clip := testClip(t, 200)
	aborted := make(chan error, 1)
	eng, err := New(clip, trace.PaperWeights(), Config{
		Rate:         int(clip.AverageRate()),
		Shards:       1,
		StepDuration: time.Millisecond,
		OnSessionDone: func(_ SessionStats, err error) {
			aborted <- err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go func() { _ = eng.Handle(server) }() // rejection also aborts the client below
	clientErr := make(chan error, 1)
	go func() {
		_, err := runClient(client, 8)
		clientErr <- err
	}()
	// Let the stream get going, then kill the engine.
	time.Sleep(20 * time.Millisecond)
	eng.Close()
	if err := <-aborted; err == nil {
		t.Error("aborted session reported a clean finish")
	}
	if err := <-clientErr; err == nil {
		t.Error("client saw a clean end on an aborted stream")
	}
	_ = client.Close()
}
