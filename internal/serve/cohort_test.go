package serve

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/drop"
	"repro/internal/trace"
)

// replayFallback drives one per-session Sender path session to completion
// against a capture buffer and returns the exact byte stream plus the
// step/drop counters the engine would have reported.
func replayFallback(t *testing.T, eng *Engine, delay, buffer int) (wire []byte, steps, dropped int) {
	t.Helper()
	var buf bytes.Buffer
	s, err := eng.newSession(&buf, delay, buffer)
	if err != nil {
		t.Fatal(err)
	}
	for {
		done, err := s.stepOnce()
		if err != nil {
			t.Fatalf("fallback step %d: %v", s.step, err)
		}
		if done {
			break
		}
	}
	steps, dropped = s.step, s.dropped
	s.finish(time.Now(), nil)
	return buf.Bytes(), steps, dropped
}

// TestCohortGoldenEquivalence is the contract of the compute-once layer:
// for every policy, negotiated parameter set and provisioning level, the
// cohort's precomputed wire stream must be byte-identical to what the
// per-session Sender path writes, and its step/drop bookkeeping must
// match the fallback session's counters.
func TestCohortGoldenEquivalence(t *testing.T) {
	clip := testClip(t, 40)
	policies := []struct {
		name    string
		factory drop.Factory
	}{
		{"greedy", drop.Greedy},
		{"taildrop", drop.TailDrop},
		{"headdrop", drop.HeadDrop},
		{"random", drop.Random(7)},
	}
	// Rate factors below 1 force drops; delay/buffer pairs include a
	// client-capped buffer (buffer < rate*delay is impossible after
	// negotiation, but unequal ratios are).
	for _, p := range policies {
		for _, rateFactor := range []float64{0.8, 1.0, 2.0} {
			rate := int(rateFactor * clip.AverageRate())
			if rate < 1 {
				rate = 1
			}
			eng, err := newEngine(clip, trace.PaperWeights(), Config{
				Rate:         rate,
				Shards:       1,
				StepDuration: time.Millisecond,
				MaxDelay:     16,
				Policy:       p.factory,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range []int{2, 8, 16} {
				for _, buffer := range []int{rate * d, rate * d * 2} {
					name := fmt.Sprintf("%s/rf=%.1f/D=%d/B=%d", p.name, rateFactor, d, buffer)
					c := eng.cohortFor(d, buffer)
					if c == nil {
						t.Fatalf("%s: cohort cache refused the key", name)
					}
					wire, steps, dropped := replayFallback(t, eng, d, buffer)
					if !bytes.Equal(c.wire, wire) {
						t.Fatalf("%s: cohort wire (%d bytes) differs from fallback (%d bytes)",
							name, len(c.wire), len(wire))
					}
					if c.Steps() != steps {
						t.Fatalf("%s: cohort plans %d steps, fallback ran %d", name, c.Steps(), steps)
					}
					if got := c.droppedThrough(int32(c.Steps())); got != dropped {
						t.Fatalf("%s: cohort dropped %d, fallback %d", name, got, dropped)
					}
				}
			}
			eng.Close()
		}
	}
}

// TestCohortStepSlices — the per-step spans of the plan reassemble exactly
// to the full wire stream, and mid-stream cursors see monotone drops.
func TestCohortStepSlices(t *testing.T) {
	clip := testClip(t, 20)
	eng, err := newEngine(clip, trace.PaperWeights(), Config{
		Rate:         int(clip.AverageRate()),
		Shards:       1,
		StepDuration: time.Millisecond,
		MaxDelay:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	c := eng.cohortFor(8, 8*eng.cfg.Rate)
	if c == nil {
		t.Fatal("cohort cache refused the key")
	}
	var joined []byte
	prev := 0
	for s := int32(0); int(s) < c.Steps(); s++ {
		joined = append(joined, c.stepBytes(s)...)
		if d := c.droppedThrough(s + 1); d < prev {
			t.Fatalf("drops not monotone at step %d: %d < %d", s, d, prev)
		} else {
			prev = d
		}
	}
	if !bytes.Equal(joined, c.wire) {
		t.Fatalf("step spans reassemble to %d bytes, wire is %d", len(joined), len(c.wire))
	}
	if c.WireBytes() != len(c.wire) {
		t.Fatalf("WireBytes %d != len(wire) %d", c.WireBytes(), len(c.wire))
	}
}

// TestCohortCache — one build per key, pointer-shared across lookups;
// distinct keys get distinct plans; the capacity cap and the disable
// switch both fall back to nil (the per-session path).
func TestCohortCache(t *testing.T) {
	clip := testClip(t, 10)
	eng, err := newEngine(clip, trace.PaperWeights(), Config{
		Rate:         2 * int(clip.AverageRate()),
		Shards:       1,
		StepDuration: time.Millisecond,
		MaxDelay:     8,
		MaxCohorts:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	r := eng.cfg.Rate
	a1 := eng.cohortFor(4, 4*r)
	a2 := eng.cohortFor(4, 4*r)
	if a1 == nil || a1 != a2 {
		t.Fatalf("same key not shared: %p vs %p", a1, a2)
	}
	b := eng.cohortFor(8, 8*r)
	if b == nil || b == a1 {
		t.Fatal("distinct keys must get distinct cohorts")
	}
	if c := eng.cohortFor(2, 2*r); c != nil {
		t.Fatal("cache over capacity must fall back to the per-session path")
	}
	// Existing keys keep hitting after the cap.
	if got := eng.cohortFor(4, 4*r); got != a1 {
		t.Fatal("cached key evicted by capacity pressure")
	}

	eng2, err := newEngine(clip, trace.PaperWeights(), Config{
		Rate:           2 * int(clip.AverageRate()),
		Shards:         1,
		StepDuration:   time.Millisecond,
		DisableCohorts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if c := eng2.cohortFor(4, 4*eng2.cfg.Rate); c != nil {
		t.Fatal("DisableCohorts engine must not build cohorts")
	}
}

// TestCohortCacheConcurrent — many goroutines racing the same key must
// share one build (run under -race in CI).
func TestCohortCacheConcurrent(t *testing.T) {
	clip := testClip(t, 10)
	eng, err := newEngine(clip, trace.PaperWeights(), Config{
		Rate:         2 * int(clip.AverageRate()),
		Shards:       1,
		StepDuration: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const gs = 16
	got := make([]*Cohort, gs)
	var wg sync.WaitGroup
	for i := 0; i < gs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = eng.cohortFor(8, 8*eng.cfg.Rate)
		}(i)
	}
	wg.Wait()
	for i := 1; i < gs; i++ {
		if got[i] == nil || got[i] != got[0] {
			t.Fatalf("goroutine %d got %p, goroutine 0 got %p", i, got[i], got[0])
		}
	}
}

// TestDrainAdmitRace — sessions enqueued concurrently with Drain/Close
// must each be either cleanly served or cleanly rejected: no leaked
// sessWG count (Drain would hang), no double-finish (the WaitGroup would
// panic), no lost accounting. The race detector in CI covers the memory
// side.
func TestDrainAdmitRace(t *testing.T) {
	clip := testClip(t, 5)
	eng, err := New(clip, trace.PaperWeights(), Config{
		Rate:         2 * int(clip.AverageRate()),
		Shards:       2,
		StepDuration: 100 * time.Microsecond,
		MaxDelay:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 32
	var handled, rejected atomic.Int64
	var wg, clientWG sync.WaitGroup
	for i := 0; i < clients; i++ {
		server, client := net.Pipe()
		clientWG.Add(1)
		go func(c net.Conn) {
			defer clientWG.Done()
			_, _ = runClient(c, 4) // aborted sessions error; that's fine
			_ = c.Close()
		}(client)
		wg.Add(1)
		go func(c net.Conn) {
			defer wg.Done()
			if err := eng.Handle(c); err != nil {
				rejected.Add(1)
			} else {
				handled.Add(1)
			}
		}(server)
		if i == clients/2 {
			// Kill the engine while admissions are still racing in.
			go eng.Close()
		}
	}
	wg.Wait()
	eng.Close()
	// Every admitted session must have finished (served or aborted); a
	// leaked sessWG count would hang this drain.
	if !eng.Drain(5 * time.Second) {
		t.Fatal("sessions leaked across Drain/Close: sessWG never drained")
	}
	clientWG.Wait()
	if got, want := int64(eng.ServedSessions()), handled.Load(); got != want {
		t.Fatalf("served %d sessions, admitted %d", got, want)
	}
	if handled.Load()+rejected.Load() != clients {
		t.Fatalf("accounting lost sessions: %d handled + %d rejected != %d",
			handled.Load(), rejected.Load(), clients)
	}
	if eng.ActiveSessions() != 0 {
		t.Fatalf("%d sessions still active after close", eng.ActiveSessions())
	}
}

// armCountConn counts SetWriteDeadline calls; Write always succeeds.
type armCountConn struct {
	net.Conn
	arms int
}

func (c *armCountConn) SetWriteDeadline(time.Time) error { c.arms++; return nil }
func (c *armCountConn) Write(p []byte) (int, error)      { return len(p), nil }

// TestDeadlineWriterArmsOncePerTick — the writer re-arms only when the
// shard tick clock advances, not per flush.
func TestDeadlineWriterArmsOncePerTick(t *testing.T) {
	conn := &armCountConn{}
	var clk tickClock
	w := &deadlineWriter{c: conn, d: time.Second, clk: &clk}
	clk.nanos.Store(100)
	for i := 0; i < 3; i++ {
		if _, err := w.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if conn.arms != 1 {
		t.Fatalf("3 writes in one tick armed %d deadlines, want 1", conn.arms)
	}
	clk.nanos.Store(200)
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if conn.arms != 2 {
		t.Fatalf("next tick armed %d deadlines total, want 2", conn.arms)
	}
}
