// Package serve is the sharded multi-session serving engine: the
// production-shaped deployment of the paper's Fig. 1 system. Instead of one
// goroutine and one time.Ticker per connection (netstream.Serve), the
// engine runs N shard loops, each driven by a single clock that steps every
// session registered on the shard. Sessions are assigned to shards by
// connection hash, and all of a session's per-step work — arrivals, the
// smoothing-buffer step, framing, the batched wire flush — happens on its
// shard goroutine, so sessions need no locks of their own.
//
// Per-session output is completely determined by the clip, the drop policy
// and the negotiated (B, R, D): shard assignment only decides *which*
// goroutine advances a session's private clock, so the byte stream a client
// sees is identical for any shard count (engine_test.go locks this down,
// mirroring the sweep engine's worker-count invariance).
//
// The same purity powers the engine's compute-once-serve-many layer
// (cohort.go): sessions that negotiate identical (delay, buffer) share one
// precomputed schedule and one pre-encoded byte stream, their hot state
// collapses to a cohort pointer and a step cursor held in shard-owned
// parallel arrays, and a shard tick over them is a contiguous walk that
// writes shared immutable buffers. Sessions with bespoke parameters (cache
// disabled or at capacity) keep the per-session Sender path, which is
// byte-identical by construction and by golden test.
package serve

import (
	"fmt"
	"hash/maphash"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/drop"
	"repro/internal/netstream"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/trace"
)

// Config parameterizes an Engine.
type Config struct {
	// Rate is R in payload bytes per model step. Required.
	Rate int
	// Shards is the number of shard loops (default GOMAXPROCS).
	Shards int
	// MaxSessions caps concurrently registered sessions across all shards
	// (0 = unlimited); Handle rejects connections beyond it.
	MaxSessions int
	// StepDuration is the wall-clock length of one model step.
	// Defaults to 40ms (25 frames/second).
	StepDuration time.Duration
	// MaxDelay caps the smoothing delay granted to a client, in steps.
	// Defaults to 64.
	MaxDelay int
	// Policy selects the drop policy (default drop.Greedy).
	Policy drop.Factory
	// WriteTimeout bounds each batched wire flush so one dead client
	// cannot stall its shard forever. Defaults to 30s; negative disables.
	WriteTimeout time.Duration
	// DisableCohorts turns off the cohort schedule cache, serving every
	// session through its own Sender. The wire bytes are identical either
	// way; the cache only changes the cost of producing them.
	DisableCohorts bool
	// MaxCohorts caps distinct (delay, buffer) plans cached per engine
	// (0 = a sensible default); sessions past the cap use the fallback
	// per-session path.
	MaxCohorts int
	// OnSessionDone, if non-nil, is called from the shard goroutine after
	// a session ends (err is nil for a clean drain to End).
	OnSessionDone func(s SessionStats, err error)
	// Instrument, if non-nil, registers extra metrics (runtime stats,
	// admission counters) on the engine's obs.Builder before it freezes.
	Instrument func(b *obs.Builder)
}

// SessionStats summarizes one finished session.
type SessionStats struct {
	// Remote is the peer address, when known.
	Remote string
	// Steps is the number of model steps the session ran.
	Steps int
	// Dropped is the number of slices shed by the smoothing buffer.
	Dropped int
	// Elapsed is the wall-clock session duration from registration.
	Elapsed time.Duration
}

// Engine serves one clip to many concurrent sessions over shard loops.
type Engine struct {
	cfg Config
	st  *stream.Stream
	//smoothvet:frozen per-slice synthesized payload, shared by all sessions
	payloads [][]byte
	// stepOffers[t] is the ready-made offer slice for model step t —
	// arrivals paired with their shared payloads — built once and read by
	// every fallback session and cohort build instead of being rebuilt
	// per session per tick.
	//
	//smoothvet:frozen
	stepOffers [][]netstream.Offered
	shards     []*shard
	seed       maphash.Seed
	cohorts    cohortCache

	met     *engineMetrics
	recs    []*obs.FlightRecorder
	sessSeq atomic.Uint64 // flight-recorder session ids, assigned at Handle

	active  atomic.Int64
	served  atomic.Int64
	closing atomic.Bool
	sessWG  sync.WaitGroup // live sessions
	loopWG  sync.WaitGroup // shard loops
	stop    sync.Once
}

// New builds an engine for the clip and starts its shard loops.
func New(clip *trace.Clip, weights trace.WeightMap, cfg Config) (*Engine, error) {
	e, err := newEngine(clip, weights, cfg)
	if err != nil {
		return nil, err
	}
	for _, sh := range e.shards {
		e.loopWG.Add(1)
		//smoothvet:transfer ownership of the shard moves to its loop goroutine
		go sh.run()
	}
	return e, nil
}

// newEngine builds the engine without starting the shard clocks; tests and
// benchmarks drive the shards manually via shard.step.
func newEngine(clip *trace.Clip, weights trace.WeightMap, cfg Config) (*Engine, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("serve: rate %d", cfg.Rate)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.StepDuration <= 0 {
		cfg.StepDuration = 40 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 64
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	st, err := trace.WholeFrameStream(clip, weights)
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, st: st, seed: maphash.MakeSeed()}
	e.cohorts.m = make(map[cohortKey]*cohortEntry)
	// Payload bytes depend only on (slice ID, size): synthesize them once
	// and share across every session instead of per session per step.
	e.payloads = make([][]byte, st.Len())
	for id := 0; id < st.Len(); id++ {
		e.payloads[id] = netstream.SynthPayload(id, st.Slice(id).Size)
	}
	// Likewise the per-step offers: the arrival schedule is engine-wide,
	// so pair each step's slices with their payloads exactly once.
	e.stepOffers = make([][]netstream.Offered, st.Horizon()+1)
	for t := 0; t <= st.Horizon(); t++ {
		arr := st.ArrivalsAt(t)
		offers := make([]netstream.Offered, len(arr))
		for i, sl := range arr {
			offers[i] = netstream.Offered{Slice: sl, Payload: e.payloads[sl.ID]}
		}
		e.stepOffers[t] = offers
	}
	e.met = newEngineMetrics(e, cfg.Shards, cfg.Instrument)
	e.recs = make([]*obs.FlightRecorder, cfg.Shards)
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		e.recs[i] = obs.NewFlightRecorder(0)
		e.shards[i] = &shard{eng: e, quit: make(chan struct{}), met: e.met.reg.Shard(i), rec: e.recs[i]}
	}
	return e, nil
}

// offersAt returns the shared offer slice for one model step. The result
// aliases engine-owned memory shared read-only by every session; callers
// must not mutate it or its payloads.
//
//smoothvet:aliased
//smoothvet:noalloc
func (e *Engine) offersAt(step int) []netstream.Offered {
	return e.stepOffers[step]
}

// Rate returns the configured link rate in payload bytes per step.
func (e *Engine) Rate() int { return e.cfg.Rate }

// Shards returns the number of shard loops.
func (e *Engine) Shards() int { return len(e.shards) }

// ActiveSessions returns the number of sessions currently registered.
func (e *Engine) ActiveSessions() int { return int(e.active.Load()) }

// ServedSessions returns the number of sessions finished since start.
func (e *Engine) ServedSessions() int { return int(e.served.Load()) }

// Handle performs the netstream handshake on the caller's goroutine (the
// Hello read blocks), registers the session on a shard chosen by connection
// hash, and returns; the shard clock drives the session to completion and
// closes the connection. Sessions whose negotiated parameters hit the
// cohort cache are registered in the shard's struct-of-arrays cohort rows;
// the rest get a private Sender. On rejection (engine draining, session
// limit, bad handshake) the connection is closed and an error returned.
func (e *Engine) Handle(conn net.Conn) error {
	if e.closing.Load() {
		e.met.reg.GlobalInc(e.met.cRejected)
		_ = conn.Close()
		return fmt.Errorf("serve: engine is draining")
	}
	if max := e.cfg.MaxSessions; max > 0 && e.active.Load() >= int64(max) {
		e.met.reg.GlobalInc(e.met.cRejected)
		_ = conn.Close()
		return fmt.Errorf("serve: session limit %d reached", max)
	}
	msg, err := netstream.ReadMsg(conn)
	if err != nil {
		e.met.reg.GlobalInc(e.met.cRejected)
		_ = conn.Close()
		return fmt.Errorf("serve: reading hello: %w", err)
	}
	if msg.Hello == nil {
		e.met.reg.GlobalInc(e.met.cRejected)
		_ = conn.Close()
		return fmt.Errorf("serve: expected hello, got %+v", msg)
	}
	delay, buffer := netstream.NegotiateSession(*msg.Hello, e.cfg.Rate, e.cfg.MaxDelay)
	if err := netstream.WriteAccept(conn, netstream.Accept{
		Rate:         uint32(e.cfg.Rate),
		Delay:        uint32(delay),
		ServerBuffer: uint32(buffer),
		StepMicros:   uint32(e.cfg.StepDuration / time.Microsecond),
	}); err != nil {
		e.met.reg.GlobalInc(e.met.cRejected)
		_ = conn.Close()
		return fmt.Errorf("serve: writing accept: %w", err)
	}
	remote := conn.RemoteAddr().String()
	sh := e.shards[e.shardOf(remote)]
	w := io.Writer(conn)
	if e.cfg.WriteTimeout > 0 {
		// The deadline writer arms against the shard's tick clock, so the
		// shard must be fixed before the writer is built.
		w = &deadlineWriter{c: conn, d: e.cfg.WriteTimeout, clk: &sh.clk}
	}
	id := e.sessSeq.Add(1)
	if c := e.cohortFor(delay, buffer); c != nil {
		e.met.reg.GlobalInc(e.met.cCohortHits)
		e.active.Add(1)
		e.sessWG.Add(1)
		if !sh.enqueue(admission{row: cohortRow{
			cohort: c, conn: conn, w: w, remote: remote, start: time.Now(), id: id,
		}}) {
			e.met.reg.GlobalInc(e.met.cRejected)
			e.active.Add(-1)
			e.sessWG.Done()
			_ = conn.Close()
			return fmt.Errorf("serve: engine is draining")
		}
		return nil
	}
	e.met.reg.GlobalInc(e.met.cCohortMiss)
	s, err := e.newSession(w, delay, buffer)
	if err != nil {
		e.met.reg.GlobalInc(e.met.cRejected)
		_ = conn.Close()
		return err
	}
	s.conn = conn
	s.remote = remote
	s.id = id
	if !sh.enqueue(admission{s: s}) {
		e.met.reg.GlobalInc(e.met.cRejected)
		e.unregister(s)
		_ = conn.Close()
		return fmt.Errorf("serve: engine is draining")
	}
	return nil
}

// shardOf picks the shard for a connection by hashing its remote address.
func (e *Engine) shardOf(remote string) int {
	var h maphash.Hash
	h.SetSeed(e.seed)
	_, _ = h.WriteString(remote) // never fails per hash.Hash contract
	return int(h.Sum64() % uint64(len(e.shards)))
}

// newSession builds a registered fallback session writing to w. The caller
// (or the shard loop, once enqueued) is responsible for eventually calling
// finish.
func (e *Engine) newSession(w io.Writer, delay, buffer int) (*session, error) {
	snd, err := netstream.NewSender(w, netstream.SenderConfig{
		ServerBuffer: buffer,
		Rate:         e.cfg.Rate,
		Delay:        delay,
		Policy:       e.cfg.Policy,
	})
	if err != nil {
		return nil, err
	}
	s := &session{eng: e, w: w, snd: snd, start: time.Now()}
	e.active.Add(1)
	e.sessWG.Add(1)
	return s, nil
}

// unregister reverses newSession's accounting without counting the session
// as served (used when registration fails after the fact).
func (e *Engine) unregister(s *session) {
	e.active.Add(-1)
	e.sessWG.Done()
}

// Drain stops admitting sessions and waits up to timeout for the in-flight
// ones to finish their streams. It reports whether everything completed.
func (e *Engine) Drain(timeout time.Duration) bool {
	e.closing.Store(true)
	done := make(chan struct{})
	go func() { e.sessWG.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Close stops the shard loops, aborting any session still in flight (its
// connection is closed mid-stream). Safe to call after Drain and more than
// once.
func (e *Engine) Close() {
	e.closing.Store(true)
	e.stop.Do(func() {
		for _, sh := range e.shards {
			close(sh.quit)
		}
	})
	e.loopWG.Wait()
}

// errAborted reports a session cut off by Close before its stream drained.
var errAborted = fmt.Errorf("serve: engine closed mid-stream")

// ---------------------------------------------------------------------------
// Shards.
// ---------------------------------------------------------------------------

// tickClock publishes a shard's current tick timestamp (UnixNano) to the
// deadline writers of its sessions, so arming a write deadline costs an
// atomic load instead of a time.Now call per session per flush.
type tickClock struct {
	nanos atomic.Int64
}

// admission hands one freshly handshaken session to a shard loop: either a
// fallback *session or a cohort row (exactly one is set).
type admission struct {
	s   *session
	row cohortRow
}

// cohortRow is the registration-time state of one cohort-served session.
// Its hot fields (cohort pointer, cursor) move into the shard's parallel
// arrays on admit; the rest stays in the cold array, touched only at
// retirement.
type cohortRow struct {
	cohort *Cohort
	conn   net.Conn // nil in tests/benchmarks that drive a bare writer
	w      io.Writer
	remote string
	start  time.Time
	id     uint64 // flight-recorder session id
}

// cohortRows is the shard-owned struct-of-arrays state of cohort-served
// sessions. A shard tick walks cursors/cohorts contiguously — no
// per-session pointer chase — and retires finished rows by swap-remove.
// The three slices are parallel: row i is (cohorts[i], cursors[i],
// cold[i]).
type cohortRows struct {
	cohorts []*Cohort
	cursors []int32
	cold    []cohortRow
}

// shard owns a set of sessions and the single clock that steps them. Only
// the registration queue is shared (guarded by mu); everything else runs on
// the shard goroutine.
//
//smoothvet:confined owned by the shard loop goroutine after New hands it off
type shard struct {
	eng  *Engine
	quit chan struct{} //smoothvet:shared closed by Engine.Close to stop the loop

	clk tickClock

	//smoothvet:shared registration queue, guarded by mu
	mu sync.Mutex
	//smoothvet:shared set under mu; checked by enqueue from acceptor goroutines
	draining bool
	//smoothvet:shared appended under mu by enqueue, drained by admit
	incoming []admission

	sessions []*session // fallback (bespoke-parameter) sessions
	rows     cohortRows // cohort-served sessions, struct-of-arrays

	// met and rec are this shard's obs slots and flight ring: recorded
	// into only by the shard goroutine, read elsewhere only through their
	// published snapshots.
	met *obs.ShardMetrics
	rec *obs.FlightRecorder
}

// enqueue hands a freshly handshaken session to the shard loop. It reports
// false if the shard has already shut down.
func (sh *shard) enqueue(a admission) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.draining {
		return false
	}
	sh.incoming = append(sh.incoming, a)
	return true
}

// run is the shard loop: one ticker, one step for every session per tick.
func (sh *shard) run() {
	defer sh.eng.loopWG.Done()
	tk := time.NewTicker(sh.eng.cfg.StepDuration)
	defer tk.Stop()
	for {
		select {
		case <-sh.quit:
			sh.shutdown()
			return
		case now := <-tk.C:
			sh.step(now)
			// Step duration and snapshot publication happen outside the
			// noalloc step path: one wall-clock read and one O(metrics)
			// copy per tick, never per session.
			sh.met.Observe(sh.eng.met.hStepDur, time.Since(now).Microseconds())
			sh.met.Publish()
		}
	}
}

// admit moves newly registered sessions onto the shard goroutine.
func (sh *shard) admit() {
	sh.mu.Lock()
	inc := sh.incoming
	sh.incoming = nil
	sh.mu.Unlock()
	now := sh.clk.nanos.Load()
	for i := range inc {
		sh.met.Inc(sh.eng.met.cAdmitted)
		if s := inc[i].s; s != nil {
			sh.rec.Record(now, obs.EvAdmit, s.id, 0)
			sh.sessions = append(sh.sessions, s)
			continue
		}
		sh.rec.Record(now, obs.EvAdmit, inc[i].row.id, 0)
		sh.rec.Record(now, obs.EvCohortAssign, inc[i].row.id, int64(inc[i].row.cohort.Steps()))
		sh.rows.cohorts = append(sh.rows.cohorts, inc[i].row.cohort)
		sh.rows.cursors = append(sh.rows.cursors, 0)
		sh.rows.cold = append(sh.rows.cold, inc[i].row)
	}
}

// step advances every session on the shard by one model step, retiring the
// ones that finished or failed. now is the tick timestamp; it is published
// once to the shard's deadline writers, so a tick arms at most one write
// deadline per connection no matter how many flushes it performs.
//
//smoothvet:deterministic
//smoothvet:noalloc
func (sh *shard) step(now time.Time) {
	sh.clk.nanos.Store(now.UnixNano())
	sh.admit()
	sh.stepRows()
	live := sh.sessions[:0]
	for _, s := range sh.sessions {
		if s.step == 0 {
			sh.rec.Record(sh.clk.nanos.Load(), obs.EvFirstWrite, s.id, 0)
		}
		done, err := s.stepOnce()
		if done || err != nil {
			s.finish(now, err)
			sh.noteSessionEnd(s.id, s.step, err)
		} else {
			live = append(live, s)
		}
	}
	for i := len(live); i < len(sh.sessions); i++ {
		sh.sessions[i] = nil // release finished sessions to the collector
	}
	sh.sessions = live
	sh.met.Set(sh.eng.met.gActive, uint64(len(sh.sessions)+len(sh.rows.cursors)))
}

// stepRows advances the cohort rows one model step: a contiguous walk over
// the parallel arrays, flushing each phase group — the run of sessions on
// the same cohort at the same cursor — from one shared pre-encoded buffer.
// Retirement is swap-remove: the last unprocessed row takes the freed slot
// and is processed in place, so every row advances exactly once per tick.
//
//smoothvet:deterministic
//smoothvet:noalloc
func (sh *shard) stepRows() {
	rows := &sh.rows
	i := 0
	for i < len(rows.cursors) {
		c := rows.cohorts[i]
		cur := rows.cursors[i]
		buf := c.stepBytes(cur)
		last := int(cur)+1 == c.Steps()
		// One shared buffer serves the whole phase group [i, j).
		j := i
		for j < len(rows.cursors) && rows.cohorts[j] == c && rows.cursors[j] == cur {
			if cur == 0 {
				sh.rec.Record(sh.clk.nanos.Load(), obs.EvFirstWrite, rows.cold[j].id, 0)
			}
			var err error
			if len(buf) > 0 {
				_, err = rows.cold[j].w.Write(buf)
			}
			if err != nil || last {
				sh.retireRow(j, cur, err)
				continue // the swapped-in row is processed at j
			}
			rows.cursors[j] = cur + 1
			j++
		}
		i = j
	}
}

// retireRow finishes the cohort session in slot j (err nil = clean drain
// to End) and swap-removes its row. It sits on the noalloc tick path, so
// Elapsed is derived from the shard's tick clock — stamped once per tick
// (and once by shutdown) — instead of re-reading the wall clock per
// retirement.
func (sh *shard) retireRow(j int, cur int32, err error) {
	rows := &sh.rows
	cold := &rows.cold[j]
	steps := int(cur)
	dropped := rows.cohorts[j].droppedThrough(cur)
	if err == nil {
		// Clean finish: the final step completed.
		steps = int(cur) + 1
		dropped = rows.cohorts[j].droppedThrough(cur + 1)
	}
	if cold.conn != nil {
		_ = cold.conn.Close()
	}
	sh.noteSessionEnd(cold.id, steps, err)
	e := sh.eng
	e.active.Add(-1)
	e.served.Add(1)
	e.sessWG.Done()
	if e.cfg.OnSessionDone != nil {
		e.cfg.OnSessionDone(SessionStats{
			Remote:  cold.remote,
			Steps:   steps,
			Dropped: dropped,
			Elapsed: time.Unix(0, sh.clk.nanos.Load()).Sub(cold.start),
		}, err)
	}
	n := len(rows.cursors) - 1
	rows.cohorts[j] = rows.cohorts[n]
	rows.cursors[j] = rows.cursors[n]
	rows.cold[j] = rows.cold[n]
	rows.cohorts[n] = nil
	rows.cold[n] = cohortRow{}
	rows.cohorts = rows.cohorts[:n]
	rows.cursors = rows.cursors[:n]
	rows.cold = rows.cold[:n]
}

// shutdown aborts every session still registered on the shard.
func (sh *shard) shutdown() {
	// Re-stamp the tick clock so retirements during drain report an
	// Elapsed that covers the time since the last tick.
	now := time.Now()
	sh.clk.nanos.Store(now.UnixNano())
	sh.mu.Lock()
	sh.draining = true
	inc := sh.incoming
	sh.incoming = nil
	sh.mu.Unlock()
	for i := range inc {
		if s := inc[i].s; s != nil {
			sh.sessions = append(sh.sessions, s)
			continue
		}
		sh.rows.cohorts = append(sh.rows.cohorts, inc[i].row.cohort)
		sh.rows.cursors = append(sh.rows.cursors, 0)
		sh.rows.cold = append(sh.rows.cold, inc[i].row)
	}
	for _, s := range sh.sessions {
		s.finish(now, errAborted)
		sh.noteSessionEnd(s.id, s.step, errAborted)
	}
	sh.sessions = nil
	for len(sh.rows.cursors) > 0 {
		sh.retireRow(len(sh.rows.cursors)-1, sh.rows.cursors[len(sh.rows.cursors)-1], errAborted)
	}
	sh.met.Set(sh.eng.met.gActive, 0)
	sh.met.Publish()
}

// ---------------------------------------------------------------------------
// Sessions (fallback path: one Sender per session).
// ---------------------------------------------------------------------------

// session is one client's paced stream served through a private smoothing
// buffer. All fields are owned by the shard goroutine after registration;
// no locking.
type session struct {
	eng     *Engine
	conn    net.Conn // nil in tests/benchmarks that drive a bare writer
	w       io.Writer
	remote  string
	snd     *netstream.Sender
	start   time.Time
	step    int
	dropped int
	id      uint64 // flight-recorder session id
}

// stepOnce runs one model step: offer this step's arrivals (the shared,
// engine-precomputed offer slice — read-only), tick the smoothing buffer
// (which batches and flushes the wire writes), and finish with the End
// marker once the horizon is past and the buffer is drained.
//
//smoothvet:deterministic
//smoothvet:noalloc
func (s *session) stepOnce() (done bool, err error) {
	e := s.eng
	var offers []netstream.Offered
	if s.step <= e.st.Horizon() {
		offers = e.offersAt(s.step)
	}
	stats, err := s.snd.Tick(offers)
	if err != nil {
		return false, err
	}
	s.dropped += len(stats.Dropped)
	s.step++
	if s.step > e.st.Horizon() && s.snd.Backlog() == 0 {
		return true, netstream.WriteEnd(s.w)
	}
	return false, nil
}

// finish closes the session's connection and reports it done. now is the
// shard's tick timestamp: finish runs on the noalloc step path, so it
// reuses the per-tick stamp rather than reading the wall clock itself.
func (s *session) finish(now time.Time, err error) {
	if s.conn != nil {
		_ = s.conn.Close()
	}
	e := s.eng
	e.active.Add(-1)
	e.served.Add(1)
	e.sessWG.Done()
	if e.cfg.OnSessionDone != nil {
		e.cfg.OnSessionDone(SessionStats{
			Remote:  s.remote,
			Steps:   s.step,
			Dropped: s.dropped,
			Elapsed: now.Sub(s.start),
		}, err)
	}
}

// deadlineWriter arms a write deadline before flushing so a stalled client
// errors out instead of blocking its whole shard. The deadline is derived
// from the shard's tick clock — stamped once per tick — and armed at most
// once per tick per connection, so a session flush costs neither a
// time.Now call nor a redundant SetWriteDeadline.
type deadlineWriter struct {
	c     net.Conn
	d     time.Duration
	clk   *tickClock
	armed int64 // tick stamp the current deadline was armed at
}

func (w *deadlineWriter) Write(p []byte) (int, error) {
	if now := w.clk.nanos.Load(); now != w.armed {
		if err := w.c.SetWriteDeadline(time.Unix(0, now).Add(w.d)); err != nil {
			return 0, err
		}
		w.armed = now
	}
	return w.c.Write(p)
}
